package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/sim"
	"repro/stringsched"
)

// throughputRun drives one instance of the standard simulator-throughput
// scenario (the same two-GPU Strings node `strings-bench -bench-json` and
// BenchmarkSimulatorThroughput use) and returns the kernel event count.
func throughputRun(seed int64) (uint64, error) {
	c, err := stringsched.NewCluster(stringsched.Config{
		Seed: seed,
		Nodes: []stringsched.NodeConfig{{Devices: []stringsched.DeviceSpec{
			stringsched.Quadro2000, stringsched.TeslaC2050,
		}}},
		Mode:    stringsched.ModeStrings,
		Balance: "GMin",
	})
	if err != nil {
		return 0, err
	}
	r, err := c.Run([]stringsched.StreamSpec{{
		Kind: stringsched.MonteCarlo, Count: 6, LambdaFactor: 0.5,
		Node: 0, Tenant: 1, Weight: 1,
	}})
	if err != nil {
		return 0, err
	}
	if len(r.Errors) > 0 {
		return 0, fmt.Errorf("simulation errors: %v", r.Errors)
	}
	return c.K.Dispatched(), nil
}

// TestAllocBudgetPerEvent pins the zero-alloc steady state of the event hot
// path: across repeated runs of the standard throughput scenario, total heap
// allocations per kernel event must stay within the budget recorded in
// BENCH_simcore.json. The measured figure is ~0.03 allocs/event — entirely
// per-run warmup (waiter-ring growth, op/event pool priming, per-request
// session setup); the dispatch loop itself allocates nothing once warm. The
// 0.05 ceiling leaves room for noise but fails on any real regression: the
// seed tree sat at ~0.71 allocs/event, fourteen times over this budget.
func TestAllocBudgetPerEvent(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budget measurement skipped in -short mode")
	}
	const (
		iters  = 25
		budget = 0.05
	)
	// Warm one run outside the measurement so one-time global init
	// (profile tables, policy registries) doesn't bill to the budget.
	if _, err := throughputRun(1); err != nil {
		t.Fatal(err)
	}
	var events uint64
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	for i := 0; i < iters; i++ {
		ev, err := throughputRun(int64(2 + i))
		if err != nil {
			t.Fatal(err)
		}
		events += ev
	}
	runtime.ReadMemStats(&ms1)
	allocs := ms1.Mallocs - ms0.Mallocs
	perEvent := float64(allocs) / float64(events)
	t.Logf("%d allocs over %d events: %.4f allocs/event (budget %.2f)", allocs, events, perEvent, budget)
	if perEvent > budget {
		t.Fatalf("alloc budget exceeded: %.4f allocs/event > %.2f", perEvent, budget)
	}
}

// TestKernelSteadyStateZeroAlloc pins the stronger claim on the kernel alone:
// once the processes exist and the waiter rings are grown, driving events
// through the dispatch loop allocates nothing at all. Two persistent procs
// ping-pong through depth-one queues across RunUntil slices; the measured
// window opens only after a warm-up slice so ramp-up allocations (ring
// growth, coroutine creation) stay outside it.
func TestKernelSteadyStateZeroAlloc(t *testing.T) {
	k := sim.NewKernel(1)
	ping := sim.NewQueue[int](k)
	pong := sim.NewQueue[int](k)
	k.Go("ping", func(p *sim.Proc) {
		for r := 0; ; r++ {
			p.Sleep(1)
			ping.Put(r)
			pong.Get(p)
		}
	})
	k.Go("pong", func(p *sim.Proc) {
		for {
			v := ping.Get(p)
			pong.Put(v)
		}
	})
	k.RunUntil(10_000) // warm up: rings grown, coroutines started
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	n := k.RunUntil(100_000)
	runtime.ReadMemStats(&ms1)
	if n == 0 {
		t.Fatal("no events dispatched in the measured window")
	}
	if allocs := ms1.Mallocs - ms0.Mallocs; allocs > 2 {
		// Tolerate a stray runtime-internal allocation or two; the dispatch
		// path itself must contribute none across tens of thousands of events.
		t.Fatalf("steady-state dispatch allocated %d times over %d events", allocs, n)
	}
}
