GO ?= go

.PHONY: build test race vet bench-smoke bench bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel-workers determinism test is the suite's only test that runs
# many simulations concurrently; under -race it exercises the kernel's
# goroutine handoffs across every worker.
race:
	$(GO) test -race -run TestParallelWorkers ./internal/experiments/

vet:
	$(GO) vet ./...

# One iteration of every micro-benchmark: proves they still compile and run
# without paying full benchmark time. The codec benchmarks must report
# 0 allocs/op at any -benchtime.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkKernelDispatch|BenchmarkQueuePingPong|BenchmarkCodecRoundTrip' -benchtime=1x .
	$(GO) test -run '^$$' -bench . -benchtime=1x ./internal/rpcproto/

# Full micro-benchmark pass with allocation counts.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput|BenchmarkKernelDispatch|BenchmarkQueuePingPong|BenchmarkCodecRoundTrip' -benchmem .

# Regenerate BENCH_simcore.json (simulator throughput snapshot).
bench-json:
	$(GO) run ./cmd/strings-bench -bench-json BENCH_simcore.json
