GO ?= go
BIN ?= bin

.PHONY: build test race vet lint stringscheck bench-smoke bench bench-json bench-sweep bench-mega bench-cluster cover fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full-tree race pass. -short skips the heavyweight experiment sweeps
# (guarded with testing.Short) so the whole pass stays under ~2 minutes
# while still racing every kernel handoff path, the sweep engine
# (internal/parallel, internal/sweep) and the parallel-vs-sequential
# figure-grid comparison.
race:
	$(GO) test -race -short ./...
	@# The sharded kernel's concurrency surface, raced at full strength:
	@# the coordinator's window/solo machinery, the cross-shard cluster
	@# invariance matrix, and the sharded mega smoke (skipped under -short
	@# above) all run with the barrier worker pool live.
	$(GO) test -race -run 'TestRing|TestShard|TestSolo|TestRunMegaSharded' \
		./internal/sim/shard/ ./internal/core/ ./stringsched/
	@# The cluster tier's invariance matrix (rerun, workers 1 vs 8,
	@# shards 1 vs 4) raced at quick scale: the supernode runs go through
	@# the sweep worker pool and the shard barrier with the detector live.
	$(GO) test -race -run 'TestClusterInvarianceQuick' ./internal/cluster/

vet:
	$(GO) vet ./...

# stringscheck: the determinism/hot-path analyzer suite (DESIGN.md
# "Determinism invariants" and "Dataflow analysis and the hot-path
# contract"). Runs as a go vet unit checker so it sees exactly what the
# build sees, caches per package, and threads cross-package facts through
# the .vetx plumbing.
stringscheck:
	$(GO) build -o $(BIN)/stringscheck ./cmd/stringscheck

# The suite is part of the inner loop, so it carries a wall-time budget:
# the whole pass — all nine analyzers, CFG construction, dataflow
# fixpoints, and fact propagation across the tree — must finish in 60s or
# the target fails. A slow linter is a skipped linter.
lint: stringscheck
	@start=$$(date +%s); \
	$(GO) vet -vettool=$(BIN)/stringscheck ./... || exit 1; \
	elapsed=$$(( $$(date +%s) - start )); \
	echo "lint: clean in $${elapsed}s (budget 60s)"; \
	if [ $$elapsed -gt 60 ]; then \
		echo "lint: exceeded the 60s wall-time budget"; exit 1; \
	fi

# One iteration of every micro-benchmark: proves they still compile and run
# without paying full benchmark time. The codec benchmarks must report
# 0 allocs/op at any -benchtime.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkKernelDispatch|BenchmarkQueuePingPong|BenchmarkCodecRoundTrip' -benchtime=1x .
	$(GO) test -run '^$$' -bench . -benchtime=1x ./internal/rpcproto/
	$(GO) run ./cmd/strings-bench -exp faults -pairs 1 -requests 4
	@# Sweep-engine determinism: the same small grid at -parallel 1 and 4
	@# must emit byte-identical tables (the wall-clock footer is stripped —
	@# it is the only line allowed to differ).
	@mkdir -p $(BIN)
	$(GO) run ./cmd/strings-bench -exp fig9 -requests 4 -parallel 1 -csv | grep -v '^(' > $(BIN)/sweep-smoke-seq.csv
	$(GO) run ./cmd/strings-bench -exp fig9 -requests 4 -parallel 4 -csv | grep -v '^(' > $(BIN)/sweep-smoke-par.csv
	diff $(BIN)/sweep-smoke-seq.csv $(BIN)/sweep-smoke-par.csv
	@# Slice-placement study: a small frag grid, its CSV kept as a CI
	@# artifact. Like the sweep check above, worker count must not change
	@# a single byte of the table.
	$(GO) run ./cmd/strings-bench -exp frag -requests 6 -parallel 1 -csv | grep -v '^(' > $(BIN)/frag-smoke.csv
	$(GO) run ./cmd/strings-bench -exp frag -requests 6 -parallel 4 -csv | grep -v '^(' > $(BIN)/frag-smoke-par.csv
	diff $(BIN)/frag-smoke.csv $(BIN)/frag-smoke-par.csv

# Full micro-benchmark pass with allocation counts.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput|BenchmarkKernelDispatch|BenchmarkQueuePingPong|BenchmarkCodecRoundTrip' -benchmem .

# Coverage gate: run the internal packages with -coverprofile and fail if
# any of the gated packages (the observability layer, the sweep engine,
# the shard coordinator, the analytic fast-forward layer, the analysis
# framework, the device model and the cluster tier) drops below 85%
# statement coverage. The profile lands in $(BIN)/cover.out for CI to
# upload.
cover:
	@mkdir -p $(BIN)
	$(GO) test -coverprofile=$(BIN)/cover.out ./internal/...
	$(GO) run ./cmd/covercheck -profile $(BIN)/cover.out -min 85 \
		repro/internal/trace repro/internal/sweep repro/internal/parallel \
		repro/internal/sim repro/internal/sim/shard repro/internal/analytic \
		repro/internal/analysis repro/internal/gpu repro/internal/cluster

# Short fuzz pass over every native fuzz target: the wire codec, the framing
# layer and the trace encoders each get 10s of coverage-guided input on top
# of the committed corpus under testdata/fuzz/.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 10s ./internal/rpcproto/
	$(GO) test -run '^$$' -fuzz FuzzReadFrame -fuzztime 10s ./internal/rpcproto/
	$(GO) test -run '^$$' -fuzz FuzzCallRoundTrip -fuzztime 10s ./internal/rpcproto/
	$(GO) test -run '^$$' -fuzz FuzzReplyRoundTrip -fuzztime 10s ./internal/rpcproto/
	$(GO) test -run '^$$' -fuzz FuzzParseJSONL -fuzztime 10s ./internal/trace/
	$(GO) test -run '^$$' -fuzz FuzzSpanEncode -fuzztime 10s ./internal/trace/
	$(GO) test -run '^$$' -fuzz FuzzEventEncode -fuzztime 10s ./internal/trace/
	$(GO) test -run '^$$' -fuzz FuzzOpenArrivalSpec -fuzztime 10s ./internal/workload/

# Regenerate BENCH_simcore.json (simulator throughput snapshot), including
# the traced-run overhead columns and a Chrome trace of the scenario.
bench-json:
	$(GO) run ./cmd/strings-bench -bench-json BENCH_simcore.json -trace $(BIN)/throughput-trace.json

# Mega macro-benchmark smoke: the million-request scenario at CI scale
# (20k requests, a couple of seconds). Runs against a copy so the committed
# BENCH_simcore.json keeps its full-scale numbers; the merge must preserve
# the standard scenario's keys, which the grep asserts. The sharded smoke
# then runs the four-node sharded variant twice — -shards 1 and -shards 4 —
# into separate files and diffs the simulated-metrics keys (mega_sharded_*):
# the barrier worker count may only change wall-clock numbers, never a
# simulated one. CI uploads all three files as artifacts.
bench-mega:
	@mkdir -p $(BIN)
	cp BENCH_simcore.json $(BIN)/BENCH_simcore.json
	$(GO) run ./cmd/strings-bench -exp mega -mega-requests 20000 -bench-json $(BIN)/BENCH_simcore.json
	@grep -q '"ns_per_event"' $(BIN)/BENCH_simcore.json || \
		{ echo "bench-mega: merge dropped the standard scenario's keys"; exit 1; }
	@grep -q '"mega_ns_per_event"' $(BIN)/BENCH_simcore.json || \
		{ echo "bench-mega: mega keys missing from merged output"; exit 1; }
	$(GO) run ./cmd/strings-bench -exp mega -mega-requests 20000 -shards 1 \
		-bench-json $(BIN)/BENCH_simcore.shards1.json
	$(GO) run ./cmd/strings-bench -exp mega -mega-requests 20000 -shards 4 \
		-bench-json $(BIN)/BENCH_simcore.shards4.json
	@grep '"mega_sharded_' $(BIN)/BENCH_simcore.shards1.json > $(BIN)/mega-sim-keys.shards1; \
	grep '"mega_sharded_' $(BIN)/BENCH_simcore.shards4.json > $(BIN)/mega-sim-keys.shards4; \
	diff $(BIN)/mega-sim-keys.shards1 $(BIN)/mega-sim-keys.shards4 || \
		{ echo "bench-mega: simulated metrics differ between -shards 1 and -shards 4"; exit 1; }

# Regenerate BENCH_sweep.json: the figure grid (fig9+fig10+fig12) timed
# sequentially and at GOMAXPROCS workers, with the tables verified deeply
# equal. The speedup is only meaningful on a multi-core machine; the file
# records cores/gomaxprocs so single-core numbers read as what they are.
bench-sweep:
	$(GO) run ./cmd/strings-bench -bench-sweep BENCH_sweep.json

# Cluster-tier macro-benchmark smoke: the three-supernode open-arrival
# scenario at CI scale (a ~500s horizon instead of the committed 2400s run),
# against a copy so the committed BENCH_simcore.json keeps its full-scale
# numbers. Both placement policies run sequentially and at GOMAXPROCS
# workers with the results verified deeply equal in-process
# (cluster_identical); the greps assert the merge kept the standard
# scenario's keys and landed the cluster ones. CI uploads the file as an
# artifact next to the mega and sweep snapshots.
bench-cluster:
	@mkdir -p $(BIN)
	cp BENCH_simcore.json $(BIN)/BENCH_simcore.cluster.json
	$(GO) run ./cmd/strings-bench -exp cluster \
		-cluster-spec 'poisson:rate=0.5,horizon=500s,kind=GA,life=80s,lambda=800ms,bigevery=16,bigslots=2' \
		-bench-json $(BIN)/BENCH_simcore.cluster.json
	@grep -q '"ns_per_event"' $(BIN)/BENCH_simcore.cluster.json || \
		{ echo "bench-cluster: merge dropped the standard scenario's keys"; exit 1; }
	@grep -q '"cluster_p99_s"' $(BIN)/BENCH_simcore.cluster.json || \
		{ echo "bench-cluster: cluster keys missing from merged output"; exit 1; }
	@grep -q '"cluster_identical": true' $(BIN)/BENCH_simcore.cluster.json || \
		{ echo "bench-cluster: worker invariance broke in the cluster run"; exit 1; }
