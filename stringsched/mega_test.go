package stringsched

import "testing"

// TestRunMegaSmoke drives a scaled-down mega macro-run (the same scenario
// `strings-bench -exp mega` benchmarks) and checks its shape: every request
// finishes, the virtual timeline is dominated by fast-forwarded idle time,
// and identical seeds reproduce the run bit-identically.
func TestRunMegaSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("mega smoke run skipped in -short mode")
	}
	const requests = 2000
	res, err := RunMega(7, requests)
	if err != nil {
		t.Fatalf("RunMega: %v", err)
	}
	if res.Finished != requests {
		t.Errorf("finished %d of %d requests", res.Finished, requests)
	}
	if res.Events == 0 || res.EndTime <= 0 {
		t.Errorf("degenerate run: %d events, end time %v", res.Events, res.EndTime)
	}
	// The stream's mean inter-arrival (1.5x solo runtime) dwarfs service
	// times, so nearly the whole timeline is quiescent: the kernel must be
	// jumping over it, not stepping through it.
	if res.FFJumps == 0 {
		t.Error("no fast-forward jumps in a mostly-idle run")
	}
	if ratio := res.SkipRatio(); ratio < 0.9 || ratio > 1.0 {
		t.Errorf("skip ratio %.4f, want within [0.9, 1.0]", ratio)
	}

	again, err := RunMega(7, requests)
	if err != nil {
		t.Fatalf("RunMega (repeat): %v", err)
	}
	if again != res {
		t.Errorf("same seed diverged:\n first: %+v\nsecond: %+v", res, again)
	}
}

// TestRunMegaShardedSmoke drives a scaled-down sharded mega run (the scenario
// `strings-bench -exp mega -shards N` benchmarks): the fleet must actually
// shard, exercise the window machinery, and produce bit-identical results and
// shard stats at 1 and 4 barrier workers.
func TestRunMegaShardedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded mega smoke run skipped in -short mode")
	}
	const requests = 2000
	res, stats, err := RunMegaSharded(7, requests, 1)
	if err != nil {
		t.Fatalf("RunMegaSharded(1): %v", err)
	}
	if res.Finished != requests {
		t.Errorf("finished %d of %d requests", res.Finished, requests)
	}
	if res.Events == 0 || res.EndTime <= 0 {
		t.Errorf("degenerate run: %d events, end time %v", res.Events, res.EndTime)
	}
	if stats.Windows == 0 || stats.SoloRuns == 0 {
		t.Errorf("coordinator did not exercise both window modes: %+v", stats)
	}
	if stats.Messages == 0 {
		t.Errorf("no cross-shard messages — the mega traffic never crossed a mailbox: %+v", stats)
	}

	par, parStats, err := RunMegaSharded(7, requests, 4)
	if err != nil {
		t.Fatalf("RunMegaSharded(4): %v", err)
	}
	if par != res {
		t.Errorf("4 workers diverged from 1:\n  1: %+v\n  4: %+v", res, par)
	}
	if parStats != stats {
		t.Errorf("shard stats diverged across worker counts:\n  1: %+v\n  4: %+v", stats, parStats)
	}
}

// TestRunMegaPerRequestCostIsFlat guards the O(live streams) fix: the packed
// context must shed destroyed streams, or the driver's dispatch scan (and the
// CUDA layer's device-sync walk) grows with every application ever served and
// per-request cost becomes linear in run length. Events per request is
// scale-free in this scenario, so comparing events-per-request across two run
// lengths verifies the workload shape; wall time per event at 5x the requests
// staying near-constant is checked indirectly by the benchmark, while here we
// pin the simulated structure that made the quadratic visible.
func TestRunMegaPerRequestCostIsFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("mega scaling check skipped in -short mode")
	}
	small, err := RunMega(3, 500)
	if err != nil {
		t.Fatalf("RunMega(500): %v", err)
	}
	large, err := RunMega(3, 2500)
	if err != nil {
		t.Fatalf("RunMega(2500): %v", err)
	}
	perReqSmall := float64(small.Events) / 500
	perReqLarge := float64(large.Events) / 2500
	if perReqLarge > perReqSmall*1.05 || perReqLarge < perReqSmall*0.95 {
		t.Errorf("events per request drifted with scale: %.1f at 500, %.1f at 2500",
			perReqSmall, perReqLarge)
	}
}
