// Package stringsched is the public API of the Strings reproduction: a
// deterministic, simulation-backed implementation of "Scheduling
// Multi-tenant Cloud Workloads on Accelerator-based Systems" (SC'14).
//
// The package exposes three layers:
//
//   - Cluster construction and execution (NewCluster, Cluster.Run): build a
//     multi-node GPU server, pick a runtime (bare CUDA, Rain, or Strings),
//     a workload-balancing policy and a device-level scheduling policy, and
//     drive request streams through it on a virtual clock.
//
//   - Workloads (Benchmarks, Profile, StreamSpec): the paper's Table I
//     applications, calibrated against the Tesla C2050 reference device,
//     plus the SPECpower-style negative-exponential arrival model.
//
//   - Experiments (NewSuite and the Fig*/TableI/Ablation* methods):
//     regenerate every table and figure of the paper's evaluation.
//
// Everything runs in virtual time: experiments spanning tens of simulated
// minutes complete in milliseconds, and identical seeds give bit-identical
// results.
package stringsched

import (
	"repro/internal/balancer"
	"repro/internal/core"
	"repro/internal/devsched"
	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Re-exported core types: cluster construction and execution.
type (
	// Config describes a deployment: nodes, runtime mode and policies.
	Config = core.Config
	// NodeConfig lists one node's GPUs.
	NodeConfig = core.NodeConfig
	// Mode selects the runtime serving GPU work.
	Mode = core.Mode
	// Cluster is a wired deployment ready to run request streams.
	Cluster = core.Cluster
	// RunResult aggregates an experiment run.
	RunResult = core.RunResult
	// DeviceSpec describes a GPU's capabilities.
	DeviceSpec = gpu.Spec
)

// Runtime modes.
const (
	// ModeCUDA is static provisioning on the bare CUDA runtime.
	ModeCUDA = core.ModeCUDA
	// ModeRain is the authors' prior scheduler (one backend process per
	// application).
	ModeRain = core.ModeRain
	// ModeStrings is the paper's system (context packing + two-level
	// scheduling).
	ModeStrings = core.ModeStrings
)

// The paper's testbed devices.
var (
	Quadro2000 = gpu.Quadro2000
	Quadro4000 = gpu.Quadro4000
	TeslaC2050 = gpu.TeslaC2050
	TeslaC2070 = gpu.TeslaC2070
)

// NewCluster builds a cluster from cfg.
func NewCluster(cfg Config) (*Cluster, error) { return core.New(cfg) }

// GID is a gPool-global GPU identifier.
type GID = balancer.GID

// Workload types.
type (
	// Kind identifies a Table I benchmark.
	Kind = workload.Kind
	// Profile is a calibrated application execution plan.
	Profile = workload.Profile
	// StreamSpec describes one stream of end-user requests.
	StreamSpec = workload.StreamSpec
	// Pair is one of the paper's 24 Group A × Group B mixes.
	Pair = workload.Pair
)

// Table I benchmarks.
const (
	DXTC            = workload.DXTC
	Scan            = workload.Scan
	BinomialOptions = workload.BinomialOptions
	MatrixMultiply  = workload.MatrixMultiply
	Histogram       = workload.Histogram
	Eigenvalues     = workload.Eigenvalues
	BlackScholes    = workload.BlackScholes
	MonteCarlo      = workload.MonteCarlo
	Gaussian        = workload.Gaussian
	SortingNetworks = workload.SortingNetworks
)

// Pairs returns the 24 workload pairs A..X.
func Pairs() []Pair { return workload.Pairs() }

// Style selects how an application issues its GPU work.
type Style = workload.Style

// Application styles: the CUDA-SDK synchronous default, and a hand-tuned
// double-buffered pipeline over explicit streams.
const (
	StyleSync        = workload.StyleSync
	StylePipelined   = workload.StylePipelined
	StyleMultiThread = workload.StyleMultiThread
)

// ProfileFor returns the calibrated profile of a benchmark.
func ProfileFor(k Kind) Profile { return workload.ProfileFor(k) }

// BalancingPolicies lists the workload-balancing policy names accepted by
// Config.Balance, in the paper's order.
func BalancingPolicies() []string { return balancer.Names() }

// DevicePolicies lists the device-level scheduling policy names accepted by
// Config.DevPolicy.
func DevicePolicies() []string { return []string{"none", "TFS", "LAS", "PS"} }

// Time is virtual time in microseconds.
type Time = sim.Time

// Time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Metrics.

// WeightedSpeedup is the paper's equation (2).
func WeightedSpeedup(alone, shared []Time) float64 {
	return metrics.WeightedSpeedup(alone, shared)
}

// JainFairness is the paper's equation (3).
func JainFairness(x []float64) float64 { return metrics.JainFairness(x) }

// Table is a printable figure: labels × named series.
type Table = metrics.Table

// Experiments.
type (
	// Suite regenerates the paper's tables and figures.
	Suite = experiments.Suite
	// SuiteOptions scales the experiment suite.
	SuiteOptions = experiments.Options
	// Fig2Result carries Figure 2's utilization timelines.
	Fig2Result = experiments.Fig2Result
)

// NewSuite creates an experiment suite.
func NewSuite(opt SuiteOptions) *Suite { return experiments.NewSuite(opt) }

// SchedulerConfig tunes the device-level scheduler.
type SchedulerConfig = devsched.Config

// Reporting.

// ReportPage assembles tables and text blocks into a standalone HTML report
// with inline SVG charts.
type ReportPage = report.Page

// NewReportPage creates an HTML report page.
func NewReportPage(title string) *ReportPage { return report.NewPage(title) }

// BarChartSVG renders a table as a grouped-bar SVG fragment.
func BarChartSVG(t *Table) string { return report.BarChart(t, report.ChartOptions{}) }

// RequestEvent is one row of a run's request log.
type RequestEvent = core.RequestEvent
