// Package stringsched is the public API of the Strings reproduction: a
// deterministic, simulation-backed implementation of "Scheduling
// Multi-tenant Cloud Workloads on Accelerator-based Systems" (SC'14).
//
// The package exposes three layers:
//
//   - Cluster construction and execution (NewCluster, Cluster.Run): build a
//     multi-node GPU server, pick a runtime (bare CUDA, Rain, or Strings),
//     a workload-balancing policy and a device-level scheduling policy, and
//     drive request streams through it on a virtual clock.
//
//   - Workloads (Benchmarks, Profile, StreamSpec): the paper's Table I
//     applications, calibrated against the Tesla C2050 reference device,
//     plus the SPECpower-style negative-exponential arrival model.
//
//   - Experiments (NewSuite and the Fig*/TableI/Ablation* methods):
//     regenerate every table and figure of the paper's evaluation.
//
// Everything runs in virtual time: experiments spanning tens of simulated
// minutes complete in milliseconds, and identical seeds give bit-identical
// results.
package stringsched

import (
	"repro/internal/balancer"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/devsched"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/interpose"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/sim/shard"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported core types: cluster construction and execution.
type (
	// Config describes a deployment: nodes, runtime mode and policies.
	Config = core.Config
	// NodeConfig lists one node's GPUs.
	NodeConfig = core.NodeConfig
	// Mode selects the runtime serving GPU work.
	Mode = core.Mode
	// Cluster is a wired deployment ready to run request streams.
	Cluster = core.Cluster
	// RunResult aggregates an experiment run.
	RunResult = core.RunResult
	// ShardStats reports the parallel shard coordinator's window counters
	// (see Cluster.ShardStats; zero-valued when the run did not shard).
	ShardStats = shard.Stats
	// DeviceSpec describes a GPU's capabilities.
	DeviceSpec = gpu.Spec
)

// Runtime modes.
const (
	// ModeCUDA is static provisioning on the bare CUDA runtime.
	ModeCUDA = core.ModeCUDA
	// ModeRain is the authors' prior scheduler (one backend process per
	// application).
	ModeRain = core.ModeRain
	// ModeStrings is the paper's system (context packing + two-level
	// scheduling).
	ModeStrings = core.ModeStrings
)

// The paper's testbed devices.
var (
	Quadro2000 = gpu.Quadro2000
	Quadro4000 = gpu.Quadro4000
	TeslaC2050 = gpu.TeslaC2050
	TeslaC2070 = gpu.TeslaC2070
)

// NewCluster builds a cluster from cfg.
func NewCluster(cfg Config) (*Cluster, error) { return core.New(cfg) }

// MIG-style device partitioning: a DeviceSpec carrying slice profiles (see
// DeviceSpec.WithMIG) can be carved into isolated slices, and StreamSpecs
// naming a SliceProfile get their tenant a dedicated slice instead of a
// share of a whole device.
type (
	// SliceProfile is one allowed slice shape (name, compute sevenths,
	// dedicated memory).
	SliceProfile = gpu.SliceProfile
	// Partition is the carve/release ledger of one partitionable device.
	Partition = gpu.Partition
)

// SliceFractions is the compute-fraction denominator of slice profiles:
// shapes are sized in sevenths of the parent device, as MIG does.
const SliceFractions = gpu.SliceFractions

// MIGProfiles returns the standard 1g..7g slice-profile table for a device
// with the given memory capacity.
func MIGProfiles(memBytes int64) []SliceProfile { return gpu.MIGProfiles(memBytes) }

// GID is a gPool-global GPU identifier.
type GID = balancer.GID

// Workload types.
type (
	// Kind identifies a Table I benchmark.
	Kind = workload.Kind
	// Profile is a calibrated application execution plan.
	Profile = workload.Profile
	// StreamSpec describes one stream of end-user requests.
	StreamSpec = workload.StreamSpec
	// Pair is one of the paper's 24 Group A × Group B mixes.
	Pair = workload.Pair
)

// Table I benchmarks.
const (
	DXTC            = workload.DXTC
	Scan            = workload.Scan
	BinomialOptions = workload.BinomialOptions
	MatrixMultiply  = workload.MatrixMultiply
	Histogram       = workload.Histogram
	Eigenvalues     = workload.Eigenvalues
	BlackScholes    = workload.BlackScholes
	MonteCarlo      = workload.MonteCarlo
	Gaussian        = workload.Gaussian
	SortingNetworks = workload.SortingNetworks
)

// Pairs returns the 24 workload pairs A..X.
func Pairs() []Pair { return workload.Pairs() }

// Style selects how an application issues its GPU work.
type Style = workload.Style

// Application styles: the CUDA-SDK synchronous default, and a hand-tuned
// double-buffered pipeline over explicit streams.
const (
	StyleSync        = workload.StyleSync
	StylePipelined   = workload.StylePipelined
	StyleMultiThread = workload.StyleMultiThread
)

// ProfileFor returns the calibrated profile of a benchmark.
func ProfileFor(k Kind) Profile { return workload.ProfileFor(k) }

// BalancingPolicies lists the workload-balancing policy names accepted by
// Config.Balance, in the paper's order. Config.Balance additionally accepts
// "Frag", the fragmentation-gradient slice-placement policy (it behaves as
// GMin for whole-device requests, so it is omitted from the paper's list).
func BalancingPolicies() []string { return balancer.Names() }

// DevicePolicies lists the device-level scheduling policy names accepted by
// Config.DevPolicy.
func DevicePolicies() []string { return []string{"none", "TFS", "LAS", "PS"} }

// Time is virtual time in microseconds.
type Time = sim.Time

// Time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Metrics.

// WeightedSpeedup is the paper's equation (2).
func WeightedSpeedup(alone, shared []Time) float64 {
	return metrics.WeightedSpeedup(alone, shared)
}

// JainFairness is the paper's equation (3).
func JainFairness(x []float64) float64 { return metrics.JainFairness(x) }

// Table is a printable figure: labels × named series.
type Table = metrics.Table

// Experiments.
type (
	// Suite regenerates the paper's tables and figures.
	Suite = experiments.Suite
	// SuiteOptions scales the experiment suite.
	SuiteOptions = experiments.Options
	// Fig2Result carries Figure 2's utilization timelines.
	Fig2Result = experiments.Fig2Result
)

// NewSuite creates an experiment suite.
func NewSuite(opt SuiteOptions) *Suite { return experiments.NewSuite(opt) }

// SchedulerConfig tunes the device-level scheduler.
type SchedulerConfig = devsched.Config

// Reporting.

// ReportPage assembles tables and text blocks into a standalone HTML report
// with inline SVG charts.
type ReportPage = report.Page

// NewReportPage creates an HTML report page.
func NewReportPage(title string) *ReportPage { return report.NewPage(title) }

// BarChartSVG renders a table as a grouped-bar SVG fragment.
func BarChartSVG(t *Table) string { return report.BarChart(t, report.ChartOptions{}) }

// RequestEvent is one row of a run's request log.
type RequestEvent = core.RequestEvent

// Fault tolerance.

// Fault-injection types, usable through Config.Faults: a FaultPlan lists
// virtual-time faults (kill a node or GPU, stall or degrade a device) that
// the cluster applies during the run.
type (
	// FaultPlan schedules deterministic faults on the virtual clock.
	FaultPlan = faults.Plan
	// Fault is one scheduled fault.
	Fault = faults.Fault
	// FaultKind selects what a fault does.
	FaultKind = faults.Kind
)

// Fault kinds.
const (
	// KillNode permanently kills every GPU backend on one node.
	KillNode = faults.KillNode
	// KillGPU permanently kills one GPU backend.
	KillGPU = faults.KillGPU
	// StallGPU freezes one backend for a duration, then resumes it.
	StallGPU = faults.StallGPU
	// DegradeGPU multiplies one backend's service times from then on.
	DegradeGPU = faults.DegradeGPU
)

// Recovery configures the interposer's failure detector and retry/failover
// machinery, usable through Config.Recovery. The zero value disables it.
type Recovery = interpose.Recovery

// Health is a gPool device's failure-detector state (Healthy, Suspect or
// Dead), as reported in device status tables.
type Health = balancer.Health

// Health states.
const (
	// Healthy devices receive new work.
	Healthy = balancer.Healthy
	// Suspect devices have missed calls but are not yet declared dead.
	Suspect = balancer.Suspect
	// Dead devices are skipped by placement and never return.
	Dead = balancer.Dead
)

// ErrBackendLost is returned by CUDA calls whose backend failed and could
// not be recovered; affected requests count as Lost, not as errors.
var ErrBackendLost = cuda.ErrBackendLost

// Observability.

// Tracing types, usable through Config.Recorder: a TraceRecorder collects
// virtual-time spans, events and decision-audit records across the request
// path; a TraceSet is its exportable snapshot (Chrome trace JSON, JSONL,
// text timelines).
type (
	// TraceRecorder records spans/events/decisions for one run.
	TraceRecorder = trace.Recorder
	// TraceSet is a recorder snapshot ready for export.
	TraceSet = trace.Set
	// TraceSpan is one virtual-time interval.
	TraceSpan = trace.Span
	// TraceDecision is one decision-audit record.
	TraceDecision = trace.Decision
)

// NewTraceRecorder returns an enabled trace recorder for Config.Recorder.
func NewTraceRecorder() *TraceRecorder { return trace.New() }

// InstrumentRegistry is a named collection of counters and histograms.
type InstrumentRegistry = metrics.Registry
