package stringsched_test

import (
	"fmt"

	"repro/stringsched"
)

// ExampleNewCluster runs a small burst of Gaussian-elimination requests
// through the Strings runtime on a two-GPU node.
func ExampleNewCluster() {
	cluster, err := stringsched.NewCluster(stringsched.Config{
		Seed: 1,
		Nodes: []stringsched.NodeConfig{
			{Devices: []stringsched.DeviceSpec{stringsched.Quadro2000, stringsched.TeslaC2050}},
		},
		Mode:    stringsched.ModeStrings,
		Balance: "GMin",
	})
	if err != nil {
		panic(err)
	}
	r, err := cluster.Run([]stringsched.StreamSpec{{
		Kind: stringsched.Gaussian, Count: 3, LambdaFactor: 0.6,
		Node: 0, Tenant: 1, Weight: 1,
	}})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d requests finished\n", r.Finished)
	// Output: 3 requests finished
}

// ExampleJainFairness evaluates the paper's equation (3).
func ExampleJainFairness() {
	fmt.Printf("%.2f\n", stringsched.JainFairness([]float64{1, 1, 1, 1}))
	fmt.Printf("%.2f\n", stringsched.JainFairness([]float64{1, 0, 0, 0}))
	// Output:
	// 1.00
	// 0.25
}

// ExampleWeightedSpeedup evaluates the paper's equation (2).
func ExampleWeightedSpeedup() {
	alone := []stringsched.Time{100 * stringsched.Second, 60 * stringsched.Second}
	shared := []stringsched.Time{50 * stringsched.Second, 30 * stringsched.Second}
	fmt.Printf("%.1fx\n", stringsched.WeightedSpeedup(alone, shared))
	// Output: 2.0x
}

// ExampleProfileFor inspects a Table I benchmark's calibrated profile.
func ExampleProfileFor() {
	p := stringsched.ProfileFor(stringsched.MonteCarlo)
	fmt.Printf("%s: %v solo, %.0f%% GPU time\n", p.Name, p.SoloRuntime, p.GPUPct)
	// Output: MonteCarlo: 8.000s solo, 85% GPU time
}

// ExamplePairs lists the first of the paper's 24 workload pairs.
func ExamplePairs() {
	fmt.Println(stringsched.Pairs()[0])
	// Output: A(DC-BS)
}
