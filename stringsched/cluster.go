package stringsched

import (
	"repro/internal/cluster"
	"repro/internal/workload"
)

// Cluster tier: the third scheduling level — a global scheduler placing
// open-arrival tenant streams onto M supernodes, each a full Strings
// deployment (see internal/cluster and DESIGN.md §16).
type (
	// ClusterConfig describes a cluster-tier run: the supernode fleet, the
	// placement policy, the open-arrival tenant population and the
	// staleness/admission knobs of the shared-state scheduler.
	ClusterConfig = cluster.Config
	// ClusterSupernode is one supernode: a core fleet plus its admission
	// slot capacity.
	ClusterSupernode = cluster.Supernode
	// ClusterResult aggregates a cluster run: the placement log, the M
	// supernode runs and the cluster-scope SLO metrics.
	ClusterResult = cluster.Result
	// ClusterPlacement records one tenant's admission.
	ClusterPlacement = cluster.Placement
	// ClusterPlacementLog is the placement engine's deterministic output.
	ClusterPlacementLog = cluster.PlacementLog
	// ClusterSupernodeResult is one supernode's share of a cluster run.
	ClusterSupernodeResult = cluster.SupernodeResult
	// OpenArrivalSpec configures the open-arrival tenant generator
	// (Poisson/diurnal/bursty birth-death processes).
	OpenArrivalSpec = workload.OpenArrivalSpec
	// TenantBirth is one generated tenant: birth instant, lifetime and
	// request-stream shape.
	TenantBirth = workload.TenantBirth
)

// Cluster placement policies.
const (
	// ClusterPolicyLeastLoaded places tenants on the supernode with the
	// most free admission slots.
	ClusterPolicyLeastLoaded = cluster.PolicyLeastLoaded
	// ClusterPolicyFrag places tenants by fragmentation gradient (the Frag
	// slice measure lifted to cluster scope).
	ClusterPolicyFrag = cluster.PolicyFrag
)

// ClusterPolicies lists the cluster placement policies in display order.
func ClusterPolicies() []string { return cluster.Policies() }

// RunCluster executes a full cluster-tier run: generate the open-arrival
// population, place it with the shared-state optimistic engine, execute the
// supernode runs (bit-identical at any Workers/Shards setting) and
// aggregate the SLO metrics.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) { return cluster.Run(cfg) }

// ParseOpenArrivalSpec parses the textual open-arrival form, e.g.
// "poisson:rate=0.5,horizon=2000s,life=80s,lambda=800ms".
func ParseOpenArrivalSpec(text string) (OpenArrivalSpec, error) {
	return workload.ParseOpenArrivalSpec(text)
}
