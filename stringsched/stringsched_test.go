package stringsched_test

import (
	"testing"

	"repro/stringsched"
)

func TestFacadeEndToEnd(t *testing.T) {
	cfg := stringsched.Config{
		Seed: 1,
		Nodes: []stringsched.NodeConfig{
			{Devices: []stringsched.DeviceSpec{stringsched.Quadro2000, stringsched.TeslaC2050}},
		},
		Mode:      stringsched.ModeStrings,
		Balance:   "GMin",
		DevPolicy: "PS",
	}
	c, err := stringsched.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run([]stringsched.StreamSpec{{
		Kind: stringsched.Gaussian, Count: 4, LambdaFactor: 0.6,
		Node: 0, Tenant: 1, Weight: 1,
	}})
	if err != nil || len(r.Errors) > 0 {
		t.Fatalf("run: %v %v", err, r.Errors)
	}
	if r.Finished != 4 {
		t.Fatalf("finished = %d", r.Finished)
	}
}

func TestFacadePolicyLists(t *testing.T) {
	if len(stringsched.BalancingPolicies()) != 7 {
		t.Fatalf("balancing policies = %v", stringsched.BalancingPolicies())
	}
	if len(stringsched.DevicePolicies()) != 4 {
		t.Fatalf("device policies = %v", stringsched.DevicePolicies())
	}
	if len(stringsched.Pairs()) != 24 {
		t.Fatal("pairs != 24")
	}
}

func TestFacadeMetrics(t *testing.T) {
	if ws := stringsched.WeightedSpeedup(
		[]stringsched.Time{100}, []stringsched.Time{50}); ws != 2 {
		t.Fatalf("WeightedSpeedup = %v", ws)
	}
	if f := stringsched.JainFairness([]float64{1, 1}); f != 1 {
		t.Fatalf("JainFairness = %v", f)
	}
}

func TestFacadeProfile(t *testing.T) {
	p := stringsched.ProfileFor(stringsched.MonteCarlo)
	if p.Short != "MC" || p.SoloRuntime <= 0 {
		t.Fatalf("profile = %+v", p.Spec)
	}
}

func TestFacadeSuite(t *testing.T) {
	s := stringsched.NewSuite(stringsched.SuiteOptions{
		Seed: 1, Requests: 4,
		Apps: []stringsched.Kind{stringsched.Gaussian},
	})
	tab := s.TableI()
	if tab.Row("GPU Time %") == nil {
		t.Fatal("TableI missing rows")
	}
}

func TestFacadeSlicePlacement(t *testing.T) {
	dev := stringsched.TeslaC2050.WithMIG()
	if !dev.Partitionable() {
		t.Fatal("WithMIG spec must be partitionable")
	}
	if len(stringsched.MIGProfiles(8<<30)) != 5 {
		t.Fatal("MIGProfiles table size")
	}
	cfg := stringsched.Config{
		Seed:    1,
		Nodes:   []stringsched.NodeConfig{{Devices: []stringsched.DeviceSpec{dev, dev}}},
		Mode:    stringsched.ModeStrings,
		Balance: "Frag",
	}
	c, err := stringsched.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run([]stringsched.StreamSpec{
		{Kind: stringsched.Gaussian, Count: 3, LambdaFactor: 0.6,
			Node: 0, Tenant: 1, Weight: 1, SliceProfile: "3g"},
		{Kind: stringsched.Gaussian, Count: 3, LambdaFactor: 0.6,
			Node: 0, Tenant: 2, Weight: 1, SliceProfile: "7g"},
	})
	if err != nil || len(r.Errors) > 0 {
		t.Fatalf("run: %v %v", err, r.Errors)
	}
	if r.SliceCarves != 2 || r.SliceReleases != 2 {
		t.Fatalf("carves/releases = %d/%d", r.SliceCarves, r.SliceReleases)
	}
	if r.StrandedRatio() < 0 || r.StrandedRatio() > 1 {
		t.Fatalf("StrandedRatio = %v", r.StrandedRatio())
	}
}
