package stringsched

import "fmt"

// MegaResult summarizes one mega macro-run: a single long stream of
// light-profile requests pushed through a two-GPU Strings node. It exists to
// answer the scaling question the figure experiments cannot — does the kernel
// hold its per-event cost at millions of requests — and to expose the
// fast-forward counters that only matter at this scale.
type MegaResult struct {
	Requests int // requests submitted
	Finished int // requests that completed
	Events   uint64
	EndTime  Time // virtual time at which the last event completed

	// Fast-forward instrumentation: how often the kernel's clock jumped
	// over a quiescent stretch longer than the horizon, and how much
	// virtual time those jumps covered in total. The mega stream's
	// inter-arrival gaps dwarf its service times, so most of the virtual
	// timeline is skipped; FFSkipped/EndTime is the skip ratio.
	FFJumps   uint64
	FFSkipped Time
}

// RunMega drives the mega macro-scenario: requests Gaussian-elimination
// requests (the lightest Table I profile) arriving as one Poisson stream at a
// two-GPU Strings node under GMin balancing. Identical seeds give
// bit-identical results; the scenario is shared between the strings-bench
// `-exp mega` benchmark and the (short-mode-skipped) smoke test so both
// measure the same thing.
func RunMega(seed int64, requests int) (MegaResult, error) {
	c, err := NewCluster(Config{
		Seed: seed,
		Nodes: []NodeConfig{{Devices: []DeviceSpec{
			Quadro2000, TeslaC2050,
		}}},
		Mode:    ModeStrings,
		Balance: "GMin",
	})
	if err != nil {
		return MegaResult{}, err
	}
	r, err := c.Run([]StreamSpec{{
		Kind: Gaussian, Count: requests, LambdaFactor: 1.5,
		Node: 0, Tenant: 1, Weight: 1,
	}})
	if err != nil {
		return MegaResult{}, err
	}
	if len(r.Errors) > 0 {
		return MegaResult{}, fmt.Errorf("mega run errors: %v", r.Errors)
	}
	jumps, skipped := c.K.FastForwards()
	return MegaResult{
		Requests:  requests,
		Finished:  r.Finished,
		Events:    c.K.Dispatched(),
		EndTime:   r.EndTime,
		FFJumps:   jumps,
		FFSkipped: skipped,
	}, nil
}

// SkipRatio is the fraction of the virtual timeline the kernel fast-forwarded
// over instead of stepping through.
func (m MegaResult) SkipRatio() float64 {
	if m.EndTime <= 0 {
		return 0
	}
	return float64(m.FFSkipped) / float64(m.EndTime)
}

// megaShardNodes is the sharded mega fleet: four identical two-GPU nodes, one
// shard kernel each.
const megaShardNodes = 4

// RunMegaSharded drives the sharded mega macro-scenario: the same
// light-profile Gaussian traffic as RunMega, split across a four-node fleet
// (one Poisson stream per node, one tenant per node) so the cluster
// partitions into four shard kernels advancing concurrently under the
// conservative window protocol. shards sets the barrier worker count
// (Config.Shards); the simulated outcome is bit-identical for any shards >= 1
// — only wall-clock time changes — which is exactly what the benchmark
// harness asserts when it runs the scenario at 1 and N workers. FFJumps and
// FFSkipped sum over all four shard kernels (each skips its own quiescent
// stretches of the shared timeline), so SkipRatio can exceed 1 here.
func RunMegaSharded(seed int64, requests, shards int) (MegaResult, ShardStats, error) {
	nodes := make([]NodeConfig, megaShardNodes)
	for i := range nodes {
		nodes[i] = NodeConfig{Devices: []DeviceSpec{Quadro2000, TeslaC2050}}
	}
	c, err := NewCluster(Config{
		Seed:    seed,
		Nodes:   nodes,
		Mode:    ModeStrings,
		Balance: "GMin",
		Shards:  shards,
	})
	if err != nil {
		return MegaResult{}, ShardStats{}, err
	}
	defer c.Close()
	if !c.Sharded() {
		return MegaResult{}, ShardStats{}, fmt.Errorf("mega sharded: fleet did not shard (shards=%d)", shards)
	}
	streams := make([]StreamSpec, megaShardNodes)
	per := requests / megaShardNodes
	for i := range streams {
		n := per
		if i == 0 {
			n += requests % megaShardNodes
		}
		streams[i] = StreamSpec{
			Kind: Gaussian, Count: n, LambdaFactor: 1.5,
			Node: i, Tenant: int64(i + 1), Weight: 1,
		}
	}
	r, err := c.Run(streams)
	if err != nil {
		return MegaResult{}, ShardStats{}, err
	}
	if len(r.Errors) > 0 {
		return MegaResult{}, ShardStats{}, fmt.Errorf("mega sharded run errors: %v", r.Errors)
	}
	jumps, skipped := c.FastForwards()
	return MegaResult{
		Requests:  requests,
		Finished:  r.Finished,
		Events:    c.Dispatched(),
		EndTime:   r.EndTime,
		FFJumps:   jumps,
		FFSkipped: skipped,
	}, c.ShardStats(), nil
}
