package parallel

import "time"

// Stopwatch measures host wall time around whole simulations. It exists so
// the bench harnesses have one audited place to touch the wall clock: the
// measured duration is reporting output only and never reaches simulated
// state, which is the standing justification for the simclock suppressions
// below. Code outside benchmarking should not need it.
type Stopwatch struct {
	start time.Time //lint:allow simclock -- bench harness stopwatch: wall time measures the simulator itself and never reaches simulated state
}

// StartStopwatch begins timing.
func StartStopwatch() Stopwatch {
	return Stopwatch{start: time.Now()} //lint:allow simclock -- bench harness stopwatch: wall time measures the simulator itself and never reaches simulated state
}

// Seconds returns the wall seconds elapsed since the stopwatch started.
func (s Stopwatch) Seconds() float64 {
	return time.Since(s.start).Seconds() //lint:allow simclock -- bench harness stopwatch: wall time measures the simulator itself and never reaches simulated state
}

// Nanoseconds returns the wall nanoseconds elapsed since the stopwatch
// started.
func (s Stopwatch) Nanoseconds() int64 {
	return time.Since(s.start).Nanoseconds() //lint:allow simclock -- bench harness stopwatch: wall time measures the simulator itself and never reaches simulated state
}
