// Package parallel is the single blessed home of host concurrency in the
// reproduction. Everything simulated runs single-threaded under the
// kernel's baton chain (DESIGN.md §8, rule 4); everything that fans
// independent simulations out across host cores goes through this package,
// which owns the repository's one worker-pool goroutine site and its
// //lint:allow rawgo justification.
//
// The determinism contract: callers hand Do/Map a body whose iterations are
// fully independent — each builds its own cluster and kernel, shares no
// simulated state, and communicates results only by writing its own index's
// slot. Under that contract results are bit-identical at every worker
// count, which is what lets experiment grids scale across cores without
// giving up the simulator's reproducibility guarantees.
package parallel

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: nonpositive selects
// GOMAXPROCS, and the result is clamped to n (there is never a reason to
// park more workers than there are items).
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Do runs fn(i) for every i in [0, n), fanning out over a bounded worker
// pool. workers <= 0 selects GOMAXPROCS; workers == 1 (or n <= 1) runs
// inline with no goroutines at all, which is the reference execution every
// parallel run must reproduce. Indices are claimed from a shared counter,
// so assignment order is racy by design — the body must not care which
// worker runs which index, only that each index runs exactly once.
//
// Panics in the body are caught per index; every index still runs, and the
// first panic observed is re-raised on the caller's goroutine after the
// pool drains, matching inline semantics closely enough for harness use.
// Workers run under pprof labels (parallel_worker=N) so CPU profiles of a
// sweep attribute samples to pool workers.
func Do(n, workers int, fn func(i int)) {
	workers = Workers(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next       atomic.Int64
		wg         sync.WaitGroup
		panicMu    sync.Mutex
		firstPanic any
	)
	body := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if firstPanic == nil {
					firstPanic = r
				}
				panicMu.Unlock()
			}
		}()
		fn(i)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		label := pprof.Labels("parallel_worker", strconv.Itoa(w))
		go func() { //lint:allow rawgo -- the blessed worker pool: each iteration owns a private cluster and kernel and shares nothing with the simulated world (package doc)
			defer wg.Done()
			pprof.Do(context.Background(), label, func(context.Context) {
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					body(i)
				}
			})
		}()
	}
	wg.Wait()
	if firstPanic != nil {
		panic(firstPanic)
	}
}

// Map is the ordered collector: it runs fn over [0, n) with Do and returns
// the results in index order, independent of which worker computed which
// index or in what order they finished.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	Do(n, workers, func(i int) { out[i] = fn(i) })
	return out
}
