package parallel

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

func TestDoRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 57
		counts := make([]int32, n)
		Do(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoZeroAndOneItems(t *testing.T) {
	Do(0, 8, func(int) { t.Error("body ran for n=0") })
	ran := false
	Do(1, 8, func(i int) { ran = true })
	if !ran {
		t.Error("body did not run for n=1")
	}
}

func TestMapOrdersResultsByIndex(t *testing.T) {
	want := make([]int, 200)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 7} {
		got := Map(len(want), workers, func(i int) int { return i * i })
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: Map returned out-of-order results", workers)
		}
	}
}

func TestDoPanicPropagatesAndDrains(t *testing.T) {
	n := 40
	var ran atomic.Int32
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic in body was swallowed")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
		// Every index still ran: a panic does not silently drop work.
		if got := ran.Load(); got != int32(n) {
			t.Errorf("%d of %d indices ran after panic", got, n)
		}
	}()
	Do(n, 4, func(i int) {
		ran.Add(1)
		if i == 3 {
			panic("boom")
		}
	})
}

func TestDoInlinePanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inline (workers=1) panic was swallowed")
		}
	}()
	Do(3, 1, func(i int) {
		if i == 1 {
			panic("inline")
		}
	})
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 100) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(16, 3); got != 3 {
		t.Errorf("Workers(16, 3) = %d, want clamp to 3", got)
	}
	if got := Workers(4, 100); got != 4 {
		t.Errorf("Workers(4, 100) = %d, want 4", got)
	}
}

// TestKernelArenaReuses proves Put kernels are deterministically handed back
// out (the arena is a free list, not a best-effort pool) and that a reused
// kernel behaves like a fresh one after Reset.
func TestKernelArenaReuses(t *testing.T) {
	var a KernelArena
	k1 := a.Get()
	k1.Go("p", func(p *sim.Proc) { p.Sleep(5) })
	k1.Run()
	a.Put(k1)

	k2 := a.Get()
	if k2 != k1 {
		t.Fatal("arena did not reuse the pooled kernel")
	}
	k2.Reset(3)
	if k2.Now() != 0 || k2.Dispatched() != 0 {
		t.Fatal("reused kernel not reset")
	}
	gets, reused := a.Stats()
	if gets != 2 || reused != 1 {
		t.Errorf("Stats = (%d, %d), want (2, 1)", gets, reused)
	}
}

func TestKernelArenaConcurrent(t *testing.T) {
	var a KernelArena
	Do(64, 8, func(i int) {
		k := a.Get()
		k.Reset(int64(i))
		k.Go("w", func(p *sim.Proc) { p.Sleep(sim.Time(i)) })
		k.Run()
		a.Put(k)
	})
	gets, _ := a.Stats()
	if gets != 64 {
		t.Errorf("gets = %d, want 64", gets)
	}
}

func TestStopwatchMonotone(t *testing.T) {
	sw := StartStopwatch()
	if sw.Seconds() < 0 || sw.Nanoseconds() < 0 {
		t.Error("stopwatch went backwards")
	}
}
