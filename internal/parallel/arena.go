package parallel

import (
	"sync"

	"repro/internal/sim"
)

// KernelArena recycles simulation kernels across runs. A kernel retains the
// backing arrays its event heap, now-queue and waiter rings grew during a
// run; resetting and reusing one (sim.Kernel.Reset) lets a worker that
// executes hundreds of experiment cells skip each run's ramp-up
// allocations. Reuse is semantically invisible: Reset restores the exact
// state NewKernel would produce, so results never depend on which kernel an
// arena happens to hand out.
//
// The arena is a plain mutex-guarded free list rather than a sync.Pool:
// reuse is deterministic (a Put kernel is always handed back out, never
// dropped by the GC), which keeps the reused-kernel code path exercised on
// every run instead of probabilistically.
type KernelArena struct {
	mu   sync.Mutex
	free []*sim.Kernel
	gets int
	hits int
}

// Get returns a kernel in unspecified state; the caller must Reset it (or
// hand it to a constructor that does) before use.
func (a *KernelArena) Get() *sim.Kernel {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.gets++
	if n := len(a.free); n > 0 {
		k := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		a.hits++
		return k
	}
	return sim.NewKernel(0)
}

// Put returns a kernel to the arena. The kernel must be quiescent: its run
// finished, no caller retains references that would observe the next
// user's Reset.
func (a *KernelArena) Put(k *sim.Kernel) {
	if k == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.free = append(a.free, k) //lint:allow poolsafe -- kernels carry megabytes of warm backing arrays; the next user calls Reset, which zeroes without discarding them
}

// Stats reports how many Gets were served and how many of them reused a
// pooled kernel (for tests and tuning).
func (a *KernelArena) Stats() (gets, reused int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gets, a.hits
}
