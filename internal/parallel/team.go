package parallel

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
)

// Team is the persistent counterpart of Do for callers that run very many
// small barrier phases: the shard coordinator advances a handful of shard
// kernels per conservative time window, millions of windows per run, and
// spawning a goroutine per shard per window would cost more than the work.
// A Team parks its workers once at construction and reuses them for every
// phase, so a phase costs a channel wake per worker instead of goroutine
// creation.
//
// The determinism contract is Do's: phase bodies must be independent per
// index (each advances a private kernel and writes only its own index's
// results), so which worker runs which index can never matter. Run with a
// single-worker team — or a phase of one item — executes inline on the
// caller's goroutine, which is the reference execution every parallel phase
// must reproduce.
type Team struct {
	workers int
	tasks   chan teamTask
	closed  bool

	wg         sync.WaitGroup
	panicMu    sync.Mutex
	firstPanic any
}

// teamTask is one claimed phase index.
type teamTask struct {
	fn func(i int)
	i  int
	wg *sync.WaitGroup
}

// NewTeam creates a team of the given size. workers <= 1 creates an inline
// team with no goroutines at all. Close releases the workers; a team is
// meant to live for one coordinated run (or one long-lived coordinator),
// not per phase.
func NewTeam(workers int) *Team {
	t := &Team{workers: workers}
	if workers <= 1 {
		return t
	}
	t.tasks = make(chan teamTask, workers)
	for w := 0; w < workers; w++ {
		t.wg.Add(1)
		label := pprof.Labels("team_worker", strconv.Itoa(w))
		go func() { //lint:allow rawgo -- the blessed worker pool's persistent variant: phase bodies advance private shard kernels and share nothing (package doc)
			defer t.wg.Done()
			pprof.Do(context.Background(), label, func(context.Context) {
				for task := range t.tasks {
					t.runOne(task)
				}
			})
		}()
	}
	return t
}

// Workers returns the team's configured worker count (minimum 1).
func (t *Team) Workers() int {
	if t.workers < 1 {
		return 1
	}
	return t.workers
}

// runOne executes one task, capturing panics for Run to re-raise.
func (t *Team) runOne(task teamTask) {
	defer task.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			t.panicMu.Lock()
			if t.firstPanic == nil {
				t.firstPanic = r
			}
			t.panicMu.Unlock()
		}
	}()
	task.fn(task.i)
}

// Run executes fn(i) for every i in [0, n) and blocks until all have
// finished (the barrier). Inline teams, and phases of at most one item, run
// on the caller's goroutine. The first panic raised by any index is
// re-raised here after the barrier, matching Do.
func (t *Team) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if t.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if t.closed {
		panic("parallel: Team.Run after Close")
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		t.tasks <- teamTask{fn: fn, i: i, wg: &wg}
	}
	wg.Wait()
	t.panicMu.Lock()
	p := t.firstPanic
	t.firstPanic = nil
	t.panicMu.Unlock()
	if p != nil {
		panic(p)
	}
}

// Close releases the team's workers. Idempotent; Run must not be called
// after Close. Inline teams have nothing to release.
func (t *Team) Close() {
	if t.closed || t.workers <= 1 {
		t.closed = true
		return
	}
	t.closed = true
	close(t.tasks)
	t.wg.Wait()
}
