package parallel

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// runPhases executes a fixed phase script on a team and returns the
// accumulated per-index results. Each phase writes only its own index, the
// Team determinism contract.
func runPhases(t *Team, phases, n int) [][]int {
	out := make([][]int, phases)
	for ph := 0; ph < phases; ph++ {
		res := make([]int, n)
		t.Run(n, func(i int) { res[i] = ph*1000 + i*i })
		out[ph] = res
	}
	return out
}

func TestTeamInlineMatchesParallel(t *testing.T) {
	ref := runPhases(NewTeam(1), 5, 8)
	for _, w := range []int{2, 4, 8} {
		tm := NewTeam(w)
		got := runPhases(tm, 5, 8)
		tm.Close()
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d diverged from inline reference", w)
		}
	}
}

func TestTeamRunIsABarrier(t *testing.T) {
	tm := NewTeam(4)
	defer tm.Close()
	var done atomic.Int64
	for phase := 0; phase < 50; phase++ {
		tm.Run(7, func(i int) { done.Add(1) })
		if got := done.Load(); got != int64((phase+1)*7) {
			t.Fatalf("after phase %d: %d tasks done, want %d", phase, got, (phase+1)*7)
		}
	}
}

func TestTeamPanicPropagates(t *testing.T) {
	tm := NewTeam(3)
	defer tm.Close()
	func() {
		defer func() {
			if r := recover(); r != "boom-2" {
				t.Fatalf("recovered %v, want boom-2", r)
			}
		}()
		tm.Run(6, func(i int) {
			if i == 2 {
				panic("boom-2")
			}
		})
	}()
	// The panic must not poison later phases.
	var n atomic.Int64
	tm.Run(6, func(i int) { n.Add(1) })
	if n.Load() != 6 {
		t.Fatalf("post-panic phase ran %d tasks, want 6", n.Load())
	}
}

func TestTeamInlinePanicPropagates(t *testing.T) {
	tm := NewTeam(1)
	defer func() {
		if r := recover(); r != "inline-boom" {
			t.Fatalf("recovered %v, want inline-boom", r)
		}
	}()
	tm.Run(3, func(i int) {
		if i == 1 {
			panic("inline-boom")
		}
	})
}

func TestTeamSingleItemRunsInline(t *testing.T) {
	tm := NewTeam(4)
	defer tm.Close()
	// n==1 must run on the caller's goroutine: an unsynchronized local
	// write is race-free only if so (the race detector enforces this).
	x := 0
	tm.Run(1, func(i int) { x = 41 + i })
	if x != 41 {
		t.Fatalf("x = %d, want 41", x)
	}
}

func TestTeamWorkersFloor(t *testing.T) {
	if got := NewTeam(0).Workers(); got != 1 {
		t.Fatalf("Workers() = %d, want 1", got)
	}
	if got := NewTeam(6).Workers(); got != 6 {
		t.Fatalf("Workers() = %d, want 6", got)
	}
}

func TestTeamCloseIdempotentAndRunAfterClosePanics(t *testing.T) {
	tm := NewTeam(2)
	tm.Close()
	tm.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run after Close did not panic")
		}
	}()
	tm.Run(4, func(int) {})
}

func TestTeamRunZeroAndNegative(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	tm.Run(0, func(int) { t.Fatal("fn called for n=0") })
	tm.Run(-3, func(int) { t.Fatal("fn called for n<0") })
}
