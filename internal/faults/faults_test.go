package faults

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// recorder captures fired faults with their virtual timestamps.
type recorder struct {
	k   *sim.Kernel
	log []string
}

func (r *recorder) stamp(s string) { r.log = append(r.log, fmt.Sprintf("%d:%s", int64(r.k.Now()), s)) }

func (r *recorder) KillNode(node int)             { r.stamp(fmt.Sprintf("killnode(%d)", node)) }
func (r *recorder) KillGPU(gid int)               { r.stamp(fmt.Sprintf("killgpu(%d)", gid)) }
func (r *recorder) StallGPU(gid int, d sim.Time)  { r.stamp(fmt.Sprintf("stall(%d,%d)", gid, int64(d))) }
func (r *recorder) DegradeGPU(gid int, f float64) { r.stamp(fmt.Sprintf("degrade(%d,%.1f)", gid, f)) }

func runPlan(plan Plan) []string {
	k := sim.NewKernel(1)
	rec := &recorder{k: k}
	Start(k, plan, rec)
	k.Run()
	return rec.log
}

func TestDisabledPlanSpawnsNothing(t *testing.T) {
	k := sim.NewKernel(1)
	rec := &recorder{k: k}
	Start(k, Plan{}, rec)
	k.Run()
	if len(rec.log) != 0 {
		t.Fatalf("empty plan fired %v", rec.log)
	}
	if k.Now() != 0 {
		t.Fatalf("empty plan advanced the clock to %v", k.Now())
	}
}

func TestFaultsFireAtScheduledTimes(t *testing.T) {
	log := runPlan(Plan{Faults: []Fault{
		{At: 30 * sim.Second, Kind: KillNode, Node: 1},
		{At: 10 * sim.Second, Kind: StallGPU, GID: 2, Dur: sim.Second},
		{At: 20 * sim.Second, Kind: DegradeGPU, GID: 3, Factor: 1.5},
		{At: 10 * sim.Second, Kind: KillGPU, GID: 0},
	}})
	// Sorted by time; the two t=10s faults keep schedule order (stable sort).
	want := []string{
		fmt.Sprintf("%d:stall(2,%d)", int64(10*sim.Second), int64(sim.Second)),
		fmt.Sprintf("%d:killgpu(0)", int64(10*sim.Second)),
		fmt.Sprintf("%d:degrade(3,1.5)", int64(20*sim.Second)),
		fmt.Sprintf("%d:killnode(1)", int64(30*sim.Second)),
	}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("fired %v, want %v", log, want)
	}
}

func TestJitterIsSeededAndDeterministic(t *testing.T) {
	plan := Plan{
		Faults: []Fault{
			{At: 5 * sim.Second, Kind: KillGPU, GID: 0},
			{At: 5 * sim.Second, Kind: KillGPU, GID: 1},
		},
		Seed:   42,
		Jitter: 2 * sim.Second,
	}
	a, b := runPlan(plan), runPlan(plan)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same plan diverged:\n%v\n%v", a, b)
	}
	plan.Seed = 43
	c := runPlan(plan)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different jitter seeds produced identical timing %v", a)
	}
	// Jitter never fires a fault before its scheduled time.
	base := runPlan(Plan{Faults: plan.Faults})
	if len(base) != 2 {
		t.Fatalf("base fired %v", base)
	}
}

func TestPlanInputNotMutated(t *testing.T) {
	in := []Fault{
		{At: 9 * sim.Second, Kind: KillGPU, GID: 1},
		{At: 1 * sim.Second, Kind: KillGPU, GID: 0},
	}
	orig := make([]Fault, len(in))
	copy(orig, in)
	runPlan(Plan{Faults: in, Seed: 7, Jitter: sim.Second})
	if !reflect.DeepEqual(in, orig) {
		t.Fatalf("Start mutated the caller's fault slice: %v", in)
	}
}

func TestStringsAreStable(t *testing.T) {
	cases := []struct {
		f    Fault
		want string
	}{
		{Fault{At: 5 * sim.Second, Kind: KillNode, Node: 1}, "KillNode(node=1)@5000000"},
		{Fault{At: sim.Second, Kind: KillGPU, GID: 2}, "KillGPU(gid=2)@1000000"},
		{Fault{Kind: StallGPU, GID: 3, Dur: sim.Second}, "StallGPU(gid=3,dur=1000000)@0"},
		{Fault{Kind: DegradeGPU, GID: 4, Factor: 1.5}, "DegradeGPU(gid=4,x1.50)@0"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
