// Package faults is the deterministic fault injector: a seeded,
// sim-clock-driven process that fires a configured schedule of backend
// failures — killing a whole node, killing a single GPU, stalling a GPU for
// a while, or degrading its service rate — against any Target. All timing
// runs on the virtual clock and all randomness flows through a threaded
// *rand.Rand seeded from the plan, so two runs of the same plan produce the
// same fault sequence event for event.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// Kind selects what a Fault does to its target.
type Kind int

// Fault kinds.
const (
	// KillNode permanently kills every GPU backend on Node.
	KillNode Kind = iota
	// KillGPU permanently kills the backend serving GID.
	KillGPU
	// StallGPU freezes the backend serving GID for Duration: calls in
	// flight hang, then service resumes.
	StallGPU
	// DegradeGPU multiplies the service time of every call on GID by
	// Factor from the fault time on.
	DegradeGPU
)

// String names the kind for traces and logs.
func (k Kind) String() string {
	switch k {
	case KillNode:
		return "KillNode"
	case KillGPU:
		return "KillGPU"
	case StallGPU:
		return "StallGPU"
	case DegradeGPU:
		return "DegradeGPU"
	default:
		return "Kind(?)"
	}
}

// Fault is one scheduled failure.
type Fault struct {
	At     sim.Time // virtual time the fault fires
	Kind   Kind
	Node   int      // KillNode target
	GID    int      // KillGPU / StallGPU / DegradeGPU target
	Dur    sim.Time // StallGPU: stall length
	Factor float64  // DegradeGPU: service-time multiplier (>1 slows)
}

// String renders the fault for traces.
func (f Fault) String() string {
	switch f.Kind {
	case KillNode:
		return fmt.Sprintf("%v(node=%d)@%d", f.Kind, f.Node, int64(f.At))
	case StallGPU:
		return fmt.Sprintf("%v(gid=%d,dur=%d)@%d", f.Kind, f.GID, int64(f.Dur), int64(f.At))
	case DegradeGPU:
		return fmt.Sprintf("%v(gid=%d,x%.2f)@%d", f.Kind, f.GID, f.Factor, int64(f.At))
	default:
		return fmt.Sprintf("%v(gid=%d)@%d", f.Kind, f.GID, int64(f.At))
	}
}

// Plan is a full injection schedule. The zero value is disabled.
type Plan struct {
	Faults []Fault

	// Seed seeds the jitter stream (independent of the simulation seed so
	// fault timing can be varied without disturbing arrivals).
	Seed int64

	// Jitter, when positive, shifts each fault's fire time by a uniform
	// offset in [0, Jitter) drawn from the seeded stream.
	Jitter sim.Time
}

// Enabled reports whether the plan schedules any faults.
func (p Plan) Enabled() bool { return len(p.Faults) > 0 }

// Target is what the injector fires faults into (the cluster).
type Target interface {
	KillNode(node int)
	KillGPU(gid int)
	StallGPU(gid int, d sim.Time)
	DegradeGPU(gid int, factor float64)
}

// Start launches the injector process on k. A disabled plan spawns nothing,
// so fault-free simulations carry zero extra events. Faults fire in
// (time, schedule-order) order; jitter is applied before sorting so the
// fire order is itself deterministic for a given plan.
func Start(k *sim.Kernel, plan Plan, t Target) {
	if !plan.Enabled() {
		return
	}
	seq := make([]Fault, len(plan.Faults))
	copy(seq, plan.Faults)
	if plan.Jitter > 0 {
		rng := rand.New(rand.NewSource(plan.Seed))
		for i := range seq {
			seq[i].At += sim.Time(rng.Int63n(int64(plan.Jitter)))
		}
	}
	sort.SliceStable(seq, func(i, j int) bool { return seq[i].At < seq[j].At })
	k.Go("fault-injector", func(p *sim.Proc) {
		for _, f := range seq {
			if f.At > p.Now() {
				p.Sleep(f.At - p.Now())
			}
			p.Tracef("inject %v", f)
			switch f.Kind {
			case KillNode:
				t.KillNode(f.Node)
			case KillGPU:
				t.KillGPU(f.GID)
			case StallGPU:
				t.StallGPU(f.GID, f.Dur)
			case DegradeGPU:
				t.DegradeGPU(f.GID, f.Factor)
			}
		}
	})
}
