package balancer

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rpcproto"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// The property tests drive every selection policy over randomized DST/SFT
// tables (seeded FoldSeed streams, so failures replay) and check the
// invariants the Mapper relies on:
//
//   - GMin/GWtMin return an argmin of their score over the Healthy rows
//     whenever one exists.
//   - GRR visits every healthy device exactly once per rotation.
//   - The feedback policies never select a non-Healthy row while a Healthy
//     one exists (a Dead pick would route work to a corpse).
//
// On failure the offending table is shrunk row by row before printing, so
// the counterexample is minimal.

const propertyRounds = 300

var propertyKinds = []string{"MC", "BS", "DC", "SC", "HI"}

// randTables builds a random DST/SFT pair. Row health is uniform over
// Healthy/Suspect/Dead, so the all-dead, mixed and all-healthy regimes are
// all exercised.
func randTables(rng *rand.Rand) (*DST, *SFT) {
	n := 1 + rng.Intn(8)
	rows := make([]*DSTEntry, n)
	for i := range rows {
		rows[i] = &DSTEntry{
			GID:          GID(i),
			Node:         rng.Intn(3),
			LocalDev:     i,
			Name:         fmt.Sprintf("gpu-%d", i),
			Weight:       0.5 + 3.5*rng.Float64(),
			ComputeRate:  1e9 * (1 + rng.Float64()),
			MemBandwidth: 1e4 * (1 + rng.Float64()),
			Load:         rng.Intn(20),
			Health:       Health(rng.Intn(3)), // Healthy, Suspect or Dead
			BoundKinds:   make(map[string]int),
		}
		for _, kind := range propertyKinds {
			if rng.Intn(3) == 0 {
				rows[i].BoundKinds[kind] = 1 + rng.Intn(4)
			}
		}
	}
	sft := NewSFT()
	for _, kind := range propertyKinds {
		for s := rng.Intn(4); s > 0; s-- {
			gpuT := sim.Time(rng.Int63n(5e6))
			sft.Record(&rpcproto.Feedback{
				Kind:     kind,
				ExecTime: gpuT + sim.Time(rng.Int63n(5e6)),
				GPUTime:  gpuT,
				XferTime: sim.Time(rng.Int63n(int64(gpuT) + 1)),
				MemBW:    1e3 * rng.Float64(),
				GPUUtil:  rng.Float64(),
			})
		}
	}
	return NewDST(rows), sft
}

func healthyGIDs(dst *DST) []GID {
	var out []GID
	for _, e := range dst.Entries() {
		if e.Health == Healthy {
			out = append(out, e.GID)
		}
	}
	return out
}

// dumpDST renders a table for counterexample reports.
func dumpDST(dst *DST) string {
	var b strings.Builder
	for _, e := range dst.Entries() {
		fmt.Fprintf(&b, "  gid %d node %d %-7v load %-3d weight %.3f bound %v\n",
			e.GID, e.Node, e.Health, e.Load, e.Weight, e.BoundKinds)
	}
	return b.String()
}

// shrinkDST minimizes a failing table: it repeatedly removes rows while the
// violation persists. fails must be side-effect free on the table.
func shrinkDST(dst *DST, fails func(*DST) bool) *DST {
	cur := dst
	for {
		smaller := false
		for drop := 0; drop < cur.Len(); drop++ {
			rows := make([]*DSTEntry, 0, cur.Len()-1)
			for i, e := range cur.Entries() {
				if i == drop {
					continue
				}
				// Copy so renumbering never corrupts the original.
				c := *e
				c.GID = GID(len(rows))
				rows = append(rows, &c)
			}
			if len(rows) == 0 {
				continue
			}
			if cand := NewDST(rows); fails(cand) {
				cur = cand
				smaller = true
				break
			}
		}
		if !smaller {
			return cur
		}
	}
}

// checkProperty runs a policy property over randomized tables, shrinking and
// reporting the first counterexample.
func checkProperty(t *testing.T, name string, fails func(rng *rand.Rand, dst *DST, sft *SFT) (bool, string)) {
	t.Helper()
	for round := 0; round < propertyRounds; round++ {
		seed := sweep.FoldSeed(20260806, uint64(round))
		rng := rand.New(rand.NewSource(seed))
		dst, sft := randTables(rng)
		bad, why := fails(rng, dst, sft)
		if !bad {
			continue
		}
		min := shrinkDST(dst, func(d *DST) bool {
			b, _ := fails(rand.New(rand.NewSource(seed)), d, sft)
			return b
		})
		_, minWhy := fails(rand.New(rand.NewSource(seed)), min, sft)
		if minWhy == "" {
			minWhy = why
		}
		t.Fatalf("%s violated (round %d, seed %d): %s\nshrunk counterexample (%d rows):\n%s",
			name, round, seed, minWhy, min.Len(), dumpDST(min))
	}
}

// scoreArgminProperty asserts pick is Healthy and score-minimal over the
// healthy rows.
func scoreArgminProperty(dst *DST, pick GID, score func(*DSTEntry) float64) string {
	healthy := healthyGIDs(dst)
	if len(healthy) == 0 {
		return "" // degenerate pool: any answer is allowed
	}
	e := dst.Entry(pick)
	if e == nil {
		return fmt.Sprintf("picked gid %d outside the table", pick)
	}
	if e.Health != Healthy {
		return fmt.Sprintf("picked gid %d with health %v while healthy rows exist", pick, e.Health)
	}
	got := score(e)
	for _, gid := range healthy {
		if s := score(dst.Entry(gid)); s < got {
			return fmt.Sprintf("picked gid %d with score %g, but healthy gid %d scores %g", pick, got, gid, s)
		}
	}
	return ""
}

func TestGMinIsArgminOverHealthyRows(t *testing.T) {
	checkProperty(t, "GMin argmin", func(rng *rand.Rand, dst *DST, sft *SFT) (bool, string) {
		req := Request{AppID: 1, Kind: propertyKinds[rng.Intn(len(propertyKinds))], Node: rng.Intn(3)}
		pick := GMin{}.Select(req, dst, sft)
		why := scoreArgminProperty(dst, pick, func(e *DSTEntry) float64 { return float64(e.Load) })
		return why != "", why
	})
}

func TestGWtMinIsArgminOverHealthyRows(t *testing.T) {
	checkProperty(t, "GWtMin argmin", func(rng *rand.Rand, dst *DST, sft *SFT) (bool, string) {
		req := Request{AppID: 1, Kind: propertyKinds[rng.Intn(len(propertyKinds))], Node: rng.Intn(3)}
		pick := GWtMin{}.Select(req, dst, sft)
		why := scoreArgminProperty(dst, pick, func(e *DSTEntry) float64 {
			return float64(e.Load) / e.Weight
		})
		return why != "", why
	})
}

// TestGRRVisitsEveryHealthyDeviceOncePerRotation pins the round-robin
// invariant: with the table frozen, len(healthy) consecutive selections
// return each healthy device exactly once.
func TestGRRVisitsEveryHealthyDeviceOncePerRotation(t *testing.T) {
	checkProperty(t, "GRR rotation", func(rng *rand.Rand, dst *DST, sft *SFT) (bool, string) {
		healthy := healthyGIDs(dst)
		if len(healthy) == 0 {
			return false, ""
		}
		g := NewGRR()
		req := Request{AppID: 1, Kind: "MC", Node: 0}
		// Start the cursor at a random phase to cover mid-rotation states.
		for burn := rng.Intn(len(healthy)); burn > 0; burn-- {
			g.Select(req, dst, sft)
		}
		seen := make(map[GID]int)
		for i := 0; i < len(healthy); i++ {
			pick := g.Select(req, dst, sft)
			if e := dst.Entry(pick); e == nil || e.Health != Healthy {
				return true, fmt.Sprintf("rotation step %d picked non-healthy gid %d", i, pick)
			}
			seen[pick]++
		}
		for _, gid := range healthy {
			if seen[gid] != 1 {
				return true, fmt.Sprintf("rotation visited gid %d %d times (healthy set %v, seen %v)",
					gid, seen[gid], healthy, seen)
			}
		}
		return false, ""
	})
}

// TestFeedbackPoliciesNeverPickDeadRows pins the health invariant for every
// feedback policy, with and without SFT history (the no-history paths
// delegate to GWtMin, which must uphold it too).
func TestFeedbackPoliciesNeverPickDeadRows(t *testing.T) {
	policies := []Policy{RTF{}, GUF{}, DTF{}, MBF{}}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			checkProperty(t, pol.Name()+" health", func(rng *rand.Rand, dst *DST, sft *SFT) (bool, string) {
				if rng.Intn(4) == 0 {
					sft = NewSFT() // exercise the no-history delegation path
				}
				req := Request{AppID: 1, Kind: propertyKinds[rng.Intn(len(propertyKinds))], Node: rng.Intn(3)}
				pick := pol.Select(req, dst, sft)
				healthy := healthyGIDs(dst)
				if len(healthy) == 0 {
					return false, ""
				}
				e := dst.Entry(pick)
				if e == nil {
					return true, fmt.Sprintf("picked gid %d outside the table", pick)
				}
				if e.Health != Healthy {
					return true, fmt.Sprintf("picked gid %d with health %v while %d healthy rows exist",
						pick, e.Health, len(healthy))
				}
				return false, ""
			})
		})
	}
}

// TestArbiterSwitchesAtThreshold pins the Policy Arbiter's switching rule on
// randomized histories: below MinSamples the static policy answers, at or
// above it the feedback policy does.
func TestArbiterSwitchesAtThreshold(t *testing.T) {
	for round := 0; round < 50; round++ {
		rng := rand.New(rand.NewSource(sweep.FoldSeed(7, uint64(round))))
		dst, _ := randTables(rng)
		min := 1 + rng.Intn(4)
		a := NewArbiter(GWtMin{}, RTF{}, min)
		sft := NewSFT()
		req := Request{AppID: 1, Kind: "MC", Node: 0}
		for s := 0; s <= min; s++ {
			want := GWtMin{}.Select(req, dst, sft)
			if sft.Samples("MC") >= min {
				want = RTF{}.Select(req, dst, sft)
			}
			if got := a.Select(req, dst, sft); got != want {
				t.Fatalf("round %d: with %d samples (threshold %d) arbiter picked %d, want %d",
					round, sft.Samples("MC"), min, got, want)
			}
			if switched := a.Switched("MC"); switched != (sft.Samples("MC") >= min) {
				t.Fatalf("round %d: Switched = %v with %d/%d samples", round, switched, sft.Samples("MC"), min)
			}
			sft.Record(&rpcproto.Feedback{Kind: "MC", ExecTime: 1e6, GPUTime: 5e5, GPUUtil: 0.5})
		}
	}
}
