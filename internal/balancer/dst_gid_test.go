package balancer

import "testing"

// Regression test for the positional-GID lookup bug: DST.Entry used to
// return d.entries[gid], which is only correct while every row's GID equals
// its position. A DST built from a sparse row set — e.g. the alive view
// after a middle node was removed, or a table with carved-slice rows
// retired — silently returned the WRONG device's row (or nil for valid
// GIDs past the row count). Entry must key on the row's GID field.
func TestDSTEntryByGIDNotPosition(t *testing.T) {
	// The alive rows after a reconfiguration removed the middle node that
	// owned GIDs 1 and 2: positions 0,1,2 hold GIDs 0,3,4.
	dst := NewDST([]*DSTEntry{
		{GID: 0, Node: 0, Name: "a"},
		{GID: 3, Node: 2, Name: "b"},
		{GID: 4, Node: 2, Name: "c"},
	})
	if e := dst.Entry(3); e == nil || e.Name != "b" {
		t.Fatalf("Entry(3) = %+v, want row b", e)
	}
	if e := dst.Entry(4); e == nil || e.Name != "c" {
		t.Fatalf("Entry(4) = %+v, want row c", e)
	}
	// GIDs 1 and 2 are gone from this view: lookups must miss, not alias
	// positions 1 and 2.
	if e := dst.Entry(1); e != nil {
		t.Fatalf("Entry(1) = row %q, want nil (gid not in table)", e.Name)
	}
	if e := dst.Entry(2); e != nil {
		t.Fatalf("Entry(2) = row %q, want nil (gid not in table)", e.Name)
	}

	// Bind/Unbind by GID must hit the row they name.
	dst.Bind(4, "MC")
	if got := dst.Entry(4).Load; got != 1 {
		t.Fatalf("after Bind(4): load = %d, want 1", got)
	}
	if got := dst.Entry(3).Load; got != 0 {
		t.Fatalf("Bind(4) leaked onto gid 3: load = %d", got)
	}
	dst.Unbind(4, "MC")
	if got := dst.Entry(4).Load; got != 0 {
		t.Fatalf("after Unbind(4): load = %d, want 0", got)
	}
	if dst.UnbindClamps != 0 {
		t.Fatalf("balanced bind/unbind counted %d clamps", dst.UnbindClamps)
	}
}

func TestDSTAddRowAndRetire(t *testing.T) {
	dst := NewDST([]*DSTEntry{{GID: 0}, {GID: 1}})
	dst.AddRow(&DSTEntry{GID: 7, Name: "slice", IsSlice: true, Parent: 1, Profile: "2g"})
	if dst.Len() != 3 {
		t.Fatalf("Len = %d, want 3", dst.Len())
	}
	e := dst.Entry(7)
	if e == nil || !e.IsSlice || e.Parent != 1 {
		t.Fatalf("Entry(7) = %+v", e)
	}
	if e.Weight != 1 {
		t.Fatalf("AddRow did not default Weight: %v", e.Weight)
	}
	dst.Retire(7)
	if dst.Entry(7).Health != Dead {
		t.Fatal("retired row not Dead")
	}
	// Retired rows stay resolvable and never shift their neighbours.
	if dst.Entry(1) == nil || dst.Entry(1).GID != 1 {
		t.Fatal("retire disturbed other rows")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate-GID AddRow did not panic")
		}
	}()
	dst.AddRow(&DSTEntry{GID: 7})
}

// The Unbind clamp cases: an Unbind with nothing to remove is a
// double-unbind bug upstream and must be observable, not silently absorbed.
func TestDSTUnbindClampMetric(t *testing.T) {
	dst := NewDST([]*DSTEntry{{GID: 0}})
	dst.Unbind(0, "MC") // never bound: load clamp + kind clamp
	if dst.UnbindClamps != 2 {
		t.Fatalf("UnbindClamps = %d, want 2", dst.UnbindClamps)
	}
	dst.Bind(0, "MC")
	dst.Unbind(0, "BS") // load ok, wrong kind
	if dst.UnbindClamps != 3 {
		t.Fatalf("UnbindClamps = %d, want 3", dst.UnbindClamps)
	}
	if got := dst.Entry(0).Load; got != 0 {
		t.Fatalf("load = %d, want 0", got)
	}
	// Unknown GIDs are not clamps (the caller's GID is simply gone).
	dst.Unbind(99, "MC")
	if dst.UnbindClamps != 3 {
		t.Fatalf("unknown-gid unbind counted a clamp: %d", dst.UnbindClamps)
	}
}

func TestDSTUnbindPanicOnClamp(t *testing.T) {
	dst := NewDST([]*DSTEntry{{GID: 0}})
	dst.PanicOnClamp = true
	defer func() {
		if recover() == nil {
			t.Fatal("double unbind did not panic under PanicOnClamp")
		}
	}()
	dst.Unbind(0, "MC")
}

// NewDST documents an ownership transfer: it retains the rows and
// normalizes them in place. This pins the documented behaviour so a future
// defensive copy is a deliberate API change.
func TestNewDSTTakesOwnershipAndNormalizes(t *testing.T) {
	row := &DSTEntry{GID: 0, Weight: -1}
	dst := NewDST([]*DSTEntry{row})
	if dst.Entry(0) != row {
		t.Fatal("NewDST copied the row; documented behaviour is retention")
	}
	if row.Weight != 1 {
		t.Fatalf("caller row not normalized in place: Weight = %v", row.Weight)
	}
	if row.BoundKinds == nil {
		t.Fatal("caller row BoundKinds not allocated")
	}
}

func TestDSTCarveReturnCapacity(t *testing.T) {
	dst := NewDST([]*DSTEntry{{
		GID: 0, Partitionable: true,
		TotalFrac: 7, FreeFrac: 7, TotalMem: 800, FreeMem: 800,
	}})
	dst.CarveCapacity(0, 3, 400)
	e := dst.Entry(0)
	if e.FreeFrac != 4 || e.FreeMem != 400 {
		t.Fatalf("after carve: %d/7 free, %d bytes", e.FreeFrac, e.FreeMem)
	}
	dst.ReturnCapacity(0, 3, 400)
	if e.FreeFrac != 7 || e.FreeMem != 800 {
		t.Fatalf("after return: %d/7 free, %d bytes", e.FreeFrac, e.FreeMem)
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("overcommit", func() { dst.CarveCapacity(0, 8, 0) })
	mustPanic("over-return", func() { dst.ReturnCapacity(0, 1, 1) })
}
