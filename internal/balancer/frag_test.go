package balancer

import "testing"

// migShapes mirrors gpu.MIGProfiles for an 800-byte toy device: memory
// shares of 1/8, 1/4, 1/2, 1/2 and the whole device.
func migShapes() []SliceShape {
	return []SliceShape{
		{Name: "1g", Frac: 1, Mem: 100},
		{Name: "2g", Frac: 2, Mem: 200},
		{Name: "3g", Frac: 3, Mem: 400},
		{Name: "4g", Frac: 4, Mem: 400},
		{Name: "7g", Frac: 7, Mem: 800},
	}
}

func partRow(gid GID) *DSTEntry {
	return &DSTEntry{
		GID: gid, Partitionable: true,
		TotalFrac: 7, FreeFrac: 7, TotalMem: 800, FreeMem: 800,
		Shapes: migShapes(),
	}
}

func sliceReq(profile string) Request {
	for _, s := range migShapes() {
		if s.Name == profile {
			return Request{Kind: "MC", SliceProfile: profile, SliceFrac: s.Frac, SliceMem: s.Mem}
		}
	}
	panic("unknown profile " + profile)
}

// Frag packs slices onto already-carved devices, keeping whole devices free
// for big profiles; GMin spreads them by load. This is the packing gap the
// -exp frag experiment measures at fleet scale.
func TestFragPacksGMinSpreads(t *testing.T) {
	mk := func() *DST {
		d := NewDST([]*DSTEntry{partRow(0), partRow(1)})
		// Device 0 already hosts a 3g slice (and the bind that came with it).
		d.CarveCapacity(0, 3, 400)
		d.Bind(0, "MC")
		return d
	}
	sft := NewSFT()

	if gid := (Frag{}).Select(sliceReq("3g"), mk(), sft); gid != 0 {
		t.Fatalf("Frag placed 3g on gid %d, want 0 (pack the carved device)", gid)
	}
	if gid := (GMin{}).Select(sliceReq("3g"), mk(), sft); gid != 1 {
		t.Fatalf("GMin placed 3g on gid %d, want 1 (load spreading)", gid)
	}
}

// Eligibility: a slice request only sees partitionable rows that fit the
// profile in BOTH capacity dimensions; a profile nothing fits selects
// nothing at all rather than falling back to an over-committed row.
func TestSliceEligibility(t *testing.T) {
	dst := NewDST([]*DSTEntry{partRow(0), partRow(1)})
	dst.CarveCapacity(0, 3, 400)

	// 7g only fits the untouched device.
	req := sliceReq("7g")
	for i := 0; i < 4; i++ {
		if gid := (Frag{}).Select(req, dst, NewSFT()); gid != 1 {
			t.Fatalf("7g placed on gid %d, want 1", gid)
		}
	}
	grr := NewGRR()
	for i := 0; i < 3; i++ {
		if gid := grr.Select(req, dst, NewSFT()); gid != 1 {
			t.Fatalf("GRR placed 7g on gid %d, want 1 (rotation must skip unfit rows)", gid)
		}
	}

	// Memory, not compute, is the binding dimension: 4 sevenths are free on
	// device 0 but only 400 bytes, so a 4g (400 bytes) fits while a second
	// 3g+4g combination cannot exceed it.
	dst2 := NewDST([]*DSTEntry{partRow(0)})
	dst2.CarveCapacity(0, 3, 400)
	if gid, ok := argminWhere(dst2, sliceReq("4g"), func(*DSTEntry) float64 { return 0 }, true); !ok || gid != 0 {
		t.Fatalf("4g should fit device 0: ok=%v gid=%d", ok, gid)
	}
	dst2.CarveCapacity(0, 4, 400)
	if _, ok := argminWhere(dst2, sliceReq("1g"), func(*DSTEntry) float64 { return 0 }, true); ok {
		t.Fatal("1g placed on a device with zero free memory")
	}
}

// Mapper.SelectSliceAt parks (ok=false) when nothing fits and never binds
// or carves on its own.
func TestMapperSelectSliceAt(t *testing.T) {
	dst := NewDST([]*DSTEntry{partRow(0)})
	m := NewMapper(dst, Frag{})

	gid, ok := m.SelectSliceAt(0, sliceReq("7g"))
	if !ok || gid != 0 {
		t.Fatalf("7g on empty device: gid=%d ok=%v", gid, ok)
	}
	if e := dst.Entry(0); e.FreeFrac != 7 || e.Load != 0 {
		t.Fatalf("SelectSliceAt mutated the table: %+v", e)
	}

	dst.CarveCapacity(0, 7, 800)
	if _, ok := m.SelectSliceAt(1, sliceReq("1g")); ok {
		t.Fatal("full device accepted a slice request")
	}
}

// Classic whole-device requests never land on a carved-slice row — those
// are private to their tenant.
func TestClassicRequestsSkipSliceRows(t *testing.T) {
	dst := NewDST([]*DSTEntry{
		{GID: 0, Name: "whole"},
		{GID: 1, Name: "slice", IsSlice: true, Parent: 0},
	})
	req := Request{Kind: "MC"}
	for i := 0; i < 3; i++ {
		if gid := (GMin{}).Select(req, dst, NewSFT()); gid != 0 {
			t.Fatalf("GMin bound a classic request to slice row %d", gid)
		}
	}
	grr := NewGRR()
	for i := 0; i < 4; i++ {
		if gid := grr.Select(req, dst, NewSFT()); gid != 0 {
			t.Fatalf("GRR bound a classic request to slice row %d", gid)
		}
	}
}

// ByName must resolve the new policy.
func TestFragByName(t *testing.T) {
	p, err := ByName("Frag")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "Frag" {
		t.Fatalf("Name = %q", p.Name())
	}
}
