package balancer

import "fmt"

// Request is one target-GPU selection request, produced when the interposer
// forwards an application's cudaSetDevice to the affinity mapper.
type Request struct {
	AppID  int
	Kind   string // application class (workload short code)
	Node   int    // node the application's CPU component runs on
	Tenant int64
}

// Policy is a Target GPU Selector policy. Select must be deterministic
// given the tables' state.
type Policy interface {
	Name() string
	Select(req Request, dst *DST, sft *SFT) GID
}

// GRR assigns incoming applications to gPool devices round-robin.
type GRR struct{ next int }

// NewGRR returns a fresh round-robin policy.
func NewGRR() *GRR { return &GRR{} }

// Name implements Policy.
func (g *GRR) Name() string { return "GRR" }

// Select implements Policy. Non-Healthy devices are skipped: the cursor
// advances past them, so round-robin continues over the surviving pool.
// When every device is down the plain rotation answer is returned and the
// Mapper's spillover (or the caller) deals with the exhausted pool.
func (g *GRR) Select(req Request, dst *DST, sft *SFT) GID {
	n := dst.Len()
	for i := 0; i < n; i++ {
		gid := GID(g.next % n)
		g.next++
		if e := dst.Entry(gid); e != nil && e.Health == Healthy {
			return gid
		}
	}
	gid := GID(g.next % n)
	g.next++
	return gid
}

// GMin chooses the device with the minimum number of bound applications,
// breaking ties in favour of GPUs local to the requesting node (remote GPUs
// are more expensive to reach).
type GMin struct{}

// Name implements Policy.
func (GMin) Name() string { return "GMin" }

// Select implements Policy.
func (GMin) Select(req Request, dst *DST, sft *SFT) GID {
	return argmin(dst, req.Node, func(e *DSTEntry) float64 { return float64(e.Load) })
}

// GWtMin extends GMin with the gPool Creator's static device weights,
// selecting the minimum weighted load — more capable devices absorb more
// applications.
type GWtMin struct{}

// Name implements Policy.
func (GWtMin) Name() string { return "GWtMin" }

// Select implements Policy.
func (GWtMin) Select(req Request, dst *DST, sft *SFT) GID {
	return argmin(dst, req.Node, func(e *DSTEntry) float64 {
		return float64(e.Load) / e.Weight
	})
}

// argmin picks the entry minimizing score; ties prefer devices on localNode,
// then lower GIDs. Non-Healthy entries are skipped; if the whole pool is
// down the scan falls back to every row so callers always get an answer
// (the Mapper surfaces the exhaustion separately).
func argmin(dst *DST, localNode int, score func(*DSTEntry) float64) GID {
	if gid, ok := argminWhere(dst, localNode, score, true); ok {
		return gid
	}
	gid, _ := argminWhere(dst, localNode, score, false)
	return gid
}

// argminWhere is argmin's scan; healthyOnly restricts it to Healthy rows.
func argminWhere(dst *DST, localNode int, score func(*DSTEntry) float64, healthyOnly bool) (GID, bool) {
	var best *DSTEntry
	var bestScore float64
	bestLocal := false
	for _, e := range dst.Entries() {
		if healthyOnly && e.Health != Healthy {
			continue
		}
		s := score(e)
		local := e.Node == localNode
		switch {
		case best == nil, s < bestScore, s == bestScore && local && !bestLocal:
			best, bestScore, bestLocal = e, s, local
		}
	}
	if best == nil {
		return 0, false
	}
	return best.GID, true
}

// devLoad summarizes the expected outstanding work bound to one device,
// split by the engine it occupies, in microseconds of service demand. It is
// the feedback policies' shared queueing model.
type devLoad struct {
	kern float64 // kernel-engine demand, normalized by device weight
	xfer float64 // copy-engine demand
	bw   float64 // memory-bandwidth pressure (fraction of device bandwidth)
	util float64 // summed GPU utilization of bound apps
	exec float64 // total expected runtime, normalized by weight
}

// defaultExec is the assumed runtime of a class with no history.
const defaultExec = 10e6 // 10 s

// loadOf folds the SFT history of every application bound to e.
func loadOf(e *DSTEntry, sft *SFT) devLoad {
	var l devLoad
	for _, kind := range e.boundKindsSorted() {
		n := float64(e.BoundKinds[kind])
		h, ok := sft.Lookup(kind)
		if !ok {
			l.exec += n * defaultExec / e.Weight
			l.kern += n * defaultExec / 2 / e.Weight
			l.xfer += n * defaultExec / 10
			l.util += n * 0.5
			continue
		}
		kernT := float64(h.GPUTime - h.XferTime)
		if kernT < 0 {
			kernT = 0
		}
		l.exec += n * float64(h.ExecTime) / e.Weight
		l.kern += n * kernT / e.Weight
		l.xfer += n * float64(h.XferTime)
		l.bw += n * h.MemBW / e.MemBandwidth
		l.util += n * h.GPUUtil
	}
	return l
}

// kindDemands extracts the requesting class's engine demands.
func kindDemands(h *SFTEntry) (kernT, xferT, bwFrac float64) {
	kernT = float64(h.GPUTime - h.XferTime)
	if kernT < 0 {
		kernT = 0
	}
	return kernT, float64(h.XferTime), h.MemBW
}

// remoteXferFactor is the measured slowdown of host↔device transfers when
// the device sits across the supernode interconnect instead of the local
// PCIe bus. The feedback policies charge it against remote candidates —
// the reactive counterpart of GMin's static local-first tie-break.
const remoteXferFactor = 2.0

// remoteCost returns the extra transfer delay the class would suffer on a
// remote device.
func remoteCost(h *SFTEntry, e *DSTEntry, req Request) float64 {
	if e.Node == req.Node {
		return 0
	}
	return remoteXferFactor * float64(h.XferTime)
}

// RTF is Runtime Feedback: a reactive policy balancing on the measured
// runtimes of bound applications instead of static weights — the expected
// completion backlog in real time replaces GWtMin's population count.
type RTF struct{}

// Name implements Policy.
func (RTF) Name() string { return "RTF" }

// Select implements Policy.
func (RTF) Select(req Request, dst *DST, sft *SFT) GID {
	if sft.Samples(req.Kind) == 0 {
		return GWtMin{}.Select(req, dst, sft)
	}
	mine, _ := sft.Lookup(req.Kind)
	return argmin(dst, req.Node, func(e *DSTEntry) float64 {
		return loadOf(e, sft).exec + remoteCost(mine, e, req)
	})
}

// GUF is GPU Utilization Feedback: balance on measured backlog while
// avoiding the collocation of applications with high GPU utilization on the
// same device (the NUMA-contention analogue): a high-utilization arrival
// pays for every busy co-tenant, a near-idle one squeezes in anywhere.
type GUF struct{}

// Name implements Policy.
func (GUF) Name() string { return "GUF" }

// Select implements Policy.
func (GUF) Select(req Request, dst *DST, sft *SFT) GID {
	mine, ok := sft.Lookup(req.Kind)
	if !ok {
		return GWtMin{}.Select(req, dst, sft)
	}
	myExec := float64(mine.ExecTime)
	return argmin(dst, req.Node, func(e *DSTEntry) float64 {
		l := loadOf(e, sft)
		// Expected delay: measured backlog plus the interference of
		// sharing the device with busy tenants, scaled by how much this
		// class itself needs the GPU.
		return l.exec + l.util*mine.GPUUtil*myExec + remoteCost(mine, e, req)
	})
}

// DTF is Data Transfer Feedback: engine-aware balancing. A device's
// kernel-engine and copy-engine backlogs are tracked separately, and an
// arrival pays only for the engines it actually needs — so transfer-bound
// applications land next to compute-bound ones and the device's memcpy and
// compute engines run concurrently.
type DTF struct{}

// Name implements Policy.
func (DTF) Name() string { return "DTF" }

// Select implements Policy.
func (DTF) Select(req Request, dst *DST, sft *SFT) GID {
	mine, ok := sft.Lookup(req.Kind)
	if !ok {
		return GWtMin{}.Select(req, dst, sft)
	}
	kernT, xferT, _ := kindDemands(mine)
	tot := kernT + xferT
	if tot <= 0 {
		return RTF{}.Select(req, dst, sft)
	}
	fk, fx := kernT/tot, xferT/tot
	cpu := float64(mine.ExecTime) - float64(mine.GPUTime)
	if cpu < 0 {
		cpu = 0
	}
	return argmin(dst, req.Node, func(e *DSTEntry) float64 {
		l := loadOf(e, sft)
		// Per-engine queueing delay weighted by this class's use of each
		// engine; the CPU component is contention-free.
		return fk*l.kern + fx*l.xfer + 0.1*cpu + remoteCost(mine, e, req)
	})
}

// MBF is Memory Bandwidth Feedback: DTF's engine-aware balancing extended
// with the approximate memory bandwidth of each class (total kernel data
// accesses over time on the GPU). Bandwidth-bound arrivals avoid devices
// already under bandwidth pressure, so compute-bound co-tenants hide the
// memory latencies of bandwidth-bound kernels. Because the bandwidth
// estimate folds in both runtime and transfer behaviour, MBF inherits RTF's
// and DTF's signals.
type MBF struct{}

// Name implements Policy.
func (MBF) Name() string { return "MBF" }

// Select implements Policy.
func (MBF) Select(req Request, dst *DST, sft *SFT) GID {
	mine, ok := sft.Lookup(req.Kind)
	if !ok {
		return GWtMin{}.Select(req, dst, sft)
	}
	kernT, xferT, myBW := kindDemands(mine)
	tot := kernT + xferT
	if tot <= 0 {
		return RTF{}.Select(req, dst, sft)
	}
	fk, fx := kernT/tot, xferT/tot
	return argmin(dst, req.Node, func(e *DSTEntry) float64 {
		l := loadOf(e, sft)
		myFrac := myBW / e.MemBandwidth
		// Engine-aware delay plus the bandwidth-contention slowdown the
		// arrival's kernels would suffer (and cause) on this device.
		return fk*l.kern + fx*l.xfer + l.bw*myFrac*kernT + remoteCost(mine, e, req)
	})
}

// Arbiter is the Policy Arbiter: it runs the static policy until the SFT
// holds MinSamples reports for the requesting class, then switches to the
// feedback policy (the paper's dynamic policy switching).
type Arbiter struct {
	Static     Policy
	Feedback   Policy
	MinSamples int

	switched map[string]bool
}

// NewArbiter builds an arbiter with the given static/feedback pair.
func NewArbiter(static, feedback Policy, minSamples int) *Arbiter {
	if minSamples <= 0 {
		minSamples = 1
	}
	return &Arbiter{Static: static, Feedback: feedback, MinSamples: minSamples,
		switched: make(map[string]bool)}
}

// Name implements Policy.
func (a *Arbiter) Name() string {
	return fmt.Sprintf("PA(%s→%s)", a.Static.Name(), a.Feedback.Name())
}

// Select implements Policy.
func (a *Arbiter) Select(req Request, dst *DST, sft *SFT) GID {
	if sft.Samples(req.Kind) >= a.MinSamples {
		a.switched[req.Kind] = true
		return a.Feedback.Select(req, dst, sft)
	}
	return a.Static.Select(req, dst, sft)
}

// Switched reports whether the arbiter has engaged the feedback policy for
// the class.
func (a *Arbiter) Switched(kind string) bool { return a.switched[kind] }

// ByName constructs a policy from its figure-label name. Feedback policies
// are wrapped in an Arbiter over GWtMin, as in the paper's evaluation.
func ByName(name string) (Policy, error) {
	switch name {
	case "GRR":
		return NewGRR(), nil
	case "GMin":
		return GMin{}, nil
	case "GWtMin":
		return GWtMin{}, nil
	case "RTF":
		return NewArbiter(GWtMin{}, RTF{}, 1), nil
	case "GUF":
		return NewArbiter(GWtMin{}, GUF{}, 1), nil
	case "DTF":
		return NewArbiter(GWtMin{}, DTF{}, 1), nil
	case "MBF":
		return NewArbiter(GWtMin{}, MBF{}, 1), nil
	default:
		return nil, fmt.Errorf("balancer: unknown policy %q", name)
	}
}

// Names lists the selectable policy names in figure order.
func Names() []string {
	return []string{"GRR", "GMin", "GWtMin", "RTF", "GUF", "DTF", "MBF"}
}
