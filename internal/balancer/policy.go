package balancer

import "fmt"

// Request is one target-GPU selection request, produced when the interposer
// forwards an application's cudaSetDevice to the affinity mapper.
type Request struct {
	AppID  int
	Kind   string // application class (workload short code)
	Node   int    // node the application's CPU component runs on
	Tenant int64

	// Slice demand. When SliceFrac > 0 the tenant asks for a dedicated
	// MIG-style slice (SliceProfile names the shape, SliceFrac/SliceMem
	// carry its compute-sevenths and memory demand) and only partitionable
	// physical rows with enough free capacity are eligible targets. Zero —
	// the default — is a classic whole-device request.
	SliceProfile string
	SliceFrac    int
	SliceMem     int64
}

// WantsSlice reports whether the request asks for a carved slice.
func (r Request) WantsSlice() bool { return r.SliceFrac > 0 }

// eligible reports whether a DST row can serve the request at all. Classic
// requests bind to any non-slice row (exactly the pre-partitioning pool —
// carved-slice rows are private to their tenant). Slice requests bind only
// to healthy partitionable physical rows whose free capacity fits the
// profile in both dimensions.
func eligible(e *DSTEntry, req Request) bool {
	if !req.WantsSlice() {
		return !e.IsSlice
	}
	return e.Partitionable && !e.IsSlice && e.Health == Healthy &&
		e.FreeFrac >= req.SliceFrac && e.FreeMem >= req.SliceMem
}

// Policy is a Target GPU Selector policy. Select must be deterministic
// given the tables' state.
type Policy interface {
	Name() string
	Select(req Request, dst *DST, sft *SFT) GID
}

// GRR assigns incoming applications to gPool devices round-robin.
type GRR struct{ next int }

// NewGRR returns a fresh round-robin policy.
func NewGRR() *GRR { return &GRR{} }

// Name implements Policy.
func (g *GRR) Name() string { return "GRR" }

// Select implements Policy. Non-Healthy devices are skipped: the cursor
// advances past them, so round-robin continues over the surviving pool.
// When every device is down the plain rotation answer is returned and the
// Mapper's spillover (or the caller) deals with the exhausted pool.
func (g *GRR) Select(req Request, dst *DST, sft *SFT) GID {
	n := dst.Len()
	rows := dst.Entries()
	for i := 0; i < n; i++ {
		e := rows[g.next%n]
		g.next++
		if e.Health == Healthy && eligible(e, req) {
			return e.GID
		}
	}
	e := rows[g.next%n]
	g.next++
	return e.GID
}

// GMin chooses the device with the minimum number of bound applications,
// breaking ties in favour of GPUs local to the requesting node (remote GPUs
// are more expensive to reach).
type GMin struct{}

// Name implements Policy.
func (GMin) Name() string { return "GMin" }

// Select implements Policy.
func (GMin) Select(req Request, dst *DST, sft *SFT) GID {
	return argmin(dst, req, func(e *DSTEntry) float64 { return float64(e.Load) })
}

// GWtMin extends GMin with the gPool Creator's static device weights,
// selecting the minimum weighted load — more capable devices absorb more
// applications.
type GWtMin struct{}

// Name implements Policy.
func (GWtMin) Name() string { return "GWtMin" }

// Select implements Policy.
func (GWtMin) Select(req Request, dst *DST, sft *SFT) GID {
	return argmin(dst, req, func(e *DSTEntry) float64 {
		return float64(e.Load) / e.Weight
	})
}

// argmin picks the eligible entry minimizing score; ties prefer devices on
// the request's node, then lower GIDs. Non-Healthy entries are skipped; if
// the whole pool is down the scan falls back to every eligible row so
// callers always get an answer (the Mapper surfaces the exhaustion
// separately). Slice requests never fall back past eligibility — a row that
// cannot fit the profile is not an answer at any health.
func argmin(dst *DST, req Request, score func(*DSTEntry) float64) GID {
	if gid, ok := argminWhere(dst, req, score, true); ok {
		return gid
	}
	gid, _ := argminWhere(dst, req, score, false)
	return gid
}

// argminWhere is argmin's scan; healthyOnly restricts it to Healthy rows.
func argminWhere(dst *DST, req Request, score func(*DSTEntry) float64, healthyOnly bool) (GID, bool) {
	var best *DSTEntry
	var bestScore float64
	bestLocal := false
	for _, e := range dst.Entries() {
		if healthyOnly && e.Health != Healthy {
			continue
		}
		if !eligible(e, req) {
			continue
		}
		s := score(e)
		local := e.Node == req.Node
		switch {
		case best == nil, s < bestScore, s == bestScore && local && !bestLocal:
			best, bestScore, bestLocal = e, s, local
		}
	}
	if best == nil {
		return 0, false
	}
	return best.GID, true
}

// devLoad summarizes the expected outstanding work bound to one device,
// split by the engine it occupies, in microseconds of service demand. It is
// the feedback policies' shared queueing model.
type devLoad struct {
	kern float64 // kernel-engine demand, normalized by device weight
	xfer float64 // copy-engine demand
	bw   float64 // memory-bandwidth pressure (fraction of device bandwidth)
	util float64 // summed GPU utilization of bound apps
	exec float64 // total expected runtime, normalized by weight
}

// defaultExec is the assumed runtime of a class with no history.
const defaultExec = 10e6 // 10 s

// loadOf folds the SFT history of every application bound to e.
func loadOf(e *DSTEntry, sft *SFT) devLoad {
	var l devLoad
	for _, kind := range e.boundKindsSorted() {
		n := float64(e.BoundKinds[kind])
		h, ok := sft.Lookup(kind)
		if !ok {
			l.exec += n * defaultExec / e.Weight
			l.kern += n * defaultExec / 2 / e.Weight
			l.xfer += n * defaultExec / 10
			l.util += n * 0.5
			continue
		}
		kernT := float64(h.GPUTime - h.XferTime)
		if kernT < 0 {
			kernT = 0
		}
		l.exec += n * float64(h.ExecTime) / e.Weight
		l.kern += n * kernT / e.Weight
		l.xfer += n * float64(h.XferTime)
		l.bw += n * h.MemBW / e.MemBandwidth
		l.util += n * h.GPUUtil
	}
	return l
}

// kindDemands extracts the requesting class's engine demands.
func kindDemands(h *SFTEntry) (kernT, xferT, bwFrac float64) {
	kernT = float64(h.GPUTime - h.XferTime)
	if kernT < 0 {
		kernT = 0
	}
	return kernT, float64(h.XferTime), h.MemBW
}

// remoteXferFactor is the measured slowdown of host↔device transfers when
// the device sits across the supernode interconnect instead of the local
// PCIe bus. The feedback policies charge it against remote candidates —
// the reactive counterpart of GMin's static local-first tie-break.
const remoteXferFactor = 2.0

// remoteCost returns the extra transfer delay the class would suffer on a
// remote device.
func remoteCost(h *SFTEntry, e *DSTEntry, req Request) float64 {
	if e.Node == req.Node {
		return 0
	}
	return remoteXferFactor * float64(h.XferTime)
}

// RTF is Runtime Feedback: a reactive policy balancing on the measured
// runtimes of bound applications instead of static weights — the expected
// completion backlog in real time replaces GWtMin's population count.
type RTF struct{}

// Name implements Policy.
func (RTF) Name() string { return "RTF" }

// Select implements Policy.
func (RTF) Select(req Request, dst *DST, sft *SFT) GID {
	if sft.Samples(req.Kind) == 0 {
		return GWtMin{}.Select(req, dst, sft)
	}
	mine, _ := sft.Lookup(req.Kind)
	return argmin(dst, req, func(e *DSTEntry) float64 {
		return loadOf(e, sft).exec + remoteCost(mine, e, req)
	})
}

// GUF is GPU Utilization Feedback: balance on measured backlog while
// avoiding the collocation of applications with high GPU utilization on the
// same device (the NUMA-contention analogue): a high-utilization arrival
// pays for every busy co-tenant, a near-idle one squeezes in anywhere.
type GUF struct{}

// Name implements Policy.
func (GUF) Name() string { return "GUF" }

// Select implements Policy.
func (GUF) Select(req Request, dst *DST, sft *SFT) GID {
	mine, ok := sft.Lookup(req.Kind)
	if !ok {
		return GWtMin{}.Select(req, dst, sft)
	}
	myExec := float64(mine.ExecTime)
	return argmin(dst, req, func(e *DSTEntry) float64 {
		l := loadOf(e, sft)
		// Expected delay: measured backlog plus the interference of
		// sharing the device with busy tenants, scaled by how much this
		// class itself needs the GPU.
		return l.exec + l.util*mine.GPUUtil*myExec + remoteCost(mine, e, req)
	})
}

// DTF is Data Transfer Feedback: engine-aware balancing. A device's
// kernel-engine and copy-engine backlogs are tracked separately, and an
// arrival pays only for the engines it actually needs — so transfer-bound
// applications land next to compute-bound ones and the device's memcpy and
// compute engines run concurrently.
type DTF struct{}

// Name implements Policy.
func (DTF) Name() string { return "DTF" }

// Select implements Policy.
func (DTF) Select(req Request, dst *DST, sft *SFT) GID {
	mine, ok := sft.Lookup(req.Kind)
	if !ok {
		return GWtMin{}.Select(req, dst, sft)
	}
	kernT, xferT, _ := kindDemands(mine)
	tot := kernT + xferT
	if tot <= 0 {
		return RTF{}.Select(req, dst, sft)
	}
	fk, fx := kernT/tot, xferT/tot
	cpu := float64(mine.ExecTime) - float64(mine.GPUTime)
	if cpu < 0 {
		cpu = 0
	}
	return argmin(dst, req, func(e *DSTEntry) float64 {
		l := loadOf(e, sft)
		// Per-engine queueing delay weighted by this class's use of each
		// engine; the CPU component is contention-free.
		return fk*l.kern + fx*l.xfer + 0.1*cpu + remoteCost(mine, e, req)
	})
}

// MBF is Memory Bandwidth Feedback: DTF's engine-aware balancing extended
// with the approximate memory bandwidth of each class (total kernel data
// accesses over time on the GPU). Bandwidth-bound arrivals avoid devices
// already under bandwidth pressure, so compute-bound co-tenants hide the
// memory latencies of bandwidth-bound kernels. Because the bandwidth
// estimate folds in both runtime and transfer behaviour, MBF inherits RTF's
// and DTF's signals.
type MBF struct{}

// Name implements Policy.
func (MBF) Name() string { return "MBF" }

// Select implements Policy.
func (MBF) Select(req Request, dst *DST, sft *SFT) GID {
	mine, ok := sft.Lookup(req.Kind)
	if !ok {
		return GWtMin{}.Select(req, dst, sft)
	}
	kernT, xferT, myBW := kindDemands(mine)
	tot := kernT + xferT
	if tot <= 0 {
		return RTF{}.Select(req, dst, sft)
	}
	fk, fx := kernT/tot, xferT/tot
	return argmin(dst, req, func(e *DSTEntry) float64 {
		l := loadOf(e, sft)
		myFrac := myBW / e.MemBandwidth
		// Engine-aware delay plus the bandwidth-contention slowdown the
		// arrival's kernels would suffer (and cause) on this device.
		return fk*l.kern + fx*l.xfer + l.bw*myFrac*kernT + remoteCost(mine, e, req)
	})
}

// Frag is the fragmentation-aware slice-placement policy, after the
// fragmentation-gradient scheduler of arXiv 2511.18906: place each slice
// request on the partitionable device whose fragmentation increases least.
//
// A device's fragmentation F is measured against the full profile table:
// free capacity that cannot serve a profile is stranded for it. With cap =
// mean(freeFrac/totalFrac, freeMem/totalMem),
//
//	F = (1/|P|) · Σ_{p ∈ P, p does not fit free} cap
//
// and the policy picks the eligible device minimizing ΔF = F(after) −
// F(before), tie-breaking toward the tighter-packed device (smaller
// remaining cap) so big holes stay whole for big profiles. Load-only
// policies (GMin/GRR) spread slices evenly and strand sevenths everywhere;
// Frag concentrates them, which is exactly the packing-efficiency gap the
// `-exp frag` experiment measures. Classic whole-device requests fall back
// to GMin.
type Frag struct{}

// Name implements Policy.
func (Frag) Name() string { return "Frag" }

// Select implements Policy.
func (Frag) Select(req Request, dst *DST, sft *SFT) GID {
	if !req.WantsSlice() {
		return GMin{}.Select(req, dst, sft)
	}
	return argmin(dst, req, func(e *DSTEntry) float64 {
		before := fragOf(e, e.FreeFrac, e.FreeMem)
		after := fragOf(e, e.FreeFrac-req.SliceFrac, e.FreeMem-req.SliceMem)
		// The epsilon term prefers the tighter-packed survivor among
		// equal-gradient candidates; it is far below any ΔF step (1/|P|
		// per newly stranded profile), so it only breaks exact ties.
		return (after - before) + 1e-9*capScalar(e, e.FreeFrac-req.SliceFrac, e.FreeMem-req.SliceMem)
	})
}

// capScalar collapses a partitionable row's two free-capacity dimensions to
// one scalar in [0,1]: the mean of the free compute and memory fractions.
func capScalar(e *DSTEntry, frac int, mem int64) float64 {
	if e.TotalFrac <= 0 || e.TotalMem <= 0 {
		return 0
	}
	return (float64(frac)/float64(e.TotalFrac) + float64(mem)/float64(e.TotalMem)) / 2
}

// fragOf is the row's fragmentation measure at a hypothetical free
// capacity: the share of profiles the free hole cannot serve, weighted by
// the hole's size. An empty hole strands nothing; a large hole that fits
// no profile is maximally stranded.
func fragOf(e *DSTEntry, frac int, mem int64) float64 {
	if len(e.Shapes) == 0 {
		return 0
	}
	c := capScalar(e, frac, mem)
	f := 0.0
	for _, s := range e.Shapes {
		if s.Frac > frac || s.Mem > mem {
			f += c
		}
	}
	return f / float64(len(e.Shapes))
}

// FragScore returns the row's current fragmentation measure (see Frag): the
// share of slice profiles its free hole cannot serve, weighted by the
// hole's size. Zero for non-partitionable rows. Exposed so the runtime can
// integrate the fleet's stranded-capacity ratio over time with exactly the
// measure the policy optimizes.
func FragScore(e *DSTEntry) float64 { return fragOf(e, e.FreeFrac, e.FreeMem) }

// Arbiter is the Policy Arbiter: it runs the static policy until the SFT
// holds MinSamples reports for the requesting class, then switches to the
// feedback policy (the paper's dynamic policy switching).
type Arbiter struct {
	Static     Policy
	Feedback   Policy
	MinSamples int

	switched map[string]bool
}

// NewArbiter builds an arbiter with the given static/feedback pair.
func NewArbiter(static, feedback Policy, minSamples int) *Arbiter {
	if minSamples <= 0 {
		minSamples = 1
	}
	return &Arbiter{Static: static, Feedback: feedback, MinSamples: minSamples,
		switched: make(map[string]bool)}
}

// Name implements Policy.
func (a *Arbiter) Name() string {
	return fmt.Sprintf("PA(%s→%s)", a.Static.Name(), a.Feedback.Name())
}

// Select implements Policy.
func (a *Arbiter) Select(req Request, dst *DST, sft *SFT) GID {
	if sft.Samples(req.Kind) >= a.MinSamples {
		a.switched[req.Kind] = true
		return a.Feedback.Select(req, dst, sft)
	}
	return a.Static.Select(req, dst, sft)
}

// Switched reports whether the arbiter has engaged the feedback policy for
// the class.
func (a *Arbiter) Switched(kind string) bool { return a.switched[kind] }

// ByName constructs a policy from its figure-label name. Feedback policies
// are wrapped in an Arbiter over GWtMin, as in the paper's evaluation.
func ByName(name string) (Policy, error) {
	switch name {
	case "GRR":
		return NewGRR(), nil
	case "GMin":
		return GMin{}, nil
	case "GWtMin":
		return GWtMin{}, nil
	case "RTF":
		return NewArbiter(GWtMin{}, RTF{}, 1), nil
	case "GUF":
		return NewArbiter(GWtMin{}, GUF{}, 1), nil
	case "DTF":
		return NewArbiter(GWtMin{}, DTF{}, 1), nil
	case "MBF":
		return NewArbiter(GWtMin{}, MBF{}, 1), nil
	case "Frag":
		return Frag{}, nil
	default:
		return nil, fmt.Errorf("balancer: unknown policy %q", name)
	}
}

// Names lists the selectable policy names in figure order.
func Names() []string {
	return []string{"GRR", "GMin", "GWtMin", "RTF", "GUF", "DTF", "MBF"}
}
