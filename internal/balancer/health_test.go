package balancer

import "testing"

func healthDST(n int) *DST {
	rows := make([]*DSTEntry, n)
	for i := range rows {
		rows[i] = &DSTEntry{GID: GID(i), Node: i / 2, Name: "gpu"}
	}
	return NewDST(rows)
}

func TestMarkFailureEscalates(t *testing.T) {
	d := healthDST(2)
	if h := d.Health(0); h != Healthy {
		t.Fatalf("fresh row = %v", h)
	}
	for i := 1; i < FailThreshold; i++ {
		if h := d.MarkFailure(0); h != Suspect {
			t.Fatalf("failure %d = %v, want Suspect", i, h)
		}
	}
	if h := d.MarkFailure(0); h != Dead {
		t.Fatalf("failure %d = %v, want Dead", FailThreshold, h)
	}
	// Dead is terminal: further failures and recoveries are no-ops.
	if h := d.MarkFailure(0); h != Dead {
		t.Fatalf("post-death failure = %v", h)
	}
	d.MarkRecovered(0)
	if h := d.Health(0); h != Dead {
		t.Fatalf("recovered a dead row to %v", h)
	}
	if got := d.HealthyLen(); got != 1 {
		t.Fatalf("HealthyLen = %d, want 1", got)
	}
}

func TestMarkRecoveredResetsTheCounter(t *testing.T) {
	d := healthDST(1)
	d.MarkFailure(0)
	d.MarkRecovered(0)
	if h := d.Health(0); h != Healthy {
		t.Fatalf("after recovery = %v", h)
	}
	// The consecutive-failure count restarts: it again takes FailThreshold
	// failures to kill the row.
	for i := 1; i < FailThreshold; i++ {
		if h := d.MarkFailure(0); h != Suspect {
			t.Fatalf("failure %d after recovery = %v, want Suspect", i, h)
		}
	}
	if h := d.MarkFailure(0); h != Dead {
		t.Fatalf("threshold after recovery = %v, want Dead", h)
	}
}

func TestMarkDeadAndUnknownGIDs(t *testing.T) {
	d := healthDST(1)
	d.MarkDead(0)
	if h := d.Health(0); h != Dead {
		t.Fatalf("MarkDead left %v", h)
	}
	if h := d.Health(99); h != Dead {
		t.Fatalf("unknown gid health = %v, want Dead", h)
	}
	if h := d.MarkFailure(99); h != Dead {
		t.Fatalf("unknown gid MarkFailure = %v, want Dead", h)
	}
	d.MarkRecovered(99) // must not panic
	d.MarkDead(99)      // must not panic
}

func TestGRRSkipsNonHealthy(t *testing.T) {
	d := healthDST(4)
	g := NewGRR()
	req := Request{Kind: "MC"}
	// Fully healthy: plain rotation.
	for i, want := range []GID{0, 1, 2, 3, 0} {
		if got := g.Select(req, d, NewSFT()); got != want {
			t.Fatalf("healthy rotation pick %d = %v, want %v", i, got, want)
		}
	}
	d.MarkDead(1)
	d.MarkFailure(2) // Suspect rows are skipped too
	seen := map[GID]int{}
	for i := 0; i < 6; i++ {
		seen[g.Select(req, d, NewSFT())]++
	}
	if seen[1] != 0 || seen[2] != 0 {
		t.Fatalf("rotation visited non-Healthy rows: %v", seen)
	}
	if seen[0] != 3 || seen[3] != 3 {
		t.Fatalf("rotation skew over survivors: %v", seen)
	}
}

func TestGRRAllDownFallsBackToRotation(t *testing.T) {
	d := healthDST(2)
	d.MarkDead(0)
	d.MarkDead(1)
	g := NewGRR()
	a := g.Select(Request{}, d, NewSFT())
	b := g.Select(Request{}, d, NewSFT())
	if a == b {
		t.Fatalf("exhausted-pool fallback stopped rotating: %v, %v", a, b)
	}
}

func TestArgminSkipsNonHealthy(t *testing.T) {
	d := healthDST(3)
	// GID 0 is idle but dead; GMin must pick the least-loaded survivor.
	d.MarkDead(0)
	d.Bind(1, "MC")
	if got := (GMin{}).Select(Request{Kind: "SC"}, d, NewSFT()); got != 2 {
		t.Fatalf("GMin with dead idle row picked %v, want 2", got)
	}
	// Whole pool down: the full-scan fallback still answers.
	d.MarkDead(1)
	d.MarkDead(2)
	if got := (GMin{}).Select(Request{Kind: "SC"}, d, NewSFT()); got != 0 {
		t.Fatalf("exhausted-pool argmin = %v, want 0", got)
	}
}

func TestMapperSpillsOffNonHealthyPick(t *testing.T) {
	d := healthDST(2)
	m := NewMapper(d, NewGRR())
	// Prime the rotation so the next GRR answer would be GID 0, then kill it
	// out from under the stale cursor by marking it dead after a pick.
	if gid := m.Select(Request{Kind: "MC"}); gid != 0 {
		t.Fatalf("first pick = %v", gid)
	}
	if gid := m.Select(Request{Kind: "MC"}); gid != 1 {
		t.Fatalf("second pick = %v", gid)
	}
	d.MarkDead(0)
	gid := m.Select(Request{Kind: "MC"})
	if gid != 1 {
		t.Fatalf("post-death pick = %v, want spill to 1", gid)
	}
	if m.Spills() != 0 {
		// GRR itself skipped the dead row — no spill was needed.
		t.Fatalf("Spills = %d for a policy-level skip", m.Spills())
	}
	// Force the spillover path: a policy that insists on the dead device.
	m2 := NewMapper(d, stubbornPolicy{0})
	if got := m2.Select(Request{Kind: "MC"}); got != 1 {
		t.Fatalf("spillover pick = %v, want 1", got)
	}
	if m2.Spills() != 1 {
		t.Fatalf("Spills = %d, want 1", m2.Spills())
	}
}

// stubbornPolicy always answers the same GID, healthy or not.
type stubbornPolicy struct{ gid GID }

func (s stubbornPolicy) Name() string                   { return "stubborn" }
func (s stubbornPolicy) Select(Request, *DST, *SFT) GID { return s.gid }

func TestMapperReportFailureFeedsDetector(t *testing.T) {
	d := healthDST(2)
	m := NewMapper(d, GMin{})
	for i := 0; i < FailThreshold-1; i++ {
		if h := m.ReportFailure(0); h != Suspect {
			t.Fatalf("report %d = %v", i, h)
		}
	}
	m.ReportRecovered(0)
	if h := d.Health(0); h != Healthy {
		t.Fatalf("after ReportRecovered = %v", h)
	}
	for i := 0; i < FailThreshold; i++ {
		m.ReportFailure(0)
	}
	if h := d.Health(0); h != Dead {
		t.Fatalf("after threshold reports = %v", h)
	}
}
