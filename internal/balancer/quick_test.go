package balancer

import (
	"testing"
	"testing/quick"

	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// Property: every policy always returns a valid GID for any table state and
// request, and the mapper's bind/unbind bookkeeping never underflows.
func TestQuickPoliciesAlwaysValid(t *testing.T) {
	kinds := []string{"DC", "MC", "HI", "GA", ""}
	f := func(ops []uint16, polIdx uint8) bool {
		names := Names()
		pol, err := ByName(names[int(polIdx)%len(names)])
		if err != nil {
			return false
		}
		m := NewMapper(pool4(), pol)
		type binding struct {
			gid  GID
			kind string
		}
		var live []binding
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // select
				kind := kinds[int(op/4)%len(kinds)]
				req := Request{
					AppID: int(op), Kind: kind,
					Node: int(op/8) % 2, Tenant: int64(op % 3),
				}
				gid := m.Select(req)
				if m.DST().Entry(gid) == nil {
					return false
				}
				live = append(live, binding{gid, kind})
			case 2: // release
				if len(live) > 0 {
					b := live[0]
					live = live[1:]
					m.Release(b.gid, b.kind)
				}
			default: // feedback
				m.Feedback(&rpcproto.Feedback{
					Kind:     kinds[int(op/4)%len(kinds)],
					ExecTime: sim.Time(op) * 1000,
					GPUTime:  sim.Time(op) * 500,
					XferTime: sim.Time(op) * 100,
					MemBW:    float64(op % 5000),
					GPUUtil:  float64(op%100) / 100,
				})
			}
			// Invariant: loads equal live bindings per gid, never negative.
			counts := map[GID]int{}
			for _, b := range live {
				counts[b.gid]++
			}
			for _, e := range m.DST().Entries() {
				if e.Load < 0 || e.Load != counts[e.GID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: SFT running means stay within the range of recorded samples,
// and drift resets never lose more history than was recorded (the retained
// sample count plus resets is consistent).
func TestQuickSFTMeansBounded(t *testing.T) {
	f := func(execs []uint32) bool {
		if len(execs) == 0 {
			return true
		}
		sft := NewSFT()
		min, max := sim.Time(execs[0]), sim.Time(execs[0])
		for _, e := range execs {
			v := sim.Time(e)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sft.Record(&rpcproto.Feedback{Kind: "X", ExecTime: v})
		}
		got, ok := sft.Lookup("X")
		if !ok || got.Samples < 1 || got.Samples > len(execs) {
			return false
		}
		if got.Samples+sft.DriftResets > len(execs) && sft.DriftResets > 0 {
			// Each reset discards at least driftMinSamples of history.
			return false
		}
		// The mean of any retained window lies within the global range.
		return got.ExecTime >= min-1 && got.ExecTime <= max+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
