package balancer

import (
	"repro/internal/rpcproto"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Mapper is the GPU Affinity Mapper: it owns the DST and SFT, answers
// device-selection requests through the configured policy and absorbs the
// Feedback Engine reports relayed by the interposers.
type Mapper struct {
	dst    *DST
	sft    *SFT
	policy Policy
	rec    *trace.Recorder

	selections int
	feedbacks  int
	spills     int // selections rerouted off a non-Healthy pick
	failures   int // failed-call reports absorbed
}

// NewMapper wires a mapper over the gPool's DST with the given policy.
func NewMapper(dst *DST, policy Policy) *Mapper {
	return &Mapper{dst: dst, sft: NewSFT(), policy: policy}
}

// DST returns the Device Status Table.
func (m *Mapper) DST() *DST { return m.dst }

// SFT returns the Scheduler Feedback Table.
func (m *Mapper) SFT() *SFT { return m.sft }

// Policy returns the active selection policy.
func (m *Mapper) Policy() Policy { return m.policy }

// SetRecorder installs the observability recorder: every selection then
// emits a structured decision-audit record (the DST rows the policy saw,
// the SFT's history for the class, the raw and final picks). A nil
// recorder disables auditing.
func (m *Mapper) SetRecorder(rec *trace.Recorder) { m.rec = rec }

// Select answers one device-selection request: the policy picks a GID and
// the mapper records the binding in the DST.
func (m *Mapper) Select(req Request) GID {
	gid, _, _ := m.pick(req)
	return gid
}

// SelectAt is Select with the caller's clock, emitting a decision-audit
// record when a recorder is installed. The DST snapshot is taken before
// the winning bind mutates the table, so the record shows exactly what the
// policy consulted.
func (m *Mapper) SelectAt(now sim.Time, req Request) GID {
	if !m.rec.Enabled() {
		gid, _, _ := m.pick(req)
		return gid
	}
	d := m.auditStart(now, req)
	gid, raw, spilled := m.pick(req)
	d.Raw, d.Picked, d.Spilled = int(raw), int(gid), spilled
	m.rec.RecordDecision(d)
	return gid
}

// auditStart snapshots the tables into a decision-audit record before the
// pick mutates them. Partitionable rows carry their free capacity so slice
// audits show exactly which devices could fit the profile.
func (m *Mapper) auditStart(now sim.Time, req Request) trace.Decision {
	d := trace.Decision{
		At: now, App: req.AppID, Class: req.Kind, Node: req.Node,
		Tenant: req.Tenant, Policy: m.policy.Name(),
		Rows: make([]trace.DecisionRow, 0, m.dst.Len()),
	}
	for _, e := range m.dst.Entries() {
		row := trace.DecisionRow{
			GID: int(e.GID), Node: e.Node, Health: e.Health.String(),
			Load: e.Load, Weight: e.Weight,
		}
		if e.Partitionable {
			row.FreeFrac = e.FreeFrac
			row.FreeMem = e.FreeMem
		}
		d.Rows = append(d.Rows, row)
	}
	if h, ok := m.sft.Lookup(req.Kind); ok {
		d.SFTSamples = h.Samples
		d.SFTExec = h.ExecTime
	}
	return d
}

// SelectSliceAt answers a slice-placement request: the policy picks the
// partitionable device the requested profile should be carved from. ok is
// false when no eligible device currently fits the profile — the caller
// parks the tenant until capacity frees and retries. The mapper neither
// carves nor binds here: the placement layer owns the carve (gpu.Partition
// + DST.CarveCapacity + the new slice row) so the two ledgers stay
// reconciled in one place. Every attempt — including a no-fit parking —
// is decision-audited when a recorder is installed (Picked −1 means
// parked).
func (m *Mapper) SelectSliceAt(now sim.Time, req Request) (GID, bool) {
	anyFit := false
	for _, e := range m.dst.Entries() {
		if eligible(e, req) {
			anyFit = true
			break
		}
	}
	gid, raw := GID(-1), GID(-1)
	if anyFit {
		gid = m.policy.Select(req, m.dst, m.sft)
		raw = gid
		if e := m.dst.Entry(gid); e == nil || !eligible(e, req) {
			// The policy named an ineligible row (a stale rotation or a
			// slice-unaware policy): spill to the least-loaded fit.
			alt, ok := argminWhere(m.dst, req, func(e *DSTEntry) float64 {
				return float64(e.Load) / e.Weight
			}, true)
			if !ok {
				anyFit = false
			}
			gid = alt
			m.spills++
		}
		m.selections++
	}
	if m.rec.Enabled() {
		d := m.auditStart(now, req)
		d.Raw, d.Picked, d.Spilled = int(raw), int(gid), gid != raw
		if !anyFit {
			d.Raw, d.Picked = -1, -1
		}
		m.rec.RecordDecision(d)
	}
	if !anyFit {
		return 0, false
	}
	return gid, true
}

// pick runs the policy and the mapper's spill-over, binds the winner and
// returns (final, policy's raw answer, spilled). A policy may still name a
// non-Healthy device (stale round-robin state, or a pool with no healthy
// rows); the mapper spills such picks over to the least-loaded healthy
// survivor when one exists.
func (m *Mapper) pick(req Request) (gid, raw GID, spilled bool) {
	gid = m.policy.Select(req, m.dst, m.sft)
	if m.dst.Entry(gid) == nil && m.dst.Len() > 0 {
		gid = 0
	}
	raw = gid
	if e := m.dst.Entry(gid); e != nil && e.Health != Healthy {
		if alt, ok := argminWhere(m.dst, req, func(e *DSTEntry) float64 {
			return float64(e.Load) / e.Weight
		}, true); ok && alt != gid {
			gid = alt
			spilled = true
			m.spills++
		}
	}
	m.dst.Bind(gid, req.Kind)
	m.selections++
	return gid, raw, spilled
}

// ReportFailure folds one failed call against gid into the failure detector
// and returns the row's resulting health, so callers can decide between a
// retry (Suspect) and a failover (Dead).
func (m *Mapper) ReportFailure(gid GID) Health {
	m.failures++
	return m.dst.MarkFailure(gid)
}

// ReportRecovered records a successful call against a previously suspect
// device, returning its row to Healthy.
func (m *Mapper) ReportRecovered(gid GID) {
	m.dst.MarkRecovered(gid)
}

// Spills returns how many selections were rerouted off a non-Healthy pick.
func (m *Mapper) Spills() int { return m.spills }

// Release undoes a binding when the application exits.
func (m *Mapper) Release(gid GID, kind string) {
	m.dst.Unbind(gid, kind)
}

// Feedback folds a device-level report into the SFT.
func (m *Mapper) Feedback(fb *rpcproto.Feedback) {
	if fb == nil {
		return
	}
	m.sft.Record(fb)
	m.feedbacks++
}

// Stats returns selection and feedback counters.
func (m *Mapper) Stats() (selections, feedbacks int) {
	return m.selections, m.feedbacks
}
