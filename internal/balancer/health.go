package balancer

// Health is a DST row's failure-detector state. The zero value is Healthy,
// so statically built tables start fully available and legacy callers that
// never touch the detector see the pre-fault-tolerance behaviour.
type Health int

// Health states. A row degrades Healthy→Suspect on the first failed call,
// Suspect→Dead after FailThreshold consecutive failures (or immediately via
// MarkDead), and recovers Suspect→Healthy on the next success. Dead is
// terminal: a removed or crashed backend never rejoins the pool.
const (
	Healthy Health = iota
	Suspect
	Dead
)

// String renders the state for traces and tables.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "Healthy"
	case Suspect:
		return "Suspect"
	case Dead:
		return "Dead"
	default:
		return "Health(?)"
	}
}

// FailThreshold is how many consecutive call failures (timeouts or transport
// errors) against one device turn Suspect into Dead.
const FailThreshold = 3

// MarkFailure records one failed call against gid and returns the row's
// resulting health: Suspect on the first failures, Dead once FailThreshold
// consecutive failures accumulate. Unknown GIDs report Dead.
func (d *DST) MarkFailure(gid GID) Health {
	e := d.Entry(gid)
	if e == nil {
		return Dead
	}
	if e.Health == Dead {
		return Dead
	}
	e.ConsecFails++
	if e.ConsecFails >= FailThreshold {
		e.Health = Dead
	} else {
		e.Health = Suspect
	}
	return e.Health
}

// MarkRecovered clears the consecutive-failure counter after a successful
// call, returning a Suspect row to Healthy. Dead rows stay dead.
func (d *DST) MarkRecovered(gid GID) {
	e := d.Entry(gid)
	if e == nil || e.Health == Dead {
		return
	}
	e.ConsecFails = 0
	e.Health = Healthy
}

// MarkDead forces the row Dead (used when the fault is known out-of-band,
// e.g. the gPool Creator removed the node).
func (d *DST) MarkDead(gid GID) {
	if e := d.Entry(gid); e != nil {
		e.Health = Dead
	}
}

// Health returns the row's state (Dead for unknown GIDs).
func (d *DST) Health(gid GID) Health {
	e := d.Entry(gid)
	if e == nil {
		return Dead
	}
	return e.Health
}

// HealthyLen counts the rows still routable.
func (d *DST) HealthyLen() int {
	n := 0
	for _, e := range d.entries {
		if e.Health == Healthy {
			n++
		}
	}
	return n
}
