package balancer

import (
	"testing"

	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// pool4 builds a heterogeneous 2-node, 4-GPU DST resembling the supernode:
// node 0 = {Quadro2000 w1.0, TeslaC2050 w2.2}, node 1 = {Quadro4000 w1.3,
// TeslaC2070 w2.3}.
func pool4() *DST {
	return NewDST([]*DSTEntry{
		{GID: 0, Node: 0, LocalDev: 0, Name: "Quadro2000", Weight: 1.0, MemBandwidth: 5200},
		{GID: 1, Node: 0, LocalDev: 1, Name: "TeslaC2050", Weight: 2.2, MemBandwidth: 18000},
		{GID: 2, Node: 1, LocalDev: 0, Name: "Quadro4000", Weight: 1.3, MemBandwidth: 11200},
		{GID: 3, Node: 1, LocalDev: 1, Name: "TeslaC2070", Weight: 2.3, MemBandwidth: 18000},
	})
}

func fb(kind string, exec, gput, xfer sim.Time, bw, util float64) *rpcproto.Feedback {
	return &rpcproto.Feedback{Kind: kind, ExecTime: exec, GPUTime: gput,
		XferTime: xfer, MemBW: bw, GPUUtil: util}
}

func TestGRRRoundRobin(t *testing.T) {
	dst := pool4()
	g := NewGRR()
	want := []GID{0, 1, 2, 3, 0, 1}
	for i, w := range want {
		if got := g.Select(Request{}, dst, NewSFT()); got != w {
			t.Fatalf("GRR pick %d = %v, want %v", i, got, w)
		}
	}
}

func TestGMinPicksLeastLoadedPreferringLocal(t *testing.T) {
	dst := pool4()
	dst.Bind(0, "DC")
	dst.Bind(1, "DC")
	// GIDs 2,3 tie at load 0; requester on node 1 → local GID 2 wins.
	if got := (GMin{}).Select(Request{Node: 1}, dst, NewSFT()); got != 2 {
		t.Fatalf("GMin = %v, want 2 (local tie-break)", got)
	}
	// Requester on node 0 with all equal load: first local (GID 0).
	dst2 := pool4()
	if got := (GMin{}).Select(Request{Node: 0}, dst2, NewSFT()); got != 0 {
		t.Fatalf("GMin on empty pool = %v, want 0", got)
	}
}

func TestGWtMinUsesWeights(t *testing.T) {
	dst := pool4()
	// One app everywhere: weighted loads 1/1.0, 1/2.2, 1/1.3, 1/2.3 →
	// GID 3 (2.3) has the minimum.
	for gid := GID(0); gid < 4; gid++ {
		dst.Bind(gid, "DC")
	}
	if got := (GWtMin{}).Select(Request{Node: 0}, dst, NewSFT()); got != 3 {
		t.Fatalf("GWtMin = %v, want 3", got)
	}
}

func TestDSTBindUnbind(t *testing.T) {
	dst := pool4()
	dst.Bind(1, "MC")
	dst.Bind(1, "MC")
	dst.Bind(1, "DC")
	e := dst.Entry(1)
	if e.Load != 3 || e.BoundKinds["MC"] != 2 {
		t.Fatalf("entry = %+v", e)
	}
	dst.Unbind(1, "MC")
	dst.Unbind(1, "DC")
	if e.Load != 1 || e.BoundKinds["MC"] != 1 || e.BoundKinds["DC"] != 0 {
		t.Fatalf("after unbind: %+v", e)
	}
	dst.Unbind(1, "ZZ") // unknown kind must not underflow
	if e.Load != 0 {
		t.Fatalf("load = %d", e.Load)
	}
	dst.Unbind(1, "ZZ")
	if e.Load != 0 {
		t.Fatal("load went negative")
	}
	if dst.Entry(99) != nil {
		t.Fatal("out-of-range Entry should be nil")
	}
}

func TestSFTRunningMeans(t *testing.T) {
	sft := NewSFT()
	sft.Record(fb("MC", 100, 50, 10, 1000, 0.5))
	sft.Record(fb("MC", 200, 150, 30, 3000, 0.7))
	e, ok := sft.Lookup("MC")
	if !ok || e.Samples != 2 {
		t.Fatalf("lookup = %+v, %v", e, ok)
	}
	if e.ExecTime != 150 || e.GPUTime != 100 || e.XferTime != 20 {
		t.Fatalf("means = %+v", e)
	}
	if e.MemBW != 2000 || e.GPUUtil != 0.6 {
		t.Fatalf("means = %+v", e)
	}
	if e.XferFrac() != 0.2 {
		t.Fatalf("XferFrac = %v", e.XferFrac())
	}
	if sft.Samples("XX") != 0 {
		t.Fatal("phantom samples")
	}
	sft.Record(nil)                  // must not panic
	sft.Record(&rpcproto.Feedback{}) // empty kind ignored
	if len(sft.Kinds()) != 1 {
		t.Fatalf("kinds = %v", sft.Kinds())
	}
}

func TestRTFBalancesOnMeasuredRuntime(t *testing.T) {
	dst := pool4()
	sft := NewSFT()
	sft.Record(fb("DC", 30e6, 27e6, 0, 63, 0.9))
	sft.Record(fb("GA", 2e6, 0.02e6, 0, 18, 0.01))
	// GID 0 holds one DC (30s of work at weight 1); GID 1 holds one GA
	// (2s at weight 2.2). RTF sends the next DC to a GPU with less time
	// load — not GID 0.
	dst.Bind(0, "DC")
	dst.Bind(1, "GA")
	got := (RTF{}).Select(Request{Kind: "DC", Node: 0}, dst, sft)
	if got == 0 {
		t.Fatalf("RTF = %v; stacked onto the 30s backlog", got)
	}
}

func TestRTFFallsBackWithoutHistory(t *testing.T) {
	dst := pool4()
	sft := NewSFT()
	want := (GWtMin{}).Select(Request{Kind: "DC", Node: 0}, dst, sft)
	if got := (RTF{}).Select(Request{Kind: "DC", Node: 0}, dst, sft); got != want {
		t.Fatalf("RTF without history = %v, want GWtMin's %v", got, want)
	}
}

func TestGUFSeparatesHighUtilApps(t *testing.T) {
	dst := pool4()
	sft := NewSFT()
	sft.Record(fb("DC", 30e6, 27e6, 0, 63, 0.9))   // high util
	sft.Record(fb("GA", 2e6, 0.02e6, 0, 18, 0.01)) // low util
	dst.Bind(1, "DC")                              // busy app on the big GPU
	// Another DC must avoid GID 1 despite its attractive weight.
	if got := (GUF{}).Select(Request{Kind: "DC", Node: 0}, dst, sft); got == 1 {
		t.Fatal("GUF collocated two high-utilization apps")
	}
	// A GA (near-zero util) can happily share GID 1's class of device.
	got := (GUF{}).Select(Request{Kind: "GA", Node: 0}, dst, sft)
	if dst.Entry(got) == nil {
		t.Fatal("invalid pick")
	}
}

func TestDTFPairsContrastingTransferProfiles(t *testing.T) {
	dst := pool4()
	sft := NewSFT()
	sft.Record(fb("MC", 8e6, 6.8e6, 5.8e6, 3000, 0.85)) // transfer-heavy
	sft.Record(fb("DC", 30e6, 27e6, 0.001e6, 63, 0.9))  // compute-heavy
	dst.Bind(1, "MC")
	dst.Bind(3, "DC")
	// A new MC should prefer the device holding the contrasting DC (GID 3)
	// over the one holding another MC (GID 1), all else similar.
	got := (DTF{}).Select(Request{Kind: "MC", Node: 1}, dst, sft)
	if got == 1 {
		t.Fatal("DTF stacked two transfer-bound apps")
	}
}

func TestMBFAvoidsBandwidthCollocation(t *testing.T) {
	dst := pool4()
	sft := NewSFT()
	sft.Record(fb("HI", 25e6, 21.6e6, 0.04e6, 13000, 0.86)) // bandwidth hog
	sft.Record(fb("DC", 30e6, 27e6, 0.001e6, 63, 0.9))      // light on bandwidth
	dst.Bind(1, "HI")
	dst.Bind(3, "DC")
	// Another HI must not land on GID 1 next to the first HI.
	if got := (MBF{}).Select(Request{Kind: "HI", Node: 0}, dst, sft); got == 1 {
		t.Fatal("MBF collocated two bandwidth-bound apps")
	}
	// A DC is indifferent to bandwidth pressure; it must still balance.
	got := (MBF{}).Select(Request{Kind: "DC", Node: 0}, dst, sft)
	if dst.Entry(got) == nil {
		t.Fatal("invalid pick")
	}
}

func TestArbiterSwitchesAfterFeedback(t *testing.T) {
	dst := pool4()
	sft := NewSFT()
	a := NewArbiter(GWtMin{}, RTF{}, 2)
	req := Request{Kind: "MC", Node: 0}
	a.Select(req, dst, sft)
	if a.Switched("MC") {
		t.Fatal("switched with no feedback")
	}
	sft.Record(fb("MC", 8e6, 6.8e6, 5.8e6, 3000, 0.85))
	a.Select(req, dst, sft)
	if a.Switched("MC") {
		t.Fatal("switched below MinSamples")
	}
	sft.Record(fb("MC", 8e6, 6.8e6, 5.8e6, 3000, 0.85))
	a.Select(req, dst, sft)
	if !a.Switched("MC") {
		t.Fatal("did not switch at MinSamples")
	}
	if a.Name() != "PA(GWtMin→RTF)" {
		t.Fatalf("Name = %q", a.Name())
	}
}

func TestByNameRegistry(t *testing.T) {
	for _, n := range Names() {
		p, err := ByName(n)
		if err != nil || p == nil {
			t.Fatalf("ByName(%q) = %v, %v", n, p, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestMapperLifecycle(t *testing.T) {
	m := NewMapper(pool4(), NewGRR())
	req := Request{AppID: 1, Kind: "MC", Node: 0}
	gid := m.Select(req)
	if m.DST().Entry(gid).Load != 1 {
		t.Fatal("Select did not bind")
	}
	m.Feedback(fb("MC", 8e6, 6.8e6, 5.8e6, 3000, 0.85))
	if m.SFT().Samples("MC") != 1 {
		t.Fatal("feedback not recorded")
	}
	m.Release(gid, "MC")
	if m.DST().Entry(gid).Load != 0 {
		t.Fatal("Release did not unbind")
	}
	sel, fbs := m.Stats()
	if sel != 1 || fbs != 1 {
		t.Fatalf("stats = %d, %d", sel, fbs)
	}
	m.Feedback(nil)
	if _, fbs := m.Stats(); fbs != 1 {
		t.Fatal("nil feedback counted")
	}
}

func TestMapperDistributesLoadRoundRobin(t *testing.T) {
	m := NewMapper(pool4(), NewGRR())
	for i := 0; i < 8; i++ {
		m.Select(Request{AppID: i, Kind: "MC", Node: 0})
	}
	for _, e := range m.DST().Entries() {
		if e.Load != 2 {
			t.Fatalf("GID %d load = %d, want 2", e.GID, e.Load)
		}
	}
}

func TestSFTDriftResetsHistory(t *testing.T) {
	sft := NewSFT()
	// Stable regime.
	for i := 0; i < 4; i++ {
		sft.Record(fb("MC", 8e6, 6.8e6, 5.8e6, 3000, 0.85))
	}
	if sft.DriftResets != 0 {
		t.Fatalf("premature drift reset")
	}
	// The class's behaviour shifts by 4x (e.g., a new input size).
	sft.Record(fb("MC", 32e6, 27e6, 23e6, 3000, 0.85))
	if sft.DriftResets != 1 {
		t.Fatalf("drift not detected: resets=%d", sft.DriftResets)
	}
	e, ok := sft.Lookup("MC")
	if !ok || e.Samples != 1 {
		t.Fatalf("history not relearned: %+v", e)
	}
	if e.ExecTime != 32e6 {
		t.Fatalf("relearned mean %v, want 32s", e.ExecTime)
	}
	// Small fluctuations never reset.
	sft.Record(fb("MC", 30e6, 26e6, 22e6, 3000, 0.85))
	sft.Record(fb("MC", 36e6, 28e6, 24e6, 3000, 0.85))
	sft.Record(fb("MC", 33e6, 27e6, 23e6, 3000, 0.85))
	if sft.DriftResets != 1 {
		t.Fatalf("spurious drift reset: %d", sft.DriftResets)
	}
}
