// Package balancer implements the paper's GPU Affinity Mapper / workload
// balancer: the Device Status Table (DST) of static weights and dynamic
// loads, the Scheduler Feedback Table (SFT) fed by device-level schedulers,
// the Target GPU Selector policies — GRR, GMin, GWtMin and the
// feedback-based RTF, GUF, DTF and MBF — and the Policy Arbiter that
// switches from a static to a feedback policy once enough history has
// accumulated.
package balancer

import (
	"sort"

	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// GID is a gPool-global GPU identifier.
type GID int

// DSTEntry is one device's row in the Device Status Table: static
// capability information written by the gPool Creator and dynamic load
// updated as applications bind and unbind.
type DSTEntry struct {
	GID      GID
	Node     int
	LocalDev int
	Name     string

	// Static capability weights.
	Weight       float64
	ComputeRate  float64
	MemBandwidth float64

	// Dynamic state.
	Load       int            // applications currently bound
	BoundKinds map[string]int // bound application classes

	// Failure-detector state (see health.go). Zero value = Healthy.
	Health      Health
	ConsecFails int // consecutive failed calls since the last success
}

// DST is the Device Status Table.
type DST struct {
	entries []*DSTEntry
}

// NewDST builds the table from per-device rows.
func NewDST(entries []*DSTEntry) *DST {
	for _, e := range entries {
		if e.BoundKinds == nil {
			e.BoundKinds = make(map[string]int)
		}
		if e.Weight <= 0 {
			e.Weight = 1
		}
	}
	return &DST{entries: entries}
}

// Entries returns the rows in GID order.
func (d *DST) Entries() []*DSTEntry { return d.entries }

// Len returns the number of devices.
func (d *DST) Len() int { return len(d.entries) }

// Entry returns the row for gid, or nil.
func (d *DST) Entry(gid GID) *DSTEntry {
	if int(gid) < 0 || int(gid) >= len(d.entries) {
		return nil
	}
	return d.entries[gid]
}

// Bind records an application of the given class binding to gid.
func (d *DST) Bind(gid GID, kind string) {
	if e := d.Entry(gid); e != nil {
		e.Load++
		e.BoundKinds[kind]++
	}
}

// Unbind removes a binding.
func (d *DST) Unbind(gid GID, kind string) {
	if e := d.Entry(gid); e != nil {
		if e.Load > 0 {
			e.Load--
		}
		if e.BoundKinds[kind] > 0 {
			e.BoundKinds[kind]--
			if e.BoundKinds[kind] == 0 {
				delete(e.BoundKinds, kind)
			}
		}
	}
}

// boundKindsSorted returns the device's bound classes in sorted order for
// deterministic iteration.
func (e *DSTEntry) boundKindsSorted() []string {
	ks := make([]string, 0, len(e.BoundKinds))
	for k := range e.BoundKinds {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// SFTEntry aggregates the feedback history of one application class.
type SFTEntry struct {
	Kind    string
	Samples int

	// Running means of the Feedback Engine's reports.
	ExecTime sim.Time
	GPUTime  sim.Time
	XferTime sim.Time
	MemBW    float64 // bytes/us of kernel traffic while on GPU
	GPUUtil  float64
}

// XferFrac returns the class's share of GPU time spent in transfers.
func (e *SFTEntry) XferFrac() float64 {
	if e.GPUTime <= 0 {
		return 0
	}
	f := float64(e.XferTime) / float64(e.GPUTime)
	if f > 1 {
		f = 1
	}
	return f
}

// SFT is the Scheduler Feedback Table, the history-based store the Policy
// Arbiter and the feedback policies read. It also implements the paper's
// response to "device-level observations of altered behavior": when a
// class's fresh reports drift far from its accumulated history, the stale
// history is discarded and the class is re-learned.
type SFT struct {
	byKind map[string]*SFTEntry

	// DriftResets counts histories discarded because the class's behaviour
	// changed.
	DriftResets int
}

// driftFactor is how far a fresh report's runtime may deviate from the
// class mean (in either direction) before the history is considered stale.
const driftFactor = 2.5

// driftMinSamples is how much history must exist before drift can trigger.
const driftMinSamples = 3

// NewSFT returns an empty table.
func NewSFT() *SFT { return &SFT{byKind: make(map[string]*SFTEntry)} }

// Record folds a feedback report into the class's running means.
func (s *SFT) Record(fb *rpcproto.Feedback) {
	if fb == nil || fb.Kind == "" {
		return
	}
	e, ok := s.byKind[fb.Kind]
	if ok && e.Samples >= driftMinSamples && fb.ExecTime > 0 && e.ExecTime > 0 {
		ratio := float64(fb.ExecTime) / float64(e.ExecTime)
		if ratio > driftFactor || ratio < 1/driftFactor {
			// The class's behaviour has shifted: drop the stale history
			// and re-learn from this report on.
			delete(s.byKind, fb.Kind)
			s.DriftResets++
			ok = false
		}
	}
	if !ok {
		e = &SFTEntry{Kind: fb.Kind}
		s.byKind[fb.Kind] = e
	}
	n := float64(e.Samples)
	merge := func(old sim.Time, v sim.Time) sim.Time {
		return sim.Time((float64(old)*n + float64(v)) / (n + 1))
	}
	e.ExecTime = merge(e.ExecTime, fb.ExecTime)
	e.GPUTime = merge(e.GPUTime, fb.GPUTime)
	e.XferTime = merge(e.XferTime, fb.XferTime)
	e.MemBW = (e.MemBW*n + fb.MemBW) / (n + 1)
	e.GPUUtil = (e.GPUUtil*n + fb.GPUUtil) / (n + 1)
	e.Samples++
}

// Lookup returns the class's history, if any.
func (s *SFT) Lookup(kind string) (*SFTEntry, bool) {
	e, ok := s.byKind[kind]
	return e, ok
}

// Samples returns the number of reports recorded for the class.
func (s *SFT) Samples(kind string) int {
	if e, ok := s.byKind[kind]; ok {
		return e.Samples
	}
	return 0
}

// Kinds returns the recorded classes, sorted.
func (s *SFT) Kinds() []string {
	ks := make([]string, 0, len(s.byKind))
	for k := range s.byKind {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
