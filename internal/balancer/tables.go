// Package balancer implements the paper's GPU Affinity Mapper / workload
// balancer: the Device Status Table (DST) of static weights and dynamic
// loads, the Scheduler Feedback Table (SFT) fed by device-level schedulers,
// the Target GPU Selector policies — GRR, GMin, GWtMin and the
// feedback-based RTF, GUF, DTF and MBF — and the Policy Arbiter that
// switches from a static to a feedback policy once enough history has
// accumulated.
package balancer

import (
	"fmt"
	"sort"

	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// GID is a gPool-global GPU identifier.
type GID int

// DSTEntry is one device's row in the Device Status Table: static
// capability information written by the gPool Creator and dynamic load
// updated as applications bind and unbind.
type DSTEntry struct {
	GID      GID
	Node     int
	LocalDev int
	Name     string

	// Static capability weights.
	Weight       float64
	ComputeRate  float64
	MemBandwidth float64

	// Dynamic state.
	Load       int            // applications currently bound
	BoundKinds map[string]int // bound application classes

	// Failure-detector state (see health.go). Zero value = Healthy.
	Health      Health
	ConsecFails int // consecutive failed calls since the last success

	// Partitioning state (MIG-style slice-capable fleets; see
	// internal/gpu/slice.go). All zero on classic whole-device rows.
	Partitionable bool         // row can be carved into slices
	TotalFrac     int          // compute sevenths when whole
	FreeFrac      int          // uncarved compute sevenths
	TotalMem      int64        // memory bytes when whole
	FreeMem       int64        // uncarved memory bytes
	Shapes        []SliceShape // allowed slice profiles (frag scoring)
	IsSlice       bool         // row is a carved slice, not a device
	Parent        GID          // physical row a slice was carved from
	Profile       string       // slice profile name ("1g".."7g")
}

// SliceShape mirrors one gpu.SliceProfile for placement: the demand a
// profile makes on a partitionable row's two capacity dimensions.
type SliceShape struct {
	Name string
	Frac int
	Mem  int64
}

// DST is the Device Status Table. Rows are GID-stable: lookups go through a
// gid→index map, so removing or retiring a middle row never shifts the rows
// behind it (PR 3's GMap.RemoveNode promises rows are never renumbered, and
// slice rows retire while later rows live on).
type DST struct {
	entries []*DSTEntry
	byGID   map[GID]int

	// UnbindClamps counts Unbind calls that would have driven Load or a
	// kind count negative — each one is a double-unbind (or unbind of a
	// never-bound kind) somewhere upstream. The old code clamped silently;
	// the counter makes the accounting bug observable, and PanicOnClamp
	// turns it into a crash for debugging.
	UnbindClamps int

	// PanicOnClamp makes Unbind panic instead of counting a clamp.
	PanicOnClamp bool
}

// NewDST builds the table from per-device rows. Ownership of the rows
// transfers to the DST: it retains the slice AND normalizes the rows in
// place (nil BoundKinds maps are allocated, non-positive Weights default
// to 1), so callers must not reuse or concurrently mutate them afterwards.
func NewDST(entries []*DSTEntry) *DST {
	d := &DST{byGID: make(map[GID]int, len(entries))}
	for _, e := range entries {
		d.addRow(e)
	}
	return d
}

// AddRow appends a dynamically created row (a carved slice) to the table.
// Like NewDST, ownership of the row transfers to the DST. GIDs must be
// unique for the table's lifetime; reusing one panics.
func (d *DST) AddRow(e *DSTEntry) {
	d.addRow(e)
}

func (d *DST) addRow(e *DSTEntry) {
	if _, dup := d.byGID[e.GID]; dup {
		panic(fmt.Sprintf("balancer: duplicate DST row for gid %d", e.GID))
	}
	if e.BoundKinds == nil {
		e.BoundKinds = make(map[string]int)
	}
	if e.Weight <= 0 {
		e.Weight = 1
	}
	d.byGID[e.GID] = len(d.entries)
	d.entries = append(d.entries, e)
}

// Entries returns the rows in table (row-creation) order.
func (d *DST) Entries() []*DSTEntry { return d.entries }

// Len returns the number of rows.
func (d *DST) Len() int { return len(d.entries) }

// Entry returns the row for gid, or nil. Lookup is by the row's GID field,
// not by position — the two coincide only while no row has ever been
// removed or carved.
func (d *DST) Entry(gid GID) *DSTEntry {
	if i, ok := d.byGID[gid]; ok {
		return d.entries[i]
	}
	return nil
}

// Retire marks a row permanently Dead — used when a carved slice is
// destroyed. The row stays in the table (GID-stable history for audits);
// policies skip it like any other dead device.
func (d *DST) Retire(gid GID) { d.MarkDead(gid) }

// Bind records an application of the given class binding to gid.
func (d *DST) Bind(gid GID, kind string) {
	if e := d.Entry(gid); e != nil {
		e.Load++
		e.BoundKinds[kind]++
	}
}

// Unbind removes a binding. An Unbind that finds nothing to remove — Load
// already zero, or no binding of that kind — is a double-unbind accounting
// bug upstream: it is counted in UnbindClamps (or panics under
// PanicOnClamp) rather than silently clamped.
func (d *DST) Unbind(gid GID, kind string) {
	e := d.Entry(gid)
	if e == nil {
		return
	}
	if e.Load > 0 {
		e.Load--
	} else {
		d.clamp(gid, kind, "load already zero")
	}
	if e.BoundKinds[kind] > 0 {
		e.BoundKinds[kind]--
		if e.BoundKinds[kind] == 0 {
			delete(e.BoundKinds, kind)
		}
	} else {
		d.clamp(gid, kind, "kind not bound")
	}
}

func (d *DST) clamp(gid GID, kind, why string) {
	if d.PanicOnClamp {
		panic(fmt.Sprintf("balancer: unbind clamp on gid %d kind %q: %s", gid, kind, why))
	}
	d.UnbindClamps++
}

// CarveCapacity deducts a slice's demand from a partitionable row's free
// capacity. Over-carving is a placement-layer bug and panics outright — the
// DST's view must stay reconcilable with the device-side gpu.Partition.
func (d *DST) CarveCapacity(gid GID, frac int, mem int64) {
	e := d.Entry(gid)
	if e == nil || !e.Partitionable {
		panic(fmt.Sprintf("balancer: carve on non-partitionable gid %d", gid))
	}
	if frac > e.FreeFrac || mem > e.FreeMem {
		panic(fmt.Sprintf("balancer: carve overcommit on gid %d: want %d/7+%dB, free %d/7+%dB",
			gid, frac, mem, e.FreeFrac, e.FreeMem))
	}
	e.FreeFrac -= frac
	e.FreeMem -= mem
}

// ReturnCapacity gives a destroyed slice's capacity back to its parent row.
// Over-returning panics for the same reason over-carving does.
func (d *DST) ReturnCapacity(gid GID, frac int, mem int64) {
	e := d.Entry(gid)
	if e == nil || !e.Partitionable {
		panic(fmt.Sprintf("balancer: capacity return on non-partitionable gid %d", gid))
	}
	e.FreeFrac += frac
	e.FreeMem += mem
	if e.FreeFrac > e.TotalFrac || e.FreeMem > e.TotalMem {
		panic(fmt.Sprintf("balancer: capacity over-return on gid %d: %d/%d sevenths, %d/%d bytes",
			gid, e.FreeFrac, e.TotalFrac, e.FreeMem, e.TotalMem))
	}
}

// boundKindsSorted returns the device's bound classes in sorted order for
// deterministic iteration.
func (e *DSTEntry) boundKindsSorted() []string {
	ks := make([]string, 0, len(e.BoundKinds))
	for k := range e.BoundKinds {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// SFTEntry aggregates the feedback history of one application class.
type SFTEntry struct {
	Kind    string
	Samples int

	// Running means of the Feedback Engine's reports.
	ExecTime sim.Time
	GPUTime  sim.Time
	XferTime sim.Time
	MemBW    float64 // bytes/us of kernel traffic while on GPU
	GPUUtil  float64
}

// XferFrac returns the class's share of GPU time spent in transfers.
func (e *SFTEntry) XferFrac() float64 {
	if e.GPUTime <= 0 {
		return 0
	}
	f := float64(e.XferTime) / float64(e.GPUTime)
	if f > 1 {
		f = 1
	}
	return f
}

// SFT is the Scheduler Feedback Table, the history-based store the Policy
// Arbiter and the feedback policies read. It also implements the paper's
// response to "device-level observations of altered behavior": when a
// class's fresh reports drift far from its accumulated history, the stale
// history is discarded and the class is re-learned.
type SFT struct {
	byKind map[string]*SFTEntry

	// DriftResets counts histories discarded because the class's behaviour
	// changed.
	DriftResets int
}

// driftFactor is how far a fresh report's runtime may deviate from the
// class mean (in either direction) before the history is considered stale.
const driftFactor = 2.5

// driftMinSamples is how much history must exist before drift can trigger.
const driftMinSamples = 3

// NewSFT returns an empty table.
func NewSFT() *SFT { return &SFT{byKind: make(map[string]*SFTEntry)} }

// Record folds a feedback report into the class's running means.
func (s *SFT) Record(fb *rpcproto.Feedback) {
	if fb == nil || fb.Kind == "" {
		return
	}
	e, ok := s.byKind[fb.Kind]
	if ok && e.Samples >= driftMinSamples && fb.ExecTime > 0 && e.ExecTime > 0 {
		ratio := float64(fb.ExecTime) / float64(e.ExecTime)
		if ratio > driftFactor || ratio < 1/driftFactor {
			// The class's behaviour has shifted: drop the stale history
			// and re-learn from this report on.
			delete(s.byKind, fb.Kind)
			s.DriftResets++
			ok = false
		}
	}
	if !ok {
		e = &SFTEntry{Kind: fb.Kind}
		s.byKind[fb.Kind] = e
	}
	n := float64(e.Samples)
	merge := func(old sim.Time, v sim.Time) sim.Time {
		return sim.Time((float64(old)*n + float64(v)) / (n + 1))
	}
	e.ExecTime = merge(e.ExecTime, fb.ExecTime)
	e.GPUTime = merge(e.GPUTime, fb.GPUTime)
	e.XferTime = merge(e.XferTime, fb.XferTime)
	e.MemBW = (e.MemBW*n + fb.MemBW) / (n + 1)
	e.GPUUtil = (e.GPUUtil*n + fb.GPUUtil) / (n + 1)
	e.Samples++
}

// Lookup returns the class's history, if any.
func (s *SFT) Lookup(kind string) (*SFTEntry, bool) {
	e, ok := s.byKind[kind]
	return e, ok
}

// Samples returns the number of reports recorded for the class.
func (s *SFT) Samples(kind string) int {
	if e, ok := s.byKind[kind]; ok {
		return e.Samples
	}
	return 0
}

// Kinds returns the recorded classes, sorted.
func (s *SFT) Kinds() []string {
	ks := make([]string, 0, len(s.byKind))
	for k := range s.byKind {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
