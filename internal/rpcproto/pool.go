package rpcproto

// Pool recycles Call and Reply frames across the requests flowing over one
// connection. The simulated RPC path allocates one Call and one Reply per
// intercepted CUDA call; on a million-request run those frames dominate the
// allocation profile, so the frontend and backend return consumed frames
// here instead of dropping them for the GC.
//
// Ownership discipline (enforced by the callers, not the pool):
//
//   - blocking calls: the frontend owns both frames and frees them once the
//     reply has been fully consumed (in practice: when it issues the next
//     call on the same connection);
//   - non-blocking calls: the frontend forgets the frame at issue, so the
//     backend frees the call — and the suppressed reply — at the end of the
//     serve iteration;
//   - recovery mode disables the pool entirely: retransmission keeps frames
//     alive past any single round trip, and correctness beats allocation
//     rate on that path.
//
// The zero Pool is valid and enabled. A nil *Pool is a valid disabled pool:
// Get allocates fresh frames and Free drops them, so callers need not guard.
type Pool struct {
	calls    []*Call
	replies  []*Reply
	disabled bool
}

// Disable makes the pool hand out fresh frames and drop freed ones. Used by
// the recovery layer, whose retransmission logic retains frames past the
// round trip that issued them.
func (p *Pool) Disable() {
	if p != nil {
		p.disabled = true
		p.calls = nil
		p.replies = nil
	}
}

// GetCall returns a zeroed Call frame.
func (p *Pool) GetCall() *Call {
	if p == nil || p.disabled {
		return &Call{}
	}
	if n := len(p.calls); n > 0 {
		c := p.calls[n-1]
		p.calls[n-1] = nil
		p.calls = p.calls[:n-1]
		return c
	}
	return &Call{}
}

// FreeCall returns a fully consumed Call frame to the pool. The frame is
// zeroed here so a pooled frame is indistinguishable from a fresh one.
func (p *Pool) FreeCall(c *Call) {
	if p == nil || p.disabled || c == nil {
		return
	}
	*c = Call{}
	p.calls = append(p.calls, c)
}

// GetReply returns a zeroed Reply frame.
func (p *Pool) GetReply() *Reply {
	if p == nil || p.disabled {
		return &Reply{}
	}
	if n := len(p.replies); n > 0 {
		r := p.replies[n-1]
		p.replies[n-1] = nil
		p.replies = p.replies[:n-1]
		return r
	}
	return &Reply{}
}

// FreeReply returns a fully consumed Reply frame to the pool.
func (p *Pool) FreeReply(r *Reply) {
	if p == nil || p.disabled || r == nil {
		return
	}
	*r = Reply{}
	p.replies = append(p.replies, r)
}
