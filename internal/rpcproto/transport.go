package rpcproto

import (
	"repro/internal/sim"
)

// LinkSpec models one communication hop: fixed propagation latency plus a
// serialization cost of size/Bandwidth charged to the sender. Bandwidth 0
// means infinite (no per-byte cost).
type LinkSpec struct {
	Latency   sim.Time
	Bandwidth float64 // bytes per microsecond
}

// Link presets matching the paper's setups.
var (
	// SharedMemLink is the frontend↔backend shared-memory RPC channel used
	// when application and GPU live on the same node (~12 GB/s host
	// memcpy).
	SharedMemLink = LinkSpec{Latency: 2 * sim.Microsecond, Bandwidth: 12000}

	// RemoteLink is the dedicated inter-node hop used for GPU remoting.
	// Latency is Gigabit-Ethernet-class; bandwidth is calibrated to 2 GB/s
	// so that a remote GPU costs a few times a local one — the paper
	// explicitly treats remote GPUs "much like NUMA memory is treated in
	// high end servers", and a literal 125 MB/s pipe would instead make
	// remote devices two orders of magnitude worse than the testbed
	// behaviour the paper reports. The remoting ablation bench sweeps this
	// bandwidth.
	RemoteLink = LinkSpec{Latency: 60 * sim.Microsecond, Bandwidth: 2000}

	// GigELink is literal Gigabit Ethernet (~125 bytes/us), used by the
	// network-sensitivity ablation.
	GigELink = LinkSpec{Latency: 60 * sim.Microsecond, Bandwidth: 125}
)

// TransferTime returns the sender-side serialization cost of size bytes.
func (l LinkSpec) TransferTime(size int64) sim.Time {
	if l.Bandwidth <= 0 || size <= 0 {
		return 0
	}
	return sim.Time(float64(size)/l.Bandwidth + 0.5)
}

// Msg is a message crossing a Conn: a *Call or a *Reply. It is an alias (not
// a defined type) so the transport's queues are sim.Queue[any] and deliveries
// can ride the kernel's closure-free AfterPut path.
type Msg = interface{}

// CrossDeliver schedules fn on the peer side's kernel after the link
// latency. It is how a cross-kernel Conn hands a delivery to an outside
// scheduler (the shard coordinator's mailbox Send); the latency must be at
// least the coordinator's lookahead for the handoff to be causally valid.
type CrossDeliver func(latency sim.Time, fn func())

// Conn is a simulated bidirectional message connection between a frontend
// (side A) and a backend (side B) crossing one link.
type Conn struct {
	k    *sim.Kernel
	link LinkSpec
	toB  *sim.Queue[Msg]
	toA  *sim.Queue[Msg]
	xToB CrossDeliver // non-nil when the two sides live on different kernels
	xToA CrossDeliver
	pool Pool
}

// NewConn creates a connection over the given link.
func NewConn(k *sim.Kernel, link LinkSpec) *Conn {
	return &Conn{k: k, link: link, toB: sim.NewQueue[Msg](k), toA: sim.NewQueue[Msg](k)}
}

// NewCrossConn creates a connection whose A side lives on kernel kA and B
// side on kernel kB. Each inbox queue lives on its reader's kernel, and
// sends route through the per-direction deliver hooks instead of a local
// timer. The frame pool is disabled: a pooled frame freed on one side would
// be handed out on the other side's kernel, and the two free lists have no
// synchronization between them — cross-kernel calls allocate and drop.
func NewCrossConn(kA, kB *sim.Kernel, link LinkSpec, toB, toA CrossDeliver) *Conn {
	c := &Conn{
		k:    kA,
		link: link,
		toB:  sim.NewQueue[Msg](kB),
		toA:  sim.NewQueue[Msg](kA),
		xToB: toB,
		xToA: toA,
	}
	c.pool.Disable()
	return c
}

// Link returns the connection's link spec.
func (c *Conn) Link() LinkSpec { return c.link }

// Endpoint is one side of a Conn.
type Endpoint struct {
	conn *Conn
	out  *sim.Queue[Msg]
	in   *sim.Queue[Msg]
	x    CrossDeliver // non-nil when out lives on the peer's kernel
}

// A returns the frontend-side endpoint.
func (c *Conn) A() Endpoint { return Endpoint{conn: c, out: c.toB, in: c.toA, x: c.xToB} }

// B returns the backend-side endpoint.
func (c *Conn) B() Endpoint { return Endpoint{conn: c, out: c.toA, in: c.toB, x: c.xToA} }

// Send transmits msg plus payload bulk bytes. The sender is charged the
// marshalling and serialization cost; the message is delivered to the peer
// after the link latency. Messages sent from one endpoint arrive in order
// (on cross-kernel conns the deliver hook's FIFO mailbox preserves this).
func (e Endpoint) Send(p *sim.Proc, msg Msg, payload int64) {
	size := int64(wireSize(msg)) + payload
	if cost := e.conn.link.TransferTime(size); cost > 0 {
		p.Sleep(cost)
	}
	if e.x != nil {
		out, m := e.out, msg
		e.x(e.conn.link.Latency, func() { out.Put(m) })
		return
	}
	e.conn.k.AfterPut(e.conn.link.Latency, e.out, msg)
}

// Pool returns the connection's shared frame pool (nil — the valid disabled
// pool — for the zero Endpoint). Both endpoints hand out the same pool: the
// simulation kernel runs one process at a time, so the two sides can share
// free lists without locking.
func (e Endpoint) Pool() *Pool {
	if e.conn == nil {
		return nil
	}
	return &e.conn.pool
}

// Recv blocks until the next message arrives.
func (e Endpoint) Recv(p *sim.Proc) Msg { return e.in.Get(p) }

// RecvTimeout blocks until the next message arrives or d elapses; ok is
// false on timeout. This is the interposer's per-call failure detector: a
// backend that died mid-call never replies, and the timeout is the only
// signal the frontend gets.
func (e Endpoint) RecvTimeout(p *sim.Proc, d sim.Time) (Msg, bool) {
	return e.in.GetTimeout(p, d)
}

// TryRecv returns the next message if one is waiting.
func (e Endpoint) TryRecv() (Msg, bool) { return e.in.TryGet() }

// InboxLen returns the number of delivered, unconsumed messages.
func (e Endpoint) InboxLen() int { return e.in.Len() }

// wireSize measures the encoded frame size of a message without encoding it
// (it is charged on every simulated Send, so it must not allocate); a codec
// test pins these arithmetic sizes to the real encoder's output.
func wireSize(m Msg) int {
	switch v := m.(type) {
	case *Call:
		return CallWireSize(v)
	case *Reply:
		return ReplyWireSize(v)
	default:
		return 64
	}
}
