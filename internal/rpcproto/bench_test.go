package rpcproto

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// Oversized strings must fail the encode loudly instead of truncating the
// field on the wire (the old encoder silently wrote a zero-length string).
func TestEncodeStringTooLong(t *testing.T) {
	long := strings.Repeat("x", 1<<16)

	c := sampleCall()
	c.KernelName = long
	if _, err := EncodeCall(c); !errors.Is(err, ErrStringTooLong) {
		t.Fatalf("oversized KernelName: err = %v, want ErrStringTooLong", err)
	}

	r := &Reply{Seq: 1, Err: long}
	if _, err := EncodeReply(r); !errors.Is(err, ErrStringTooLong) {
		t.Fatalf("oversized reply Err: err = %v, want ErrStringTooLong", err)
	}

	r = &Reply{Seq: 1, Feedback: &Feedback{Kind: long}}
	if _, err := EncodeReply(r); !errors.Is(err, ErrStringTooLong) {
		t.Fatalf("oversized feedback Kind: err = %v, want ErrStringTooLong", err)
	}

	// One byte under the limit still encodes.
	c = sampleCall()
	c.KernelName = long[:1<<16-1]
	frame, err := EncodeCall(c)
	if err != nil {
		t.Fatalf("max-length KernelName: %v", err)
	}
	var got Call
	if err := DecodeCallInto(&got, frame[4:], nil); err != nil {
		t.Fatal(err)
	}
	if got.KernelName != c.KernelName {
		t.Fatal("max-length KernelName did not round-trip")
	}
}

// A FrameWriter error on an oversized string must leave the stream clean: no
// partial frame may reach the underlying writer.
func TestFrameWriterOversizedLeavesStreamClean(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	defer fw.Close()
	bad := sampleCall()
	bad.KernelName = strings.Repeat("x", 1<<16)
	if err := fw.WriteCall(bad); !errors.Is(err, ErrStringTooLong) {
		t.Fatalf("WriteCall err = %v, want ErrStringTooLong", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes leaked to the stream after a failed encode", buf.Len())
	}
	if err := fw.WriteCall(sampleCall()); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	defer fr.Close()
	body, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	var got Call
	if err := DecodeCallInto(&got, body, &fr.Names); err != nil {
		t.Fatal(err)
	}
	if got.Seq != sampleCall().Seq {
		t.Fatalf("Seq = %d after recovery", got.Seq)
	}
}

// FrameWriter/FrameReader round trip a mixed sequence of calls and replies
// through their reusable buffers.
func TestFrameReaderWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	defer fw.Close()
	fr := NewFrameReader(&buf)
	defer fr.Close()

	for i := 0; i < 10; i++ {
		c := sampleCall()
		c.Seq = uint64(i)
		if err := fw.WriteCall(c); err != nil {
			t.Fatal(err)
		}
		if err := fw.WriteReply(&Reply{Seq: uint64(i), Err: "x",
			Feedback: &Feedback{AppID: int64(i), Kind: "MC"}}); err != nil {
			t.Fatal(err)
		}
	}
	var call Call
	var reply Reply
	for i := 0; i < 10; i++ {
		body, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeCallInto(&call, body, &fr.Names); err != nil {
			t.Fatal(err)
		}
		if call.Seq != uint64(i) || call.KernelName != sampleCall().KernelName {
			t.Fatalf("frame %d: call = %+v", i, call)
		}
		if body, err = fr.Next(); err != nil {
			t.Fatal(err)
		}
		if err := DecodeReplyInto(&reply, body, &fr.Names); err != nil {
			t.Fatal(err)
		}
		if reply.Seq != uint64(i) || reply.Feedback == nil || reply.Feedback.AppID != int64(i) {
			t.Fatalf("frame %d: reply = %+v", i, reply)
		}
	}
}

// DecodeReplyInto recycles the target's Feedback struct across decodes and
// clears it when the incoming frame carries none.
func TestDecodeReplyIntoFeedbackReuse(t *testing.T) {
	withFB := mustEncodeReply(t, &Reply{Seq: 1, Feedback: &Feedback{AppID: 7, Kind: "MC"}})
	withoutFB := mustEncodeReply(t, &Reply{Seq: 2})

	var rp Reply
	if err := DecodeReplyInto(&rp, withFB[4:], nil); err != nil {
		t.Fatal(err)
	}
	first := rp.Feedback
	if first == nil || first.AppID != 7 {
		t.Fatalf("feedback = %+v", rp.Feedback)
	}
	if err := DecodeReplyInto(&rp, withFB[4:], nil); err != nil {
		t.Fatal(err)
	}
	if rp.Feedback != first {
		t.Fatal("second decode allocated a new Feedback instead of reusing")
	}
	if err := DecodeReplyInto(&rp, withoutFB[4:], nil); err != nil {
		t.Fatal(err)
	}
	if rp.Feedback != nil {
		t.Fatal("feedback not cleared for a frame without one")
	}
}

// The interner returns the canonical copy for repeated byte strings and does
// not allocate once a value has been seen.
func TestInterner(t *testing.T) {
	var in Interner
	a := in.Intern([]byte("monteCarloKernel"))
	b := in.Intern([]byte("monteCarloKernel"))
	if a != b {
		t.Fatal("interner returned unequal strings")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if s := in.Intern([]byte("monteCarloKernel")); s != a {
			t.Fatal("wrong intern result")
		}
	})
	if allocs != 0 {
		t.Fatalf("Intern of a seen value allocates %.1f per run", allocs)
	}
}

// BenchmarkEncodeCall measures the append-style encoder into a reused buffer:
// steady state must be zero allocations.
func BenchmarkEncodeCall(b *testing.B) {
	c := sampleCall()
	buf := make([]byte, 0, CallWireSize(c))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := AppendCall(buf[:0], c)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != CallWireSize(c) {
			b.Fatalf("encoded %d bytes, wire size says %d", len(out), CallWireSize(c))
		}
	}
}

// BenchmarkDecodeCallInto measures decoding into a reused struct with an
// interner: steady state must be zero allocations.
func BenchmarkDecodeCallInto(b *testing.B) {
	frame, err := EncodeCall(sampleCall())
	if err != nil {
		b.Fatal(err)
	}
	body := frame[4:]
	var c Call
	var names Interner
	if err := DecodeCallInto(&c, body, &names); err != nil { // warm the interner
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeCallInto(&c, body, &names); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameRoundTrip pushes a call and a feedback-bearing reply through
// FrameWriter → FrameReader each iteration. After warmup (buffer growth,
// interner fill) the loop must be allocation-free.
func BenchmarkFrameRoundTrip(b *testing.B) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	defer fw.Close()
	fr := NewFrameReader(&buf)
	defer fr.Close()
	c := sampleCall()
	rep := &Reply{Seq: 9, Feedback: &Feedback{AppID: 7, Kind: "MC", MemBW: 0.5}}
	var gotC Call
	var gotR Reply
	iter := func() {
		buf.Reset()
		if err := fw.WriteCall(c); err != nil {
			b.Fatal(err)
		}
		if err := fw.WriteReply(rep); err != nil {
			b.Fatal(err)
		}
		body, err := fr.Next()
		if err != nil {
			b.Fatal(err)
		}
		if err := DecodeCallInto(&gotC, body, &fr.Names); err != nil {
			b.Fatal(err)
		}
		if body, err = fr.Next(); err != nil {
			b.Fatal(err)
		}
		if err := DecodeReplyInto(&gotR, body, &fr.Names); err != nil {
			b.Fatal(err)
		}
	}
	iter() // warmup: grow the bytes.Buffer, fill the interner, alloc Feedback
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter()
	}
	if gotC.Seq != c.Seq || gotR.Feedback == nil {
		b.Fatal("round trip corrupted data")
	}
}

// BenchmarkWireSize guards the arithmetic size functions used by the
// simulated transport on every Send: no encoding, no allocation.
func BenchmarkWireSize(b *testing.B) {
	c := sampleCall()
	r := &Reply{Err: "invalid device pointer", Feedback: &Feedback{Kind: "MC"}}
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += CallWireSize(c) + ReplyWireSize(r)
	}
	if sink == 0 {
		b.Fatal("unexpected zero size")
	}
}
