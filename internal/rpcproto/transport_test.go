package rpcproto

import (
	"testing"

	"repro/internal/cuda"
	"repro/internal/sim"
)

func TestConnDeliversInOrderWithLatency(t *testing.T) {
	k := sim.NewKernel(1)
	conn := NewConn(k, LinkSpec{Latency: 10}) // no bandwidth cost
	var got []uint64
	var times []sim.Time
	k.Go("backend", func(p *sim.Proc) {
		b := conn.B()
		for i := 0; i < 3; i++ {
			m := b.Recv(p).(*Call)
			got = append(got, m.Seq)
			times = append(times, p.Now())
		}
	})
	k.Go("frontend", func(p *sim.Proc) {
		a := conn.A()
		for i := 0; i < 3; i++ {
			a.Send(p, &Call{ID: cuda.CallLaunch, Seq: uint64(i)}, 0)
			p.Sleep(1)
		}
	})
	k.Run()
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("order = %v", got)
		}
	}
	if times[0] != 10 {
		t.Fatalf("first delivery at %v, want 10us", times[0])
	}
}

func TestConnBandwidthChargesSender(t *testing.T) {
	k := sim.NewKernel(1)
	conn := NewConn(k, LinkSpec{Latency: 0, Bandwidth: 100})
	var sendCost sim.Time
	k.Go("frontend", func(p *sim.Proc) {
		a := conn.A()
		t0 := p.Now()
		// 10000-byte payload at 100 B/us ≈ 100us + header.
		a.Send(p, &Call{ID: cuda.CallMemcpy, Dir: cuda.H2D, Bytes: 10000}, 10000)
		sendCost = p.Now() - t0
	})
	k.Go("backend", func(p *sim.Proc) {
		conn.B().Recv(p)
	})
	k.Run()
	if sendCost < 100 || sendCost > 105 {
		t.Fatalf("send cost = %v, want ~100us", sendCost)
	}
}

func TestConnBidirectional(t *testing.T) {
	k := sim.NewKernel(1)
	conn := NewConn(k, SharedMemLink)
	var reply *Reply
	k.Go("backend", func(p *sim.Proc) {
		b := conn.B()
		c := b.Recv(p).(*Call)
		b.Send(p, &Reply{Seq: c.Seq, Count: 4}, 0)
	})
	k.Go("frontend", func(p *sim.Proc) {
		a := conn.A()
		a.Send(p, &Call{ID: cuda.CallDeviceCount, Seq: 9}, 0)
		reply = a.Recv(p).(*Reply)
	})
	k.Run()
	if reply == nil || reply.Seq != 9 || reply.Count != 4 {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestTryRecvAndInboxLen(t *testing.T) {
	k := sim.NewKernel(1)
	conn := NewConn(k, LinkSpec{})
	k.Go("frontend", func(p *sim.Proc) {
		a := conn.A()
		if _, ok := a.TryRecv(); ok {
			t.Error("TryRecv on empty inbox succeeded")
		}
		a.Send(p, &Call{Seq: 1}, 0)
		a.Send(p, &Call{Seq: 2}, 0)
		p.Yield() // let timer deliveries land
		b := conn.B()
		if b.InboxLen() != 2 {
			t.Errorf("InboxLen = %d, want 2", b.InboxLen())
		}
		if m, ok := b.TryRecv(); !ok || m.(*Call).Seq != 1 {
			t.Errorf("TryRecv = %v, %v", m, ok)
		}
	})
	k.Run()
}

func TestLinkTransferTime(t *testing.T) {
	l := LinkSpec{Bandwidth: 125}
	if got := l.TransferTime(125000); got != 1000 {
		t.Fatalf("TransferTime = %v, want 1000us", got)
	}
	if got := (LinkSpec{}).TransferTime(1 << 30); got != 0 {
		t.Fatalf("infinite bandwidth TransferTime = %v, want 0", got)
	}
	if got := l.TransferTime(0); got != 0 {
		t.Fatalf("zero size TransferTime = %v", got)
	}
}

func TestGigESlowerThanShm(t *testing.T) {
	run := func(link LinkSpec) sim.Time {
		k := sim.NewKernel(1)
		conn := NewConn(k, link)
		var done sim.Time
		k.Go("backend", func(p *sim.Proc) {
			b := conn.B()
			c := b.Recv(p).(*Call)
			b.Send(p, &Reply{Seq: c.Seq}, 0)
		})
		k.Go("frontend", func(p *sim.Proc) {
			a := conn.A()
			a.Send(p, &Call{ID: cuda.CallMemcpy, Dir: cuda.H2D, Bytes: 1 << 20}, 1<<20)
			a.Recv(p)
			done = p.Now()
		})
		k.Run()
		return done
	}
	shm, gige := run(SharedMemLink), run(GigELink)
	if gige <= shm {
		t.Fatalf("GigE RTT %v not slower than shm RTT %v", gige, shm)
	}
	// 1 MiB at 125 B/us ≈ 8.4ms of wire time.
	if gige < 8*sim.Millisecond {
		t.Fatalf("GigE 1MiB copy cost %v, want >= 8ms", gige)
	}
}
