// Package rpcproto defines the wire protocol between the Strings frontend
// (the CUDA interposer library linked into applications) and the backend
// daemons that own the GPUs: call/reply message types, a compact binary
// codec, and transports — a virtual-time transport for simulation and a real
// framed-TCP transport demonstrating GPU remoting over an actual socket.
package rpcproto

import (
	"fmt"

	"repro/internal/cuda"
	"repro/internal/sim"
)

// Call is a marshalled CUDA runtime API invocation (the paper's "RPC packet"
// of Figure 3: call id + parameters).
type Call struct {
	ID  cuda.CallID
	Seq uint64

	// Application identity, carried on registration-relevant calls.
	AppID    int64
	TenantID int64
	Weight   int32

	// Target device: a gPool-global GID after the affinity mapper has
	// resolved the application's cudaSetDevice, a local ordinal at the
	// backend.
	Dev int32

	// Stream-addressed calls.
	Stream int32

	// Event-addressed calls (CallEvent*): Event is the handle, Event2 the
	// second handle of cudaEventElapsedTime.
	Event  int32
	Event2 int32

	// Memory operations.
	Dir     cuda.Dir
	Bytes   int64
	PtrID   int64
	PtrSize int64
	PtrDev  int32

	// Kernel launches.
	KernelName string
	Compute    float64
	MemTraffic float64
	Occupancy  float64

	// NonBlocking marks RPCs the interposer issues asynchronously (calls
	// without output parameters, per the paper's asynchrony optimization).
	NonBlocking bool
}

// Reply is the backend's response to a Call.
type Reply struct {
	Seq uint64

	// Err is the CUDA error string; empty means success.
	Err string

	// Outputs.
	PtrID   int64
	PtrSize int64
	PtrDev  int32
	Stream  int32
	Count   int32
	Event   int32
	Elapsed int64 // microseconds (cudaEventElapsedTime)

	// Feedback is piggybacked on the cudaThreadExit reply (the paper's
	// Feedback Engine path to the Scheduler Feedback Table).
	Feedback *Feedback
}

// Feedback carries the Request Monitor's per-application characteristics
// from a device-level scheduler to the GPU Affinity Mapper.
type Feedback struct {
	AppID    int64
	Kind     string   // application class name (SFT key)
	GID      int32    // device the application ran on
	ExecTime sim.Time // wall time from registration to exit
	GPUTime  sim.Time // attained GPU service
	XferTime sim.Time // time on the copy engines
	MemBW    float64  // bytes/us of device-memory traffic while on GPU
	GPUUtil  float64  // GPUTime / ExecTime
}

// Err converts a Reply error string back into an error, mapping the
// well-known CUDA error strings onto the cuda package's sentinel errors so
// errors.Is works across the RPC boundary.
func (r *Reply) AsError() error {
	if r.Err == "" {
		return nil
	}
	for _, e := range []error{
		cuda.ErrInvalidDevice, cuda.ErrMemoryAllocation, cuda.ErrInvalidValue,
		cuda.ErrInvalidPtr, cuda.ErrInvalidStream, cuda.ErrThreadExited,
		cuda.ErrNotImplemented, cuda.ErrBackendUnreachable, cuda.ErrBackendLost,
		cuda.ErrInvalidEvent, cuda.ErrNotReady,
	} {
		if r.Err == e.Error() {
			return e
		}
	}
	return fmt.Errorf("rpc: %s", r.Err)
}

// SetError stores err in the reply.
func (r *Reply) SetError(err error) {
	if err == nil {
		r.Err = ""
		return
	}
	r.Err = err.Error()
}

// PayloadBytes returns the bulk data size a call ships over the wire beyond
// the header: H2D copies carry the host buffer with the request.
func (c *Call) PayloadBytes() int64 {
	if c.ID == cuda.CallMemcpy || c.ID == cuda.CallMemcpyAsync {
		if c.Dir == cuda.H2D {
			return c.Bytes
		}
	}
	return 0
}

// ReplyPayloadBytes returns the bulk data size the reply to c carries back:
// D2H copies return the device buffer with the response.
func (c *Call) ReplyPayloadBytes() int64 {
	if c.ID == cuda.CallMemcpy && c.Dir == cuda.D2H {
		return c.Bytes
	}
	return 0
}

// String renders the call for traces.
func (c *Call) String() string {
	return fmt.Sprintf("%v{seq=%d app=%d dev=%d stream=%d}", c.ID, c.Seq, c.AppID, c.Dev, c.Stream)
}
