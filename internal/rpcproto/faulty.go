// Faulty transport: an io.ReadWriter wrapper that injects the failure modes
// a real remoting socket exhibits — dropped writes, mid-frame disconnects
// and hard connection loss — so the framing layer and the TCP backend can
// be tested against them deterministically. All randomness flows through a
// caller-threaded *rand.Rand.
package rpcproto

import (
	"io"
	"math/rand"
)

// FaultyRW wraps an io.ReadWriter and misbehaves on a seeded schedule.
// A zero probability disables the corresponding fault, so the zero value
// (plus RW and Rng) is a transparent pass-through.
type FaultyRW struct {
	RW  io.ReadWriter
	Rng *rand.Rand

	// DropProb silently swallows a Write with this probability: the caller
	// sees success, the peer sees nothing — a lost frame.
	DropProb float64

	// TruncateProb cuts a Write in half and then reports the connection
	// closed — a mid-frame disconnect. Subsequent operations fail.
	TruncateProb float64

	// CloseAfter, when positive, hard-closes the transport after that many
	// successful operations (reads + writes): every later call returns
	// io.ErrClosedPipe.
	CloseAfter int

	ops    int
	drops  int
	closed bool
}

// Drops counts frames swallowed so far.
func (f *FaultyRW) Drops() int { return f.drops }

var _ io.ReadWriter = (*FaultyRW)(nil)

// broken reports (and advances) the transport's hard-failure state.
func (f *FaultyRW) broken() bool {
	if f.closed {
		return true
	}
	if f.CloseAfter > 0 && f.ops >= f.CloseAfter {
		f.closed = true
		return true
	}
	return false
}

// Read passes through until the transport is closed.
func (f *FaultyRW) Read(p []byte) (int, error) {
	if f.broken() {
		return 0, io.ErrClosedPipe
	}
	n, err := f.RW.Read(p)
	if err == nil {
		f.ops++
	}
	return n, err
}

// Write applies the drop and truncate schedules, then passes through.
func (f *FaultyRW) Write(p []byte) (int, error) {
	if f.broken() {
		return 0, io.ErrClosedPipe
	}
	if f.DropProb > 0 && f.Rng.Float64() < f.DropProb {
		f.drops++
		f.ops++
		return len(p), nil // swallowed: caller believes the frame went out
	}
	if f.TruncateProb > 0 && f.Rng.Float64() < f.TruncateProb {
		f.closed = true
		n := len(p) / 2
		if n > 0 {
			if wn, err := f.RW.Write(p[:n]); err != nil {
				return wn, err
			}
		}
		return n, io.ErrClosedPipe
	}
	n, err := f.RW.Write(p)
	if err == nil {
		f.ops++
	}
	return n, err
}
