package rpcproto

import (
	"bytes"
	"errors"
	"net"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cuda"
	"repro/internal/sim"
)

func sampleCall() *Call {
	return &Call{
		ID: cuda.CallLaunch, Seq: 42, AppID: 7, TenantID: 3, Weight: 80,
		Dev: 2, Stream: 5, Dir: cuda.D2H, Bytes: 1 << 20,
		PtrID: 99, PtrSize: 4096, PtrDev: 1,
		KernelName: "monte_carlo", Compute: 1.5e9, MemTraffic: 2.25e8,
		Occupancy: 0.75, NonBlocking: true,
	}
}

func mustEncodeCall(t testing.TB, c *Call) []byte {
	t.Helper()
	frame, err := EncodeCall(c)
	if err != nil {
		t.Fatalf("EncodeCall: %v", err)
	}
	return frame
}

func mustEncodeReply(t testing.TB, r *Reply) []byte {
	t.Helper()
	frame, err := EncodeReply(r)
	if err != nil {
		t.Fatalf("EncodeReply: %v", err)
	}
	return frame
}

func TestCallRoundTrip(t *testing.T) {
	c := sampleCall()
	frame := mustEncodeCall(t, c)
	got, err := Decode(frame[4:])
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestReplyRoundTripWithFeedback(t *testing.T) {
	r := &Reply{
		Seq: 42, Err: "cuda: out of memory", PtrID: 1, PtrSize: 2, PtrDev: 3,
		Stream: 4, Count: 5,
		Feedback: &Feedback{
			AppID: 7, Kind: "MC", GID: 2,
			ExecTime: 33 * sim.Second, GPUTime: 11 * sim.Second,
			XferTime: 3 * sim.Second, MemBW: 3047.32, GPUUtil: 0.45,
		},
	}
	frame := mustEncodeReply(t, r)
	got, err := Decode(frame[4:])
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestReplyRoundTripWithoutFeedback(t *testing.T) {
	r := &Reply{Seq: 1}
	got, err := Decode(mustEncodeReply(t, r)[4:])
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.(*Reply).Feedback != nil {
		t.Fatal("phantom feedback after round trip")
	}
}

func TestDecodeCorruptFrames(t *testing.T) {
	if _, err := Decode([]byte{}); err == nil {
		t.Fatal("empty frame decoded")
	}
	if _, err := Decode([]byte{9, 1, 2}); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("unknown kind err = %v", err)
	}
	frame := mustEncodeCall(t, sampleCall())
	if _, err := Decode(frame[4 : len(frame)-3]); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("truncated frame err = %v", err)
	}
}

func TestReplyErrorMapping(t *testing.T) {
	r := &Reply{}
	r.SetError(cuda.ErrMemoryAllocation)
	back, err := Decode(mustEncodeReply(t, r)[4:])
	if err != nil {
		t.Fatal(err)
	}
	if got := back.(*Reply).AsError(); !errors.Is(got, cuda.ErrMemoryAllocation) {
		t.Fatalf("AsError = %v, want ErrMemoryAllocation", got)
	}
	r.SetError(nil)
	if r.AsError() != nil {
		t.Fatal("nil error round trip failed")
	}
	r.Err = "something else"
	if r.AsError() == nil {
		t.Fatal("unknown error string became nil")
	}
}

func TestPayloadBytes(t *testing.T) {
	c := &Call{ID: cuda.CallMemcpy, Dir: cuda.H2D, Bytes: 1000}
	if c.PayloadBytes() != 1000 || c.ReplyPayloadBytes() != 0 {
		t.Fatal("H2D memcpy payload accounting wrong")
	}
	c.Dir = cuda.D2H
	if c.PayloadBytes() != 0 || c.ReplyPayloadBytes() != 1000 {
		t.Fatal("D2H memcpy payload accounting wrong")
	}
	c = &Call{ID: cuda.CallLaunch, Bytes: 5}
	if c.PayloadBytes() != 0 || c.ReplyPayloadBytes() != 0 {
		t.Fatal("launch should carry no bulk payload")
	}
	ac := &Call{ID: cuda.CallMemcpyAsync, Dir: cuda.H2D, Bytes: 77}
	if ac.PayloadBytes() != 77 {
		t.Fatal("async H2D payload accounting wrong")
	}
}

func TestWriteReadFrame(t *testing.T) {
	var buf bytes.Buffer
	frame := mustEncodeCall(t, sampleCall())
	if err := WriteFrame(&buf, frame); err != nil {
		t.Fatal(err)
	}
	body, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleCall()) {
		t.Fatal("frame round trip mismatch")
	}
}

func TestReadFrameRejectsBadLength(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("zero-length err = %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{255, 255, 255, 255})); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("huge-length err = %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan *Call, 1)
	go func() {
		body, err := ReadFrame(b)
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		m, err := Decode(body)
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- m.(*Call)
	}()
	if err := WriteFrame(a, mustEncodeCall(t, sampleCall())); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got == nil || !reflect.DeepEqual(got, sampleCall()) {
		t.Fatal("TCP round trip mismatch")
	}
}

// Property: any call round-trips exactly through the codec.
func TestQuickCallRoundTrip(t *testing.T) {
	f := func(id uint8, seq uint64, app, tenant int64, w, dev, stream int32,
		dir bool, bytes1, ptrID, ptrSize int64, name string,
		comp, mem, occ float64, nb bool) bool {
		c := &Call{
			ID: cuda.CallID(id%12) + 1, Seq: seq, AppID: app, TenantID: tenant,
			Weight: w, Dev: dev, Stream: stream, Dir: cuda.Dir(0),
			Bytes: bytes1, PtrID: ptrID, PtrSize: ptrSize,
			KernelName: name, Compute: comp, MemTraffic: mem, Occupancy: occ,
			NonBlocking: nb,
		}
		if dir {
			c.Dir = cuda.D2H
		}
		frame, err := EncodeCall(c)
		if err != nil {
			return len(name) > 65535 // only oversized strings may fail
		}
		if len(frame) != CallWireSize(c) {
			return false
		}
		got, err := Decode(frame[4:])
		return err == nil && reflect.DeepEqual(got, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: any reply round-trips exactly, with and without feedback.
func TestQuickReplyRoundTrip(t *testing.T) {
	f := func(seq uint64, errs string, ptr int64, stream, count int32,
		withFB bool, app int64, kind string, exec, gput int64, bw, util float64) bool {
		r := &Reply{Seq: seq, Err: errs, PtrID: ptr, Stream: stream, Count: count}
		if withFB {
			r.Feedback = &Feedback{
				AppID: app, Kind: kind,
				ExecTime: sim.Time(exec), GPUTime: sim.Time(gput),
				MemBW: bw, GPUUtil: util,
			}
		}
		frame, err := EncodeReply(r)
		if err != nil {
			return len(errs) > 65535 || len(kind) > 65535
		}
		if len(frame) != ReplyWireSize(r) {
			return false
		}
		got, err := Decode(frame[4:])
		return err == nil && reflect.DeepEqual(got, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
