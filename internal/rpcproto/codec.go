package rpcproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/cuda"
	"repro/internal/sim"
)

// Wire format: every message is a frame of
//
//	uint32 length | uint8 kind | body
//
// with little-endian integers, float64 as IEEE bits, strings as uint16
// length-prefixed UTF-8 and booleans as single bytes. The body layouts are
// fixed field orders defined by the encode functions below.

// Frame kinds.
const (
	frameCall  = 1
	frameReply = 2
)

// ErrCorruptFrame reports an undecodable message.
var ErrCorruptFrame = errors.New("rpcproto: corrupt frame")

// maxFrame guards against absurd length prefixes from a broken peer.
const maxFrame = 64 << 20

type wbuf struct{ b []byte }

func (w *wbuf) u8(v uint8)    { w.b = append(w.b, v) }
func (w *wbuf) u16(v uint16)  { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *wbuf) u32(v uint32)  { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64)  { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) i32(v int32)   { w.u32(uint32(v)) }
func (w *wbuf) i64(v int64)   { w.u64(uint64(v)) }
func (w *wbuf) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *wbuf) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *wbuf) str(s string) {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	w.u16(uint16(len(s)))
	w.b = append(w.b, s...)
}

type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) need(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = ErrCorruptFrame
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}
func (r *rbuf) u8() uint8 {
	s := r.need(1)
	if s == nil {
		return 0
	}
	return s[0]
}
func (r *rbuf) u16() uint16 {
	s := r.need(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}
func (r *rbuf) u32() uint32 {
	s := r.need(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}
func (r *rbuf) u64() uint64 {
	s := r.need(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}
func (r *rbuf) i32() int32    { return int32(r.u32()) }
func (r *rbuf) i64() int64    { return int64(r.u64()) }
func (r *rbuf) f64() float64  { return math.Float64frombits(r.u64()) }
func (r *rbuf) boolean() bool { return r.u8() != 0 }
func (r *rbuf) str() string {
	n := int(r.u16())
	s := r.need(n)
	if s == nil {
		return ""
	}
	return string(s)
}

// EncodeCall serializes c into a framed message.
func EncodeCall(c *Call) []byte {
	w := &wbuf{b: make([]byte, 4, 96+len(c.KernelName))}
	w.u8(frameCall)
	w.u32(uint32(c.ID))
	w.u64(c.Seq)
	w.i64(c.AppID)
	w.i64(c.TenantID)
	w.i32(c.Weight)
	w.i32(c.Dev)
	w.i32(c.Stream)
	w.u8(uint8(c.Dir))
	w.i64(c.Bytes)
	w.i64(c.PtrID)
	w.i64(c.PtrSize)
	w.i32(c.PtrDev)
	w.str(c.KernelName)
	w.f64(c.Compute)
	w.f64(c.MemTraffic)
	w.f64(c.Occupancy)
	w.boolean(c.NonBlocking)
	w.i32(c.Event)
	w.i32(c.Event2)
	binary.LittleEndian.PutUint32(w.b[:4], uint32(len(w.b)-4))
	return w.b
}

// EncodeReply serializes r into a framed message.
func EncodeReply(r *Reply) []byte {
	w := &wbuf{b: make([]byte, 4, 96+len(r.Err))}
	w.u8(frameReply)
	w.u64(r.Seq)
	w.str(r.Err)
	w.i64(r.PtrID)
	w.i64(r.PtrSize)
	w.i32(r.PtrDev)
	w.i32(r.Stream)
	w.i32(r.Count)
	w.i32(r.Event)
	w.i64(r.Elapsed)
	w.boolean(r.Feedback != nil)
	if f := r.Feedback; f != nil {
		w.i64(f.AppID)
		w.str(f.Kind)
		w.i32(f.GID)
		w.i64(int64(f.ExecTime))
		w.i64(int64(f.GPUTime))
		w.i64(int64(f.XferTime))
		w.f64(f.MemBW)
		w.f64(f.GPUUtil)
	}
	binary.LittleEndian.PutUint32(w.b[:4], uint32(len(w.b)-4))
	return w.b
}

// Decode parses one framed message (without the length prefix) into a *Call
// or *Reply.
func Decode(body []byte) (interface{}, error) {
	r := &rbuf{b: body}
	switch kind := r.u8(); kind {
	case frameCall:
		c := &Call{}
		c.ID = cuda.CallID(r.u32())
		c.Seq = r.u64()
		c.AppID = r.i64()
		c.TenantID = r.i64()
		c.Weight = r.i32()
		c.Dev = r.i32()
		c.Stream = r.i32()
		c.Dir = cuda.Dir(r.u8())
		c.Bytes = r.i64()
		c.PtrID = r.i64()
		c.PtrSize = r.i64()
		c.PtrDev = r.i32()
		c.KernelName = r.str()
		c.Compute = r.f64()
		c.MemTraffic = r.f64()
		c.Occupancy = r.f64()
		c.NonBlocking = r.boolean()
		c.Event = r.i32()
		c.Event2 = r.i32()
		if r.err != nil {
			return nil, r.err
		}
		return c, nil
	case frameReply:
		rp := &Reply{}
		rp.Seq = r.u64()
		rp.Err = r.str()
		rp.PtrID = r.i64()
		rp.PtrSize = r.i64()
		rp.PtrDev = r.i32()
		rp.Stream = r.i32()
		rp.Count = r.i32()
		rp.Event = r.i32()
		rp.Elapsed = r.i64()
		if r.boolean() {
			f := &Feedback{}
			f.AppID = r.i64()
			f.Kind = r.str()
			f.GID = r.i32()
			f.ExecTime = sim.Time(r.i64())
			f.GPUTime = sim.Time(r.i64())
			f.XferTime = sim.Time(r.i64())
			f.MemBW = r.f64()
			f.GPUUtil = r.f64()
			rp.Feedback = f
		}
		if r.err != nil {
			return nil, r.err
		}
		return rp, nil
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorruptFrame, kind)
	}
}

// WriteFrame writes one already-encoded frame to w.
func WriteFrame(w io.Writer, frame []byte) error {
	_, err := w.Write(frame)
	return err
}

// ReadFrame reads one frame body (without length prefix) from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("%w: frame length %d", ErrCorruptFrame, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}
