package rpcproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/cuda"
	"repro/internal/sim"
)

// Wire format: every message is a frame of
//
//	uint32 length | uint8 kind | body
//
// with little-endian integers, float64 as IEEE bits, strings as uint16
// length-prefixed UTF-8 and booleans as single bytes. The body layouts are
// fixed field orders defined by the encode functions below.

// Frame kinds.
const (
	frameCall  = 1
	frameReply = 2
)

// ErrCorruptFrame reports an undecodable message.
var ErrCorruptFrame = errors.New("rpcproto: corrupt frame")

// ErrStringTooLong reports a string field exceeding the uint16 wire length
// prefix. Encoding fails loudly instead of silently truncating the kernel
// name on the wire.
var ErrStringTooLong = errors.New("rpcproto: string exceeds 64 KiB wire limit")

// maxFrame guards against absurd length prefixes from a broken peer.
const maxFrame = 64 << 20

type wbuf struct {
	b   []byte
	err error
}

func (w *wbuf) u8(v uint8)    { w.b = append(w.b, v) }
func (w *wbuf) u16(v uint16)  { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *wbuf) u32(v uint32)  { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64)  { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) i32(v int32)   { w.u32(uint32(v)) }
func (w *wbuf) i64(v int64)   { w.u64(uint64(v)) }
func (w *wbuf) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *wbuf) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *wbuf) str(s string) {
	if len(s) > math.MaxUint16 {
		if w.err == nil {
			w.err = fmt.Errorf("%w (%d bytes)", ErrStringTooLong, len(s))
		}
		w.u16(0)
		return
	}
	w.u16(uint16(len(s)))
	w.b = append(w.b, s...)
}

type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) need(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = ErrCorruptFrame
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}
func (r *rbuf) u8() uint8 {
	s := r.need(1)
	if s == nil {
		return 0
	}
	return s[0]
}
func (r *rbuf) u16() uint16 {
	s := r.need(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}
func (r *rbuf) u32() uint32 {
	s := r.need(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}
func (r *rbuf) u64() uint64 {
	s := r.need(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}
func (r *rbuf) i32() int32    { return int32(r.u32()) }
func (r *rbuf) i64() int64    { return int64(r.u64()) }
func (r *rbuf) f64() float64  { return math.Float64frombits(r.u64()) }
func (r *rbuf) boolean() bool { return r.u8() != 0 }
func (r *rbuf) str(names *Interner) string {
	n := int(r.u16())
	s := r.need(n)
	if len(s) == 0 {
		return ""
	}
	if names != nil {
		return names.Intern(s)
	}
	return string(s)
}

// Interner deduplicates decoded strings. Kernel names and error strings come
// from small fixed sets, so a decoder that interns them allocates nothing in
// steady state (the map lookup keyed by a []byte conversion does not copy).
// An Interner is not safe for concurrent use; give each decoder its own.
type Interner struct{ m map[string]string }

// Intern returns the canonical string equal to b, copying it only the first
// time a value is seen.
func (t *Interner) Intern(b []byte) string {
	if s, ok := t.m[string(b)]; ok {
		return s
	}
	if t.m == nil {
		t.m = make(map[string]string)
	}
	s := string(b)
	t.m[s] = s
	return s
}

// CallWireSize returns the exact encoded frame length of c (length prefix
// included) without encoding. The simulated transport charges link costs by
// this size on every message, so it must not allocate.
func CallWireSize(c *Call) int { return 109 + len(c.KernelName) }

// ReplyWireSize is CallWireSize for replies.
func ReplyWireSize(r *Reply) int {
	n := 56 + len(r.Err)
	if r.Feedback != nil {
		n += 54 + len(r.Feedback.Kind)
	}
	return n
}

// AppendCall appends c's framed encoding to dst and returns the extended
// buffer. With sufficient capacity in dst it does not allocate.
func AppendCall(dst []byte, c *Call) ([]byte, error) {
	start := len(dst)
	w := &wbuf{b: append(dst, 0, 0, 0, 0)}
	w.u8(frameCall)
	w.u32(uint32(c.ID))
	w.u64(c.Seq)
	w.i64(c.AppID)
	w.i64(c.TenantID)
	w.i32(c.Weight)
	w.i32(c.Dev)
	w.i32(c.Stream)
	w.u8(uint8(c.Dir))
	w.i64(c.Bytes)
	w.i64(c.PtrID)
	w.i64(c.PtrSize)
	w.i32(c.PtrDev)
	w.str(c.KernelName)
	w.f64(c.Compute)
	w.f64(c.MemTraffic)
	w.f64(c.Occupancy)
	w.boolean(c.NonBlocking)
	w.i32(c.Event)
	w.i32(c.Event2)
	if w.err != nil {
		return dst, w.err
	}
	binary.LittleEndian.PutUint32(w.b[start:start+4], uint32(len(w.b)-start-4))
	return w.b, nil
}

// AppendReply appends r's framed encoding to dst and returns the extended
// buffer. With sufficient capacity in dst it does not allocate.
func AppendReply(dst []byte, r *Reply) ([]byte, error) {
	start := len(dst)
	w := &wbuf{b: append(dst, 0, 0, 0, 0)}
	w.u8(frameReply)
	w.u64(r.Seq)
	w.str(r.Err)
	w.i64(r.PtrID)
	w.i64(r.PtrSize)
	w.i32(r.PtrDev)
	w.i32(r.Stream)
	w.i32(r.Count)
	w.i32(r.Event)
	w.i64(r.Elapsed)
	w.boolean(r.Feedback != nil)
	if f := r.Feedback; f != nil {
		w.i64(f.AppID)
		w.str(f.Kind)
		w.i32(f.GID)
		w.i64(int64(f.ExecTime))
		w.i64(int64(f.GPUTime))
		w.i64(int64(f.XferTime))
		w.f64(f.MemBW)
		w.f64(f.GPUUtil)
	}
	if w.err != nil {
		return dst, w.err
	}
	binary.LittleEndian.PutUint32(w.b[start:start+4], uint32(len(w.b)-start-4))
	return w.b, nil
}

// EncodeCall serializes c into a freshly allocated framed message.
func EncodeCall(c *Call) ([]byte, error) {
	return AppendCall(make([]byte, 0, CallWireSize(c)), c)
}

// EncodeReply serializes r into a freshly allocated framed message.
func EncodeReply(r *Reply) ([]byte, error) {
	return AppendReply(make([]byte, 0, ReplyWireSize(r)), r)
}

// DecodeCallInto parses a frameCall body (without the length prefix) into c,
// overwriting every field. names may be nil; with an Interner, steady-state
// decoding does not allocate.
func DecodeCallInto(c *Call, body []byte, names *Interner) error {
	r := &rbuf{b: body}
	if kind := r.u8(); kind != frameCall {
		return fmt.Errorf("%w: kind %d, want call", ErrCorruptFrame, kind)
	}
	c.ID = cuda.CallID(r.u32())
	c.Seq = r.u64()
	c.AppID = r.i64()
	c.TenantID = r.i64()
	c.Weight = r.i32()
	c.Dev = r.i32()
	c.Stream = r.i32()
	c.Dir = cuda.Dir(r.u8())
	c.Bytes = r.i64()
	c.PtrID = r.i64()
	c.PtrSize = r.i64()
	c.PtrDev = r.i32()
	c.KernelName = r.str(names)
	c.Compute = r.f64()
	c.MemTraffic = r.f64()
	c.Occupancy = r.f64()
	c.NonBlocking = r.boolean()
	c.Event = r.i32()
	c.Event2 = r.i32()
	return r.err
}

// DecodeReplyInto parses a frameReply body (without the length prefix) into
// rp, overwriting every field. A reused rp's Feedback struct is recycled when
// the frame carries feedback and cleared when it does not.
func DecodeReplyInto(rp *Reply, body []byte, names *Interner) error {
	r := &rbuf{b: body}
	if kind := r.u8(); kind != frameReply {
		return fmt.Errorf("%w: kind %d, want reply", ErrCorruptFrame, kind)
	}
	rp.Seq = r.u64()
	rp.Err = r.str(names)
	rp.PtrID = r.i64()
	rp.PtrSize = r.i64()
	rp.PtrDev = r.i32()
	rp.Stream = r.i32()
	rp.Count = r.i32()
	rp.Event = r.i32()
	rp.Elapsed = r.i64()
	if r.boolean() {
		f := rp.Feedback
		if f == nil {
			f = &Feedback{}
			rp.Feedback = f
		}
		f.AppID = r.i64()
		f.Kind = r.str(names)
		f.GID = r.i32()
		f.ExecTime = sim.Time(r.i64())
		f.GPUTime = sim.Time(r.i64())
		f.XferTime = sim.Time(r.i64())
		f.MemBW = r.f64()
		f.GPUUtil = r.f64()
	} else {
		rp.Feedback = nil
	}
	return r.err
}

// Decode parses one framed message (without the length prefix) into a *Call
// or *Reply.
func Decode(body []byte) (interface{}, error) {
	if len(body) == 0 {
		return nil, ErrCorruptFrame
	}
	switch kind := body[0]; kind {
	case frameCall:
		c := &Call{}
		if err := DecodeCallInto(c, body, nil); err != nil {
			return nil, err
		}
		return c, nil
	case frameReply:
		rp := &Reply{}
		if err := DecodeReplyInto(rp, body, nil); err != nil {
			return nil, err
		}
		return rp, nil
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorruptFrame, kind)
	}
}

// WriteFrame writes one already-encoded frame to w.
func WriteFrame(w io.Writer, frame []byte) error {
	_, err := w.Write(frame)
	return err
}

// ReadFrame reads one frame body (without length prefix) from r into a fresh
// buffer. Steady-state readers should use FrameReader, which reuses its
// buffer across frames.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("%w: frame length %d", ErrCorruptFrame, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// bufPool recycles frame buffers across FrameReader/FrameWriter lifetimes so
// per-connection sessions (one remoting session per accepted conn) reuse
// steady-state buffers instead of regrowing them.
var bufPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 512)
		return &b
	},
}

// FrameWriter writes framed messages to an io.Writer through a reusable,
// pool-backed encode buffer: steady-state writes perform zero allocations.
type FrameWriter struct {
	w   io.Writer
	buf *[]byte
}

// NewFrameWriter returns a writer over w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w, buf: bufPool.Get().(*[]byte)}
}

// WriteCall encodes and writes one call frame.
func (fw *FrameWriter) WriteCall(c *Call) error {
	b, err := AppendCall((*fw.buf)[:0], c)
	*fw.buf = b[:0]
	if err != nil {
		return err
	}
	_, err = fw.w.Write(b)
	return err
}

// WriteReply encodes and writes one reply frame.
func (fw *FrameWriter) WriteReply(r *Reply) error {
	b, err := AppendReply((*fw.buf)[:0], r)
	*fw.buf = b[:0]
	if err != nil {
		return err
	}
	_, err = fw.w.Write(b)
	return err
}

// Close returns the encode buffer to the pool. The writer must not be used
// afterwards.
func (fw *FrameWriter) Close() {
	if fw.buf != nil {
		bufPool.Put(fw.buf)
		fw.buf = nil
	}
}

// FrameReader reads framed messages from an io.Reader through a reusable,
// pool-backed body buffer. The slice returned by Next is valid only until
// the following Next call.
type FrameReader struct {
	r     io.Reader
	buf   *[]byte
	hdr   [4]byte
	Names Interner // shared string table for DecodeCallInto/DecodeReplyInto
}

// NewFrameReader returns a reader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r, buf: bufPool.Get().(*[]byte)}
}

// Next reads one frame body (without the length prefix) into the reader's
// buffer and returns it. Steady-state reads perform zero allocations.
func (fr *FrameReader) Next() ([]byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(fr.hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("%w: frame length %d", ErrCorruptFrame, n)
	}
	if cap(*fr.buf) < int(n) {
		*fr.buf = make([]byte, n)
	}
	body := (*fr.buf)[:n]
	if _, err := io.ReadFull(fr.r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// Close returns the body buffer to the pool. The reader must not be used
// afterwards, and slices returned by Next become invalid.
func (fr *FrameReader) Close() {
	if fr.buf != nil {
		bufPool.Put(fr.buf)
		fr.buf = nil
	}
}
