package rpcproto

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/cuda"
	"repro/internal/sim"
)

// FuzzDecode hammers the frame decoder with arbitrary bytes: it must never
// panic, and whatever it accepts must re-encode to an identical decode
// (decode/encode/decode is a fixed point).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{frameCall})
	f.Add([]byte{frameReply})
	sampleFrame, _ := EncodeCall(sampleCall())
	errFrame, _ := EncodeReply(&Reply{Seq: 9, Err: "cuda: out of memory"})
	f.Add(sampleFrame[4:])
	f.Add(errFrame[4:])
	f.Add([]byte{frameCall, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, body []byte) {
		msg, err := Decode(body)
		if err != nil {
			return
		}
		var reenc []byte
		switch v := msg.(type) {
		case *Call:
			reenc, err = EncodeCall(v)
		case *Reply:
			reenc, err = EncodeReply(v)
		default:
			t.Fatalf("unexpected decode type %T", msg)
		}
		if err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		again, err := Decode(reenc[4:])
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		reenc2 := append([]byte(nil), reenc...)
		switch v := again.(type) {
		case *Call:
			reenc2, _ = EncodeCall(v)
		case *Reply:
			reenc2, _ = EncodeReply(v)
		}
		if !bytes.Equal(reenc, reenc2) {
			t.Fatal("encode/decode is not a fixed point")
		}
	})
}

// FuzzCallRoundTrip builds a Call from arbitrary field values and checks
// that AppendCall → DecodeCallInto is the identity on every field, and that
// re-encoding the decoded call reproduces the wire bytes exactly. Floats are
// compared by their IEEE bit patterns so NaN payloads must survive the trip
// too (the wire format stores raw Float64bits).
func FuzzCallRoundTrip(f *testing.F) {
	s := sampleCall()
	f.Add(uint32(s.ID), s.Seq, s.AppID, s.TenantID, s.Weight, s.Dev, s.Stream,
		uint8(s.Dir), s.Bytes, s.PtrID, s.PtrSize, s.PtrDev, s.KernelName,
		s.Compute, s.MemTraffic, s.Occupancy, s.NonBlocking, s.Event, s.Event2)
	f.Add(uint32(0), uint64(0), int64(0), int64(0), int32(0), int32(0), int32(0),
		uint8(0), int64(0), int64(0), int64(0), int32(0), "",
		0.0, math.NaN(), math.Inf(-1), false, int32(-1), int32(-1))
	f.Fuzz(func(t *testing.T, id uint32, seq uint64, appID, tenantID int64,
		weight, dev, stream int32, dir uint8, nbytes, ptrID, ptrSize int64,
		ptrDev int32, kernel string, compute, memTraffic, occupancy float64,
		nonBlocking bool, event, event2 int32) {
		in := &Call{
			ID: cuda.CallID(id), Seq: seq, AppID: appID, TenantID: tenantID,
			Weight: weight, Dev: dev, Stream: stream, Dir: cuda.Dir(dir),
			Bytes: nbytes, PtrID: ptrID, PtrSize: ptrSize, PtrDev: ptrDev,
			KernelName: kernel, Compute: compute, MemTraffic: memTraffic,
			Occupancy: occupancy, NonBlocking: nonBlocking,
			Event: event, Event2: event2,
		}
		wire, err := AppendCall(nil, in)
		if err != nil {
			if len(kernel) > math.MaxUint16 {
				return // oversized strings refuse to encode, by design
			}
			t.Fatalf("AppendCall: %v", err)
		}
		var out Call
		if err := DecodeCallInto(&out, wire[4:], nil); err != nil {
			t.Fatalf("DecodeCallInto: %v", err)
		}
		// reflect.DeepEqual is false for NaN, so compare floats by bits and
		// everything else by normal equality.
		if out.ID != in.ID || out.Seq != in.Seq || out.AppID != in.AppID ||
			out.TenantID != in.TenantID || out.Weight != in.Weight ||
			out.Dev != in.Dev || out.Stream != in.Stream || out.Dir != in.Dir ||
			out.Bytes != in.Bytes || out.PtrID != in.PtrID ||
			out.PtrSize != in.PtrSize || out.PtrDev != in.PtrDev ||
			out.KernelName != in.KernelName ||
			out.NonBlocking != in.NonBlocking ||
			out.Event != in.Event || out.Event2 != in.Event2 {
			t.Fatalf("round trip changed a field:\n in %+v\nout %+v", in, out)
		}
		for _, p := range [][2]float64{
			{in.Compute, out.Compute},
			{in.MemTraffic, out.MemTraffic},
			{in.Occupancy, out.Occupancy},
		} {
			if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
				t.Fatalf("float bits changed: %x -> %x",
					math.Float64bits(p[0]), math.Float64bits(p[1]))
			}
		}
		wire2, err := AppendCall(nil, &out)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(wire, wire2) {
			t.Fatal("re-encode of decoded call is not byte-identical")
		}
	})
}

// FuzzReplyRoundTrip does the same for replies, including the optional
// scheduling-feedback block.
func FuzzReplyRoundTrip(f *testing.F) {
	f.Add(uint64(9), "cuda: out of memory", int64(0), int64(0), int32(0),
		int32(0), int32(0), int32(0), int64(0),
		false, int64(0), "", int32(0), int64(0), int64(0), int64(0), 0.0, 0.0)
	f.Add(uint64(1), "", int64(7), int64(4096), int32(1),
		int32(5), int32(2), int32(3), int64(1234),
		true, int64(7), "MC", int32(1), int64(10), int64(20), int64(30), 0.5, 0.9)
	f.Fuzz(func(t *testing.T, seq uint64, errStr string,
		ptrID, ptrSize int64, ptrDev, stream, count, event int32, elapsed int64,
		hasFB bool, fbApp int64, fbKind string, fbGID int32,
		fbExec, fbGPU, fbXfer int64, fbBW, fbUtil float64) {
		in := &Reply{
			Seq: seq, Err: errStr, PtrID: ptrID, PtrSize: ptrSize,
			PtrDev: ptrDev, Stream: stream, Count: count, Event: event,
			Elapsed: elapsed,
		}
		if hasFB {
			in.Feedback = &Feedback{
				AppID: fbApp, Kind: fbKind, GID: fbGID,
				ExecTime: sim.Time(fbExec), GPUTime: sim.Time(fbGPU),
				XferTime: sim.Time(fbXfer), MemBW: fbBW, GPUUtil: fbUtil,
			}
		}
		wire, err := AppendReply(nil, in)
		if err != nil {
			if len(errStr) > math.MaxUint16 || len(fbKind) > math.MaxUint16 {
				return
			}
			t.Fatalf("AppendReply: %v", err)
		}
		var out Reply
		if err := DecodeReplyInto(&out, wire[4:], nil); err != nil {
			t.Fatalf("DecodeReplyInto: %v", err)
		}
		wire2, err := AppendReply(nil, &out)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(wire, wire2) {
			t.Fatal("re-encode of decoded reply is not byte-identical")
		}
		if (out.Feedback != nil) != hasFB {
			t.Fatalf("feedback presence changed: want %v", hasFB)
		}
		if hasFB && math.Float64bits(out.Feedback.MemBW) != math.Float64bits(fbBW) {
			t.Fatal("feedback float bits changed")
		}
	})
}

// FuzzReadFrame feeds arbitrary byte streams through the framing layer.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	seed, _ := EncodeCall(sampleCall())
	f.Add(seed)
	f.Add([]byte{1, 0, 0, 0, frameCall})
	f.Fuzz(func(t *testing.T, stream []byte) {
		body, err := ReadFrame(bytes.NewReader(stream))
		if err != nil {
			return
		}
		if len(body) == 0 || len(body) > maxFrame {
			t.Fatalf("accepted frame of %d bytes", len(body))
		}
	})
}
