package rpcproto

import (
	"bytes"
	"testing"
)

// FuzzDecode hammers the frame decoder with arbitrary bytes: it must never
// panic, and whatever it accepts must re-encode to an identical decode
// (decode/encode/decode is a fixed point).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{frameCall})
	f.Add([]byte{frameReply})
	sampleFrame, _ := EncodeCall(sampleCall())
	errFrame, _ := EncodeReply(&Reply{Seq: 9, Err: "cuda: out of memory"})
	f.Add(sampleFrame[4:])
	f.Add(errFrame[4:])
	f.Add([]byte{frameCall, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, body []byte) {
		msg, err := Decode(body)
		if err != nil {
			return
		}
		var reenc []byte
		switch v := msg.(type) {
		case *Call:
			reenc, err = EncodeCall(v)
		case *Reply:
			reenc, err = EncodeReply(v)
		default:
			t.Fatalf("unexpected decode type %T", msg)
		}
		if err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		again, err := Decode(reenc[4:])
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		reenc2 := append([]byte(nil), reenc...)
		switch v := again.(type) {
		case *Call:
			reenc2, _ = EncodeCall(v)
		case *Reply:
			reenc2, _ = EncodeReply(v)
		}
		if !bytes.Equal(reenc, reenc2) {
			t.Fatal("encode/decode is not a fixed point")
		}
	})
}

// FuzzReadFrame feeds arbitrary byte streams through the framing layer.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	seed, _ := EncodeCall(sampleCall())
	f.Add(seed)
	f.Add([]byte{1, 0, 0, 0, frameCall})
	f.Fuzz(func(t *testing.T, stream []byte) {
		body, err := ReadFrame(bytes.NewReader(stream))
		if err != nil {
			return
		}
		if len(body) == 0 || len(body) > maxFrame {
			t.Fatalf("accepted frame of %d bytes", len(body))
		}
	})
}
