package rpcproto

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"repro/internal/cuda"
)

// pipeBuf is the in-memory peer of a FaultyRW: writes land in a buffer the
// test reads back as the "wire".
type pipeBuf struct{ bytes.Buffer }

func testCall(seq uint64) *Call {
	return &Call{ID: cuda.CallMalloc, Seq: seq, Bytes: 4096}
}

func TestFaultyRWPassThrough(t *testing.T) {
	var wire pipeBuf
	f := &FaultyRW{RW: &wire, Rng: rand.New(rand.NewSource(1))}
	fw := NewFrameWriter(f)
	defer fw.Close()
	if err := fw.WriteCall(testCall(7)); err != nil {
		t.Fatalf("WriteCall: %v", err)
	}
	fr := NewFrameReader(f)
	defer fr.Close()
	body, err := fr.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	msg, err := Decode(body)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if c := msg.(*Call); c.Seq != 7 || c.ID != cuda.CallMalloc {
		t.Fatalf("round-tripped call = %+v", c)
	}
	if f.Drops() != 0 {
		t.Fatalf("pass-through dropped %d frames", f.Drops())
	}
}

func TestFaultyRWDropSwallowsFrames(t *testing.T) {
	var wire pipeBuf
	f := &FaultyRW{RW: &wire, Rng: rand.New(rand.NewSource(1)), DropProb: 1}
	fw := NewFrameWriter(f)
	defer fw.Close()
	for seq := uint64(1); seq <= 3; seq++ {
		if err := fw.WriteCall(testCall(seq)); err != nil {
			t.Fatalf("dropped write %d surfaced error %v", seq, err)
		}
	}
	if f.Drops() != 3 {
		t.Fatalf("Drops = %d, want 3", f.Drops())
	}
	if wire.Len() != 0 {
		t.Fatalf("%d bytes reached the wire despite DropProb=1", wire.Len())
	}
}

func TestFaultyRWTruncateIsMidFrameDisconnect(t *testing.T) {
	var wire pipeBuf
	f := &FaultyRW{RW: &wire, Rng: rand.New(rand.NewSource(1)), TruncateProb: 1}
	fw := NewFrameWriter(f)
	defer fw.Close()
	if err := fw.WriteCall(testCall(1)); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("truncated write error = %v, want ErrClosedPipe", err)
	}
	if wire.Len() == 0 {
		t.Fatal("truncate wrote nothing: a mid-frame disconnect leaves partial bytes")
	}
	// The half-frame on the wire must fail to parse as a full frame —
	// the reader sees an unexpected EOF, not a corrupt success.
	fr := NewFrameReader(&wire)
	defer fr.Close()
	if _, err := fr.Next(); err == nil {
		t.Fatal("reading a truncated frame succeeded")
	}
	// The transport is hard-closed afterwards.
	if _, err := f.Write([]byte{1}); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("post-truncate write error = %v", err)
	}
	if _, err := f.Read(make([]byte, 1)); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("post-truncate read error = %v", err)
	}
}

func TestFaultyRWCloseAfterBudget(t *testing.T) {
	var wire pipeBuf
	f := &FaultyRW{RW: &wire, Rng: rand.New(rand.NewSource(1)), CloseAfter: 2}
	if _, err := f.Write([]byte("ab")); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if _, err := f.Write([]byte("cd")); err != nil {
		t.Fatalf("op 2: %v", err)
	}
	if _, err := f.Write([]byte("ef")); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("op 3 error = %v, want ErrClosedPipe", err)
	}
	if got := wire.String(); got != "abcd" {
		t.Fatalf("wire = %q, want the two pre-close writes", got)
	}
}

// TestFaultyRWSeededScheduleIsDeterministic drives the same probabilistic
// schedule twice and requires identical drop decisions.
func TestFaultyRWSeededScheduleIsDeterministic(t *testing.T) {
	run := func() (drops int, wire int) {
		var buf pipeBuf
		f := &FaultyRW{RW: &buf, Rng: rand.New(rand.NewSource(99)), DropProb: 0.5}
		fw := NewFrameWriter(f)
		defer fw.Close()
		for seq := uint64(1); seq <= 32; seq++ {
			if err := fw.WriteCall(testCall(seq)); err != nil {
				t.Fatalf("write %d: %v", seq, err)
			}
		}
		return f.Drops(), buf.Len()
	}
	d1, w1 := run()
	d2, w2 := run()
	if d1 != d2 || w1 != w2 {
		t.Fatalf("seeded schedule diverged: (%d,%d) vs (%d,%d)", d1, w1, d2, w2)
	}
	if d1 == 0 || d1 == 32 {
		t.Fatalf("DropProb=0.5 dropped %d/32 — schedule not exercising both paths", d1)
	}
}
