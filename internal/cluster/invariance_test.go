package cluster

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// invarianceCfg is the shared scenario of the invariance suite: three
// two-node supernodes under open Poisson arrivals with a big-tenant mix,
// parameterized by worker and shard counts (the two axes that must not
// change anything).
func invarianceCfg(workers, shards int, big bool) Config {
	spec := workload.OpenArrivalSpec{
		Process: workload.ProcPoisson, Rate: 0.4, Horizon: 150 * sim.Second,
		Kind: workload.Gaussian, MeanLife: 30 * sim.Second, Lambda: sim.Second,
		BigEvery: 16, BigSlots: 2,
	}
	if big {
		// The acceptance scenario: ≥1000 tenants, ≥100k requests.
		spec.Rate = 0.5
		spec.Horizon = 2400 * sim.Second
		spec.MeanLife = 80 * sim.Second
		spec.Lambda = 800 * sim.Millisecond
	}
	return Config{
		Seed:       7,
		Supernodes: []Supernode{testSupernode(), testSupernode(), testSupernode()},
		Policy:     PolicyLeastLoaded,
		Arrivals:   spec,
		Workers:    workers,
		Shards:     shards,
	}
}

// runInvarianceMatrix executes the scenario at (workers=1, shards=1) twice
// and at (workers=8, shards=1) and (workers=1, shards=4) once each, then
// requires every full Result — request logs, events, metrics — to be
// DeepEqual. Rerun catches nondeterminism, the workers axis pins the sweep
// pool, the shards axis pins the conservative-lookahead composition.
func runInvarianceMatrix(t *testing.T, big bool) *Result {
	t.Helper()
	base, err := Run(invarianceCfg(1, 1, big))
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name            string
		workers, shards int
	}{
		{"rerun", 1, 1},
		{"workers=8", 8, 1},
		{"shards=4", 1, 4},
	}
	for _, v := range variants {
		r, err := Run(invarianceCfg(v.workers, v.shards, big))
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if !reflect.DeepEqual(base, r) {
			t.Errorf("%s: cluster result differs from the (workers=1, shards=1) base", v.name)
		}
	}
	return base
}

// checkConservation asserts the tier's conservation laws on a result.
func checkConservation(t *testing.T, r *Result) {
	t.Helper()
	if r.Log.Placed+r.Log.Rejected != r.Log.Born {
		t.Errorf("silent loss: placed %d + rejected %d != born %d", r.Log.Placed, r.Log.Rejected, r.Log.Born)
	}
	if r.Finished != r.Requests {
		t.Errorf("lost requests: finished %d != submitted %d", r.Finished, r.Requests)
	}
	placed := 0
	for _, sn := range r.Supernodes {
		placed += sn.Placed
	}
	if placed != r.Log.Placed {
		t.Errorf("supernode placed sum %d != placement log %d", placed, r.Log.Placed)
	}
}

// TestClusterInvarianceQuick is the always-on (race-friendly) instance of
// the invariance matrix at small scale.
func TestClusterInvarianceQuick(t *testing.T) {
	r := runInvarianceMatrix(t, false)
	checkConservation(t, r)
	if r.Log.Born < 30 || r.Requests < 1000 {
		t.Errorf("quick scenario too small to mean anything: born %d, requests %d", r.Log.Born, r.Requests)
	}
}

// TestClusterPinnedScenario is the acceptance scenario: ≥3 supernodes,
// ≥1000 tenants, ≥100k requests through open arrivals, DeepEqual-identical
// across reruns, sweep workers 1 vs 8 and Shards 1 vs 4, with conservation
// enforced.
func TestClusterPinnedScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale cluster invariance matrix")
	}
	r := runInvarianceMatrix(t, true)
	checkConservation(t, r)
	if len(r.Supernodes) < 3 {
		t.Errorf("pinned scenario has %d supernodes, want >= 3", len(r.Supernodes))
	}
	if r.Log.Born < 1000 {
		t.Errorf("pinned scenario born %d tenants, want >= 1000", r.Log.Born)
	}
	if r.Requests < 100000 {
		t.Errorf("pinned scenario submitted %d requests, want >= 100000", r.Requests)
	}
	if r.Log.Parked == 0 {
		t.Error("pinned scenario never parked a tenant; admission control untested")
	}
	if r.Log.Conflicts == 0 {
		t.Error("pinned scenario saw no snapshot conflicts; optimism untested")
	}
}
