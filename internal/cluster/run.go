package cluster

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SupernodeResult is one supernode's share of a cluster run.
type SupernodeResult struct {
	Placed   int      // tenants this supernode hosted
	Requests int      // requests submitted
	Finished int      // requests completed
	Events   uint64   // kernel activations dispatched
	EndTime  sim.Time // virtual time the supernode went idle

	// Utilization is the supernode's mean device utilization: attained
	// GPU service summed over tenants, divided by devices × EndTime.
	Utilization float64

	// Run is the full underlying core result (request log included).
	Run *core.RunResult

	// TraceJSONL is the canonical trace export (nil unless Config.Traced).
	TraceJSONL []byte
}

// Result aggregates a cluster-tier run: the placement log, the M supernode
// runs, and the cluster-scope SLO metrics.
type Result struct {
	Policy string

	// Log is the placement engine's full output.
	Log *PlacementLog

	// Supernodes holds each supernode's run, in fleet order. DeepEqual
	// over this slice (request logs included) is the tier's determinism
	// pin.
	Supernodes []SupernodeResult

	Requests int      // requests submitted fleet-wide
	Finished int      // requests completed fleet-wide
	Events   uint64   // activations dispatched fleet-wide
	EndTime  sim.Time // latest supernode end time

	// Request-latency SLO metrics over every request in the fleet
	// (arrival to completion, nearest-rank percentiles).
	P50, P99, P999 sim.Time

	// Admission SLO: the wait tenants spent parked before placement.
	AvgAdmissionWait sim.Time
	MaxAdmissionWait sim.Time

	// Fairness is the Jain index over per-tenant attained GPU service
	// normalized by demand (request count × weight), across the whole
	// fleet. Raw service spreads with the heavy-tailed lifetime mixture;
	// dividing by demand isolates what the schedulers control — how
	// evenly service per requested unit is delivered.
	Fairness float64
}

// Run executes a full cluster-tier run: generate the open-arrival tenant
// population, place it onto the supernodes with the shared-state engine,
// then execute the M supernode runs (in parallel, bit-identical at any
// worker count) and aggregate the cluster-scope metrics.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	// The population is drawn from a seed folded away from the per-run
	// seeds so arrival randomness and service randomness never alias.
	births, err := cfg.Arrivals.Births(rand.New(rand.NewSource(
		sweep.KeySeed(cfg.Seed, "cluster/arrivals"))))
	if err != nil {
		return nil, err
	}
	log := newEngine(cfg).place(births)
	log.checkInvariants(0)

	// Split the placement log into per-supernode stream lists, preserving
	// commit order (the stream index feeds workload.StreamSeed, so this
	// order is part of the deterministic contract).
	streams := make([][]workload.StreamSpec, len(cfg.Supernodes))
	placedPer := make([]int, len(cfg.Supernodes))
	for _, p := range log.Placements {
		b := births[p.Tenant-1]
		streams[p.Supernode] = append(streams[p.Supernode], workload.StreamSpec{
			Kind: b.Kind, Count: b.Requests, Lambda: b.Lambda,
			Node: p.Node, Tenant: int64(p.Tenant), Weight: b.Weight,
			Start: p.At,
		})
		placedPer[p.Supernode]++
	}

	// One core run per supernode, fanned out through the blessed pool.
	// Kernels recycle through a shared arena (workers fewer than
	// supernodes reuse their predecessor's backing arrays) unless
	// FreshKernels asks for cold ones.
	var arena parallel.KernelArena
	type snOut struct {
		res SupernodeResult
		err error
	}
	outs := parallel.Map(len(cfg.Supernodes), cfg.Workers, func(i int) snOut {
		if len(streams[i]) == 0 {
			return snOut{res: SupernodeResult{Run: core.NewRunResultForPooling()}}
		}
		ccfg := core.Config{
			Seed:    sweep.FoldSeed(cfg.Seed, uint64(i)),
			Nodes:   cfg.Supernodes[i].Nodes,
			Mode:    cfg.Mode,
			Balance: cfg.Balance, DevPolicy: cfg.DevPolicy,
			Shards: cfg.Shards,
		}
		if !cfg.FreshKernels {
			k := arena.Get()
			defer arena.Put(k)
			ccfg.Kernel = k
		}
		if cfg.Traced {
			ccfg.Recorder = trace.New()
		}
		c, err := core.New(ccfg)
		if err != nil {
			return snOut{err: fmt.Errorf("cluster: supernode %d: %w", i, err)}
		}
		defer c.Close()
		r, err := c.Run(streams[i])
		if err != nil {
			return snOut{err: fmt.Errorf("cluster: supernode %d: %w", i, err)}
		}
		if len(r.Errors) > 0 {
			return snOut{err: fmt.Errorf("cluster: supernode %d: app errors: %s", i, r.Errors[0])}
		}
		res := SupernodeResult{
			Placed:   placedPer[i],
			Requests: requestCount(streams[i]),
			Finished: r.Finished,
			Events:   c.Dispatched(),
			EndTime:  r.EndTime,
			Run:      r,
		}
		res.Utilization = utilization(r, cfg.Supernodes[i].devices())
		if cfg.Traced {
			for _, rec := range c.Recorders() {
				res.TraceJSONL = rec.Snapshot().AppendJSONL(res.TraceJSONL)
			}
		}
		return snOut{res: res}
	})
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
	}

	res := &Result{Policy: cfg.Policy, Log: log}
	// Per-tenant demand (request count × weight) normalizes the fairness
	// vector: raw attained service just mirrors the heavy-tailed lifetime
	// draw, service-per-demand measures even delivery.
	demand := make(map[int64]float64, log.Placed)
	for _, p := range log.Placements {
		b := births[p.Tenant-1]
		w := b.Weight
		if w <= 0 {
			w = 1
		}
		demand[int64(p.Tenant)] = float64(b.Requests * w)
	}
	var latencies []float64
	svcPerDemand := make([]float64, 0, log.Placed)
	for _, o := range outs {
		res.Supernodes = append(res.Supernodes, o.res)
		res.Requests += o.res.Requests
		res.Finished += o.res.Finished
		res.Events += o.res.Events
		if o.res.EndTime > res.EndTime {
			res.EndTime = o.res.EndTime
		}
		for _, ev := range o.res.Run.Requests {
			if ev.Err == "" {
				latencies = append(latencies, float64(ev.CompletionTime()))
			}
		}
		// Per-tenant service/demand, in sorted tenant order so the
		// fairness vector is reproducible byte for byte.
		ids := make([]int64, 0, len(o.res.Run.TenantService))
		for id := range o.res.Run.TenantService {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			if d := demand[id]; d > 0 {
				svcPerDemand = append(svcPerDemand, float64(o.res.Run.TenantService[id])/d)
			}
		}
	}
	res.P50 = sim.Time(metrics.Percentile(latencies, 0.50))
	res.P99 = sim.Time(metrics.Percentile(latencies, 0.99))
	res.P999 = sim.Time(metrics.Percentile(latencies, 0.999))
	res.Fairness = metrics.JainFairness(svcPerDemand)

	var waitSum int64
	waits := 0
	for _, p := range log.Placements {
		if p.Wait > res.MaxAdmissionWait {
			res.MaxAdmissionWait = p.Wait
		}
		if p.Wait > 0 {
			waitSum += int64(p.Wait)
			waits++
		}
	}
	if waits > 0 {
		res.AvgAdmissionWait = sim.Time(waitSum / int64(waits))
	}
	return res, nil
}

// requestCount sums the streams' request counts.
func requestCount(streams []workload.StreamSpec) int {
	n := 0
	for _, s := range streams {
		n += s.Count
	}
	return n
}

// utilization computes mean device utilization from attained tenant service.
func utilization(r *core.RunResult, devices int) float64 {
	if devices <= 0 || r.EndTime <= 0 {
		return 0
	}
	var svc int64
	ids := make([]int64, 0, len(r.TenantService))
	for id := range r.TenantService {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		svc += int64(r.TenantService[id])
	}
	return float64(svc) / (float64(devices) * float64(r.EndTime))
}
