// Package cluster is the third scheduling level: a global scheduler that
// places tenant streams onto M supernodes, where each supernode is one
// complete core run (a Strings deployment with its own Affinity Mapper,
// backends and device schedulers, optionally sharded per PR 9).
//
// The design follows Arktos's shared-state optimistic global scheduler: the
// placement engine works from a periodically refreshed snapshot of every
// supernode's capacity ledger, commits placements optimistically against
// the authoritative ledger, detects conflicts (the snapshot was stale and
// the capacity is gone) and retries deterministically, parking tenants in a
// bounded FIFO admission queue when the fleet is full and rejecting them
// when the queue overflows.
//
// Placement is one-way: it consumes the open-arrival population's declared
// lifetimes and slot demands, never the simulated runs' outcomes. That
// boundary is what makes the tier trivially deterministic — the placement
// log is a pure function of (seed, spec, policy), and the M supernode runs
// it emits are the already-proven deterministic core runs, composable under
// any worker or shard count (DESIGN.md §16).
package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// Placement policies.
const (
	// PolicyLeastLoaded places each tenant on the supernode with the most
	// free slots (ties to the lowest index).
	PolicyLeastLoaded = "least-loaded"
	// PolicyFrag places each tenant on the supernode whose fragmentation
	// score (balancer.FragScore over a synthetic cluster-scope DST row)
	// increases the least — the cluster-scope analogue of the Frag slice
	// policy from PR 8.
	PolicyFrag = "frag"
)

// Policies lists the placement policies in display order.
func Policies() []string { return []string{PolicyLeastLoaded, PolicyFrag} }

// Supernode describes one supernode: the node/GPU fleet of a core run plus
// the admission capacity the global scheduler may promise away.
type Supernode struct {
	// Nodes is the supernode's fleet, exactly as core.Config.Nodes.
	Nodes []core.NodeConfig

	// SlotsPerDevice sets the supernode's admission capacity: the global
	// ledger holds devices × SlotsPerDevice tenant slots. Slots are the
	// cluster tier's capacity currency — an admission-control budget
	// (tenants the supernode will serve concurrently), deliberately
	// coarser than the per-device DST the supernode's own mapper runs.
	// Defaults to DefaultSlotsPerDevice.
	SlotsPerDevice int
}

// DefaultSlotsPerDevice is the admission slots carried by each device.
const DefaultSlotsPerDevice = 4

// devices counts the supernode's devices.
func (s Supernode) devices() int {
	n := 0
	for _, nc := range s.Nodes {
		n += len(nc.Devices)
	}
	return n
}

// Capacity returns the supernode's total admission slots.
func (s Supernode) Capacity() int {
	spd := s.SlotsPerDevice
	if spd <= 0 {
		spd = DefaultSlotsPerDevice
	}
	return s.devices() * spd
}

// Config describes a full cluster-tier run.
type Config struct {
	// Seed drives everything: the open-arrival population, the placement
	// engine and (folded per supernode) the M core runs.
	Seed int64

	// Supernodes is the fleet the global scheduler places onto.
	Supernodes []Supernode

	// Policy names the placement policy (PolicyLeastLoaded, PolicyFrag).
	Policy string

	// Arrivals generates the tenant population (births, lifetimes,
	// per-tenant request streams). See workload.OpenArrivalSpec.
	Arrivals workload.OpenArrivalSpec

	// SnapshotEvery is the number of placement commits between snapshot
	// refreshes — the staleness knob of the shared-state design. 1 keeps
	// the snapshot always fresh (no conflicts possible); larger values
	// model schedulers racing over stale state. Default 8.
	SnapshotEvery int

	// MaxRetries bounds the refresh-and-retry loop after a commit
	// conflict before the tenant parks. Default 3.
	MaxRetries int

	// ParkCapacity bounds the admission park queue; a tenant arriving to
	// a full fleet with a full queue is rejected. Default 64.
	ParkCapacity int

	// Mode, Balance and DevPolicy configure the underlying supernode runs
	// (defaults: ModeStrings, GMin, none).
	Mode      core.Mode
	Balance   string
	DevPolicy string

	// Workers sets the parallelism of the supernode runs (parallel.Map
	// semantics: 0 = GOMAXPROCS, results bit-identical at any value).
	Workers int

	// Shards passes through to each supernode's core.Config.Shards:
	// eligible supernodes time-partition into per-node shard kernels
	// (bit-identical for any Shards >= 1; see DESIGN.md §15).
	Shards int

	// Traced installs a trace recorder on every supernode run; the
	// Result then carries each supernode's canonical JSONL export.
	Traced bool

	// FreshKernels disables kernel recycling across the supernode runs.
	// Recycling (the default) reuses each worker's kernel through a
	// parallel.KernelArena — semantically invisible, as everywhere else.
	FreshKernels bool
}

// withDefaults fills the zero knobs.
func (c Config) withDefaults() Config {
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 8
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.ParkCapacity <= 0 {
		c.ParkCapacity = 64
	}
	if c.Policy == "" {
		c.Policy = PolicyLeastLoaded
	}
	if c.Balance == "" {
		c.Balance = "GMin"
	}
	if c.Mode == 0 { // core.ModeCUDA is the zero value but never wanted here
		c.Mode = core.ModeStrings
	}
	return c
}

// Validate rejects configurations the engine cannot serve.
func (c Config) Validate() error {
	c = c.withDefaults()
	if len(c.Supernodes) == 0 {
		return fmt.Errorf("cluster: no supernodes")
	}
	for i, sn := range c.Supernodes {
		if sn.Capacity() <= 0 {
			return fmt.Errorf("cluster: supernode %d has no capacity (no devices?)", i)
		}
	}
	switch c.Policy {
	case PolicyLeastLoaded, PolicyFrag:
	default:
		return fmt.Errorf("cluster: unknown policy %q (valid: %v)", c.Policy, Policies())
	}
	if err := c.Arrivals.Validate(); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	return nil
}
