package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"math"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// goldenCfg is the pinned golden scenario: three two-node supernodes under a
// short big-tenant Poisson arrival mix, traced, on the classic (unsharded)
// kernel path — the invariance suite owns the sharded axis, so the golden
// pins the other composition.
func goldenCfg(policy string) Config {
	return Config{
		Seed:       3,
		Supernodes: []Supernode{testSupernode(), testSupernode(), testSupernode()},
		Policy:     policy,
		Arrivals: workload.OpenArrivalSpec{
			Process: workload.ProcPoisson, Rate: 1.2, Horizon: 100 * sim.Second,
			Kind: workload.Gaussian, MeanLife: 25 * sim.Second, Lambda: sim.Second,
			BigEvery: 4, BigSlots: 5,
		},
		Traced: true,
	}
}

// clusterGolden pins the scenario's float metrics per policy to the exact
// values produced at commit time. Columns: p50, p99, p999 (seconds),
// fairness, avg admission wait, max admission wait (seconds), then one
// utilization per supernode.
var clusterGolden = map[string][]float64{
	"least-loaded": {2.026361, 2.051931, 2.078074, 0.975610421339, 8.291814, 12.446848, 0.0239414344328, 0.0183908870049, 0.0364374228538},
	"frag":         {2.026361, 2.05888, 2.090424, 0.974364474969, 2.854589, 7.905922, 0.0393823563618, 0.0186610897797, 0.021736853762},
}

// clusterGoldenInts pins the scenario's exact counters per policy. Columns:
// born, placed, parked, rejected, conflicts, requests, finished, events.
var clusterGoldenInts = map[string][]int{
	"least-loaded": {107, 107, 13, 0, 17, 3739, 3739, 912463},
	"frag":         {107, 107, 22, 0, 18, 3739, 3739, 912449},
}

// clusterGoldenSHA pins the sha256 of each policy's concatenated
// per-supernode JSONL trace (supernode order).
var clusterGoldenSHA = map[string]string{
	"least-loaded": "ca1682eb666e736b7517f7f8a4d958f40fcce50e94eea3c07e008242f51ba90b",
	"frag":         "e21a1629937e36ffff250adc6b1a34db293dce892877dc69b726c0465797ca1b",
}

// goldenVector extracts the pinned float metrics from a result.
func goldenVector(r *Result) []float64 {
	v := []float64{
		sim.Time(r.P50).Seconds(), sim.Time(r.P99).Seconds(), sim.Time(r.P999).Seconds(),
		r.Fairness,
		r.AvgAdmissionWait.Seconds(), r.MaxAdmissionWait.Seconds(),
	}
	for _, sn := range r.Supernodes {
		v = append(v, sn.Utilization)
	}
	return v
}

// goldenInts extracts the pinned counters from a result.
func goldenInts(r *Result) []int {
	return []int{
		r.Log.Born, r.Log.Placed, r.Log.Parked, r.Log.Rejected, r.Log.Conflicts,
		r.Requests, r.Finished, int(r.Events),
	}
}

// goldenTrace concatenates the per-supernode traces and hashes them.
func goldenTrace(r *Result) string {
	var all []byte
	for _, sn := range r.Supernodes {
		all = append(all, sn.TraceJSONL...)
	}
	sum := sha256.Sum256(all)
	return hex.EncodeToString(sum[:])
}

// TestClusterGolden runs the pinned scenario for both policies through the
// execution-path variants (reused/fresh kernels, sequential/parallel-8) and
// demands every variant reproduce the committed 12-digit metrics, exact
// counters and trace hash — the cluster-tier analogue of TestFig9Golden.
func TestClusterGolden(t *testing.T) {
	const tol = 1e-9 // golden floats carry 12 significant digits
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"reused-kernels", func(*Config) {}},
		{"fresh-kernels", func(c *Config) { c.FreshKernels = true }},
		{"sequential", func(c *Config) { c.Workers = 1 }},
		{"parallel-8", func(c *Config) { c.Workers = 8 }},
	}
	for _, policy := range Policies() {
		var base *Result
		for vi, v := range variants {
			cfg := goldenCfg(policy)
			v.mutate(&cfg)
			r, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", policy, v.name, err)
			}
			got := goldenVector(r)
			want := clusterGolden[policy]
			if len(got) != len(want) {
				t.Fatalf("%s/%s: %d metrics, want %d", policy, v.name, len(got), len(want))
			}
			for i, w := range want {
				if math.Abs(got[i]-w) > tol*math.Abs(w) {
					t.Errorf("%s/%s: metric %d = %.12g, want %.12g (cluster dispatch drifted)",
						policy, v.name, i, got[i], w)
				}
			}
			if gi, wi := goldenInts(r), clusterGoldenInts[policy]; !reflect.DeepEqual(gi, wi) {
				t.Errorf("%s/%s: counters %v, want %v", policy, v.name, gi, wi)
			}
			if sha := goldenTrace(r); sha != clusterGoldenSHA[policy] {
				t.Errorf("%s/%s: trace sha %s, want %s (span stream drifted)",
					policy, v.name, sha, clusterGoldenSHA[policy])
			}
			if vi == 0 {
				base = r
			} else if !reflect.DeepEqual(r, base) {
				t.Errorf("%s/%s: result not deeply equal to %s", policy, v.name, variants[0].name)
			}
		}
	}
}
