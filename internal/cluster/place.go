package cluster

import (
	"container/heap"

	"repro/internal/balancer"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Placement records one tenant's admission: which supernode took it, when,
// and what it cost to get there.
type Placement struct {
	Tenant    int      // 1-based global tenant id (birth order)
	Supernode int      // index into Config.Supernodes
	Node      int      // arrival node within the supernode (rotation)
	Slots     int      // admission slots held for the tenant's lifetime
	At        sim.Time // commit instant (≥ the tenant's birth instant)
	Wait      sim.Time // admission wait: At − birth (nonzero only after parking)
	Retries   int      // conflict retries consumed before the commit
}

// PlacementLog is the deterministic output of the placement engine: a pure
// function of (seed, arrival spec, fleet, policy, staleness knobs).
type PlacementLog struct {
	Born     int // tenants the arrival process produced
	Placed   int // tenants committed to a supernode
	Rejected int // tenants turned away (park overflow, unplaceable, horizon)
	Parked   int // tenants that waited in the park queue at least once

	Conflicts  int // optimistic commits beaten by the authoritative ledger
	Refreshes  int // snapshot refreshes (staleness boundary crossings)
	PeakParked int // high-water mark of the park queue

	// Placements lists every admission in commit order; the supernode
	// runs launch exactly these streams.
	Placements []Placement
}

// parked is one tenant waiting in the admission queue.
type parked struct {
	tenant int
	birth  workload.TenantBirth
}

// departure is a scheduled capacity release: a placed tenant's declared
// lifetime ending.
type departure struct {
	at     sim.Time
	tenant int
	sn     int
	slots  int
}

// departureHeap orders departures by (time, tenant id) — the tenant id
// tiebreak keeps equal-instant releases deterministic.
type departureHeap []departure

func (h departureHeap) Len() int { return len(h) }
func (h departureHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].tenant < h[j].tenant
}
func (h departureHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x any)     { *h = append(*h, x.(departure)) }
func (h *departureHeap) Pop() any       { old := *h; n := len(old); d := old[n-1]; *h = old[:n-1]; return d }
func (h departureHeap) peek() departure { return h[0] }

// engine is the shared-state placement state machine.
type engine struct {
	cfg  Config
	caps []int // per-supernode capacity (authoritative, immutable)

	// ledgerFree is the authoritative free-slot ledger: every commit and
	// release lands here immediately. Placement decisions never read it
	// directly — they read the snapshot — but commits validate against it.
	ledgerFree []int

	// snapFree is the scheduler's snapshot of the ledger, refreshed every
	// SnapshotEvery commits (and on park-queue drains). Between refreshes
	// it drifts from the ledger — commits it hasn't absorbed make it
	// optimistic, releases it hasn't seen make it pessimistic — which is
	// exactly the staleness a shared-state multi-scheduler race produces.
	snapFree     []int
	sinceRefresh int

	shapes []balancer.SliceShape // demand classes, for the frag policy

	log  PlacementLog
	park []parked // bounded FIFO admission queue
	dep  departureHeap

	perSNPlaced []int // placements per supernode (node rotation counter)
}

func newEngine(cfg Config) *engine {
	e := &engine{cfg: cfg}
	e.caps = make([]int, len(cfg.Supernodes))
	e.ledgerFree = make([]int, len(cfg.Supernodes))
	e.snapFree = make([]int, len(cfg.Supernodes))
	e.perSNPlaced = make([]int, len(cfg.Supernodes))
	for i, sn := range cfg.Supernodes {
		e.caps[i] = sn.Capacity()
		e.ledgerFree[i] = e.caps[i]
		e.snapFree[i] = e.caps[i]
	}
	// The demand classes the population can present: the unit tenant and,
	// when the spec emits big tenants, their BigSlots demand.
	e.shapes = []balancer.SliceShape{{Name: "1s", Frac: 1, Mem: 1}}
	if cfg.Arrivals.BigEvery > 0 {
		big := cfg.Arrivals.BigSlots
		if big <= 0 {
			big = 2
		}
		if big > 1 {
			e.shapes = append(e.shapes, balancer.SliceShape{Name: "big", Frac: big, Mem: int64(big)})
		}
	}
	return e
}

// refresh copies the ledger into the snapshot.
func (e *engine) refresh() {
	copy(e.snapFree, e.ledgerFree)
	e.sinceRefresh = 0
	e.log.Refreshes++
}

// fragScoreAt returns balancer.FragScore for a synthetic cluster-scope DST
// row describing a supernode with the given free slots: the share of demand
// classes its free hole cannot serve, weighted by the hole's size. This is
// the same measure the Frag slice policy optimizes per device, lifted to
// admission slots.
func (e *engine) fragScoreAt(sn, free int) float64 {
	row := balancer.DSTEntry{
		Partitionable: true,
		TotalFrac:     e.caps[sn], FreeFrac: free,
		TotalMem: int64(e.caps[sn]), FreeMem: int64(free),
		Shapes: e.shapes,
	}
	return balancer.FragScore(&row)
}

// pick selects a supernode from the snapshot for a tenant demanding slots,
// or -1 when the snapshot shows no room anywhere.
func (e *engine) pick(slots int) int {
	best := -1
	switch e.cfg.Policy {
	case PolicyFrag:
		// Fragmentation gradient: the supernode whose frag score degrades
		// the least by hosting this tenant. Strict < keeps ties on the
		// lowest index.
		bestDelta := 0.0
		for sn, free := range e.snapFree {
			if free < slots {
				continue
			}
			delta := e.fragScoreAt(sn, free-slots) - e.fragScoreAt(sn, free)
			if best < 0 || delta < bestDelta {
				best, bestDelta = sn, delta
			}
		}
	default: // PolicyLeastLoaded
		bestFree := 0
		for sn, free := range e.snapFree {
			if free >= slots && free > bestFree {
				best, bestFree = sn, free
			}
		}
	}
	return best
}

// commit applies a placement to the authoritative ledger and ages the
// snapshot. The snapshot deliberately does not absorb the commit — it only
// learns about it at the next refresh.
func (e *engine) commit(sn, slots int) {
	e.ledgerFree[sn] -= slots
	if e.ledgerFree[sn] < 0 {
		panic("cluster: ledger overcommitted") // unreachable: tryPlace validates
	}
	e.sinceRefresh++
	if e.sinceRefresh >= e.cfg.SnapshotEvery {
		e.refresh()
	}
}

// tryPlace runs the optimistic placement loop for one tenant: pick from the
// snapshot, validate against the ledger, refresh and retry on conflict.
// Returns the chosen supernode and retries consumed, or ok=false when the
// fleet has no room within MaxRetries.
func (e *engine) tryPlace(slots int) (sn, retries int, ok bool) {
	for attempt := 0; ; attempt++ {
		cand := e.pick(slots)
		if cand >= 0 && e.ledgerFree[cand] >= slots {
			e.commit(cand, slots)
			return cand, attempt, true
		}
		if cand >= 0 {
			// The snapshot promised room the ledger no longer has: a
			// conflict, the price of optimism over stale state.
			e.log.Conflicts++
		}
		if attempt >= e.cfg.MaxRetries {
			return -1, attempt, false
		}
		e.refresh()
		if e.pick(slots) < 0 {
			// Even fresh state has no room; retrying cannot help.
			return -1, attempt, false
		}
	}
}

// admit places tenant (1-based id) with the given birth at virtual time
// now, appending the Placement and scheduling the departure.
func (e *engine) admit(tenant int, b workload.TenantBirth, now sim.Time, sn, retries int) {
	node := 0
	if n := len(e.cfg.Supernodes[sn].Nodes); n > 0 {
		node = e.perSNPlaced[sn] % n
	}
	e.perSNPlaced[sn]++
	e.log.Placed++
	e.log.Placements = append(e.log.Placements, Placement{
		Tenant: tenant, Supernode: sn, Node: node, Slots: b.Slots,
		At: now, Wait: now - b.At, Retries: retries,
	})
	heap.Push(&e.dep, departure{at: now + b.Life, tenant: tenant, sn: sn, slots: b.Slots})
}

// release processes one departure: the ledger gets the slots back
// immediately; the snapshot stays stale until the next refresh.
func (e *engine) release(d departure) {
	e.ledgerFree[d.sn] += d.slots
	if e.ledgerFree[d.sn] > e.caps[d.sn] {
		panic("cluster: ledger over-released") // unreachable
	}
}

// drainPark re-attempts the park queue head-first after capacity returned.
// Strict FIFO: a head that still does not fit blocks the queue (admission
// order is part of the tier's fairness contract), so the drain stops there.
func (e *engine) drainPark(now sim.Time) {
	e.refresh() // the release that woke us is a state-store event
	for len(e.park) > 0 {
		head := e.park[0]
		sn, retries, ok := e.tryPlace(head.birth.Slots)
		if !ok {
			return
		}
		e.park = e.park[1:]
		e.admit(head.tenant, head.birth, now, sn, retries)
	}
}

// maxCapacity returns the largest single-supernode capacity.
func (e *engine) maxCapacity() int {
	m := 0
	for _, c := range e.caps {
		if c > m {
			m = c
		}
	}
	return m
}

// place runs the whole placement timeline: tenant births from the arrival
// population interleaved with the departures of already-placed tenants, in
// virtual-time order with departures winning ties (capacity frees before
// the same-instant arrival asks for it, matching the state store applying
// releases before admissions at a barrier).
func (e *engine) place(births []workload.TenantBirth) *PlacementLog {
	e.log.Born = len(births)
	maxCap := e.maxCapacity()
	for i, b := range births {
		tenant := i + 1
		// Departures strictly before — or tied with — this birth land first.
		for e.dep.Len() > 0 && e.dep.peek().at <= b.At {
			d := heap.Pop(&e.dep).(departure)
			e.release(d)
			e.drainPark(d.at)
		}
		if b.Slots > maxCap {
			// No supernode could ever host this demand; parking would
			// block the queue forever.
			e.log.Rejected++
			continue
		}
		if sn, retries, ok := e.tryPlace(b.Slots); ok {
			e.admit(tenant, b, b.At, sn, retries)
			continue
		}
		if len(e.park) >= e.cfg.ParkCapacity {
			e.log.Rejected++
			continue
		}
		e.park = append(e.park, parked{tenant: tenant, birth: b})
		e.log.Parked++
		if len(e.park) > e.log.PeakParked {
			e.log.PeakParked = len(e.park)
		}
	}
	// Drain the tail: remaining departures may still admit parked tenants.
	for e.dep.Len() > 0 {
		d := heap.Pop(&e.dep).(departure)
		e.release(d)
		e.drainPark(d.at)
	}
	// Tenants still parked when the timeline ends were never served.
	e.log.Rejected += len(e.park)
	e.park = nil
	return &e.log
}

// checkInvariants panics if the conservation law broke: every born tenant
// is exactly one of placed, currently parked, or rejected.
func (l *PlacementLog) checkInvariants(currentlyParked int) {
	if l.Placed+currentlyParked+l.Rejected != l.Born {
		panic("cluster: silent tenant loss (placed+parked+rejected != born)")
	}
}
