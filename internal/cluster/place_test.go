package cluster

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// testSupernode builds a two-node, four-device supernode (16 default slots).
func testSupernode() Supernode {
	return Supernode{Nodes: []core.NodeConfig{
		{Devices: []gpu.Spec{gpu.Quadro2000, gpu.TeslaC2050}},
		{Devices: []gpu.Spec{gpu.Quadro2000, gpu.TeslaC2050}},
	}}
}

// placeSpecs is the arrival matrix the placement properties sweep: the three
// processes, a tight-capacity overload case, and a big-tenant mix.
func placeSpecs() []workload.OpenArrivalSpec {
	return []workload.OpenArrivalSpec{
		{Process: workload.ProcPoisson, Rate: 1, Horizon: 400 * sim.Second,
			MeanLife: 40 * sim.Second},
		{Process: workload.ProcDiurnal, Rate: 1.5, Horizon: 400 * sim.Second,
			MeanLife: 60 * sim.Second, Period: 80 * sim.Second, Depth: 0.8},
		{Process: workload.ProcBursty, Rate: 2, Horizon: 300 * sim.Second,
			MeanLife: 90 * sim.Second, BurstMean: 5, BurstSpread: 2 * sim.Second},
		// Overload: demand far above the fleet's 48 slots, exercising the
		// park queue and rejections.
		{Process: workload.ProcPoisson, Rate: 8, Horizon: 200 * sim.Second,
			MeanLife: 120 * sim.Second},
		// Big tenants: every 4th demands 5 slots, stressing frag scoring.
		{Process: workload.ProcPoisson, Rate: 1, Horizon: 400 * sim.Second,
			MeanLife: 50 * sim.Second, BigEvery: 4, BigSlots: 5},
	}
}

// placeCfg assembles a 3-supernode placement config.
func placeCfg(spec workload.OpenArrivalSpec, policy string, seed int64) Config {
	return Config{
		Seed:       seed,
		Supernodes: []Supernode{testSupernode(), testSupernode(), testSupernode()},
		Policy:     policy,
		Arrivals:   spec,
	}.withDefaults()
}

// runPlace generates the population and runs only the placement engine.
func runPlace(t *testing.T, cfg Config) ([]workload.TenantBirth, *PlacementLog) {
	t.Helper()
	births, err := cfg.Arrivals.Births(rand.New(rand.NewSource(
		sweep.KeySeed(cfg.Seed, "cluster/arrivals"))))
	if err != nil {
		t.Fatal(err)
	}
	return births, newEngine(cfg).place(births)
}

// TestPlacementNeverOvercommits replays every placement log through an
// independent sweep-line checker: at no instant may the slots concurrently
// held on a supernode exceed its capacity. The checker trusts nothing from
// the engine but the log itself.
func TestPlacementNeverOvercommits(t *testing.T) {
	for _, spec := range placeSpecs() {
		for _, policy := range Policies() {
			for seed := int64(1); seed <= 5; seed++ {
				cfg := placeCfg(spec, policy, seed)
				births, log := runPlace(t, cfg)
				// Sweep line per supernode: +slots at At, −slots at
				// At+Life; releases apply before same-instant admissions,
				// mirroring the engine's tie rule.
				type edge struct {
					at    sim.Time
					delta int
				}
				edges := make([][]edge, len(cfg.Supernodes))
				for _, p := range log.Placements {
					life := births[p.Tenant-1].Life
					edges[p.Supernode] = append(edges[p.Supernode],
						edge{p.At, p.Slots}, edge{p.At + life, -p.Slots})
				}
				for sn, es := range edges {
					sort.Slice(es, func(i, j int) bool {
						if es[i].at != es[j].at {
							return es[i].at < es[j].at
						}
						return es[i].delta < es[j].delta // releases first
					})
					held, capSlots := 0, cfg.Supernodes[sn].Capacity()
					for _, e := range es {
						held += e.delta
						if held > capSlots {
							t.Fatalf("%s/%s seed %d: supernode %d holds %d slots over capacity %d",
								spec.Process, policy, seed, sn, held, capSlots)
						}
						if held < 0 {
							t.Fatalf("%s/%s seed %d: supernode %d negative occupancy", spec.Process, policy, seed, sn)
						}
					}
				}
			}
		}
	}
}

// TestPlacementNoSilentLoss pins the conservation law: every born tenant is
// exactly one of placed or rejected by the time the timeline drains, placed
// tenants appear exactly once, and a placement never precedes its birth.
func TestPlacementNoSilentLoss(t *testing.T) {
	for _, spec := range placeSpecs() {
		for _, policy := range Policies() {
			for seed := int64(1); seed <= 5; seed++ {
				cfg := placeCfg(spec, policy, seed)
				births, log := runPlace(t, cfg)
				if log.Placed+log.Rejected != log.Born {
					t.Fatalf("%s/%s seed %d: placed %d + rejected %d != born %d",
						spec.Process, policy, seed, log.Placed, log.Rejected, log.Born)
				}
				if log.Born != len(births) {
					t.Fatalf("%s/%s seed %d: born %d != population %d", spec.Process, policy, seed, log.Born, len(births))
				}
				if len(log.Placements) != log.Placed {
					t.Fatalf("%s/%s seed %d: %d placements vs placed %d",
						spec.Process, policy, seed, len(log.Placements), log.Placed)
				}
				seen := make(map[int]bool, len(log.Placements))
				for _, p := range log.Placements {
					if seen[p.Tenant] {
						t.Fatalf("%s/%s seed %d: tenant %d placed twice", spec.Process, policy, seed, p.Tenant)
					}
					seen[p.Tenant] = true
					if p.At < births[p.Tenant-1].At {
						t.Fatalf("%s/%s seed %d: tenant %d placed at %v before birth %v",
							spec.Process, policy, seed, p.Tenant, p.At, births[p.Tenant-1].At)
					}
					if p.Wait != p.At-births[p.Tenant-1].At {
						t.Fatalf("%s/%s seed %d: tenant %d wait %v inconsistent", spec.Process, policy, seed, p.Tenant, p.Wait)
					}
				}
			}
		}
	}
}

// TestPlacementSameSeedDeepEqual pins the engine's determinism: the whole
// placement log reproduces exactly at a fixed seed.
func TestPlacementSameSeedDeepEqual(t *testing.T) {
	for _, spec := range placeSpecs() {
		for _, policy := range Policies() {
			cfg := placeCfg(spec, policy, 11)
			_, a := runPlace(t, cfg)
			_, b := runPlace(t, cfg)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%s: placement logs differ between identical runs", spec.Process, policy)
			}
		}
	}
}

// TestPlacementFreshSnapshotNoConflicts checks the staleness model: with
// SnapshotEvery=1 the snapshot always equals the ledger, so optimistic
// commits can never conflict; with a very stale snapshot under overload,
// conflicts must actually occur (the model isn't vacuous).
func TestPlacementFreshSnapshotNoConflicts(t *testing.T) {
	overload := placeSpecs()[3]
	fresh := placeCfg(overload, PolicyLeastLoaded, 3)
	fresh.SnapshotEvery = 1
	if _, log := runPlace(t, fresh); log.Conflicts != 0 {
		t.Errorf("SnapshotEvery=1 produced %d conflicts; a fresh snapshot cannot conflict", log.Conflicts)
	}
	stale := placeCfg(overload, PolicyLeastLoaded, 3)
	stale.SnapshotEvery = 64
	if _, log := runPlace(t, stale); log.Conflicts == 0 {
		t.Error("SnapshotEvery=64 under overload produced no conflicts; staleness model is inert")
	}
}

// TestPlacementParkQueueBounded checks the admission queue honors its bound
// and that overload actually rejects, and that parked tenants admit in FIFO
// order (placements with nonzero wait carry increasing tenant ids).
func TestPlacementParkQueueBounded(t *testing.T) {
	cfg := placeCfg(placeSpecs()[3], PolicyLeastLoaded, 9)
	cfg.ParkCapacity = 16
	_, log := runPlace(t, cfg)
	if log.PeakParked > cfg.ParkCapacity {
		t.Errorf("peak parked %d exceeds capacity %d", log.PeakParked, cfg.ParkCapacity)
	}
	if log.Rejected == 0 {
		t.Error("overload with a 16-deep park queue rejected nothing")
	}
	if log.Parked == 0 {
		t.Error("overload parked nothing")
	}
	last := 0
	for _, p := range log.Placements {
		if p.Wait > 0 {
			if p.Tenant < last {
				t.Fatalf("parked tenant %d admitted after %d: FIFO order broken", p.Tenant, last)
			}
			last = p.Tenant
		}
	}
}

// TestPoliciesDiverge checks the two policies are actually different
// schedulers: on the big-tenant mix their placement logs must differ.
func TestPoliciesDiverge(t *testing.T) {
	spec := placeSpecs()[4]
	_, ll := runPlace(t, placeCfg(spec, PolicyLeastLoaded, 5))
	_, fr := runPlace(t, placeCfg(spec, PolicyFrag, 5))
	if reflect.DeepEqual(ll.Placements, fr.Placements) {
		t.Error("least-loaded and frag produced identical placement logs on the big-tenant mix")
	}
}

// TestConfigValidate pins the config rejection surface.
func TestConfigValidate(t *testing.T) {
	good := placeCfg(placeSpecs()[0], PolicyLeastLoaded, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := good
	bad.Supernodes = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty fleet accepted")
	}
	bad = good
	bad.Supernodes = []Supernode{{}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-capacity supernode accepted")
	}
	bad = good
	bad.Policy = "round-robin"
	if err := bad.Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
	bad = good
	bad.Arrivals.Rate = -1
	if err := bad.Validate(); err == nil {
		t.Error("invalid arrival spec accepted")
	}
	if _, err := Run(bad); err == nil {
		t.Error("Run accepted an invalid config")
	}
}
