package gpu

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// Property: with a single copy engine, total copy time equals the sum of
// solo durations (full serialization); with two engines, opposite-direction
// copies overlap so the makespan is strictly smaller.
func TestQuickCopyEngineSerialization(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) < 2 || len(sizes) > 10 {
			return true
		}
		run := func(engines int) sim.Time {
			spec := testSpec()
			spec.CopyEngines = engines
			k := sim.NewKernel(1)
			d := NewDevice(k, spec, 0)
			ctx := d.NewContext()
			for i, sz := range sizes {
				st := ctx.NewStream()
				kind := OpH2D
				if i%2 == 1 {
					kind = OpD2H
				}
				op := &Op{Kind: kind, Bytes: int64(sz) + 10}
				k.Go(fmt.Sprintf("a%d", i), func(p *sim.Proc) {
					p.Wait(st.Submit(op))
				})
			}
			k.Run()
			return k.Now()
		}
		single, dual := run(1), run(2)
		var total sim.Time
		for _, sz := range sizes {
			total += sim.Time((int64(sz) + 10) / 10) // 10 B/us
		}
		// Single engine: serialization within ±1us/op rounding.
		if single < total-sim.Time(len(sizes)) || single > total+sim.Time(len(sizes)) {
			return false
		}
		return dual <= single
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the device's busy integrals never exceed elapsed time, and the
// per-app service totals sum to at most the number of engines times the
// makespan.
func TestQuickAccountingBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		k := sim.NewKernel(9)
		d := NewDevice(k, testSpec(), 0)
		ctx := d.NewContext()
		for i, r := range raw {
			st := ctx.NewStream()
			var op *Op
			switch r % 3 {
			case 0:
				op = &Op{Kind: OpKernel, Compute: float64(r)*100 + 500, AppID: i}
			case 1:
				op = &Op{Kind: OpH2D, Bytes: int64(r)*3 + 20, AppID: i}
			default:
				op = &Op{Kind: OpD2H, Bytes: int64(r)*2 + 20, AppID: i}
			}
			k.Go(fmt.Sprintf("a%d", i), func(p *sim.Proc) { p.Wait(st.Submit(op)) })
		}
		k.Run()
		st := d.Stats()
		mk := k.Now()
		if st.ComputeBusy > mk+1 || st.H2DBusy > mk+1 || st.D2HBusy > mk+1 {
			return false
		}
		var svc sim.Time
		for _, id := range d.AppIDs() {
			svc += d.AppService(id)
		}
		return svc <= 3*mk+sim.Time(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: tracer segments tile the busy timeline without overlap and
// their compute integral matches the device's own accounting.
func TestQuickTracerConsistency(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		k := sim.NewKernel(11)
		d := NewDevice(k, testSpec(), 0)
		tr := &UtilTrace{}
		d.SetTracer(tr)
		ctx := d.NewContext()
		for i, r := range raw {
			st := ctx.NewStream()
			op := &Op{Kind: OpKernel, Compute: float64(r)*200 + 1000, AppID: i}
			delay := sim.Time(r % 50)
			k.Go(fmt.Sprintf("a%d", i), func(p *sim.Proc) {
				p.Sleep(delay)
				p.Wait(st.Submit(op))
			})
		}
		k.Run()
		var prev sim.Time
		var integral float64
		for _, seg := range tr.Segments {
			if seg.From < prev || seg.To <= seg.From {
				return false
			}
			prev = seg.To
			integral += float64(seg.To-seg.From) * seg.ComputeUtil
		}
		busy := float64(d.Stats().ComputeBusy)
		diff := integral - busy
		if diff < 0 {
			diff = -diff
		}
		return diff <= float64(len(raw))+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSliceBoundsResidency(t *testing.T) {
	// Two contexts with continuous short kernels: neither context should
	// ever hold the device for much longer than a slice plus one op.
	spec := testSpec()
	spec.TimeSlice = 300
	spec.ContextSwitch = 10
	k := sim.NewKernel(1)
	d := NewDevice(k, spec, 0)
	tr := &UtilTrace{}
	d.SetTracer(tr)
	for i := 0; i < 2; i++ {
		i := i
		ctx := d.NewContext()
		st := ctx.NewStream()
		k.Go(fmt.Sprintf("a%d", i), func(p *sim.Proc) {
			for j := 0; j < 30; j++ {
				p.Wait(st.Submit(&Op{Kind: OpKernel, Compute: 50000, AppID: i}))
			}
		})
	}
	k.Run()
	// Longest run of segments with the same resident context.
	var maxRun, runStart sim.Time
	cur := -2
	for _, seg := range tr.Segments {
		if seg.ResidentCtx != cur {
			cur = seg.ResidentCtx
			runStart = seg.From
		}
		if d := seg.To - runStart; d > maxRun {
			maxRun = d
		}
	}
	// Slice 300us + one 50us op + switch slack.
	if maxRun > 450 {
		t.Fatalf("a context stayed resident %v, want ≤ ~450us", maxRun)
	}
}

func TestConcurrentKernelLimit(t *testing.T) {
	spec := testSpec()
	spec.MaxConcurrentKernels = 4
	k := sim.NewKernel(1)
	d := NewDevice(k, spec, 0)
	ctx := d.NewContext()
	tr := &UtilTrace{}
	d.SetTracer(tr)
	const n = 12
	var maxConc int
	d.SetOnComplete(func(op *Op) {
		if c := len(d.running); c > maxConc {
			maxConc = c
		}
	})
	for i := 0; i < n; i++ {
		st := ctx.NewStream()
		op := &Op{Kind: OpKernel, Compute: 5000, Occupancy: 0.05, AppID: i}
		k.Go(fmt.Sprintf("a%d", i), func(p *sim.Proc) { p.Wait(st.Submit(op)) })
	}
	k.Run()
	if maxConc >= spec.MaxConcurrentKernels {
		t.Fatalf("observed %d concurrent kernels at completion, cap %d", maxConc, spec.MaxConcurrentKernels)
	}
	if got := d.Stats().KernelsDone; got != n {
		t.Fatalf("kernels done = %d, want %d", got, n)
	}
	// Low-occupancy kernels would all space-share without the cap; the cap
	// forces ceil(12/4)=3 waves of 5us each.
	if k.Now() < 15 {
		t.Fatalf("makespan %v too small for 3 capped waves", k.Now())
	}
}
