// Package gpu models a CUDA-class GPU device as a deterministic
// discrete-event system: a compute engine shared by concurrently resident
// kernels, one or two DMA copy engines, device memory, and driver-level
// multiplexing of GPU contexts with a context-switch penalty.
//
// The model exposes exactly the resources the Strings scheduler (SC'14)
// reasons about: copy/compute overlap across CUDA streams, memory-bandwidth
// contention between kernels, space-sharing of under-occupying kernels, and
// the serialization plus switch overhead suffered by separate GPU contexts.
package gpu

import "repro/internal/sim"

// Spec describes the static capabilities of a device. Rates are expressed in
// bytes (or compute units) per microsecond of virtual time.
type Spec struct {
	Name string

	// ComputeRate is the device's peak compute throughput in compute units
	// per microsecond. Workloads are calibrated so that one compute unit is
	// roughly one fused multiply-add.
	ComputeRate float64

	// MemBandwidth is the device-memory bandwidth available to kernels, in
	// bytes per microsecond.
	MemBandwidth float64

	// H2DBandwidth and D2HBandwidth are the host↔device DMA bandwidths in
	// bytes per microsecond (PCIe-derived).
	H2DBandwidth float64
	D2HBandwidth float64

	// CopyEngines is 1 (a single DMA engine shared by both directions,
	// e.g. Quadro 2000) or 2 (independent H2D and D2H engines, e.g. Tesla
	// C2050/C2070).
	CopyEngines int

	// CopyLatency is the fixed per-copy setup cost.
	CopyLatency sim.Time

	// KernelLatency is the fixed launch overhead of a kernel.
	KernelLatency sim.Time

	// ContextSwitch is the cost of making a different GPU context resident.
	ContextSwitch sim.Time

	// TimeSlice bounds how long one context stays resident while other
	// contexts have pending work (driver-level multiplexing granularity).
	TimeSlice sim.Time

	// MaxConcurrentKernels bounds how many kernels the device runs at
	// once (Fermi supports 16 concurrent kernels); 0 selects 16.
	MaxConcurrentKernels int

	// MemBytes is the device memory capacity.
	MemBytes int64

	// Weight is the static relative capability weight assigned by the gPool
	// Creator from the device-property information it collects (CUDA core
	// counts), and consumed by the GWtMin balancing policy. As the paper
	// observes, these static weights "in many cases do not mirror the
	// actual relative differences in application performance" — the
	// Quadro 4000's extra cores clock slower, and no core count predicts
	// PCIe-bound behaviour — which is precisely the headroom the
	// feedback-based policies recover.
	Weight float64

	// SliceProfiles, when non-empty, marks the device partitionable: it can
	// be carved into MIG-style isolated slices of these shapes (see
	// slice.go). Empty — the default, and every testbed card — leaves the
	// device whole, so all pre-slice behaviour is bit-identical.
	SliceProfiles []SliceProfile
}

// Fermi-generation specs used by the paper's testbed. Compute rates are in
// arbitrary units calibrated to the cards' relative single-precision
// throughput. MemBandwidth is the *effective* kernel-visible bandwidth
// (≈⅛ of the published peak, reflecting achievable throughput for the
// latency-bound access patterns of the paper's memory-intensive kernels);
// this is the resource the MBF policy arbitrates.
var (
	// Quadro2000: 192 cores, ~480 GFLOP/s, 41.6 GB/s, one copy engine, 1 GB.
	Quadro2000 = Spec{
		Name:          "Quadro2000",
		ComputeRate:   480e3,
		MemBandwidth:  5.2e3,
		H2DBandwidth:  5.2e3,
		D2HBandwidth:  5.2e3,
		CopyEngines:   1,
		CopyLatency:   8 * sim.Microsecond,
		KernelLatency: 5 * sim.Microsecond,
		ContextSwitch: 700 * sim.Microsecond,
		TimeSlice:     6 * sim.Millisecond,
		MemBytes:      1 << 30,
		Weight:        1.0,
	}

	// Quadro4000: 256 cores, ~486 GFLOP/s, 89.6 GB/s, one copy engine, 2 GB.
	Quadro4000 = Spec{
		Name:          "Quadro4000",
		ComputeRate:   486e3,
		MemBandwidth:  11.2e3,
		H2DBandwidth:  5.6e3,
		D2HBandwidth:  5.6e3,
		CopyEngines:   1,
		CopyLatency:   8 * sim.Microsecond,
		KernelLatency: 5 * sim.Microsecond,
		ContextSwitch: 700 * sim.Microsecond,
		TimeSlice:     6 * sim.Millisecond,
		MemBytes:      2 << 30,
		Weight:        1.33,
	}

	// TeslaC2050: 448 cores, ~1030 GFLOP/s, 144 GB/s, two copy engines, 3 GB.
	TeslaC2050 = Spec{
		Name:          "TeslaC2050",
		ComputeRate:   1030e3,
		MemBandwidth:  18e3,
		H2DBandwidth:  5.8e3,
		D2HBandwidth:  5.8e3,
		CopyEngines:   2,
		CopyLatency:   8 * sim.Microsecond,
		KernelLatency: 5 * sim.Microsecond,
		ContextSwitch: 700 * sim.Microsecond,
		TimeSlice:     6 * sim.Millisecond,
		MemBytes:      3 << 30,
		Weight:        2.33,
	}

	// TeslaC2070: as C2050 with 6 GB of device memory.
	TeslaC2070 = Spec{
		Name:          "TeslaC2070",
		ComputeRate:   1030e3,
		MemBandwidth:  18e3,
		H2DBandwidth:  5.8e3,
		D2HBandwidth:  5.8e3,
		CopyEngines:   2,
		CopyLatency:   8 * sim.Microsecond,
		KernelLatency: 5 * sim.Microsecond,
		ContextSwitch: 700 * sim.Microsecond,
		TimeSlice:     6 * sim.Millisecond,
		MemBytes:      6 << 30,
		Weight:        2.33,
	}
)

// normalized fills in defaults for zero-valued fields so hand-written specs
// in tests stay terse.
func (s Spec) normalized() Spec {
	if s.ComputeRate == 0 {
		s.ComputeRate = 1000e3
	}
	if s.MemBandwidth == 0 {
		s.MemBandwidth = 100e3
	}
	if s.H2DBandwidth == 0 {
		s.H2DBandwidth = 5e3
	}
	if s.D2HBandwidth == 0 {
		s.D2HBandwidth = 5e3
	}
	if s.CopyEngines == 0 {
		s.CopyEngines = 2
	}
	if s.TimeSlice == 0 {
		s.TimeSlice = 2 * sim.Millisecond
	}
	if s.MaxConcurrentKernels == 0 {
		s.MaxConcurrentKernels = 16
	}
	if s.MemBytes == 0 {
		s.MemBytes = 4 << 30
	}
	if s.Weight == 0 {
		s.Weight = 1
	}
	return s
}
