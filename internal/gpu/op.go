package gpu

import (
	"fmt"

	"repro/internal/sim"
)

// OpKind enumerates the work a device executes.
type OpKind int

// Op kinds, in the paper's phase vocabulary: H2D/D2H memcpy and kernel
// launch (KL).
const (
	OpH2D OpKind = iota
	OpD2H
	OpKernel
	// OpMarker is a zero-cost stream marker: it completes the instant it
	// reaches the head of its stream on the resident context. CUDA events
	// are built on it.
	OpMarker
)

// String returns the phase mnemonic used throughout the paper.
func (k OpKind) String() string {
	switch k {
	case OpH2D:
		return "H2D"
	case OpD2H:
		return "D2H"
	case OpKernel:
		return "KL"
	case OpMarker:
		return "MARK"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one unit of device work, issued on a (context, stream) pair. Copies
// carry Bytes; kernels carry Compute work, MemTraffic and Occupancy.
type Op struct {
	Kind OpKind

	// Bytes is the copy size for OpH2D/OpD2H.
	Bytes int64

	// Compute is the kernel's total compute work in compute units.
	Compute float64

	// MemTraffic is the kernel's total device-memory traffic in bytes.
	MemTraffic float64

	// Occupancy in (0,1] is the fraction of the device's compute throughput
	// the kernel can use when running alone. Under-occupying kernels
	// space-share with each other without mutual slowdown.
	Occupancy float64

	// AppID attributes the op to an application for service accounting.
	AppID int

	// Done fires when the op completes. Allocated by Device.Submit if nil.
	Done *sim.Event

	// Timing, filled in by the device.
	Enqueued  sim.Time
	Started   sim.Time
	Finished  sim.Time
	SoloTime  sim.Time // duration the op would take on an idle device
	stream    *Stream
	remaining float64 // normalized remaining work in [0,1] (kernels)
	demandCPU float64 // compute demand fraction while running
	demandBW  float64 // bandwidth demand fraction while running
	soloDur   float64 // solo duration in microseconds (float)
	running   bool
	pooled    bool // drawn from the device free list; recycled on completion
}

// WallTime returns the op's enqueue-to-completion latency.
func (o *Op) WallTime() sim.Time { return o.Finished - o.Enqueued }

// ExecTime returns the op's start-to-completion execution time.
func (o *Op) ExecTime() sim.Time { return o.Finished - o.Started }

// kernelDemands computes the solo duration and resource-demand fractions of a
// kernel on the given spec.
func (o *Op) kernelDemands(spec *Spec) {
	occ := o.Occupancy
	if occ <= 0 || occ > 1 {
		occ = 1
	}
	ct := o.Compute / (spec.ComputeRate * occ) // solo compute time, us
	bt := o.MemTraffic / spec.MemBandwidth     // solo bandwidth time, us
	d := ct
	if bt > d {
		d = bt
	}
	if d <= 0 {
		d = 1 // floor: a kernel costs at least a microsecond
	}
	d += float64(spec.KernelLatency)
	o.soloDur = d
	// Demand fractions: what share of the whole device's compute throughput
	// and memory bandwidth this kernel consumes while it progresses at its
	// solo rate. Occupancy cancels out of the compute demand: a kernel that
	// can only fill 10% of the SMs runs 10× longer but loads the device 10×
	// less at any instant.
	o.demandCPU = (o.Compute / spec.ComputeRate) / d
	o.demandBW = (o.MemTraffic / spec.MemBandwidth) / d
	o.remaining = 1
}

// copyDuration returns the solo duration of a copy op on the given spec.
func (o *Op) copyDuration(spec *Spec) sim.Time {
	bw := spec.H2DBandwidth
	if o.Kind == OpD2H {
		bw = spec.D2HBandwidth
	}
	d := spec.CopyLatency + sim.Time(float64(o.Bytes)/bw+0.5)
	if d <= 0 {
		d = 1
	}
	return d
}
