package gpu

import (
	"testing"

	"repro/internal/sim"
)

func seg(from, to sim.Time, cu float64) UtilSegment {
	return UtilSegment{From: from, To: to, ComputeUtil: cu}
}

func TestUtilTraceMerge(t *testing.T) {
	tr := &UtilTrace{}
	tr.Segment(0, 10, 1, 0, 0, 0)
	tr.Segment(10, 20, 1, 0, 0, 0) // identical adjacent: merged
	tr.Segment(20, 30, 0.5, 0, 0, 0)
	tr.Segment(30, 30, 0.9, 0, 0, 0) // zero length: dropped
	if len(tr.Segments) != 2 {
		t.Fatalf("segments = %d, want 2 (merge+drop)", len(tr.Segments))
	}
	if tr.Segments[0].To != 20 {
		t.Fatalf("merged segment ends at %v, want 20", tr.Segments[0].To)
	}
}

func TestUtilTraceBuckets(t *testing.T) {
	tr := &UtilTrace{Segments: []UtilSegment{seg(0, 50, 1), seg(50, 100, 0)}}
	compute, _ := tr.Buckets(100, 4)
	want := []float64{1, 1, 0, 0}
	for i := range want {
		if d := compute[i] - want[i]; d > 0.01 || d < -0.01 {
			t.Fatalf("buckets = %v, want %v", compute, want)
		}
	}
}

func TestUtilTraceBucketsPartialOverlap(t *testing.T) {
	tr := &UtilTrace{Segments: []UtilSegment{seg(25, 75, 1)}}
	compute, _ := tr.Buckets(100, 2)
	// Bucket 0 covers 0..50: busy 25..50 → 0.5. Bucket 1 covers 50..100:
	// busy 50..75 → 0.5.
	for i, v := range compute {
		if v < 0.49 || v > 0.51 {
			t.Fatalf("bucket %d = %v, want 0.5", i, v)
		}
	}
}

func TestUtilTraceBucketsEdgeCases(t *testing.T) {
	tr := &UtilTrace{Segments: []UtilSegment{seg(0, 10, 1)}}
	if c, b := tr.Buckets(0, 4); len(c) != 4 || len(b) != 4 {
		t.Fatal("zero horizon should still return n buckets")
	}
	if c, _ := tr.Buckets(100, 0); len(c) != 0 {
		t.Fatal("zero buckets should return empty")
	}
}

func TestMeanUtilClampsToHorizon(t *testing.T) {
	tr := &UtilTrace{Segments: []UtilSegment{seg(0, 200, 1)}}
	c, _ := tr.MeanUtil(100)
	if c < 0.99 || c > 1.01 {
		t.Fatalf("mean = %v, want 1 over truncated horizon", c)
	}
	if c, _ := tr.MeanUtil(0); c != 0 {
		t.Fatal("zero horizon mean should be 0")
	}
}

func TestRenderWidthAndGlyphs(t *testing.T) {
	tr := &UtilTrace{Segments: []UtilSegment{seg(0, 25, 1), seg(25, 50, 0.5), seg(50, 100, 0)}}
	s := tr.Render(100, 4)
	r := []rune(s)
	if len(r) != 4 {
		t.Fatalf("render width = %d, want 4", len(r))
	}
	if r[0] != '█' {
		t.Fatalf("first glyph %q, want full block", r[0])
	}
	if r[3] != ' ' {
		t.Fatalf("last glyph %q, want space", r[3])
	}
}

func TestGlitchCountMultipleGaps(t *testing.T) {
	tr := &UtilTrace{Segments: []UtilSegment{
		seg(0, 10, 1), seg(10, 12, 0), seg(12, 20, 1),
		seg(20, 22, 0), seg(22, 30, 1), seg(30, 40, 0),
	}}
	if g := tr.GlitchCount(0.5); g != 2 {
		t.Fatalf("glitches = %d, want 2 (trailing idle is not a glitch)", g)
	}
}

func TestTraceString(t *testing.T) {
	tr := &UtilTrace{}
	if tr.String() != "UtilTrace(empty)" {
		t.Fatalf("empty trace String = %q", tr.String())
	}
	tr.Segment(0, 10, 1, 0, 0, 0)
	if tr.String() == "" {
		t.Fatal("non-empty trace String empty")
	}
}
