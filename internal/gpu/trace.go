package gpu

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// UtilSegment is one interval of constant device state.
type UtilSegment struct {
	From, To    sim.Time
	ComputeUtil float64
	BWUtil      float64
	CopiesBusy  int
	ResidentCtx int
}

// UtilTrace records utilization segments; it implements Tracer. Zero-length
// segments are skipped and adjacent identical segments are merged.
type UtilTrace struct {
	Segments []UtilSegment
}

// Segment implements Tracer.
func (u *UtilTrace) Segment(from, to sim.Time, cu, bu float64, copies, ctx int) {
	if to <= from {
		return
	}
	if n := len(u.Segments); n > 0 {
		last := &u.Segments[n-1]
		if last.To == from && last.ComputeUtil == cu && last.BWUtil == bu &&
			last.CopiesBusy == copies && last.ResidentCtx == ctx {
			last.To = to
			return
		}
	}
	u.Segments = append(u.Segments, UtilSegment{from, to, cu, bu, copies, ctx})
}

// Sample returns the utilization at time t (0 if t falls in a gap).
func (u *UtilTrace) Sample(t sim.Time) (computeUtil, bwUtil float64) {
	for _, s := range u.Segments {
		if t >= s.From && t < s.To {
			return s.ComputeUtil, s.BWUtil
		}
	}
	return 0, 0
}

// Buckets integrates the trace into n equal buckets over [0, horizon] and
// returns per-bucket mean compute and bandwidth utilization. Used to render
// the paper's utilization timelines.
func (u *UtilTrace) Buckets(horizon sim.Time, n int) (compute, bw []float64) {
	compute = make([]float64, n)
	bw = make([]float64, n)
	if horizon <= 0 || n == 0 {
		return
	}
	w := float64(horizon) / float64(n)
	for _, s := range u.Segments {
		from, to := float64(s.From), float64(s.To)
		if from >= float64(horizon) {
			break
		}
		if to > float64(horizon) {
			to = float64(horizon)
		}
		for b := int(from / w); b < n && float64(b)*w < to; b++ {
			lo := float64(b) * w
			hi := lo + w
			if lo < from {
				lo = from
			}
			if hi > to {
				hi = to
			}
			if hi > lo {
				compute[b] += (hi - lo) / w * s.ComputeUtil
				bw[b] += (hi - lo) / w * s.BWUtil
			}
		}
	}
	return
}

// Busy reports whether a segment has any engine active (the coarse "GPU
// busy" measure a utilization counter would show).
func (s UtilSegment) Busy() bool {
	return s.ComputeUtil > 0.005 || s.CopiesBusy > 0
}

// MeanBusy returns the fraction of [0, horizon] with any engine active.
func (u *UtilTrace) MeanBusy(horizon sim.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	var busy float64
	for _, s := range u.Segments {
		to := s.To
		if to > horizon {
			to = horizon
		}
		if to <= s.From {
			continue
		}
		if s.Busy() {
			busy += float64(to - s.From)
		}
	}
	return busy / float64(horizon)
}

// BusyBuckets integrates engine-busy time into n equal buckets over
// [0, horizon].
func (u *UtilTrace) BusyBuckets(horizon sim.Time, n int) []float64 {
	out := make([]float64, n)
	if horizon <= 0 || n == 0 {
		return out
	}
	w := float64(horizon) / float64(n)
	for _, s := range u.Segments {
		if !s.Busy() {
			continue
		}
		from, to := float64(s.From), float64(s.To)
		if from >= float64(horizon) {
			break
		}
		if to > float64(horizon) {
			to = float64(horizon)
		}
		for b := int(from / w); b < n && float64(b)*w < to; b++ {
			lo := float64(b) * w
			hi := lo + w
			if lo < from {
				lo = from
			}
			if hi > to {
				hi = to
			}
			if hi > lo {
				out[b] += (hi - lo) / w
			}
		}
	}
	return out
}

// RenderBusy draws an ASCII strip of engine-busy fraction per bucket.
func (u *UtilTrace) RenderBusy(horizon sim.Time, width int) string {
	var b strings.Builder
	for _, v := range u.BusyBuckets(horizon, width) {
		switch {
		case v < 0.05:
			b.WriteByte(' ')
		case v < 0.30:
			b.WriteRune('░')
		case v < 0.60:
			b.WriteRune('▒')
		case v < 0.90:
			b.WriteRune('▓')
		default:
			b.WriteRune('█')
		}
	}
	return b.String()
}

// BusyGlitchCount counts idle gaps (no engine active) bounded by busy
// periods.
func (u *UtilTrace) BusyGlitchCount() int {
	n := 0
	busyBefore := false
	inGap := false
	for _, s := range u.Segments {
		busy := s.Busy()
		switch {
		case busy && inGap:
			n++
			inGap = false
			busyBefore = true
		case busy:
			busyBefore = true
		case !busy && busyBefore:
			inGap = true
		}
	}
	return n
}

// MeanUtil returns time-weighted mean compute and bandwidth utilization over
// [0, horizon].
func (u *UtilTrace) MeanUtil(horizon sim.Time) (computeUtil, bwUtil float64) {
	if horizon <= 0 {
		return 0, 0
	}
	var c, b float64
	for _, s := range u.Segments {
		to := s.To
		if to > horizon {
			to = horizon
		}
		if to <= s.From {
			continue
		}
		dt := float64(to - s.From)
		c += dt * s.ComputeUtil
		b += dt * s.BWUtil
	}
	return c / float64(horizon), b / float64(horizon)
}

// Render draws an ASCII strip chart of compute utilization, one character per
// bucket (space=idle, ░▒▓█ by quartile). Handy in CLI output for Fig 2.
func (u *UtilTrace) Render(horizon sim.Time, width int) string {
	compute, _ := u.Buckets(horizon, width)
	var b strings.Builder
	for _, v := range compute {
		switch {
		case v < 0.05:
			b.WriteByte(' ')
		case v < 0.30:
			b.WriteRune('░')
		case v < 0.60:
			b.WriteRune('▒')
		case v < 0.90:
			b.WriteRune('▓')
		default:
			b.WriteRune('█')
		}
	}
	return b.String()
}

// GlitchCount returns the number of idle gaps (compute utilization below the
// threshold) bounded on both sides by busy segments — the paper's context
// switching "glitches" in Fig 2.
func (u *UtilTrace) GlitchCount(threshold float64) int {
	n := 0
	busyBefore := false
	inGap := false
	for _, s := range u.Segments {
		busy := s.ComputeUtil >= threshold
		switch {
		case busy && inGap:
			n++
			inGap = false
			busyBefore = true
		case busy:
			busyBefore = true
		case !busy && busyBefore:
			inGap = true
		}
	}
	return n
}

// WriteJSON emits the trace's segments as a JSON array of
// {from_us, to_us, compute, bw, copies, ctx} objects.
func (u *UtilTrace) WriteJSON(w io.Writer) error {
	type seg struct {
		FromUS  int64   `json:"from_us"`
		ToUS    int64   `json:"to_us"`
		Compute float64 `json:"compute"`
		BW      float64 `json:"bw"`
		Copies  int     `json:"copies"`
		Ctx     int     `json:"ctx"`
	}
	out := make([]seg, len(u.Segments))
	for i, s := range u.Segments {
		out[i] = seg{
			FromUS: int64(s.From), ToUS: int64(s.To),
			Compute: s.ComputeUtil, BW: s.BWUtil,
			Copies: s.CopiesBusy, Ctx: s.ResidentCtx,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// String summarizes the trace.
func (u *UtilTrace) String() string {
	if len(u.Segments) == 0 {
		return "UtilTrace(empty)"
	}
	last := u.Segments[len(u.Segments)-1]
	return fmt.Sprintf("UtilTrace(%d segments, %v..%v)", len(u.Segments), u.Segments[0].From, last.To)
}
