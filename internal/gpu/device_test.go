package gpu

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// testSpec is a deliberately round-numbered spec: compute 1000 units/us,
// bandwidth 100 bytes/us, copies 10 bytes/us each direction, no fixed
// latencies, 2 copy engines, 100us context switch, 1ms slice.
func testSpec() Spec {
	return Spec{
		Name:          "test",
		ComputeRate:   1000,
		MemBandwidth:  100,
		H2DBandwidth:  10,
		D2HBandwidth:  10,
		CopyEngines:   2,
		CopyLatency:   0,
		KernelLatency: 0,
		ContextSwitch: 100,
		TimeSlice:     1 * sim.Millisecond,
		MemBytes:      1 << 20,
		Weight:        1,
	}
}

func TestKernelSoloDuration(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	ctx := d.NewContext()
	s := ctx.NewStream()
	op := &Op{Kind: OpKernel, Compute: 50000, MemTraffic: 1000} // 50us compute, 10us bw
	var done sim.Time
	k.Go("app", func(p *sim.Proc) {
		ev := s.Submit(op)
		p.Wait(ev)
		done = p.Now()
	})
	k.Run()
	if done != 50 {
		t.Fatalf("compute-bound kernel finished at %v, want 50us", done)
	}
	if op.SoloTime != 50 {
		t.Fatalf("SoloTime = %v, want 50us", op.SoloTime)
	}
}

func TestMemoryBoundKernelDuration(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	s := d.NewContext().NewStream()
	op := &Op{Kind: OpKernel, Compute: 1000, MemTraffic: 10000} // 1us compute, 100us bw
	var done sim.Time
	k.Go("app", func(p *sim.Proc) {
		p.Wait(s.Submit(op))
		done = p.Now()
	})
	k.Run()
	if done != 100 {
		t.Fatalf("memory-bound kernel finished at %v, want 100us", done)
	}
}

func TestCopyDurations(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	s := d.NewContext().NewStream()
	var h2dDone, d2hDone sim.Time
	k.Go("app", func(p *sim.Proc) {
		p.Wait(s.Submit(&Op{Kind: OpH2D, Bytes: 500})) // 50us at 10 B/us
		h2dDone = p.Now()
		p.Wait(s.Submit(&Op{Kind: OpD2H, Bytes: 200})) // 20us
		d2hDone = p.Now()
	})
	k.Run()
	if h2dDone != 50 {
		t.Fatalf("H2D finished at %v, want 50us", h2dDone)
	}
	if d2hDone != 70 {
		t.Fatalf("D2H finished at %v, want 70us", d2hDone)
	}
}

func TestStreamFIFOOrdering(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	s := d.NewContext().NewStream()
	ops := []*Op{
		{Kind: OpH2D, Bytes: 100},
		{Kind: OpKernel, Compute: 10000},
		{Kind: OpD2H, Bytes: 100},
	}
	var finished []string
	d.SetOnComplete(func(o *Op) { finished = append(finished, o.Kind.String()) })
	k.Go("app", func(p *sim.Proc) {
		var last *sim.Event
		for _, op := range ops {
			last = s.Submit(op)
		}
		p.Wait(last)
	})
	k.Run()
	want := []string{"H2D", "KL", "D2H"}
	for i := range want {
		if finished[i] != want[i] {
			t.Fatalf("completion order %v, want %v", finished, want)
		}
	}
	// FIFO within the stream: each op starts only after the previous ends.
	if ops[1].Started < ops[0].Finished || ops[2].Started < ops[1].Finished {
		t.Fatalf("stream order violated: %+v", ops)
	}
}

func TestTwoComputeBoundKernelsTimeShare(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	ctx := d.NewContext()
	s1, s2 := ctx.NewStream(), ctx.NewStream()
	var t1, t2 sim.Time
	k.Go("a", func(p *sim.Proc) {
		p.Wait(s1.Submit(&Op{Kind: OpKernel, Compute: 50000, AppID: 1}))
		t1 = p.Now()
	})
	k.Go("b", func(p *sim.Proc) {
		p.Wait(s2.Submit(&Op{Kind: OpKernel, Compute: 50000, AppID: 2}))
		t2 = p.Now()
	})
	k.Run()
	// Two fully compute-bound 50us kernels share the device: both finish
	// at ~100us (uniform slowdown 2).
	if t1 < 99 || t1 > 101 || t2 < 99 || t2 > 101 {
		t.Fatalf("co-run compute-bound kernels finished at %v, %v, want ~100us", t1, t2)
	}
}

func TestComputeAndMemoryBoundKernelsOverlap(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	ctx := d.NewContext()
	s1, s2 := ctx.NewStream(), ctx.NewStream()
	var t1, t2 sim.Time
	// Kernel A: compute bound, 100us solo, demands (1.0 cpu, 0.1 bw).
	// Kernel B: memory bound, 100us solo, demands (0.1 cpu, 1.0 bw).
	// Slowdown = max(1, 1.1, 1.1) = 1.1 → both finish ≈ 110us, far better
	// than the 200us serialization — the MBF opportunity.
	k.Go("a", func(p *sim.Proc) {
		p.Wait(s1.Submit(&Op{Kind: OpKernel, Compute: 100000, MemTraffic: 1000, AppID: 1}))
		t1 = p.Now()
	})
	k.Go("b", func(p *sim.Proc) {
		p.Wait(s2.Submit(&Op{Kind: OpKernel, Compute: 10000, MemTraffic: 10000, AppID: 2}))
		t2 = p.Now()
	})
	k.Run()
	if t1 < 105 || t1 > 115 || t2 < 105 || t2 > 115 {
		t.Fatalf("contrasting kernels finished at %v, %v, want ~110us", t1, t2)
	}
}

func TestLowOccupancyKernelsSpaceShare(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	ctx := d.NewContext()
	s1, s2 := ctx.NewStream(), ctx.NewStream()
	var t1, t2 sim.Time
	// Each kernel can only occupy 20% of the device; solo duration
	// 10000/(1000*0.2) = 50us, device-level compute demand 0.2 each.
	// Together: slowdown 1 → both still finish at 50us (space sharing).
	k.Go("a", func(p *sim.Proc) {
		p.Wait(s1.Submit(&Op{Kind: OpKernel, Compute: 10000, Occupancy: 0.2, AppID: 1}))
		t1 = p.Now()
	})
	k.Go("b", func(p *sim.Proc) {
		p.Wait(s2.Submit(&Op{Kind: OpKernel, Compute: 10000, Occupancy: 0.2, AppID: 2}))
		t2 = p.Now()
	})
	k.Run()
	if t1 != 50 || t2 != 50 {
		t.Fatalf("space-shared kernels finished at %v, %v, want 50us", t1, t2)
	}
}

func TestCopyComputeOverlapWithinContext(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	ctx := d.NewContext()
	s1, s2 := ctx.NewStream(), ctx.NewStream()
	var tKernel, tCopy sim.Time
	k.Go("a", func(p *sim.Proc) {
		p.Wait(s1.Submit(&Op{Kind: OpKernel, Compute: 50000, AppID: 1}))
		tKernel = p.Now()
	})
	k.Go("b", func(p *sim.Proc) {
		p.Wait(s2.Submit(&Op{Kind: OpH2D, Bytes: 500, AppID: 2}))
		tCopy = p.Now()
	})
	k.Run()
	if tKernel != 50 || tCopy != 50 {
		t.Fatalf("kernel at %v copy at %v, want both 50us (full overlap)", tKernel, tCopy)
	}
}

func TestH2DAndD2HEnginesIndependent(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	ctx := d.NewContext()
	s1, s2 := ctx.NewStream(), ctx.NewStream()
	var t1, t2 sim.Time
	k.Go("a", func(p *sim.Proc) {
		p.Wait(s1.Submit(&Op{Kind: OpH2D, Bytes: 500}))
		t1 = p.Now()
	})
	k.Go("b", func(p *sim.Proc) {
		p.Wait(s2.Submit(&Op{Kind: OpD2H, Bytes: 500}))
		t2 = p.Now()
	})
	k.Run()
	if t1 != 50 || t2 != 50 {
		t.Fatalf("dual-engine copies at %v, %v, want 50us each", t1, t2)
	}
}

func TestSingleCopyEngineSerializes(t *testing.T) {
	spec := testSpec()
	spec.CopyEngines = 1
	k := sim.NewKernel(1)
	d := NewDevice(k, spec, 0)
	ctx := d.NewContext()
	s1, s2 := ctx.NewStream(), ctx.NewStream()
	var t1, t2 sim.Time
	k.Go("a", func(p *sim.Proc) {
		p.Wait(s1.Submit(&Op{Kind: OpH2D, Bytes: 500}))
		t1 = p.Now()
	})
	k.Go("b", func(p *sim.Proc) {
		p.Wait(s2.Submit(&Op{Kind: OpD2H, Bytes: 500}))
		t2 = p.Now()
	})
	k.Run()
	if t1 != 50 || t2 != 100 {
		t.Fatalf("single-engine copies at %v, %v, want 50us and 100us", t1, t2)
	}
}

func TestSeparateContextsSerializeWithSwitchCost(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	c1, c2 := d.NewContext(), d.NewContext()
	s1, s2 := c1.NewStream(), c2.NewStream()
	var t1, t2 sim.Time
	k.Go("a", func(p *sim.Proc) {
		p.Wait(s1.Submit(&Op{Kind: OpKernel, Compute: 50000, AppID: 1}))
		t1 = p.Now()
	})
	k.Go("b", func(p *sim.Proc) {
		p.Wait(s2.Submit(&Op{Kind: OpKernel, Compute: 50000, AppID: 2}))
		t2 = p.Now()
	})
	k.Run()
	// First kernel runs 0..50; switch 100us; second runs 150..200.
	if t1 != 50 {
		t.Fatalf("first context kernel at %v, want 50us", t1)
	}
	if t2 != 200 {
		t.Fatalf("second context kernel at %v, want 200us (switch cost included)", t2)
	}
	if d.Stats().Switches != 1 {
		t.Fatalf("switches = %d, want 1", d.Stats().Switches)
	}
}

func TestContextTimeSlicePreventsStarvation(t *testing.T) {
	spec := testSpec()
	spec.TimeSlice = 200 // tight slice
	k := sim.NewKernel(1)
	d := NewDevice(k, spec, 0)
	c1, c2 := d.NewContext(), d.NewContext()
	s1, s2 := c1.NewStream(), c2.NewStream()
	var t2 sim.Time
	// Context 1 continuously feeds 100us kernels; context 2 has one kernel.
	k.Go("hog", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			p.Wait(s1.Submit(&Op{Kind: OpKernel, Compute: 100000, AppID: 1}))
		}
	})
	k.Go("victim", func(p *sim.Proc) {
		p.Sleep(10) // arrive while hog is resident
		p.Wait(s2.Submit(&Op{Kind: OpKernel, Compute: 10000, AppID: 2}))
		t2 = p.Now()
	})
	k.Run()
	// Without slicing the victim would wait 1000us+; with a 200us slice it
	// gets in after roughly two hog kernels plus a switch.
	if t2 > 500 {
		t.Fatalf("victim finished at %v; time slice failed to bound waiting", t2)
	}
	if d.Stats().Switches == 0 {
		t.Fatal("no context switches recorded")
	}
}

func TestSingleContextNeverSwitches(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	ctx := d.NewContext()
	s1, s2 := ctx.NewStream(), ctx.NewStream()
	k.Go("a", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			p.Wait(s1.Submit(&Op{Kind: OpKernel, Compute: 30000, AppID: 1}))
		}
	})
	k.Go("b", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			p.Wait(s2.Submit(&Op{Kind: OpKernel, Compute: 30000, AppID: 2}))
		}
	})
	k.Run()
	if s := d.Stats(); s.Switches != 0 {
		t.Fatalf("switches = %d for a single shared context, want 0", s.Switches)
	}
}

func TestAppServiceAccounting(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	s := d.NewContext().NewStream()
	k.Go("app", func(p *sim.Proc) {
		p.Wait(s.Submit(&Op{Kind: OpKernel, Compute: 50000, AppID: 7}))
		p.Wait(s.Submit(&Op{Kind: OpH2D, Bytes: 300, AppID: 7}))
	})
	k.Run()
	if got := d.AppService(7); got < 79 || got > 81 {
		t.Fatalf("AppService = %v, want ~80us (50 kernel + 30 copy)", got)
	}
	if got := d.AppTransferTime(7); got != 30 {
		t.Fatalf("AppTransferTime = %v, want 30us", got)
	}
	if ids := d.AppIDs(); len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("AppIDs = %v", ids)
	}
}

func TestMemoryAllocGuard(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0) // 1 MiB
	if err := d.Alloc(1 << 19); err != nil {
		t.Fatalf("first alloc failed: %v", err)
	}
	if err := d.Alloc(1 << 19); err != nil {
		t.Fatalf("second alloc failed: %v", err)
	}
	if err := d.Alloc(1); err == nil {
		t.Fatal("over-capacity alloc succeeded")
	}
	d.Free(1 << 19)
	if err := d.Alloc(1); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
	if d.MemUsed() != (1<<19)+1 {
		t.Fatalf("MemUsed = %d", d.MemUsed())
	}
	if err := d.Alloc(-5); err == nil {
		t.Fatal("negative alloc succeeded")
	}
}

func TestFreeTooMuchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on over-free")
		}
	}()
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	d.Free(1)
}

func TestUtilizationAccounting(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	s := d.NewContext().NewStream()
	k.Go("app", func(p *sim.Proc) {
		p.Wait(s.Submit(&Op{Kind: OpKernel, Compute: 100000, AppID: 1})) // 100us full compute
	})
	k.Run()
	st := d.Stats()
	if st.ComputeBusy < 99 || st.ComputeBusy > 101 {
		t.Fatalf("ComputeBusy = %v, want ~100us", st.ComputeBusy)
	}
	if st.KernelsDone != 1 {
		t.Fatalf("KernelsDone = %d", st.KernelsDone)
	}
}

func TestTracerSegments(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	tr := &UtilTrace{}
	d.SetTracer(tr)
	s := d.NewContext().NewStream()
	k.Go("app", func(p *sim.Proc) {
		p.Wait(s.Submit(&Op{Kind: OpKernel, Compute: 50000, AppID: 1}))
		p.Sleep(50)
		p.Wait(s.Submit(&Op{Kind: OpKernel, Compute: 50000, AppID: 1}))
	})
	k.Run()
	cu, _ := tr.Sample(25)
	if cu < 0.99 {
		t.Fatalf("utilization at 25us = %v, want ~1", cu)
	}
	cu, _ = tr.Sample(75)
	if cu > 0.01 {
		t.Fatalf("utilization at 75us = %v, want ~0 (idle gap)", cu)
	}
	mc, _ := tr.MeanUtil(150)
	if mc < 0.6 || mc > 0.72 {
		t.Fatalf("mean compute util = %v, want ~2/3", mc)
	}
	if g := tr.GlitchCount(0.5); g != 1 {
		t.Fatalf("glitches = %d, want 1", g)
	}
}

func TestQueuedOps(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	s := d.NewContext().NewStream()
	k.Go("app", func(p *sim.Proc) {
		var last *sim.Event
		for i := 0; i < 3; i++ {
			last = s.Submit(&Op{Kind: OpKernel, Compute: 10000})
		}
		if d.QueuedOps() != 3 {
			t.Errorf("QueuedOps = %d right after submit, want 3", d.QueuedOps())
		}
		p.Wait(last)
		if d.QueuedOps() != 0 {
			t.Errorf("QueuedOps = %d after drain, want 0", d.QueuedOps())
		}
	})
	k.Run()
}

func TestDeviceClose(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	k.Go("closer", func(p *sim.Proc) {
		p.Sleep(10)
		d.Close()
	})
	k.Run()
	if n := k.ProcCount(); n != 0 {
		t.Fatalf("%d processes alive after Close, want 0", n)
	}
}

func TestOpKindString(t *testing.T) {
	if OpH2D.String() != "H2D" || OpD2H.String() != "D2H" || OpKernel.String() != "KL" {
		t.Fatal("OpKind mnemonics wrong")
	}
	if OpKind(9).String() != "OpKind(9)" {
		t.Fatal("unknown OpKind formatting wrong")
	}
}

// Property: work conservation — for any batch of kernels on one context, the
// device's total compute-busy integral equals the sum of the kernels' solo
// compute demands (nothing lost, nothing double-counted), and the makespan is
// at least the max solo duration and at most the sum.
func TestQuickKernelWorkConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		k := sim.NewKernel(2)
		d := NewDevice(k, testSpec(), 0)
		ctx := d.NewContext()
		var totalSolo float64
		var maxSolo, sumSolo sim.Time
		for i, r := range raw {
			c := float64(r%5000+1000) * 10 // compute units
			op := &Op{Kind: OpKernel, Compute: c, AppID: i}
			st := ctx.NewStream()
			solo := sim.Time(c / 1000)
			if solo > maxSolo {
				maxSolo = solo
			}
			sumSolo += solo
			totalSolo += c / 1000
			k.Go(fmt.Sprintf("a%d", i), func(p *sim.Proc) {
				p.Wait(st.Submit(op))
			})
		}
		k.Run()
		makespan := k.Now()
		if makespan < maxSolo-1 || makespan > sumSolo+sim.Time(len(raw)) {
			return false
		}
		busy := float64(d.Stats().ComputeBusy)
		diff := busy - totalSolo
		if diff < 0 {
			diff = -diff
		}
		return diff <= float64(len(raw))+1 // rounding slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: stream FIFO — ops submitted on one stream always start in order
// and never overlap, for arbitrary op mixes.
func TestQuickStreamFIFO(t *testing.T) {
	f := func(kinds []uint8) bool {
		if len(kinds) == 0 || len(kinds) > 20 {
			return true
		}
		k := sim.NewKernel(3)
		d := NewDevice(k, testSpec(), 0)
		s := d.NewContext().NewStream()
		ops := make([]*Op, len(kinds))
		for i, kind := range kinds {
			switch kind % 3 {
			case 0:
				ops[i] = &Op{Kind: OpH2D, Bytes: int64(kind)*7 + 10}
			case 1:
				ops[i] = &Op{Kind: OpD2H, Bytes: int64(kind)*5 + 10}
			default:
				ops[i] = &Op{Kind: OpKernel, Compute: float64(kind)*100 + 1000}
			}
		}
		k.Go("app", func(p *sim.Proc) {
			var last *sim.Event
			for _, op := range ops {
				last = s.Submit(op)
			}
			p.Wait(last)
		})
		k.Run()
		for i := 1; i < len(ops); i++ {
			if ops[i].Started < ops[i-1].Finished {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: contexts are exclusive — with ops spread over two contexts, no
// two ops from different contexts ever execute concurrently.
func TestQuickContextExclusion(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 || len(raw) > 16 {
			return true
		}
		k := sim.NewKernel(4)
		d := NewDevice(k, testSpec(), 0)
		c1, c2 := d.NewContext(), d.NewContext()
		var ops1, ops2 []*Op
		for i, r := range raw {
			op := &Op{Kind: OpKernel, Compute: float64(r)*50 + 500, AppID: i}
			if i%2 == 0 {
				st := c1.NewStream()
				ops1 = append(ops1, op)
				k.Go(fmt.Sprintf("a%d", i), func(p *sim.Proc) { p.Wait(st.Submit(op)) })
			} else {
				st := c2.NewStream()
				ops2 = append(ops2, op)
				k.Go(fmt.Sprintf("b%d", i), func(p *sim.Proc) { p.Wait(st.Submit(op)) })
			}
		}
		k.Run()
		for _, a := range ops1 {
			for _, b := range ops2 {
				if a.Started < b.Finished && b.Started < a.Finished {
					return false // overlap across contexts
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
