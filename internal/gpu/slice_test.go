package gpu

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sim"
)

func migSpec() Spec { return testSpec().WithMIG() }

func TestMIGProfilesShape(t *testing.T) {
	ps := MIGProfiles(800)
	want := []SliceProfile{
		{"1g", 1, 100}, {"2g", 2, 200}, {"3g", 3, 400}, {"4g", 4, 400}, {"7g", 7, 800},
	}
	if len(ps) != len(want) {
		t.Fatalf("got %d profiles, want %d", len(ps), len(want))
	}
	for i, p := range ps {
		if p != want[i] {
			t.Fatalf("profile %d = %+v, want %+v", i, p, want[i])
		}
	}
}

func TestWithMIGAndProfileByName(t *testing.T) {
	s := testSpec()
	if s.Partitionable() {
		t.Fatal("plain spec must not be partitionable")
	}
	m := s.WithMIG()
	if !m.Partitionable() {
		t.Fatal("WithMIG spec must be partitionable")
	}
	p, ok := m.ProfileByName("3g")
	if !ok || p.Frac != 3 || p.MemBytes != s.MemBytes/2 {
		t.Fatalf("3g = %+v ok=%v, want frac 3 mem %d", p, ok, s.MemBytes/2)
	}
	if _, ok := m.ProfileByName("9g"); ok {
		t.Fatal("unknown profile must not resolve")
	}
}

func TestSliceSpecScaling(t *testing.T) {
	parent := migSpec()
	p, _ := parent.ProfileByName("2g")
	sl := parent.Slice(p)
	if sl.Name != parent.Name+"/2g" {
		t.Fatalf("slice name %q", sl.Name)
	}
	f := 2.0 / SliceFractions
	if sl.ComputeRate != parent.ComputeRate*f || sl.MemBandwidth != parent.MemBandwidth*f {
		t.Fatalf("rates not scaled by %v: %+v", f, sl)
	}
	if sl.MemBytes != p.MemBytes {
		t.Fatalf("slice mem %d, want %d", sl.MemBytes, p.MemBytes)
	}
	if sl.Partitionable() {
		t.Fatal("a slice must not be re-sliceable")
	}
	if sl.MaxConcurrentKernels < 1 {
		t.Fatalf("MaxConcurrentKernels %d < 1", sl.MaxConcurrentKernels)
	}
	// A slice spec must make a working device.
	k := sim.NewKernel(1)
	d := NewDevice(k, sl, 1)
	ctx := d.NewContext()
	st := ctx.NewStream()
	var done sim.Time
	k.Go("app", func(p *sim.Proc) {
		ev := st.Submit(&Op{Kind: OpKernel, Compute: 1000})
		p.Wait(ev)
		done = p.Now()
	})
	k.Run()
	if done <= 0 {
		t.Fatal("kernel on slice device never completed")
	}
}

func TestNewPartitionValidation(t *testing.T) {
	if _, err := NewPartition(testSpec()); err == nil {
		t.Fatal("want error for non-partitionable spec")
	}
	bad := testSpec()
	bad.SliceProfiles = []SliceProfile{{Name: "x", Frac: 9, MemBytes: 1}}
	if _, err := NewPartition(bad); err == nil {
		t.Fatal("want error for out-of-range fraction")
	}
	bad.SliceProfiles = []SliceProfile{{Name: "x", Frac: 1, MemBytes: bad.MemBytes * 2}}
	if _, err := NewPartition(bad); err == nil {
		t.Fatal("want error for oversized profile memory")
	}
	pt, err := NewPartition(migSpec())
	if err != nil {
		t.Fatalf("NewPartition: %v", err)
	}
	if pt.FreeFrac() != SliceFractions || pt.FreeMem() != testSpec().MemBytes {
		t.Fatalf("fresh partition free = %d/%d", pt.FreeFrac(), pt.FreeMem())
	}
	if !pt.Spec().Partitionable() {
		t.Fatal("partition spec lost its profile table")
	}
}

func TestPartitionCarveRelease(t *testing.T) {
	pt, _ := NewPartition(migSpec())
	id3, spec3, err := pt.Carve("3g")
	if err != nil {
		t.Fatalf("carve 3g: %v", err)
	}
	if !strings.HasSuffix(spec3.Name, "/3g") {
		t.Fatalf("slice spec name %q", spec3.Name)
	}
	id4, _, err := pt.Carve("4g")
	if err != nil {
		t.Fatalf("carve 4g: %v", err)
	}
	if pt.FreeFrac() != 0 || pt.FreeMem() != 0 {
		t.Fatalf("free after 3g+4g = %d/%d, want 0/0", pt.FreeFrac(), pt.FreeMem())
	}
	if _, _, err := pt.Carve("1g"); err == nil {
		t.Fatal("carve into a full device must fail")
	}
	if _, _, err := pt.Carve("nope"); err == nil {
		t.Fatal("unknown profile must fail")
	}
	if len(pt.Slices()) != 2 {
		t.Fatalf("live slices = %d, want 2", len(pt.Slices()))
	}
	if err := pt.Release(id3); err != nil {
		t.Fatalf("release: %v", err)
	}
	if pt.FreeFrac() != 3 || pt.FreeMem() != testSpec().MemBytes/2 {
		t.Fatalf("free after releasing 3g = %d/%d", pt.FreeFrac(), pt.FreeMem())
	}
	if err := pt.Release(id3); err == nil {
		t.Fatal("double release must fail")
	}
	if err := pt.Release(id4); err != nil {
		t.Fatalf("release: %v", err)
	}
	if pt.FreeFrac() != SliceFractions || pt.FreeMem() != testSpec().MemBytes {
		t.Fatalf("capacity did not fully return: %d/%d", pt.FreeFrac(), pt.FreeMem())
	}
}

// TestPartitionInvariantsProperty drives a seeded random carve/release
// schedule against a shadow ledger and checks, at every step, that the carved
// totals never exceed the parent in either dimension and that each release
// returns exactly the capacity its carve took.
func TestPartitionInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	spec := migSpec()
	names := []string{"1g", "2g", "3g", "4g", "7g"}
	for trial := 0; trial < 50; trial++ {
		pt, err := NewPartition(spec)
		if err != nil {
			t.Fatalf("NewPartition: %v", err)
		}
		type live struct {
			id   int
			prof SliceProfile
		}
		var lives []live
		check := func(step int) {
			t.Helper()
			usedFrac, usedMem := 0, int64(0)
			for _, l := range lives {
				usedFrac += l.prof.Frac
				usedMem += l.prof.MemBytes
			}
			if usedFrac > SliceFractions || usedMem > spec.MemBytes {
				t.Fatalf("trial %d step %d: carved %d/7 frac, %d bytes exceeds parent",
					trial, step, usedFrac, usedMem)
			}
			if pt.FreeFrac() != SliceFractions-usedFrac || pt.FreeMem() != spec.MemBytes-usedMem {
				t.Fatalf("trial %d step %d: ledger free %d/%d, shadow says %d/%d",
					trial, step, pt.FreeFrac(), pt.FreeMem(),
					SliceFractions-usedFrac, spec.MemBytes-usedMem)
			}
			if len(pt.Slices()) != len(lives) {
				t.Fatalf("trial %d step %d: %d live slices, shadow has %d",
					trial, step, len(pt.Slices()), len(lives))
			}
		}
		for step := 0; step < 200; step++ {
			if rng.Intn(2) == 0 || len(lives) == 0 {
				name := names[rng.Intn(len(names))]
				p, _ := spec.ProfileByName(name)
				fits := pt.Fits(p)
				id, sl, err := pt.Carve(name)
				if fits != (err == nil) {
					t.Fatalf("trial %d step %d: Fits(%s)=%v but Carve err=%v",
						trial, step, name, fits, err)
				}
				if err == nil {
					if sl.MemBytes != p.MemBytes || sl.Partitionable() {
						t.Fatalf("trial %d step %d: bad slice spec %+v", trial, step, sl)
					}
					lives = append(lives, live{id, p})
				}
			} else {
				i := rng.Intn(len(lives))
				if err := pt.Release(lives[i].id); err != nil {
					t.Fatalf("trial %d step %d: release live slice: %v", trial, step, err)
				}
				lives = append(lives[:i], lives[i+1:]...)
			}
			check(step)
		}
		// Drain: releasing everything must restore the full device.
		for _, l := range lives {
			if err := pt.Release(l.id); err != nil {
				t.Fatalf("trial %d drain: %v", trial, err)
			}
		}
		if pt.FreeFrac() != SliceFractions || pt.FreeMem() != spec.MemBytes {
			t.Fatalf("trial %d: drained partition free %d/%d, want full",
				trial, pt.FreeFrac(), pt.FreeMem())
		}
	}
}
