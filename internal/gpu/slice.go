package gpu

import "fmt"

// MIG-style device partitioning. A partitionable device (Spec.SliceProfiles
// non-empty) can be carved into isolated slices: each slice owns a fixed
// compute fraction (expressed in sevenths, after NVIDIA's GPU-instance
// granularity), a dedicated share of memory bandwidth, and a dedicated
// memory capacity. A slice is served by its own Device (see Spec.Slice),
// so slices get private resident-context multiplexing and zero cross-slice
// interference by construction — the 2020s hardware answer to the paper's
// software context-packing story.

// SliceFractions is the compute-fraction denominator: profiles are sized in
// sevenths of the parent device, mirroring MIG's seven GPU slices.
const SliceFractions = 7

// SliceProfile describes one allowed slice shape on a partitionable device.
type SliceProfile struct {
	// Name is the profile's short code ("1g", "2g", ... "7g").
	Name string

	// Frac is the compute fraction in sevenths (1..7). The slice receives
	// Frac/7 of the parent's compute throughput and memory bandwidth.
	Frac int

	// MemBytes is the slice's dedicated device-memory capacity. MIG memory
	// shares are deliberately NOT proportional to compute (a 3g instance
	// owns half the memory of the device); the disproportion is what makes
	// placement fragment.
	MemBytes int64
}

// MIGProfiles returns the standard MIG-style profile table for a device with
// the given memory capacity, following the A100 1g/2g/3g/4g/7g shapes:
// memory shares of 1/8, 1/4, 1/2, 1/2 and the whole device.
func MIGProfiles(memBytes int64) []SliceProfile {
	return []SliceProfile{
		{Name: "1g", Frac: 1, MemBytes: memBytes / 8},
		{Name: "2g", Frac: 2, MemBytes: memBytes / 4},
		{Name: "3g", Frac: 3, MemBytes: memBytes / 2},
		{Name: "4g", Frac: 4, MemBytes: memBytes / 2},
		{Name: "7g", Frac: 7, MemBytes: memBytes},
	}
}

// WithMIG returns a copy of the spec carrying the standard MIG profile table
// sized to the spec's memory — the one-liner that turns a testbed card into
// a partitionable device.
func (s Spec) WithMIG() Spec {
	s.SliceProfiles = MIGProfiles(s.normalized().MemBytes)
	return s
}

// Partitionable reports whether the spec allows slicing.
func (s Spec) Partitionable() bool { return len(s.SliceProfiles) > 0 }

// ProfileByName resolves a profile name against the spec's table.
func (s Spec) ProfileByName(name string) (SliceProfile, bool) {
	for _, p := range s.SliceProfiles {
		if p.Name == name {
			return p, true
		}
	}
	return SliceProfile{}, false
}

// Slice derives the isolated slice device spec for a profile: the parent's
// rates scaled by the compute fraction, the profile's dedicated memory, and
// no further partitioning (slices are not re-sliceable).
func (s Spec) Slice(p SliceProfile) Spec {
	out := s.normalized()
	f := float64(p.Frac) / SliceFractions
	out.Name = s.Name + "/" + p.Name
	out.ComputeRate *= f
	out.MemBandwidth *= f
	out.H2DBandwidth *= f
	out.D2HBandwidth *= f
	out.MemBytes = p.MemBytes
	out.Weight = out.Weight * f
	if mck := out.MaxConcurrentKernels * p.Frac / SliceFractions; mck >= 1 {
		out.MaxConcurrentKernels = mck
	} else {
		out.MaxConcurrentKernels = 1
	}
	out.SliceProfiles = nil
	return out
}

// CarvedSlice is one live slice on a Partition.
type CarvedSlice struct {
	ID      int
	Profile SliceProfile
}

// Partition is the reconfiguration ledger of one partitionable device: it
// tracks the compute sevenths and memory bytes consumed by live slices and
// enforces the carve invariants (never over-commit either dimension;
// releasing a slice returns exactly what it carved). The placement layer
// keeps its own capacity view in the DST; the Partition is the device-side
// source of truth the two are reconciled against.
type Partition struct {
	spec     Spec
	freeFrac int
	freeMem  int64
	carved   []CarvedSlice // live slices in carve order
	nextID   int
}

// NewPartition creates the ledger for a partitionable spec.
func NewPartition(spec Spec) (*Partition, error) {
	n := spec.normalized()
	n.SliceProfiles = spec.SliceProfiles
	if !n.Partitionable() {
		return nil, fmt.Errorf("gpu: %s is not partitionable (no slice profiles)", n.Name)
	}
	for _, p := range n.SliceProfiles {
		if p.Frac < 1 || p.Frac > SliceFractions || p.MemBytes <= 0 || p.MemBytes > n.MemBytes {
			return nil, fmt.Errorf("gpu: %s: invalid slice profile %+v", n.Name, p)
		}
	}
	return &Partition{spec: n, freeFrac: SliceFractions, freeMem: n.MemBytes}, nil
}

// Spec returns the parent spec (normalized, profiles attached).
func (pt *Partition) Spec() Spec { return pt.spec }

// FreeFrac returns the uncarved compute sevenths.
func (pt *Partition) FreeFrac() int { return pt.freeFrac }

// FreeMem returns the uncarved memory bytes.
func (pt *Partition) FreeMem() int64 { return pt.freeMem }

// Slices returns the live slices in carve order. Callers must not mutate
// the returned slice.
func (pt *Partition) Slices() []CarvedSlice { return pt.carved }

// Fits reports whether a profile can be carved right now.
func (pt *Partition) Fits(p SliceProfile) bool {
	return p.Frac <= pt.freeFrac && p.MemBytes <= pt.freeMem
}

// Carve reserves capacity for the named profile and returns the slice's id
// and device spec. It fails — leaving the ledger untouched — when the
// profile is unknown or either dimension would over-commit.
func (pt *Partition) Carve(name string) (int, Spec, error) {
	p, ok := pt.spec.ProfileByName(name)
	if !ok {
		return 0, Spec{}, fmt.Errorf("gpu: %s: unknown slice profile %q", pt.spec.Name, name)
	}
	if !pt.Fits(p) {
		return 0, Spec{}, fmt.Errorf("gpu: %s: profile %s does not fit (%d/7 compute, %d bytes free)",
			pt.spec.Name, name, pt.freeFrac, pt.freeMem)
	}
	pt.freeFrac -= p.Frac
	pt.freeMem -= p.MemBytes
	id := pt.nextID
	pt.nextID++
	pt.carved = append(pt.carved, CarvedSlice{ID: id, Profile: p})
	return id, pt.spec.Slice(p), nil
}

// Release destroys a live slice, returning exactly the capacity it carved.
func (pt *Partition) Release(id int) error {
	for i, c := range pt.carved {
		if c.ID == id {
			pt.freeFrac += c.Profile.Frac
			pt.freeMem += c.Profile.MemBytes
			pt.carved = append(pt.carved[:i], pt.carved[i+1:]...)
			if pt.freeFrac > SliceFractions || pt.freeMem > pt.spec.MemBytes {
				panic(fmt.Sprintf("gpu: %s: slice release over-returned capacity (%d/7, %d bytes)",
					pt.spec.Name, pt.freeFrac, pt.freeMem))
			}
			return nil
		}
	}
	return fmt.Errorf("gpu: %s: release of unknown slice %d", pt.spec.Name, id)
}
