package gpu

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Device is a simulated GPU. Work is submitted on streams belonging to
// contexts; a driver process multiplexes contexts onto the hardware (only the
// resident context's ops execute), dispatches stream-head ops onto the
// compute and copy engines, and advances a processor-sharing model of
// concurrent kernel execution.
type Device struct {
	k    *sim.Kernel
	spec Spec
	id   int

	contexts []*Context
	nextCtx  int
	resident *Context
	residing sim.Time // when the resident context became resident
	draining bool     // stop dispatching: waiting to switch contexts

	kick   *sim.Signal
	kicked bool
	closed bool

	// Compute engine: the set of concurrently running kernels under a
	// uniform processor-sharing slowdown.
	running  []*Op
	slowdown float64
	lastEval sim.Time

	// Copy engines. With one copy engine both directions share h2d.
	h2d copyEngine
	d2h copyEngine

	memUsed      int64
	memHighWater int64
	memQ         sim.Ring[*memWaiter] // admission-control FIFO (AllocBlocking)
	memWaitFree  []*memWaiter         // recycled waiter records

	tracer     Tracer
	onComplete func(*Op)
	opFree     []*Op // recycled pool-managed ops (see GetOp)

	// Accounting.
	busyCompute float64 // integral of compute utilization (microseconds)
	busyBW      float64 // integral of bandwidth utilization (microseconds)
	switches    int
	switchTime  sim.Time
	kernelsDone int
	copiesDone  int
	appService  map[int]float64 // attained GPU service per AppID, microseconds
	appXferTime map[int]float64 // attained copy-engine time per AppID
	appMemTraf  map[int]float64 // device-memory traffic per AppID, bytes
	appSwitch   map[int]float64 // context-switch cost charged per AppID
}

type copyEngine struct {
	queue   sim.Ring[*Op]
	cur     *Op
	curDone sim.Time
	busy    float64 // integral of busy time
}

// Tracer receives utilization segments as the device state evolves; used to
// reconstruct Fig 1/2-style utilization timelines.
type Tracer interface {
	Segment(from, to sim.Time, computeUtil, bwUtil float64, copiesBusy int, residentCtx int)
}

// NewDevice creates a device with the given spec and identifier and starts
// its driver process on k.
func NewDevice(k *sim.Kernel, spec Spec, id int) *Device {
	d := &Device{
		k:           k,
		spec:        spec.normalized(),
		id:          id,
		kick:        k.NewSignal(),
		slowdown:    1,
		appService:  make(map[int]float64),
		appXferTime: make(map[int]float64),
		appMemTraf:  make(map[int]float64),
		appSwitch:   make(map[int]float64),
	}
	k.Go(fmt.Sprintf("gpu%d-driver", id), d.driver)
	return d
}

// ID returns the device's local identifier.
func (d *Device) ID() int { return d.id }

// Spec returns the device's capabilities.
func (d *Device) Spec() Spec { return d.spec }

// SetTracer installs a utilization tracer. Pass nil to disable.
func (d *Device) SetTracer(t Tracer) { d.tracer = t }

// SetOnComplete installs a completion callback invoked for every finished op
// (after its Done event fires). Used by the Request Monitor.
func (d *Device) SetOnComplete(fn func(*Op)) { d.onComplete = fn }

// Close shuts the driver down once it next wakes. Pending work is abandoned.
func (d *Device) Close() {
	d.closed = true
	d.wake()
}

// Context is a GPU protection domain. Ops from different contexts never
// execute concurrently; switching the resident context costs
// Spec.ContextSwitch.
type Context struct {
	dev        *Device
	id         int
	streams    []*Stream
	nextStream int
	pending    int // ops queued or running

	// Owner attributes the context to an application (-1 when shared).
	// When the driver switches to an owned context, the switch cost is
	// charged to the owner's attained service — exactly the accounting
	// error the paper identifies in per-process-context schedulers.
	Owner int
}

// NewContext creates a context on the device.
func (d *Device) NewContext() *Context {
	c := &Context{dev: d, id: len(d.contexts), Owner: -1}
	d.contexts = append(d.contexts, c)
	return c
}

// ID returns the context's identifier on its device.
func (c *Context) ID() int { return c.id }

// Device returns the context's device.
func (c *Context) Device() *Device { return c.dev }

// Stream is an in-order op queue within a context; ops on different streams
// of the resident context execute concurrently.
type Stream struct {
	ctx   *Context
	id    int
	queue sim.Ring[*Op]
	busy  bool // head op dispatched to an engine and not yet finished
}

// NewStream creates a stream in the context.
func (c *Context) NewStream() *Stream {
	s := &Stream{ctx: c, id: c.nextStream}
	c.nextStream++
	c.streams = append(c.streams, s)
	return s
}

// DestroyStream removes a drained stream from the context. The driver's
// dispatch loop scans every stream of the resident context on every
// evaluation, so a long-lived packed context must shed dead streams or the
// scan grows with every application ever served — quadratic over a
// million-request run. Only idle streams are removed (the CUDA layer drains
// a stream before destroying it); a stream with queued or in-flight work is
// left in place.
func (c *Context) DestroyStream(s *Stream) {
	if s == nil || s.ctx != c || s.busy || s.queue.Len() > 0 {
		return
	}
	for i, x := range c.streams {
		if x == s {
			// Splice, preserving creation order: dispatch iterates this
			// slice, and the relative order of live streams is part of the
			// deterministic schedule.
			c.streams = append(c.streams[:i], c.streams[i+1:]...)
			break
		}
	}
	s.ctx = nil
}

// ID returns the stream's identifier within its context.
func (s *Stream) ID() int { return s.id }

// Context returns the stream's context.
func (s *Stream) Context() *Context { return s.ctx }

// Pending returns the number of queued (undispatched) ops on the stream.
func (s *Stream) Pending() int { return s.queue.Len() }

// Submit enqueues op on the stream and returns the op's completion event.
// The op executes after all earlier ops on the same stream, when the stream's
// context is resident and an engine is available.
func (s *Stream) Submit(op *Op) *sim.Event {
	d := s.ctx.dev
	if op.Done == nil {
		op.Done = d.k.NewEvent() //lint:allow hotalloc -- cold fallback for unpooled ops (markers, tests); the op path arrives with a pooled Done
	}
	op.stream = s
	op.Enqueued = d.k.Now()
	s.queue.Push(op)
	s.ctx.pending++
	d.wake()
	return op.Done
}

// GetOp returns an op of the given kind drawn from the device's free list.
// Pool-managed ops are recycled automatically when they finish, so the caller
// must not retain the op past its Done event (retain the event instead, or
// build on unpooled &Op{} literals — markers, tests — which are never
// recycled).
func (d *Device) GetOp(kind OpKind) *Op {
	if n := len(d.opFree); n > 0 {
		op := d.opFree[n-1]
		d.opFree[n-1] = nil
		d.opFree = d.opFree[:n-1]
		op.Kind = kind
		return op
	}
	return &Op{Kind: kind, pooled: true}
}

// PutOp returns a pool-managed op that was never submitted (an error path) to
// the free list. A no-op for unpooled ops.
func (d *Device) PutOp(op *Op) {
	if op != nil && op.pooled {
		d.recycleOp(op)
	}
}

// recycleOp zeroes a pooled op and returns it to the free list.
func (d *Device) recycleOp(op *Op) {
	*op = Op{pooled: true}
	d.opFree = append(d.opFree, op) //lint:allow hotalloc -- free-list growth is amortized, bounded by peak in-flight ops
}

// Alloc reserves device memory, failing when capacity would be exceeded
// (the paper's λ assumption keeps this from happening in the experiments;
// the guard catches violations).
func (d *Device) Alloc(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("gpu%d: negative allocation %d", d.id, bytes)
	}
	if d.memUsed+bytes > d.spec.MemBytes {
		return fmt.Errorf("gpu%d: out of device memory: %d used + %d requested > %d",
			d.id, d.memUsed, bytes, d.spec.MemBytes)
	}
	d.memUsed += bytes
	if d.memUsed > d.memHighWater {
		d.memHighWater = d.memUsed
	}
	return nil
}

// memWaiter is one parked AllocBlocking request. The granter (Free) reserves
// the capacity on the waiter's behalf before firing done, so a woken waiter
// never re-checks — and a late small request can never slip in between the
// free and the head waiter's wake-up.
type memWaiter struct {
	bytes int64
	done  *sim.Event
}

// AllocBlocking reserves device memory, parking p in strict FIFO order until
// enough capacity frees up. It only fails on invalid sizes (a request larger
// than the device can ever satisfy, or negative). This is the
// memory-pressure admission control the paper leaves as future work ("with
// virtual memory support, Strings can eliminate the assumption on the
// maximum rate of request arrivals").
//
// FIFO here is head-of-line reservation, not wake-all-and-race: a request
// joins the queue whenever the queue is non-empty — even if its own bytes
// would fit right now — and capacity freed by Free is handed to queued
// waiters in arrival order. The earlier wake-everyone-and-recheck scheme let
// any late small request take freed capacity ahead of the FIFO head, so a
// large blocked allocation could starve indefinitely under steady small
// traffic (regression-tested in TestAllocBlockingNoHeadOfLineBypass).
func (d *Device) AllocBlocking(p *sim.Proc, bytes int64) error {
	if bytes < 0 || bytes > d.spec.MemBytes {
		return fmt.Errorf("gpu%d: unsatisfiable allocation %d of %d",
			d.id, bytes, d.spec.MemBytes)
	}
	if d.memQ.Len() == 0 && d.memUsed+bytes <= d.spec.MemBytes {
		d.memUsed += bytes
		if d.memUsed > d.memHighWater {
			d.memHighWater = d.memUsed
		}
		return nil
	}
	w := d.getMemWaiter(bytes)
	d.memQ.Push(w)
	p.Wait(w.done)
	// The granter already took the capacity for us; just recycle the record.
	d.putMemWaiter(w)
	return nil
}

// getMemWaiter draws a waiter record from the free list.
func (d *Device) getMemWaiter(bytes int64) *memWaiter {
	if n := len(d.memWaitFree); n > 0 {
		w := d.memWaitFree[n-1]
		d.memWaitFree[n-1] = nil
		d.memWaitFree = d.memWaitFree[:n-1]
		w.bytes = bytes
		w.done.Reset()
		return w
	}
	return &memWaiter{bytes: bytes, done: d.k.NewEvent()}
}

// putMemWaiter recycles a granted waiter record.
func (d *Device) putMemWaiter(w *memWaiter) {
	w.bytes = 0
	d.memWaitFree = append(d.memWaitFree, w) //lint:allow hotalloc -- free-list growth is amortized, bounded by peak parked waiters
}

// grantMemWaiters hands freed capacity to parked allocations in FIFO order,
// stopping at the first waiter that still does not fit (no bypass).
func (d *Device) grantMemWaiters() {
	for d.memQ.Len() > 0 {
		w := d.memQ.Front()
		if d.memUsed+w.bytes > d.spec.MemBytes {
			return
		}
		d.memQ.Pop()
		d.memUsed += w.bytes
		if d.memUsed > d.memHighWater {
			d.memHighWater = d.memUsed
		}
		w.done.Fire()
	}
}

// Free releases device memory and grants it to admission-control waiters in
// FIFO order.
func (d *Device) Free(bytes int64) {
	d.memUsed -= bytes
	if d.memUsed < 0 {
		panic(fmt.Sprintf("gpu%d: freed more memory than allocated", d.id))
	}
	d.grantMemWaiters()
}

// MemUsed returns the bytes currently allocated.
func (d *Device) MemUsed() int64 { return d.memUsed }

// wake kicks the driver.
func (d *Device) wake() {
	d.kicked = true
	d.kick.Notify()
}

// driver is the device's multiplexing and dispatch loop.
func (d *Device) driver(p *sim.Proc) {
	for {
		if d.closed {
			return
		}
		now := p.Now()
		d.advance(now)
		if d.reap(now) {
			continue // completions change the engine sets; re-evaluate
		}
		if d.trySwitch(p) {
			continue // residency changed (and time may have passed)
		}
		if d.dispatch(now) {
			continue // dispatch changes the slowdown; re-evaluate
		}
		next, ok := d.nextWake()
		d.kicked = false
		if !ok {
			p.WaitSignal(d.kick)
			continue
		}
		if next <= now {
			continue
		}
		p.WaitSignalTimeout(d.kick, next-now)
	}
}

// advance progresses the processor-sharing kernels and utilization integrals
// from lastEval to now.
func (d *Device) advance(now sim.Time) {
	elapsed := float64(now - d.lastEval)
	if elapsed <= 0 {
		d.lastEval = now
		return
	}
	var sumCPU, sumBW float64
	for _, op := range d.running {
		sumCPU += op.demandCPU
		sumBW += op.demandBW
	}
	cu := sumCPU / d.slowdown
	bu := sumBW / d.slowdown
	if d.tracer != nil {
		copies := 0
		if d.h2d.cur != nil {
			copies++
		}
		if d.d2h.cur != nil {
			copies++
		}
		rc := -1
		if d.resident != nil {
			rc = d.resident.id
		}
		d.tracer.Segment(d.lastEval, now, cu, bu, copies, rc)
	}
	d.busyCompute += elapsed * cu
	d.busyBW += elapsed * bu
	for _, op := range d.running {
		op.remaining -= elapsed / (op.soloDur * d.slowdown)
		if op.remaining < 0 {
			op.remaining = 0
		}
		d.appService[op.AppID] += elapsed / d.slowdown
	}
	if d.h2d.cur != nil {
		d.h2d.busy += elapsed
	}
	if d.d2h.cur != nil {
		d.d2h.busy += elapsed
	}
	d.lastEval = now
}

// reap completes ops that are due at now; it reports whether any finished.
//
//strings:hotpath
func (d *Device) reap(now sim.Time) bool {
	done := false
	// Kernels.
	for i := 0; i < len(d.running); {
		op := d.running[i]
		if op.finishAt(now, d.slowdown) <= now {
			d.running = append(d.running[:i], d.running[i+1:]...)
			d.kernelsDone++
			d.appMemTraf[op.AppID] += op.MemTraffic
			d.finish(op, now)
			done = true
		} else {
			i++
		}
	}
	if done {
		d.recomputeSlowdown()
	}
	// Copies.
	for _, e := range []*copyEngine{&d.h2d, &d.d2h} {
		if e.cur != nil && e.curDone <= now {
			op := e.cur
			e.cur = nil
			d.copiesDone++
			d.appXferTime[op.AppID] += float64(now - op.Started)
			d.appService[op.AppID] += float64(now - op.Started)
			d.finish(op, now)
			done = true
		}
	}
	return done
}

// finish records completion, releases the stream head, fires Done.
func (d *Device) finish(op *Op, now sim.Time) {
	op.Finished = now
	op.running = false
	op.stream.busy = false
	op.stream.ctx.pending--
	op.Done.Fire()
	if d.onComplete != nil {
		d.onComplete(op)
	}
	if op.pooled {
		d.recycleOp(op)
	}
}

// finishAt projects when a running kernel completes under slowdown s.
func (o *Op) finishAt(now sim.Time, s float64) sim.Time {
	if o.remaining <= 0 {
		return now
	}
	return now + sim.Time(o.remaining*o.soloDur*s+0.9999)
}

// recomputeSlowdown refreshes the uniform processor-sharing slowdown from the
// current running set.
func (d *Device) recomputeSlowdown() {
	var sumCPU, sumBW float64
	for _, op := range d.running {
		sumCPU += op.demandCPU
		sumBW += op.demandBW
	}
	s := 1.0
	if sumCPU > s {
		s = sumCPU
	}
	if sumBW > s {
		s = sumBW
	}
	d.slowdown = s
}

// busyNow reports whether any engine is executing resident-context work.
func (d *Device) busyNow() bool {
	return len(d.running) > 0 || d.h2d.cur != nil || d.d2h.cur != nil
}

// trySwitch evaluates driver-level context multiplexing. It returns true if
// it slept (switched residency), so the driver re-evaluates timing.
func (d *Device) trySwitch(p *sim.Proc) bool {
	now := p.Now()
	next := d.nextPendingContext()
	if next == nil {
		d.draining = false
		return false
	}
	if d.resident == nil {
		// First binding is free of the switch penalty (context creation cost
		// is modelled by the CUDA layer).
		d.resident = next
		d.residing = now
		d.draining = false
		return false
	}
	if next == d.resident {
		d.draining = false
		return false
	}
	wantSwitch := d.resident.pending == 0 ||
		(now-d.residing >= d.spec.TimeSlice)
	if !wantSwitch {
		d.draining = false
		return false
	}
	if d.busyNow() {
		// Ops are not preempted: stop feeding the engines and drain.
		d.draining = true
		return false
	}
	d.switches++
	d.switchTime += d.spec.ContextSwitch
	if d.spec.ContextSwitch > 0 {
		p.Sleep(d.spec.ContextSwitch)
	}
	d.advance(p.Now())
	if next.Owner >= 0 {
		// The incoming context's owner "pays" for the switch, mirroring
		// the coarse accounting of per-process-context runtimes. The
		// charge is tracked separately so measurements can distinguish
		// delivered service from the scheduler's inflated view.
		d.appSwitch[next.Owner] += float64(d.spec.ContextSwitch)
	}
	d.resident = next
	d.residing = p.Now()
	d.draining = false
	return true
}

// nextPendingContext picks the context that should run next: the resident
// context if it still has work and its slice is valid, otherwise the next
// context with pending work in cyclic id order after the resident.
func (d *Device) nextPendingContext() *Context {
	n := len(d.contexts)
	if n == 0 {
		return nil
	}
	start := 0
	if d.resident != nil {
		start = d.resident.id + 1
		// Respect the slice: prefer the resident while it has work and
		// slice remains.
		if d.resident.pending > 0 && d.k.Now()-d.residing < d.spec.TimeSlice {
			return d.resident
		}
	}
	for i := 0; i < n; i++ {
		c := d.contexts[(start+i)%n]
		if c.pending > 0 {
			return c
		}
	}
	if d.resident != nil && d.resident.pending > 0 {
		return d.resident
	}
	return nil
}

// dispatch feeds stream-head ops of the resident context to the engines; it
// reports whether anything new was dispatched.
func (d *Device) dispatch(now sim.Time) bool {
	if d.resident == nil || d.draining {
		return false
	}
	dispatched := false
	for _, s := range d.resident.streams {
		if s.busy || s.queue.Len() == 0 {
			continue
		}
		op := s.queue.Front()
		switch op.Kind {
		case OpMarker:
			// Zero-cost stream marker: completes immediately in order.
			s.queue.Pop()
			op.Started = now
			d.finish(op, now)
			dispatched = true
		case OpKernel:
			if len(d.running) >= d.spec.MaxConcurrentKernels {
				// Fermi's concurrent-kernel limit: leave the op queued;
				// the driver re-evaluates when a kernel completes.
				continue
			}
			s.queue.Pop()
			s.busy = true
			op.kernelDemands(&d.spec)
			op.Started = now
			op.SoloTime = sim.Time(op.soloDur + 0.5)
			op.running = true
			d.running = append(d.running, op)
			dispatched = true
		case OpH2D, OpD2H:
			e := d.engineFor(op.Kind)
			s.queue.Pop()
			s.busy = true
			e.queue.Push(op)
			dispatched = true
		}
	}
	if dispatched {
		d.recomputeSlowdown()
		// Reset projected finish baselines: remaining already reflects the
		// new instant because advance ran first this iteration.
	}
	// Start idle copy engines.
	for _, e := range []*copyEngine{&d.h2d, &d.d2h} {
		if e.cur == nil && e.queue.Len() > 0 {
			op := e.queue.Pop()
			op.Started = now
			dur := op.copyDuration(&d.spec)
			op.SoloTime = dur
			op.running = true
			e.cur = op
			e.curDone = now + dur
			dispatched = true
		}
	}
	return dispatched
}

// engineFor returns the copy engine serving the given direction, honouring
// single-copy-engine devices.
func (d *Device) engineFor(k OpKind) *copyEngine {
	if d.spec.CopyEngines < 2 || k == OpH2D {
		return &d.h2d
	}
	return &d.d2h
}

// nextWake returns the earliest projected completion among running work.
func (d *Device) nextWake() (sim.Time, bool) {
	var t sim.Time
	ok := false
	now := d.k.Now()
	for _, op := range d.running {
		f := op.finishAt(now, d.slowdown)
		if !ok || f < t {
			t, ok = f, true
		}
	}
	for _, e := range []*copyEngine{&d.h2d, &d.d2h} {
		if e.cur != nil && (!ok || e.curDone < t) {
			t, ok = e.curDone, true
		}
	}
	return t, ok
}

// Stats is a snapshot of device accounting.
type Stats struct {
	Now          sim.Time
	ComputeBusy  sim.Time // integral of compute utilization
	BWBusy       sim.Time // integral of memory-bandwidth utilization
	H2DBusy      sim.Time
	D2HBusy      sim.Time
	Switches     int
	SwitchTime   sim.Time
	KernelsDone  int
	CopiesDone   int
	MemUsed      int64
	MemHighWater int64
}

// Stats returns a snapshot of the device's accounting, current to the last
// driver evaluation.
func (d *Device) Stats() Stats {
	return Stats{
		Now:          d.k.Now(),
		ComputeBusy:  sim.Time(d.busyCompute + 0.5),
		BWBusy:       sim.Time(d.busyBW + 0.5),
		H2DBusy:      sim.Time(d.h2d.busy + 0.5),
		D2HBusy:      sim.Time(d.d2h.busy + 0.5),
		Switches:     d.switches,
		SwitchTime:   d.switchTime,
		KernelsDone:  d.kernelsDone,
		CopiesDone:   d.copiesDone,
		MemUsed:      d.memUsed,
		MemHighWater: d.memHighWater,
	}
}

// AppService returns the attained GPU service (solo-equivalent execution
// time, kernels plus copies) of the given application on this device.
func (d *Device) AppService(appID int) sim.Time {
	return sim.Time(d.appService[appID] + 0.5)
}

// AppSwitchCharge returns the context-switch overhead charged to the
// application by the driver — the amount by which a per-process-context
// runtime overstates the application's attained service.
func (d *Device) AppSwitchCharge(appID int) sim.Time {
	return sim.Time(d.appSwitch[appID] + 0.5)
}

// AppTransferTime returns the copy-engine time attained by the application.
func (d *Device) AppTransferTime(appID int) sim.Time {
	return sim.Time(d.appXferTime[appID] + 0.5)
}

// AppMemTraffic returns the total device-memory traffic (bytes) of the
// application's kernels completed so far.
func (d *Device) AppMemTraffic(appID int) float64 { return d.appMemTraf[appID] }

// AppIDs returns the application ids with recorded service, sorted.
func (d *Device) AppIDs() []int {
	ids := make([]int, 0, len(d.appService))
	for id := range d.appService {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// QueuedOps returns the number of ops queued or running on the device across
// all contexts (the device-load signal used by GMin-style policies).
func (d *Device) QueuedOps() int {
	n := 0
	for _, c := range d.contexts {
		n += c.pending
	}
	return n
}
