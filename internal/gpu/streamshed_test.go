package gpu

import (
	"testing"

	"repro/internal/sim"
)

// TestDestroyStreamShedsDispatchScan pins the O(live streams) property of a
// packed context: destroyed streams leave the context's stream list, so the
// driver's per-evaluation dispatch scan stays proportional to live
// applications instead of applications ever served. Before the fix a
// million-request run spent most of its wall time re-scanning dead streams.
func TestDestroyStreamShedsDispatchScan(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	ctx := d.NewContext()
	keep := ctx.NewStream()
	k.Go("churn", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			s := ctx.NewStream()
			p.Wait(s.Submit(&Op{Kind: OpH2D, Bytes: 10}))
			ctx.DestroyStream(s)
		}
	})
	k.Run()
	if got := len(ctx.streams); got != 1 {
		t.Fatalf("context retains %d streams after churn, want 1 (the kept stream)", got)
	}
	if ctx.streams[0] != keep {
		t.Fatal("surviving stream is not the one kept alive")
	}
	if ctx.nextStream != 101 {
		t.Fatalf("stream ids not monotonic across destroys: nextStream = %d, want 101", ctx.nextStream)
	}
}

// TestDestroyStreamRefusesLiveWork: a stream with queued or in-flight ops is
// left in place — destruction is only legal after the CUDA layer drains it.
func TestDestroyStreamRefusesLiveWork(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	ctx := d.NewContext()
	s := ctx.NewStream()
	k.Go("app", func(p *sim.Proc) {
		ev := s.Submit(&Op{Kind: OpKernel, Compute: 50000})
		ctx.DestroyStream(s) // op still queued or running: must be a no-op
		if len(ctx.streams) != 1 {
			t.Errorf("busy stream was destroyed (%d streams left)", len(ctx.streams))
		}
		p.Wait(ev)
		ctx.DestroyStream(s) // drained now: removal proceeds
		if len(ctx.streams) != 0 {
			t.Errorf("drained stream was not destroyed (%d streams left)", len(ctx.streams))
		}
	})
	k.Run()
}
