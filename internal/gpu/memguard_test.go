package gpu

import (
	"testing"

	"repro/internal/sim"
)

func TestAllocBlockingWaitsForFree(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0) // 1 MiB
	var grantedAt sim.Time
	k.Go("holder", func(p *sim.Proc) {
		if err := d.Alloc(1 << 20); err != nil {
			t.Errorf("holder alloc: %v", err)
		}
		p.Sleep(100)
		d.Free(1 << 20)
	})
	k.Go("waiter", func(p *sim.Proc) {
		p.Sleep(1)
		if err := d.AllocBlocking(p, 1<<19); err != nil {
			t.Errorf("blocking alloc: %v", err)
		}
		grantedAt = p.Now()
	})
	k.Run()
	if grantedAt != 100 {
		t.Fatalf("blocked alloc granted at %v, want 100us", grantedAt)
	}
	if d.MemUsed() != 1<<19 {
		t.Fatalf("MemUsed = %d", d.MemUsed())
	}
}

func TestAllocBlockingImmediateWhenFree(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	var at sim.Time = -1
	k.Go("a", func(p *sim.Proc) {
		if err := d.AllocBlocking(p, 100); err != nil {
			t.Errorf("alloc: %v", err)
		}
		at = p.Now()
	})
	k.Run()
	if at != 0 {
		t.Fatalf("uncontended blocking alloc waited until %v", at)
	}
}

func TestAllocBlockingUnsatisfiable(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	k.Go("a", func(p *sim.Proc) {
		if err := d.AllocBlocking(p, 2<<20); err == nil {
			t.Error("over-capacity blocking alloc accepted")
		}
		if err := d.AllocBlocking(p, -1); err == nil {
			t.Error("negative blocking alloc accepted")
		}
	})
	k.Run()
}

// TestAllocBlockingNoHeadOfLineBypass is the regression test for the FIFO
// bypass bug: the old wake-all-and-recheck scheme let every late small
// request take freed capacity ahead of the parked FIFO head, so a
// 90%-capacity waiter starved for as long as small traffic kept churning.
// With head-of-line reservation the big waiter is granted the instant the
// original holder has drained enough (t=80 leaves exactly 900 bytes free),
// regardless of the churn.
func TestAllocBlockingNoHeadOfLineBypass(t *testing.T) {
	k := sim.NewKernel(1)
	spec := testSpec()
	spec.MemBytes = 1000
	d := NewDevice(k, spec, 0)

	// Holder occupies 90% and drains in 9 steps, fully free at t=90.
	k.Go("holder", func(p *sim.Proc) {
		if err := d.Alloc(900); err != nil {
			t.Errorf("holder: %v", err)
		}
		for i := 0; i < 9; i++ {
			p.Sleep(10)
			d.Free(100)
		}
	})

	// The 90%-capacity waiter parks at t=1 (only 100 bytes free).
	var bigGrantedAt sim.Time = -1
	k.Go("big", func(p *sim.Proc) {
		p.Sleep(1)
		if err := d.AllocBlocking(p, 900); err != nil {
			t.Errorf("big: %v", err)
		}
		bigGrantedAt = p.Now()
	})

	// Steady small traffic behind it: arrivals every 4us holding 100 bytes
	// for 10us each keep 200-300 bytes resident at all times, so under the
	// old scheme no notify ever found ≤100 bytes in use and the big waiter
	// starved until the churn stopped (t≈208).
	var smallGrants []sim.Time
	for i := 0; i < 50; i++ {
		at := sim.Time(2 + 4*i)
		k.Go("small", func(p *sim.Proc) {
			p.Sleep(at)
			if err := d.AllocBlocking(p, 100); err != nil {
				t.Errorf("small@%v: %v", at, err)
			}
			smallGrants = append(smallGrants, p.Now())
			p.Sleep(10)
			d.Free(100)
		})
	}

	k.Run()
	if bigGrantedAt != 80 {
		t.Fatalf("90%%-capacity waiter granted at t=%v, want t=80 (head-of-line reservation)", bigGrantedAt)
	}
	if len(smallGrants) != 50 {
		t.Fatalf("granted %d small requests, want 50", len(smallGrants))
	}
	for i := 1; i < len(smallGrants); i++ {
		if smallGrants[i] < smallGrants[i-1] {
			t.Fatalf("small grants out of FIFO order at %d: %v", i, smallGrants[:i+1])
		}
	}
	if d.MemUsed() != 900 {
		t.Fatalf("MemUsed = %d after drain, want 900 (big waiter holds)", d.MemUsed())
	}
}

func TestAllocBlockingServesWaitersInOrder(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0) // 1 MiB
	var order []int
	k.Go("holder", func(p *sim.Proc) {
		d.Alloc(1 << 20)
		p.Sleep(50)
		d.Free(1 << 19) // room for one waiter
		p.Sleep(50)
		d.Free(1 << 19) // room for the other
	})
	for i := 1; i <= 2; i++ {
		i := i
		k.Go("w", func(p *sim.Proc) {
			p.Sleep(sim.Time(i)) // deterministic arrival order
			if err := d.AllocBlocking(p, 1<<19); err != nil {
				t.Errorf("w%d: %v", i, err)
			}
			order = append(order, i)
		})
	}
	k.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("grant order = %v, want [1 2]", order)
	}
}
