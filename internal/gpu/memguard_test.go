package gpu

import (
	"testing"

	"repro/internal/sim"
)

func TestAllocBlockingWaitsForFree(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0) // 1 MiB
	var grantedAt sim.Time
	k.Go("holder", func(p *sim.Proc) {
		if err := d.Alloc(1 << 20); err != nil {
			t.Errorf("holder alloc: %v", err)
		}
		p.Sleep(100)
		d.Free(1 << 20)
	})
	k.Go("waiter", func(p *sim.Proc) {
		p.Sleep(1)
		if err := d.AllocBlocking(p, 1<<19); err != nil {
			t.Errorf("blocking alloc: %v", err)
		}
		grantedAt = p.Now()
	})
	k.Run()
	if grantedAt != 100 {
		t.Fatalf("blocked alloc granted at %v, want 100us", grantedAt)
	}
	if d.MemUsed() != 1<<19 {
		t.Fatalf("MemUsed = %d", d.MemUsed())
	}
}

func TestAllocBlockingImmediateWhenFree(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	var at sim.Time = -1
	k.Go("a", func(p *sim.Proc) {
		if err := d.AllocBlocking(p, 100); err != nil {
			t.Errorf("alloc: %v", err)
		}
		at = p.Now()
	})
	k.Run()
	if at != 0 {
		t.Fatalf("uncontended blocking alloc waited until %v", at)
	}
}

func TestAllocBlockingUnsatisfiable(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	k.Go("a", func(p *sim.Proc) {
		if err := d.AllocBlocking(p, 2<<20); err == nil {
			t.Error("over-capacity blocking alloc accepted")
		}
		if err := d.AllocBlocking(p, -1); err == nil {
			t.Error("negative blocking alloc accepted")
		}
	})
	k.Run()
}

func TestAllocBlockingServesWaitersInOrder(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0) // 1 MiB
	var order []int
	k.Go("holder", func(p *sim.Proc) {
		d.Alloc(1 << 20)
		p.Sleep(50)
		d.Free(1 << 19) // room for one waiter
		p.Sleep(50)
		d.Free(1 << 19) // room for the other
	})
	for i := 1; i <= 2; i++ {
		i := i
		k.Go("w", func(p *sim.Proc) {
			p.Sleep(sim.Time(i)) // deterministic arrival order
			if err := d.AllocBlocking(p, 1<<19); err != nil {
				t.Errorf("w%d: %v", i, err)
			}
			order = append(order, i)
		})
	}
	k.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("grant order = %v, want [1 2]", order)
	}
}
