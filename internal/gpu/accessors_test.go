package gpu

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func TestDeviceAccessors(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 3)
	if d.ID() != 3 {
		t.Fatalf("ID = %d, want 3", d.ID())
	}
	if d.Spec().Name != "test" {
		t.Fatalf("Spec name %q", d.Spec().Name)
	}
	ctx := d.NewContext()
	if ctx.ID() != 0 || ctx.Device() != d {
		t.Fatalf("context accessors: id=%d dev=%p", ctx.ID(), ctx.Device())
	}
	s := ctx.NewStream()
	if s.ID() != 0 || s.Context() != ctx || s.Pending() != 0 {
		t.Fatalf("stream accessors: id=%d pending=%d", s.ID(), s.Pending())
	}
}

func TestOpPoolRecycles(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	op := d.GetOp(OpKernel)
	if op.Kind != OpKernel || !op.pooled {
		t.Fatalf("GetOp gave %+v", op)
	}
	op.Compute = 123
	d.PutOp(op)
	op2 := d.GetOp(OpH2D)
	if op2 != op {
		t.Fatal("free list did not recycle the returned op")
	}
	if op2.Compute != 0 {
		t.Fatal("recycled op was not zeroed")
	}
	if op2.Kind != OpH2D {
		t.Fatalf("recycled op kind %v", op2.Kind)
	}
	d.PutOp(nil)              // must not panic
	d.PutOp(&Op{Kind: OpD2H}) // unpooled: ignored
	if len(d.opFree) != 0 {
		t.Fatalf("unpooled op landed on the free list")
	}
}

func TestOpTimesAndAppCounters(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, testSpec(), 0)
	ctx := d.NewContext()
	s := ctx.NewStream()
	op := &Op{Kind: OpKernel, Compute: 50000, MemTraffic: 1000, AppID: 9}
	k.Go("app", func(p *sim.Proc) {
		p.Wait(s.Submit(op))
	})
	k.Run()
	if op.WallTime() <= 0 || op.ExecTime() <= 0 {
		t.Fatalf("WallTime=%v ExecTime=%v", op.WallTime(), op.ExecTime())
	}
	if op.WallTime() < op.ExecTime() {
		t.Fatal("wall time below exec time")
	}
	if d.AppMemTraffic(9) != 1000 {
		t.Fatalf("AppMemTraffic = %v, want 1000", d.AppMemTraffic(9))
	}
	// A single resident context is never switched out.
	if d.AppSwitchCharge(9) != 0 {
		t.Fatalf("AppSwitchCharge = %v, want 0", d.AppSwitchCharge(9))
	}
}

func TestUtilTraceBusyHelpers(t *testing.T) {
	u := &UtilTrace{}
	u.Segment(0, 10, 1.0, 0.5, 1, 1)  // busy
	u.Segment(10, 20, 0, 0, 0, 1)     // idle gap
	u.Segment(20, 30, 0.5, 0.1, 0, 1) // busy again
	u.Segment(30, 40, 0, 0, 0, 0)     // trailing idle

	if !u.Segments[0].Busy() || u.Segments[1].Busy() {
		t.Fatal("Busy() misclassifies segments")
	}
	if got := u.MeanBusy(40); got != 0.5 {
		t.Fatalf("MeanBusy = %v, want 0.5", got)
	}
	if got := u.MeanBusy(0); got != 0 {
		t.Fatalf("MeanBusy(0) = %v", got)
	}
	bb := u.BusyBuckets(40, 4)
	want := []float64{1, 0, 1, 0}
	for i := range bb {
		if bb[i] != want[i] {
			t.Fatalf("BusyBuckets = %v, want %v", bb, want)
		}
	}
	if got := len(u.BusyBuckets(0, 4)); got != 4 {
		t.Fatalf("BusyBuckets(0) length %d", got)
	}
	strip := u.RenderBusy(40, 4)
	if len([]rune(strip)) != 4 {
		t.Fatalf("RenderBusy strip %q", strip)
	}
	if u.BusyGlitchCount() != 1 {
		t.Fatalf("BusyGlitchCount = %d, want 1", u.BusyGlitchCount())
	}
	if cu, bw := u.Sample(5); cu != 1.0 || bw != 0.5 {
		t.Fatalf("Sample(5) = %v,%v", cu, bw)
	}
	if cu, _ := u.Sample(100); cu != 0 {
		t.Fatalf("Sample past end = %v", cu)
	}
}

func TestUtilTraceWriteJSON(t *testing.T) {
	u := &UtilTrace{}
	u.Segment(0, 10, 0.25, 0.5, 1, 2)
	var buf bytes.Buffer
	if err := u.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got := buf.String()
	want := `[{"from_us":0,"to_us":10,"compute":0.25,"bw":0.5,"copies":1,"ctx":2}]` + "\n"
	if got != want {
		t.Fatalf("WriteJSON = %q, want %q", got, want)
	}
}

func TestSpecNormalizedDefaults(t *testing.T) {
	n := Spec{Name: "bare"}.normalized()
	if n.ComputeRate == 0 || n.MemBandwidth == 0 || n.H2DBandwidth == 0 ||
		n.D2HBandwidth == 0 || n.CopyEngines == 0 || n.TimeSlice == 0 ||
		n.MaxConcurrentKernels == 0 || n.MemBytes == 0 || n.Weight == 0 {
		t.Fatalf("normalized left zero fields: %+v", n)
	}
	full := testSpec()
	full.MaxConcurrentKernels = 4
	if got := full.normalized(); got.ComputeRate != full.ComputeRate || got.MaxConcurrentKernels != 4 {
		t.Fatalf("normalized overwrote set fields: %+v", got)
	}
}
