// Package packer implements the paper's Context Packer: the backend-side
// layer that folds the GPU work of every application sharing a device into a
// single GPU context. Its components, named as in the paper:
//
//   - Stream Creator (SC): a dedicated CUDA stream per application, created
//     on the first request and torn down on cudaThreadExit.
//   - Auto Stream Translator (AST): operations the application targeted at
//     the default stream are retargeted onto its dedicated stream.
//   - Sync Stream Translator (SST): cudaDeviceSynchronize becomes
//     cudaStreamSynchronize, so one application's sync never stalls the
//     other tenants packed into the context.
//   - Memory Operation Translator (MOT): synchronous memcpys become
//     asynchronous ones staged through pinned host memory, tracked in the
//     Pinned Memory Table (PMT) and released at the application's next
//     synchronization point.
package packer

import (
	"fmt"

	"repro/internal/cuda"
	"repro/internal/rpcproto"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config tunes the packer.
type Config struct {
	// PinBandwidth is the host-side bandwidth (bytes/us) of staging a user
	// buffer into pinned memory; 0 disables the cost.
	PinBandwidth float64
}

// DefaultConfig stages pinned copies at ~4 GB/s.
func DefaultConfig() Config { return Config{PinBandwidth: 4000} }

// Packer owns the single shared GPU context of one backend process (one per
// device) and the per-device Pinned Memory Table.
type Packer struct {
	rt    *cuda.Runtime
	cfg   Config
	pmt   *PMT
	ports map[int]*Port
	rec   *trace.Recorder
	gid   int // gPool device id, for span attribution (-1 when unset)
}

// SetRecorder installs the observability recorder and the packer's gPool
// device id: every Execute then emits a backend-side exec span. A nil
// recorder disables it.
func (pk *Packer) SetRecorder(rec *trace.Recorder, gid int) {
	pk.rec = rec
	pk.gid = gid
}

// New creates a packer over the backend process's CUDA runtime.
func New(rt *cuda.Runtime, cfg Config) *Packer {
	return &Packer{rt: rt, cfg: cfg, pmt: NewPMT(), ports: make(map[int]*Port), gid: -1}
}

// PMT exposes the device's pinned-memory table (for monitoring and tests).
func (pk *Packer) PMT() *PMT { return pk.pmt }

// Runtime returns the backend process's CUDA runtime.
func (pk *Packer) Runtime() *cuda.Runtime { return pk.rt }

// Port is one application's lane through the packer: its backend CUDA
// thread, its dedicated stream, and its share of the PMT.
type Port struct {
	pk     *Packer
	AppID  int
	Tenant int64

	thread *cuda.Thread
	stream cuda.StreamID
	proc   *sim.Proc
	closed bool
	pool   *rpcproto.Pool
}

// SetPool installs the RPC frame pool replies are drawn from (the serving
// connection's pool, so the frontend can recycle them). A nil pool — the
// default — allocates fresh replies.
func (port *Port) SetPool(pool *rpcproto.Pool) { port.pool = pool }

// Open registers an application with the packer (the Stream Creator's job):
// it binds a backend CUDA thread for the app on the backend process's
// context and creates the app's dedicated stream.
func (pk *Packer) Open(p *sim.Proc, appID int, tenant int64) (*Port, error) {
	if _, dup := pk.ports[appID]; dup {
		return nil, fmt.Errorf("packer: app %d already open", appID)
	}
	t := pk.rt.NewThread(p, appID)
	if err := t.SetDevice(0); err != nil { // backend processes are per-GPU
		return nil, err
	}
	s, err := t.StreamCreate()
	if err != nil {
		return nil, err
	}
	port := &Port{pk: pk, AppID: appID, Tenant: tenant, thread: t, stream: s, proc: p}
	pk.ports[appID] = port
	return port, nil
}

// Stream returns the port's dedicated stream id.
func (port *Port) Stream() cuda.StreamID { return port.stream }

// translateStream implements the AST: default-stream operations move to the
// application's dedicated stream; explicit streams the application created
// through the runtime pass through.
func (port *Port) translateStream(s cuda.StreamID) cuda.StreamID {
	if s == cuda.DefaultStream {
		return port.stream
	}
	return s
}

// Execute runs one marshalled CUDA call through the packer's translations
// and returns the reply (nil for calls whose reply is suppressed because the
// frontend issued them as non-blocking RPCs).
func (port *Port) Execute(call *rpcproto.Call) *rpcproto.Reply {
	if rec := port.pk.rec; rec.Enabled() {
		sp := rec.Begin(trace.KExec, 0, port.proc.Now(), call.ID.String(),
			port.AppID, port.pk.gid, int64(call.Seq))
		reply := port.execute(call)
		rec.End(sp, port.proc.Now())
		return reply
	}
	return port.execute(call)
}

// execute is Execute's body: the AST/SST/MOT translation switch.
func (port *Port) execute(call *rpcproto.Call) *rpcproto.Reply {
	reply := port.pool.GetReply()
	reply.Seq = call.Seq
	if port.closed {
		reply.SetError(cuda.ErrThreadExited)
		return reply
	}
	t := port.thread
	switch call.ID {
	case cuda.CallSetDevice:
		// Target selection already happened at the balancer; binding the
		// backend thread to its device is all that remains.
		reply.SetError(t.SetDevice(0))

	case cuda.CallDeviceCount:
		reply.Count = int32(t.DeviceCount())

	case cuda.CallMalloc:
		ptr, err := t.Malloc(call.Bytes)
		if err != nil {
			reply.SetError(err)
			break
		}
		reply.PtrID, reply.PtrSize, reply.PtrDev = ptr.ID, ptr.Size, int32(ptr.Dev)

	case cuda.CallFree:
		reply.SetError(t.Free(callPtr(call)))

	case cuda.CallMemcpy:
		// MOT: synchronous copies become asynchronous, staged through
		// pinned memory. H2D returns as soon as the copy is queued; D2H
		// must return data, so it synchronizes the app's stream first.
		s := port.translateStream(cuda.DefaultStream)
		if call.Dir == cuda.H2D {
			port.pinCost(call.Bytes)
			id := port.pk.pmt.Add(port.AppID, s, call.Bytes, call.Dir)
			if err := t.MemcpyAsync(cuda.H2D, callPtr(call), call.Bytes, s); err != nil {
				port.pk.pmt.Release(id)
				reply.SetError(err)
				break
			}
			// Pinned buffer is reclaimed at the app's next sync point.
			break
		}
		if err := t.MemcpyAsync(cuda.D2H, callPtr(call), call.Bytes, s); err != nil {
			reply.SetError(err)
			break
		}
		if err := t.StreamSynchronize(s); err != nil {
			reply.SetError(err)
			break
		}
		port.pk.pmt.ReleaseSynced(port.AppID, s)

	case cuda.CallMemcpyAsync:
		s := port.translateStream(cuda.StreamID(call.Stream))
		if call.Dir == cuda.H2D {
			port.pinCost(call.Bytes)
			port.pk.pmt.Add(port.AppID, s, call.Bytes, call.Dir)
		}
		reply.SetError(t.MemcpyAsync(call.Dir, callPtr(call), call.Bytes, s))

	case cuda.CallLaunch:
		s := port.translateStream(cuda.StreamID(call.Stream))
		reply.SetError(t.Launch(cuda.Kernel{
			Name:       call.KernelName,
			Compute:    call.Compute,
			MemTraffic: call.MemTraffic,
			Occupancy:  call.Occupancy,
		}, s))

	case cuda.CallStreamCreate:
		s, err := t.StreamCreate()
		if err != nil {
			reply.SetError(err)
			break
		}
		reply.Stream = int32(s)

	case cuda.CallStreamSync:
		s := port.translateStream(cuda.StreamID(call.Stream))
		if err := t.StreamSynchronize(s); err != nil {
			reply.SetError(err)
			break
		}
		port.pk.pmt.ReleaseSynced(port.AppID, s)

	case cuda.CallStreamDestroy:
		s := cuda.StreamID(call.Stream)
		if s == cuda.DefaultStream {
			reply.SetError(cuda.ErrInvalidValue)
			break
		}
		reply.SetError(t.StreamDestroy(s))

	case cuda.CallEventCreate:
		e, err := t.EventCreate()
		if err != nil {
			reply.SetError(err)
			break
		}
		reply.Event = int32(e)

	case cuda.CallEventRecord:
		// AST applies to event records too: default-stream records land on
		// the application's dedicated stream.
		s := port.translateStream(cuda.StreamID(call.Stream))
		reply.SetError(t.EventRecord(cuda.EventID(call.Event), s))

	case cuda.CallEventSync:
		reply.SetError(t.EventSynchronize(cuda.EventID(call.Event)))

	case cuda.CallEventElapsed:
		d, err := t.EventElapsed(cuda.EventID(call.Event), cuda.EventID(call.Event2))
		if err != nil {
			reply.SetError(err)
			break
		}
		reply.Elapsed = int64(d)

	case cuda.CallEventDestroy:
		reply.SetError(t.EventDestroy(cuda.EventID(call.Event)))

	case cuda.CallDeviceSync:
		// SST: the device-wide synchronize becomes a synchronize of the
		// app's own stream, so co-tenants are unaffected.
		if err := t.StreamSynchronize(port.stream); err != nil {
			reply.SetError(err)
			break
		}
		port.pk.pmt.ReleaseApp(port.AppID)

	case cuda.CallThreadExit:
		reply.SetError(port.close())

	default:
		reply.SetError(cuda.ErrNotImplemented)
	}
	return reply
}

// close tears the port down: drain the app's stream, release its pinned
// memory and its device allocations, destroy its stream.
func (port *Port) close() error {
	if port.closed {
		return cuda.ErrThreadExited
	}
	port.closed = true
	if err := port.thread.StreamSynchronize(port.stream); err != nil {
		return err
	}
	port.pk.pmt.ReleaseApp(port.AppID)
	if err := port.thread.StreamDestroy(port.stream); err != nil {
		return err
	}
	delete(port.pk.ports, port.AppID)
	return port.thread.ThreadExit()
}

// pinCost charges the MOT's host-to-pinned staging copy.
func (port *Port) pinCost(bytes int64) {
	if port.pk.cfg.PinBandwidth > 0 && bytes > 0 {
		port.proc.Sleep(sim.Time(float64(bytes)/port.pk.cfg.PinBandwidth + 0.5))
	}
}

// callPtr reconstructs the device pointer referenced by a call.
func callPtr(c *rpcproto.Call) cuda.Ptr {
	return cuda.Ptr{Dev: int(c.PtrDev), ID: c.PtrID, Size: c.PtrSize}
}
