package packer

import (
	"testing"
	"testing/quick"

	"repro/internal/cuda"
)

func TestPMTAddReleaseAccounting(t *testing.T) {
	pmt := NewPMT()
	id1 := pmt.Add(1, 3, 100, cuda.H2D)
	id2 := pmt.Add(1, 3, 200, cuda.H2D)
	if pmt.Pinned != 300 || pmt.HighWater != 300 || pmt.Len() != 2 {
		t.Fatalf("accounting: %+v", pmt)
	}
	pmt.Release(id1)
	if pmt.Pinned != 200 || pmt.HighWater != 300 {
		t.Fatalf("after release: pinned=%d hw=%d", pmt.Pinned, pmt.HighWater)
	}
	pmt.Release(id1) // double release is a no-op
	if pmt.Pinned != 200 {
		t.Fatal("double release changed accounting")
	}
	pmt.Release(id2)
	if pmt.Pinned != 0 || pmt.Len() != 0 {
		t.Fatal("final accounting nonzero")
	}
	if pmt.TotalAdds != 2 || pmt.TotalFrees != 2 || pmt.TotalPinned != 300 {
		t.Fatalf("counters: %+v", pmt)
	}
}

func TestPMTReleaseSyncedScopedToStream(t *testing.T) {
	pmt := NewPMT()
	pmt.Add(1, 3, 100, cuda.H2D)
	pmt.Add(1, 4, 100, cuda.H2D)
	pmt.Add(2, 3, 100, cuda.H2D)
	pmt.ReleaseSynced(1, 3)
	if pmt.Len() != 2 {
		t.Fatalf("entries = %d, want 2", pmt.Len())
	}
	if len(pmt.AppEntries(1)) != 1 || pmt.AppEntries(1)[0].Stream != 4 {
		t.Fatal("wrong entry released")
	}
}

func TestPMTReleaseApp(t *testing.T) {
	pmt := NewPMT()
	pmt.Add(1, 3, 100, cuda.H2D)
	pmt.Add(1, 4, 100, cuda.H2D)
	pmt.Add(2, 3, 100, cuda.H2D)
	pmt.ReleaseApp(1)
	if pmt.Len() != 1 || len(pmt.AppEntries(2)) != 1 {
		t.Fatalf("entries after ReleaseApp = %d", pmt.Len())
	}
}

// Property: for any interleaving of adds and releases, pinned bytes equal
// the sum of live entries and never go negative; high water is monotone.
func TestQuickPMTBalance(t *testing.T) {
	f := func(ops []uint16) bool {
		pmt := NewPMT()
		var live []int64
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				pmt.Release(live[0])
				live = live[1:]
			} else {
				id := pmt.Add(int(op%4), cuda.StreamID(op%2), int64(op%100)+1, cuda.H2D)
				live = append(live, id)
			}
			var sum int64
			for _, e := range pmt.entries {
				sum += e.Bytes
			}
			if pmt.Pinned != sum || pmt.Pinned < 0 || pmt.HighWater < pmt.Pinned {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
