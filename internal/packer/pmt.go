package packer

import (
	"slices"

	"repro/internal/cuda"
)

// PinnedEntry is one row of the Pinned Memory Table: a host staging buffer
// the MOT allocated for an in-flight asynchronous copy.
type PinnedEntry struct {
	ID     int64
	AppID  int
	Stream cuda.StreamID
	Bytes  int64
	Dir    cuda.Dir
}

// PMT is the per-device Pinned Memory Table. It tracks the pinned staging
// buffers backing asynchronous memory operations; buffers are reclaimed when
// the owning application reaches a synchronization point (stream sync,
// device sync, D2H copy completion, or exit).
type PMT struct {
	entries map[int64]PinnedEntry
	nextID  int64
	scratch []int64 // idsWhere buffer, reused across release sweeps

	// Accounting.
	Pinned      int64 // bytes currently pinned
	HighWater   int64
	TotalAdds   int
	TotalFrees  int
	TotalPinned int64 // cumulative bytes ever pinned
}

// NewPMT returns an empty table.
func NewPMT() *PMT {
	return &PMT{entries: make(map[int64]PinnedEntry)}
}

// Add records a new pinned staging buffer and returns its id.
func (t *PMT) Add(appID int, stream cuda.StreamID, bytes int64, dir cuda.Dir) int64 {
	t.nextID++
	t.entries[t.nextID] = PinnedEntry{
		ID: t.nextID, AppID: appID, Stream: stream, Bytes: bytes, Dir: dir,
	}
	t.Pinned += bytes
	t.TotalPinned += bytes
	t.TotalAdds++
	if t.Pinned > t.HighWater {
		t.HighWater = t.Pinned
	}
	return t.nextID
}

// Release frees one entry by id.
func (t *PMT) Release(id int64) {
	if e, ok := t.entries[id]; ok {
		t.Pinned -= e.Bytes
		t.TotalFrees++
		delete(t.entries, id)
	}
}

// ReleaseSynced frees every entry of the application on the given stream —
// the stream has drained, so the copies have consumed their staging buffers.
func (t *PMT) ReleaseSynced(appID int, stream cuda.StreamID) {
	for _, id := range t.idsWhere(func(e PinnedEntry) bool {
		return e.AppID == appID && e.Stream == stream
	}) {
		t.Release(id)
	}
}

// ReleaseApp frees every entry of the application (device sync or exit).
func (t *PMT) ReleaseApp(appID int) {
	for _, id := range t.idsWhere(func(e PinnedEntry) bool { return e.AppID == appID }) {
		t.Release(id)
	}
}

// Len returns the number of live entries.
func (t *PMT) Len() int { return len(t.entries) }

// AppEntries returns the live entries of one application, ordered by id.
func (t *PMT) AppEntries(appID int) []PinnedEntry {
	var out []PinnedEntry
	for _, id := range t.idsWhere(func(e PinnedEntry) bool { return e.AppID == appID }) {
		out = append(out, t.entries[id])
	}
	return out
}

// idsWhere returns matching entry ids in ascending order (deterministic
// iteration over the map). The predicate runs over already-sorted ids so
// map order never reaches it. The returned slice aliases the table's scratch
// buffer: it is valid until the next idsWhere call (release sweeps consume it
// before mutating the table, which never touches the scratch).
func (t *PMT) idsWhere(pred func(PinnedEntry) bool) []int64 {
	ids := t.scratch[:0]
	for id := range t.entries {
		ids = append(ids, id)
	}
	t.scratch = ids
	slices.Sort(ids)
	out := ids[:0]
	for _, id := range ids {
		if pred(t.entries[id]) {
			out = append(out, id)
		}
	}
	return out
}
