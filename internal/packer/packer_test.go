package packer

import (
	"errors"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

func testDev(k *sim.Kernel) *gpu.Device {
	spec := gpu.Spec{
		Name: "t", ComputeRate: 1000, MemBandwidth: 100,
		H2DBandwidth: 10, D2HBandwidth: 10, CopyEngines: 2,
		ContextSwitch: 100, TimeSlice: sim.Millisecond, MemBytes: 1 << 20, Weight: 1,
	}
	return gpu.NewDevice(k, spec, 0)
}

func newPacker(k *sim.Kernel) (*Packer, *gpu.Device) {
	dev := testDev(k)
	rt := cuda.NewRuntime(k, []*gpu.Device{dev}, cuda.Config{})
	return New(rt, Config{}), dev
}

func mallocVia(port *Port, bytes int64) (cuda.Ptr, *rpcproto.Reply) {
	r := port.Execute(&rpcproto.Call{ID: cuda.CallMalloc, Bytes: bytes})
	return cuda.Ptr{Dev: int(r.PtrDev), ID: r.PtrID, Size: r.PtrSize}, r
}

func TestOpenCreatesDedicatedStream(t *testing.T) {
	k := sim.NewKernel(1)
	pk, _ := newPacker(k)
	k.Go("bt", func(p *sim.Proc) {
		port, err := pk.Open(p, 1, 10)
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		if port.Stream() == cuda.DefaultStream {
			t.Error("port stream is the default stream")
		}
		if _, err := pk.Open(p, 1, 10); err == nil {
			t.Error("duplicate Open succeeded")
		}
		port2, err := pk.Open(p, 2, 11)
		if err != nil {
			t.Errorf("second Open: %v", err)
			return
		}
		if port2.Stream() == port.Stream() {
			t.Error("two apps share one stream")
		}
	})
	k.Run()
}

func TestSyncH2DBecomesAsync(t *testing.T) {
	k := sim.NewKernel(1)
	pk, _ := newPacker(k)
	var queuedAt, syncedAt sim.Time
	k.Go("bt", func(p *sim.Proc) {
		port, _ := pk.Open(p, 1, 10)
		ptr, _ := mallocVia(port, 1000)
		r := port.Execute(&rpcproto.Call{
			ID: cuda.CallMemcpy, Dir: cuda.H2D,
			PtrID: ptr.ID, PtrSize: ptr.Size, PtrDev: int32(ptr.Dev), Bytes: 500,
		})
		if r.Err != "" {
			t.Errorf("memcpy: %s", r.Err)
		}
		queuedAt = p.Now()
		if pk.PMT().Len() != 1 {
			t.Errorf("PMT entries = %d after async H2D, want 1", pk.PMT().Len())
		}
		r = port.Execute(&rpcproto.Call{ID: cuda.CallDeviceSync})
		if r.Err != "" {
			t.Errorf("device sync: %s", r.Err)
		}
		syncedAt = p.Now()
		if pk.PMT().Len() != 0 {
			t.Errorf("PMT entries = %d after sync, want 0", pk.PMT().Len())
		}
	})
	k.Run()
	// The copy takes 50us at 10 B/us; the H2D call must return well before
	// that, and the sync must cover the rest.
	if queuedAt >= 50 {
		t.Fatalf("sync H2D blocked until %v; MOT failed to asyncify", queuedAt)
	}
	if syncedAt < 50 {
		t.Fatalf("device sync returned at %v, before the copy could finish", syncedAt)
	}
}

func TestSyncD2HReturnsAfterData(t *testing.T) {
	k := sim.NewKernel(1)
	pk, _ := newPacker(k)
	var done sim.Time
	k.Go("bt", func(p *sim.Proc) {
		port, _ := pk.Open(p, 1, 10)
		ptr, _ := mallocVia(port, 1000)
		port.Execute(&rpcproto.Call{ID: cuda.CallLaunch, Compute: 20000}) // 20us
		r := port.Execute(&rpcproto.Call{
			ID: cuda.CallMemcpy, Dir: cuda.D2H,
			PtrID: ptr.ID, PtrSize: ptr.Size, Bytes: 300, // 30us
		})
		if r.Err != "" {
			t.Errorf("d2h: %s", r.Err)
		}
		done = p.Now()
	})
	k.Run()
	if done != 50 {
		t.Fatalf("sync D2H returned at %v, want 50us (kernel then copy)", done)
	}
}

func TestSSTDeviceSyncDoesNotBlockOtherApps(t *testing.T) {
	k := sim.NewKernel(1)
	pk, _ := newPacker(k)
	var app2Done sim.Time
	k.Go("bt1", func(p *sim.Proc) {
		port, _ := pk.Open(p, 1, 10)
		port.Execute(&rpcproto.Call{ID: cuda.CallLaunch, Compute: 100000, Occupancy: 0.4}) // long
		port.Execute(&rpcproto.Call{ID: cuda.CallDeviceSync})
	})
	k.Go("bt2", func(p *sim.Proc) {
		p.Sleep(1)
		port, _ := pk.Open(p, 2, 11)
		port.Execute(&rpcproto.Call{ID: cuda.CallLaunch, Compute: 10000, Occupancy: 0.4})
		port.Execute(&rpcproto.Call{ID: cuda.CallDeviceSync})
		app2Done = p.Now()
	})
	k.Run()
	// App 2's 25us kernel (occ 0.4) overlaps app 1's 250us kernel; its
	// "device" sync is stream-scoped so it returns at ~26us, not ~250us.
	if app2Done > 100 {
		t.Fatalf("app2 sync at %v; SST failed to scope the sync", app2Done)
	}
}

func TestASTDefaultStreamTranslation(t *testing.T) {
	k := sim.NewKernel(1)
	pk, _ := newPacker(k)
	k.Go("bt", func(p *sim.Proc) {
		port, _ := pk.Open(p, 1, 10)
		if got := port.translateStream(cuda.DefaultStream); got != port.Stream() {
			t.Errorf("default stream translated to %v, want %v", got, port.Stream())
		}
		if got := port.translateStream(7); got != 7 {
			t.Errorf("explicit stream translated to %v, want 7", got)
		}
	})
	k.Run()
}

func TestThreadExitFreesEverything(t *testing.T) {
	k := sim.NewKernel(1)
	pk, dev := newPacker(k)
	k.Go("bt", func(p *sim.Proc) {
		port, _ := pk.Open(p, 1, 10)
		ptr, _ := mallocVia(port, 1000)
		port.Execute(&rpcproto.Call{
			ID: cuda.CallMemcpy, Dir: cuda.H2D,
			PtrID: ptr.ID, PtrSize: ptr.Size, Bytes: 400,
		})
		r := port.Execute(&rpcproto.Call{ID: cuda.CallThreadExit})
		if r.Err != "" {
			t.Errorf("exit: %s", r.Err)
		}
		if dev.MemUsed() != 0 {
			t.Errorf("device memory leaked: %d", dev.MemUsed())
		}
		if pk.PMT().Len() != 0 {
			t.Errorf("PMT leaked %d entries", pk.PMT().Len())
		}
		r = port.Execute(&rpcproto.Call{ID: cuda.CallLaunch, Compute: 1})
		if errors.Is(r.AsError(), cuda.ErrThreadExited) == false {
			t.Errorf("call after exit = %v", r.AsError())
		}
	})
	k.Run()
}

func TestPinCostCharged(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDev(k)
	rt := cuda.NewRuntime(k, []*gpu.Device{dev}, cuda.Config{})
	pk := New(rt, Config{PinBandwidth: 10}) // 10 B/us staging
	var elapsed sim.Time
	k.Go("bt", func(p *sim.Proc) {
		port, _ := pk.Open(p, 1, 10)
		ptr, _ := mallocVia(port, 1000)
		t0 := p.Now()
		port.Execute(&rpcproto.Call{
			ID: cuda.CallMemcpy, Dir: cuda.H2D,
			PtrID: ptr.ID, PtrSize: ptr.Size, Bytes: 500,
		})
		elapsed = p.Now() - t0
		port.Execute(&rpcproto.Call{ID: cuda.CallDeviceSync})
	})
	k.Run()
	if elapsed != 50 {
		t.Fatalf("pin staging cost %v, want 50us", elapsed)
	}
}

func TestUnknownCallRejected(t *testing.T) {
	k := sim.NewKernel(1)
	pk, _ := newPacker(k)
	k.Go("bt", func(p *sim.Proc) {
		port, _ := pk.Open(p, 1, 10)
		r := port.Execute(&rpcproto.Call{ID: cuda.CallID(99)})
		if !errors.Is(r.AsError(), cuda.ErrNotImplemented) {
			t.Errorf("unknown call = %v", r.AsError())
		}
	})
	k.Run()
}

func TestStreamCreateAndExplicitUse(t *testing.T) {
	k := sim.NewKernel(1)
	pk, _ := newPacker(k)
	k.Go("bt", func(p *sim.Proc) {
		port, _ := pk.Open(p, 1, 10)
		r := port.Execute(&rpcproto.Call{ID: cuda.CallStreamCreate})
		if r.Err != "" || r.Stream == 0 {
			t.Errorf("stream create = %+v", r)
		}
		r = port.Execute(&rpcproto.Call{ID: cuda.CallLaunch, Compute: 5000, Stream: r.Stream})
		if r.Err != "" {
			t.Errorf("launch on explicit stream: %s", r.Err)
		}
		r = port.Execute(&rpcproto.Call{ID: cuda.CallStreamDestroy, Stream: 0})
		if !errors.Is(r.AsError(), cuda.ErrInvalidValue) {
			t.Errorf("destroying stream 0 = %v", r.AsError())
		}
	})
	k.Run()
}
