package trace_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/stringsched"
)

// goldenCells is the fixed grid of traced runs: the strings-trace default
// scenario (6 Monte Carlo requests at lambda 0.4 on a Quadro 2000 + Tesla
// C2050 Strings node) across seeds and policies.
var goldenCells = []struct {
	seed    int64
	balance string
}{
	{1, "GMin"}, {2, "GMin"}, {1, "GRR"}, {1, "GWtMin"}, {3, "MBF"}, {1, "RTF"},
}

// goldenTraceSHA pins the concatenated JSONL export of the whole grid.
// Captured from the sequential run at commit time; any change to the span
// stream — ordering, field values, encoding — shows up here.
const goldenTraceSHA = "1889c8a8dcba56fc280d8e23f1848d071ffaf962e1acf229cd9e7712a5648903"

// runGoldenGrid executes the grid at the given worker count and returns each
// cell's JSONL export, in grid order.
func runGoldenGrid(t *testing.T, workers int) [][]byte {
	t.Helper()
	return parallel.Map(len(goldenCells), workers, func(i int) []byte {
		cell := goldenCells[i]
		rec := stringsched.NewTraceRecorder()
		c, err := stringsched.NewCluster(stringsched.Config{
			Seed: cell.seed,
			Nodes: []stringsched.NodeConfig{{Devices: []stringsched.DeviceSpec{
				stringsched.Quadro2000, stringsched.TeslaC2050,
			}}},
			Mode:     stringsched.ModeStrings,
			Balance:  cell.balance,
			Recorder: rec,
		})
		if err != nil {
			t.Errorf("cell %d: %v", i, err)
			return nil
		}
		r, err := c.Run([]stringsched.StreamSpec{{
			Kind: stringsched.MonteCarlo, Count: 6, LambdaFactor: 0.4,
			Node: 0, Tenant: 1, Weight: 1,
		}})
		if err != nil || len(r.Errors) > 0 {
			t.Errorf("cell %d: %v %v", i, err, r.Errors)
			return nil
		}
		return rec.Snapshot().AppendJSONL(nil)
	})
}

// TestTraceGolden pins the span stream three ways: the export must be
// byte-identical between sequential and oversubscribed-parallel execution,
// its hash must match the value captured at commit time, and the canonical
// JSONL must round-trip through ParseJSONL unchanged.
func TestTraceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full traced grid")
	}
	seq := runGoldenGrid(t, 1)
	par := runGoldenGrid(t, 8)
	if t.Failed() {
		t.FailNow()
	}
	var all []byte
	for i := range goldenCells {
		if !bytes.Equal(seq[i], par[i]) {
			t.Errorf("cell %d (seed %d, %s): trace differs between workers=1 and workers=8",
				i, goldenCells[i].seed, goldenCells[i].balance)
		}
		if len(seq[i]) == 0 {
			t.Errorf("cell %d produced an empty trace", i)
		}
		all = append(all, seq[i]...)
	}
	sum := sha256.Sum256(all)
	if got := hex.EncodeToString(sum[:]); got != goldenTraceSHA {
		t.Errorf("trace golden hash = %s, want %s (span stream drifted)", got, goldenTraceSHA)
	}

	// Round trip: the export is already canonical, so Parse∘Encode is the
	// identity on it.
	for i := range goldenCells {
		set, err := trace.ParseJSONL(seq[i])
		if err != nil {
			t.Fatalf("cell %d: export does not re-parse: %v", i, err)
		}
		if !bytes.Equal(set.AppendJSONL(nil), seq[i]) {
			t.Errorf("cell %d: export is not a ParseJSONL fixed point", i)
		}
		if len(set.Decisions) == 0 {
			t.Errorf("cell %d: no decision-audit records in a Strings-mode run", i)
		}
	}
}
