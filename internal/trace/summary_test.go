package trace

import (
	"bytes"
	"strings"
	"testing"
)

func summarySet() *Set {
	return &Set{
		Spans: []Span{
			// App 2 arrives first but app 1's request span is recorded first:
			// Summarize must order by start time, not recording order.
			{ID: 1, Kind: KRequest, Name: "MC", App: 1, GID: 0, Start: 200, End: 900},
			{ID: 2, Kind: KSelect, Name: "select-gpu", App: 1, GID: 0, Start: 210, End: 215},
			{ID: 3, Kind: KCall, Name: "cudaLaunch", App: 1, GID: 0, Start: 220, End: 300},
			{ID: 4, Kind: KCall, Name: "cudaMemcpy", App: 1, GID: 0, Start: 310, End: 350},
			{ID: 5, Kind: KWait, Name: "wait-turn", App: 1, GID: 0, Start: 230, End: 260},
			{ID: 6, Kind: KExec, Name: "cudaLaunch", App: 1, GID: 0, Start: 260, End: 290},
			{ID: 7, Kind: KOp, Name: "kernel", App: 1, GID: 0, Start: 265, End: 285},
			{ID: 8, Kind: KRequest, Name: "BS", App: 2, GID: 1, Start: 100, End: -1},
			// Cluster-scoped span (App -1) must not create a summary row.
			{ID: 9, Kind: KOp, Name: "sys", App: -1, GID: 0, Start: 1, End: 2},
		},
		Decisions: []Decision{
			{At: 205, App: 1, Class: "MC", Policy: "GMin", Raw: 1, Picked: 0, Spilled: true},
		},
	}
}

func TestSummarize(t *testing.T) {
	sums := summarySet().Summarize()
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	// Ordered by start: app 2 (start 100) first.
	if sums[0].App != 2 || sums[1].App != 1 {
		t.Fatalf("order = app %d, app %d; want 2, 1", sums[0].App, sums[1].App)
	}
	r := sums[1]
	if r.Name != "MC" || r.GID != 0 || r.Start != 200 || r.End != 900 {
		t.Errorf("request fields = %+v", r)
	}
	if r.Calls != 2 {
		t.Errorf("calls = %d, want 2", r.Calls)
	}
	if r.Wait != 30 || r.Exec != 30 || r.OpTime != 20 || r.Selected != 5 {
		t.Errorf("wait/exec/op/selected = %v/%v/%v/%v, want 30/30/20/5",
			r.Wait, r.Exec, r.OpTime, r.Selected)
	}
	if !r.Spilled {
		t.Error("spilled decision not folded into the summary")
	}
	if sums[0].Spilled {
		t.Error("app 2 marked spilled without a spilled decision")
	}
}

func TestWriteTimeline(t *testing.T) {
	var buf bytes.Buffer
	if err := summarySet().WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline has %d lines, want header + 2 rows:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "app") || !strings.Contains(lines[0], "gputime") {
		t.Errorf("header = %q", lines[0])
	}
	// App 2's request is still open.
	if !strings.Contains(lines[1], "open") {
		t.Errorf("open request row = %q, want latency 'open'", lines[1])
	}
	if !strings.Contains(lines[2], "(spilled)") {
		t.Errorf("spilled request row = %q, want '(spilled)' marker", lines[2])
	}
}

func TestWriteDecisions(t *testing.T) {
	set := &Set{Decisions: []Decision{
		{
			At: 120, App: 1, Class: "MC", Node: 0, Tenant: 4, Policy: "GMin",
			Raw: 1, Picked: 0, Spilled: true, SFTSamples: 5, SFTExec: 1234,
			Rows: []DecisionRow{
				{GID: 0, Node: 0, Health: "Healthy", Load: 2, Weight: 1.5},
				{GID: 1, Node: 0, Health: "Dead", Load: 0, Weight: 0.25},
			},
		},
		{At: 300, App: 2, Class: "BS", Policy: "GRR", Raw: 1, Picked: 1},
	}}
	var buf bytes.Buffer
	if err := set.WriteDecisions(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"policy named 1, spilled", "sft: 5 samples",
		"gid 0 node 0 Healthy", "gid 1 node 0 Dead", "gid 1  [sft: 0 samples",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("decision log missing %q:\n%s", want, out)
		}
	}
}
