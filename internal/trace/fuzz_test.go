package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

// FuzzParseJSONL hammers the JSONL decoder with arbitrary bytes. Whatever it
// accepts must re-encode canonically: Encode(Decode(x)) is a fixed point of
// Encode∘Decode, and the canonical form must itself be valid JSONL and valid
// input to the Chrome exporter.
func FuzzParseJSONL(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n\n"))
	f.Add(sampleSet().AppendJSONL(nil))
	f.Add([]byte(`{"t":"span","id":1,"parent":0,"kind":"request","name":"MC","app":1,"gid":0,"arg":0,"start":5,"end":-1}`))
	f.Add([]byte(`{"t":"event","kind":"wake","name":"","app":1,"gid":0,"arg":0,"at":9}`))
	f.Add([]byte(`{"t":"decision","at":1,"app":1,"class":"MC","node":0,"tenant":1,"policy":"GMin","raw":0,"picked":0,"spilled":false,"sft_samples":0,"sft_exec":0,"rows":[]}`))
	f.Add([]byte(`{"t":"decision","rows":[{"gid":0,"health":"Healthy","weight":1e999}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		set, err := ParseJSONL(data)
		if err != nil {
			return
		}
		canon := set.AppendJSONL(nil)
		back, err := ParseJSONL(canon)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, canon)
		}
		canon2 := back.AppendJSONL(nil)
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("encode∘decode is not a fixed point:\n%s\nvs\n%s", canon, canon2)
		}
		if chrome := set.AppendChrome(nil); !json.Valid(chrome) {
			t.Fatalf("Chrome export of accepted set is invalid JSON:\n%s", chrome)
		}
	})
}

// FuzzSpanEncode builds a span from arbitrary field values and checks the
// hand-rolled encoder emits a line the stock decoder accepts and the JSONL
// round trip preserves.
func FuzzSpanEncode(f *testing.F) {
	f.Add(int32(1), int32(0), uint8(1), "MC", 1, 0, int64(7), int64(100), int64(900))
	f.Add(int32(2), int32(-5), uint8(200), "bad\xffname\n", -1, -1, int64(-1), int64(-1), int64(-1))
	f.Fuzz(func(t *testing.T, id, parent int32, kind uint8, name string,
		app, gid int, arg, start, end int64) {
		in := Span{
			ID: SpanID(id), Parent: SpanID(parent), Kind: Kind(kind) % kindCount,
			Name: name, App: app, GID: gid, Arg: arg,
			Start: sim.Time(start), End: sim.Time(end),
		}
		line := appendSpanJSONL(nil, in)
		if !json.Valid(line) {
			t.Fatalf("span line is not valid JSON: %s", line)
		}
		set, err := ParseJSONL(line)
		if err != nil {
			t.Fatalf("span line does not parse: %v\n%s", err, line)
		}
		if len(set.Spans) != 1 {
			t.Fatalf("got %d spans", len(set.Spans))
		}
		out := set.Spans[0]
		// ID is reassigned and negative parents clamp; everything else must
		// survive (the name modulo UTF-8 canonicalization).
		if out.Kind != in.Kind || out.App != in.App || out.GID != in.GID ||
			out.Arg != in.Arg || out.Start != in.Start || out.End != in.End {
			t.Fatalf("round trip changed a field:\n in %+v\nout %+v", in, out)
		}
		if string(appendSpanJSONL(nil, out)) != string(appendSpanJSONL(nil, set.Spans[0])) {
			t.Fatal("re-encode unstable")
		}
	})
}

// FuzzEventEncode does the same for instants.
func FuzzEventEncode(f *testing.F) {
	f.Add(uint8(9), "wake", 1, 0, int64(0), int64(250))
	f.Add(uint8(0), "", -1, -1, int64(-9), int64(0))
	f.Fuzz(func(t *testing.T, kind uint8, name string, app, gid int, arg, at int64) {
		in := Event{
			Kind: Kind(kind) % kindCount, Name: name,
			App: app, GID: gid, Arg: arg, At: sim.Time(at),
		}
		line := appendEventJSONL(nil, in)
		if !json.Valid(line) {
			t.Fatalf("event line is not valid JSON: %s", line)
		}
		set, err := ParseJSONL(line)
		if err != nil {
			t.Fatalf("event line does not parse: %v\n%s", err, line)
		}
		if len(set.Events) != 1 {
			t.Fatalf("got %d events", len(set.Events))
		}
		out := set.Events[0]
		if out.Kind != in.Kind || out.App != in.App || out.GID != in.GID ||
			out.Arg != in.Arg || out.At != in.At {
			t.Fatalf("round trip changed a field:\n in %+v\nout %+v", in, out)
		}
	})
}
