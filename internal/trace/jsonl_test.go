package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// sampleSet exercises every record type and every field the wire carries.
func sampleSet() *Set {
	return &Set{
		Spans: []Span{
			{ID: 1, Parent: 0, Kind: KRequest, Name: "MC", App: 1, GID: 0, Arg: 7, Start: 100, End: 900},
			{ID: 2, Parent: 1, Kind: KCall, Name: `cuda"Launch"`, App: 1, GID: 0, Arg: 3, Start: 150, End: 400},
			{ID: 3, Parent: 0, Kind: KWait, Name: "wait\tturn\n", App: 2, GID: -1, Arg: -9, Start: 200, End: -1},
		},
		Events: []Event{
			{Kind: KWake, Name: "", App: 2, GID: 1, Arg: 0, At: 250},
			{Kind: KFailover, Name: "MC", App: 1, GID: 1, Arg: 2, At: 300},
		},
		Decisions: []Decision{
			{
				At: 120, App: 1, Class: "MC", Node: 0, Tenant: 4, Policy: "GMin",
				Raw: 1, Picked: 0, Spilled: true, SFTSamples: 5, SFTExec: 1234,
				Rows: []DecisionRow{
					{GID: 0, Node: 0, Health: "Healthy", Load: 2, Weight: 1.5},
					{GID: 1, Node: 0, Health: "Dead", Load: 0, Weight: 0.25},
				},
			},
		},
	}
}

// TestJSONLRoundTrip pins the encoder/decoder pair as an identity on encoder
// output: Parse(Encode(set)) reproduces the set, and re-encoding is
// byte-identical.
func TestJSONLRoundTrip(t *testing.T) {
	set := sampleSet()
	enc := set.AppendJSONL(nil)
	back, err := ParseJSONL(enc)
	if err != nil {
		t.Fatalf("ParseJSONL: %v", err)
	}
	if !reflect.DeepEqual(set, back) {
		t.Errorf("round trip changed the set:\n in %+v\nout %+v", set, back)
	}
	enc2 := back.AppendJSONL(nil)
	if !bytes.Equal(enc, enc2) {
		t.Error("re-encode is not byte-identical")
	}
}

// TestJSONLLinesAreValidJSON checks every emitted line against the stock
// decoder.
func TestJSONLLinesAreValidJSON(t *testing.T) {
	enc := sampleSet().AppendJSONL(nil)
	lines := bytes.Split(bytes.TrimRight(enc, "\n"), []byte{'\n'})
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6", len(lines))
	}
	for i, line := range lines {
		if !json.Valid(line) {
			t.Errorf("line %d is not valid JSON: %s", i+1, line)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSet().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), sampleSet().AppendJSONL(nil)) {
		t.Error("WriteJSONL differs from AppendJSONL")
	}
}

// TestAppendJSONString pins the escaping rules, including the U+FFFD
// canonicalization of invalid UTF-8 that makes decode∘encode idempotent.
func TestAppendJSONString(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", `"plain"`},
		{`quote"back\`, `"quote\"back\\"`},
		{"tab\tnl\ncr\r", `"tab\tnl\ncr\r"`},
		{"ctl\x01", `"ctl\u0001"`},
		{"bad\xffutf8", `"bad` + "�" + `utf8"`},
		{"κόσμε", `"κόσμε"`},
	}
	for _, tc := range cases {
		got := string(appendJSONString(nil, tc.in))
		if got != tc.want {
			t.Errorf("appendJSONString(%q) = %s, want %s", tc.in, got, tc.want)
		}
		var back string
		if err := json.Unmarshal([]byte(got), &back); err != nil {
			t.Errorf("emitted string %s does not decode: %v", got, err)
		}
	}
}

// TestAppendJSONFloat pins the canonicalization of unrepresentable floats.
func TestAppendJSONFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1.5, "1.5"},
		{0.1, "0.1"},
		{math.NaN(), "0"},
		{math.Inf(1), "0"},
		{math.Inf(-1), "0"},
		{1e21, "1e+21"},
	}
	for _, tc := range cases {
		if got := string(appendJSONFloat(nil, tc.in)); got != tc.want {
			t.Errorf("appendJSONFloat(%v) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestParseJSONLErrors(t *testing.T) {
	cases := []struct{ name, in, wantErr string }{
		{"not json", "{", "line 1"},
		{"unknown type", `{"t":"bogus"}`, `unknown record type "bogus"`},
		{"unknown span kind", `{"t":"span","kind":"zap"}`, `unknown span kind "zap"`},
		{"unknown event kind", `{"t":"event","kind":"zap"}`, `unknown event kind "zap"`},
		{"second line", "{\"t\":\"event\",\"kind\":\"wake\"}\n{", "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseJSONL([]byte(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseJSONL(%q) err = %v, want containing %q", tc.in, err, tc.wantErr)
			}
		})
	}
}

func TestParseJSONLNormalizes(t *testing.T) {
	in := strings.Join([]string{
		"", // blank lines skipped
		`{"t":"span","id":42,"parent":-3,"kind":"call","name":"n","app":1,"gid":0,"arg":0,"start":1,"end":2}`,
		"   ",
		`{"t":"span","id":42,"parent":1,"kind":"exec","name":"m","app":1,"gid":0,"arg":0,"start":1,"end":2}`,
	}, "\n")
	set, err := ParseJSONL([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Spans) != 2 {
		t.Fatalf("got %d spans", len(set.Spans))
	}
	if set.Spans[0].ID != 1 || set.Spans[1].ID != 2 {
		t.Errorf("ids not reassigned sequentially: %d, %d", set.Spans[0].ID, set.Spans[1].ID)
	}
	if set.Spans[0].Parent != 0 {
		t.Errorf("negative parent not clamped: %d", set.Spans[0].Parent)
	}
}

// TestEmptySetExports pins the degenerate case every exporter must handle.
func TestEmptySetExports(t *testing.T) {
	set := &Set{}
	if out := set.AppendJSONL(nil); len(out) != 0 {
		t.Errorf("empty set JSONL = %q", out)
	}
	chrome := set.AppendChrome(nil)
	if !json.Valid(chrome) {
		t.Errorf("empty set Chrome trace invalid: %s", chrome)
	}
	back, err := ParseJSONL(nil)
	if err != nil || len(back.Spans) != 0 {
		t.Errorf("ParseJSONL(nil) = %+v, %v", back, err)
	}
}
