package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// ReqSummary aggregates one request's spans into the per-request timeline
// strings-trace prints.
type ReqSummary struct {
	App      int
	Name     string // application class
	GID      int
	Start    sim.Time
	End      sim.Time
	Calls    int      // intercepted CUDA calls
	Wait     sim.Time // total time parked in the device scheduler's gate
	Exec     sim.Time // total time executing inside the Context Packer
	OpTime   sim.Time // total GPU engine time (kernels + copies)
	Selected sim.Time // device-selection round-trip time
	Spilled  bool     // the decision audit rerouted the policy's pick
}

// Summarize folds the span stream into per-request summaries, ordered by
// request start time (ties by app id).
func (s *Set) Summarize() []ReqSummary {
	byApp := make(map[int]*ReqSummary)
	order := make([]int, 0, 16)
	get := func(app int) *ReqSummary {
		if r, ok := byApp[app]; ok {
			return r
		}
		r := &ReqSummary{App: app, GID: -1}
		byApp[app] = r
		order = append(order, app)
		return r
	}
	for _, sp := range s.Spans {
		if sp.App < 0 {
			continue
		}
		r := get(sp.App)
		switch sp.Kind {
		case KRequest:
			r.Name = sp.Name
			r.Start = sp.Start
			r.End = sp.End
			r.GID = sp.GID
		case KSelect:
			r.Selected += sp.Duration()
		case KCall:
			r.Calls++
		case KWait:
			r.Wait += sp.Duration()
		case KExec:
			r.Exec += sp.Duration()
		case KOp:
			r.OpTime += sp.Duration()
		}
	}
	for _, d := range s.Decisions {
		if d.Spilled {
			if r, ok := byApp[d.App]; ok {
				r.Spilled = true
			}
		}
	}
	out := make([]ReqSummary, 0, len(order))
	for _, app := range order {
		out = append(out, *byApp[app])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].App < out[j].App
	})
	return out
}

// WriteTimeline renders the per-request timeline as an aligned text table.
func (s *Set) WriteTimeline(w io.Writer) error {
	sums := s.Summarize()
	if _, err := fmt.Fprintf(w, "%-5s %-6s %3s %12s %12s %6s %12s %12s %12s\n",
		"app", "class", "gid", "start", "latency", "calls", "wait", "exec", "gputime"); err != nil {
		return err
	}
	for _, r := range sums {
		lat := "open"
		if r.End >= r.Start {
			lat = (r.End - r.Start).String()
		}
		spill := ""
		if r.Spilled {
			spill = "  (spilled)"
		}
		if _, err := fmt.Fprintf(w, "%-5d %-6s %3d %12v %12s %6d %12v %12v %12v%s\n",
			r.App, r.Name, r.GID, r.Start, lat, r.Calls, r.Wait, r.Exec, r.OpTime, spill); err != nil {
			return err
		}
	}
	return nil
}

// WriteDecisions renders the decision-audit log as text, one decision per
// line with its row snapshot.
func (s *Set) WriteDecisions(w io.Writer) error {
	for _, d := range s.Decisions {
		verdict := fmt.Sprintf("gid %d", d.Picked)
		if d.Spilled {
			verdict = fmt.Sprintf("gid %d (policy named %d, spilled)", d.Picked, d.Raw)
		}
		if _, err := fmt.Fprintf(w, "%12v app %-4d %-6s node %d %-8s -> %s  [sft: %d samples, exec %v]\n",
			d.At, d.App, d.Class, d.Node, d.Policy, verdict, d.SFTSamples, d.SFTExec); err != nil {
			return err
		}
		for _, row := range d.Rows {
			if _, err := fmt.Fprintf(w, "%16s gid %d node %d %-7s load %d weight %.3g\n",
				"", row.GID, row.Node, row.Health, row.Load, row.Weight); err != nil {
				return err
			}
		}
	}
	return nil
}
