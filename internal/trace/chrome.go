package trace

import (
	"io"
	"sort"
)

// WriteChrome writes the set in the Chrome trace-event JSON array format
// (load it at chrome://tracing or ui.perfetto.dev). Virtual time maps 1:1
// onto the viewer's microsecond timestamps; devices become processes
// (pid = GID+1, pid 0 is cluster-level/unbound work) and applications
// become threads (tid = app id). The byte stream is deterministic: spans in
// id order, then events, then decisions, with metadata rows for the sorted
// pid set first.
func (s *Set) WriteChrome(w io.Writer) error {
	_, err := w.Write(s.AppendChrome(nil))
	return err
}

// chromePid maps a span/event GID onto a viewer process id.
func chromePid(gid int) int64 {
	if gid < 0 {
		return 0
	}
	return int64(gid) + 1
}

// AppendChrome appends the Chrome trace-event JSON array to b.
func (s *Set) AppendChrome(b []byte) []byte {
	b = append(b, '[')
	first := true
	emit := func() {
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, '\n')
	}

	// Metadata: name every process the trace touches. Collect the pid set,
	// then sort, so map order never reaches the output.
	pids := make(map[int64]bool)
	for _, sp := range s.Spans {
		pids[chromePid(sp.GID)] = true
	}
	for _, e := range s.Events {
		pids[chromePid(e.GID)] = true
	}
	sorted := make([]int64, 0, len(pids))
	for pid := range pids {
		sorted = append(sorted, pid)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, pid := range sorted {
		emit()
		b = append(b, `{"ph":"M","name":"process_name","pid":`...)
		b = appendInt(b, pid)
		b = append(b, `,"tid":0,"args":{"name":`...)
		if pid == 0 {
			b = appendJSONString(b, "cluster")
		} else {
			b = appendJSONString(b, "gpu")
			b = append(b, `,"gid":`...)
			b = appendInt(b, pid-1)
		}
		b = append(b, `}}`...)
	}

	// Complete ("X") events for spans. Open spans render with dur 0.
	for _, sp := range s.Spans {
		emit()
		b = append(b, `{"ph":"X","name":`...)
		b = appendJSONString(b, sp.Name)
		b = append(b, `,"cat":`...)
		b = appendJSONString(b, sp.Kind.String())
		b = append(b, `,"ts":`...)
		b = appendInt(b, int64(sp.Start))
		b = append(b, `,"dur":`...)
		b = appendInt(b, int64(sp.Duration()))
		b = append(b, `,"pid":`...)
		b = appendInt(b, chromePid(sp.GID))
		b = append(b, `,"tid":`...)
		b = appendInt(b, int64(sp.App))
		b = append(b, `,"args":{"id":`...)
		b = appendInt(b, int64(sp.ID))
		b = append(b, `,"parent":`...)
		b = appendInt(b, int64(sp.Parent))
		b = append(b, `,"arg":`...)
		b = appendInt(b, sp.Arg)
		b = append(b, `}}`...)
	}

	// Instant ("i") events.
	for _, e := range s.Events {
		emit()
		b = append(b, `{"ph":"i","name":`...)
		if e.Name != "" {
			b = appendJSONString(b, e.Name)
		} else {
			b = appendJSONString(b, e.Kind.String())
		}
		b = append(b, `,"cat":`...)
		b = appendJSONString(b, e.Kind.String())
		b = append(b, `,"ts":`...)
		b = appendInt(b, int64(e.At))
		b = append(b, `,"pid":`...)
		b = appendInt(b, chromePid(e.GID))
		b = append(b, `,"tid":`...)
		b = appendInt(b, int64(e.App))
		b = append(b, `,"s":"t","args":{"arg":`...)
		b = appendInt(b, e.Arg)
		b = append(b, `}}`...)
	}

	// Decision-audit records as instants on the cluster process, with the
	// full row snapshot in args.
	for _, d := range s.Decisions {
		emit()
		b = append(b, `{"ph":"i","name":"decision","cat":"decision","ts":`...)
		b = appendInt(b, int64(d.At))
		b = append(b, `,"pid":0,"tid":`...)
		b = appendInt(b, int64(d.App))
		b = append(b, `,"s":"g","args":{"class":`...)
		b = appendJSONString(b, d.Class)
		b = append(b, `,"policy":`...)
		b = appendJSONString(b, d.Policy)
		b = append(b, `,"raw":`...)
		b = appendInt(b, int64(d.Raw))
		b = append(b, `,"picked":`...)
		b = appendInt(b, int64(d.Picked))
		b = append(b, `,"spilled":`...)
		if d.Spilled {
			b = append(b, "true"...)
		} else {
			b = append(b, "false"...)
		}
		b = append(b, `,"sft_samples":`...)
		b = appendInt(b, int64(d.SFTSamples))
		b = append(b, `,"rows":[`...)
		for i, row := range d.Rows {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"gid":`...)
			b = appendInt(b, int64(row.GID))
			b = append(b, `,"health":`...)
			b = appendJSONString(b, row.Health)
			b = append(b, `,"load":`...)
			b = appendInt(b, int64(row.Load))
			b = append(b, `,"weight":`...)
			b = appendJSONFloat(b, row.Weight)
			b = append(b, '}')
		}
		b = append(b, `]}}`...)
	}
	return append(b, "\n]\n"...)
}
