package trace

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestNilRecorderIsSafe pins the disabled-path contract: every method on a
// nil *Recorder no-ops, returns its zero answer, and never panics.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports Enabled")
	}
	if r.Registry() != nil {
		t.Error("nil recorder has a registry")
	}
	if id := r.Begin(KRequest, 0, 10, "x", 1, 0, 0); id != 0 {
		t.Errorf("nil Begin returned span id %d, want 0", id)
	}
	r.End(0, 20)
	r.End(1, 20)
	r.SetGID(1, 3)
	r.Complete(KOp, "k", 1, 0, 0, 5, 9)
	r.Event(KWake, 7, "", 1, 0, 0)
	r.RecordDecision(Decision{})
	if r.Len() != 0 {
		t.Errorf("nil Len = %d", r.Len())
	}
	set := r.Snapshot()
	if set == nil || len(set.Spans)+len(set.Events)+len(set.Decisions) != 0 {
		t.Errorf("nil Snapshot = %+v, want empty set", set)
	}
}

// BenchmarkRecorderDisabled proves the nil recorder costs nothing on the hot
// path: the full instrument sequence a traced call site performs must run at
// 0 allocs/op.
func BenchmarkRecorderDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r.Enabled() {
			b.Fatal("nil recorder enabled")
		}
		id := r.Begin(KCall, 0, sim.Time(i), "call", 1, 0, int64(i))
		r.End(id, sim.Time(i+1))
		r.Complete(KOp, "op", 1, 0, 0, sim.Time(i), sim.Time(i+1))
		r.Event(KWake, sim.Time(i), "", 1, 0, 0)
	}
}

// BenchmarkRecorderEnabled sizes the enabled path for comparison.
func BenchmarkRecorderEnabled(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := r.Begin(KCall, 0, sim.Time(i), "call", 1, 0, int64(i))
		r.End(id, sim.Time(i+1))
	}
}

func TestSpanLifecycle(t *testing.T) {
	r := New()
	if !r.Enabled() {
		t.Fatal("fresh recorder not enabled")
	}
	req := r.Begin(KRequest, 0, 100, "MC", 1, -1, 7)
	call := r.Begin(KCall, req, 110, "cudaLaunch", 1, 0, 1)
	if req != 1 || call != 2 {
		t.Fatalf("span ids = %d, %d; want 1, 2", req, call)
	}
	r.End(call, 150)
	r.SetGID(req, 1)
	r.End(req, 200)

	set := r.Snapshot()
	if len(set.Spans) != 2 {
		t.Fatalf("got %d spans", len(set.Spans))
	}
	got := set.Spans[0]
	if got.Kind != KRequest || got.Name != "MC" || got.GID != 1 ||
		got.Start != 100 || got.End != 200 || got.Arg != 7 {
		t.Errorf("request span = %+v", got)
	}
	if d := got.Duration(); d != 100 {
		t.Errorf("request duration = %v, want 100", d)
	}
	if set.Spans[1].Parent != req {
		t.Errorf("call parent = %d, want %d", set.Spans[1].Parent, req)
	}

	// Double-End must not move a closed span; out-of-range ids no-op.
	r.End(req, 999)
	r.End(99, 999)
	r.SetGID(99, 5)
	if s := r.Snapshot().Spans[0]; s.End != 200 {
		t.Errorf("double End moved span end to %v", s.End)
	}
}

func TestOpenSpanDuration(t *testing.T) {
	r := New()
	r.Begin(KWait, 0, 50, "wait", 1, 0, 0)
	sp := r.Snapshot().Spans[0]
	if sp.End != -1 {
		t.Errorf("open span End = %v, want -1", sp.End)
	}
	if sp.Duration() != 0 {
		t.Errorf("open span Duration = %v, want 0", sp.Duration())
	}
}

func TestCompleteAndEvents(t *testing.T) {
	r := New()
	r.Complete(KOp, "kernel", 2, 1, 4096, 10, 35)
	r.Event(KRetry, 40, "cudaLaunch", 2, 1, 3)
	set := r.Snapshot()
	if len(set.Spans) != 1 || len(set.Events) != 1 {
		t.Fatalf("got %d spans, %d events", len(set.Spans), len(set.Events))
	}
	if sp := set.Spans[0]; sp.Start != 10 || sp.End != 35 || sp.Kind != KOp {
		t.Errorf("completed span = %+v", sp)
	}
	if e := set.Events[0]; e.Kind != KRetry || e.At != 40 || e.Arg != 3 {
		t.Errorf("event = %+v", e)
	}
}

func TestInstrumentsObserveSpans(t *testing.T) {
	r := New()
	for i := 0; i < 3; i++ {
		id := r.Begin(KCall, 0, sim.Time(10*i), "c", 1, 0, 0)
		r.End(id, sim.Time(10*i+5))
	}
	r.Event(KWake, 1, "", 1, 0, 0)
	r.RecordDecision(Decision{Spilled: true})
	r.RecordDecision(Decision{})

	reg := r.Registry()
	if reg == nil {
		t.Fatal("no registry")
	}
	if got := reg.Counter("trace.spans").Value(); got != 3 {
		t.Errorf("trace.spans = %d, want 3", got)
	}
	if got := reg.Counter("trace.events").Value(); got != 1 {
		t.Errorf("trace.events = %d, want 1", got)
	}
	if got := reg.Counter("trace.decisions").Value(); got != 2 {
		t.Errorf("trace.decisions = %d, want 2", got)
	}
	if got := reg.Counter("trace.spills").Value(); got != 1 {
		t.Errorf("trace.spills = %d, want 1", got)
	}
	h := reg.Histogram("trace.call_us")
	if h.Count() != 3 || h.Sum() != 15 || h.Max() != 5 {
		t.Errorf("call histogram count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
}

func TestKindNames(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		name := k.String()
		if name == "" {
			t.Fatalf("kind %d has empty name", k)
		}
		back, ok := KindByName(name)
		if !ok || back != k {
			t.Errorf("KindByName(%q) = %v, %v; want %v, true", name, back, ok, k)
		}
	}
	if Kind(200).String() != "none" {
		t.Errorf("out-of-range kind String = %q", Kind(200).String())
	}
	if _, ok := KindByName("bogus"); ok {
		t.Error("KindByName accepted an unknown name")
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := New()
	r.Begin(KRequest, 0, 1, "a", 1, 0, 0)
	set := r.Snapshot()
	r.Begin(KRequest, 0, 2, "b", 2, 0, 0)
	if len(set.Spans) != 1 {
		t.Errorf("snapshot grew with the recorder: %d spans", len(set.Spans))
	}
	set.Spans[0].Name = "mutated"
	if r.Snapshot().Spans[0].Name != "a" {
		t.Error("mutating a snapshot changed the recorder")
	}
}

// TestResetRecorderIsFresh: a reset recorder must be indistinguishable from
// a new one — same snapshot, same instrument values — while reusing its
// buffers (no re-growth; verified via capacity retention).
func TestResetRecorderIsFresh(t *testing.T) {
	record := func(r *Recorder) {
		sp := r.Begin(KCall, 0, 10, "memcpy", 1, 0, 7)
		r.End(sp, 25)
		r.Event(KWake, 12, "", 1, 0, 0)
		r.RecordDecision(Decision{At: 13, App: 1, Picked: 2, Spilled: true})
	}
	reused := New()
	for i := 0; i < 50; i++ { // grow past the pre-size? no — exercise reuse
		record(reused)
	}
	capBefore := cap(reused.spans)
	reused.Reset()
	if len(reused.spans) != 0 || len(reused.events) != 0 || len(reused.decisions) != 0 {
		t.Fatal("Reset left records behind")
	}
	if cap(reused.spans) != capBefore {
		t.Fatalf("Reset dropped the span backing array: cap %d -> %d", capBefore, cap(reused.spans))
	}
	record(reused)

	fresh := New()
	record(fresh)
	if !reflect.DeepEqual(reused.Snapshot(), fresh.Snapshot()) {
		t.Fatal("reset recorder's snapshot differs from a fresh recorder's")
	}
	for _, name := range []string{"trace.spans", "trace.events", "trace.decisions", "trace.spills"} {
		if got, want := reused.Registry().Counter(name).Value(), fresh.Registry().Counter(name).Value(); got != want {
			t.Errorf("%s = %d after reset, want %d", name, got, want)
		}
	}
	if got, want := reused.Registry().Histogram("trace.call_us").Count(), fresh.Registry().Histogram("trace.call_us").Count(); got != want {
		t.Errorf("call histogram count = %d after reset, want %d", got, want)
	}
}
