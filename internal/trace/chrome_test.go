package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// chromeEvents decodes the Chrome export through the stock JSON decoder —
// if chrome://tracing could not load it, neither can this.
func chromeEvents(t *testing.T, set *Set) []map[string]any {
	t.Helper()
	raw := set.AppendChrome(nil)
	if !json.Valid(raw) {
		t.Fatalf("Chrome export is not valid JSON:\n%s", raw)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("Chrome export is not a JSON array: %v", err)
	}
	return events
}

func TestChromeExportStructure(t *testing.T) {
	set := sampleSet()
	events := chromeEvents(t, set)

	var meta, complete, instant, decisions int
	pids := make(map[float64]bool)
	for _, e := range events {
		switch e["ph"] {
		case "M":
			meta++
			if e["name"] != "process_name" {
				t.Errorf("metadata row name = %v", e["name"])
			}
		case "X":
			complete++
			pids[e["pid"].(float64)] = true
		case "i":
			instant++
			if e["cat"] == "decision" {
				decisions++
				if e["pid"].(float64) != 0 {
					t.Errorf("decision instant on pid %v, want 0 (cluster)", e["pid"])
				}
			}
		default:
			t.Errorf("unexpected phase %v", e["ph"])
		}
	}
	if complete != len(set.Spans) {
		t.Errorf("%d complete events, want %d", complete, len(set.Spans))
	}
	if instant != len(set.Events)+len(set.Decisions) {
		t.Errorf("%d instants, want %d", instant, len(set.Events)+len(set.Decisions))
	}
	if decisions != len(set.Decisions) {
		t.Errorf("%d decision instants, want %d", decisions, len(set.Decisions))
	}
	// sampleSet spans sit on GID 0 and GID -1: pids 1 and 0.
	if !pids[0] || !pids[1] {
		t.Errorf("span pids = %v, want {0, 1}", pids)
	}
	// One metadata row per pid the spans/events touch (0, 1, 2).
	if meta != 3 {
		t.Errorf("%d metadata rows, want 3", meta)
	}
}

func TestChromePidMapping(t *testing.T) {
	cases := []struct {
		gid  int
		want int64
	}{{-1, 0}, {0, 1}, {7, 8}}
	for _, tc := range cases {
		if got := chromePid(tc.gid); got != tc.want {
			t.Errorf("chromePid(%d) = %d, want %d", tc.gid, got, tc.want)
		}
	}
}

// TestChromeSpanFields pins the ts/dur mapping: virtual microseconds map 1:1
// onto the viewer's timestamps.
func TestChromeSpanFields(t *testing.T) {
	set := &Set{Spans: []Span{
		{ID: 1, Kind: KOp, Name: "kernel", App: 3, GID: 2, Arg: 11, Start: 100, End: 250},
	}}
	events := chromeEvents(t, set)
	var x map[string]any
	for _, e := range events {
		if e["ph"] == "X" {
			x = e
		}
	}
	if x == nil {
		t.Fatal("no complete event emitted")
	}
	if x["ts"].(float64) != 100 || x["dur"].(float64) != 150 {
		t.Errorf("ts/dur = %v/%v, want 100/150", x["ts"], x["dur"])
	}
	if x["pid"].(float64) != 3 || x["tid"].(float64) != 3 {
		t.Errorf("pid/tid = %v/%v, want 3/3", x["pid"], x["tid"])
	}
	args := x["args"].(map[string]any)
	if args["arg"].(float64) != 11 {
		t.Errorf("args.arg = %v, want 11", args["arg"])
	}
}

// TestChromeDeterministic pins byte-level determinism of the export.
func TestChromeDeterministic(t *testing.T) {
	a := sampleSet().AppendChrome(nil)
	b := sampleSet().AppendChrome(nil)
	if !bytes.Equal(a, b) {
		t.Error("two Chrome exports of the same set differ")
	}
}
