package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"unicode/utf8"

	"repro/internal/sim"
)

// fromWire converts a wire int64 back to virtual time.
func fromWire(v int64) sim.Time { return sim.Time(v) }

// The compact JSONL export: one JSON object per line, in deterministic
// order — spans in id order, then events, then decisions, each in recording
// order. The encoder is hand-rolled (appendJSONString/strconv) so the byte
// stream is a pure function of the Set; the decoder rides encoding/json.
// Encode(Decode(Encode(x))) == Encode(Decode(x)) — the canonical-form fixed
// point the fuzz targets enforce.

// appendJSONString appends s as a JSON string literal. Invalid UTF-8 is
// canonicalized to U+FFFD, matching what encoding/json does on decode, so a
// re-encode of a decoded stream reproduces it byte for byte.
func appendJSONString(b []byte, s string) []byte {
	if !utf8.ValidString(s) {
		s = strings.ToValidUTF8(s, "�")
	}
	b = append(b, '"')
	for _, r := range s {
		switch r {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case '\t':
			b = append(b, '\\', 't')
		default:
			if r < 0x20 {
				b = append(b, fmt.Sprintf(`\u%04x`, r)...)
			} else {
				b = utf8.AppendRune(b, r)
			}
		}
	}
	return append(b, '"')
}

// appendJSONFloat appends f in shortest-round-trip form; NaN and infinities
// (unrepresentable in JSON) canonicalize to 0.
func appendJSONFloat(b []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		f = 0
	}
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

func appendInt(b []byte, v int64) []byte { return strconv.AppendInt(b, v, 10) }

// appendSpanJSONL appends one span line (no trailing newline).
func appendSpanJSONL(b []byte, s Span) []byte {
	b = append(b, `{"t":"span","id":`...)
	b = appendInt(b, int64(s.ID))
	b = append(b, `,"parent":`...)
	b = appendInt(b, int64(s.Parent))
	b = append(b, `,"kind":`...)
	b = appendJSONString(b, s.Kind.String())
	b = append(b, `,"name":`...)
	b = appendJSONString(b, s.Name)
	b = append(b, `,"app":`...)
	b = appendInt(b, int64(s.App))
	b = append(b, `,"gid":`...)
	b = appendInt(b, int64(s.GID))
	b = append(b, `,"arg":`...)
	b = appendInt(b, s.Arg)
	b = append(b, `,"start":`...)
	b = appendInt(b, int64(s.Start))
	b = append(b, `,"end":`...)
	b = appendInt(b, int64(s.End))
	return append(b, '}')
}

// appendEventJSONL appends one event line.
func appendEventJSONL(b []byte, e Event) []byte {
	b = append(b, `{"t":"event","kind":`...)
	b = appendJSONString(b, e.Kind.String())
	b = append(b, `,"name":`...)
	b = appendJSONString(b, e.Name)
	b = append(b, `,"app":`...)
	b = appendInt(b, int64(e.App))
	b = append(b, `,"gid":`...)
	b = appendInt(b, int64(e.GID))
	b = append(b, `,"arg":`...)
	b = appendInt(b, e.Arg)
	b = append(b, `,"at":`...)
	b = appendInt(b, int64(e.At))
	return append(b, '}')
}

// appendDecisionJSONL appends one decision-audit line.
func appendDecisionJSONL(b []byte, d Decision) []byte {
	b = append(b, `{"t":"decision","at":`...)
	b = appendInt(b, int64(d.At))
	b = append(b, `,"app":`...)
	b = appendInt(b, int64(d.App))
	b = append(b, `,"class":`...)
	b = appendJSONString(b, d.Class)
	b = append(b, `,"node":`...)
	b = appendInt(b, int64(d.Node))
	b = append(b, `,"tenant":`...)
	b = appendInt(b, d.Tenant)
	b = append(b, `,"policy":`...)
	b = appendJSONString(b, d.Policy)
	b = append(b, `,"raw":`...)
	b = appendInt(b, int64(d.Raw))
	b = append(b, `,"picked":`...)
	b = appendInt(b, int64(d.Picked))
	b = append(b, `,"spilled":`...)
	b = strconv.AppendBool(b, d.Spilled)
	b = append(b, `,"sft_samples":`...)
	b = appendInt(b, int64(d.SFTSamples))
	b = append(b, `,"sft_exec":`...)
	b = appendInt(b, int64(d.SFTExec))
	b = append(b, `,"rows":[`...)
	for i, row := range d.Rows {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"gid":`...)
		b = appendInt(b, int64(row.GID))
		b = append(b, `,"node":`...)
		b = appendInt(b, int64(row.Node))
		b = append(b, `,"health":`...)
		b = appendJSONString(b, row.Health)
		b = append(b, `,"load":`...)
		b = appendInt(b, int64(row.Load))
		b = append(b, `,"weight":`...)
		b = appendJSONFloat(b, row.Weight)
		if row.FreeFrac != 0 || row.FreeMem != 0 {
			b = append(b, `,"free_frac":`...)
			b = appendInt(b, int64(row.FreeFrac))
			b = append(b, `,"free_mem":`...)
			b = appendInt(b, row.FreeMem)
		}
		b = append(b, '}')
	}
	return append(b, `]}`...)
}

// AppendJSONL appends the whole set in JSONL form to b and returns it.
func (s *Set) AppendJSONL(b []byte) []byte {
	for _, sp := range s.Spans {
		b = appendSpanJSONL(b, sp)
		b = append(b, '\n')
	}
	for _, e := range s.Events {
		b = appendEventJSONL(b, e)
		b = append(b, '\n')
	}
	for _, d := range s.Decisions {
		b = appendDecisionJSONL(b, d)
		b = append(b, '\n')
	}
	return b
}

// WriteJSONL writes the set in JSONL form.
func (s *Set) WriteJSONL(w io.Writer) error {
	_, err := w.Write(s.AppendJSONL(nil))
	return err
}

// jsonlRecord is the union decode target for one JSONL line.
type jsonlRecord struct {
	T      string `json:"t"`
	ID     int32  `json:"id"`
	Parent int32  `json:"parent"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	App    int    `json:"app"`
	GID    int    `json:"gid"`
	Arg    int64  `json:"arg"`
	Start  int64  `json:"start"`
	End    int64  `json:"end"`
	At     int64  `json:"at"`

	Class      string          `json:"class"`
	Node       int             `json:"node"`
	Tenant     int64           `json:"tenant"`
	Policy     string          `json:"policy"`
	Raw        int             `json:"raw"`
	Picked     int             `json:"picked"`
	Spilled    bool            `json:"spilled"`
	SFTSamples int             `json:"sft_samples"`
	SFTExec    int64           `json:"sft_exec"`
	Rows       []jsonlAuditRow `json:"rows"`
}

type jsonlAuditRow struct {
	GID      int     `json:"gid"`
	Node     int     `json:"node"`
	Health   string  `json:"health"`
	Load     int     `json:"load"`
	Weight   float64 `json:"weight"`
	FreeFrac int     `json:"free_frac"`
	FreeMem  int64   `json:"free_mem"`
}

// ParseJSONL decodes a JSONL stream back into a Set. Lines must be valid
// JSON objects with a known "t"; blank lines are skipped. Span ids are
// reassigned in stream order (the encoder emits them in id order, so a
// round trip is the identity on encoder output).
func ParseJSONL(data []byte) (*Set, error) {
	set := &Set{}
	for ln, line := range bytes.Split(data, []byte{'\n'}) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec jsonlRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", ln+1, err)
		}
		switch rec.T {
		case "span":
			k, ok := KindByName(rec.Kind)
			if !ok {
				return nil, fmt.Errorf("trace: jsonl line %d: unknown span kind %q", ln+1, rec.Kind)
			}
			parent := SpanID(rec.Parent)
			if parent < 0 {
				parent = 0
			}
			set.Spans = append(set.Spans, Span{
				ID: SpanID(len(set.Spans) + 1), Parent: parent, Kind: k,
				Name: rec.Name, App: rec.App, GID: rec.GID, Arg: rec.Arg,
				Start: fromWire(rec.Start), End: fromWire(rec.End),
			})
		case "event":
			k, ok := KindByName(rec.Kind)
			if !ok {
				return nil, fmt.Errorf("trace: jsonl line %d: unknown event kind %q", ln+1, rec.Kind)
			}
			set.Events = append(set.Events, Event{
				Kind: k, Name: rec.Name, App: rec.App, GID: rec.GID,
				Arg: rec.Arg, At: fromWire(rec.At),
			})
		case "decision":
			d := Decision{
				At: fromWire(rec.At), App: rec.App, Class: rec.Class,
				Node: rec.Node, Tenant: rec.Tenant, Policy: rec.Policy,
				Raw: rec.Raw, Picked: rec.Picked, Spilled: rec.Spilled,
				SFTSamples: rec.SFTSamples, SFTExec: fromWire(rec.SFTExec),
			}
			for _, row := range rec.Rows {
				d.Rows = append(d.Rows, DecisionRow(row))
			}
			set.Decisions = append(set.Decisions, d)
		default:
			return nil, fmt.Errorf("trace: jsonl line %d: unknown record type %q", ln+1, rec.T)
		}
	}
	return set, nil
}
