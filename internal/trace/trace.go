// Package trace is the simulator's deterministic observability layer: a
// virtual-time span/event recorder threaded through the full request path —
// interposer call → balancer policy decision → packer stream ops → device
// scheduler dispatch → GPU op completion.
//
// Everything the recorder emits carries sim.Time, never wall time, so a
// trace is a pure function of (configuration, seed): the same run produces
// a byte-identical trace at any -parallel worker count, extending the
// determinism boundary of internal/parallel. A nil *Recorder is the
// disabled state — every method is nil-safe and returns immediately, so
// instrumented hot paths cost nothing (and allocate nothing) when tracing
// is off.
package trace

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// SpanID identifies a span within one Recorder. IDs are 1-based indices in
// recording order; 0 is "no span" (the nil recorder's answer, and the root
// parent).
type SpanID int32

// Kind classifies spans and events along the request path.
type Kind uint8

// Span and event kinds.
const (
	// KNone is the zero kind (unclassified).
	KNone Kind = iota

	// KRequest spans one application request end to end: arrival to
	// completion (or failure).
	KRequest
	// KSelect spans the device-selection round trip with the GPU Affinity
	// Mapper (the interposed cudaSetDevice override).
	KSelect
	// KCall spans one intercepted CUDA call from RPC issue to the
	// frontend-visible return (non-blocking calls return at issue).
	KCall
	// KExec spans one marshalled call's execution inside the Context
	// Packer (backend side).
	KExec
	// KWait spans a backend thread parked in the device scheduler's
	// WaitTurn gate.
	KWait
	// KOp spans one GPU op (kernel or copy) from engine start to
	// completion.
	KOp

	// KRegister marks an RCB registration with the device scheduler.
	KRegister
	// KUnregister marks an RCB unregistration (feedback harvest).
	KUnregister
	// KWake marks the dispatcher waking a backend thread.
	KWake
	// KSleep marks the dispatcher putting a backend thread to sleep.
	KSleep
	// KRetry marks a recovery retransmission of a timed-out call.
	KRetry
	// KFailover marks an interposer abandoning a dead backend for a
	// replacement GPU.
	KFailover

	kindCount // sentinel
)

// kindNames are the wire names of the kinds (stable: they appear in JSONL
// and Chrome output and are pinned by golden tests).
var kindNames = [kindCount]string{
	KNone:       "none",
	KRequest:    "request",
	KSelect:     "select",
	KCall:       "call",
	KExec:       "exec",
	KWait:       "wait",
	KOp:         "op",
	KRegister:   "register",
	KUnregister: "unregister",
	KWake:       "wake",
	KSleep:      "sleep",
	KRetry:      "retry",
	KFailover:   "failover",
}

// String returns the kind's wire name.
func (k Kind) String() string {
	if k < kindCount {
		return kindNames[k]
	}
	return "none"
}

// KindByName returns the kind with the given wire name ("none", false for
// unknown names).
func KindByName(name string) (Kind, bool) {
	for k := Kind(0); k < kindCount; k++ {
		if kindNames[k] == name {
			return k, true
		}
	}
	return KNone, false
}

// open is the End value of a span still in flight.
const open = sim.Time(-1)

// Span is one interval on the virtual-time line.
type Span struct {
	ID     SpanID
	Parent SpanID // enclosing span, 0 for roots
	Kind   Kind
	Name   string
	App    int // application id (-1 when not app-scoped)
	GID    int // gPool device id (-1 while unbound)
	Arg    int64
	Start  sim.Time
	End    sim.Time // -1 while open
}

// Duration returns End-Start (0 for open spans).
func (s Span) Duration() sim.Time {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// Event is one instant on the virtual-time line.
type Event struct {
	Kind Kind
	Name string
	App  int
	GID  int
	Arg  int64
	At   sim.Time
}

// DecisionRow snapshots one DST row as the policy saw it (before the
// winning bind mutated the table). FreeFrac/FreeMem carry a partitionable
// row's uncarved capacity (compute sevenths, memory bytes) so slice-
// placement audits show why a device was or wasn't a fit; both stay zero on
// classic rows and are then omitted from the JSONL encoding, keeping
// pre-slice trace bytes identical.
type DecisionRow struct {
	GID      int
	Node     int
	Health   string
	Load     int
	Weight   float64
	FreeFrac int
	FreeMem  int64
}

// Decision is the structured audit record of one cudaSetDevice override:
// which DST rows the policy consulted, what the SFT knew about the class,
// which device the policy named and which one actually won.
type Decision struct {
	At     sim.Time
	App    int
	Class  string // application class (workload short code)
	Node   int
	Tenant int64
	Policy string

	Raw     int  // the policy's own pick
	Picked  int  // the final pick after the mapper's health spill-over
	Spilled bool // Picked != Raw because Raw's row was not Healthy

	SFTSamples int      // feedback history depth for Class at decision time
	SFTExec    sim.Time // the SFT's mean runtime estimate for Class (0 if none)

	Rows []DecisionRow
}

// Recorder collects spans, events and decision-audit records for one
// simulation run. It is not safe for concurrent use — but a simulation
// kernel runs exactly one process at a time, so a per-run recorder needs no
// locks, and per-cell recorders keep parallel sweeps deterministic.
//
// The nil *Recorder is the disabled recorder: every method no-ops.
type Recorder struct {
	spans     []Span
	events    []Event
	decisions []Decision

	reg *metrics.Registry

	// Fixed instruments, resolved once so the hot path never takes a map
	// lookup.
	cSpans     *metrics.Counter
	cEvents    *metrics.Counter
	cDecisions *metrics.Counter
	cSpills    *metrics.Counter
	hByKind    [kindCount]*metrics.Histogram
}

// New returns an enabled recorder with its instrument registry. The record
// slices are pre-sized for a mid-sized run, so a recorder reaches steady
// state without paying the first dozen grow-copies span by span.
func New() *Recorder {
	r := &Recorder{
		spans:     make([]Span, 0, 1024),
		events:    make([]Event, 0, 512),
		decisions: make([]Decision, 0, 128),
		reg:       metrics.NewRegistry(),
	}
	r.cSpans = r.reg.Counter("trace.spans")
	r.cEvents = r.reg.Counter("trace.events")
	r.cDecisions = r.reg.Counter("trace.decisions")
	r.cSpills = r.reg.Counter("trace.spills")
	r.hByKind[KRequest] = r.reg.Histogram("trace.request_us")
	r.hByKind[KSelect] = r.reg.Histogram("trace.select_us")
	r.hByKind[KCall] = r.reg.Histogram("trace.call_us")
	r.hByKind[KExec] = r.reg.Histogram("trace.exec_us")
	r.hByKind[KWait] = r.reg.Histogram("trace.wait_us")
	r.hByKind[KOp] = r.reg.Histogram("trace.op_us")
	return r
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// Reset discards the recorded spans, events, decisions and instrument state
// while keeping the slices' backing arrays, so one recorder can serve many
// runs back to back without re-growing its buffers each time (the traced
// benchmark loop reuses a single recorder this way). A reset recorder is
// indistinguishable from a fresh one to every consumer.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	// Clear before truncating: spans and decisions hold strings and row
	// slices that would otherwise stay reachable through the spare capacity.
	clear(r.spans)
	clear(r.events)
	clear(r.decisions)
	r.spans = r.spans[:0]
	r.events = r.events[:0]
	r.decisions = r.decisions[:0]
	r.cSpans.Reset()
	r.cEvents.Reset()
	r.cDecisions.Reset()
	r.cSpills.Reset()
	for _, h := range r.hByKind {
		if h != nil {
			h.Reset()
		}
	}
}

// Registry returns the recorder's instrument registry (nil when disabled).
func (r *Recorder) Registry() *metrics.Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Begin opens a span at now and returns its id (0 when disabled).
func (r *Recorder) Begin(k Kind, parent SpanID, now sim.Time, name string, app, gid int, arg int64) SpanID {
	if r == nil {
		return 0
	}
	id := SpanID(len(r.spans) + 1)
	r.spans = append(r.spans, Span{
		ID: id, Parent: parent, Kind: k, Name: name,
		App: app, GID: gid, Arg: arg, Start: now, End: open,
	})
	r.cSpans.Inc()
	return id
}

// End closes the span at now, folding its duration into the kind's
// histogram. Ending span 0 (the nil recorder's answer) is a no-op.
func (r *Recorder) End(id SpanID, now sim.Time) {
	if r == nil || id <= 0 || int(id) > len(r.spans) {
		return
	}
	s := &r.spans[id-1]
	if s.End != open {
		return
	}
	s.End = now
	if h := r.hByKind[s.Kind]; h != nil {
		h.Observe(int64(now - s.Start))
	}
}

// SetGID late-binds the device of an open or closed span (a request's GID
// is unknown until the balancer answers).
func (r *Recorder) SetGID(id SpanID, gid int) {
	if r == nil || id <= 0 || int(id) > len(r.spans) {
		return
	}
	r.spans[id-1].GID = gid
}

// Complete records an already-finished span (the GPU completion callback
// learns start and end together).
func (r *Recorder) Complete(k Kind, name string, app, gid int, arg int64, start, end sim.Time) {
	if r == nil {
		return
	}
	id := r.Begin(k, 0, start, name, app, gid, arg)
	r.End(id, end)
}

// Event records one instant.
func (r *Recorder) Event(k Kind, now sim.Time, name string, app, gid int, arg int64) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{Kind: k, Name: name, App: app, GID: gid, Arg: arg, At: now}) //lint:allow hotalloc -- event buffer growth is amortized doubling; recording is opt-in observability
	r.cEvents.Inc()
}

// RecordDecision appends one decision-audit record.
func (r *Recorder) RecordDecision(d Decision) {
	if r == nil {
		return
	}
	r.decisions = append(r.decisions, d)
	r.cDecisions.Inc()
	if d.Spilled {
		r.cSpills.Inc()
	}
}

// Set is an immutable snapshot of a recorder's output, the unit the
// exporters consume.
type Set struct {
	Spans     []Span
	Events    []Event
	Decisions []Decision
}

// Snapshot copies the recorded state into a Set. Open spans stay open
// (End = -1).
func (r *Recorder) Snapshot() *Set {
	if r == nil {
		return &Set{}
	}
	return &Set{
		Spans:     append([]Span(nil), r.spans...),
		Events:    append([]Event(nil), r.events...),
		Decisions: append([]Decision(nil), r.decisions...),
	}
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}
