package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Static call graph and //strings:hotpath annotations.
//
// The graph is per package and purely static: an edge exists where a call
// expression resolves through go/types to a concrete *types.Func — direct
// calls, method calls on statically typed receivers, and calls into
// imported packages. Indirect calls (function values, interface methods)
// have no edge; the hot-path analyses accept that blind spot and the
// DESIGN.md contract documents it: code invoked only through callbacks is
// guarded at the registration site, not through the graph.
//
// Annotation grammar: the directive comment
//
//	//strings:hotpath
//
// on a function declaration (part of its doc comment, no space after //)
// marks the function as a hot-path root. Everything statically reachable
// from a root — in this package, or through exported-function facts in a
// dependency — must satisfy the hotalloc contract.

const hotpathDirective = "strings:hotpath"

// funcNode is one declared function in the package's call graph.
type funcNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	// root is non-nil when the function is a //strings:hotpath root.
	root bool
	// hotVia names the root through which the function was first found
	// reachable ("" = not hot-reachable).
	hotVia string
	// locals are statically resolved callees declared in this package,
	// in call-site order.
	locals []*types.Func
	// exts are statically resolved calls into other packages.
	exts []extCall
}

type extCall struct {
	pkgPath string
	key     string // funcKey of the callee
	pos     token.Pos
	display string // "pkg.Func" / "pkg.Type.Method" for diagnostics
}

// callGraph holds every function declared in the package, in declaration
// order (file order, then position) so all iteration is deterministic.
type callGraph struct {
	nodes map[*types.Func]*funcNode
	order []*funcNode
}

// hotpathAnnotated reports whether decl carries the //strings:hotpath
// directive in its doc comment.
func hotpathAnnotated(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == hotpathDirective || strings.HasPrefix(text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// buildCallGraph constructs the package's static call graph. Test files
// are excluded: the hot-path contract covers production code.
func buildCallGraph(pass *Pass) *callGraph {
	g := &callGraph{nodes: make(map[*types.Func]*funcNode)}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &funcNode{fn: fn, decl: decl, root: hotpathAnnotated(decl)}
			g.nodes[fn] = node
			g.order = append(g.order, node)
			collectCalls(pass, node)
		}
	}
	g.markHot()
	return g
}

// collectCalls resolves every statically bound call in node's body,
// including calls inside nested function literals (a closure spawned on
// the hot path runs on the hot path).
func collectCalls(pass *Pass, node *funcNode) {
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPanicCall(call) {
			// The failure path is exempt from the hot-path contract, so
			// calls that only build a panic value contribute no edges.
			return false
		}
		callee := staticCallee(pass, call)
		if callee == nil {
			return true
		}
		if callee.Pkg() == pass.Pkg {
			node.locals = append(node.locals, callee)
			return true
		}
		if callee.Pkg() == nil {
			return true // builtins resolve to *types.Builtin, not here
		}
		node.exts = append(node.exts, extCall{
			pkgPath: callee.Pkg().Path(),
			key:     funcKey(callee),
			pos:     call.Pos(),
			display: callee.Pkg().Name() + "." + funcKey(callee),
		})
		return true
	})
}

// staticCallee resolves call's target to a concrete *types.Func, or nil
// for indirect calls, builtins, and conversions.
func staticCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr: // instantiated generic: f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
				return fn
			}
		}
	}
	return nil
}

// markHot floods hot-reachability from the annotated roots through local
// edges, recording the witness root name on every reached node.
func (g *callGraph) markHot() {
	var queue []*funcNode
	for _, n := range g.order {
		if n.root {
			n.hotVia = displayName(n.fn)
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, callee := range n.locals {
			cn := g.nodes[callee]
			if cn == nil || cn.hotVia != "" {
				continue
			}
			cn.hotVia = n.hotVia
			queue = append(queue, cn)
		}
	}
}

// displayName renders a *types.Func for diagnostics: "Func" or
// "(*Type).Method" / "Type.Method".
func displayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		if named, ok := p.Elem().(*types.Named); ok {
			return "(*" + named.Obj().Name() + ")." + fn.Name()
		}
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}
