// Package load typechecks Go packages for the stringscheck analyzers
// without golang.org/x/tools: it shells out to `go list -deps -export` for
// file lists and compiled export data, then drives go/parser + go/types
// with a gc-importer lookup over those export files. This is the loader
// behind stringscheck's standalone mode (`stringscheck ./...`) and the
// stdlib resolver for analysistest fixtures.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/analysis"
)

// Pkg is the subset of `go list -json` output the loader consumes.
type Pkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
}

// List runs `go list -deps -export -json` in dir for patterns and returns
// every listed package (targets and dependencies) in dependency order:
// cmd/go emits the -deps traversal post-order, so every package appears
// after everything it imports.
func List(dir string, patterns []string) ([]Pkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []Pkg
	dec := json.NewDecoder(&stdout)
	for {
		var p Pkg
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportImporter builds a types importer that resolves import paths
// through compiled export data files (path -> file). One instance caches
// every package it materializes.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Targets loads, parses, and typechecks the packages matching patterns.
// Standard-library dependencies are consumed as export data only;
// module-local dependencies that the patterns did not name are loaded as
// FactsOnly targets, so cross-package facts reach the named packages even
// when the invocation is narrower than ./.... The returned slice preserves
// go list's dependency order — analyze it front to back and every
// package's dependency facts are computed before they are needed. Files
// are parsed with comments so //lint:allow suppressions and
// //strings:hotpath annotations survive into analysis.
func Targets(dir string, patterns []string) ([]*analysis.Target, error) {
	pkgs, err := List(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		exports[p.ImportPath] = p.Export
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)

	var targets []*analysis.Target
	for _, p := range pkgs {
		if p.Standard || p.Name == "" {
			continue
		}
		var files []*ast.File
		for _, g := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, g), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		info := analysis.NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typechecking %s: %v", p.ImportPath, err)
		}
		targets = append(targets, &analysis.Target{
			Path:      p.ImportPath,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			Info:      info,
			FactsOnly: p.DepOnly,
		})
	}
	return targets, nil
}
