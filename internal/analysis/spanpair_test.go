package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestSpanpair covers unmatched Begins on fall-through, early-return, and
// panic exits; discarded Begins; and the negatives: straight pairs,
// deferred Ends, neutral SetGID/Event uses, ownership transfer by return
// or call, per-iteration pairs, and suppression.
func TestSpanpair(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Spanpair, "spanpair")
}
