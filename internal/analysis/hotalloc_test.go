package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestHotalloc covers the in-package contract: the seeded regression in a
// hot-reachable (but unannotated) function, escaping literals, map makes,
// growing appends, interface boxing, escaping closures, fmt calls — and
// the negatives: non-escaping locals, the splice idiom, cold functions,
// and lint:allow suppression.
func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Hotalloc, "hotalloc")
}

// TestHotallocCrossPackageFacts: the hot function's diagnostics come from
// the dependency's exported alloc facts (including a transitive one), and
// a lint:allow at the allocation source keeps the callee out of the facts
// entirely.
func TestHotallocCrossPackageFacts(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Hotalloc, "hotallocx")
}

// TestHotallocAllowForms: line, trailing-block, own-line, and multi-line
// block lint:allow forms each suppress exactly the line they cover.
func TestHotallocAllowForms(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Hotalloc, "allowforms")
}
