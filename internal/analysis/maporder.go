package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// Maporder flags map iteration whose order can leak into simulator state.
//
// Go randomizes map iteration order per run, so any map range in a
// sim-driven package that appends to a slice, sends on a channel, calls
// out to other code, or accumulates floating-point values produces
// run-to-run drift that a seed cannot pin down. The sanctioned idiom is
// collect-keys-then-sort (see Kernel.Blocked, DST.boundKindsSorted,
// cuda.sortedStreamIDs): the analyzer accepts a range whose only effect is
// appending to slices that are each passed to a sort.* / slices.* call
// later in the same function. Pure reads, counters, delete(m, k) sweeps,
// and min/max-free aggregation over integers are untouched.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc: "flag map ranges in sim-driven packages whose body appends, emits, calls out, " +
		"or accumulates floats without sorting keys first; map order must never reach a scheduling decision",
	Run: runMaporder,
}

// mapRangeEffect is one body action through which iteration order could
// escape the loop.
type mapRangeEffect struct {
	kind string // "call", "send", "float"
	pos  token.Pos
	what string
}

func runMaporder(pass *Pass) error {
	if !simDriven(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		bodies := functionBodies(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rs, enclosingBody(bodies, rs))
			return true
		})
	}
	return nil
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, encl *ast.BlockStmt) {
	var effects []mapRangeEffect
	var appendTargets []ast.Expr

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ASSIGN, token.DEFINE:
				for i, rhs := range s.Rhs {
					if i < len(s.Lhs) && isBuiltinCall(pass, rhs, "append") {
						// m2[k] = append(m2[k], ...) keyed by the range key
						// is per-key bucketing: each iteration touches its
						// own entry, so order cannot escape (the index is
						// injective in the key).
						if keyedByRangeKey(pass, s.Lhs[i], rs) {
							continue
						}
						appendTargets = append(appendTargets, s.Lhs[i])
					}
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if lt := pass.TypesInfo.TypeOf(s.Lhs[0]); lt != nil && isFloat(lt) && !declaredWithin(pass, s.Lhs[0], rs.Body) {
					effects = append(effects, mapRangeEffect{"float", s.Pos(), exprString(pass.Fset, s.Lhs[0])})
				}
			}
		case *ast.SendStmt:
			effects = append(effects, mapRangeEffect{"send", s.Pos(), exprString(pass.Fset, s.Chan)})
		case *ast.CallExpr:
			if isAnyBuiltinOrConversion(pass, s) {
				return true
			}
			effects = append(effects, mapRangeEffect{"call", s.Pos(), exprString(pass.Fset, s.Fun)})
		}
		return true
	})

	// The collect-then-sort idiom: every appended slice is handed to a
	// sort.* / slices.* call after the loop, and nothing else escapes.
	var unsorted []ast.Expr
	for _, tgt := range appendTargets {
		if !sortedAfter(pass, encl, rs, tgt) {
			unsorted = append(unsorted, tgt)
		}
	}

	switch {
	case len(effects) > 0:
		e := effects[0]
		switch e.kind {
		case "call":
			pass.Reportf(rs.For,
				"call to %s inside map iteration runs in map order; iterate sorted keys instead (//lint:allow maporder -- <reason> if provably order-independent)", e.what)
		case "send":
			pass.Reportf(rs.For,
				"send on %s inside map iteration emits in map order; iterate sorted keys instead (//lint:allow maporder -- <reason> if provably order-independent)", e.what)
		case "float":
			pass.Reportf(rs.For,
				"floating-point accumulation into %s over a map is order-sensitive (rounding); iterate sorted keys instead (//lint:allow maporder -- <reason> if provably order-independent)", e.what)
		}
	case len(unsorted) > 0:
		pass.Reportf(rs.For,
			"map iteration order leaks into %s, which is never sorted in this function; sort it (sort.* or slices.*) before use (//lint:allow maporder -- <reason> if provably order-independent)", exprString(pass.Fset, unsorted[0]))
	}
}

// functionBodies returns every function body in the file (decls and
// literals) for innermost-enclosing lookups.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, fn.Body)
			}
		case *ast.FuncLit:
			out = append(out, fn.Body)
		}
		return true
	})
	return out
}

// enclosingBody picks the innermost body containing n.
func enclosingBody(bodies []*ast.BlockStmt, n ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= n.Pos() && n.End() <= b.End() {
			if best == nil || (best.Pos() <= b.Pos() && b.End() <= best.End()) {
				best = b
			}
		}
	}
	return best
}

// sortedAfter reports whether target appears as (part of) an argument to a
// sort.* or slices.* call after the range statement in the enclosing body.
func sortedAfter(pass *Pass, encl *ast.BlockStmt, rs *ast.RangeStmt, target ast.Expr) bool {
	if encl == nil {
		return false
	}
	want := exprString(pass.Fset, target)
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		if p := obj.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if containsExprString(pass.Fset, arg, want) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// containsExprString reports whether any subexpression of e renders as want.
func containsExprString(fset *token.FileSet, e ast.Expr, want string) bool {
	hit := false
	ast.Inspect(e, func(n ast.Node) bool {
		if hit {
			return false
		}
		if sub, ok := n.(ast.Expr); ok && exprString(fset, sub) == want {
			hit = true
			return false
		}
		return true
	})
	return hit
}

// isBuiltinCall reports whether e is a call to the named builtin.
func isBuiltinCall(pass *Pass, e ast.Expr, name string) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isAnyBuiltinOrConversion reports whether call is a builtin invocation
// (append/len/delete/...) or a type conversion — neither can observe
// iteration order beyond its arguments.
func isAnyBuiltinOrConversion(pass *Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			return true
		}
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}

// keyedByRangeKey reports whether target is an index expression whose
// index is exactly the range statement's key variable.
func keyedByRangeKey(pass *Pass, target ast.Expr, rs *ast.RangeStmt) bool {
	idx, ok := ast.Unparen(target).(*ast.IndexExpr)
	if !ok {
		return false
	}
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	idxID, ok := ast.Unparen(idx.Index).(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := pass.TypesInfo.Defs[keyID]
	if keyObj == nil {
		keyObj = pass.TypesInfo.Uses[keyID]
	}
	idxObj := pass.TypesInfo.Uses[idxID]
	return keyObj != nil && keyObj == idxObj
}

// declaredWithin reports whether e is an identifier declared inside node
// (an accumulator local to the loop body cannot leak order).
func declaredWithin(pass *Pass, e ast.Expr, node ast.Node) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	return node.Pos() <= obj.Pos() && obj.Pos() <= node.End()
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exprString renders a (small) expression for diagnostics.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "<expr>"
	}
	return buf.String()
}
