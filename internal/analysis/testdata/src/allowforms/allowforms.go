// Fixture for lint:allow comment forms: trailing line comments, trailing
// block comments, own-line forms, and multi-line block comments must all
// suppress the line they cover — and only that line.
package allowforms

type box struct{ v int }

var sink *box

//strings:hotpath
func Hot(n int) {
	sink = &box{v: n} //lint:allow hotalloc -- fixture: trailing line form
	sink = &box{v: n} /* lint:allow hotalloc -- fixture: trailing block form */
	//lint:allow hotalloc -- fixture: own-line line form
	sink = &box{v: n}
	/* lint:allow hotalloc -- fixture: own-line block form */
	sink = &box{v: n}
	/*
		lint:allow hotalloc -- fixture: multi-line block form
	*/
	sink = &box{v: n}
	sink = &box{v: n} // want `escaping &box\{\.\.\.\} literal heap-allocates`
}
