// Fixture for the maporder analyzer: map iteration order must not leak
// into simulator state in sim-driven packages.
package maporder

import (
	"sort"

	"repro/internal/sim"
)

var _ sim.Time // importing internal/sim makes this package sim-driven

func unsortedKeys(m map[string]int) []string {
	var ks []string
	for k := range m { // want `map iteration order leaks into ks`
		ks = append(ks, k)
	}
	return ks
}

func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortSliceAlsoCounts(m map[string]int32) []int64 {
	var out []int64
	for _, v := range m {
		out = append(out, int64(v)) // conversions are not calls
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func callEffect(m map[string]int, f func(int)) {
	for _, v := range m { // want `call to f inside map iteration`
		f(v)
	}
}

func sendEffect(m map[string]int, ch chan int) {
	for _, v := range m { // want `send on ch inside map iteration`
		ch <- v
	}
}

func floatAccum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `floating-point accumulation into total`
		total += v
	}
	return total
}

func intCountersAreFine(m map[string]int) (n, sum int) {
	for _, v := range m {
		n++
		sum += v
	}
	return
}

func deleteSweepIsFine(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

func perKeyBucketingIsFine(src map[string][]int, dst map[string][]int) {
	// dst[k] is injective in the range key: each iteration touches its
	// own entry, so order cannot escape.
	for k, vs := range src {
		dst[k] = append(dst[k], vs...)
	}
}

type accum struct{ n int }

func (a *accum) add(v int) { a.n += v }

func allowed(m map[string]int, a *accum) {
	for _, v := range m { //lint:allow maporder -- fixture: add is commutative over ints
		a.add(v)
	}
}
