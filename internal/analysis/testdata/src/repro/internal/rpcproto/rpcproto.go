// Fixture for the errflow analyzer: its import path ends in
// internal/rpcproto, so discarded errors on call statements are forbidden.
package rpcproto

import "fmt"

type Writer struct{}

func (w *Writer) WriteFrame(b []byte) error { return nil }
func (w *Writer) Flush() (int, error)       { return 0, nil }

func drops(w *Writer, b []byte) {
	w.WriteFrame(b) // want `result of w\.WriteFrame carries an error that is silently discarded`
	w.Flush()       // want `result of w\.Flush carries an error that is silently discarded`
}

func handled(w *Writer, b []byte) error {
	if err := w.WriteFrame(b); err != nil {
		return err
	}
	_ = w.WriteFrame(b) // explicit discard is greppable and review-visible
	defer w.Flush()     // cleanup path: conventional, exempt
	fmt.Println("ok")   // console helper: exempt
	return nil
}

func allowed(w *Writer, b []byte) {
	w.WriteFrame(b) //lint:allow errflow -- fixture: fire-and-forget probe
}
