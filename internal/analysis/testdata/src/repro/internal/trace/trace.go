// Fixture dependency: a minimal mirror of internal/trace for the spanpair
// analyzer, which recognizes span-opening calls by their SpanID result
// type and closing calls by the End method name.
package trace

type SpanID uint64

type Recorder struct{ next SpanID }

func (r *Recorder) Begin(name string) SpanID     { r.next++; return r.next }
func (r *Recorder) End(id SpanID)                {}
func (r *Recorder) SetGID(id SpanID, gid uint64) {}
func (r *Recorder) Event(id SpanID, what string) {}
