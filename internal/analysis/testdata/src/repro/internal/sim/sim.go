// Package sim is a miniature stand-in for the real discrete-event kernel,
// just enough for fixtures to import it (which is what makes a fixture
// package "sim-driven" to the analyzers). It also doubles as the rawgo
// exemption fixture: the kernel itself implements the baton chain and may
// use raw goroutines.
package sim

// Time is virtual time in microseconds.
type Time int64

// Proc is a simulated process.
type Proc struct{}

// Kernel is the discrete-event kernel.
type Kernel struct{}

// Go spawns a simulated process under the baton chain.
func (k *Kernel) Go(name string, fn func(p *Proc)) {
	done := make(chan struct{})
	go func() { // the kernel owns the baton chain: no rawgo diagnostic here
		defer close(done)
		fn(&Proc{})
	}()
	<-done
}
