// Package shard is a miniature stand-in for the real conservative window
// coordinator, doubling as the rawgo kernel-layer fixture: the coordinator
// implements the cross-kernel barrier handoff, so its raw goroutines are the
// mechanism rawgo protects, not a bypass of it. No diagnostics are expected
// anywhere in this package.
package shard

import "repro/internal/sim"

// Coordinator advances shard kernels inside conservative windows.
type Coordinator struct {
	kernels   []*sim.Kernel
	lookahead sim.Time
}

// Window runs one barrier phase: every kernel advances to the horizon on its
// own worker goroutine, and the barrier joins them before mailboxes drain.
func (c *Coordinator) Window(horizon sim.Time) {
	done := make(chan struct{}, len(c.kernels))
	for range c.kernels {
		go func() { // the window-barrier handoff: exempt, like the kernel's baton chain
			done <- struct{}{}
		}()
	}
	for range c.kernels {
		<-done
	}
}
