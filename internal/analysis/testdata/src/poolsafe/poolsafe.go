// Fixture for the poolsafe analyzer: use-after-release, double-release,
// and zero-before-store on pool-return methods.
package poolsafe

import "errors"

type Op struct{ k int }

type pool struct{ free []*Op }

func (p *pool) Get() *Op {
	if n := len(p.free); n > 0 {
		op := p.free[n-1]
		p.free = p.free[:n-1]
		return op
	}
	return &Op{}
}

// PutOp zeroes before the pool store: clean.
func (p *pool) PutOp(op *Op) {
	*op = Op{}
	p.free = append(p.free, op)
}

// FreeOp stores without sanitizing: request state leaks to the next Get.
func (p *pool) FreeOp(op *Op) {
	p.free = append(p.free, op) // want `FreeOp stores op into a pool without zeroing it first`
}

// ResetOp uses the method form of sanitizing.
func (o *Op) Reset() { o.k = 0 }

func (p *pool) RecycleOp(op *Op) {
	op.Reset()
	p.free = append(p.free, op)
}

func useAfter(p *pool) {
	op := p.Get()
	p.PutOp(op)
	op.k = 1 // want `use of op after its release`
}

func doubleRelease(p *pool) {
	op := p.Get()
	p.PutOp(op)
	p.PutOp(op) // want `op released again after release`
}

// branchy releases on one arm only; the merge point may see a released op.
func branchy(p *pool, c bool) {
	op := p.Get()
	if c {
		p.PutOp(op)
	}
	op.k = 2 // want `use of op after its release`
}

// errPath releases and returns: the diverging path never rejoins, so the
// later use is clean (the cuda submit shape).
func errPath(p *pool, bad bool) error {
	op := p.Get()
	if bad {
		p.PutOp(op)
		return errors.New("bad")
	}
	op.k = 3
	p.PutOp(op)
	return nil
}

// loopRevive redefines the variable each iteration, killing the released
// state carried around the back edge (the serve-loop shape).
func loopRevive(p *pool) {
	for i := 0; i < 3; i++ {
		op := p.Get()
		op.k = i
		p.PutOp(op)
	}
}

// rangeRelease rebinds the range variable every iteration, so the release
// at the bottom of the body must not leak around the back edge into the
// next iteration's use (the DeviceSynchronize drain shape).
func rangeRelease(p *pool, ops []*Op) {
	for _, op := range ops {
		op.k = 0
		p.PutOp(op)
	}
}

// deferredRelease fires at exit, not in place: uses after the defer
// statement are clean.
func deferredRelease(p *pool) {
	op := p.Get()
	defer p.PutOp(op)
	op.k = 4
}

type ev struct{ refs int }

func (e *ev) Unref() {}

// unrefUse: Unref is a niladic release of its receiver.
func unrefUse(e *ev) int {
	e.Unref()
	return e.refs // want `use of e after its release`
}

// fieldRelease: releases through a field selector are not tracked — the
// analysis is deliberately alias-free.
func fieldRelease(p *pool, h *struct{ op *Op }) {
	p.PutOp(h.op)
	h.op.k = 6 // aliased: out of scope, no diagnostic
}

// allowed suppresses a known-benign post-release poke.
func allowed(p *pool) {
	op := p.Get()
	p.PutOp(op)
	op.k = 5 //lint:allow poolsafe -- fixture: diagnostic write on a quarantined object
}
