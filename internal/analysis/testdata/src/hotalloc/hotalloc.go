// Fixture for the hotalloc analyzer: heap-allocating constructs in
// functions statically reachable from a //strings:hotpath root.
package hotalloc

import "fmt"

type thing struct{ a, b int }

var sink *thing
var results []int

// Dispatch is the fixture's hot-path root; everything it calls is held to
// the no-allocation contract.
//
//strings:hotpath
func Dispatch(n int) {
	completeOp(n)
	cleanPath(n)
	takeAny(n)                  // want `argument n boxes into interface parameter and heap-allocates`
	register(func() { n++ })    // want `escaping closure captures outer variables and heap-allocates`
	_ = fmt.Sprintf("op %d", n) // want `fmt.Sprintf call allocates its formatting state`
}

// completeOp is NOT annotated — it is hot only by reachability from
// Dispatch. The escaping literal below is the seeded regression the
// analyzer must catch through the call graph.
func completeOp(n int) {
	t := &thing{a: n} // want `escaping &thing\{\.\.\.\} literal heap-allocates on the hot path \(completeOp is reachable from //strings:hotpath root Dispatch\)`
	sink = t
	lookup := make(map[int]int) // want `make\(map\[int\]int\) heap-allocates on the hot path`
	lookup[n] = n
	results = append(results, n) // want `append may grow escaping slice results`
}

// cleanPath is hot-reachable but allocation-free: everything stays in the
// frame.
func cleanPath(n int) {
	local := thing{a: n} // value literal, not escaping: no diagnostic
	local.b = local.a
	scratch := [4]int{}
	for i := range scratch {
		scratch[i] = n
	}
	buf := scratch[:0]
	buf = append(buf, n) // local, non-escaping destination: no diagnostic
	_ = buf
	results = append(results[:0], results[1:]...) // splice idiom: in-place, no growth
	ptr := &thing{a: n}                           // non-escaping pointer: only read through selectors
	local.b = ptr.a
	if n < 0 {
		// Failure path: the message-building fmt call and the boxing of n
		// are sanctioned inside panic arguments.
		panic(fmt.Sprintf("negative op %d", n))
	}
}

// takeAny exists to force interface boxing at Dispatch's call site.
func takeAny(v any) {}

// register retains its callback, so a capturing closure argument escapes —
// and register itself is hot-reachable, so its own growing append is a
// second, independent finding.
var handlers []func()

func register(f func()) { handlers = append(handlers, f) } // want `append may grow escaping slice handlers`

// coldPath is unreachable from any root: the same constructs draw no
// diagnostics.
func coldPath(n int) {
	sink = &thing{a: n}
	_ = fmt.Sprintf("cold %d", n)
	m := make(map[int]int)
	m[n] = n
}

// The escape zoo below is cold (no diagnostics), but every function is
// still walked for fact computation, exercising the escape approximation's
// branches: returns, sends, address-taking, value specs, embedding in
// larger literals, conversions, and the non-escaping read-only shapes.
var (
	globalInts []int
	globalMap  map[string]int
	thingChan  = make(chan *thing, 1)
)

type wrapper struct{ inner []int }

func zooEscapes(n int) *thing {
	xs := []int{1, 2, n} // escaping slice literal: copied to a global below
	globalInts = xs
	globalMap = map[string]int{"a": n} // escaping map literal: direct global store
	p := new(thing)                    // escaping new: returned
	thingChan <- &thing{a: n}          // send: escapes to the channel
	var vs = []int{n}                  // ValueSpec binding, then embedded in a literal
	w := wrapper{inner: vs}
	globalInts = w.inner
	t := thing{a: n}
	holdPointer(&t) // address-taken and handed away
	return p
}

func zooStays(n int) int {
	local := []int{n, n} // read locally, indexed, measured: stays in frame
	total := 0
	for _, v := range local {
		total += v
	}
	if len(local) > 1 && cap(local) > 1 {
		total += local[0]
	}
	small := new(thing) // dissected through selectors only
	small.a = n
	pairs := map[int]int{n: n} // make-like literal, deleted from and read
	delete(pairs, n)
	_ = any(small) // pointer conversion: fits the interface word, no box
	_ = any(n)     // int conversion boxes, but zooStays is cold
	return total + small.a
}

func holdPointer(t *thing) { sink = t }

// allowedPath carries a sanctioned amortized allocation: suppressed at the
// site, and the suppression keeps the function out of the alloc facts.
func allowedGrow(n int) {
	results = append(results, n) //lint:allow hotalloc -- fixture: amortized growth, pre-sized in production
}

//strings:hotpath
func DispatchAllowed(n int) {
	allowedGrow(n)
}
