// Fixture for hotalloc's cross-package reachability: the hot function
// calls into hotallocdep, and the diagnostics come from the dependency's
// exported facts, not from reading its syntax.
package hotallocx

import "hotallocdep"

var held *hotallocdep.Buf

//strings:hotpath
func Pump(n int) {
	b := hotallocdep.NewBuf() // want `call to hotallocdep\.NewBuf may heap-allocate \(exported fact\) on the hot path \(Pump is reachable from //strings:hotpath root Pump\)`
	_ = hotallocdep.Size(b)   // fact-free callee: no diagnostic
	held = hotallocdep.Grow(held) // want `call to hotallocdep\.Grow may heap-allocate \(exported fact\) on the hot path`
	held = hotallocdep.Sanctioned() // suppressed at the source: no alloc fact, no diagnostic
}

// coldPump makes the same calls off the hot path: no diagnostics.
func coldPump() {
	held = hotallocdep.NewBuf()
}

// justified suppresses the fact-driven diagnostic at the call site.
//
//strings:hotpath
func Justified() {
	held = hotallocdep.NewBuf() //lint:allow hotalloc -- fixture: cold-start fill, happens once per epoch
}
