// Fixture for the rawgo analyzer: raw goroutines are forbidden in
// sim-driven packages outside the kernel itself.
package rawgo

import "repro/internal/sim"

func spawn(k *sim.Kernel) {
	go leak()   // want `raw goroutine in a sim-driven package`
	go func() { // want `raw goroutine in a sim-driven package`
		leak()
	}()
	k.Go("worker", func(p *sim.Proc) {}) // kernel process API: sanctioned
}

func leak() {}

func accepted() {
	go leak() //lint:allow rawgo -- fixture: real accept loop at the system boundary
}
