// Fixture for the spanpair analyzer: every Begin must reach an End on all
// control-flow exits, or transfer ownership of the SpanID.
package spanpair

import "repro/internal/trace"

func good(r *trace.Recorder) {
	sp := r.Begin("good")
	r.End(sp)
}

// missing: the implicit fall-through exit leaves sp open when !c.
func missing(r *trace.Recorder, c bool) {
	sp := r.Begin("missing") // want `span sp is not ended on every path out of missing`
	if c {
		r.End(sp)
	}
}

// early: the guard return skips the End.
func early(r *trace.Recorder, c bool) {
	sp := r.Begin("early") // want `span sp is not ended on every path out of early`
	if c {
		return
	}
	r.End(sp)
}

// panics: the explicit panic edge reaches Exit with sp open.
func panics(r *trace.Recorder, c bool) {
	sp := r.Begin("panics") // want `span sp is not ended on every path out of panics`
	if c {
		panic("boom")
	}
	r.End(sp)
}

// deferred: a deferred End discharges every exit, including the early
// return and the panic edge.
func deferred(r *trace.Recorder, c bool) {
	sp := r.Begin("deferred")
	defer r.End(sp)
	if c {
		return
	}
	if !c {
		panic("unreachable")
	}
	r.Event(sp, "late")
}

// neutral: SetGID and Event use the ID without closing it.
func neutral(r *trace.Recorder) {
	sp := r.Begin("neutral")
	r.SetGID(sp, 7)
	r.Event(sp, "tick")
	r.End(sp)
}

// transfer: returning the ID moves the obligation to the caller.
func transfer(r *trace.Recorder) trace.SpanID {
	sp := r.Begin("transfer")
	return sp
}

// handoff: passing the ID to any non-neutral call transfers ownership.
func handoff(r *trace.Recorder, sink func(trace.SpanID)) {
	sp := r.Begin("handoff")
	sink(sp)
}

// dropped: a Begin whose result is never bound can never be ended.
func dropped(r *trace.Recorder) {
	r.Begin("dropped") // want `span opened and immediately discarded`
}

// loopSpan: open and close within each iteration is clean across the back
// edge.
func loopSpan(r *trace.Recorder, n int) {
	for i := 0; i < n; i++ {
		sp := r.Begin("iter")
		r.Event(sp, "work")
		r.End(sp)
	}
}

// allowed: the caller closes it through a side table; suppressed.
func allowed(r *trace.Recorder) {
	sp := r.Begin("allowed") //lint:allow spanpair -- fixture: closed by the collector via side table
	_ = sp
}
