// Fixture proving the sim-driven trigger: this package does not import
// repro/internal/sim or a façade, so simclock/maporder/rawgo stay silent
// even though every rule is "violated" below.
package notsim

import "time"

func wallClockIsFine() time.Time { return time.Now() }

func rangeIsFine(m map[string]int, f func(int)) {
	for _, v := range m {
		f(v)
	}
}

func goroutinesAreFine() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
