// Fixture dependency for hotalloc's cross-package facts: the package has
// no hot-path root of its own, so nothing is reported here, but NewBuf's
// escaping allocation is exported as a fact that dependents consult.
package hotallocdep

type Buf struct{ b []byte }

// NewBuf may heap-allocate; the analyzer records Alloc["NewBuf"].
func NewBuf() *Buf { return &Buf{b: make([]byte, 0, 64)} }

// Size is allocation-free; no fact.
func Size(b *Buf) int { return len(b.b) }

// Grow allocates transitively through NewBuf; the bottom-up summary
// records Alloc["Grow"] without re-reading NewBuf's body.
func Grow(b *Buf) *Buf {
	if b == nil {
		return NewBuf()
	}
	return b
}

// Sanctioned's allocation carries a lint:allow, so the suppression keeps
// it OUT of the alloc facts: callers on a hot path stay clean.
func Sanctioned() *Buf {
	return &Buf{} //lint:allow hotalloc -- fixture: pool refill, amortized across a window
}
