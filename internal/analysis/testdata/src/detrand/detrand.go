// Fixture for the detrand analyzer: package-level math/rand functions
// share the process-global source and are forbidden everywhere.
package detrand

import "math/rand"

func bad() int {
	return rand.Intn(10) // want `rand\.Intn draws from the process-global source`
}

func shuffleBad(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the process-global source`
}

func floatBad() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the process-global source`
}

func seeded(seed int64) int {
	// Constructors plus methods on a threaded *rand.Rand are the
	// sanctioned pattern.
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func threaded(rng *rand.Rand) float64 {
	return rng.Float64()
}

func allowed() float64 {
	return rand.Float64() //lint:allow detrand -- fixture: demonstration of the escape hatch
}
