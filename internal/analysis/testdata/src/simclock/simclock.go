// Fixture for the simclock analyzer: this package imports
// repro/internal/sim, so wall-clock time is forbidden.
package simclock

import (
	"time"

	"repro/internal/sim"
)

type state struct {
	virtual sim.Time
	started time.Time // want `time\.Time is wall-clock state in a sim-driven package`
}

func bad(s *state) {
	_ = time.Now()               // want `time\.Now reads the wall clock in a sim-driven package`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock in a sim-driven package`
	select {
	case <-time.After(time.Second): // want `time\.After reads the wall clock in a sim-driven package`
	default:
	}
}

func unitsAreFine(d time.Duration) time.Duration {
	// Durations and unit constants are pure arithmetic, not clock reads.
	return d * 2 * time.Millisecond
}

func allowed() {
	_ = time.Now() //lint:allow simclock -- fixture: harness measures wall time around the run
}
