// Package shard pins the other half of the kernel-layer treatment: the
// window coordinator is exempt from rawgo but NOT from simclock. Its
// barriers synchronize workers in host time, but lookahead and horizons are
// virtual sim.Time — a wall-clock read here would leak host timing into the
// merged event order, so simclock must keep firing on this path.
package shard

import (
	"time"

	"repro/internal/sim"
)

// Horizon returns the window end for a shard at now.
func Horizon(now, lookahead sim.Time) sim.Time { return now + lookahead - 1 }

// badWindowStamp is the mistake simclock exists to catch in this layer.
func badWindowStamp() int64 {
	t := time.Now() // want `reads the wall clock in a sim-driven package`
	return t.UnixNano()
}
