// Fixture for the allowaudit analyzer, run as a suite with hotalloc so
// directive usage is real: unknown analyzer names, missing reasons, stale
// suppressions, and the not-ran staleness scope.
package allowaudit

type rec struct{ v int }

var keep *rec

//strings:hotpath
func Hot(n int) {
	keep = &rec{v: n} //lint:allow hotalloc -- fixture: deliberate steady-state allocation
	fresh(n)
	cold(n)
}

// fresh's suppression does real work but states no reason: the claim is
// not auditable.
func fresh(n int) {
	keep = &rec{v: n} //lint:allow hotalloc // want `lint:allow without a '-- reason'`
}

// cold's directive suppresses nothing — hotalloc ran and found this line
// clean — so it is stale.
func cold(n int) int {
	m := n * 2 //lint:allow hotalloc -- fixture: nothing allocates here // want `suppresses no hotalloc diagnostic here`
	return m
}

// typo: an unknown analyzer name silently suppresses nothing; worse, it
// reads like coverage.
func typo(n int) int {
	return n + 1 //lint:allow hotaloc -- fixture: misspelled on purpose // want `unknown analyzer "hotaloc"`
}

// notRan: maporder is not part of this suite invocation, so its unused
// directive is NOT called stale — staleness is scoped to analyzers that
// ran.
func notRan(n int) int {
	return n + 2 //lint:allow maporder -- fixture: audited only under the full suite
}

// blanket: "all" is only auditable when the whole suite ran; under a
// partial run it is left alone.
func blanket(n int) int {
	return n + 3 //lint:allow all -- fixture: blanket waiver, audited under full runs only
}
