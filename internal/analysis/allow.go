package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments have the form
//
//	//lint:allow <analyzer>[,<analyzer>...] [-- reason]
//	/* lint:allow <analyzer>[,<analyzer>...] [-- reason] */
//
// and silence the named analyzers on the lines the comment spans plus the
// line directly below it (so the comment can sit at the end of the
// offending line or on its own line above it). The reason after "--" is
// free text; writing one is required by the allowaudit analyzer — the
// suppression is a claim that a determinism or hot-path rule provably does
// not apply, and the claim must be auditable. allowaudit also reports
// suppressions naming unknown analyzers and stale suppressions that no
// longer mask any diagnostic.

const allowPrefix = "lint:allow"

// An AllowDirective is one parsed lint:allow comment.
type AllowDirective struct {
	Pos       token.Pos
	File      string
	Line      int // first line the directive covers (the comment's own)
	EndLine   int // last covered line: comment end + 1
	Names     []string
	HasReason bool

	// used records, per analyzer name, whether the directive suppressed at
	// least one diagnostic (or sanctioned a hot-path fact) this run.
	used map[string]bool
}

// markUsed records that the directive did real work for analyzer name.
func (d *AllowDirective) markUsed(name string) {
	if d.used == nil {
		d.used = make(map[string]bool)
	}
	d.used[name] = true
}

// covers reports whether the directive suppresses analyzer name for a
// diagnostic at the given file position.
func (d *AllowDirective) covers(file string, line int, name string) bool {
	if d.File != file || line < d.Line || line > d.EndLine {
		return false
	}
	for _, n := range d.Names {
		if n == name || n == "all" {
			return true
		}
	}
	return false
}

// collectAllowDirectives parses every lint:allow comment in files, both
// line (//) and block (/* */) forms, in position order.
func collectAllowDirectives(fset *token.FileSet, files []*ast.File) []*AllowDirective {
	var out []*AllowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				switch {
				case strings.HasPrefix(text, "//"):
					text = strings.TrimPrefix(text, "//")
				case strings.HasPrefix(text, "/*"):
					text = strings.TrimPrefix(text, "/*")
					text = strings.TrimSuffix(text, "*/")
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				// An embedded " // " ends the directive: what follows is an
				// ordinary trailing comment, not part of the reason.
				if i := strings.Index(text, " // "); i >= 0 {
					text = strings.TrimSpace(text[:i])
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				hasReason := false
				if i := strings.Index(rest, "--"); i >= 0 {
					hasReason = strings.TrimSpace(rest[i+2:]) != ""
					rest = strings.TrimSpace(rest[:i])
				}
				start := fset.Position(c.Pos())
				end := fset.Position(c.End())
				d := &AllowDirective{
					Pos:       c.Pos(),
					File:      start.Filename,
					Line:      start.Line,
					EndLine:   end.Line + 1,
					HasReason: hasReason,
				}
				for _, name := range strings.FieldsFunc(rest, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					d.Names = append(d.Names, name)
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// filterAllowed drops diagnostics covered by a matching directive, marking
// each directive that does the suppressing.
func filterAllowed(fset *token.FileSet, directives []*AllowDirective, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, diag := range diags {
		pos := fset.Position(diag.Pos)
		suppressed := false
		for _, d := range directives {
			if d.covers(pos.Filename, pos.Line, diag.Analyzer) {
				d.markUsed(diag.Analyzer)
				suppressed = true
				// Keep scanning: overlapping directives naming the same
				// analyzer all legitimately claim the suppression.
			}
		}
		if !suppressed {
			kept = append(kept, diag)
		}
	}
	return kept
}
