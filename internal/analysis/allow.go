package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments have the form
//
//	//lint:allow <analyzer>[,<analyzer>...] [-- reason]
//
// and silence the named analyzers on the line carrying the comment and on
// the line directly below it (so the comment can sit at the end of the
// offending line or on its own line above it). The reason after "--" is
// free text; writing one is strongly encouraged — the suppression is a
// claim that a determinism rule provably does not apply, and the claim
// should be auditable.

const allowPrefix = "lint:allow"

// allowedAt maps filename -> line -> analyzer names suppressed there.
type allowedAt map[string]map[int]map[string]bool

// collectAllows scans every comment in files for //lint:allow directives.
func collectAllows(fset *token.FileSet, files []*ast.File) allowedAt {
	out := make(allowedAt)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				if rest == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					out[pos.Filename] = lines
				}
				for _, name := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					for _, ln := range []int{pos.Line, pos.Line + 1} {
						if lines[ln] == nil {
							lines[ln] = make(map[string]bool)
						}
						lines[ln][name] = true
					}
				}
			}
		}
	}
	return out
}

// filterAllowed drops diagnostics whose position is covered by a matching
// //lint:allow comment.
func filterAllowed(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	allows := collectAllows(fset, files)
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if lines, ok := allows[pos.Filename]; ok {
			if names, ok := lines[pos.Line]; ok && (names[d.Analyzer] || names["all"]) {
				continue
			}
		}
		kept = append(kept, d)
	}
	return kept
}
