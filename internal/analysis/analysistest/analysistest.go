// Package analysistest runs one stringscheck analyzer over a fixture
// package under testdata/src and checks its diagnostics against `// want`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	m := map[string]int{}
//	for k := range m { // want `map iteration order leaks`
//
// A want comment holds one or more quoted regular expressions (double- or
// back-quoted); each must match a diagnostic reported on that line, and
// every diagnostic must be matched by some expectation. Fixture packages
// resolve imports first against testdata/src (so fixtures can import a
// fake repro/internal/sim) and then against the real standard library via
// compiled export data.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// TestData returns the absolute path of the caller's testdata directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads testdata/src/<pkgpath>, applies the analyzer (including
// //lint:allow filtering), and reports mismatches against want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	RunSuite(t, testdata, []*analysis.Analyzer{a}, pkgpath)
}

// RunSuite is Run for several analyzers at once — the shape allowaudit
// fixtures need, since staleness only exists relative to other analyzers
// that ran. Fixture packages imported by pkgpath (other fixture dirs under
// testdata/src) are analyzed first, in dependency order, with their
// diagnostics discarded and their exported facts fed forward, so
// cross-package fixtures exercise the same facts plumbing as the real
// drivers. Want comments are checked in pkgpath only.
func RunSuite(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkgpath string) {
	t.Helper()
	ld := newLoader(testdata)
	target, err := ld.target(pkgpath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgpath, err)
	}
	facts := analysis.NewFactSet()
	for _, dep := range ld.fixtureDeps(pkgpath) {
		dep.Facts = facts
		dep.FactsOnly = true
		if _, err := analysis.Run(dep, analyzers); err != nil {
			t.Fatalf("running facts pass on %s: %v", dep.Path, err)
		}
		facts.Add(dep.Exported)
	}
	target.Facts = facts
	diags, err := analysis.Run(target, analyzers)
	if err != nil {
		t.Fatalf("running on %s: %v", pkgpath, err)
	}
	checkWants(t, target, diags)
}

// ---- fixture loading ----

type loader struct {
	root  string // testdata dir
	fset  *token.FileSet
	cache map[string]*types.Package
	// targets caches fixture packages with full syntax and type info, so
	// fixture dependencies can be re-analyzed for facts.
	targets map[string]*analysis.Target
	// stdExports maps stdlib import paths to export data files, filled
	// lazily by `go list -deps -export`; stdImporter resolves through it.
	stdExports  map[string]string
	stdImporter types.Importer
}

func newLoader(root string) *loader {
	ld := &loader{
		root:       root,
		fset:       token.NewFileSet(),
		cache:      make(map[string]*types.Package),
		targets:    make(map[string]*analysis.Target),
		stdExports: make(map[string]string),
	}
	ld.stdImporter = load.ExportImporter(ld.fset, ld.stdExports)
	return ld
}

// Import implements types.Importer over testdata/src first, stdlib second.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ld.cache[path]; ok {
		return pkg, nil
	}
	if dir := filepath.Join(ld.root, "src", filepath.FromSlash(path)); dirExists(dir) {
		tgt, err := ld.load(path, dir)
		if err != nil {
			return nil, err
		}
		return tgt.Pkg, nil
	}
	if _, ok := ld.stdExports[path]; !ok {
		pkgs, err := load.List(ld.root, []string{path})
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			ld.stdExports[p.ImportPath] = p.Export
		}
	}
	pkg, err := ld.stdImporter.Import(path)
	if err != nil {
		return nil, err
	}
	ld.cache[path] = pkg
	return pkg, nil
}

// target loads pkgpath with full syntax and type information.
func (ld *loader) target(pkgpath string) (*analysis.Target, error) {
	dir := filepath.Join(ld.root, "src", filepath.FromSlash(pkgpath))
	if !dirExists(dir) {
		return nil, fmt.Errorf("no fixture directory %s", dir)
	}
	return ld.load(pkgpath, dir)
}

// load typechecks one fixture package, caching the full target.
func (ld *loader) load(pkgpath, dir string) (*analysis.Target, error) {
	if tgt, ok := ld.targets[pkgpath]; ok {
		return tgt, nil
	}
	info := analysis.NewInfo()
	pkg, files, fset, err := ld.check(pkgpath, dir, info)
	if err != nil {
		return nil, err
	}
	tgt := &analysis.Target{Path: pkgpath, Fset: fset, Files: files, Pkg: pkg, Info: info}
	ld.targets[pkgpath] = tgt
	ld.cache[pkgpath] = pkg
	return tgt, nil
}

// fixtureDeps returns every loaded fixture package except skip, ordered so
// dependencies precede dependents (the order facts must flow).
func (ld *loader) fixtureDeps(skip string) []*analysis.Target {
	var order []*analysis.Target
	done := map[string]bool{skip: true}
	var visit func(path string)
	visit = func(path string) {
		if done[path] {
			return
		}
		done[path] = true
		tgt := ld.targets[path]
		if tgt == nil {
			return // stdlib import, no fixture syntax
		}
		for _, imp := range tgt.Pkg.Imports() {
			visit(imp.Path())
		}
		order = append(order, tgt)
	}
	paths := make([]string, 0, len(ld.targets))
	for p := range ld.targets {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		visit(p)
	}
	return order
}

func (ld *loader) check(pkgpath, dir string, info *types.Info) (*types.Package, []*ast.File, *token.FileSet, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, nil, nil, err
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(pkgpath, ld.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return pkg, files, ld.fset, nil
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// ---- want expectations ----

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

// checkWants compares diagnostics with // want comments line by line.
func checkWants(t *testing.T, target *analysis.Target, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*expectation)
	for _, f := range target.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					// A want marker may trail another annotation in the same
					// line comment (e.g. after a //lint:allow directive).
					if i := strings.Index(text, "// want "); i >= 0 {
						text = text[i+len("// "):]
					} else {
						continue
					}
				}
				pos := target.Fset.Position(c.Pos())
				patterns, err := parseWant(strings.TrimPrefix(text, "want "))
				if err != nil {
					t.Fatalf("%s:%d: malformed want comment: %v", pos.Filename, pos.Line, err)
				}
				k := key{pos.Filename, pos.Line}
				for _, p := range patterns {
					rx, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants[k] = append(wants[k], &expectation{rx: rx})
				}
			}
		}
	}

	for _, d := range diags {
		pos := target.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		found := false
		for _, exp := range wants[k] {
			if !exp.matched && exp.rx.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for k, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, exp.rx)
			}
		}
	}
}

// parseWant extracts the quoted regexps from a want comment body.
func parseWant(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			lit, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, lit)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no patterns")
	}
	return out, nil
}
