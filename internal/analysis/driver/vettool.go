package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// vetConfig mirrors the JSON cmd/go writes to the vet.cfg file it hands a
// -vettool binary (one invocation per package). Fields we do not consume
// are listed for documentation value and decoded for free.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetTool analyzes the single package described by the cfg file, printing
// diagnostics to w in go-vet style. Exit semantics match x/tools
// unitchecker: 0 clean, 1 operational failure, 2 diagnostics reported.
func VetTool(w io.Writer, cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(w, "stringscheck: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "stringscheck: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// Test variants ("pkg [pkg.test]", "pkg.test") recompile the package's
	// production files alongside _test.go files. The analyzers check
	// production files only and those are covered by the primary variant,
	// so analyzing here would only duplicate diagnostics. cmd/go still
	// caches a vetx output for the action; empty decodes as empty facts.
	if strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintf(w, "stringscheck: %v\n", err)
				return 1
			}
		}
		return 0
	}

	// Standard-library packages are fact-free, matching standalone mode
	// (load.Targets skips them): the hot-path contract governs this module,
	// and analyzing fmt or sort would both cost time and make vet-mode
	// findings diverge from `stringscheck ./...` output.
	if cfg.Standard[cfg.ImportPath] {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintf(w, "stringscheck: %v\n", err)
				return 1
			}
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, g := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, g, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(w, "stringscheck: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}

	// Imports resolve through the export data cmd/go already compiled:
	// source path -> canonical path (ImportMap) -> export file (PackageFile).
	exports := make(map[string]string, len(cfg.PackageFile))
	for canon, file := range cfg.PackageFile {
		exports[canon] = file
	}
	lookupExports := make(map[string]string, len(cfg.ImportMap))
	for src, canon := range cfg.ImportMap {
		lookupExports[src] = exports[canon]
	}
	for canon, file := range exports {
		if _, ok := lookupExports[canon]; !ok {
			lookupExports[canon] = file
		}
	}

	info := analysis.NewInfo()
	conf := types.Config{Importer: load.ExportImporter(fset, lookupExports)}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(w, "stringscheck: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// Dependency facts arrive as the .vetx files cmd/go recorded for this
	// package's imports (written by our own earlier invocations). Unreadable
	// or foreign-format files decode as empty facts rather than failing the
	// build: facts only ever add diagnostics.
	facts := analysis.NewFactSet()
	for path, vetxFile := range cfg.PackageVetx {
		data, err := os.ReadFile(vetxFile)
		if err != nil {
			continue
		}
		pf, err := analysis.DecodeFacts(data)
		if err != nil {
			continue
		}
		pf.Path = path
		facts.Add(pf)
	}

	target := &analysis.Target{
		Path:      cfg.ImportPath,
		Fset:      fset,
		Files:     files,
		Pkg:       tpkg,
		Info:      info,
		Facts:     facts,
		FactsOnly: cfg.VetxOnly,
	}
	diags, err := analysis.Run(target, analysis.All())
	if err != nil {
		fmt.Fprintf(w, "stringscheck: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	// cmd/go content-hashes the vetx output into its action cache;
	// EncodeFacts is byte-deterministic so an unchanged package reuses
	// every downstream cache entry.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, analysis.EncodeFacts(target.Exported), 0o666); err != nil {
			fmt.Fprintf(w, "stringscheck: %v\n", err)
			return 1
		}
	}
	// Dependency-only invocation: facts were the product, not diagnostics.
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
