package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// vetConfig mirrors the JSON cmd/go writes to the vet.cfg file it hands a
// -vettool binary (one invocation per package). Fields we do not consume
// are listed for documentation value and decoded for free.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetTool analyzes the single package described by the cfg file, printing
// diagnostics to w in go-vet style. Exit semantics match x/tools
// unitchecker: 0 clean, 1 operational failure, 2 diagnostics reported.
func VetTool(w io.Writer, cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(w, "stringscheck: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "stringscheck: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// cmd/go caches the vetx facts file as this action's output; the suite
	// is facts-free, so an empty file satisfies the contract.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(w, "stringscheck: %v\n", err)
			return 1
		}
	}
	// Dependency-only invocation: nothing to report, no facts to compute.
	if cfg.VetxOnly {
		return 0
	}
	// Test variants ("pkg [pkg.test]", "pkg.test") recompile the package's
	// production files alongside _test.go files. The analyzers check
	// production files only and those are covered by the primary variant,
	// so analyzing here would only duplicate diagnostics.
	if strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, g := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, g, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(w, "stringscheck: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}

	// Imports resolve through the export data cmd/go already compiled:
	// source path -> canonical path (ImportMap) -> export file (PackageFile).
	exports := make(map[string]string, len(cfg.PackageFile))
	for canon, file := range cfg.PackageFile {
		exports[canon] = file
	}
	lookupExports := make(map[string]string, len(cfg.ImportMap))
	for src, canon := range cfg.ImportMap {
		lookupExports[src] = exports[canon]
	}
	for canon, file := range exports {
		if _, ok := lookupExports[canon]; !ok {
			lookupExports[canon] = file
		}
	}

	info := analysis.NewInfo()
	conf := types.Config{Importer: load.ExportImporter(fset, lookupExports)}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(w, "stringscheck: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	target := &analysis.Target{
		Path:  cfg.ImportPath,
		Fset:  fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}
	diags, err := analysis.Run(target, analysis.All())
	if err != nil {
		fmt.Fprintf(w, "stringscheck: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
