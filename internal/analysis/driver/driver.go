// Package driver runs the stringscheck suite in the binary's two modes:
// standalone (`stringscheck ./...`, backed by the load package) and as a
// `go vet -vettool=` unit checker speaking cmd/go's vet.cfg protocol.
package driver

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// A Finding is one diagnostic in `stringscheck -json` output. File paths
// are relative to the invocation directory when possible so the bytes do
// not depend on the checkout location.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Standalone lints the packages matching patterns from dir, printing
// diagnostics to w — go-vet-style lines, or (with jsonOut) one sorted JSON
// array, byte-identical across runs for the same tree. Packages are
// analyzed in dependency order so each one sees its dependencies' exported
// facts; module-local dependencies outside the patterns contribute facts
// without contributing diagnostics. Returns 0 for a clean tree, 2 when
// diagnostics were reported, 1 on operational failure.
func Standalone(w io.Writer, dir string, patterns []string, jsonOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := load.Targets(dir, patterns)
	if err != nil {
		fmt.Fprintf(w, "stringscheck: %v\n", err)
		return 1
	}
	facts := analysis.NewFactSet()
	findings := []Finding{} // non-nil so -json renders "[]", not "null"
	for _, t := range targets {
		t.Facts = facts
		diags, err := analysis.Run(t, analysis.All())
		if err != nil {
			fmt.Fprintf(w, "stringscheck: %s: %v\n", t.Path, err)
			return 1
		}
		facts.Add(t.Exported)
		if t.FactsOnly {
			continue
		}
		for _, d := range diags {
			pos := t.Fset.Position(d.Pos)
			file := pos.Filename
			if rel, err := filepath.Rel(dir, file); err == nil && !filepath.IsAbs(rel) {
				file = rel
			}
			findings = append(findings, Finding{
				File:     file,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	if jsonOut {
		// Emit even when empty: "[]" is the machine-readable all-clear.
		data, err := json.MarshalIndent(findings, "", "  ")
		if err != nil {
			fmt.Fprintf(w, "stringscheck: %v\n", err)
			return 1
		}
		fmt.Fprintf(w, "%s\n", data)
	} else {
		for _, f := range findings {
			fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
