// Package driver runs the stringscheck suite in the binary's two modes:
// standalone (`stringscheck ./...`, backed by the load package) and as a
// `go vet -vettool=` unit checker speaking cmd/go's vet.cfg protocol.
package driver

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Standalone lints the packages matching patterns from dir, printing
// diagnostics to w. It returns 0 for a clean tree, 2 when diagnostics were
// reported, 1 on operational failure (load or typecheck error).
func Standalone(w io.Writer, dir string, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := load.Targets(dir, patterns)
	if err != nil {
		fmt.Fprintf(w, "stringscheck: %v\n", err)
		return 1
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Path < targets[j].Path })
	exit := 0
	for _, t := range targets {
		diags, err := analysis.Run(t, analysis.All())
		if err != nil {
			fmt.Fprintf(w, "stringscheck: %s: %v\n", t.Path, err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(w, "%s: %s: %s\n", t.Fset.Position(d.Pos), d.Analyzer, d.Message)
			exit = 2
		}
	}
	return exit
}
