// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary, carrying the five stringscheck
// analyzers that mechanically enforce the simulator's determinism and
// protocol invariants (see DESIGN.md "Determinism invariants").
//
// The framework is deliberately tiny: an Analyzer inspects one typechecked
// package and reports Diagnostics; Run executes a set of analyzers over a
// Target and filters diagnostics through //lint:allow suppressions. It
// exists because the build environment is offline — x/tools is not
// vendorable here — and because none of the five checks need cross-package
// facts, modular analysis, or suggested fixes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:allow <name>" suppression comments.
	Name string
	// Doc is a one-paragraph description of the invariant, shown by
	// "stringscheck -doc".
	Doc string
	// Run inspects the package held by pass and reports violations via
	// pass.Reportf. A returned error aborts the whole check (reserved for
	// internal failures, not findings).
	Run func(pass *Pass) error
}

// A Pass carries one typechecked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// A Target is one typechecked package ready for analysis.
type Target struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// All returns the full stringscheck suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Simclock, Detrand, Maporder, Rawgo, Errflow}
}

// ByName resolves one analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes analyzers over the target, applies //lint:allow filtering,
// and returns the surviving diagnostics sorted by position.
func Run(t *Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      t.Fset,
			Files:     t.Files,
			Pkg:       t.Pkg,
			TypesInfo: t.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	diags = filterAllowed(t.Fset, t.Files, diags)
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := t.Fset.Position(diags[i].Pos), t.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// ---- shared predicates ----

// isTestFile reports whether the file holding pos is a _test.go file; all
// five analyzers check production code only (tests legitimately use
// goroutines, wall clocks for timeouts, and unordered iteration).
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// simDriven reports whether pkg belongs to the simulator's deterministic
// domain: it is internal/sim itself, or it directly imports internal/sim or
// one of the façade packages (stringsched, internal/core) that drive it.
// Matching is by path suffix so analysistest fixtures under testdata/src
// trigger the same way the real tree does.
func simDriven(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	if pathEndsWith(pkg.Path(), "internal/sim") {
		return true
	}
	for _, imp := range pkg.Imports() {
		p := imp.Path()
		if pathEndsWith(p, "internal/sim") ||
			pathEndsWith(p, "internal/core") ||
			pathEndsWith(p, "stringsched") {
			return true
		}
	}
	return false
}

// pathEndsWith reports whether path equals suffix or ends with "/"+suffix.
func pathEndsWith(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
