// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary, carrying the nine stringscheck
// analyzers that mechanically enforce the simulator's determinism,
// protocol, and hot-path invariants (see DESIGN.md "Determinism
// invariants" and "Dataflow analysis and the hot-path contract").
//
// The framework has two layers. The syntactic layer is unchanged from the
// original five analyzers: an Analyzer inspects one typechecked package
// and reports Diagnostics; Run executes a set of analyzers over a Target
// and filters diagnostics through //lint:allow suppressions. The dataflow
// layer adds an intra-procedural CFG with a forward fixpoint driver
// (cfg.go), a static per-package call graph with //strings:hotpath
// annotations (callgraph.go), and per-package exported facts that flow
// between packages in dependency order (facts.go) — enough for the
// hot-path analyzers (hotalloc, poolsafe, spanpair) without importing
// x/tools, which the offline build environment cannot vendor.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:allow <name>" suppression comments.
	Name string
	// Doc is a one-paragraph description of the invariant, shown by
	// "stringscheck -doc".
	Doc string
	// Run inspects the package held by pass and reports violations via
	// pass.Reportf. A returned error aborts the whole check (reserved for
	// internal failures, not findings).
	Run func(pass *Pass) error
}

// A Pass carries one typechecked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic

	// facts holds the dependency packages' exported summaries (nil when
	// the driver provides none — single-package fixture runs).
	facts *FactSet
	// exported accumulates this package's own facts across analyzers.
	exported *PkgFacts
	// allows is the package's parsed lint:allow directives; analyzers that
	// fold suppressions into fact computation consult it via Allowed.
	allows []*AllowDirective
	// ran names the analyzers executed in this Run invocation; allowaudit
	// uses it to scope staleness to rules that actually ran.
	ran map[string]bool
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// DepFacts returns the exported facts of the dependency with the given
// import path, or nil when the driver has none.
func (p *Pass) DepFacts(path string) *PkgFacts {
	return p.facts.Package(path)
}

// ExportHot marks an exported function key as hot-path-reachable in this
// package's facts.
func (p *Pass) ExportHot(key string) {
	if p.exported != nil {
		p.exported.Hot[key] = true
	}
}

// ExportAlloc marks an exported function key as may-allocate in this
// package's facts.
func (p *Pass) ExportAlloc(key string) {
	if p.exported != nil {
		p.exported.Alloc[key] = true
	}
}

// Allowed reports whether a lint:allow directive for the running analyzer
// covers pos, marking the directive as used. Analyzers call it when a
// suppression changes what they compute (hotalloc: a sanctioned alloc site
// does not poison the function's alloc fact), not merely what they report —
// reported diagnostics are filtered, and their directives marked, by the
// framework.
func (p *Pass) Allowed(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	hit := false
	for _, d := range p.allows {
		if d.covers(position.Filename, position.Line, p.Analyzer.Name) {
			d.markUsed(p.Analyzer.Name)
			hit = true
		}
	}
	return hit
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// A Target is one typechecked package ready for analysis.
type Target struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Facts carries the dependencies' exported summaries into the run
	// (nil is a valid empty set).
	Facts *FactSet
	// Exported is filled by Run with this package's own facts, for the
	// driver to serialize or hand to dependents.
	Exported *PkgFacts
	// FactsOnly marks a dependency package analyzed solely to compute its
	// exported facts; drivers discard its diagnostics.
	FactsOnly bool
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// All returns the full stringscheck suite in reporting order: the five
// syntactic determinism analyzers, the three dataflow hot-path analyzers,
// and the suppression auditor.
func All() []*Analyzer {
	return []*Analyzer{
		Simclock, Detrand, Maporder, Rawgo, Errflow,
		Hotalloc, Poolsafe, Spanpair, Allowaudit,
	}
}

// ByName resolves one analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes analyzers over the target, applies //lint:allow filtering,
// and returns the surviving diagnostics sorted by position. The package's
// exported facts land in t.Exported. Allowaudit, when present, runs last:
// it needs to know which directives the other analyzers actually consumed.
func Run(t *Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	directives := collectAllowDirectives(t.Fset, t.Files)
	t.Exported = NewPkgFacts(t.Path)
	ran := make(map[string]bool, len(analyzers))

	var diags []Diagnostic
	newPass := func(a *Analyzer) *Pass {
		return &Pass{
			Analyzer:  a,
			Fset:      t.Fset,
			Files:     t.Files,
			Pkg:       t.Pkg,
			TypesInfo: t.Info,
			diags:     &diags,
			facts:     t.Facts,
			exported:  t.Exported,
			allows:    directives,
			ran:       ran,
		}
	}

	var audit *Analyzer
	for _, a := range analyzers {
		if a.Name == Allowaudit.Name {
			audit = a
			continue
		}
		ran[a.Name] = true
		if err := a.Run(newPass(a)); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	diags = filterAllowed(t.Fset, directives, diags)
	if audit != nil {
		ran[audit.Name] = true
		if err := audit.Run(newPass(audit)); err != nil {
			return nil, fmt.Errorf("%s: %w", audit.Name, err)
		}
		// The auditor's own findings honor lint:allow allowaudit; earlier
		// survivors pass through the second filter unchanged.
		diags = filterAllowed(t.Fset, directives, diags)
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := t.Fset.Position(diags[i].Pos), t.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// ---- shared predicates ----

// isTestFile reports whether the file holding pos is a _test.go file; the
// analyzers check production code only (tests legitimately use
// goroutines, wall clocks for timeouts, and unordered iteration).
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// kernelLayer reports whether path is the virtual-time kernel implementation
// itself: internal/sim (the baton-chain kernel) or internal/sim/shard (the
// coordinator composing shard kernels under conservative window barriers).
// The layer is inside the deterministic domain by definition — simDriven
// holds for it regardless of imports — and rawgo grants it the goroutine
// right, because the baton chain and the cross-kernel window handoff are
// exactly what it implements. simclock still applies: window barriers
// synchronize workers in host time but must never read it; lookahead and
// horizons are virtual sim.Time.
func kernelLayer(path string) bool {
	return pathEndsWith(path, "internal/sim") ||
		pathEndsWith(path, "internal/sim/shard")
}

// simDriven reports whether pkg belongs to the simulator's deterministic
// domain: it is the kernel layer itself, or it directly imports internal/sim
// or one of the façade packages (stringsched, internal/core) that drive it.
// Matching is by path suffix so analysistest fixtures under testdata/src
// trigger the same way the real tree does.
func simDriven(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	if kernelLayer(pkg.Path()) {
		return true
	}
	for _, imp := range pkg.Imports() {
		p := imp.Path()
		if pathEndsWith(p, "internal/sim") ||
			pathEndsWith(p, "internal/core") ||
			pathEndsWith(p, "stringsched") {
			return true
		}
	}
	return false
}

// pathEndsWith reports whether path equals suffix or ends with "/"+suffix.
func pathEndsWith(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
