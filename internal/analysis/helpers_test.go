package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckSrc parses and typechecks one source string, returning the
// package and the info tables the helpers under test consume.
func typecheckSrc(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, pkg, info
}

func lookupFunc(t *testing.T, pkg *types.Package, path ...string) *types.Func {
	t.Helper()
	obj := pkg.Scope().Lookup(path[0])
	if len(path) == 2 {
		named, ok := obj.Type().(*types.Named)
		if !ok {
			t.Fatalf("%s is not a named type", path[0])
		}
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == path[1] {
				return named.Method(i)
			}
		}
		t.Fatalf("method %s.%s not found", path[0], path[1])
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("%s is not a func", path[0])
	}
	return fn
}

const helperSrc = `package p

type Dev struct{}

func (d *Dev) Reap() {}
func (d Dev) Name() string { return "" }
func Free() {}
`

func TestFuncKeyAndDisplayName(t *testing.T) {
	_, _, pkg, _ := typecheckSrc(t, helperSrc)
	cases := []struct {
		path    []string
		key     string
		display string
	}{
		{[]string{"Dev", "Reap"}, "Dev.Reap", "(*Dev).Reap"},
		{[]string{"Dev", "Name"}, "Dev.Name", "Dev.Name"},
		{[]string{"Free"}, "Free", "Free"},
	}
	for _, c := range cases {
		fn := lookupFunc(t, pkg, c.path...)
		if got := funcKey(fn); got != c.key {
			t.Errorf("funcKey(%v) = %q, want %q", c.path, got, c.key)
		}
		if got := displayName(fn); got != c.display {
			t.Errorf("displayName(%v) = %q, want %q", c.path, got, c.display)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		if got := ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want the registered analyzer", a.Name, got)
		}
	}
	if got := ByName("nosuchanalyzer"); got != nil {
		t.Errorf("ByName(unknown) = %v, want nil", got)
	}
}

func TestAnyUsedAndAllRan(t *testing.T) {
	d := &AllowDirective{}
	if anyUsed(d) {
		t.Error("fresh directive reported used")
	}
	d.markUsed("hotalloc")
	if !anyUsed(d) {
		t.Error("marked directive reported unused")
	}

	pass := &Pass{ran: map[string]bool{}}
	if allRan(pass) {
		t.Error("empty run set reported complete")
	}
	for _, a := range All() {
		pass.ran[a.Name] = true
	}
	if !allRan(pass) {
		t.Error("full run set reported incomplete")
	}
}

func TestTypeHelpers(t *testing.T) {
	_, _, pkg, _ := typecheckSrc(t, helperSrc)
	dev := pkg.Scope().Lookup("Dev").Type()
	if got := typeName(dev); got != "Dev" {
		t.Errorf("typeName(Dev) = %q", got)
	}
	if got := typeName(nil); got != "?" {
		t.Errorf("typeName(nil) = %q", got)
	}
	if got := typeKindWord(types.NewSlice(dev)); got != "slice" {
		t.Errorf("typeKindWord(slice) = %q", got)
	}
	if got := typeKindWord(types.NewMap(dev, dev)); got != "map" {
		t.Errorf("typeKindWord(map) = %q", got)
	}
	if got := typeKindWord(dev); got != "composite" {
		t.Errorf("typeKindWord(struct) = %q", got)
	}
}

func TestBoxes(t *testing.T) {
	_, _, pkg, _ := typecheckSrc(t, helperSrc)
	dev := pkg.Scope().Lookup("Dev").Type()
	iface := types.NewInterfaceType(nil, nil)
	iface.Complete()
	intT := types.Typ[types.Int]
	cases := []struct {
		dst, src types.Type
		want     bool
	}{
		{iface, intT, true},                   // concrete value into any
		{iface, dev, true},                    // struct into any
		{iface, types.NewPointer(dev), false}, // pointer-shaped
		{iface, iface, false},                 // interface to interface
		{intT, intT, false},                   // no interface involved
		{iface, nil, false},
		{nil, intT, false},
	}
	for i, c := range cases {
		if got := boxes(c.dst, c.src); got != c.want {
			t.Errorf("case %d: boxes(%v, %v) = %v, want %v", i, c.dst, c.src, got, c.want)
		}
	}
}
