package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestAllowaudit runs hotalloc and the auditor together, so directive
// usage is real: a working suppression passes, a working one without a
// reason is flagged, an idle one is stale, a typoed name is unknown, and
// directives for analyzers that did not run are left alone.
func TestAllowaudit(t *testing.T) {
	analysistest.RunSuite(t, analysistest.TestData(),
		[]*analysis.Analyzer{analysis.Hotalloc, analysis.Allowaudit}, "allowaudit")
}
