package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Spanpair checks that every trace span is ended on every path out of the
// function that opened it. The trace layer (internal/trace) is the
// simulator's audit record: a span opened by Begin and never passed to End
// renders as a forever-open interval in the Chrome trace export and breaks
// the decision-audit pairing that PR 5 pinned with golden files.
//
// Recognition is type-directed: a call whose single result is a named type
// called SpanID opens a span, binding it to the local it is assigned to; a
// call to a method named End taking that local closes it; SetGID, Event,
// and Annotate use the ID without consuming it. Passing the ID to any
// other call, returning it, or storing it into a field transfers ownership
// out of the function, and the obligation moves with it — the analyzer
// stops tracking. A deferred End discharges the obligation on every exit,
// including panic paths, which is the recommended shape for functions with
// more than one return.
//
// The check is a forward may-open dataflow over the CFG: the union join
// means a span closed on one branch but not the other is still open at the
// merge, and anything open at the synthetic Exit block — which return,
// fall-off-the-end, and explicit panic edges all reach — is reported at
// its Begin.
var Spanpair = &Analyzer{
	Name: "spanpair",
	Doc: "every trace span Begin must reach an End (or deferred End) on all control-flow exits; " +
		"unmatched spans corrupt the audit trail and trace export",
	Run: runSpanpair,
}

// spanNeutral are methods that consume a SpanID argument without closing
// or taking ownership of the span.
var spanNeutral = map[string]bool{"SetGID": true, "Event": true, "Annotate": true}

func runSpanpair(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			checkSpans(pass, decl)
		}
	}
	return nil
}

// spanState maps an open span variable to the position of its Begin.
type spanState map[*types.Var]token.Pos

func cloneSpans(s spanState) spanState {
	out := make(spanState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func joinSpans(dst, src spanState) (spanState, bool) {
	changed := false
	for k, v := range src {
		if old, ok := dst[k]; !ok || v < old {
			dst[k] = v
			changed = true
		}
	}
	return dst, changed
}

func checkSpans(pass *Pass, decl *ast.FuncDecl) {
	// Fast path: skip functions with no span-opening call.
	opens := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isSpanOpen(pass, call) {
			opens = true
		}
		return !opens
	})
	if !opens {
		return
	}

	g := BuildCFG(decl.Body)

	// Deferred Ends discharge obligations on every exit.
	deferredEnd := make(map[*types.Var]bool)
	for _, ds := range g.Defers {
		if v := spanEndArg(pass, ds.Call); v != nil {
			deferredEnd[v] = true
		}
	}

	var dropped []token.Pos // Begin results never bound to a variable
	transfer := func(b *Block, s spanState) spanState {
		s = cloneSpans(s)
		for _, n := range b.Nodes {
			spanTransfer(pass, n, s, nil)
		}
		return s
	}
	in := ForwardFixpoint(g, spanState{}, cloneSpans, joinSpans, transfer)

	// Collect discarded Begins in one reporting sweep (dedup inherent: one
	// pass over each block).
	for _, b := range g.Blocks {
		s, ok := in[b]
		if !ok {
			continue
		}
		s = cloneSpans(s)
		for _, n := range b.Nodes {
			spanTransfer(pass, n, s, func(pos token.Pos) { dropped = append(dropped, pos) })
		}
	}

	exitState, ok := in[g.Exit]
	if ok {
		type open struct {
			v   *types.Var
			pos token.Pos
		}
		var opensAtExit []open
		for v, pos := range exitState {
			if !deferredEnd[v] {
				opensAtExit = append(opensAtExit, open{v, pos})
			}
		}
		sort.Slice(opensAtExit, func(i, j int) bool { return opensAtExit[i].pos < opensAtExit[j].pos })
		for _, o := range opensAtExit {
			pass.Reportf(o.pos,
				"span %s is not ended on every path out of %s; call End on each exit or defer it",
				o.v.Name(), decl.Name.Name)
		}
	}
	sort.Slice(dropped, func(i, j int) bool { return dropped[i] < dropped[j] })
	for _, pos := range dropped {
		pass.Reportf(pos, "span opened and immediately discarded; bind the SpanID and End it")
	}
}

// spanTransfer interprets one CFG node against the open-span set. onDrop,
// when non-nil, receives Begin calls whose SpanID is discarded.
func spanTransfer(pass *Pass, n ast.Node, s spanState, onDrop func(token.Pos)) {
	switch n := n.(type) {
	case *ast.DeferStmt:
		return // handled via g.Defers at exit
	case *ast.AssignStmt:
		for i, r := range n.Rhs {
			call, ok := ast.Unparen(r).(*ast.CallExpr)
			if ok && isSpanOpen(pass, call) && i < len(n.Lhs) {
				if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
					if v := objOf(pass, id); v != nil {
						s[v] = call.Pos()
						continue
					}
				}
				if onDrop != nil {
					onDrop(call.Pos())
				}
				continue
			}
			spanWalkUses(pass, r, s)
		}
		// Non-Begin assignment to a tracked var: ownership moved in from
		// elsewhere or the ID was overwritten; stop tracking the old span
		// is NOT safe — overwriting an open span loses it. Keep it open:
		// the Begin position still reports if never ended.
		return
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			spanEscape(pass, r, s)
		}
		return
	case RangeHeader:
		spanWalkUses(pass, n.X, s)
		return
	}
	spanWalkUses(pass, n, s, onDrop)
}

// spanWalkUses walks a fragment handling End (close), neutral uses, and
// ownership transfers. A Begin in expression position (not the RHS of an
// assignment) is a discarded span.
func spanWalkUses(pass *Pass, root ast.Node, s spanState, onDrop ...func(token.Pos)) {
	if root == nil {
		return
	}
	var drop func(token.Pos)
	if len(onDrop) > 0 && onDrop[0] != nil {
		drop = onDrop[0]
	}
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			return true
		}
		if isSpanOpen(pass, call) {
			if drop != nil {
				drop(call.Pos())
			}
			return false
		}
		if v := spanEndArg(pass, call); v != nil {
			delete(s, v)
			return false
		}
		name, _ := calleeNameAndRecv(call)
		if spanNeutral[name] {
			return false // uses the ID, obligation unchanged
		}
		// Any other call receiving a tracked ID takes ownership.
		for _, a := range call.Args {
			spanEscape(pass, a, s)
		}
		return true
	})
}

// spanEscape untracks span variables referenced by e: their obligation
// transferred to the receiver.
func spanEscape(pass *Pass, e ast.Expr, s spanState) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := objOf(pass, id); v != nil {
				delete(s, v)
			}
		}
		return true
	})
}

// isSpanOpen reports whether call returns a single value of a named type
// called SpanID — the open-span signature.
func isSpanOpen(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "SpanID"
}

// spanEndArg reports the local span variable closed by call: a method
// named End whose sole argument is a plain identifier of type SpanID.
func spanEndArg(pass *Pass, call *ast.CallExpr) *types.Var {
	name, _ := calleeNameAndRecv(call)
	if name != "End" || len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	v := objOf(pass, id)
	if v == nil {
		return nil
	}
	if named, ok := v.Type().(*types.Named); !ok || named.Obj().Name() != "SpanID" {
		return nil
	}
	return v
}
