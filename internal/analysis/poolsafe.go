package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Poolsafe guards the repo's object pools — the rpcproto Call/Reply pool,
// the gpu Op free list, and pooled cuda events — against the two bugs
// recycling invites:
//
//   - use-after-release: reading or writing an object after handing it back
//     to its pool. The pool may have re-issued it; the write lands in
//     someone else's request and the corruption is deterministic but
//     arbitrarily far from the cause.
//   - double-release: returning the same object twice puts it in the free
//     list twice, so two future Gets alias one object.
//
// Releases are recognized by shape: a call whose function or method name
// starts with Free, Put, Release, or Recycle taking exactly one
// pointer-typed local identifier (pool.FreeCall(c), d.recycleOp(op)), or a
// niladic Unref method call on a pointer-typed local (ev.Unref()). Tracking
// is a forward may-released dataflow over the CFG: a release gates every
// later use on every path it reaches; reassigning the variable kills the
// released state (the serve loops re-Get each iteration). Only plain local
// identifiers are tracked — releases of fields or aliased pointers are out
// of scope, deliberately, to keep the analysis alias-free and
// false-positive-free.
//
// Separately, pool-return methods themselves (names starting Free, Put, or
// Recycle with one pointer-to-struct parameter) must sanitize before
// storing: a `*p = T{}` zeroing or p.Reset() call must precede the
// statement that stores p into the pool, or stale request state leaks into
// the next tenant's Get (the paper's isolation argument assumes clean
// handoff).
var Poolsafe = &Analyzer{
	Name: "poolsafe",
	Doc: "flag use-after-release and double-release of pooled objects, and pool-return " +
		"methods that store an object without zeroing it first",
	Run: runPoolsafe,
}

// releasePrefixes are the method-name shapes that return an object to a pool.
var releasePrefixes = []string{"Free", "Put", "Release", "Recycle", "recycle"}

func runPoolsafe(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			checkPoolUse(pass, decl)
			checkPoolReset(pass, decl)
		}
	}
	return nil
}

// releaseState maps a tracked variable to the position of the release that
// may have reached this point.
type releaseState map[*types.Var]token.Pos

func cloneRelease(s releaseState) releaseState {
	out := make(releaseState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// joinRelease unions may-released sets, keeping the earliest release site
// per variable for stable diagnostics.
func joinRelease(dst, src releaseState) (releaseState, bool) {
	changed := false
	for k, v := range src {
		if old, ok := dst[k]; !ok || v < old {
			dst[k] = v
			changed = true
		}
	}
	return dst, changed
}

// checkPoolUse runs the use-after-release / double-release dataflow over
// one function body.
func checkPoolUse(pass *Pass, decl *ast.FuncDecl) {
	// Only functions that release something need the dataflow.
	tracked := make(map[*types.Var]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v := releasedVar(pass, decl, call); v != nil {
			tracked[v] = true
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	g := BuildCFG(decl.Body)
	in := ForwardFixpoint(g, releaseState{}, cloneRelease, joinRelease,
		func(b *Block, s releaseState) releaseState {
			s = cloneRelease(s)
			for _, n := range b.Nodes {
				poolTransfer(pass, decl, tracked, n, s, nil)
			}
			return s
		})

	// Single reporting pass, deduplicated by (use position, variable).
	type key struct {
		pos token.Pos
		v   *types.Var
	}
	seen := make(map[key]bool)
	var reports []func()
	report := func(pos token.Pos, format string, args ...any) {
		reports = append(reports, func() { pass.Reportf(pos, format, args...) })
	}
	for _, b := range g.Blocks {
		s, ok := in[b]
		if !ok {
			continue // unreachable
		}
		s = cloneRelease(s)
		for _, n := range b.Nodes {
			poolTransfer(pass, decl, tracked, n, s, func(pos token.Pos, v *types.Var, double bool) {
				k := key{pos, v}
				if seen[k] {
					return
				}
				seen[k] = true
				rel := pass.Fset.Position(s[v])
				if double {
					report(pos, "%s released again after release at %s:%d (double-release re-pools an object twice)",
						v.Name(), shortPath(rel.Filename), rel.Line)
				} else {
					report(pos, "use of %s after its release at %s:%d (the pool may have re-issued it)",
						v.Name(), shortPath(rel.Filename), rel.Line)
				}
			})
		}
	}
	for _, r := range reports {
		r()
	}
}

// poolTransfer interprets one CFG node against the released-set, reporting
// through onBug when non-nil. It mutates s in place.
func poolTransfer(pass *Pass, decl *ast.FuncDecl, tracked map[*types.Var]bool, n ast.Node, s releaseState, onBug func(pos token.Pos, v *types.Var, double bool)) {
	switch n := n.(type) {
	case *ast.DeferStmt:
		// Deferred releases run at function exit; treating them as firing
		// in place would poison every later use.
		return
	case *ast.AssignStmt:
		for _, r := range n.Rhs {
			poolWalkUses(pass, decl, tracked, r, s, onBug)
		}
		for _, l := range n.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				if v := objOf(pass, id); v != nil && tracked[v] {
					delete(s, v) // redefinition revives the variable
					continue
				}
			}
			poolWalkUses(pass, decl, tracked, l, s, onBug)
		}
		return
	case RangeHeader:
		poolWalkUses(pass, decl, tracked, n.X, s, onBug)
		// The key/value variables are rebound every iteration, so a release
		// in the previous iteration does not survive the back edge.
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if v := objOf(pass, id); v != nil {
					delete(s, v)
				}
			}
		}
		return
	}
	poolWalkUses(pass, decl, tracked, n, s, onBug)
}

// poolWalkUses walks an expression/statement fragment, handling release
// calls and flagging uses of released variables.
func poolWalkUses(pass *Pass, decl *ast.FuncDecl, tracked map[*types.Var]bool, root ast.Node, s releaseState, onBug func(pos token.Pos, v *types.Var, double bool)) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closure body runs under unknown state
		case *ast.CallExpr:
			if v := releasedVar(pass, decl, n); v != nil {
				if _, already := s[v]; already {
					if onBug != nil {
						onBug(n.Pos(), v, true)
					}
				} else {
					s[v] = n.Pos()
				}
				return false // the arg ident is the release, not a use
			}
		case *ast.Ident:
			v := objOf(pass, n)
			if v == nil || !tracked[v] {
				return true
			}
			if _, released := s[v]; released && onBug != nil {
				onBug(n.Pos(), v, false)
			}
		}
		return true
	})
}

// releasedVar reports the local variable a call releases, or nil when the
// call is not a recognized release of a plain local identifier.
func releasedVar(pass *Pass, decl *ast.FuncDecl, call *ast.CallExpr) *types.Var {
	name, recv := calleeNameAndRecv(call)
	if name == "" {
		return nil
	}
	if name == "Unref" && len(call.Args) == 0 && recv != nil {
		return localPtrVar(pass, decl, recv)
	}
	if !hasReleasePrefix(name) || len(call.Args) != 1 {
		return nil
	}
	return localPtrVar(pass, decl, call.Args[0])
}

// calleeNameAndRecv extracts a call's bare function/method name and, for
// method calls, the receiver expression.
func calleeNameAndRecv(call *ast.CallExpr) (string, ast.Expr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name, nil
	case *ast.SelectorExpr:
		return fun.Sel.Name, fun.X
	}
	return "", nil
}

func hasReleasePrefix(name string) bool {
	for _, p := range releasePrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// localPtrVar resolves e to a pointer-typed variable declared within decl
// (parameter or local), or nil.
func localPtrVar(pass *Pass, decl *ast.FuncDecl, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v := objOf(pass, id)
	if v == nil || v.IsField() {
		return nil
	}
	if _, ok := v.Type().Underlying().(*types.Pointer); !ok {
		return nil
	}
	if v.Pos() < decl.Pos() || v.Pos() > decl.End() {
		return nil // package-level or captured from elsewhere
	}
	return v
}

// checkPoolReset enforces the sanitize-before-store contract on
// pool-return methods: Free*/Put*/Recycle* with a single pointer-to-struct
// parameter must zero or Reset the object before the statement that stores
// it into the pool.
func checkPoolReset(pass *Pass, decl *ast.FuncDecl) {
	name := decl.Name.Name
	if !hasReleasePrefix(name) {
		return
	}
	params := decl.Type.Params
	if params == nil || len(params.List) != 1 || len(params.List[0].Names) != 1 {
		return
	}
	pv := objOf(pass, params.List[0].Names[0])
	if pv == nil {
		return
	}
	ptr, ok := pv.Type().Underlying().(*types.Pointer)
	if !ok {
		return
	}
	if _, ok := ptr.Elem().Underlying().(*types.Struct); !ok {
		return
	}

	var resetPos, storePos token.Pos = token.NoPos, token.NoPos
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// *p = T{} zeroing.
			for i, l := range n.Lhs {
				star, ok := ast.Unparen(l).(*ast.StarExpr)
				if !ok {
					continue
				}
				if id, ok := ast.Unparen(star.X).(*ast.Ident); ok && objOf(pass, id) == pv {
					if i < len(n.Rhs) {
						if _, isLit := ast.Unparen(n.Rhs[i]).(*ast.CompositeLit); isLit {
							if resetPos == token.NoPos {
								resetPos = n.Pos()
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			if nm, recv := calleeNameAndRecv(n); nm == "Reset" && recv != nil {
				if id, ok := ast.Unparen(recv).(*ast.Ident); ok && objOf(pass, id) == pv {
					if resetPos == token.NoPos {
						resetPos = n.Pos()
					}
				}
			}
		}
		if storePos == token.NoPos {
			if p := poolStoreOf(pass, n, pv); p != token.NoPos {
				storePos = p
			}
		}
		return true
	})
	if storePos != token.NoPos && (resetPos == token.NoPos || resetPos > storePos) {
		pass.Reportf(storePos,
			"%s stores %s into a pool without zeroing it first; add *%s = %s{} or %s.Reset() before the store so no request state leaks to the next Get",
			name, pv.Name(), pv.Name(), typeName(ptr.Elem()), pv.Name())
	}
}

// poolStoreOf reports the position at which node stores pv into a pool
// structure: appended (non-first argument) to a slice, sent on a channel,
// or assigned through an index/field.
func poolStoreOf(pass *Pass, n ast.Node, pv *types.Var) token.Pos {
	isPV := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && objOf(pass, id) == pv
	}
	switch n := n.(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				for _, a := range n.Args[1:] {
					if isPV(a) {
						return n.Pos()
					}
				}
			}
		}
	case *ast.SendStmt:
		if isPV(n.Value) {
			return n.Pos()
		}
	case *ast.AssignStmt:
		for i, r := range n.Rhs {
			if !isPV(r) || i >= len(n.Lhs) {
				continue
			}
			switch ast.Unparen(n.Lhs[i]).(type) {
			case *ast.IndexExpr, *ast.SelectorExpr:
				return n.Pos()
			}
		}
	}
	return token.NoPos
}

// shortPath trims a filename to its final two path segments for compact
// diagnostics.
func shortPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) <= 2 {
		return p
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
