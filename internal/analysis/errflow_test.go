package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestErrflow covers dropped error results on call statements, the
// explicit `_ =` / defer / fmt.Print* carve-outs, and //lint:allow.
func TestErrflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Errflow, "repro/internal/rpcproto")
}
