package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses `func f() { <src> }` and returns the function body.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f(c bool, n int, ch chan int) {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "body.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// mustAssigned runs a must-reach forward analysis: the set of variable
// names assigned on EVERY path from Entry, intersected at joins. It is a
// precise structural probe: a missing or extra CFG edge changes the result.
func mustAssigned(g *CFG) map[string]bool {
	clone := func(s map[string]bool) map[string]bool {
		out := make(map[string]bool, len(s))
		for k := range s {
			out[k] = true
		}
		return out
	}
	join := func(dst, src map[string]bool) (map[string]bool, bool) {
		changed := false
		for k := range dst {
			if !src[k] {
				delete(dst, k)
				changed = true
			}
		}
		return dst, changed
	}
	transfer := func(b *Block, in map[string]bool) map[string]bool {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					in[id.Name] = true
				}
			}
		}
		return in
	}
	in := ForwardFixpoint(g, map[string]bool{}, clone, join, transfer)
	return in[g.Exit]
}

// mayAssigned is the union (may-reach) variant.
func mayAssigned(g *CFG) map[string]bool {
	clone := func(s map[string]bool) map[string]bool {
		out := make(map[string]bool, len(s))
		for k := range s {
			out[k] = true
		}
		return out
	}
	join := func(dst, src map[string]bool) (map[string]bool, bool) {
		changed := false
		for k := range src {
			if !dst[k] {
				dst[k] = true
				changed = true
			}
		}
		return dst, changed
	}
	transfer := func(b *Block, in map[string]bool) map[string]bool {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						in[id.Name] = true
					}
				}
			}
		}
		return in
	}
	in := ForwardFixpoint(g, map[string]bool{}, clone, join, transfer)
	return in[g.Exit]
}

func TestCFGLinear(t *testing.T) {
	g := BuildCFG(parseBody(t, `x := 1; y := x`))
	got := mustAssigned(g)
	if !got["x"] || !got["y"] {
		t.Fatalf("straight-line assignments should reach Exit on all paths, got %v", got)
	}
}

func TestCFGIfJoin(t *testing.T) {
	// y assigned only on the then-branch: present in the may-set, absent
	// from the must-set. x dominates the exit.
	g := BuildCFG(parseBody(t, `x := 1; if c { y := 2; _ = y }`))
	must, may := mustAssigned(g), mayAssigned(g)
	if !must["x"] || must["y"] {
		t.Fatalf("must-set wrong: %v", must)
	}
	if !may["y"] {
		t.Fatalf("then-branch assignment should reach Exit on some path: %v", may)
	}
}

func TestCFGIfElseBothAssign(t *testing.T) {
	g := BuildCFG(parseBody(t, `if c { y := 2; _ = y } else { y := 3; _ = y }`))
	if must := mustAssigned(g); !must["y"] {
		t.Fatalf("y assigned on both branches must reach Exit: %v", must)
	}
}

func TestCFGForLoop(t *testing.T) {
	// The loop body may execute zero times: body assignments are may, not
	// must. The init clause always runs.
	g := BuildCFG(parseBody(t, `for i := 0; i < n; i++ { body := 1; _ = body }`))
	must, may := mustAssigned(g), mayAssigned(g)
	if !must["i"] {
		t.Fatalf("loop init should dominate Exit: %v", must)
	}
	if must["body"] {
		t.Fatalf("zero-iteration path should drop body from the must-set: %v", must)
	}
	if !may["body"] {
		t.Fatalf("loop body should reach Exit on some path: %v", may)
	}
}

func TestCFGInfiniteLoopWithBreak(t *testing.T) {
	// The only way out of `for {}` is the break: everything before the
	// break dominates Exit.
	g := BuildCFG(parseBody(t, `for { x := 1; _ = x; if c { break }; y := 2; _ = y }`))
	must := mustAssigned(g)
	if !must["x"] {
		t.Fatalf("pre-break assignment should dominate Exit: %v", must)
	}
	if must["y"] {
		t.Fatalf("post-break assignment is skipped on the exiting path: %v", must)
	}
}

func TestCFGRangeLoop(t *testing.T) {
	g := BuildCFG(parseBody(t, `s := []int{1}; for _, v := range s { body := v; _ = body }`))
	must, may := mustAssigned(g), mayAssigned(g)
	if must["body"] || !may["body"] {
		t.Fatalf("range body is a may-path: must=%v may=%v", must, may)
	}
	// The header carries a RangeHeader marker, never the raw RangeStmt.
	sawHeader := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(RangeHeader); ok {
				sawHeader = true
			}
			if _, ok := n.(*ast.RangeStmt); ok {
				t.Fatalf("raw *ast.RangeStmt leaked into a block")
			}
		}
	}
	if !sawHeader {
		t.Fatalf("no RangeHeader node emitted")
	}
}

func TestCFGPanicEdge(t *testing.T) {
	// panic() is an exit: the assignment after it is unreachable, and y is
	// only assigned on the non-panicking path.
	g := BuildCFG(parseBody(t, `x := 1; if c { panic("boom") }; y := 2; _, _ = x, y`))
	must, may := mustAssigned(g), mayAssigned(g)
	if !must["x"] {
		t.Fatalf("x dominates both exits: %v", must)
	}
	if must["y"] {
		t.Fatalf("panic edge must remove y from the must-set: %v", must)
	}
	if !may["y"] {
		t.Fatalf("fallthrough path still assigns y: %v", may)
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	g := BuildCFG(parseBody(t, `if c { return }; y := 1; _ = y`))
	if must := mustAssigned(g); must["y"] {
		t.Fatalf("early return path must drop y: %v", must)
	}
}

func TestCFGDeferCollection(t *testing.T) {
	// All defers are collected, including conditionally registered ones
	// (over-approximated as always registered).
	g := BuildCFG(parseBody(t, `defer func() {}(); if c { defer func() {}() }; for i := 0; i < n; i++ { defer func() {}() }`))
	if len(g.Defers) != 3 {
		t.Fatalf("got %d defers, want 3", len(g.Defers))
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	// fallthrough chains case 0 into case 1, so y is assigned on the
	// case-0 path too; with a default present every path assigns z.
	g := BuildCFG(parseBody(t, `switch n {
case 0:
	x := 1
	_ = x
	fallthrough
case 1:
	y := 2
	_ = y
	z := 0
	_ = z
default:
	z := 1
	_ = z
}`))
	must, may := mustAssigned(g), mayAssigned(g)
	if !may["y"] || !may["x"] {
		t.Fatalf("fallthrough edge missing: %v", may)
	}
	if !must["z"] {
		t.Fatalf("all three paths assign z: %v", must)
	}
}

func TestCFGSwitchNoDefault(t *testing.T) {
	// Without a default the header falls through directly: nothing from
	// the cases is in the must-set.
	g := BuildCFG(parseBody(t, `switch n { case 0: x := 1; _ = x }`))
	if must := mustAssigned(g); must["x"] {
		t.Fatalf("no-default switch must keep the skip edge: %v", must)
	}
}

func TestCFGSelectNoDefaultHasNoSkipEdge(t *testing.T) {
	// A select without default parks until a case fires: every path to
	// Exit runs some case body.
	g := BuildCFG(parseBody(t, `select {
case v := <-ch:
	x := v
	_ = x
case ch <- 1:
	x := 2
	_ = x
}`))
	if must := mustAssigned(g); !must["x"] {
		t.Fatalf("both select cases assign x and there is no skip edge: %v", must)
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := BuildCFG(parseBody(t, `outer:
for i := 0; i < n; i++ {
	for j := 0; j < n; j++ {
		if c {
			break outer
		}
		inner := 1
		_ = inner
	}
	tail := 1
	_ = tail
}`))
	may := mayAssigned(g)
	if !may["inner"] || !may["tail"] {
		t.Fatalf("loop bodies unreachable: %v", may)
	}
	// The labeled break skips tail on the breaking path.
	if must := mustAssigned(g); must["tail"] || must["inner"] {
		t.Fatalf("labeled break edge missing: %v", must)
	}
}

func TestCFGGoto(t *testing.T) {
	// goto skips the y assignment.
	g := BuildCFG(parseBody(t, `x := 1; if c { goto done }; y := 2; _ = y
done:
	_ = x`))
	must, may := mustAssigned(g), mayAssigned(g)
	if !must["x"] || must["y"] {
		t.Fatalf("goto edge wrong: must=%v", must)
	}
	if !may["y"] {
		t.Fatalf("fallthrough to label missing: may=%v", may)
	}
}

func TestCFGExitIsSingle(t *testing.T) {
	g := BuildCFG(parseBody(t, `if c { return }; if n > 0 { panic("x") }`))
	if len(g.Exit.Succs) != 0 {
		t.Fatalf("Exit must be terminal")
	}
	if g.Exit != g.Blocks[len(g.Blocks)-1] {
		t.Fatalf("Exit must be the last block")
	}
	count := 0
	for _, b := range g.Blocks {
		if b == g.Exit {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("exactly one Exit block, got %d", count)
	}
}
