package analysis

import (
	"go/ast"
)

// Rawgo forbids raw goroutines in sim-driven packages.
//
// The kernel hands execution between simulated processes with a baton
// chain: exactly one process runs at a time, and the kernel only advances
// the virtual clock when that process parks (internal/sim/kernel.go). A
// raw `go func` in scheduling code runs outside the baton, racing the
// kernel on shared state and observing a clock that may advance under it.
// Concurrency inside the simulated world must go through sim.Kernel
// process APIs (Kernel.Go / Proc.Wait / Queue / Signal). Real concurrency
// at the system boundary — a TCP accept loop, an experiment worker pool
// where each worker owns a private kernel — is legitimate and carries a
// //lint:allow rawgo with its justification. The kernel layer itself
// (internal/sim and the internal/sim/shard window-barrier coordinator) is
// exempt: the baton chain and the cross-kernel barrier handoff are what
// those packages implement, so their goroutines are the mechanism, not a
// bypass of it.
var Rawgo = &Analyzer{
	Name: "rawgo",
	Doc: "forbid `go` statements in sim-driven packages outside internal/sim itself; " +
		"simulated concurrency must use the kernel's baton-chain process APIs",
	Run: runRawgo,
}

func runRawgo(pass *Pass) error {
	if !simDriven(pass.Pkg) {
		return nil
	}
	// The kernel layer implements the baton chain (one goroutine per
	// simulated process) and, in internal/sim/shard, the conservative
	// window barrier that hands batches of kernels to concurrent workers;
	// it is the sole holder of that right.
	if kernelLayer(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			pass.Reportf(g.Pos(),
				"raw goroutine in a sim-driven package bypasses the kernel's baton-chain handoff; use sim.Kernel process APIs (Kernel.Go/Proc.Wait), or //lint:allow rawgo -- <reason> for real system-boundary concurrency")
			return true
		})
	}
	return nil
}
