package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestSimclock covers the forbidden wall-clock reads, the time.Time state
// diagnostic, the time.Duration carve-out, and //lint:allow suppression.
func TestSimclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Simclock, "simclock")
}

// TestSimclockSkipsNonSimPackages: a package that does not import
// internal/sim (or a façade) may use the wall clock freely.
func TestSimclockSkipsNonSimPackages(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Simclock, "notsim")
}
