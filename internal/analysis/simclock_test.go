package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestSimclock covers the forbidden wall-clock reads, the time.Time state
// diagnostic, the time.Duration carve-out, and //lint:allow suppression.
func TestSimclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Simclock, "simclock")
}

// TestSimclockCoversShardCoordinator: the kernel layer's rawgo exemption
// does not extend to simclock — a wall-clock read in the window coordinator
// would leak host timing into the merged event order, so the analyzer keeps
// firing on internal/sim/shard paths.
func TestSimclockCoversShardCoordinator(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Simclock, "shardclock/internal/sim/shard")
}

// TestSimclockSkipsNonSimPackages: a package that does not import
// internal/sim (or a façade) may use the wall clock freely.
func TestSimclockSkipsNonSimPackages(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Simclock, "notsim")
}
