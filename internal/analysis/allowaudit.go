package analysis

// Allowaudit keeps the suppression inventory honest. A //lint:allow is a
// standing claim that a determinism or hot-path rule provably does not
// apply at one site; the claim decays as code moves, so the auditor
// re-checks every directive on every run:
//
//   - unknown analyzer names (typos silently suppress nothing — worse,
//     they LOOK like coverage)
//   - directives without a "-- reason" (the claim must be auditable
//     without git archaeology)
//   - stale directives: the named analyzer ran over the package and the
//     directive suppressed no diagnostic and sanctioned no fact. Dead
//     suppressions are deleted, not kept "just in case" — a stale allow
//     re-armed by a later edit hides a real regression.
//
// Staleness is scoped to the analyzers that actually executed in this
// invocation, so running a single analyzer (stringscheck -run hotalloc, or
// an analysistest fixture) never miscalls directives for the others stale.
// The framework runs allowaudit after every other analyzer precisely so
// directive usage is fully accounted before the audit. Audit findings may
// themselves be suppressed with //lint:allow allowaudit for the rare
// directive that is load-bearing only on another build configuration.
var Allowaudit = &Analyzer{
	Name: "allowaudit",
	Doc: "audit //lint:allow hygiene: unknown analyzer names, missing '-- reason' " +
		"justifications, and stale suppressions that no longer mask anything",
}

// Run is attached in init: runAllowaudit consults the full registry via
// All(), which itself lists Allowaudit — a direct field reference would be
// an initialization cycle.
func init() { Allowaudit.Run = runAllowaudit }

func runAllowaudit(pass *Pass) error {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	known["all"] = true

	for _, d := range pass.allows {
		if isTestFile(pass.Fset, d.Pos) {
			continue // analyzers skip test files; their allows are inert
		}
		if len(d.Names) == 0 {
			pass.Reportf(d.Pos, "lint:allow names no analyzer; name one or delete the directive")
			continue
		}
		for _, name := range d.Names {
			if !known[name] {
				pass.Reportf(d.Pos, "lint:allow names unknown analyzer %q (known: stringscheck -doc lists them); typos suppress nothing", name)
				continue
			}
			if name == "all" {
				if allRan(pass) && !anyUsed(d) {
					pass.Reportf(d.Pos, "lint:allow all suppresses no diagnostic from any analyzer; delete the stale directive")
				}
				continue
			}
			if pass.ran[name] && !d.used[name] {
				pass.Reportf(d.Pos, "lint:allow %s suppresses no %s diagnostic here; delete the stale directive", name, name)
			}
		}
		if !d.HasReason {
			pass.Reportf(d.Pos, "lint:allow without a '-- reason'; the suppression must say why the rule does not apply")
		}
	}
	return nil
}

// allRan reports whether every non-audit analyzer executed this run; only
// then can a blanket "all" directive be called stale.
func allRan(pass *Pass) bool {
	for _, a := range All() {
		if a.Name == Allowaudit.Name {
			continue
		}
		if !pass.ran[a.Name] {
			return false
		}
	}
	return true
}

// anyUsed reports whether the directive suppressed anything for any
// analyzer.
func anyUsed(d *AllowDirective) bool {
	return len(d.used) > 0
}
