package analysis

import (
	"bytes"
	"testing"
)

// TestEncodeFactsDeterministic: cmd/go content-hashes vetx files into its
// action cache, so the encoding must be byte-identical regardless of map
// insertion order.
func TestEncodeFactsDeterministic(t *testing.T) {
	a := NewPkgFacts("repro/internal/gpu")
	for _, k := range []string{"Device.GetOp", "NewDevice", "Device.Submit"} {
		a.Hot[k] = true
	}
	for _, k := range []string{"NewDevice", "Device.Submit"} {
		a.Alloc[k] = true
	}
	b := NewPkgFacts("repro/internal/gpu")
	for _, k := range []string{"Device.Submit", "Device.GetOp", "NewDevice"} {
		b.Hot[k] = true
	}
	for _, k := range []string{"Device.Submit", "NewDevice"} {
		b.Alloc[k] = true
	}
	ea, eb := EncodeFacts(a), EncodeFacts(b)
	if !bytes.Equal(ea, eb) {
		t.Fatalf("encoding depends on insertion order:\n%s\nvs\n%s", ea, eb)
	}
	if ea[len(ea)-1] != '\n' {
		t.Fatalf("encoding must end in newline: %q", ea)
	}
}

func TestFactsRoundTrip(t *testing.T) {
	f := NewPkgFacts("repro/internal/trace")
	f.Hot["Recorder.Begin"] = true
	f.Alloc["NewRecorder"] = true
	got, err := DecodeFacts(EncodeFacts(f))
	if err != nil {
		t.Fatal(err)
	}
	if got.Path != f.Path || !got.Hot["Recorder.Begin"] || !got.Alloc["NewRecorder"] {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if len(got.Hot) != 1 || len(got.Alloc) != 1 {
		t.Fatalf("round trip invented data: %+v", got)
	}
}

// TestDecodeFactsEmpty: the pre-facts vetx format was a zero-byte file;
// it must decode as an empty record, not an error.
func TestDecodeFactsEmpty(t *testing.T) {
	f, err := DecodeFacts(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Hot) != 0 || len(f.Alloc) != 0 {
		t.Fatalf("empty input decoded to non-empty facts: %+v", f)
	}
	if _, err := DecodeFacts([]byte("{not json")); err == nil {
		t.Fatal("malformed input must error")
	}
}
