package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
)

// Cross-package facts.
//
// Packages are analyzed in dependency order (both drivers guarantee it:
// standalone follows `go list -deps` post-order, vettool is invoked by
// cmd/go per package with its dependencies' .vetx files on hand). Each
// package exports a small summary — which exported functions sit on a
// hotpath, and which may heap-allocate — that dependents consult when one
// of their own hot functions calls across the package boundary. The
// summaries are transitive by construction: a function that calls an
// allocating function is itself recorded as allocating, so reachability
// information flows bottom-up through the import DAG without any analyzer
// ever loading more than one package's syntax.
//
// The wire form is a single deterministic JSON object (sorted key lists),
// stored as the package's .vetx file in vettool mode and held in memory in
// standalone mode. Byte-determinism matters: cmd/go content-hashes vetx
// files into its action cache, so a nondeterministic encoding would
// invalidate downstream cache entries on every run.

// PkgFacts is one package's exported summary. Function keys are "Func" for
// package-level functions and "Type.Method" for methods (pointer receivers
// are keyed by the element type).
type PkgFacts struct {
	Path string
	// Hot marks exported functions reachable from a //strings:hotpath
	// root within their own package.
	Hot map[string]bool
	// Alloc marks exported functions that may heap-allocate, directly or
	// through calls, excluding sites sanctioned by //lint:allow hotalloc.
	Alloc map[string]bool
}

// NewPkgFacts returns an empty fact record for path.
func NewPkgFacts(path string) *PkgFacts {
	return &PkgFacts{Path: path, Hot: make(map[string]bool), Alloc: make(map[string]bool)}
}

// A FactSet holds the facts of every package analyzed so far, keyed by
// import path. The zero value of a nil *FactSet is a valid empty set.
type FactSet struct {
	pkgs map[string]*PkgFacts
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{pkgs: make(map[string]*PkgFacts)}
}

// Add records one package's facts, replacing any previous record.
func (s *FactSet) Add(f *PkgFacts) {
	if s == nil || f == nil {
		return
	}
	s.pkgs[f.Path] = f
}

// Package returns the facts for path, or nil when unknown.
func (s *FactSet) Package(path string) *PkgFacts {
	if s == nil {
		return nil
	}
	return s.pkgs[path]
}

// factsWire is the serialized form: sorted slices for byte determinism.
type factsWire struct {
	Path  string   `json:"path"`
	Hot   []string `json:"hot,omitempty"`
	Alloc []string `json:"alloc,omitempty"`
}

// EncodeFacts renders f as deterministic JSON (trailing newline).
func EncodeFacts(f *PkgFacts) []byte {
	w := factsWire{Path: f.Path}
	for k := range f.Hot {
		w.Hot = append(w.Hot, k)
	}
	for k := range f.Alloc {
		w.Alloc = append(w.Alloc, k)
	}
	sort.Strings(w.Hot)
	sort.Strings(w.Alloc)
	data, err := json.Marshal(w)
	if err != nil {
		// Marshaling a struct of strings cannot fail.
		panic(err)
	}
	return append(data, '\n')
}

// DecodeFacts parses a facts file. Empty input decodes to an empty record
// (the pre-facts vetx format was a zero-byte file; tolerate it).
func DecodeFacts(data []byte) (*PkgFacts, error) {
	f := NewPkgFacts("")
	if len(data) == 0 {
		return f, nil
	}
	var w factsWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("decoding facts: %w", err)
	}
	f.Path = w.Path
	for _, k := range w.Hot {
		f.Hot[k] = true
	}
	for _, k := range w.Alloc {
		f.Alloc[k] = true
	}
	return f, nil
}

// funcKey renders a *types.Func as a fact key: "Func" or "Type.Method".
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}
