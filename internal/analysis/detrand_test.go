package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestDetrand covers forbidden package-level math/rand functions, the
// constructor and *rand.Rand-method carve-outs, and //lint:allow.
func TestDetrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Detrand, "detrand")
}
