package analysis

import (
	"go/ast"
	"go/types"
)

// Simclock forbids wall-clock time in sim-driven packages.
//
// The whole reproduction rests on runs being bit-exact from a seed
// (TestFig9Golden pins a full Strings run to 12 significant digits), and
// the discrete-event kernel owns the only clock that may influence
// behaviour: sim.Time. A single time.Now() or time.Sleep() in a policy
// makes results depend on the host machine and the scheduler's mood, which
// no example-based test reliably catches. The bench harness legitimately
// measures wall time around whole runs; it carries //lint:allow simclock
// with a reason. The kernel layer gets no exemption here — unlike rawgo's:
// the internal/sim/shard coordinator's window barriers synchronize workers
// in host time, but lookahead, horizons and mailbox delivery instants are
// virtual sim.Time, and a wall-clock read anywhere in the layer would leak
// host timing into the merged event order.
var Simclock = &Analyzer{
	Name: "simclock",
	Doc: "forbid time.Now/time.Sleep/wall-clock time.Time in packages that drive " +
		"the simulator; virtual sim.Time is the only clock that may influence behaviour",
	Run: runSimclock,
}

// simclockForbidden are the package-level members of "time" whose use in a
// sim-driven package reads or waits on the wall clock. Pure unit helpers
// (time.Duration, time.Millisecond, ParseDuration, ...) stay legal.
var simclockForbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Time":      true, // the wall-clock carrying type itself
}

func runSimclock(pass *Pass) error {
	if !simDriven(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if !simclockForbidden[obj.Name()] {
				return true
			}
			what := "time." + obj.Name()
			if _, isType := obj.(*types.TypeName); isType {
				pass.Reportf(id.Pos(),
					"%s is wall-clock state in a sim-driven package; carry virtual sim.Time instead (//lint:allow simclock -- <reason> to suppress)", what)
			} else {
				pass.Reportf(id.Pos(),
					"%s reads the wall clock in a sim-driven package; the kernel's virtual clock (sim.Time) is the only clock that may influence behaviour (//lint:allow simclock -- <reason> to suppress)", what)
			}
			return true
		})
	}
	return nil
}
