package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestPoolsafe covers use-after-release (straight-line, branch-merge, and
// Unref forms), double-release, the zero-before-store contract on
// pool-return methods, and the negatives: diverging error paths, loop
// redefinition, deferred releases, aliased releases, and suppression.
func TestPoolsafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Poolsafe, "poolsafe")
}
