package analysis

import (
	"go/ast"
	"go/types"
)

// Detrand forbids the process-global math/rand source.
//
// Every stochastic choice in the simulator — arrival draws, tie-breaks,
// workload mixes — must flow from a seeded *rand.Rand that the caller
// threads through (the kernel's rand.New(rand.NewSource(seed)) in
// internal/sim, or the per-stream derivation in internal/core/run.go).
// The package-level rand.Intn/Float64/Shuffle/... functions share one
// process-global source, so two simulations in the same process perturb
// each other and no run is reproducible from its seed. Constructors
// (rand.New, rand.NewSource, rand.NewZipf, ...) are the sanctioned way to
// build a threaded source and stay legal, as do methods on an explicit
// *rand.Rand value.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "forbid package-level math/rand functions (shared global source); " +
		"randomness must come from a seeded *rand.Rand threaded through the call chain",
	Run: runDetrand,
}

// detrandConstructors build explicit sources or generators and are allowed.
var detrandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runDetrand(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods (r.Intn on a threaded *rand.Rand) are the sanctioned
			// pattern; only package-level functions hit the global source.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if detrandConstructors[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(),
				"rand.%s draws from the process-global source, breaking seed reproducibility; thread a seeded *rand.Rand instead (see internal/core/run.go) (//lint:allow detrand -- <reason> to suppress)", fn.Name())
			return true
		})
	}
	return nil
}
