package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestRawgo covers raw `go` statements (named and literal), the kernel
// process-API alternative, and //lint:allow suppression.
func TestRawgo(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Rawgo, "rawgo")
}

// TestRawgoExemptsKernel: internal/sim itself implements the baton chain
// and may spawn goroutines.
func TestRawgoExemptsKernel(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Rawgo, "repro/internal/sim")
}

// TestRawgoExemptsShardCoordinator: internal/sim/shard implements the
// cross-kernel window-barrier handoff and holds the same goroutine right as
// the kernel itself — its barrier workers need no //lint:allow.
func TestRawgoExemptsShardCoordinator(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Rawgo, "repro/internal/sim/shard")
}

// TestRawgoSkipsNonSimPackages: goroutines outside the sim-driven domain
// are not checked.
func TestRawgoSkipsNonSimPackages(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Rawgo, "notsim")
}
