package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestRawgo covers raw `go` statements (named and literal), the kernel
// process-API alternative, and //lint:allow suppression.
func TestRawgo(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Rawgo, "rawgo")
}

// TestRawgoExemptsKernel: internal/sim itself implements the baton chain
// and may spawn goroutines.
func TestRawgoExemptsKernel(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Rawgo, "repro/internal/sim")
}

// TestRawgoSkipsNonSimPackages: goroutines outside the sim-driven domain
// are not checked.
func TestRawgoSkipsNonSimPackages(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Rawgo, "notsim")
}
