package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Hotalloc enforces the hot-path allocation contract: no unjustified
// heap-allocating construct in any function statically reachable from a
// //strings:hotpath root.
//
// The alloc budget (TestAllocBudgetPerEvent, ≤0.05 allocs/event) is the
// repo's most fragile perf invariant: one careless escaping literal or
// growing append erodes it silently until a benchmark regresses. Hotalloc
// makes the budget un-regressable at review time. Flagged constructs:
//
//   - escaping composite literals, &T{...}, new(T)
//   - make of maps and channels (always heap) and escaping slice makes
//   - append that can grow an escaping or field-held slice (in-place
//     splices `s = append(s[:i], s[i+1:]...)` are exempt: the reslice
//     proves the write stays within the existing backing array)
//   - escaping closures that capture outer variables
//   - interface boxing of non-pointer values at call sites and conversions
//   - any fmt.* call
//   - calls into dependency functions whose exported fact says they may
//     allocate (cross-package reachability via facts.go)
//
// Anything inside a panic(...) argument is exempt: the failure path may
// allocate freely, including the fmt call that builds the message.
//
// Deliberate amortized allocation — pool grow-on-miss, pre-sized slice
// growth — carries //lint:allow hotalloc -- <reason> at the site; the
// suppression also keeps the site out of the function's exported alloc
// fact, so sanctioning a site once sanctions it for every caller.
// Indirect calls (function values, interface methods) are outside the
// static graph; hot paths crossing such a boundary annotate the callee's
// implementation as its own root.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc: "forbid unjustified heap allocation in functions reachable from a //strings:hotpath root; " +
		"the alloc-budget contract (≤0.05 allocs/event) depends on it",
	Run: runHotalloc,
}

// An allocSite is one heap-allocating construct inside a function.
type allocSite struct {
	pos  token.Pos
	what string
}

func runHotalloc(pass *Pass) error {
	g := buildCallGraph(pass)

	sites := make(map[*funcNode][]allocSite, len(g.order))
	hasLiveSite := make(map[*funcNode]bool, len(g.order))
	liveExtAlloc := make(map[*funcNode]bool, len(g.order))
	for _, n := range g.order {
		ss := collectAllocSites(pass, n.decl)
		sites[n] = ss
		for _, s := range ss {
			// A lint:allow on the site sanctions it for fact purposes too:
			// the function does not poison its callers' alloc facts.
			if !pass.Allowed(s.pos) {
				hasLiveSite[n] = true
			}
		}
		for _, e := range n.exts {
			if f := pass.DepFacts(e.pkgPath); f != nil && f.Alloc[e.key] && !pass.Allowed(e.pos) {
				liveExtAlloc[n] = true
			}
		}
	}

	// Transitive may-allocate over the local call graph.
	allocates := make(map[*funcNode]bool, len(g.order))
	for changed := true; changed; {
		changed = false
		for _, n := range g.order {
			if allocates[n] {
				continue
			}
			poisoned := hasLiveSite[n] || liveExtAlloc[n]
			if !poisoned {
				for _, callee := range n.locals {
					if cn := g.nodes[callee]; cn != nil && allocates[cn] {
						poisoned = true
						break
					}
				}
			}
			if poisoned {
				allocates[n] = true
				changed = true
			}
		}
	}

	// Export facts for dependents.
	for _, n := range g.order {
		if !n.fn.Exported() {
			continue
		}
		if allocates[n] {
			pass.ExportAlloc(funcKey(n.fn))
		}
		if n.hotVia != "" {
			pass.ExportHot(funcKey(n.fn))
		}
	}

	// Report every site in every hot-reachable function. Allowed sites are
	// reported too and dropped by the framework filter, which is what
	// marks their directives live for allowaudit.
	for _, n := range g.order {
		if n.hotVia == "" {
			continue
		}
		for _, s := range sites[n] {
			pass.Reportf(s.pos,
				"%s on the hot path (%s is reachable from //strings:hotpath root %s); hoist it, pool it, or justify with //lint:allow hotalloc -- <reason>",
				s.what, displayName(n.fn), n.hotVia)
		}
		for _, e := range n.exts {
			f := pass.DepFacts(e.pkgPath)
			if f == nil || !f.Alloc[e.key] {
				continue
			}
			pass.Reportf(e.pos,
				"call to %s may heap-allocate (exported fact) on the hot path (%s is reachable from //strings:hotpath root %s); use a non-allocating API or justify with //lint:allow hotalloc -- <reason>",
				e.display, displayName(n.fn), n.hotVia)
		}
	}
	return nil
}

// collectAllocSites walks one function body for heap-allocating
// constructs. Function-literal bodies are included: a closure defined on
// the hot path is assumed to run on it.
func collectAllocSites(pass *Pass, decl *ast.FuncDecl) []allocSite {
	parents := buildParents(decl.Body)
	var sites []allocSite
	add := func(pos token.Pos, format string, args ...any) {
		sites = append(sites, allocSite{pos: pos, what: fmt.Sprintf(format, args...)})
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		// The failure path is exempt wholesale: a panic tears the run down,
		// so the fmt.Sprintf / boxing that builds its message cannot erode
		// the steady-state alloc budget.
		if call, ok := n.(*ast.CallExpr); ok && isPanicCall(call) {
			return false
		}
		switch n := n.(type) {
		case *ast.CompositeLit:
			// &T{...} is handled at the UnaryExpr; a bare slice/map literal
			// allocates its backing store when it escapes.
			if p, ok := parents[n].(*ast.UnaryExpr); ok && p.Op == token.AND {
				return true
			}
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				if exprEscapes(pass, parents, decl, n) {
					add(n.Pos(), "escaping %s literal allocates its backing store", typeKindWord(pass.TypesInfo.TypeOf(n)))
				}
			}
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return true
			}
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); !ok {
				return true
			}
			if exprEscapes(pass, parents, decl, n) {
				add(n.Pos(), "escaping &%s{...} literal heap-allocates", typeName(pass.TypesInfo.TypeOf(n.X)))
			}
		case *ast.CallExpr:
			collectCallSites(pass, parents, decl, n, add)
		case *ast.FuncLit:
			if funcLitEscapes(parents, n) && capturesOuter(pass, n) {
				add(n.Pos(), "escaping closure captures outer variables and heap-allocates")
			}
		}
		return true
	})
	return sites
}

// collectCallSites handles the call-shaped constructs: builtins (new,
// make, append), fmt.*, and interface boxing of arguments.
func collectCallSites(pass *Pass, parents map[ast.Node]ast.Node, decl *ast.FuncDecl, call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "new":
				if exprEscapes(pass, parents, decl, call) {
					add(call.Pos(), "escaping new(%s) heap-allocates", exprString(pass.Fset, call.Args[0]))
				}
			case "make":
				switch pass.TypesInfo.TypeOf(call).Underlying().(type) {
				case *types.Map, *types.Chan:
					add(call.Pos(), "make(%s) heap-allocates", exprString(pass.Fset, call.Args[0]))
				case *types.Slice:
					if exprEscapes(pass, parents, decl, call) {
						add(call.Pos(), "escaping make(%s) heap-allocates", exprString(pass.Fset, call.Args[0]))
					}
				}
			case "append":
				collectAppendSite(pass, parents, decl, call, add)
			}
			return
		}
	}

	// fmt.* and interface boxing need the callee's package / signature.
	if callee := staticCallee(pass, call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		add(call.Pos(), "fmt.%s call allocates its formatting state", callee.Name())
		return // fmt's ...any boxing is subsumed by the call diagnostic
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		// Conversion: T(v) with T interface boxes v.
		if tv, isType := pass.TypesInfo.Types[call.Fun]; isType && tv.IsType() && len(call.Args) == 1 {
			if boxes(tv.Type, pass.TypesInfo.TypeOf(call.Args[0])) {
				add(call.Pos(), "conversion boxes %s into an interface", exprString(pass.Fset, call.Args[0]))
			}
		}
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case i < sig.Params().Len()-1 || (i == sig.Params().Len()-1 && !sig.Variadic()):
			param = sig.Params().At(i).Type()
		case sig.Variadic():
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				param = sl.Elem()
			}
			if call.Ellipsis != token.NoPos && i == sig.Params().Len()-1 {
				param = nil // s... passes the slice through, no boxing
			}
		}
		if param == nil {
			continue
		}
		if boxes(param, pass.TypesInfo.TypeOf(arg)) {
			add(arg.Pos(), "argument %s boxes into interface parameter and heap-allocates", exprString(pass.Fset, arg))
		}
	}
}

// collectAppendSite flags appends that can grow a heap-visible slice.
func collectAppendSite(pass *Pass, parents map[ast.Node]ast.Node, decl *ast.FuncDecl, call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	if len(call.Args) == 0 {
		return
	}
	// The in-place splice idiom: append onto an explicit reslice never
	// outgrows the backing array it proves exists.
	if _, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr); ok {
		return
	}
	// Find the destination: x = append(x, ...) / x := append(...).
	as, ok := parents[call].(*ast.AssignStmt)
	if !ok {
		// append used as a bare expression (argument, return): its result
		// escapes by construction.
		add(call.Pos(), "append result escapes and may grow its backing array")
		return
	}
	var dst ast.Expr
	for i, rhs := range as.Rhs {
		if ast.Unparen(rhs) == call && i < len(as.Lhs) {
			dst = as.Lhs[i]
		}
	}
	if dst == nil {
		return
	}
	switch d := ast.Unparen(dst).(type) {
	case *ast.Ident:
		if d.Name == "_" {
			return
		}
		if varEscapes(pass, parents, decl, objOf(pass, d)) {
			add(call.Pos(), "append may grow escaping slice %s", d.Name)
		}
	default:
		// Field, index, or dereference destination: heap-visible.
		add(call.Pos(), "append may grow heap-held slice %s", exprString(pass.Fset, dst))
	}
}

// boxes reports whether assigning a value of type src to a destination of
// type dst stores a concrete value in an interface, which heap-allocates
// for non-pointer-shaped values.
func boxes(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	if _, ok := src.Underlying().(*types.Interface); ok {
		return false // interface-to-interface: no new allocation
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: fits the iface data word
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// ---- escape approximation ----

// buildParents maps every node under root to its parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// exprEscapes approximates whether the value of expression e outlives the
// enclosing function frame. The analysis follows the expression up through
// its parents and, when the value lands in a local variable, scans that
// variable's uses. It is deliberately conservative: anything unclear
// escapes.
func exprEscapes(pass *Pass, parents map[ast.Node]ast.Node, decl *ast.FuncDecl, e ast.Node) bool {
	for {
		p := parents[e]
		switch p := p.(type) {
		case *ast.ParenExpr:
			e = p
			continue
		case *ast.KeyValueExpr, *ast.CompositeLit, *ast.UnaryExpr:
			// Part of a larger literal / address-of: escape iff it does.
			e = p
			continue
		case *ast.ReturnStmt:
			return true
		case *ast.CallExpr:
			if ast.Unparen(p.Fun) == e {
				return false // being called, not passed
			}
			if id, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "len", "cap", "delete":
						return false
					}
				}
			}
			return true // handed to a callee (or conversion feeding one)
		case *ast.AssignStmt:
			return assignEscapes(pass, parents, decl, p, e)
		case *ast.ValueSpec:
			for i, v := range p.Values {
				if ast.Unparen(v) == e || v == e {
					if i < len(p.Names) {
						return varEscapes(pass, parents, decl, objOf(pass, p.Names[i]))
					}
				}
			}
			return true
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr:
			return false // locally dissected, not stored
		case *ast.RangeStmt:
			return false // ranged over in place
		case *ast.ExprStmt:
			return false
		case *ast.SendStmt:
			return true
		case *ast.BinaryExpr:
			return false // compared / combined by value
		case *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.CaseClause:
			return false // condition position
		case nil:
			return true
		default:
			return true
		}
	}
}

// assignEscapes resolves the escape of rhs through its assignment
// destination.
func assignEscapes(pass *Pass, parents map[ast.Node]ast.Node, decl *ast.FuncDecl, as *ast.AssignStmt, rhs ast.Node) bool {
	// Multi-value RHS (x, y := f()) never carries a literal; positionally
	// match single assignments.
	for i, r := range as.Rhs {
		if r != rhs && ast.Unparen(r) != rhs {
			continue
		}
		if i >= len(as.Lhs) {
			return true
		}
		switch d := ast.Unparen(as.Lhs[i]).(type) {
		case *ast.Ident:
			if d.Name == "_" {
				return false
			}
			return varEscapes(pass, parents, decl, objOf(pass, d))
		default:
			return true // stored through a field, index, or pointer
		}
	}
	return true
}

// varEscapes scans the whole function body for uses of v that let its
// value outlive the frame: returned, passed to a call, sent, stored into a
// heap-visible location, address-taken, copied to another variable, or
// captured by a function literal. A destination that is not a local of
// this function (package-level variable, captured outer local) is itself
// an escape.
func varEscapes(pass *Pass, parents map[ast.Node]ast.Node, decl *ast.FuncDecl, v *types.Var) bool {
	if v == nil || v.Pos() < decl.Pos() || v.Pos() > decl.End() {
		return true
	}
	escaped := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || objOf(pass, id) != v {
			return true
		}
		if capturedByLit(parents, id, v) {
			escaped = true
			return false
		}
		switch p := parents[id].(type) {
		case *ast.ReturnStmt, *ast.SendStmt:
			escaped = true
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				escaped = true
			}
		case *ast.CallExpr:
			if ast.Unparen(p.Fun) == ast.Expr(id) {
				return true // calling it
			}
			// First argument of append does not escape the slice var
			// itself; every other argument position hands the value away.
			if bid, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.TypesInfo.Uses[bid].(*types.Builtin); isBuiltin {
					if bid.Name == "append" && len(p.Args) > 0 && ast.Unparen(p.Args[0]) == ast.Expr(id) {
						return true
					}
					switch bid.Name {
					case "len", "cap", "delete", "copy":
						return true
					}
				}
			}
			escaped = true
		case *ast.AssignStmt:
			// v on the RHS copied somewhere: escape unless the target is
			// v itself (x = append(x, ...) handled at the append) or _.
			for i, r := range p.Rhs {
				if ast.Unparen(r) != ast.Expr(id) {
					continue
				}
				if i < len(p.Lhs) {
					if d, ok := ast.Unparen(p.Lhs[i]).(*ast.Ident); ok && (d.Name == "_" || objOf(pass, d) == v) {
						continue
					}
				}
				escaped = true
			}
		case *ast.KeyValueExpr, *ast.CompositeLit:
			escaped = true // embedded into another literal
		}
		return !escaped
	})
	return escaped
}

// capturedByLit reports whether the identifier use sits inside a function
// literal while v is declared outside it.
func capturedByLit(parents map[ast.Node]ast.Node, id *ast.Ident, v *types.Var) bool {
	for n := parents[id]; n != nil; n = parents[n] {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			continue
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			return true
		}
	}
	return false
}

// funcLitEscapes reports whether the literal outlives its creation point:
// immediately invoked and directly deferred/spawned literals do not
// allocate a closure that survives the statement.
func funcLitEscapes(parents map[ast.Node]ast.Node, lit *ast.FuncLit) bool {
	p := parents[lit]
	if call, ok := p.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == ast.Expr(lit) {
		switch parents[call].(type) {
		case *ast.ExprStmt, *ast.DeferStmt, *ast.GoStmt:
			return false // func(){...}() / defer func(){...}()
		}
		return false
	}
	return true
}

// capturesOuter reports whether the literal references variables declared
// outside itself.
func capturesOuter(pass *Pass, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captures = true
		}
		return true
	})
	return captures
}

// objOf resolves an identifier to its variable object (use or def).
func objOf(pass *Pass, id *ast.Ident) *types.Var {
	if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// typeName renders a type tersely for diagnostics.
func typeName(t types.Type) string {
	if t == nil {
		return "?"
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// typeKindWord says "slice" or "map" for the literal diagnostic.
func typeKindWord(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
