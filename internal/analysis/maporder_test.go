package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestMaporder covers unsorted key collection, call/send/float-accumulation
// effects, the collect-then-sort and per-key-bucketing carve-outs, benign
// counters and delete sweeps, and //lint:allow suppression.
func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Maporder, "maporder")
}

// TestMaporderSkipsNonSimPackages: map ranges outside the sim-driven
// domain are not checked.
func TestMaporderSkipsNonSimPackages(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Maporder, "notsim")
}
