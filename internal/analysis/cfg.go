package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the dataflow substrate under the hot-path analyzers
// (poolsafe, spanpair): an intra-procedural control-flow graph over go/ast
// plus a forward fixpoint driver. The model is deliberately small:
//
//   - A Block holds a straight-line run of simple nodes (assignments,
//     expression statements, declarations, loop conditions). Compound
//     statements never appear whole: an `if` contributes its init statement
//     and condition expression to the header block and its branches become
//     separate blocks, a `range` contributes a RangeHeader marker, and so
//     on. Analyzers therefore never have to avoid descending into a body
//     that belongs to another block.
//   - Exit is a single synthetic block. Every `return`, every explicit
//     `panic(...)` statement, and the function's fallthrough end link to it,
//     so "on all CFG exits" means "in Exit's in-state". Runtime panics from
//     arbitrary calls are not modeled (every call would become a branch and
//     drown the analyses); explicit panic/early-return edges are.
//   - Defers are collected on the side. Deferred calls run on every exit —
//     including the panic edges — so exit-sensitive analyzers (spanpair)
//     treat a deferred close as covering all exits. Conditional defer
//     registration is over-approximated as always registered.
//
// The builder understands labeled break/continue and goto; `select` without
// a default has no fallthrough edge (it parks until a case fires).

// A Block is one straight-line sequence of nodes with successor edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// RangeHeader marks the header of a range statement inside a block: the
// ranged expression is evaluated and the key/value variables are bound
// here, while the loop body lives in its own blocks. Analyzers must not
// descend into the embedded statement's Body.
type RangeHeader struct{ *ast.RangeStmt }

// A CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers lists every defer statement in the body; deferred calls run
	// on every path to Exit.
	Defers []*ast.DeferStmt
}

// BuildCFG constructs the control-flow graph of body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: make(map[string]*labelTarget)}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = &Block{}
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.link(b.cur, b.cfg.Exit)
	}
	for _, g := range b.gotos {
		if t, ok := b.labels[g.label]; ok && t.entry != nil {
			b.link(g.from, t.entry)
		} else {
			// Undefined label (won't typecheck anyway): fail safe to Exit.
			b.link(g.from, b.cfg.Exit)
		}
	}
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

type labelTarget struct {
	entry *Block // goto / labeled-continue restart point (loop header)
	brk   *Block // labeled-break target
	cont  *Block // labeled-continue target
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block // nil after a terminator (following code is unreachable)

	breaks    []*Block
	continues []*Block
	labels    map[string]*labelTarget
	gotos     []pendingGoto

	// pendingLabel names the label wrapping the next loop/switch/select,
	// so labeled break/continue resolve to that statement's targets.
	pendingLabel string
	// fallthroughTo is the next case clause's block while building a
	// switch case body.
	fallthroughTo *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// use returns the current block, starting a fresh (unreachable) one when
// the previous statement terminated control flow.
func (b *cfgBuilder) use() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.use()
	blk.Nodes = append(blk.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())
	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body, b.takeLabel())
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body, b.takeLabel())
	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())
	case *ast.ReturnStmt:
		b.add(s)
		b.link(b.use(), b.cfg.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.add(s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanicCall(call) {
			b.link(b.use(), b.cfg.Exit)
			b.cur = nil
		}
	default:
		// Assign, Decl, IncDec, Send, Go, Empty: straight-line.
		b.add(s)
	}
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	// The labeled statement starts its own block so goto / labeled-continue
	// have a stable target.
	entry := b.newBlock()
	if b.cur != nil {
		b.link(b.cur, entry)
	}
	b.cur = entry
	t := b.labels[s.Label.Name]
	if t == nil {
		t = &labelTarget{}
		b.labels[s.Label.Name] = t
	}
	t.entry = entry
	switch s.Stmt.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.pendingLabel = s.Label.Name
	}
	b.stmt(s.Stmt)
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.add(s.Init)
	b.add(s.Cond)
	header := b.use()
	after := b.newBlock()

	then := b.newBlock()
	b.link(header, then)
	b.cur = then
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.link(b.cur, after)
	}

	if s.Else != nil {
		els := b.newBlock()
		b.link(header, els)
		b.cur = els
		b.stmt(s.Else)
		if b.cur != nil {
			b.link(b.cur, after)
		}
	} else {
		b.link(header, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	b.add(s.Init)
	cond := b.newBlock()
	b.link(b.use(), cond)
	b.cur = cond
	b.add(s.Cond)

	body := b.newBlock()
	after := b.newBlock()
	post := b.newBlock()
	b.link(cond, body)
	if s.Cond != nil {
		b.link(cond, after)
	}

	if label != "" {
		b.labels[label].brk = after
		b.labels[label].cont = post
	}
	b.breaks = append(b.breaks, after)
	b.continues = append(b.continues, post)
	b.cur = body
	b.stmtList(s.Body.List)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	if b.cur != nil {
		b.link(b.cur, post)
	}
	b.cur = post
	b.add(s.Post)
	b.link(b.use(), cond)
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	header := b.newBlock()
	b.link(b.use(), header)
	header.Nodes = append(header.Nodes, RangeHeader{s})

	body := b.newBlock()
	after := b.newBlock()
	b.link(header, body)
	b.link(header, after)

	if label != "" {
		b.labels[label].brk = after
		b.labels[label].cont = header
	}
	b.breaks = append(b.breaks, after)
	b.continues = append(b.continues, header)
	b.cur = body
	b.stmtList(s.Body.List)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	if b.cur != nil {
		b.link(b.cur, header)
	}
	b.cur = after
}

// switchStmt handles both expression switches (tag != nil) and type
// switches (assign != nil).
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, label string) {
	b.add(init)
	b.add(tag)
	b.add(assign)
	header := b.use()
	after := b.newBlock()

	if label != "" {
		b.labels[label].brk = after
	}
	b.breaks = append(b.breaks, after)

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.link(header, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.link(header, after)
	}
	saved := b.fallthroughTo
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.fallthroughTo = nil
		if i+1 < len(blocks) {
			b.fallthroughTo = blocks[i+1]
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.link(b.cur, after)
		}
	}
	b.fallthroughTo = saved
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	header := b.use()
	after := b.newBlock()

	if label != "" {
		b.labels[label].brk = after
	}
	b.breaks = append(b.breaks, after)
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.link(header, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.link(b.cur, after)
		}
	}
	// A select with no default parks until some case fires, so there is no
	// direct header->after edge; one exists through every case body.
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	from := b.use()
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if t, ok := b.labels[s.Label.Name]; ok && t.brk != nil {
				b.link(from, t.brk)
			}
		} else if n := len(b.breaks); n > 0 {
			b.link(from, b.breaks[n-1])
		}
	case token.CONTINUE:
		if s.Label != nil {
			if t, ok := b.labels[s.Label.Name]; ok && t.cont != nil {
				b.link(from, t.cont)
			}
		} else if n := len(b.continues); n > 0 {
			b.link(from, b.continues[n-1])
		}
	case token.GOTO:
		if s.Label != nil {
			b.gotos = append(b.gotos, pendingGoto{from: from, label: s.Label.Name})
		}
	case token.FALLTHROUGH:
		if b.fallthroughTo != nil {
			b.link(from, b.fallthroughTo)
		}
	}
	b.cur = nil
}

// isPanicCall reports whether call invokes the builtin panic. Resolved
// syntactically: `panic` is a builtin unless shadowed, and shadowing panic
// in this tree would itself be a finding.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// ---- forward dataflow driver ----

// ForwardFixpoint runs a forward dataflow analysis to fixpoint. entry seeds
// the Entry block; transfer maps a block's in-state to its out-state (it
// must not mutate the argument's sharing with other states — clone is
// applied before each call); join merges an out-state into a successor's
// in-state, reporting whether the in-state changed.
//
// Blocks are processed in index order, repeatedly, until a full pass makes
// no change: deterministic, and terminating for any monotone transfer over
// a finite lattice. The iteration cap is a defensive backstop — a
// non-monotone transfer function is a bug in the analyzer, not a reason to
// spin forever.
func ForwardFixpoint[S any](g *CFG, entry S, clone func(S) S, join func(dst, src S) (S, bool), transfer func(*Block, S) S) map[*Block]S {
	in := make(map[*Block]S, len(g.Blocks))
	in[g.Entry] = entry
	seen := map[*Block]bool{g.Entry: true}
	for pass := 0; pass < 4*len(g.Blocks)+4; pass++ {
		changed := false
		for _, blk := range g.Blocks {
			if !seen[blk] {
				continue
			}
			out := transfer(blk, clone(in[blk]))
			for _, succ := range blk.Succs {
				if !seen[succ] {
					in[succ] = clone(out)
					seen[succ] = true
					changed = true
					continue
				}
				merged, ch := join(in[succ], clone(out))
				in[succ] = merged
				if ch {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return in
}
