package analysis

import (
	"go/ast"
	"go/types"
)

// Errflow flags discarded errors on the wire-protocol paths.
//
// PR 1's ErrStringTooLong fix showed why this matters: the codec used to
// truncate >64KiB strings silently, and the bug lived exactly where an
// error return was being dropped. On encode/decode/transport paths
// (internal/rpcproto, internal/remoting) a swallowed error means a
// corrupt or short frame sails on as if it were valid, so every call
// whose results include an error must consume it. Deliberate discards
// must be spelled `_ = f()` (greppable, reviewed) rather than a bare call
// statement; `defer f()` cleanup is conventional and exempt, as are the
// fmt.Print* console helpers.
var Errflow = &Analyzer{
	Name: "errflow",
	Doc: "flag call statements that drop an error result in internal/rpcproto and " +
		"internal/remoting; wire-protocol errors must be consumed or explicitly discarded with _ =",
	Run: runErrflow,
}

func runErrflow(pass *Pass) error {
	if !pathEndsWith(pass.Pkg.Path(), "internal/rpcproto") &&
		!pathEndsWith(pass.Pkg.Path(), "internal/remoting") {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isConsoleHelper(pass, call) {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call]
			if !ok {
				return true
			}
			if !resultCarriesError(tv.Type, errType) {
				return true
			}
			pass.Reportf(call.Pos(),
				"result of %s carries an error that is silently discarded on a wire-protocol path; handle it or write `_ = %s` to make the discard explicit (//lint:allow errflow -- <reason> to suppress)",
				exprString(pass.Fset, call.Fun), exprString(pass.Fset, call))
			return true
		})
	}
	return nil
}

// resultCarriesError reports whether t is error or a tuple with an error.
func resultCarriesError(t types.Type, errType types.Type) bool {
	if t == nil {
		return false
	}
	if types.Identical(t, errType) {
		return true
	}
	tup, ok := t.(*types.Tuple)
	if !ok {
		return false
	}
	for i := 0; i < tup.Len(); i++ {
		if types.Identical(tup.At(i).Type(), errType) {
			return true
		}
	}
	return false
}

// isConsoleHelper exempts fmt.Print/Printf/Println, whose (n, err) results
// are conventionally ignored for console output.
func isConsoleHelper(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return false
	}
	switch obj.Name() {
	case "Print", "Printf", "Println":
		return true
	}
	return false
}
