package cuda

import (
	"errors"
	"testing"

	"repro/internal/gpu"
	"repro/internal/sim"
)

func twoDevs(k *sim.Kernel) []*gpu.Device {
	spec := gpu.Spec{
		Name: "t", ComputeRate: 1000, MemBandwidth: 100,
		H2DBandwidth: 10, D2HBandwidth: 10, CopyEngines: 2,
		ContextSwitch: 100, TimeSlice: sim.Millisecond, MemBytes: 1 << 20, Weight: 1,
	}
	return []*gpu.Device{gpu.NewDevice(k, spec, 0), gpu.NewDevice(k, spec, 1)}
}

func TestThreadSwitchesDevices(t *testing.T) {
	k := sim.NewKernel(1)
	devs := twoDevs(k)
	rt := NewRuntime(k, devs, Config{})
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		c.SetDevice(0)
		c.Launch(Kernel{Compute: 10000}, DefaultStream)
		c.DeviceSynchronize()
		c.SetDevice(1)
		c.Launch(Kernel{Compute: 20000}, DefaultStream)
		c.DeviceSynchronize()
	})
	k.Run()
	if devs[0].Stats().KernelsDone != 1 || devs[1].Stats().KernelsDone != 1 {
		t.Fatalf("kernels = %d, %d; want 1 each",
			devs[0].Stats().KernelsDone, devs[1].Stats().KernelsDone)
	}
	// One process context per device.
	if rt.Context(0) == nil || rt.Context(1) == nil {
		t.Fatal("contexts missing")
	}
	if rt.Context(0) == rt.Context(1) {
		t.Fatal("devices share one context object")
	}
}

func TestPerDeviceStreamNamespaces(t *testing.T) {
	k := sim.NewKernel(1)
	devs := twoDevs(k)
	rt := NewRuntime(k, devs, Config{})
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		c.SetDevice(0)
		s0, _ := c.StreamCreate()
		c.SetDevice(1)
		// Stream ids are per-context: the dev-0 stream is not valid here.
		if err := c.StreamSynchronize(s0); !errors.Is(err, ErrInvalidStream) {
			t.Errorf("cross-device stream sync = %v, want ErrInvalidStream", err)
		}
		s1, err := c.StreamCreate()
		if err != nil {
			t.Errorf("StreamCreate on dev 1: %v", err)
		}
		if err := c.Launch(Kernel{Compute: 1000}, s1); err != nil {
			t.Errorf("Launch: %v", err)
		}
		c.DeviceSynchronize()
	})
	k.Run()
}

func TestDeviceSyncScopedToCurrentDevice(t *testing.T) {
	k := sim.NewKernel(1)
	devs := twoDevs(k)
	rt := NewRuntime(k, devs, Config{})
	var synced sim.Time
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		c.SetDevice(0)
		c.Launch(Kernel{Compute: 100000}, DefaultStream) // 100us on dev 0
		c.SetDevice(1)
		c.Launch(Kernel{Compute: 10000}, DefaultStream) // 10us on dev 1
		// Synchronizing device 1 must not wait for device 0's kernel.
		c.DeviceSynchronize()
		synced = p.Now()
	})
	k.Run()
	if synced >= 100 {
		t.Fatalf("device-1 sync waited %v; leaked into device 0", synced)
	}
}

func TestAllocationsTrackedPerDevice(t *testing.T) {
	k := sim.NewKernel(1)
	devs := twoDevs(k)
	rt := NewRuntime(k, devs, Config{})
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		c.SetDevice(0)
		p0, _ := c.Malloc(100)
		c.SetDevice(1)
		p1, _ := c.Malloc(200)
		if devs[0].MemUsed() != 100 || devs[1].MemUsed() != 200 {
			t.Errorf("mem = %d, %d", devs[0].MemUsed(), devs[1].MemUsed())
		}
		c.Free(p0)
		c.Free(p1)
		if devs[0].MemUsed() != 0 || devs[1].MemUsed() != 0 {
			t.Errorf("after free: %d, %d", devs[0].MemUsed(), devs[1].MemUsed())
		}
	})
	k.Run()
}

func TestMallocBlockOnOOM(t *testing.T) {
	k := sim.NewKernel(1)
	devs := twoDevs(k)[:1]
	rt := NewRuntime(k, devs, Config{BlockOnOOM: true})
	var grantedAt sim.Time
	k.Go("holder", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		ptr, err := c.Malloc(1 << 20) // fills the device
		if err != nil {
			t.Errorf("holder malloc: %v", err)
			return
		}
		p.Sleep(200)
		c.Free(ptr)
	})
	k.Go("waiter", func(p *sim.Proc) {
		p.Sleep(1)
		c := rt.NewThread(p, 2)
		if _, err := c.Malloc(1 << 19); err != nil {
			t.Errorf("blocking malloc: %v", err)
			return
		}
		grantedAt = p.Now()
	})
	k.Run()
	if grantedAt < 200 {
		t.Fatalf("guarded malloc granted at %v, want ≥200us (after the free)", grantedAt)
	}
	// Unsatisfiable requests still fail fast.
	k2 := sim.NewKernel(1)
	rt2 := NewRuntime(k2, twoDevs(k2)[:1], Config{BlockOnOOM: true})
	k2.Go("big", func(p *sim.Proc) {
		c := rt2.NewThread(p, 1)
		if _, err := c.Malloc(1 << 30); !errors.Is(err, ErrMemoryAllocation) {
			t.Errorf("oversized guarded malloc = %v", err)
		}
	})
	k2.Run()
}
