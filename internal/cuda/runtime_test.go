package cuda

import (
	"errors"
	"testing"

	"repro/internal/gpu"
	"repro/internal/sim"
)

// zero-overhead config so durations are pure device time.
func zcfg() Config { return Config{} }

func testDev(k *sim.Kernel) *gpu.Device {
	spec := gpu.Spec{
		Name: "t", ComputeRate: 1000, MemBandwidth: 100,
		H2DBandwidth: 10, D2HBandwidth: 10, CopyEngines: 2,
		ContextSwitch: 100, TimeSlice: sim.Millisecond, MemBytes: 1 << 20, Weight: 1,
	}
	return gpu.NewDevice(k, spec, 0)
}

func TestSetDeviceValidation(t *testing.T) {
	k := sim.NewKernel(1)
	rt := NewRuntime(k, []*gpu.Device{testDev(k)}, zcfg())
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		if err := c.SetDevice(0); err != nil {
			t.Errorf("SetDevice(0) = %v", err)
		}
		if err := c.SetDevice(1); !errors.Is(err, ErrInvalidDevice) {
			t.Errorf("SetDevice(1) = %v, want ErrInvalidDevice", err)
		}
		if err := c.SetDevice(-1); !errors.Is(err, ErrInvalidDevice) {
			t.Errorf("SetDevice(-1) = %v, want ErrInvalidDevice", err)
		}
		if c.DeviceCount() != 1 {
			t.Errorf("DeviceCount = %d", c.DeviceCount())
		}
	})
	k.Run()
}

func TestMallocFreeAccounting(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDev(k)
	rt := NewRuntime(k, []*gpu.Device{dev}, zcfg())
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		ptr, err := c.Malloc(1000)
		if err != nil {
			t.Errorf("Malloc: %v", err)
		}
		if dev.MemUsed() != 1000 {
			t.Errorf("MemUsed = %d, want 1000", dev.MemUsed())
		}
		if _, err := c.Malloc(0); !errors.Is(err, ErrInvalidValue) {
			t.Errorf("Malloc(0) = %v", err)
		}
		if _, err := c.Malloc(1 << 21); !errors.Is(err, ErrMemoryAllocation) {
			t.Errorf("oversized Malloc err = %v", err)
		}
		if err := c.Free(ptr); err != nil {
			t.Errorf("Free: %v", err)
		}
		if err := c.Free(ptr); !errors.Is(err, ErrInvalidPtr) {
			t.Errorf("double Free = %v", err)
		}
		if dev.MemUsed() != 0 {
			t.Errorf("MemUsed = %d after free", dev.MemUsed())
		}
	})
	k.Run()
}

func TestSyncMemcpyBlocksForDuration(t *testing.T) {
	k := sim.NewKernel(1)
	rt := NewRuntime(k, []*gpu.Device{testDev(k)}, zcfg())
	var elapsed sim.Time
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		ptr, _ := c.Malloc(1000)
		start := p.Now()
		if err := c.Memcpy(H2D, ptr, 500); err != nil { // 50us at 10 B/us
			t.Errorf("Memcpy: %v", err)
		}
		elapsed = p.Now() - start
	})
	k.Run()
	if elapsed != 50 {
		t.Fatalf("sync memcpy blocked %v, want 50us", elapsed)
	}
}

func TestLaunchIsAsynchronous(t *testing.T) {
	k := sim.NewKernel(1)
	rt := NewRuntime(k, []*gpu.Device{testDev(k)}, zcfg())
	var launchReturned, synced sim.Time
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		if err := c.Launch(Kernel{Name: "k", Compute: 50000}, DefaultStream); err != nil {
			t.Errorf("Launch: %v", err)
		}
		launchReturned = p.Now()
		if err := c.DeviceSynchronize(); err != nil {
			t.Errorf("DeviceSynchronize: %v", err)
		}
		synced = p.Now()
	})
	k.Run()
	if launchReturned != 0 {
		t.Fatalf("Launch blocked until %v, want immediate return", launchReturned)
	}
	if synced != 50 {
		t.Fatalf("sync completed at %v, want 50us", synced)
	}
}

func TestStreamLifecycleAndSync(t *testing.T) {
	k := sim.NewKernel(1)
	rt := NewRuntime(k, []*gpu.Device{testDev(k)}, zcfg())
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		s1, err := c.StreamCreate()
		if err != nil || s1 == DefaultStream {
			t.Errorf("StreamCreate = %v, %v", s1, err)
		}
		ptr, _ := c.Malloc(1000)
		if err := c.MemcpyAsync(H2D, ptr, 300, s1); err != nil { // 30us
			t.Errorf("MemcpyAsync: %v", err)
		}
		if err := c.Launch(Kernel{Compute: 20000}, s1); err != nil { // 20us
			t.Errorf("Launch: %v", err)
		}
		start := p.Now()
		if err := c.StreamSynchronize(s1); err != nil {
			t.Errorf("StreamSynchronize: %v", err)
		}
		if got := p.Now() - start; got != 50 {
			t.Errorf("stream sync waited %v, want 50us (FIFO: copy then kernel)", got)
		}
		if err := c.StreamSynchronize(99); !errors.Is(err, ErrInvalidStream) {
			t.Errorf("sync of bogus stream = %v", err)
		}
		if err := c.StreamDestroy(s1); err != nil {
			t.Errorf("StreamDestroy: %v", err)
		}
		if err := c.StreamDestroy(s1); !errors.Is(err, ErrInvalidStream) {
			t.Errorf("double destroy = %v", err)
		}
		if err := c.StreamDestroy(DefaultStream); !errors.Is(err, ErrInvalidValue) {
			t.Errorf("destroying default stream = %v", err)
		}
	})
	k.Run()
}

func TestTwoStreamsOverlapCopyAndCompute(t *testing.T) {
	k := sim.NewKernel(1)
	rt := NewRuntime(k, []*gpu.Device{testDev(k)}, zcfg())
	var total sim.Time
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		s1, _ := c.StreamCreate()
		s2, _ := c.StreamCreate()
		ptr, _ := c.Malloc(1000)
		c.MemcpyAsync(H2D, ptr, 500, s1)     // 50us on copy engine
		c.Launch(Kernel{Compute: 50000}, s2) // 50us on compute engine
		c.StreamSynchronize(s1)
		c.StreamSynchronize(s2)
		total = p.Now()
	})
	k.Run()
	if total != 50 {
		t.Fatalf("overlapped streams took %v, want 50us", total)
	}
}

func TestDeviceSynchronizeCoversAllStreams(t *testing.T) {
	k := sim.NewKernel(1)
	rt := NewRuntime(k, []*gpu.Device{testDev(k)}, zcfg())
	var total sim.Time
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		s1, _ := c.StreamCreate()
		s2, _ := c.StreamCreate()
		c.Launch(Kernel{Compute: 30000}, s1)
		c.Launch(Kernel{Compute: 70000}, s2)
		c.DeviceSynchronize()
		total = p.Now()
	})
	k.Run()
	// Both compute-bound kernels share: 30k kernel under slowdown 2 until
	// t=60, then 70k finishes its remaining 40k solo: 60+40=100.
	if total != 100 {
		t.Fatalf("device sync returned at %v, want 100us", total)
	}
}

func TestThreadExitFreesAllocations(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDev(k)
	rt := NewRuntime(k, []*gpu.Device{dev}, zcfg())
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		c.Malloc(400)
		c.Malloc(600)
		if err := c.ThreadExit(); err != nil {
			t.Errorf("ThreadExit: %v", err)
		}
		if dev.MemUsed() != 0 {
			t.Errorf("MemUsed = %d after ThreadExit, want 0", dev.MemUsed())
		}
		if err := c.ThreadExit(); !errors.Is(err, ErrThreadExited) {
			t.Errorf("second ThreadExit = %v", err)
		}
		if _, err := c.Malloc(10); !errors.Is(err, ErrThreadExited) {
			t.Errorf("Malloc after exit = %v", err)
		}
	})
	k.Run()
}

func TestThreadsOfOneProcessShareContext(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDev(k)
	rt := NewRuntime(k, []*gpu.Device{dev}, zcfg())
	done := 0
	for i := 0; i < 2; i++ {
		i := i
		k.Go("thread", func(p *sim.Proc) {
			c := rt.NewThread(p, i+1)
			c.Launch(Kernel{Compute: 50000}, DefaultStream)
			// Threads share the default stream of the shared context, so
			// their kernels serialize on the stream but no context switch
			// occurs.
			c.DeviceSynchronize()
			done++
		})
	}
	k.Run()
	if done != 2 {
		t.Fatal("threads did not finish")
	}
	if sw := dev.Stats().Switches; sw != 0 {
		t.Fatalf("switches = %d within one process, want 0", sw)
	}
}

func TestSeparateRuntimesGetSeparateContexts(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDev(k)
	rtA := NewRuntime(k, []*gpu.Device{dev}, zcfg())
	rtB := NewRuntime(k, []*gpu.Device{dev}, zcfg())
	k.Go("a", func(p *sim.Proc) {
		c := rtA.NewThread(p, 1)
		c.Launch(Kernel{Compute: 50000}, DefaultStream)
		c.DeviceSynchronize()
	})
	k.Go("b", func(p *sim.Proc) {
		c := rtB.NewThread(p, 2)
		c.Launch(Kernel{Compute: 50000}, DefaultStream)
		c.DeviceSynchronize()
	})
	k.Run()
	if sw := dev.Stats().Switches; sw == 0 {
		t.Fatal("expected context switching between separate processes")
	}
}

func TestContextCreateChargedOnce(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := Config{ContextCreate: 1000}
	rt := NewRuntime(k, []*gpu.Device{testDev(k)}, cfg)
	var first, second sim.Time
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		t0 := p.Now()
		c.Malloc(10)
		first = p.Now() - t0
		t0 = p.Now()
		c.Malloc(10)
		second = p.Now() - t0
	})
	k.Run()
	if first < 1000 {
		t.Fatalf("first call paid %v, want >= 1ms context create", first)
	}
	if second >= 1000 {
		t.Fatalf("second call paid %v, want no context create", second)
	}
}

func TestAPIOverheadCharged(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := Config{APIOverhead: 5}
	rt := NewRuntime(k, []*gpu.Device{testDev(k)}, cfg)
	var elapsed sim.Time
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		t0 := p.Now()
		c.DeviceCount()
		c.DeviceCount()
		elapsed = p.Now() - t0
		if c.Calls() != 2 {
			t.Errorf("Calls = %d, want 2", c.Calls())
		}
	})
	k.Run()
	if elapsed != 10 {
		t.Fatalf("two calls cost %v, want 10us", elapsed)
	}
}

func TestMemcpyValidation(t *testing.T) {
	k := sim.NewKernel(1)
	rt := NewRuntime(k, []*gpu.Device{testDev(k)}, zcfg())
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		ptr, _ := c.Malloc(100)
		if err := c.Memcpy(H2D, ptr, 200); !errors.Is(err, ErrInvalidValue) {
			t.Errorf("overlong memcpy = %v", err)
		}
		if err := c.Memcpy(H2D, ptr, 0); !errors.Is(err, ErrInvalidValue) {
			t.Errorf("zero memcpy = %v", err)
		}
		if err := c.MemcpyAsync(D2H, ptr, 200, DefaultStream); !errors.Is(err, ErrInvalidValue) {
			t.Errorf("overlong async memcpy = %v", err)
		}
		if err := c.Launch(Kernel{Compute: -1}, DefaultStream); !errors.Is(err, ErrInvalidValue) {
			t.Errorf("negative kernel = %v", err)
		}
	})
	k.Run()
}

func TestDirAndCallIDStrings(t *testing.T) {
	if H2D.String() != "HostToDevice" || D2H.String() != "DeviceToHost" {
		t.Fatal("Dir strings wrong")
	}
	if CallMalloc.String() != "cudaMalloc" {
		t.Fatalf("CallMalloc = %q", CallMalloc.String())
	}
	if CallID(99).String() != "CallID(99)" {
		t.Fatal("unknown CallID formatting")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.APIOverhead <= 0 || cfg.MallocLatency <= 0 || cfg.ContextCreate <= 0 {
		t.Fatalf("DefaultConfig has zero overheads: %+v", cfg)
	}
}
