package cuda

import (
	"fmt"
	"slices"

	"repro/internal/gpu"
	"repro/internal/sim"
)

// Runtime simulates the CUDA runtime state of one host process over a set of
// local devices. Threads created from one Runtime share a single GPU context
// per device; separate Runtimes own separate contexts.
type Runtime struct {
	k       *sim.Kernel
	cfg     Config
	devices []*gpu.Device
	ctxs    map[int]*procCtx
	owner   int // owning application for single-app processes (0 = shared)
}

// SetOwner marks the process as belonging to a single application; its GPU
// contexts are then attributed to that application, which makes the driver's
// context-switch overhead land in the application's attained service — the
// coarse accounting of per-process-context runtimes (bare CUDA and Rain).
func (rt *Runtime) SetOwner(appID int) { rt.owner = appID }

// procCtx is the process's context state on one device.
type procCtx struct {
	ctx     *gpu.Context
	streams map[StreamID]*gpu.Stream
	lastOp  map[StreamID]*sim.Event // completion of the newest op per stream
	next    StreamID
	events  map[EventID]*eventRec
	nextEv  EventID
	created bool
}

// eventRec is one CUDA event's state: the marker op of its latest record.
type eventRec struct {
	marker *gpu.Op // nil until recorded
}

// NewRuntime creates the runtime of a fresh host process seeing the given
// devices (device ordinals are indices into the slice).
func NewRuntime(k *sim.Kernel, devices []*gpu.Device, cfg Config) *Runtime {
	return &Runtime{k: k, cfg: cfg, devices: devices, ctxs: make(map[int]*procCtx)}
}

// Devices returns the devices visible to the process.
func (rt *Runtime) Devices() []*gpu.Device { return rt.devices }

// Context returns the process's GPU context on dev, or nil if none exists
// yet. Used by schedulers that need to inspect context identity.
func (rt *Runtime) Context(dev int) *gpu.Context {
	if pc, ok := rt.ctxs[dev]; ok {
		return pc.ctx
	}
	return nil
}

// ensureCtx returns the process's context state on dev, creating it (and
// charging the context-creation cost to p) on first touch.
func (rt *Runtime) ensureCtx(p *sim.Proc, dev int) *procCtx {
	pc, ok := rt.ctxs[dev]
	if !ok {
		pc = &procCtx{
			ctx:     rt.devices[dev].NewContext(),
			streams: make(map[StreamID]*gpu.Stream),
			lastOp:  make(map[StreamID]*sim.Event),
			events:  make(map[EventID]*eventRec),
			next:    1,
			nextEv:  1,
		}
		if rt.owner != 0 {
			pc.ctx.Owner = rt.owner
		}
		rt.ctxs[dev] = pc
		if rt.cfg.ContextCreate > 0 {
			p.Sleep(rt.cfg.ContextCreate)
		}
		pc.created = true
	}
	return pc
}

// stream resolves a StreamID, lazily materializing the default stream.
func (pc *procCtx) stream(id StreamID) (*gpu.Stream, error) {
	s, ok := pc.streams[id]
	if !ok {
		if id != DefaultStream {
			return nil, ErrInvalidStream
		}
		s = pc.ctx.NewStream()
		pc.streams[DefaultStream] = s
	}
	return s, nil
}

// Thread is one host thread of the process; it implements Client executing
// directly against the local devices (the bare CUDA runtime path).
type Thread struct {
	rt     *Runtime
	p      *sim.Proc
	appID  int
	dev    int
	allocs map[Ptr]struct{}
	nextID int64
	exited bool
	calls  int
}

// NewThread binds a host thread executing on sim process p with application
// id appID (used for device-side service attribution).
func (rt *Runtime) NewThread(p *sim.Proc, appID int) *Thread {
	return &Thread{rt: rt, p: p, appID: appID, allocs: make(map[Ptr]struct{})}
}

// Proc returns the sim process executing this thread.
func (t *Thread) Proc() *sim.Proc { return t.p }

// Calls returns the number of API calls the thread has made.
func (t *Thread) Calls() int { return t.calls }

// overhead charges the per-call CPU cost.
func (t *Thread) overhead() {
	t.calls++
	if t.rt.cfg.APIOverhead > 0 {
		t.p.Sleep(t.rt.cfg.APIOverhead)
	}
}

// SetDevice implements Client.
func (t *Thread) SetDevice(dev int) error {
	t.overhead()
	if t.exited {
		return ErrThreadExited
	}
	if dev < 0 || dev >= len(t.rt.devices) {
		return ErrInvalidDevice
	}
	t.dev = dev
	return nil
}

// Device implements Client.
func (t *Thread) Device() int { return t.dev }

// DeviceCount implements Client.
func (t *Thread) DeviceCount() int {
	t.overhead()
	return len(t.rt.devices)
}

// Malloc implements Client.
func (t *Thread) Malloc(bytes int64) (Ptr, error) {
	t.overhead()
	if t.exited {
		return Ptr{}, ErrThreadExited
	}
	if bytes <= 0 {
		return Ptr{}, ErrInvalidValue
	}
	t.rt.ensureCtx(t.p, t.dev)
	if t.rt.cfg.MallocLatency > 0 {
		t.p.Sleep(t.rt.cfg.MallocLatency)
	}
	if t.rt.cfg.BlockOnOOM {
		if err := t.rt.devices[t.dev].AllocBlocking(t.p, bytes); err != nil {
			return Ptr{}, fmt.Errorf("%w: %v", ErrMemoryAllocation, err)
		}
	} else if err := t.rt.devices[t.dev].Alloc(bytes); err != nil {
		return Ptr{}, fmt.Errorf("%w: %v", ErrMemoryAllocation, err)
	}
	t.nextID++
	p := Ptr{Dev: t.dev, ID: int64(t.appID)<<32 | t.nextID, Size: bytes}
	t.allocs[p] = struct{}{}
	return p, nil
}

// Free implements Client.
func (t *Thread) Free(p Ptr) error {
	t.overhead()
	if _, ok := t.allocs[p]; !ok {
		return ErrInvalidPtr
	}
	delete(t.allocs, p)
	if t.rt.cfg.MallocLatency > 0 {
		t.p.Sleep(t.rt.cfg.MallocLatency)
	}
	t.rt.devices[p.Dev].Free(p.Size)
	return nil
}

// submit queues an op on the thread's current device and returns its
// completion event.
func (t *Thread) submit(op *gpu.Op, s StreamID) (*sim.Event, error) {
	pc := t.rt.ensureCtx(t.p, t.dev)
	st, err := pc.stream(s)
	if err != nil {
		return nil, err
	}
	op.AppID = t.appID
	ev := st.Submit(op)
	pc.lastOp[s] = ev
	return ev, nil
}

// Memcpy implements Client.
func (t *Thread) Memcpy(dir Dir, p Ptr, bytes int64) error {
	t.overhead()
	if t.exited {
		return ErrThreadExited
	}
	if bytes <= 0 || bytes > p.Size {
		return ErrInvalidValue
	}
	kind := gpu.OpH2D
	if dir == D2H {
		kind = gpu.OpD2H
	}
	ev, err := t.submit(&gpu.Op{Kind: kind, Bytes: bytes}, DefaultStream)
	if err != nil {
		return err
	}
	t.p.Wait(ev)
	return nil
}

// MemcpyAsync implements Client.
func (t *Thread) MemcpyAsync(dir Dir, p Ptr, bytes int64, s StreamID) error {
	t.overhead()
	if t.exited {
		return ErrThreadExited
	}
	if bytes <= 0 || bytes > p.Size {
		return ErrInvalidValue
	}
	kind := gpu.OpH2D
	if dir == D2H {
		kind = gpu.OpD2H
	}
	_, err := t.submit(&gpu.Op{Kind: kind, Bytes: bytes}, s)
	return err
}

// Launch implements Client.
func (t *Thread) Launch(k Kernel, s StreamID) error {
	t.overhead()
	if t.exited {
		return ErrThreadExited
	}
	if k.Compute < 0 || k.MemTraffic < 0 {
		return ErrInvalidValue
	}
	_, err := t.submit(&gpu.Op{
		Kind:       gpu.OpKernel,
		Compute:    k.Compute,
		MemTraffic: k.MemTraffic,
		Occupancy:  k.Occupancy,
	}, s)
	return err
}

// StreamCreate implements Client.
func (t *Thread) StreamCreate() (StreamID, error) {
	t.overhead()
	if t.exited {
		return 0, ErrThreadExited
	}
	pc := t.rt.ensureCtx(t.p, t.dev)
	id := pc.next
	pc.next++
	pc.streams[id] = pc.ctx.NewStream()
	return id, nil
}

// StreamSynchronize implements Client.
func (t *Thread) StreamSynchronize(s StreamID) error {
	t.overhead()
	pc := t.rt.ensureCtx(t.p, t.dev)
	if _, ok := pc.streams[s]; !ok && s != DefaultStream {
		return ErrInvalidStream
	}
	if ev, ok := pc.lastOp[s]; ok {
		t.p.Wait(ev)
	}
	return nil
}

// StreamDestroy implements Client.
func (t *Thread) StreamDestroy(s StreamID) error {
	t.overhead()
	pc := t.rt.ensureCtx(t.p, t.dev)
	if s == DefaultStream {
		return ErrInvalidValue
	}
	if _, ok := pc.streams[s]; !ok {
		return ErrInvalidStream
	}
	// CUDA's cudaStreamDestroy waits for the stream's outstanding work.
	if ev, ok := pc.lastOp[s]; ok {
		t.p.Wait(ev)
	}
	delete(pc.streams, s)
	delete(pc.lastOp, s)
	return nil
}

// DeviceSynchronize implements Client. It waits for all work the process has
// queued on the current device, across all of the process's streams.
func (t *Thread) DeviceSynchronize() error {
	t.overhead()
	pc := t.rt.ensureCtx(t.p, t.dev)
	// Collect first: waiting can add new lastOps from other threads; device
	// sync covers work queued as of the call.
	evs := make([]*sim.Event, 0, len(pc.lastOp))
	for _, id := range sortedStreamIDs(pc.lastOp) {
		evs = append(evs, pc.lastOp[id])
	}
	for _, ev := range evs {
		t.p.Wait(ev)
	}
	return nil
}

// EventCreate implements Client.
func (t *Thread) EventCreate() (EventID, error) {
	t.overhead()
	if t.exited {
		return 0, ErrThreadExited
	}
	pc := t.rt.ensureCtx(t.p, t.dev)
	id := pc.nextEv
	pc.nextEv++
	pc.events[id] = &eventRec{}
	return id, nil
}

// EventRecord implements Client: the event becomes a zero-cost marker op on
// the stream; its timestamp is the virtual time the device completes it.
func (t *Thread) EventRecord(e EventID, s StreamID) error {
	t.overhead()
	if t.exited {
		return ErrThreadExited
	}
	pc := t.rt.ensureCtx(t.p, t.dev)
	rec, ok := pc.events[e]
	if !ok {
		return ErrInvalidEvent
	}
	op := &gpu.Op{Kind: gpu.OpMarker}
	if _, err := t.submit(op, s); err != nil {
		return err
	}
	rec.marker = op
	return nil
}

// EventSynchronize implements Client.
func (t *Thread) EventSynchronize(e EventID) error {
	t.overhead()
	pc := t.rt.ensureCtx(t.p, t.dev)
	rec, ok := pc.events[e]
	if !ok {
		return ErrInvalidEvent
	}
	if rec.marker == nil {
		return ErrNotReady
	}
	t.p.Wait(rec.marker.Done)
	return nil
}

// EventElapsed implements Client.
func (t *Thread) EventElapsed(start, end EventID) (sim.Time, error) {
	t.overhead()
	pc := t.rt.ensureCtx(t.p, t.dev)
	a, okA := pc.events[start]
	b, okB := pc.events[end]
	if !okA || !okB {
		return 0, ErrInvalidEvent
	}
	if a.marker == nil || b.marker == nil ||
		!a.marker.Done.Fired() || !b.marker.Done.Fired() {
		return 0, ErrNotReady
	}
	return b.marker.Finished - a.marker.Finished, nil
}

// EventDestroy implements Client.
func (t *Thread) EventDestroy(e EventID) error {
	t.overhead()
	pc := t.rt.ensureCtx(t.p, t.dev)
	if _, ok := pc.events[e]; !ok {
		return ErrInvalidEvent
	}
	delete(pc.events, e)
	return nil
}

// ThreadExit implements Client: synchronizes the device and releases the
// thread's allocations.
func (t *Thread) ThreadExit() error {
	if t.exited {
		return ErrThreadExited
	}
	if err := t.DeviceSynchronize(); err != nil {
		return err
	}
	// Free in (device, allocation-id) order: Free itself is additive, but
	// releasing in map order would make any future accounting hook on the
	// free path order-dependent.
	ptrs := make([]Ptr, 0, len(t.allocs))
	for p := range t.allocs {
		ptrs = append(ptrs, p)
	}
	slices.SortFunc(ptrs, func(a, b Ptr) int {
		if a.Dev != b.Dev {
			return a.Dev - b.Dev
		}
		return int(a.ID - b.ID)
	})
	for _, p := range ptrs {
		t.rt.devices[p.Dev].Free(p.Size)
	}
	t.allocs = make(map[Ptr]struct{})
	t.exited = true
	return nil
}

// sortedStreamIDs returns map keys in ascending order for determinism.
func sortedStreamIDs(m map[StreamID]*sim.Event) []StreamID {
	ids := make([]StreamID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}
