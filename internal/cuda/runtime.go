package cuda

import (
	"fmt"
	"slices"

	"repro/internal/gpu"
	"repro/internal/sim"
)

// Runtime simulates the CUDA runtime state of one host process over a set of
// local devices. Threads created from one Runtime share a single GPU context
// per device; separate Runtimes own separate contexts.
type Runtime struct {
	k       *sim.Kernel
	cfg     Config
	devices []*gpu.Device
	ctxs    []*procCtx // indexed by device ordinal; nil until first touch
	owner   int        // owning application for single-app processes (0 = shared)
}

// SetOwner marks the process as belonging to a single application; its GPU
// contexts are then attributed to that application, which makes the driver's
// context-switch overhead land in the application's attained service — the
// coarse accounting of per-process-context runtimes (bare CUDA and Rain).
func (rt *Runtime) SetOwner(appID int) { rt.owner = appID }

// procCtx is the process's context state on one device. Streams and their
// newest-op events live in dense slices indexed by StreamID — stream ids are
// small sequential integers, and the per-call map lookups they replace were a
// measurable slice of the event hot path.
type procCtx struct {
	ctx     *gpu.Context
	streams []*gpu.Stream // indexed by StreamID; nil = not created/destroyed
	lastOp  []*sim.Event  // completion of the newest op per stream
	next    StreamID

	// live lists the ids of existing streams in ascending order (ids are
	// handed out monotonically and appended on creation). Device-wide
	// operations walk this instead of the full dense tables: a packed
	// context serving a long request stream accumulates destroyed-stream
	// slots forever, and scanning them per sync would be quadratic.
	live []StreamID

	events    map[EventID]*eventRec // lazily allocated on first EventCreate
	nextEv    EventID
	created   bool
	evScratch []*sim.Event // DeviceSynchronize snapshot buffer
}

// eventRec is one CUDA event's state: the marker op of its latest record.
type eventRec struct {
	marker *gpu.Op // nil until recorded
}

// NewRuntime creates the runtime of a fresh host process seeing the given
// devices (device ordinals are indices into the slice).
func NewRuntime(k *sim.Kernel, devices []*gpu.Device, cfg Config) *Runtime {
	return &Runtime{k: k, cfg: cfg, devices: devices, ctxs: make([]*procCtx, len(devices))}
}

// Devices returns the devices visible to the process.
func (rt *Runtime) Devices() []*gpu.Device { return rt.devices }

// Context returns the process's GPU context on dev, or nil if none exists
// yet. Used by schedulers that need to inspect context identity.
func (rt *Runtime) Context(dev int) *gpu.Context {
	if dev >= 0 && dev < len(rt.ctxs) && rt.ctxs[dev] != nil {
		return rt.ctxs[dev].ctx
	}
	return nil
}

// ensureCtx returns the process's context state on dev, creating it (and
// charging the context-creation cost to p) on first touch.
func (rt *Runtime) ensureCtx(p *sim.Proc, dev int) *procCtx {
	pc := rt.ctxs[dev]
	if pc == nil {
		//lint:allow hotalloc -- first touch: one context state per (process, device), off the steady-state path
		pc = &procCtx{
			ctx:    rt.devices[dev].NewContext(), //lint:allow hotalloc -- first touch: context creation is the modeled setup cost
			next:   1,
			nextEv: 1,
		}
		if rt.owner != 0 {
			pc.ctx.Owner = rt.owner
		}
		rt.ctxs[dev] = pc
		if rt.cfg.ContextCreate > 0 {
			p.Sleep(rt.cfg.ContextCreate)
		}
		pc.created = true
	}
	return pc
}

// hasStream reports whether id names a live stream.
func (pc *procCtx) hasStream(id StreamID) bool {
	return id >= 0 && int(id) < len(pc.streams) && pc.streams[id] != nil
}

// last returns the completion event of the newest op on the stream, nil when
// the stream is idle or unknown.
func (pc *procCtx) last(id StreamID) *sim.Event {
	if id >= 0 && int(id) < len(pc.lastOp) {
		return pc.lastOp[id]
	}
	return nil
}

// setStream grows the dense stream table to cover id and installs s.
func (pc *procCtx) setStream(id StreamID, s *gpu.Stream) {
	for int(id) >= len(pc.streams) {
		pc.streams = append(pc.streams, nil) //lint:allow hotalloc -- dense table grows to the process's stream high-water mark, once per new id
		pc.lastOp = append(pc.lastOp, nil)   //lint:allow hotalloc -- grows in lockstep with pc.streams, once per new id
	}
	pc.streams[id] = s
	// Ids are monotonic except for the default stream (id 0, materialized
	// lazily), so an append keeps live ascending in every case but that one.
	if n := len(pc.live); n == 0 || pc.live[n-1] < id {
		pc.live = append(pc.live, id) //lint:allow hotalloc -- live grows once per stream creation, not per op
	} else {
		pc.live = append(pc.live, 0) //lint:allow hotalloc -- live grows once per stream creation, not per op
		copy(pc.live[1:], pc.live[:n])
		pc.live[0] = id
	}
}

// dropStream clears a destroyed stream's slots and removes it from live.
func (pc *procCtx) dropStream(id StreamID) {
	pc.streams[id] = nil
	for i, x := range pc.live {
		if x == id {
			pc.live = append(pc.live[:i], pc.live[i+1:]...)
			break
		}
	}
}

// stream resolves a StreamID, lazily materializing the default stream.
func (pc *procCtx) stream(id StreamID) (*gpu.Stream, error) {
	if pc.hasStream(id) {
		return pc.streams[id], nil
	}
	if id != DefaultStream {
		return nil, ErrInvalidStream
	}
	s := pc.ctx.NewStream() //lint:allow hotalloc -- first touch: the default stream is materialized once per context
	pc.setStream(DefaultStream, s)
	return s, nil
}

// Thread is one host thread of the process; it implements Client executing
// directly against the local devices (the bare CUDA runtime path).
type Thread struct {
	rt     *Runtime
	p      *sim.Proc
	appID  int
	dev    int
	allocs []Ptr
	nextID int64
	exited bool
	calls  int
}

// NewThread binds a host thread executing on sim process p with application
// id appID (used for device-side service attribution).
func (rt *Runtime) NewThread(p *sim.Proc, appID int) *Thread {
	return &Thread{rt: rt, p: p, appID: appID}
}

// Proc returns the sim process executing this thread.
func (t *Thread) Proc() *sim.Proc { return t.p }

// Calls returns the number of API calls the thread has made.
func (t *Thread) Calls() int { return t.calls }

// overhead charges the per-call CPU cost.
func (t *Thread) overhead() {
	t.calls++
	if t.rt.cfg.APIOverhead > 0 {
		t.p.Sleep(t.rt.cfg.APIOverhead)
	}
}

// SetDevice implements Client.
func (t *Thread) SetDevice(dev int) error {
	t.overhead()
	if t.exited {
		return ErrThreadExited
	}
	if dev < 0 || dev >= len(t.rt.devices) {
		return ErrInvalidDevice
	}
	t.dev = dev
	return nil
}

// Device implements Client.
func (t *Thread) Device() int { return t.dev }

// DeviceCount implements Client.
func (t *Thread) DeviceCount() int {
	t.overhead()
	return len(t.rt.devices)
}

// Malloc implements Client.
func (t *Thread) Malloc(bytes int64) (Ptr, error) {
	t.overhead()
	if t.exited {
		return Ptr{}, ErrThreadExited
	}
	if bytes <= 0 {
		return Ptr{}, ErrInvalidValue
	}
	t.rt.ensureCtx(t.p, t.dev)
	if t.rt.cfg.MallocLatency > 0 {
		t.p.Sleep(t.rt.cfg.MallocLatency)
	}
	if t.rt.cfg.BlockOnOOM {
		if err := t.rt.devices[t.dev].AllocBlocking(t.p, bytes); err != nil {
			return Ptr{}, fmt.Errorf("%w: %v", ErrMemoryAllocation, err)
		}
	} else if err := t.rt.devices[t.dev].Alloc(bytes); err != nil {
		return Ptr{}, fmt.Errorf("%w: %v", ErrMemoryAllocation, err)
	}
	t.nextID++
	p := Ptr{Dev: t.dev, ID: int64(t.appID)<<32 | t.nextID, Size: bytes}
	t.allocs = append(t.allocs, p)
	return p, nil
}

// Free implements Client.
func (t *Thread) Free(p Ptr) error {
	t.overhead()
	i := slices.Index(t.allocs, p)
	if i < 0 {
		return ErrInvalidPtr
	}
	// Order within allocs carries no meaning (ThreadExit sorts), so the
	// removal is a swap with the tail.
	t.allocs[i] = t.allocs[len(t.allocs)-1]
	t.allocs = t.allocs[:len(t.allocs)-1]
	if t.rt.cfg.MallocLatency > 0 {
		t.p.Sleep(t.rt.cfg.MallocLatency)
	}
	t.rt.devices[p.Dev].Free(p.Size)
	return nil
}

// submit queues an op on the thread's current device and returns its
// completion event. Ops arriving here come from the device's free list; their
// completion events are drawn from the kernel's. The reference on a pooled
// completion event is owned by the stream's lastOp slot: it is released when
// a newer op replaces it, or when the stream is destroyed.
//
//strings:hotpath
func (t *Thread) submit(op *gpu.Op, s StreamID) (*sim.Event, error) {
	pc := t.rt.ensureCtx(t.p, t.dev)
	st, err := pc.stream(s)
	if err != nil {
		t.rt.devices[t.dev].PutOp(op)
		return nil, err
	}
	op.AppID = t.appID
	if op.Done == nil {
		op.Done = t.rt.k.NewPooledEvent()
	}
	ev := st.Submit(op)
	if old := pc.lastOp[s]; old != nil {
		old.Unref()
	}
	pc.lastOp[s] = ev
	return ev, nil
}

// Memcpy implements Client.
func (t *Thread) Memcpy(dir Dir, p Ptr, bytes int64) error {
	t.overhead()
	if t.exited {
		return ErrThreadExited
	}
	if bytes <= 0 || bytes > p.Size {
		return ErrInvalidValue
	}
	kind := gpu.OpH2D
	if dir == D2H {
		kind = gpu.OpD2H
	}
	op := t.rt.devices[t.dev].GetOp(kind)
	op.Bytes = bytes
	ev, err := t.submit(op, DefaultStream)
	if err != nil {
		return err
	}
	// Hold a reference across the wait so a concurrent submit on the same
	// stream cannot release the event's last reference while we are parked.
	ev.Ref()
	t.p.Wait(ev)
	ev.Unref()
	return nil
}

// MemcpyAsync implements Client.
func (t *Thread) MemcpyAsync(dir Dir, p Ptr, bytes int64, s StreamID) error {
	t.overhead()
	if t.exited {
		return ErrThreadExited
	}
	if bytes <= 0 || bytes > p.Size {
		return ErrInvalidValue
	}
	kind := gpu.OpH2D
	if dir == D2H {
		kind = gpu.OpD2H
	}
	op := t.rt.devices[t.dev].GetOp(kind)
	op.Bytes = bytes
	_, err := t.submit(op, s)
	return err
}

// Launch implements Client.
func (t *Thread) Launch(k Kernel, s StreamID) error {
	t.overhead()
	if t.exited {
		return ErrThreadExited
	}
	if k.Compute < 0 || k.MemTraffic < 0 {
		return ErrInvalidValue
	}
	op := t.rt.devices[t.dev].GetOp(gpu.OpKernel)
	op.Compute = k.Compute
	op.MemTraffic = k.MemTraffic
	op.Occupancy = k.Occupancy
	_, err := t.submit(op, s)
	return err
}

// StreamCreate implements Client.
func (t *Thread) StreamCreate() (StreamID, error) {
	t.overhead()
	if t.exited {
		return 0, ErrThreadExited
	}
	pc := t.rt.ensureCtx(t.p, t.dev)
	id := pc.next
	pc.next++
	pc.setStream(id, pc.ctx.NewStream())
	return id, nil
}

// StreamSynchronize implements Client.
func (t *Thread) StreamSynchronize(s StreamID) error {
	t.overhead()
	pc := t.rt.ensureCtx(t.p, t.dev)
	if !pc.hasStream(s) && s != DefaultStream {
		return ErrInvalidStream
	}
	if ev := pc.last(s); ev != nil {
		ev.Ref()
		t.p.Wait(ev)
		ev.Unref()
	}
	return nil
}

// StreamDestroy implements Client.
func (t *Thread) StreamDestroy(s StreamID) error {
	t.overhead()
	pc := t.rt.ensureCtx(t.p, t.dev)
	if s == DefaultStream {
		return ErrInvalidValue
	}
	if !pc.hasStream(s) {
		return ErrInvalidStream
	}
	// CUDA's cudaStreamDestroy waits for the stream's outstanding work.
	if ev := pc.last(s); ev != nil {
		ev.Ref()
		t.p.Wait(ev)
		ev.Unref()
		ev.Unref() //lint:allow poolsafe -- not a double-free: this drops the lastOp slot's own reference, distinct from the Ref taken above
		pc.lastOp[s] = nil
	}
	// The stream is drained: remove it from the device's dispatch scan too,
	// or a packed context accretes one dead stream per application served.
	pc.ctx.DestroyStream(pc.streams[s])
	pc.dropStream(s)
	return nil
}

// DeviceSynchronize implements Client. It waits for all work the process has
// queued on the current device, across all of the process's streams.
func (t *Thread) DeviceSynchronize() error {
	t.overhead()
	pc := t.rt.ensureCtx(t.p, t.dev)
	// Collect first (holding references): waiting can replace lastOps from
	// other threads; device sync covers work queued as of the call. The dense
	// table iterates in ascending StreamID order, keeping the wait order of
	// the sorted-map-keys code this replaces. The scratch buffer is claimed
	// for the duration — a concurrent sync on another thread falls back to a
	// fresh allocation.
	evs := pc.evScratch[:0]
	pc.evScratch = nil
	for _, id := range pc.live {
		if ev := pc.lastOp[id]; ev != nil {
			ev.Ref()
			evs = append(evs, ev)
		}
	}
	for _, ev := range evs {
		t.p.Wait(ev)
		ev.Unref()
	}
	clear(evs)
	pc.evScratch = evs[:0]
	return nil
}

// EventCreate implements Client.
func (t *Thread) EventCreate() (EventID, error) {
	t.overhead()
	if t.exited {
		return 0, ErrThreadExited
	}
	pc := t.rt.ensureCtx(t.p, t.dev)
	if pc.events == nil {
		pc.events = make(map[EventID]*eventRec)
	}
	id := pc.nextEv
	pc.nextEv++
	pc.events[id] = &eventRec{}
	return id, nil
}

// EventRecord implements Client: the event becomes a zero-cost marker op on
// the stream; its timestamp is the virtual time the device completes it.
func (t *Thread) EventRecord(e EventID, s StreamID) error {
	t.overhead()
	if t.exited {
		return ErrThreadExited
	}
	pc := t.rt.ensureCtx(t.p, t.dev)
	rec, ok := pc.events[e]
	if !ok {
		return ErrInvalidEvent
	}
	// Markers are retained past completion (EventElapsed reads their timing
	// long after they finish), so neither the op nor its Done event may come
	// from a free list.
	op := &gpu.Op{Kind: gpu.OpMarker, Done: t.rt.k.NewEvent()}
	if _, err := t.submit(op, s); err != nil {
		return err
	}
	rec.marker = op
	return nil
}

// EventSynchronize implements Client.
func (t *Thread) EventSynchronize(e EventID) error {
	t.overhead()
	pc := t.rt.ensureCtx(t.p, t.dev)
	rec, ok := pc.events[e]
	if !ok {
		return ErrInvalidEvent
	}
	if rec.marker == nil {
		return ErrNotReady
	}
	t.p.Wait(rec.marker.Done)
	return nil
}

// EventElapsed implements Client.
func (t *Thread) EventElapsed(start, end EventID) (sim.Time, error) {
	t.overhead()
	pc := t.rt.ensureCtx(t.p, t.dev)
	a, okA := pc.events[start]
	b, okB := pc.events[end]
	if !okA || !okB {
		return 0, ErrInvalidEvent
	}
	if a.marker == nil || b.marker == nil ||
		!a.marker.Done.Fired() || !b.marker.Done.Fired() {
		return 0, ErrNotReady
	}
	return b.marker.Finished - a.marker.Finished, nil
}

// EventDestroy implements Client.
func (t *Thread) EventDestroy(e EventID) error {
	t.overhead()
	pc := t.rt.ensureCtx(t.p, t.dev)
	if _, ok := pc.events[e]; !ok {
		return ErrInvalidEvent
	}
	delete(pc.events, e)
	return nil
}

// ThreadExit implements Client: synchronizes the device and releases the
// thread's allocations.
func (t *Thread) ThreadExit() error {
	if t.exited {
		return ErrThreadExited
	}
	if err := t.DeviceSynchronize(); err != nil {
		return err
	}
	// Free in (device, allocation-id) order: Free itself is additive, but
	// releasing in arrival order would make any future accounting hook on the
	// free path depend on the swap-removals Free performed.
	slices.SortFunc(t.allocs, func(a, b Ptr) int {
		if a.Dev != b.Dev {
			return a.Dev - b.Dev
		}
		return int(a.ID - b.ID)
	})
	for _, p := range t.allocs {
		t.rt.devices[p.Dev].Free(p.Size)
	}
	t.allocs = nil
	t.exited = true
	return nil
}
