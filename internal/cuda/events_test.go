package cuda

import (
	"errors"
	"testing"

	"repro/internal/gpu"
	"repro/internal/sim"
)

func TestEventTimingBracketsKernel(t *testing.T) {
	k := sim.NewKernel(1)
	rt := NewRuntime(k, []*gpu.Device{testDev(k)}, Config{})
	var elapsed sim.Time
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		start, err := c.EventCreate()
		if err != nil {
			t.Errorf("EventCreate: %v", err)
			return
		}
		end, _ := c.EventCreate()
		c.EventRecord(start, DefaultStream)
		c.Launch(Kernel{Compute: 50000}, DefaultStream) // 50us
		c.EventRecord(end, DefaultStream)
		if err := c.EventSynchronize(end); err != nil {
			t.Errorf("EventSynchronize: %v", err)
			return
		}
		elapsed, err = c.EventElapsed(start, end)
		if err != nil {
			t.Errorf("EventElapsed: %v", err)
		}
	})
	k.Run()
	if elapsed != 50 {
		t.Fatalf("elapsed = %v, want 50us", elapsed)
	}
}

func TestEventMarkersRespectStreamOrder(t *testing.T) {
	k := sim.NewKernel(1)
	rt := NewRuntime(k, []*gpu.Device{testDev(k)}, Config{})
	var syncedAt sim.Time
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		ev, _ := c.EventCreate()
		c.Launch(Kernel{Compute: 30000}, DefaultStream) // 30us
		c.EventRecord(ev, DefaultStream)
		c.EventSynchronize(ev)
		syncedAt = p.Now()
	})
	k.Run()
	if syncedAt != 30 {
		t.Fatalf("event completed at %v, want 30us (after the kernel)", syncedAt)
	}
}

func TestEventErrors(t *testing.T) {
	k := sim.NewKernel(1)
	rt := NewRuntime(k, []*gpu.Device{testDev(k)}, Config{})
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		if err := c.EventRecord(99, DefaultStream); !errors.Is(err, ErrInvalidEvent) {
			t.Errorf("record bogus event = %v", err)
		}
		ev, _ := c.EventCreate()
		if err := c.EventSynchronize(ev); !errors.Is(err, ErrNotReady) {
			t.Errorf("sync unrecorded event = %v", err)
		}
		ev2, _ := c.EventCreate()
		if _, err := c.EventElapsed(ev, ev2); !errors.Is(err, ErrNotReady) {
			t.Errorf("elapsed of unrecorded events = %v", err)
		}
		if err := c.EventDestroy(ev); err != nil {
			t.Errorf("destroy: %v", err)
		}
		if err := c.EventDestroy(ev); !errors.Is(err, ErrInvalidEvent) {
			t.Errorf("double destroy = %v", err)
		}
	})
	k.Run()
}

func TestEventRecordOnExplicitStream(t *testing.T) {
	k := sim.NewKernel(1)
	rt := NewRuntime(k, []*gpu.Device{testDev(k)}, Config{})
	var e1, e2 sim.Time
	k.Go("app", func(p *sim.Proc) {
		c := rt.NewThread(p, 1)
		s1, _ := c.StreamCreate()
		s2, _ := c.StreamCreate()
		evA, _ := c.EventCreate()
		evB, _ := c.EventCreate()
		c.Launch(Kernel{Compute: 40000, Occupancy: 0.4}, s1) // 100us solo
		c.EventRecord(evA, s1)
		c.Launch(Kernel{Compute: 8000, Occupancy: 0.4}, s2) // 20us solo
		c.EventRecord(evB, s2)
		c.EventSynchronize(evA)
		e1 = p.Now()
		c.EventSynchronize(evB)
		e2 = p.Now()
	})
	k.Run()
	// Stream 2's small kernel finishes first; events track their own
	// streams independently.
	if e2 > e1 {
		t.Fatalf("evB synced at %v after evA at %v", e2, e1)
	}
}
