// Package cuda simulates the CUDA runtime library over the gpu device model.
//
// Applications program against the Client interface — a faithful subset of
// the CUDA runtime API surface the paper's interposer intercepts
// (cudaSetDevice, cudaMalloc, cudaMemcpy[Async], kernel launch,
// cudaDeviceSynchronize, cudaStream*, cudaThreadExit). A Runtime instance
// corresponds to one host process: threads of the same Runtime share one GPU
// context per device (CUDA ≥ 4.0 semantics), while distinct Runtimes get
// distinct contexts that the device driver multiplexes with context-switch
// overhead.
package cuda

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Dir is a memcpy direction.
type Dir int

// Memcpy directions.
const (
	H2D Dir = iota
	D2H
)

// String returns the CUDA-style mnemonic.
func (d Dir) String() string {
	if d == H2D {
		return "HostToDevice"
	}
	return "DeviceToHost"
}

// StreamID names a CUDA stream within a process's context on a device.
// DefaultStream (0) is the context's default stream.
type StreamID int

// DefaultStream is CUDA's stream 0.
const DefaultStream StreamID = 0

// EventID names a CUDA event within a process's context on a device.
type EventID int

// Ptr is a device memory pointer.
type Ptr struct {
	Dev  int   // device ordinal within the owning process's view
	ID   int64 // opaque allocation id
	Size int64 // allocation size in bytes
}

// Nil reports whether the pointer is the zero pointer.
func (p Ptr) Nil() bool { return p.ID == 0 }

// Kernel describes a kernel launch: total compute work (units), device
// memory traffic (bytes), and occupancy (fraction of the device the kernel
// can fill; 0 means 1.0).
type Kernel struct {
	Name       string
	Compute    float64
	MemTraffic float64
	Occupancy  float64
}

// Errors mirroring the CUDA error codes the paper's runtime can surface.
var (
	ErrInvalidDevice      = errors.New("cuda: invalid device ordinal")
	ErrMemoryAllocation   = errors.New("cuda: out of memory")
	ErrInvalidValue       = errors.New("cuda: invalid value")
	ErrInvalidPtr         = errors.New("cuda: invalid device pointer")
	ErrInvalidStream      = errors.New("cuda: invalid resource handle")
	ErrInvalidEvent       = errors.New("cuda: invalid event handle")
	ErrNotReady           = errors.New("cuda: event not yet recorded")
	ErrThreadExited       = errors.New("cuda: thread already exited")
	ErrNotImplemented     = errors.New("cuda: call not implemented")
	ErrBackendUnreachable = errors.New("cuda: backend unreachable")
	// ErrBackendLost reports that the backend serving the application died
	// mid-flight and the call could not be retried or failed over safely.
	ErrBackendLost = errors.New("cuda: backend lost")
)

// Client is the per-application-thread view of a CUDA runtime. The bare
// runtime implements it directly; the Strings interposer implements it by
// forwarding calls to backend daemons.
type Client interface {
	// SetDevice selects the target device for subsequent calls
	// (cudaSetDevice).
	SetDevice(dev int) error
	// Device returns the currently selected device ordinal.
	Device() int
	// DeviceCount returns the number of visible devices
	// (cudaGetDeviceCount).
	DeviceCount() int
	// Malloc allocates device memory (cudaMalloc).
	Malloc(bytes int64) (Ptr, error)
	// Free releases device memory (cudaFree).
	Free(p Ptr) error
	// Memcpy is a synchronous host↔device copy (cudaMemcpy); it blocks the
	// calling thread until the copy completes.
	Memcpy(dir Dir, p Ptr, bytes int64) error
	// MemcpyAsync is the stream-ordered asynchronous copy
	// (cudaMemcpyAsync).
	MemcpyAsync(dir Dir, p Ptr, bytes int64, s StreamID) error
	// Launch enqueues a kernel on a stream (cudaConfigureCall+cudaLaunch).
	// Launches are asynchronous, as in CUDA.
	Launch(k Kernel, s StreamID) error
	// StreamCreate creates a stream (cudaStreamCreate).
	StreamCreate() (StreamID, error)
	// StreamSynchronize blocks until all work queued on the stream has
	// completed (cudaStreamSynchronize).
	StreamSynchronize(s StreamID) error
	// StreamDestroy destroys a stream (cudaStreamDestroy).
	StreamDestroy(s StreamID) error
	// DeviceSynchronize blocks until all of the process's work on the
	// current device has completed (cudaDeviceSynchronize).
	DeviceSynchronize() error
	// EventCreate creates a timing event (cudaEventCreate).
	EventCreate() (EventID, error)
	// EventRecord enqueues the event as a marker on the stream
	// (cudaEventRecord); the event's timestamp is when the device reaches
	// it.
	EventRecord(e EventID, s StreamID) error
	// EventSynchronize blocks until the event's marker has completed
	// (cudaEventSynchronize).
	EventSynchronize(e EventID) error
	// EventElapsed returns the device time between two completed events
	// (cudaEventElapsedTime).
	EventElapsed(start, end EventID) (sim.Time, error)
	// EventDestroy releases the event (cudaEventDestroy).
	EventDestroy(e EventID) error
	// ThreadExit tears down the calling thread's CUDA state
	// (cudaThreadExit): outstanding work is synchronized and the thread's
	// allocations are released.
	ThreadExit() error
	// Proc returns the simulated process executing this thread, giving
	// applications access to the virtual clock for their CPU phases.
	Proc() *sim.Proc
}

// CallID identifies an API call for marshalling and statistics; the values
// form the wire protocol's opcode space.
type CallID int

// API opcodes.
const (
	CallSetDevice CallID = iota + 1
	CallDeviceCount
	CallMalloc
	CallFree
	CallMemcpy
	CallMemcpyAsync
	CallLaunch
	CallStreamCreate
	CallStreamSync
	CallStreamDestroy
	CallDeviceSync
	CallThreadExit
	CallEventCreate
	CallEventRecord
	CallEventSync
	CallEventElapsed
	CallEventDestroy
)

var callNames = map[CallID]string{
	CallSetDevice:     "cudaSetDevice",
	CallDeviceCount:   "cudaGetDeviceCount",
	CallMalloc:        "cudaMalloc",
	CallFree:          "cudaFree",
	CallMemcpy:        "cudaMemcpy",
	CallMemcpyAsync:   "cudaMemcpyAsync",
	CallLaunch:        "cudaLaunch",
	CallStreamCreate:  "cudaStreamCreate",
	CallStreamSync:    "cudaStreamSynchronize",
	CallStreamDestroy: "cudaStreamDestroy",
	CallDeviceSync:    "cudaDeviceSynchronize",
	CallThreadExit:    "cudaThreadExit",
	CallEventCreate:   "cudaEventCreate",
	CallEventRecord:   "cudaEventRecord",
	CallEventSync:     "cudaEventSynchronize",
	CallEventElapsed:  "cudaEventElapsedTime",
	CallEventDestroy:  "cudaEventDestroy",
}

// String returns the CUDA runtime function name.
func (c CallID) String() string {
	if n, ok := callNames[c]; ok {
		return n
	}
	return fmt.Sprintf("CallID(%d)", int(c))
}

// Config sets the runtime's host-side overheads.
type Config struct {
	// APIOverhead is the CPU cost charged to the calling thread per API
	// call (library dispatch, argument checking).
	APIOverhead sim.Time
	// MallocLatency is the extra host-side latency of cudaMalloc/cudaFree.
	MallocLatency sim.Time
	// ContextCreate is the one-time cost of initializing a process's
	// context on a device, paid by the first call that touches the device.
	ContextCreate sim.Time

	// BlockOnOOM enables memory-pressure admission control: cudaMalloc
	// blocks until device memory frees instead of failing. Off by default
	// (the paper's λ assumption); the Strings runtime can enable it to
	// drop that assumption.
	BlockOnOOM bool
}

// DefaultConfig returns overheads representative of CUDA 5.0 on the paper's
// testbed.
func DefaultConfig() Config {
	return Config{
		APIOverhead:   2 * sim.Microsecond,
		MallocLatency: 60 * sim.Microsecond,
		ContextCreate: 4 * sim.Millisecond,
	}
}
