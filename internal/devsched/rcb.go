// Package devsched implements the paper's per-device GPU Scheduler: the
// Request Manager with its Request Control Block (RCB), the Dispatcher that
// puts backend threads to sleep and wakes them (the simulation analogue of
// the paper's Unix real-time-signal protocol), the Request Monitor that
// tracks per-application GPU characteristics, and the Feedback Engine that
// reports them to the workload balancer. Scheduling policies: TFS (true
// fair-share with usage history and overshoot penalties), LAS (least
// attained service with exponentially decayed accounting, eq. 1 of the
// paper), and PS (phase selection across the GPU's three engines).
package devsched

import (
	"fmt"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// Phase is a backend thread's current GPU-usage phase, as reported to the
// scheduler; PS picks one thread per phase.
type Phase int

// Phases in the paper's vocabulary: kernel launch, the two copy directions,
// the default phase (anything else), and idle (no pending request).
const (
	PhaseIdle Phase = iota
	PhaseDFL
	PhaseH2D
	PhaseD2H
	PhaseKL
)

// String returns the paper's phase mnemonic.
func (ph Phase) String() string {
	switch ph {
	case PhaseIdle:
		return "IDLE"
	case PhaseDFL:
		return "DFL"
	case PhaseH2D:
		return "H2D"
	case PhaseD2H:
		return "D2H"
	case PhaseKL:
		return "KL"
	default:
		return fmt.Sprintf("Phase(%d)", int(ph))
	}
}

// Entry is one application's row in the Request Control Block.
type Entry struct {
	AppID    int
	TenantID int64
	Weight   int
	Kind     string // application class (workload short code)

	// Registered is when the 3-way registration handshake completed.
	Registered sim.Time

	// Phase is the thread's current/next GPU phase, maintained by the
	// backend thread.
	Phase Phase

	// Backlog reports how many requests the thread has pending (held call
	// plus inbox depth); installed by the backend thread at registration.
	Backlog func() int

	// Awake is the dispatcher's gate: the backend thread checks it before
	// executing each GPU request and parks on Wake while false.
	Awake bool
	Wake  *sim.Signal

	// SignalID is the "real-time signal number" assigned during the
	// registration handshake (kept for protocol fidelity and debugging).
	SignalID int

	// Request Monitor state.
	Attained    sim.Time // total attained GPU service
	XferTime    sim.Time // copy-engine time attained
	MemTraffic  float64  // device-memory traffic so far (bytes)
	CGS         float64  // decayed cumulative GPU service (eq. 1)
	epochSample sim.Time // service reading at the last epoch boundary
	lastRefresh sim.Time // when the Request Monitor last sampled the device

	// TFS bookkeeping lives in the policy, keyed by tenant.

	exited  bool
	pickGen uint64 // dispatcher generation that last picked this entry awake
}

// HasWork reports whether the thread has a pending request to run.
func (e *Entry) HasWork() bool {
	if e.exited {
		return false
	}
	if e.Backlog == nil {
		return false
	}
	return e.Backlog() > 0
}

// GPUUtil returns attained service over registered wall time.
func (e *Entry) GPUUtil(now sim.Time) float64 {
	wall := now - e.Registered
	if wall <= 0 {
		return 0
	}
	u := float64(e.Attained) / float64(wall)
	if u > 1 {
		u = 1
	}
	return u
}

// feedback builds the Feedback Engine's report for the application.
func (e *Entry) feedback(now sim.Time, gid int) *rpcproto.Feedback {
	exec := now - e.Registered
	fb := &rpcproto.Feedback{
		AppID:    int64(e.AppID),
		Kind:     e.Kind,
		GID:      int32(gid),
		ExecTime: exec,
		GPUTime:  e.Attained,
		XferTime: e.XferTime,
		GPUUtil:  e.GPUUtil(now),
	}
	if e.Attained > 0 {
		fb.MemBW = e.MemTraffic / float64(e.Attained)
	}
	return fb
}

// opPhase maps a device op to the scheduler phase taxonomy.
func opPhase(k gpu.OpKind) Phase {
	switch k {
	case gpu.OpH2D:
		return PhaseH2D
	case gpu.OpD2H:
		return PhaseD2H
	case gpu.OpKernel:
		return PhaseKL
	default:
		return PhaseDFL
	}
}

// CallPhase classifies a marshalled CUDA call into the scheduler's phase
// taxonomy; backend threads report it before executing each request.
func CallPhase(c *rpcproto.Call) Phase {
	switch c.ID {
	case cuda.CallMemcpy, cuda.CallMemcpyAsync:
		if c.Dir == cuda.D2H {
			return PhaseD2H
		}
		return PhaseH2D
	case cuda.CallLaunch:
		return PhaseKL
	default:
		return PhaseDFL
	}
}

// GatesOnDispatch reports whether a call submits GPU work and therefore
// must wait for the Dispatcher's wake signal.
func GatesOnDispatch(id cuda.CallID) bool {
	switch id {
	case cuda.CallMemcpy, cuda.CallMemcpyAsync, cuda.CallLaunch:
		return true
	default:
		return false
	}
}
