package devsched

import (
	"fmt"
	"testing"

	"repro/internal/gpu"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

func testDev(k *sim.Kernel) *gpu.Device {
	spec := gpu.Spec{
		Name: "t", ComputeRate: 1000, MemBandwidth: 100,
		H2DBandwidth: 10, D2HBandwidth: 10, CopyEngines: 2,
		ContextSwitch: 0, TimeSlice: sim.Millisecond, MemBytes: 1 << 20, Weight: 1,
	}
	return gpu.NewDevice(k, spec, 0)
}

func constBacklog(n int) func() int { return func() int { return n } }

func TestRegisterAssignsSignalIDs(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, testDev(k), 0, AllAwake{}, Config{})
	e1 := s.Register(1, 10, 1, "DC", constBacklog(0))
	e2 := s.Register(2, 11, 1, "MC", constBacklog(0))
	if e1.SignalID == e2.SignalID {
		t.Fatal("signal ids collide")
	}
	if !e1.Awake || !e2.Awake {
		t.Fatal("AllAwake entries should be born awake")
	}
	if s.Entry(1) != e1 || s.Entry(99) != nil {
		t.Fatal("Entry lookup broken")
	}
	if got := len(s.Entries()); got != 2 {
		t.Fatalf("Entries = %d", got)
	}
}

func TestUnregisterProducesFeedback(t *testing.T) {
	k := sim.NewKernel(1)
	dev := testDev(k)
	s := New(k, dev, 3, AllAwake{}, Config{})
	var got *rpcproto.Feedback
	s.OnUnregister = func(fb *rpcproto.Feedback) { got = fb }
	k.Go("app", func(p *sim.Proc) {
		s.Register(1, 10, 1, "DC", constBacklog(0))
		st := dev.NewContext().NewStream()
		op := &gpu.Op{Kind: gpu.OpKernel, Compute: 50000, AppID: 1}
		p.Wait(st.Submit(op))
		p.Sleep(50) // total wall 100us, GPU 50us
		fb := s.Unregister(1)
		if fb == nil {
			t.Error("no feedback returned")
			return
		}
		if fb.Kind != "DC" || fb.GID != 3 {
			t.Errorf("feedback identity: %+v", fb)
		}
		if fb.GPUTime != 50 {
			t.Errorf("GPUTime = %v, want 50us", fb.GPUTime)
		}
		if fb.GPUUtil < 0.45 || fb.GPUUtil > 0.55 {
			t.Errorf("GPUUtil = %v, want ~0.5", fb.GPUUtil)
		}
	})
	k.Run()
	if got == nil {
		t.Fatal("OnUnregister not invoked")
	}
	if s.Entry(1) != nil {
		t.Fatal("entry not removed")
	}
}

func TestLASPicksLeastAttained(t *testing.T) {
	e1 := &Entry{AppID: 1, CGS: 100, Backlog: constBacklog(1)}
	e2 := &Entry{AppID: 2, CGS: 10, Backlog: constBacklog(1)}
	e3 := &Entry{AppID: 3, CGS: 5, Backlog: constBacklog(0)} // no work
	e4 := &Entry{AppID: 4, CGS: 50, Backlog: constBacklog(1)}
	e5 := &Entry{AppID: 5, CGS: 70, Backlog: constBacklog(1)}
	cfg := DefaultConfig()
	got := LAS{}.Pick(0, []*Entry{e1, e2, e3, e4, e5}, &cfg)
	if len(got) != lasWidth {
		t.Fatalf("LAS picked %d entries, want %d", len(got), lasWidth)
	}
	// Least-attained first; the idle entry is never picked.
	if got[0].AppID != 2 || got[1].AppID != 4 || got[2].AppID != 5 {
		ids := []int{got[0].AppID, got[1].AppID, got[2].AppID}
		t.Fatalf("LAS picked %v, want [2 4 5]", ids)
	}
	for _, e := range got {
		if e.AppID == 3 {
			t.Fatal("LAS picked the workless entry")
		}
	}
}

func TestLASNooneHasWork(t *testing.T) {
	cfg := DefaultConfig()
	if got := (LAS{}).Pick(0, []*Entry{{AppID: 1, Backlog: constBacklog(0)}}, &cfg); got != nil {
		t.Fatalf("LAS picked %v with no work", got)
	}
}

func TestTFSAlternatesTenantsBySlice(t *testing.T) {
	cfg := DefaultConfig()
	tfs := NewTFS()
	e1 := &Entry{AppID: 1, TenantID: 100, Weight: 1, Backlog: constBacklog(1)}
	e2 := &Entry{AppID: 2, TenantID: 200, Weight: 1, Backlog: constBacklog(1)}
	entries := []*Entry{e1, e2}

	first := tfs.Pick(0, entries, &cfg)
	if len(first) != 1 {
		t.Fatalf("picked %d entries", len(first))
	}
	winner := first[0].TenantID
	// Same instant re-pick: slice unexpired, same tenant.
	again := tfs.Pick(1*sim.Millisecond, entries, &cfg)
	if again[0].TenantID != winner {
		t.Fatal("TFS switched tenants mid-slice")
	}
	// The winner accrues service; after slice expiry the other tenant runs.
	first[0].Attained = 30 * sim.Millisecond
	next := tfs.Pick(cfg.TFSBaseSlice+1, entries, &cfg)
	if next[0].TenantID == winner {
		t.Fatal("TFS did not rotate to the starved tenant")
	}
}

func TestTFSWeightsScaleSlices(t *testing.T) {
	cfg := DefaultConfig()
	tfs := NewTFS()
	e1 := &Entry{AppID: 1, TenantID: 100, Weight: 3, Backlog: constBacklog(1)}
	e2 := &Entry{AppID: 2, TenantID: 200, Weight: 1, Backlog: constBacklog(1)}
	got := tfs.Pick(0, []*Entry{e1, e2}, &cfg)
	if got[0].TenantID != 100 && got[0].TenantID != 200 {
		t.Fatal("no pick")
	}
	// Whoever won, its slice should be weight-scaled.
	want := cfg.TFSBaseSlice * sim.Time(got[0].Weight)
	if tfs.turnLen != want {
		t.Fatalf("slice = %v, want %v", tfs.turnLen, want)
	}
}

func TestTFSWorkConserving(t *testing.T) {
	cfg := DefaultConfig()
	tfs := NewTFS()
	e1 := &Entry{AppID: 1, TenantID: 100, Weight: 1, Backlog: constBacklog(0)}
	e2 := &Entry{AppID: 2, TenantID: 200, Weight: 1, Backlog: constBacklog(1)}
	got := tfs.Pick(0, []*Entry{e1, e2}, &cfg)
	if len(got) != 1 || got[0].TenantID != 200 {
		t.Fatalf("TFS picked %v; idle tenant should be skipped", got)
	}
	// All idle → nothing awake.
	e2.Backlog = constBacklog(0)
	if got := tfs.Pick(sim.Second, []*Entry{e1, e2}, &cfg); got != nil {
		t.Fatalf("picked %v with no work anywhere", got)
	}
}

func TestTFSPenalizesOvershoot(t *testing.T) {
	cfg := DefaultConfig()
	tfs := NewTFS()
	e1 := &Entry{AppID: 1, TenantID: 100, Weight: 1, Backlog: constBacklog(1)}
	e2 := &Entry{AppID: 2, TenantID: 200, Weight: 1, Backlog: constBacklog(1)}
	entries := []*Entry{e1, e2}
	first := tfs.Pick(0, entries, &cfg)
	winner := first[0]
	// The winner massively overshoots its slice (async work landing late).
	winner.Attained = 10 * cfg.TFSBaseSlice
	tfs.Pick(cfg.TFSBaseSlice+1, entries, &cfg)
	if tfs.penalty[winner.TenantID] <= 0 {
		t.Fatal("no overshoot penalty recorded")
	}
}

func TestPSOnePerPhase(t *testing.T) {
	cfg := DefaultConfig()
	mk := func(id int, ph Phase, att sim.Time) *Entry {
		return &Entry{AppID: id, Phase: ph, Attained: att, Backlog: constBacklog(1)}
	}
	entries := []*Entry{
		mk(1, PhaseKL, 100),
		mk(2, PhaseKL, 50), // least attained KL
		mk(3, PhaseH2D, 10),
		mk(4, PhaseD2H, 10),
		mk(5, PhaseDFL, 0),
	}
	got := PS{}.Pick(0, entries, &cfg)
	if len(got) != 3 {
		t.Fatalf("PS picked %d, want 3", len(got))
	}
	ids := map[int]bool{}
	for _, e := range got {
		ids[e.AppID] = true
	}
	if !ids[2] || !ids[3] || !ids[4] {
		t.Fatalf("PS picked %v, want {2,3,4}", ids)
	}
}

func TestPSFillsSlotsByPriority(t *testing.T) {
	cfg := DefaultConfig()
	entries := []*Entry{
		{AppID: 1, Phase: PhaseKL, Attained: 0, Backlog: constBacklog(1)},
		{AppID: 2, Phase: PhaseKL, Attained: 5, Backlog: constBacklog(1)},
		{AppID: 3, Phase: PhaseKL, Attained: 9, Backlog: constBacklog(1)},
		{AppID: 4, Phase: PhaseDFL, Attained: 0, Backlog: constBacklog(1)},
	}
	got := PS{}.Pick(0, entries, &cfg)
	if len(got) != 3 {
		t.Fatalf("PS picked %d, want 3", len(got))
	}
	// All three slots go to KL candidates before DFL.
	for _, e := range got {
		if e.Phase != PhaseKL {
			t.Fatalf("PS filled slot with %v before exhausting KL", e.Phase)
		}
	}
}

func TestPSIdleTreatedAsDefault(t *testing.T) {
	cfg := DefaultConfig()
	entries := []*Entry{
		{AppID: 1, Phase: PhaseIdle, Backlog: constBacklog(1)},
	}
	got := PS{}.Pick(0, entries, &cfg)
	if len(got) != 1 {
		t.Fatalf("PS ignored an idle-phase entry with work")
	}
}

func TestDispatcherGatesThreads(t *testing.T) {
	// Two fake backend threads submit kernels gated by LAS: the device
	// should never see both contexts' work interleaved in a way that lets
	// the high-CGS thread run while the low-CGS one has work.
	k := sim.NewKernel(1)
	dev := testDev(k)
	cfg := Config{Epoch: 100 * sim.Microsecond}
	s := New(k, dev, 0, LAS{}, cfg)
	ctx := dev.NewContext()
	type bt struct {
		entry   *Entry
		pending int
	}
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		st := ctx.NewStream()
		b := &bt{pending: 5}
		b.entry = s.Register(i+1, int64(i), 1, "X", func() int { return b.pending })
		k.Go("bt", func(p *sim.Proc) {
			for j := 0; j < 5; j++ {
				s.WaitTurn(p, b.entry)
				ev := st.Submit(&gpu.Op{Kind: gpu.OpKernel, Compute: 20000, AppID: i + 1})
				p.Wait(ev)
				b.pending--
			}
			done[i] = p.Now()
		})
	}
	k.Run()
	if done[0] == 0 || done[1] == 0 {
		t.Fatal("threads did not finish under dispatcher gating")
	}
	// Service should be near-equal: LAS alternates between equal jobs.
	a, b := dev.AppService(1), dev.AppService(2)
	if a != b {
		t.Fatalf("services %v vs %v, want equal for symmetric jobs", a, b)
	}
	s.Close()
}

func TestWaitTurnReleasesImmediatelyWhenAwake(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, testDev(k), 0, AllAwake{}, Config{})
	e := s.Register(1, 1, 1, "X", constBacklog(1))
	var waited sim.Time
	k.Go("bt", func(p *sim.Proc) {
		t0 := p.Now()
		s.WaitTurn(p, e)
		waited = p.Now() - t0
	})
	k.Run()
	if waited != 0 {
		t.Fatalf("WaitTurn blocked %v for an awake entry", waited)
	}
}

func TestPhaseStrings(t *testing.T) {
	for ph, want := range map[Phase]string{
		PhaseIdle: "IDLE", PhaseDFL: "DFL", PhaseH2D: "H2D",
		PhaseD2H: "D2H", PhaseKL: "KL",
	} {
		if ph.String() != want {
			t.Fatalf("%d.String() = %q, want %q", ph, ph.String(), want)
		}
	}
	if Phase(9).String() != "Phase(9)" {
		t.Fatal("unknown phase formatting")
	}
}

func TestOpPhaseMapping(t *testing.T) {
	if opPhase(gpu.OpH2D) != PhaseH2D || opPhase(gpu.OpD2H) != PhaseD2H || opPhase(gpu.OpKernel) != PhaseKL {
		t.Fatal("opPhase mapping wrong")
	}
}

func TestWeightDefaultsToOne(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, testDev(k), 0, AllAwake{}, Config{})
	e := s.Register(1, 1, 0, "X", constBacklog(0))
	if e.Weight != 1 {
		t.Fatalf("weight = %d, want 1", e.Weight)
	}
}

func TestConfigDefaults(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, testDev(k), 0, nil, Config{})
	if _, ok := s.Policy().(AllAwake); !ok {
		t.Fatal("nil policy should become AllAwake")
	}
	if s.cfg.Epoch != DefaultConfig().Epoch || s.cfg.LASDecay != 0.8 {
		t.Fatalf("defaults not applied: %+v", s.cfg)
	}
}

func TestPSDispatcherKeepsAtMostThreeAwake(t *testing.T) {
	// Six backend threads with rotating phases under a live PS dispatcher:
	// the awake set must never exceed the engine-slot count.
	k := sim.NewKernel(1)
	dev := testDev(k)
	s := New(k, dev, 0, PS{}, Config{Epoch: 50 * sim.Microsecond})
	ctx := dev.NewContext()
	maxAwake := 0
	countAwake := func() {
		n := 0
		for _, e := range s.Entries() {
			if e.Awake {
				n++
			}
		}
		if n > maxAwake {
			maxAwake = n
		}
	}
	for i := 0; i < 6; i++ {
		i := i
		st := ctx.NewStream()
		pending := 6
		e := s.Register(i+1, int64(i), 1, "X", func() int { return pending })
		k.Go(fmt.Sprintf("bt%d", i), func(p *sim.Proc) {
			for j := 0; j < 6; j++ {
				var op *gpu.Op
				switch (i + j) % 3 {
				case 0:
					s.SetPhase(i+1, PhaseKL)
					op = &gpu.Op{Kind: gpu.OpKernel, Compute: 5000, AppID: i + 1}
				case 1:
					s.SetPhase(i+1, PhaseH2D)
					op = &gpu.Op{Kind: gpu.OpH2D, Bytes: 100, AppID: i + 1}
				default:
					s.SetPhase(i+1, PhaseD2H)
					op = &gpu.Op{Kind: gpu.OpD2H, Bytes: 100, AppID: i + 1}
				}
				s.WaitTurn(p, e)
				countAwake()
				p.Wait(st.Submit(op))
				pending--
			}
		})
	}
	k.Run()
	if maxAwake > 3 {
		t.Fatalf("PS kept %d threads awake, cap is 3", maxAwake)
	}
	if maxAwake == 0 {
		t.Fatal("nothing ever ran")
	}
}
