package devsched

import (
	"sort"

	"repro/internal/sim"
)

// Policy decides which backend threads are awake in the coming epoch.
// Implementations must be deterministic given the entry list (which the
// Scheduler supplies in app-id order).
type Policy interface {
	Name() string
	// Pick returns the entries to keep awake until the next evaluation.
	Pick(now sim.Time, entries []*Entry, cfg *Config) []*Entry
}

// AllAwake is the pass-through policy: every backend thread may submit at
// will. It is the device policy in the pure workload-balancing experiments.
type AllAwake struct{}

// Name implements Policy.
func (AllAwake) Name() string { return "none" }

// Pick implements Policy.
func (AllAwake) Pick(now sim.Time, entries []*Entry, cfg *Config) []*Entry { return entries }

// LAS is Least Attained Service: each epoch the threads whose decayed
// cumulative GPU service (eq. 1) is smallest — among threads with pending
// requests — get priority. Short-episode jobs finish sooner, minimizing CPU
// stall time and maximizing throughput, at a known cost in fairness. The
// dispatcher keeps the two least-served threads awake: the top priority
// level runs, and one runner-up keeps the device's remaining engines from
// idling while the leader is between requests.
type LAS struct{}

// lasWidth is the number of priority levels kept awake.
const lasWidth = 3

// Name implements Policy.
func (LAS) Name() string { return "LAS" }

// Pick implements Policy.
func (LAS) Pick(now sim.Time, entries []*Entry, cfg *Config) []*Entry {
	var work []*Entry
	for _, e := range entries {
		if e.HasWork() {
			work = append(work, e)
		}
	}
	sort.Slice(work, func(i, j int) bool {
		if work[i].CGS != work[j].CGS {
			return work[i].CGS < work[j].CGS
		}
		return work[i].AppID < work[j].AppID
	})
	if len(work) > lasWidth {
		work = work[:lasWidth]
	}
	return work
}

// TFS is True Fair-Share: tenants receive GPU residency proportional to
// their weights. At most one tenant's threads are awake at a time; a usage
// history penalizes tenants that overshoot their slice (asynchronously
// submitted work keeps accruing after the thread sleeps), and unused shares
// redistribute to tenants with work (work conservation).
type TFS struct {
	usage    map[int64]float64 // attained service per tenant
	penalty  map[int64]float64
	current  int64
	sliceEnd sim.Time
	turnBase float64 // tenant usage at turn start
	turnLen  sim.Time
	active   bool
}

// NewTFS returns a fresh fair-share policy instance (state is per device).
func NewTFS() *TFS {
	return &TFS{usage: make(map[int64]float64), penalty: make(map[int64]float64)}
}

// Name implements Policy.
func (t *TFS) Name() string { return "TFS" }

// Pick implements Policy.
func (t *TFS) Pick(now sim.Time, entries []*Entry, cfg *Config) []*Entry {
	// Refresh per-tenant usage from entry accounting.
	tenants := map[int64]*tenantView{}
	order := []int64{}
	for _, e := range entries {
		tv, ok := tenants[e.TenantID]
		if !ok {
			tv = &tenantView{id: e.TenantID, weight: e.Weight}
			tenants[e.TenantID] = tv
			order = append(order, e.TenantID)
		}
		tv.attained += float64(e.Attained)
		if e.HasWork() {
			tv.work = append(tv.work, e)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, id := range order {
		t.usage[id] = tenants[id].attained
	}

	if t.active {
		if cur, ok := tenants[t.current]; ok && now < t.sliceEnd && len(cur.work) > 0 {
			return cur.work // slice still valid
		}
		// Turn over: penalize overshoot beyond the allocated slice.
		if cur, ok := tenants[t.current]; ok {
			used := cur.attained - t.turnBase
			alloc := float64(t.turnLen)
			if used > alloc {
				t.penalty[t.current] += used - alloc
			}
		}
		t.active = false
	}

	// Choose the tenant with the least weighted (usage + penalty) among
	// tenants with pending work — the "least attained fair share".
	var best *tenantView
	var bestKey float64
	for _, id := range order {
		tv := tenants[id]
		if len(tv.work) == 0 {
			continue
		}
		key := (t.usage[id] + t.penalty[id]) / float64(tv.weight)
		if best == nil || key < bestKey || (key == bestKey && id < best.id) {
			best, bestKey = tv, key
		}
	}
	if best == nil {
		return nil
	}
	t.current = best.id
	t.turnLen = cfg.TFSBaseSlice * sim.Time(best.weight)
	t.sliceEnd = now + t.turnLen
	t.turnBase = best.attained
	t.active = true
	return best.work
}

type tenantView struct {
	id       int64
	weight   int
	attained float64
	work     []*Entry
}

// PS is Phase Selection: wake one thread per GPU engine phase so that the
// kernel engine and both copy engines stay busy simultaneously — the
// "guitar chord" the scheduler is named after. Unfilled engine slots fall
// back to the phase priority KL > H2D = D2H > DFL; ties within a phase go to
// the thread with least attained service, which keeps PS nearly as fair as
// TFS.
type PS struct{}

// Name implements Policy.
func (PS) Name() string { return "PS" }

// Pick implements Policy.
func (PS) Pick(now sim.Time, entries []*Entry, cfg *Config) []*Entry {
	// Candidates with work, grouped by phase, each group ordered by least
	// attained service.
	groups := map[Phase][]*Entry{}
	for _, e := range entries {
		if !e.HasWork() {
			continue
		}
		ph := e.Phase
		if ph == PhaseIdle {
			ph = PhaseDFL
		}
		groups[ph] = append(groups[ph], e)
	}
	// Order each group over the fixed phase list rather than by ranging the
	// map: sorting is per-group and so order-independent, but iterating the
	// known phases keeps the loop mechanically deterministic (maporder).
	for _, ph := range []Phase{PhaseKL, PhaseH2D, PhaseD2H, PhaseDFL} {
		g := groups[ph]
		sort.Slice(g, func(i, j int) bool {
			if g[i].Attained != g[j].Attained {
				return g[i].Attained < g[j].Attained
			}
			return g[i].AppID < g[j].AppID
		})
	}
	const slots = 3
	picked := make([]*Entry, 0, slots)
	used := map[int]bool{}
	take := func(ph Phase) bool {
		for _, e := range groups[ph] {
			if !used[e.AppID] {
				picked = append(picked, e)
				used[e.AppID] = true
				return true
			}
		}
		return false
	}
	// One per engine first: kernel, then the two copy directions.
	take(PhaseKL)
	take(PhaseH2D)
	take(PhaseD2H)
	// Fill remaining slots by phase priority.
	for _, ph := range []Phase{PhaseKL, PhaseH2D, PhaseD2H, PhaseDFL} {
		for len(picked) < slots && take(ph) {
		}
		if len(picked) >= slots {
			break
		}
	}
	return picked
}
