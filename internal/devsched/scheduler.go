package devsched

import (
	"fmt"
	"sort"

	"repro/internal/gpu"
	"repro/internal/rpcproto"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config tunes the scheduler.
type Config struct {
	// Epoch is the dispatcher's re-evaluation period (the scheduling
	// epoch). The LAS time quantum and TFS slices are multiples of it.
	Epoch sim.Time

	// TFSBaseSlice is the per-weight-unit residency slice of TFS.
	TFSBaseSlice sim.Time

	// LASDecay is k in CGS_n = k·GS_n + (1-k)·CGS_{n-1}; the paper uses
	// 0.8.
	LASDecay float64

	// AccountingLag is the staleness of the Request Monitor's view of
	// attained service. Strings reads per-stream accounting continuously
	// (lag 0); Rain's per-process backends only observe usage at request
	// boundaries, which the paper identifies as the source of its
	// scheduling error. The scheduler refreshes an entry's accounting only
	// when at least this much time has passed since its last refresh.
	AccountingLag sim.Time
}

// DefaultConfig returns the configuration used in the experiments.
func DefaultConfig() Config {
	return Config{
		Epoch:        5 * sim.Millisecond,
		TFSBaseSlice: 20 * sim.Millisecond,
		LASDecay:     0.8,
	}
}

// Scheduler is the per-device GPU scheduler.
type Scheduler struct {
	k      *sim.Kernel
	dev    *gpu.Device
	gid    int
	cfg    Config
	policy Policy

	entries      []*Entry // maintained in ascending AppID order
	byApp        map[int]*Entry
	gen          uint64 // dispatcher pick generation (see dispatch)
	nextSig      int
	kick         *sim.Signal
	kicked       bool
	running      bool
	closed       bool
	rec          *trace.Recorder
	OnUnregister func(fb *rpcproto.Feedback) // Feedback Engine sink
}

// SetRecorder installs the observability recorder: registrations,
// unregistrations and dispatcher wake/sleep transitions then emit events,
// and WaitTurn parks emit spans. A nil recorder disables all of it.
func (s *Scheduler) SetRecorder(rec *trace.Recorder) { s.rec = rec }

// New creates a scheduler for dev (identified cluster-wide by gid) with the
// given policy; AllAwake (nil policy) disables dispatch gating.
func New(k *sim.Kernel, dev *gpu.Device, gid int, policy Policy, cfg Config) *Scheduler {
	if policy == nil {
		policy = AllAwake{}
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = DefaultConfig().Epoch
	}
	if cfg.TFSBaseSlice <= 0 {
		cfg.TFSBaseSlice = DefaultConfig().TFSBaseSlice
	}
	if cfg.LASDecay <= 0 || cfg.LASDecay > 1 {
		cfg.LASDecay = DefaultConfig().LASDecay
	}
	s := &Scheduler{
		k:      k,
		dev:    dev,
		gid:    gid,
		cfg:    cfg,
		policy: policy,
		byApp:  make(map[int]*Entry),
		kick:   k.NewSignal(),
	}
	return s
}

// Device returns the scheduled device.
func (s *Scheduler) Device() *gpu.Device { return s.dev }

// Policy returns the active policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// Register performs the Request Manager's registration: it creates the RCB
// entry, assigns the thread its signal id (the 3-way handshake's step 2) and
// returns the entry whose Wake signal the backend thread must honour. The
// backlog callback lets the dispatcher see whether the thread has pending
// requests.
func (s *Scheduler) Register(appID int, tenant int64, weight int, kind string, backlog func() int) *Entry {
	if weight <= 0 {
		weight = 1
	}
	s.nextSig++
	e := &Entry{
		AppID:      appID,
		TenantID:   tenant,
		Weight:     weight,
		Kind:       kind,
		Registered: s.k.Now(),
		Backlog:    backlog,
		Wake:       s.k.NewSignal(),
		SignalID:   s.nextSig,
		Phase:      PhaseIdle,
	}
	// With the pass-through policy threads are born awake; real policies
	// gate them through the dispatcher.
	if _, ok := s.policy.(AllAwake); ok {
		e.Awake = true
	}
	// Insert in AppID order: the dispatcher hands s.entries to the policy
	// directly, and the Policy contract promises app-id order.
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].AppID >= appID })
	s.entries = append(s.entries, nil)
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = e
	s.byApp[appID] = e
	s.rec.Event(trace.KRegister, s.k.Now(), kind, appID, s.gid, int64(e.SignalID))
	s.ensureDispatcher()
	s.Kick()
	return e
}

// Unregister removes the application from the RCB, harvesting its feedback
// through the Feedback Engine sink.
func (s *Scheduler) Unregister(appID int) *rpcproto.Feedback {
	e, ok := s.byApp[appID]
	if !ok {
		return nil
	}
	s.refreshEntry(e)
	fb := e.feedback(s.k.Now(), s.gid)
	e.exited = true
	delete(s.byApp, appID)
	for i, x := range s.entries {
		if x == e {
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			break
		}
	}
	s.rec.Event(trace.KUnregister, s.k.Now(), e.Kind, appID, s.gid, int64(fb.GPUTime))
	if s.OnUnregister != nil {
		s.OnUnregister(fb)
	}
	s.Kick()
	return fb
}

// Entry returns the RCB entry for an app, or nil.
func (s *Scheduler) Entry(appID int) *Entry { return s.byApp[appID] }

// Entries returns a copy of the live RCB entries, sorted by app id (the
// order the scheduler maintains internally).
func (s *Scheduler) Entries() []*Entry {
	return append([]*Entry(nil), s.entries...)
}

// SetPhase records the thread's current GPU phase and nudges the dispatcher
// (PS reacts to phase changes).
func (s *Scheduler) SetPhase(appID int, ph Phase) {
	if e, ok := s.byApp[appID]; ok {
		s.SetPhaseEntry(e, ph)
	}
}

// SetPhaseEntry is SetPhase for callers that hold the RCB entry (backend
// threads get it from Register), skipping the per-call app-id lookup.
func (s *Scheduler) SetPhaseEntry(e *Entry, ph Phase) {
	if e.Phase != ph {
		e.Phase = ph
		if _, isPS := s.policy.(*PS); isPS {
			s.Kick()
		}
	}
}

// WaitTurn parks the backend thread until the dispatcher has it awake. A
// sleeping thread arriving with fresh work nudges the dispatcher so an idle
// device never sits on a parked request until the next epoch.
func (s *Scheduler) WaitTurn(p *sim.Proc, e *Entry) {
	if e.Awake {
		return
	}
	sp := s.rec.Begin(trace.KWait, 0, p.Now(), "wait-turn", e.AppID, s.gid, int64(e.SignalID))
	s.Kick()
	for !e.Awake {
		p.WaitSignal(e.Wake)
	}
	s.rec.End(sp, p.Now())
}

// Kick forces a dispatcher re-evaluation at the current instant.
func (s *Scheduler) Kick() {
	s.kicked = true
	s.kick.Notify()
}

// Close stops the dispatcher once it next wakes.
func (s *Scheduler) Close() {
	s.closed = true
	s.Kick()
}

// ensureDispatcher starts the dispatcher process on first registration.
// AllAwake needs no dispatcher.
func (s *Scheduler) ensureDispatcher() {
	if s.running {
		return
	}
	if _, ok := s.policy.(AllAwake); ok {
		return
	}
	s.running = true
	s.k.Go(nameFor(s.gid), s.dispatch)
}

func nameFor(gid int) string {
	return fmt.Sprintf("devsched-%d", gid)
}

// dispatch is the Dispatcher loop: every epoch (or kick) it refreshes the
// Request Monitor's accounting and applies the policy's wake set.
//
//strings:hotpath
func (s *Scheduler) dispatch(p *sim.Proc) {
	for {
		if s.closed {
			return
		}
		if len(s.entries) == 0 {
			s.kicked = false
			p.WaitSignal(s.kick)
			continue
		}
		s.refresh()
		// The policy sees the live slice (already app-id ordered; policies
		// never reorder it). Picks are marked with a generation counter on
		// the entry, replacing a per-epoch set allocation.
		s.gen++
		awake := s.policy.Pick(p.Now(), s.entries, &s.cfg)
		for _, e := range awake {
			e.pickGen = s.gen
		}
		anyWork := false
		for _, e := range s.entries {
			if e.HasWork() {
				anyWork = true
			}
			want := e.pickGen == s.gen
			if want && !e.Awake {
				e.Awake = true
				e.Wake.Notify()
				s.rec.Event(trace.KWake, p.Now(), "", e.AppID, s.gid, 0)
			} else if !want && e.Awake {
				e.Awake = false
				s.rec.Event(trace.KSleep, p.Now(), "", e.AppID, s.gid, 0)
			}
		}
		s.kicked = false
		if !anyWork {
			// Nothing to arbitrate: sleep until a thread shows up with
			// work (WaitTurn kicks) or membership changes.
			p.WaitSignal(s.kick)
			continue
		}
		p.WaitSignalTimeout(s.kick, s.cfg.Epoch)
	}
}

// refresh updates every entry's Request Monitor state from the device.
func (s *Scheduler) refresh() {
	for _, e := range s.entries {
		s.refreshEntry(e)
	}
}

// refreshEntry pulls the device-side accounting for one entry and advances
// the decayed-service estimate (eq. 1) across the epoch boundary. The
// scheduler's view includes any context-switch overhead the driver charged
// to the application: a per-process-context runtime (Rain) cannot tell the
// two apart, which is the accounting error the paper attributes Rain's
// fairness loss to. Under Strings' packed context the charge is always
// zero, so the view is exact.
func (s *Scheduler) refreshEntry(e *Entry) {
	now := s.k.Now()
	if s.cfg.AccountingLag > 0 && e.lastRefresh != 0 && now-e.lastRefresh < s.cfg.AccountingLag {
		return
	}
	e.lastRefresh = now
	cur := s.dev.AppService(e.AppID) + s.dev.AppSwitchCharge(e.AppID)
	gs := cur - e.epochSample
	if gs < 0 {
		gs = 0
	}
	e.epochSample = cur
	e.Attained = cur
	e.XferTime = s.dev.AppTransferTime(e.AppID)
	e.MemTraffic = s.dev.AppMemTraffic(e.AppID)
	k := s.cfg.LASDecay
	e.CGS = k*float64(gs) + (1-k)*e.CGS
}
