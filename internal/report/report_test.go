package report

import (
	"encoding/xml"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func sample() *metrics.Table {
	t := &metrics.Table{Title: "Fig X <demo>", Labels: []string{"A", "B", "C"}}
	t.Add("GRR-Rain", []float64{1.5, 2.0, 1.0})
	t.Add("GWtMin-Strings", []float64{3.2, 4.1, 2.2})
	return t
}

func TestBarChartWellFormed(t *testing.T) {
	svg := BarChart(sample(), ChartOptions{})
	if err := xml.Unmarshal([]byte(svg), new(interface{})); err != nil {
		t.Fatalf("SVG is not well-formed XML: %v", err)
	}
	// 2 series × 3 groups of bars plus the legend swatches (2).
	if got := strings.Count(svg, "<rect"); got != 8 {
		t.Fatalf("rect count = %d, want 8", got)
	}
	if !strings.Contains(svg, "&lt;demo&gt;") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "GWtMin-Strings / B: 4.100") {
		t.Fatal("tooltips missing")
	}
}

func TestBarChartEmptyAndNegative(t *testing.T) {
	empty := &metrics.Table{Title: "empty"}
	svg := BarChart(empty, ChartOptions{Width: 300, Height: 200})
	if err := xml.Unmarshal([]byte(svg), new(interface{})); err != nil {
		t.Fatalf("empty chart invalid: %v", err)
	}
	neg := &metrics.Table{Title: "neg", Labels: []string{"x"}}
	neg.Add("s", []float64{-5})
	svg = BarChart(neg, ChartOptions{})
	if strings.Contains(svg, `height="-`) {
		t.Fatal("negative bar height emitted")
	}
}

func TestBarChartShortSeriesPadded(t *testing.T) {
	tb := &metrics.Table{Title: "t", Labels: []string{"a", "b"},
		Series: []metrics.Series{{Name: "s", Values: []float64{1}}}} // shorter than labels
	svg := BarChart(tb, ChartOptions{})
	if err := xml.Unmarshal([]byte(svg), new(interface{})); err != nil {
		t.Fatalf("padded chart invalid: %v", err)
	}
}

func TestPageRenderAndWrite(t *testing.T) {
	p := NewPage("Strings reproduction <report>")
	p.AddTable(sample())
	p.AddPre("Fig 2", "sequential |███|\nconcurrent |█  |")
	doc := p.Render()
	for _, want := range []string{
		"<!DOCTYPE html>", "&lt;report&gt;", "<svg", "numbers", "sequential",
	} {
		if !strings.Contains(doc, want) {
			t.Fatalf("document missing %q", want)
		}
	}
	path := filepath.Join(t.TempDir(), "r.html")
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		t.Fatalf("written file: %v, %d bytes", err, len(data))
	}
}

func TestFiniteHelper(t *testing.T) {
	if !finite(1.0) || finite(1/zero()) {
		t.Fatal("finite() misbehaves")
	}
}

func zero() float64 { return 0 }
