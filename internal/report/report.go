// Package report renders experiment results as a standalone HTML page with
// inline SVG bar charts — the figure-shaped view of the reproduction,
// built with the standard library only.
package report

import (
	"fmt"
	"html"
	"math"
	"os"
	"strings"

	"repro/internal/metrics"
)

// palette holds the series colors (qualitative, print-safe).
var palette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// ChartOptions tunes BarChart.
type ChartOptions struct {
	Width  int // total SVG width (default 960)
	Height int // total SVG height (default 360)
}

// BarChart renders a grouped bar chart of the table as an SVG fragment.
// Values are clamped at zero (the experiment tables are ratios and
// percentages).
func BarChart(t *metrics.Table, opt ChartOptions) string {
	if opt.Width <= 0 {
		opt.Width = 960
	}
	if opt.Height <= 0 {
		opt.Height = 360
	}
	const (
		marginL = 56
		marginR = 16
		marginT = 28
		marginB = 46
	)
	plotW := float64(opt.Width - marginL - marginR)
	plotH := float64(opt.Height - marginT - marginB)

	maxV := 0.0
	for _, s := range t.Series {
		for _, v := range s.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	maxV *= 1.08

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`,
		opt.Width, opt.Height)
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13" font-weight="bold">%s</text>`,
		marginL, html.EscapeString(t.Title))

	// Horizontal gridlines and y-axis ticks.
	ticks := 5
	for i := 0; i <= ticks; i++ {
		v := maxV * float64(i) / float64(ticks)
		y := marginT + plotH - plotH*float64(i)/float64(ticks)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`,
			marginL, y, opt.Width-marginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" fill="#555">%.2f</text>`,
			marginL-6, y+4, v)
	}

	nGroups := len(t.Labels)
	nSeries := len(t.Series)
	if nGroups > 0 && nSeries > 0 {
		groupW := plotW / float64(nGroups)
		barW := groupW * 0.8 / float64(nSeries)
		for gi, lab := range t.Labels {
			gx := float64(marginL) + groupW*float64(gi)
			for si, s := range t.Series {
				v := 0.0
				if gi < len(s.Values) {
					v = s.Values[gi]
				}
				if v < 0 {
					v = 0
				}
				h := plotH * v / maxV
				x := gx + groupW*0.1 + barW*float64(si)
				y := marginT + plotH - h
				fmt.Fprintf(&b,
					`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s / %s: %.3f</title></rect>`,
					x, y, barW, h, palette[si%len(palette)],
					html.EscapeString(s.Name), html.EscapeString(lab), v)
			}
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" fill="#333">%s</text>`,
				gx+groupW/2, opt.Height-marginB+16, html.EscapeString(lab))
		}
	}

	// Legend.
	lx := marginL
	ly := opt.Height - 14
	for si, s := range t.Series {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`,
			lx, ly-9, palette[si%len(palette)])
		name := html.EscapeString(s.Name)
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#333">%s</text>`, lx+14, ly, name)
		lx += 20 + 7*len(s.Name)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// Page assembles report sections into a standalone HTML document.
type Page struct {
	Title    string
	sections []string
}

// NewPage creates a report page.
func NewPage(title string) *Page { return &Page{Title: title} }

// AddTable appends a chart plus the numeric table.
func (p *Page) AddTable(t *metrics.Table) {
	var b strings.Builder
	b.WriteString(`<section>`)
	b.WriteString(BarChart(t, ChartOptions{}))
	b.WriteString(`<details><summary>numbers</summary><pre>`)
	b.WriteString(html.EscapeString(t.Format()))
	b.WriteString(`</pre></details></section>`)
	p.sections = append(p.sections, b.String())
}

// AddPre appends a preformatted text block (utilization strips, notes).
func (p *Page) AddPre(title, text string) {
	p.sections = append(p.sections,
		fmt.Sprintf(`<section><h3>%s</h3><pre>%s</pre></section>`,
			html.EscapeString(title), html.EscapeString(text)))
}

// Render produces the full HTML document.
func (p *Page) Render() string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">")
	fmt.Fprintf(&b, "<title>%s</title>", html.EscapeString(p.Title))
	b.WriteString(`<style>
body { font-family: sans-serif; margin: 2em auto; max-width: 1040px; color: #222; }
section { margin-bottom: 2.2em; }
pre { background: #f7f7f7; padding: 0.8em; overflow-x: auto; font-size: 12px; }
details summary { cursor: pointer; color: #4e79a7; }
h1 { font-size: 20px; }
</style></head><body>`)
	fmt.Fprintf(&b, "<h1>%s</h1>", html.EscapeString(p.Title))
	for _, s := range p.sections {
		b.WriteString(s)
		b.WriteString("\n")
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

// WriteFile writes the rendered page to path.
func (p *Page) WriteFile(path string) error {
	return os.WriteFile(path, []byte(p.Render()), 0o644)
}

// sanity guard referenced by tests: bar heights must be finite.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
