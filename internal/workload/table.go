// Package workload models the paper's benchmark applications (Table I: six
// long-running CUDA SDK/Rodinia jobs in Group A, four short-running jobs in
// Group B), the 24 A–B workload pairs of the evaluation, and the
// SPECpower-style negative-exponential request arrival process.
//
// Each application is calibrated so that, run alone on the reference device
// (Tesla C2050), its solo runtime, GPU-time fraction, data-transfer fraction
// and kernel memory bandwidth reproduce the characteristics the paper
// reports. The applications are written against cuda.Client exactly as a
// CUDA SDK sample would be: synchronous memcpys and kernel launches on the
// default stream, a device synchronize, and cudaThreadExit — leaving all
// asynchrony for the Strings runtime to recover via interposition.
package workload

import (
	"fmt"

	"repro/internal/sim"
)

// Kind identifies a benchmark application.
type Kind int

// Table I applications.
const (
	DXTC            Kind = iota // DC: texture compression
	Scan                        // SC: prefix sums
	BinomialOptions             // BO: option pricing
	MatrixMultiply              // MM: dense GEMM
	Histogram                   // HI: 64/256-bin histogram
	Eigenvalues                 // EV: symmetric eigensolver
	BlackScholes                // BS: option pricing (short)
	MonteCarlo                  // MC: Monte Carlo pricing (short)
	Gaussian                    // GA: Gaussian elimination (short)
	SortingNetworks             // SN: bitonic sort (short)
	numKinds
)

// Group is the paper's job-length class.
type Group int

// Job groups: A = long-running (10–55 s), B = short-running (< 10 s).
const (
	GroupA Group = iota
	GroupB
)

// Spec is one row of Table I plus the runtime class parameters we calibrate
// against.
type Spec struct {
	Kind  Kind
	Name  string // full benchmark name
	Short string // two-letter code used in the figures
	Group Group
	Input string // input description from Table I

	// Table I characteristics.
	GPUPct  float64 // "GPU Time (in %)": fraction of runtime spent on GPU ops
	XferPct float64 // "Data Transfer (in %)": share of GPU time in memcpys
	MemBWMB float64 // "Memory Bandwidth (in MB/s)": kernel traffic / GPU time

	// Calibration targets.
	SoloRuntime sim.Time // solo completion time on the reference device
	Iters       int      // GPU episodes (iterations) per run
}

// Specs lists the Table I benchmarks in the paper's order (Group A then
// Group B); the 24 pair labels A..X follow this order.
var Specs = [numKinds]Spec{
	DXTC:            {Kind: DXTC, Name: "DXTC", Short: "DC", Group: GroupA, Input: "512 x 512 pixels", GPUPct: 89.31, XferPct: 0.005, MemBWMB: 63.14, SoloRuntime: 30 * sim.Second, Iters: 30},
	Scan:            {Kind: Scan, Name: "Scan", Short: "SC", Group: GroupA, Input: "1K & 256K elements", GPUPct: 10.73, XferPct: 24.99, MemBWMB: 1193.03, SoloRuntime: 14 * sim.Second, Iters: 20},
	BinomialOptions: {Kind: BinomialOptions, Name: "Binomial options", Short: "BO", Group: GroupA, Input: "1024 points; 2048 steps", GPUPct: 41.06, XferPct: 98.88, MemBWMB: 3764.44, SoloRuntime: 22 * sim.Second, Iters: 25},
	MatrixMultiply:  {Kind: MatrixMultiply, Name: "Matrix multiply", Short: "MM", Group: GroupA, Input: "480 x 480 elements", GPUPct: 80.13, XferPct: 0.01, MemBWMB: 2143.26, SoloRuntime: 40 * sim.Second, Iters: 30},
	Histogram:       {Kind: Histogram, Name: "Histogram", Short: "HI", Group: GroupA, Input: "64-bin & 256-bin", GPUPct: 86.51, XferPct: 0.17, MemBWMB: 13736.33, SoloRuntime: 25 * sim.Second, Iters: 25},
	Eigenvalues:     {Kind: Eigenvalues, Name: "Eigenvalues", Short: "EV", Group: GroupA, Input: "8192 x 8192 elements", GPUPct: 41.92, XferPct: 0.73, MemBWMB: 401.27, SoloRuntime: 50 * sim.Second, Iters: 30},
	BlackScholes:    {Kind: BlackScholes, Name: "Blackscholes", Short: "BS", Group: GroupB, Input: "8000000 points; 1024 steps", GPUPct: 24.51, XferPct: 6.23, MemBWMB: 50.23, SoloRuntime: 6 * sim.Second, Iters: 12},
	MonteCarlo:      {Kind: MonteCarlo, Name: "MonteCarlo", Short: "MC", Group: GroupB, Input: "2048 points", GPUPct: 84.86, XferPct: 98.94, MemBWMB: 3047.32, SoloRuntime: 8 * sim.Second, Iters: 16},
	Gaussian:        {Kind: Gaussian, Name: "Gaussian", Short: "GA", Group: GroupB, Input: "50 x 50 elements", GPUPct: 1.14, XferPct: 0.32, MemBWMB: 17.89, SoloRuntime: 2 * sim.Second, Iters: 8},
	SortingNetworks: {Kind: SortingNetworks, Name: "Sorting Networks", Short: "SN", Group: GroupB, Input: "1M elements", GPUPct: 2.05, XferPct: 26.68, MemBWMB: 320.35, SoloRuntime: 3 * sim.Second, Iters: 10},
}

// String returns the two-letter code.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return Specs[k].Short
}

// GroupAKinds and GroupBKinds list the kinds in each class, in Table I
// order.
var (
	GroupAKinds = []Kind{DXTC, Scan, BinomialOptions, MatrixMultiply, Histogram, Eigenvalues}
	GroupBKinds = []Kind{BlackScholes, MonteCarlo, Gaussian, SortingNetworks}
	AllKinds    = []Kind{DXTC, Scan, BinomialOptions, MatrixMultiply, Histogram, Eigenvalues, BlackScholes, MonteCarlo, Gaussian, SortingNetworks}
)

// Pair is one of the 24 Group A × Group B workload mixes.
type Pair struct {
	Label string // "A".."X"
	Long  Kind   // Group A member
	Short Kind   // Group B member
}

// Pairs returns the paper's 24 workload pairs labelled A..X: A=DC-BS,
// B=DC-MC, ..., X=EV-SN, following Table I order.
func Pairs() []Pair {
	var out []Pair
	label := 'A'
	for _, a := range GroupAKinds {
		for _, b := range GroupBKinds {
			out = append(out, Pair{Label: string(label), Long: a, Short: b})
			label++
		}
	}
	return out
}

// String renders the pair as in the paper's prose, e.g. "A(DC-BS)".
func (p Pair) String() string {
	return fmt.Sprintf("%s(%s-%s)", p.Label, p.Long, p.Short)
}
