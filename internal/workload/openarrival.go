package workload

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// Open-arrival tenant streams: where StreamSpec describes a closed set of
// requests from one long-lived tenant, OpenArrivalSpec describes a *birth
// process* — tenants arrive over a horizon, live for a while, issue requests,
// and depart. This is the traffic shape the cluster tier schedules
// (internal/cluster): thousands of small tenants churning instead of a few
// long-running applications.
//
// Everything is a pure function of (seed, spec): the generator draws from the
// caller's seeded source only, so identical seeds reproduce identical
// populations bit for bit — the property the cluster tier's determinism
// battery pins.

// TenantBirth is one tenant of an open-arrival population: when it arrives,
// how long it holds its capacity, and the request stream it issues while
// alive.
type TenantBirth struct {
	// At is the birth instant. Births are monotone non-decreasing across
	// the population, whatever the process.
	At sim.Time

	// Life is the tenant's declared lifetime: the cluster tier's capacity
	// ledger holds the tenant's slots for [At, At+Life).
	Life sim.Time

	// Requests is the number of requests the tenant issues over its life
	// (Life/Lambda, at least one).
	Requests int

	// Kind, Lambda and Weight shape the tenant's request stream.
	Kind   Kind
	Lambda sim.Time
	Weight int

	// Slots is the tenant's capacity demand on the cluster ledger (most
	// tenants demand 1; every BigEvery-th demands BigSlots).
	Slots int
}

// Open-arrival process names.
const (
	// ProcPoisson is a homogeneous Poisson birth process.
	ProcPoisson = "poisson"
	// ProcDiurnal modulates the birth rate sinusoidally around Rate
	// (amplitude Depth, period Period) — the day/night load curve.
	ProcDiurnal = "diurnal"
	// ProcBursty clusters births: burst epochs arrive as a Poisson process
	// and each epoch births a geometric group spread over BurstSpread.
	ProcBursty = "bursty"
)

// hardBirthCap bounds any single generation, whatever the spec claims: a
// pathological rate/horizon pair must exhaust the cap, not memory.
const hardBirthCap = 1 << 21

// OpenArrivalSpec configures one open-arrival tenant stream. The zero value
// is invalid; use ParseOpenArrivalSpec or fill Process/Rate/Horizon and let
// Births apply the remaining defaults.
type OpenArrivalSpec struct {
	// Process selects the birth process: "poisson", "diurnal" or "bursty".
	Process string

	// Rate is the mean tenant birth rate in tenants per virtual second
	// (for every process; diurnal modulates around it, bursty clusters it).
	Rate float64

	// Horizon is the birth window: no tenant is born at or after it.
	Horizon sim.Time

	// MaxTenants, when > 0, caps the population size.
	MaxTenants int

	// Kind is the benchmark class every tenant's requests run (default
	// Gaussian, the lightest Table I profile).
	Kind Kind

	// MeanLife is the mean tenant lifetime. Lifetimes are drawn from a
	// two-phase exponential mixture with this mean: most tenants are
	// short-lived, a heavy tail lives an order of magnitude longer.
	MeanLife sim.Time

	// Lambda is the per-tenant mean request inter-arrival time; a tenant's
	// request count is its lifetime over Lambda.
	Lambda sim.Time

	// Weight is every tenant's fair-share weight (default 1).
	Weight int

	// BigEvery, when > 0, makes every BigEvery-th tenant demand BigSlots
	// capacity slots instead of 1 — the mixed-size population that makes
	// cluster placement fragment.
	BigEvery int
	BigSlots int

	// Diurnal parameters: the instantaneous rate is
	// Rate·(1 − Depth·cos(2πt/Period)), so load troughs at t = 0 and peaks
	// half a period in.
	Period sim.Time
	Depth  float64

	// Bursty parameters: burst epochs arrive at Rate/BurstMean and each
	// births on average BurstMean tenants spread uniformly over BurstSpread.
	BurstMean   float64
	BurstSpread sim.Time
}

// withDefaults fills the optional fields.
func (s OpenArrivalSpec) withDefaults() OpenArrivalSpec {
	if s.MeanLife <= 0 {
		s.MeanLife = 60 * sim.Second
	}
	if s.Lambda <= 0 {
		s.Lambda = sim.Second
	}
	if s.Weight <= 0 {
		s.Weight = 1
	}
	if s.BigEvery > 0 && s.BigSlots <= 0 {
		s.BigSlots = 2
	}
	return s
}

// Validate checks the spec (after defaulting) and returns the first problem
// found. A nil error guarantees Births terminates within the hard cap.
func (s OpenArrivalSpec) Validate() error {
	s = s.withDefaults()
	switch s.Process {
	case ProcPoisson, ProcDiurnal, ProcBursty:
	default:
		return fmt.Errorf("workload: unknown arrival process %q (valid: %s, %s, %s)",
			s.Process, ProcPoisson, ProcDiurnal, ProcBursty)
	}
	if !(s.Rate > 0) || s.Rate > 1e6 {
		return fmt.Errorf("workload: arrival rate must be in (0, 1e6] tenants/s (got %v)", s.Rate)
	}
	if s.Horizon < sim.Time(1) {
		return fmt.Errorf("workload: arrival horizon must be at least 1µs (got %v)", s.Horizon)
	}
	if s.MaxTenants < 0 {
		return fmt.Errorf("workload: MaxTenants must be >= 0 (got %d)", s.MaxTenants)
	}
	if s.Kind < 0 || s.Kind >= numKinds {
		return fmt.Errorf("workload: unknown benchmark kind %d", int(s.Kind))
	}
	if s.BigEvery < 0 {
		return fmt.Errorf("workload: BigEvery must be >= 0 (got %d)", s.BigEvery)
	}
	if s.BigEvery > 0 && s.BigSlots < 2 {
		return fmt.Errorf("workload: BigSlots must be >= 2 when BigEvery is set (got %d)", s.BigSlots)
	}
	switch s.Process {
	case ProcDiurnal:
		if s.Period < sim.Millisecond {
			return fmt.Errorf("workload: diurnal period must be at least 1ms (got %v)", s.Period)
		}
		if s.Depth < 0 || s.Depth > 1 || math.IsNaN(s.Depth) {
			return fmt.Errorf("workload: diurnal depth must be in [0, 1] (got %v)", s.Depth)
		}
	case ProcBursty:
		if !(s.BurstMean >= 1) || s.BurstMean > 1e4 {
			return fmt.Errorf("workload: burst mean must be in [1, 1e4] tenants (got %v)", s.BurstMean)
		}
		if s.BurstSpread < 0 {
			return fmt.Errorf("workload: burst spread must be >= 0 (got %v)", s.BurstSpread)
		}
	}
	return nil
}

// ExpectedTenants estimates the population size (before MaxTenants capping):
// Rate times the horizon, for every process.
func (s OpenArrivalSpec) ExpectedTenants() float64 {
	return s.Rate * s.Horizon.Seconds()
}

// Births materializes the tenant population from the given random source.
// Instants are monotone non-decreasing; the whole population is a pure
// function of (spec, source state), so a source freshly seeded with the same
// seed reproduces it exactly.
func (s OpenArrivalSpec) Births(rng *rand.Rand) ([]TenantBirth, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	limit := hardBirthCap
	if s.MaxTenants > 0 && s.MaxTenants < limit {
		limit = s.MaxTenants
	}

	// Phase 1: birth instants. Each process yields instants in [0, Horizon)
	// that are already non-decreasing except within bursty groups, so one
	// deterministic sort canonicalizes the timeline before any per-tenant
	// attribute is drawn.
	var instants []sim.Time
	switch s.Process {
	case ProcPoisson:
		instants = s.poissonInstants(rng, limit)
	case ProcDiurnal:
		instants = s.diurnalInstants(rng, limit)
	case ProcBursty:
		instants = s.burstyInstants(rng, limit)
	}
	slices.Sort(instants)

	// Phase 2: per-tenant attributes, in birth order.
	births := make([]TenantBirth, len(instants))
	for i, at := range instants {
		life := s.drawLife(rng)
		reqs := int(int64(life) / int64(s.Lambda))
		if reqs < 1 {
			reqs = 1
		}
		slots := 1
		if s.BigEvery > 0 && (i+1)%s.BigEvery == 0 {
			slots = s.BigSlots
		}
		births[i] = TenantBirth{
			At: at, Life: life, Requests: reqs,
			Kind: s.Kind, Lambda: s.Lambda, Weight: s.Weight, Slots: slots,
		}
	}
	return births, nil
}

// meanGap is the process's mean inter-birth gap.
func (s OpenArrivalSpec) meanGap() sim.Time {
	g := sim.Time(1e6 / s.Rate)
	if g < 1 {
		g = 1
	}
	return g
}

// poissonInstants draws a homogeneous Poisson timeline.
func (s OpenArrivalSpec) poissonInstants(rng *rand.Rand, limit int) []sim.Time {
	var out []sim.Time
	gap := s.meanGap()
	t := ExpInterArrival(rng, gap)
	for t < s.Horizon && len(out) < limit {
		out = append(out, t)
		t += ExpInterArrival(rng, gap)
	}
	return out
}

// diurnalInstants draws an inhomogeneous Poisson timeline by Lewis thinning:
// candidates arrive at the peak rate Rate·(1+Depth) and survive with
// probability λ(t)/λmax, which preserves monotonicity by construction and
// the mean rate over whole periods (the cosine integrates to zero).
func (s OpenArrivalSpec) diurnalInstants(rng *rand.Rand, limit int) []sim.Time {
	var out []sim.Time
	peak := s.Rate * (1 + s.Depth)
	gap := sim.Time(1e6 / peak)
	if gap < 1 {
		gap = 1
	}
	t := ExpInterArrival(rng, gap)
	for t < s.Horizon && len(out) < limit {
		phase := 2 * math.Pi * float64(t) / float64(s.Period)
		accept := (1 - s.Depth*math.Cos(phase)) / (1 + s.Depth)
		if rng.Float64() < accept {
			out = append(out, t)
		}
		t += ExpInterArrival(rng, gap)
	}
	return out
}

// burstyInstants draws burst epochs at Rate/BurstMean and, per epoch, a
// geometric group (mean BurstMean) spread uniformly over BurstSpread. Group
// offsets may straddle the next epoch; the caller's sort canonicalizes.
func (s OpenArrivalSpec) burstyInstants(rng *rand.Rand, limit int) []sim.Time {
	var out []sim.Time
	epochGap := sim.Time(1e6 * s.BurstMean / s.Rate)
	if epochGap < 1 {
		epochGap = 1
	}
	t := ExpInterArrival(rng, epochGap)
	for t < s.Horizon && len(out) < limit {
		// Geometric with mean BurstMean, support >= 1.
		n := 1
		for float64(n) < s.BurstMean*10 && rng.Float64() > 1/s.BurstMean {
			n++
		}
		for j := 0; j < n && len(out) < limit; j++ {
			at := t
			if s.BurstSpread > 0 {
				at += sim.Time(rng.Int63n(int64(s.BurstSpread)))
			}
			if at < s.Horizon {
				out = append(out, at)
			}
		}
		t += ExpInterArrival(rng, epochGap)
	}
	return out
}

// Lifetime mixture: most tenants are short-lived, a tail an order of
// magnitude longer, with the overall mean equal to MeanLife
// (0.9·0.5 + 0.1·5.5 = 1).
const (
	lifeTailShare = 0.1
	lifeBodyScale = 0.5
	lifeTailScale = 5.5
)

// drawLife draws one heavy-tailed lifetime with mean MeanLife, floored at
// Lambda so every tenant issues at least one request within its life.
func (s OpenArrivalSpec) drawLife(rng *rand.Rand) sim.Time {
	scale := lifeBodyScale
	if rng.Float64() < lifeTailShare {
		scale = lifeTailScale
	}
	life := ExpInterArrival(rng, sim.Time(scale*float64(s.MeanLife)))
	if life < s.Lambda {
		life = s.Lambda
	}
	return life
}

// KindByCode resolves a Table I two-letter code ("GA", "MC", ...) to its
// Kind, case-insensitively.
func KindByCode(code string) (Kind, bool) {
	for _, k := range AllKinds {
		if strings.EqualFold(Specs[k].Short, code) {
			return k, true
		}
	}
	return 0, false
}

// ParseOpenArrivalSpec parses the textual spec form
//
//	process:key=value,key=value,...
//
// e.g. "poisson:rate=0.5,horizon=2000s,tenants=1000,kind=GA,life=80s,lambda=800ms"
// or "diurnal:rate=2,horizon=600s,period=120s,depth=0.6". Durations use Go
// syntax ("800ms", "1.5s"); keys are rate, horizon, tenants, kind, life,
// lambda, weight, bigevery, bigslots, period, depth, burst, spread. The
// returned spec is validated; invalid text never panics, it errors.
func ParseOpenArrivalSpec(text string) (OpenArrivalSpec, error) {
	var s OpenArrivalSpec
	proc, rest, _ := strings.Cut(text, ":")
	s.Process = strings.ToLower(strings.TrimSpace(proc))
	if rest != "" {
		for _, field := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(field, "=")
			if !ok {
				return s, fmt.Errorf("workload: arrival spec field %q is not key=value", field)
			}
			key = strings.ToLower(strings.TrimSpace(key))
			val = strings.TrimSpace(val)
			if err := s.setField(key, val); err != nil {
				return s, err
			}
		}
	}
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// setField applies one key=value pair of the textual spec form.
func (s *OpenArrivalSpec) setField(key, val string) error {
	parseF := func() (float64, error) {
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, fmt.Errorf("workload: arrival spec %s=%q is not a finite number", key, val)
		}
		return f, nil
	}
	parseD := func() (sim.Time, error) {
		d, err := time.ParseDuration(val)
		if err != nil {
			return 0, fmt.Errorf("workload: arrival spec %s=%q is not a duration: %v", key, val, err)
		}
		return sim.Time(d.Microseconds()), nil
	}
	parseI := func() (int, error) {
		n, err := strconv.Atoi(val)
		if err != nil {
			return 0, fmt.Errorf("workload: arrival spec %s=%q is not an integer", key, val)
		}
		return n, nil
	}
	var err error
	switch key {
	case "rate":
		s.Rate, err = parseF()
	case "horizon":
		s.Horizon, err = parseD()
	case "tenants":
		s.MaxTenants, err = parseI()
	case "kind":
		k, ok := KindByCode(val)
		if !ok {
			return fmt.Errorf("workload: arrival spec kind=%q is not a Table I code", val)
		}
		s.Kind = k
	case "life":
		s.MeanLife, err = parseD()
	case "lambda":
		s.Lambda, err = parseD()
	case "weight":
		s.Weight, err = parseI()
	case "bigevery":
		s.BigEvery, err = parseI()
	case "bigslots":
		s.BigSlots, err = parseI()
	case "period":
		s.Period, err = parseD()
	case "depth":
		s.Depth, err = parseF()
	case "burst":
		s.BurstMean, err = parseF()
	case "spread":
		s.BurstSpread, err = parseD()
	default:
		return fmt.Errorf("workload: arrival spec has unknown key %q", key)
	}
	return err
}

// String renders the spec back in its parseable form (canonical key order).
func (s OpenArrivalSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:rate=%g,horizon=%s", s.Process, s.Rate, durString(s.Horizon))
	if s.MaxTenants > 0 {
		fmt.Fprintf(&b, ",tenants=%d", s.MaxTenants)
	}
	fmt.Fprintf(&b, ",kind=%s", s.Kind)
	if s.MeanLife > 0 {
		fmt.Fprintf(&b, ",life=%s", durString(s.MeanLife))
	}
	if s.Lambda > 0 {
		fmt.Fprintf(&b, ",lambda=%s", durString(s.Lambda))
	}
	if s.Weight > 0 {
		fmt.Fprintf(&b, ",weight=%d", s.Weight)
	}
	if s.BigEvery > 0 {
		fmt.Fprintf(&b, ",bigevery=%d,bigslots=%d", s.BigEvery, s.BigSlots)
	}
	if s.Process == ProcDiurnal {
		fmt.Fprintf(&b, ",period=%s,depth=%g", durString(s.Period), s.Depth)
	}
	if s.Process == ProcBursty {
		fmt.Fprintf(&b, ",burst=%g,spread=%s", s.BurstMean, durString(s.BurstSpread))
	}
	return b.String()
}

// durString renders a sim.Time as a Go duration literal.
func durString(t sim.Time) string {
	return (time.Duration(t) * time.Microsecond).String()
}
