package workload

import (
	"reflect"
	"testing"
)

// FuzzOpenArrivalSpec hammers the textual spec parser with arbitrary strings.
// Parsing and validation must never panic; anything accepted must be a valid
// spec whose canonical String() form re-parses to the same value. Births is
// deliberately not called here — fuzzing controls the text, not the
// generation cost, and the parser's job ends at a validated spec.
func FuzzOpenArrivalSpec(f *testing.F) {
	f.Add("poisson:rate=1,horizon=10s")
	f.Add("poisson:rate=0.5,horizon=2000s,tenants=1200,kind=GA,life=80s,lambda=800ms,weight=2,bigevery=16,bigslots=2")
	f.Add("diurnal:rate=2,horizon=600s,period=120s,depth=0.6")
	f.Add("bursty:rate=5,horizon=300s,burst=6,spread=2s")
	f.Add("diurnal:rate=2,horizon=600s,period=0s,depth=2")
	f.Add("bursty:rate=1e7,horizon=1s,burst=0.1")
	f.Add("weekly:rate=1,horizon=10s")
	f.Add("poisson:rate=NaN,horizon=10s")
	f.Add("poisson:rate=1,horizon=10s,color=red")
	f.Add("poisson:rate,horizon")
	f.Add(":,=,:")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		spec, err := ParseOpenArrivalSpec(text)
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("Parse(%q) returned a spec Validate rejects: %v", text, verr)
		}
		canon := spec.String()
		back, err := ParseOpenArrivalSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, text, err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Fatalf("canonical round trip drifted for %q:\n  %+v\n  %+v", text, spec, back)
		}
	})
}
