package workload

import (
	"math"
	"math/rand"

	"repro/internal/sim"
)

// ExpInterArrival draws one inter-arrival gap from the paper's equation (4),
//
//	T = -λ · ln(X),   X uniform in (0, 1],
//
// the negative-exponential model of the SPECpower_ssj2008 service generator.
func ExpInterArrival(rng *rand.Rand, lambda sim.Time) sim.Time {
	x := 1 - rng.Float64() // (0, 1]
	return sim.Time(-float64(lambda)*math.Log(x) + 0.5)
}

// StreamSpec describes one random stream of requests for a single
// application class arriving at one node.
type StreamSpec struct {
	Kind   Kind
	Count  int      // number of requests
	Lambda sim.Time // mean inter-arrival time
	Node   int      // arrival node
	Tenant int64
	Weight int
	Style  Style // how the requests issue their GPU work

	// LambdaFactor, if set and Lambda is zero, sizes λ proportionally to
	// the application's solo runtime, as the paper does.
	LambdaFactor float64

	// SliceProfile, when non-empty, asks the placement layer to serve this
	// tenant from a dedicated MIG-style slice of the named shape ("1g" ..
	// "7g", see gpu.MIGProfiles) instead of a shared whole device. The
	// string stays flat so StreamSpec remains comparable (it keys caches).
	SliceProfile string

	// Start offsets every arrival of the stream, staggering tenant onsets
	// so scenarios can shape instantaneous load (zero = legacy behavior).
	Start sim.Time
}

// EffectiveLambda resolves the stream's mean inter-arrival time.
func (s StreamSpec) EffectiveLambda() sim.Time {
	if s.Lambda > 0 {
		return s.Lambda
	}
	f := s.LambdaFactor
	if f <= 0 {
		f = 0.6
	}
	return sim.Time(f * float64(ProfileFor(s.Kind).SoloRuntime))
}

// Arrivals materializes the stream's request arrival times using the given
// random source.
func (s StreamSpec) Arrivals(rng *rand.Rand) []sim.Time {
	times := make([]sim.Time, s.Count)
	t := s.Start
	lambda := s.EffectiveLambda()
	for i := range times {
		t += ExpInterArrival(rng, lambda)
		times[i] = t
	}
	return times
}
