package workload

import (
	"math"

	"repro/internal/gpu"
	"repro/internal/sim"
)

// Reference is the device all profiles are calibrated against (the paper's
// Tesla C2050).
var Reference = gpu.TeslaC2050

// Calibration constants.
const (
	// maxXferFrac caps the share of GPU time spent in transfers. Table I
	// reports ~99% for BO and MC; a synchronous-loop application tops out
	// slightly below that once kernels must still run, so the derivation
	// clamps here and lets the measured value land close to the table.
	maxXferFrac = 0.85

	// maxBWDemand caps a kernel's memory-bandwidth demand relative to the
	// device's effective bandwidth.
	maxBWDemand = 0.95

	// h2dShare of transfer time goes host→device; the rest device→host.
	h2dShare = 0.6

	// chunkBytes bounds a single memcpy; larger per-iteration volumes are
	// moved as repeated chunked copies through the same buffer, the way
	// real applications bound their staging buffers.
	chunkBytes = 64 << 20

	// minOcc/maxOcc bound kernel occupancy. Memory-bound kernels stall
	// their warps on loads and cannot fill the compute pipelines, so
	// occupancy falls as bandwidth demand rises.
	minOcc = 0.2
	maxOcc = 0.95
)

// Profile is a fully derived, device-independent execution plan for one
// application: per-iteration CPU time, transfer volumes and kernel work.
type Profile struct {
	Spec

	CPUPerIter sim.Time // host compute between GPU episodes
	H2DPerIter int64    // bytes host→device per iteration
	D2HPerIter int64    // bytes device→host per iteration
	ChunkBytes int64    // maximum bytes per single memcpy call

	KernCompute float64 // compute units per iteration's kernel
	KernTraffic float64 // device-memory traffic (bytes) per kernel
	KernOcc     float64 // kernel occupancy

	BufBytes int64 // device buffer the application allocates
}

// Profiles caches the derived profiles for all kinds.
var profiles [numKinds]Profile

func init() {
	for _, k := range AllKinds {
		profiles[k] = derive(Specs[k], Reference)
	}
}

// ProfileFor returns the calibrated profile of kind k.
func ProfileFor(k Kind) Profile { return profiles[k] }

// derive computes per-iteration parameters from a Table I row against a
// reference device spec.
func derive(s Spec, ref gpu.Spec) Profile {
	p := Profile{Spec: s, ChunkBytes: chunkBytes}
	T := float64(s.SoloRuntime)
	g := s.GPUPct / 100
	x := math.Min(s.XferPct/100, maxXferFrac)

	G := g * T   // GPU time: transfers + kernels
	X := x * G   // transfer time
	K := G - X   // kernel time
	cpu := T - G // host time
	iters := float64(s.Iters)

	p.CPUPerIter = sim.Time(cpu/iters + 0.5)

	h2dTime := h2dShare * X
	d2hTime := (1 - h2dShare) * X
	p.H2DPerIter = int64(h2dTime*ref.H2DBandwidth/iters + 0.5)
	p.D2HPerIter = int64(d2hTime*ref.D2HBandwidth/iters + 0.5)

	// Kernel memory traffic from the Table I bandwidth (MB/s → bytes/us is
	// a factor of 1: 1 MB/s = 1e6 B / 1e6 us), clamped to what the
	// effective device bandwidth allows within the kernel time.
	traffic := s.MemBWMB * G
	maxTraffic := maxBWDemand * ref.MemBandwidth * K
	if traffic > maxTraffic {
		traffic = maxTraffic
	}
	p.KernTraffic = traffic / iters

	// Bandwidth demand fraction while the kernel runs.
	b := 0.0
	if K > 0 {
		b = traffic / (ref.MemBandwidth * K)
	}
	// Occupancy: memory-bound kernels cannot fill the compute pipelines.
	occ := 1 - 0.8*b
	if occ < minOcc {
		occ = minOcc
	}
	if occ > maxOcc {
		occ = maxOcc
	}
	p.KernOcc = occ

	// Compute work sized so the kernel's solo duration is exactly its share
	// of the kernel time: solo = C/(rate·occ) = K/iters.
	p.KernCompute = occ * ref.ComputeRate * (K / iters)

	// Device buffer: one staging chunk (or the whole per-iteration volume
	// if smaller) plus a small working set.
	buf := p.H2DPerIter
	if p.D2HPerIter > buf {
		buf = p.D2HPerIter
	}
	if buf > chunkBytes {
		buf = chunkBytes
	}
	if buf < 1<<20 {
		buf = 1 << 20
	}
	p.BufBytes = buf
	return p
}

// SoloGPUTime returns the profile's intended total GPU service time
// (kernels plus transfers) on the reference device.
func (p Profile) SoloGPUTime() sim.Time {
	return sim.Time(float64(p.SoloRuntime) * p.GPUPct / 100)
}

// BandwidthDemand returns the kernel's bandwidth-demand fraction on the
// reference device — the signal MBF thresholds on.
func (p Profile) BandwidthDemand() float64 {
	k := p.kernSoloTime()
	if k <= 0 {
		return 0
	}
	return p.KernTraffic / (Reference.MemBandwidth * k)
}

// ComputeDemand returns the kernel's device-level compute-demand fraction.
func (p Profile) ComputeDemand() float64 { return p.KernOcc }

// kernSoloTime is the per-iteration kernel solo duration on the reference
// device, in microseconds.
func (p Profile) kernSoloTime() float64 {
	ct := p.KernCompute / (Reference.ComputeRate * p.KernOcc)
	bt := p.KernTraffic / Reference.MemBandwidth
	return math.Max(ct, bt)
}
