package workload

import (
	"fmt"

	"repro/internal/cuda"
	"repro/internal/sim"
)

// RunThreaded executes the application with nThreads host threads splitting
// the iterations, each thread obtaining its own cuda.Client view from the
// factory (the bare runtime hands out process threads; Strings hands out
// MTSession views whose per-device buffer synchronization keeps the
// threads' GPU operations in application order). Each thread owns a private
// staging buffer and runs the synchronous loop over its share of
// iterations; the main thread joins them and performs the final exit.
func (a *App) RunThreaded(p *sim.Proc, factory func(*sim.Proc) cuda.Client, nThreads int) error {
	if nThreads < 1 {
		nThreads = 1
	}
	a.Started = p.Now()
	k := p.Kernel()
	kern := cuda.Kernel{
		Name:       a.Profile.Name,
		Compute:    a.Profile.KernCompute,
		MemTraffic: a.Profile.KernTraffic,
		Occupancy:  a.Profile.KernOcc,
	}
	errs := make([]error, nThreads)
	done := make([]*sim.Event, nThreads)
	per := a.Profile.Iters / nThreads
	extra := a.Profile.Iters % nThreads

	for ti := 0; ti < nThreads; ti++ {
		ti := ti
		iters := per
		if ti < extra {
			iters++
		}
		done[ti] = k.NewEvent()
		k.Go(fmt.Sprintf("app-%d-t%d", a.ID, ti), func(tp *sim.Proc) {
			defer done[ti].Fire()
			c := factory(tp)
			if err := c.SetDevice(a.PreferredDev); err != nil {
				errs[ti] = err
				return
			}
			buf, err := c.Malloc(a.Profile.BufBytes)
			if err != nil {
				errs[ti] = err
				return
			}
			for i := 0; i < iters; i++ {
				if a.Profile.CPUPerIter > 0 {
					tp.Sleep(a.Profile.CPUPerIter)
				}
				if err := a.copyChunked(c, cuda.H2D, buf, a.Profile.H2DPerIter); err != nil {
					errs[ti] = err
					return
				}
				if kern.Compute > 0 || kern.MemTraffic > 0 {
					if err := c.Launch(kern, cuda.DefaultStream); err != nil {
						errs[ti] = err
						return
					}
				}
				if err := a.copyChunked(c, cuda.D2H, buf, a.Profile.D2HPerIter); err != nil {
					errs[ti] = err
					return
				}
			}
			if err := c.DeviceSynchronize(); err != nil {
				errs[ti] = err
				return
			}
			errs[ti] = c.Free(buf)
		})
	}
	for _, ev := range done {
		p.Wait(ev)
	}
	for ti, err := range errs {
		if err != nil {
			return fmt.Errorf("app %d thread %d: %w", a.ID, ti, err)
		}
	}
	// The main thread performs the process-level teardown.
	c := factory(p)
	if err := c.ThreadExit(); err != nil {
		return fmt.Errorf("app %d exit: %w", a.ID, err)
	}
	a.Finished = p.Now()
	return nil
}
