package workload

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// oaSpecs is the generator matrix the seeded properties sweep: one spec per
// process, sized for a long horizon so empirical rates are tight.
func oaSpecs() []OpenArrivalSpec {
	return []OpenArrivalSpec{
		{Process: ProcPoisson, Rate: 5, Horizon: 2000 * sim.Second},
		{Process: ProcDiurnal, Rate: 5, Horizon: 2000 * sim.Second,
			Period: 100 * sim.Second, Depth: 0.7},
		{Process: ProcBursty, Rate: 5, Horizon: 2000 * sim.Second,
			BurstMean: 6, BurstSpread: 2 * sim.Second},
	}
}

// TestBirthsReproduceExactly pins the determinism contract: a source freshly
// seeded with the same seed reproduces the whole population bit for bit,
// inter-arrival gaps included.
func TestBirthsReproduceExactly(t *testing.T) {
	for _, spec := range oaSpecs() {
		for seed := int64(1); seed <= 5; seed++ {
			a, err := spec.Births(rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("%s seed %d: %v", spec.Process, seed, err)
			}
			b, err := spec.Births(rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("%s seed %d: %v", spec.Process, seed, err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s seed %d: populations differ between identical seeds", spec.Process, seed)
			}
			if len(a) == 0 {
				t.Errorf("%s seed %d: empty population", spec.Process, seed)
			}
		}
	}
}

// TestBirthsEmpiricalRate checks that over a long horizon the realized birth
// count is within tolerance of Rate·Horizon for every process: the diurnal
// modulation integrates to zero over whole periods and bursts conserve the
// mean, so all three target the same count (10000 here).
func TestBirthsEmpiricalRate(t *testing.T) {
	for _, spec := range oaSpecs() {
		want := spec.ExpectedTenants()
		var total float64
		const seeds = 5
		for seed := int64(1); seed <= seeds; seed++ {
			b, err := spec.Births(rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("%s: %v", spec.Process, err)
			}
			total += float64(len(b))
		}
		got := total / seeds
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("%s: mean population %.0f, want %.0f ±5%%", spec.Process, got, want)
		}
	}
}

// TestBirthsMonotoneInstants checks every process — the diurnal thinning and
// the bursty group spreading in particular — emits non-decreasing birth
// instants inside the horizon.
func TestBirthsMonotoneInstants(t *testing.T) {
	for _, spec := range oaSpecs() {
		for seed := int64(1); seed <= 10; seed++ {
			b, err := spec.Births(rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("%s: %v", spec.Process, err)
			}
			for i, tb := range b {
				if i > 0 && tb.At < b[i-1].At {
					t.Fatalf("%s seed %d: birth %d at %v before birth %d at %v",
						spec.Process, seed, i, tb.At, i-1, b[i-1].At)
				}
				if tb.At < 0 || tb.At >= spec.Horizon {
					t.Fatalf("%s seed %d: birth %d at %v outside [0, %v)",
						spec.Process, seed, i, tb.At, spec.Horizon)
				}
			}
		}
	}
}

// TestBirthsAttributeContracts checks the per-tenant attribute invariants:
// at least one request per tenant, requests sized from lifetime over lambda,
// lifetimes floored at lambda, and the BigEvery cadence of slot demands.
func TestBirthsAttributeContracts(t *testing.T) {
	spec := OpenArrivalSpec{
		Process: ProcPoisson, Rate: 10, Horizon: 200 * sim.Second,
		MeanLife: 30 * sim.Second, Lambda: 500 * sim.Millisecond,
		BigEvery: 7, BigSlots: 3,
	}
	b, err := spec.Births(rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for i, tb := range b {
		if tb.Requests < 1 {
			t.Fatalf("tenant %d has %d requests", i, tb.Requests)
		}
		if tb.Life < tb.Lambda {
			t.Fatalf("tenant %d life %v below lambda %v", i, tb.Life, tb.Lambda)
		}
		if want := int(int64(tb.Life) / int64(tb.Lambda)); tb.Requests != want && tb.Requests != 1 {
			t.Fatalf("tenant %d requests %d, want %d from life %v", i, tb.Requests, want, tb.Life)
		}
		wantSlots := 1
		if (i+1)%7 == 0 {
			wantSlots = 3
		}
		if tb.Slots != wantSlots {
			t.Fatalf("tenant %d has %d slots, want %d", i, tb.Slots, wantSlots)
		}
		if tb.Kind != spec.Kind || tb.Weight != 1 {
			t.Fatalf("tenant %d carries kind %v weight %d", i, tb.Kind, tb.Weight)
		}
		mean += tb.Life.Seconds()
	}
	mean /= float64(len(b))
	// The lifetime mixture's mean is MeanLife; at ~2000 samples allow 15%.
	if math.Abs(mean-30) > 0.15*30 {
		t.Errorf("mean lifetime %.1fs, want 30s ±15%%", mean)
	}
}

// TestBirthsMaxTenantsCap checks the population cap is exact.
func TestBirthsMaxTenantsCap(t *testing.T) {
	spec := OpenArrivalSpec{Process: ProcPoisson, Rate: 100, Horizon: 100 * sim.Second, MaxTenants: 37}
	b, err := spec.Births(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 37 {
		t.Fatalf("population %d, want exactly MaxTenants=37", len(b))
	}
}

// TestOpenArrivalSpecValidate sweeps the rejection surface: each invalid
// spec must error (never panic) and name the offending field.
func TestOpenArrivalSpecValidate(t *testing.T) {
	base := OpenArrivalSpec{Process: ProcPoisson, Rate: 1, Horizon: sim.Second}
	cases := []struct {
		name   string
		mutate func(*OpenArrivalSpec)
		want   string
	}{
		{"unknown process", func(s *OpenArrivalSpec) { s.Process = "weekly" }, "unknown arrival process"},
		{"zero rate", func(s *OpenArrivalSpec) { s.Rate = 0 }, "rate"},
		{"negative rate", func(s *OpenArrivalSpec) { s.Rate = -3 }, "rate"},
		{"NaN rate", func(s *OpenArrivalSpec) { s.Rate = math.NaN() }, "rate"},
		{"huge rate", func(s *OpenArrivalSpec) { s.Rate = 1e9 }, "rate"},
		{"zero horizon", func(s *OpenArrivalSpec) { s.Horizon = 0 }, "horizon"},
		{"negative tenants", func(s *OpenArrivalSpec) { s.MaxTenants = -1 }, "MaxTenants"},
		{"bad kind", func(s *OpenArrivalSpec) { s.Kind = Kind(99) }, "kind"},
		{"negative bigevery", func(s *OpenArrivalSpec) { s.BigEvery = -2 }, "BigEvery"},
		{"diurnal no period", func(s *OpenArrivalSpec) { s.Process = ProcDiurnal }, "period"},
		{"diurnal bad depth", func(s *OpenArrivalSpec) {
			s.Process = ProcDiurnal
			s.Period = sim.Second
			s.Depth = 1.5
		}, "depth"},
		{"bursty no mean", func(s *OpenArrivalSpec) { s.Process = ProcBursty }, "burst mean"},
		{"bursty negative spread", func(s *OpenArrivalSpec) {
			s.Process = ProcBursty
			s.BurstMean = 4
			s.BurstSpread = -sim.Second
		}, "spread"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if _, err := s.Births(rand.New(rand.NewSource(1))); err == nil {
				t.Error("Births accepted an invalid spec")
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base spec rejected: %v", err)
	}
}

// TestParseOpenArrivalSpec round-trips the textual form and pins its error
// surface.
func TestParseOpenArrivalSpec(t *testing.T) {
	spec, err := ParseOpenArrivalSpec(
		"diurnal:rate=2,horizon=600s,tenants=500,kind=MC,life=45s,lambda=800ms,period=120s,depth=0.6")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Process != ProcDiurnal || spec.Rate != 2 || spec.Horizon != 600*sim.Second ||
		spec.MaxTenants != 500 || spec.Kind != MonteCarlo || spec.MeanLife != 45*sim.Second ||
		spec.Lambda != 800*sim.Millisecond || spec.Period != 120*sim.Second || spec.Depth != 0.6 {
		t.Fatalf("parsed spec mismatch: %+v", spec)
	}

	// String() re-parses to the same spec.
	again, err := ParseOpenArrivalSpec(spec.String())
	if err != nil {
		t.Fatalf("String() form does not re-parse: %v", err)
	}
	if !reflect.DeepEqual(spec, again) {
		t.Fatalf("round trip drifted:\n  %+v\n  %+v", spec, again)
	}

	bad := []struct{ text, want string }{
		{"hourly:rate=1,horizon=10s", "unknown arrival process"},
		{"poisson:rate=1", "horizon"},
		{"poisson:horizon=10s", "rate"},
		{"poisson:rate=1,horizon=10s,color=red", "unknown key"},
		{"poisson:rate=1,horizon=10s,kind=ZZ", "Table I code"},
		{"poisson:rate=1,horizon=ten", "duration"},
		{"poisson:rate=much,horizon=10s", "finite number"},
		{"poisson:rate=1,horizon=10s,tenants=few", "integer"},
		{"poisson:rate,horizon=10s", "key=value"},
		{"", "unknown arrival process"},
	}
	for _, tc := range bad {
		if _, err := ParseOpenArrivalSpec(tc.text); err == nil {
			t.Errorf("Parse(%q) accepted invalid text", tc.text)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) error %q does not mention %q", tc.text, err, tc.want)
		}
	}
}

// TestDiurnalModulatesRate checks the diurnal process actually moves load:
// the half-period around the peak must see substantially more births than
// the half around the trough.
func TestDiurnalModulatesRate(t *testing.T) {
	spec := OpenArrivalSpec{Process: ProcDiurnal, Rate: 10, Horizon: 1000 * sim.Second,
		Period: 200 * sim.Second, Depth: 0.8}
	b, err := spec.Births(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	var trough, peak int
	for _, tb := range b {
		phase := math.Mod(tb.At.Seconds(), 200) / 200 // trough at 0, peak at 0.5
		if phase > 0.25 && phase < 0.75 {
			peak++
		} else {
			trough++
		}
	}
	if peak < 2*trough {
		t.Errorf("peak half got %d births vs trough half %d; diurnal modulation too weak", peak, trough)
	}
}
