package workload

import (
	"math/rand"
	"sync"

	"repro/internal/sim"
)

// StreamSeed derives the per-stream arrival seed from the run seed and the
// stream's index. It is the single source of the formula: the cluster's
// inline path and the TraceBook's shared path must agree bit for bit, or
// sharing traces would change results.
func StreamSeed(seed int64, si int) int64 {
	return seed*7919 + int64(si)*104729 + 13
}

// traceKey identifies one materialized arrival trace. StreamSpec is a flat
// comparable value, so the spec itself participates in the key: two cells
// share a trace exactly when the same stream would be regenerated anyway.
type traceKey struct {
	seed int64
	si   int
	spec StreamSpec
}

// TraceBook memoizes materialized arrival traces so experiment cells that
// replay the same stream (every policy of a figure runs the identical
// workload) share one immutable slice instead of regenerating it per run.
// Returned traces are shared and MUST be treated read-only.
//
// A TraceBook is safe for concurrent use by parallel sweep cells. Losing a
// publication race costs only a duplicate derivation of the identical
// trace; whichever copy lands in the map, every consumer sees the same
// values because derivation depends only on the key.
type TraceBook struct {
	mu sync.RWMutex
	m  map[traceKey][]sim.Time
}

// NewTraceBook returns an empty trace cache.
func NewTraceBook() *TraceBook {
	return &TraceBook{m: make(map[traceKey][]sim.Time)}
}

// Arrivals returns the arrival times of stream si of spec under the given
// run seed, materializing and caching them on first use. The result is
// identical to spec.Arrivals(rand.New(rand.NewSource(StreamSeed(seed, si)))).
func (b *TraceBook) Arrivals(seed int64, si int, spec StreamSpec) []sim.Time {
	key := traceKey{seed: seed, si: si, spec: spec}
	b.mu.RLock()
	t, ok := b.m[key]
	b.mu.RUnlock()
	if ok {
		return t
	}
	t = spec.Arrivals(rand.New(rand.NewSource(StreamSeed(seed, si))))
	b.mu.Lock()
	if prev, ok := b.m[key]; ok {
		t = prev // keep the first publication so all consumers alias one slice
	} else {
		b.m[key] = t
	}
	b.mu.Unlock()
	return t
}

// Len reports how many distinct traces are cached (for tests and stats).
func (b *TraceBook) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.m)
}
