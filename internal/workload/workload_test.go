package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/sim"
)

func TestPairsLabelsAndOrder(t *testing.T) {
	ps := Pairs()
	if len(ps) != 24 {
		t.Fatalf("pairs = %d, want 24", len(ps))
	}
	if ps[0].Label != "A" || ps[0].Long != DXTC || ps[0].Short != BlackScholes {
		t.Fatalf("pair A = %v, want DC-BS", ps[0])
	}
	if ps[1].Long != DXTC || ps[1].Short != MonteCarlo {
		t.Fatalf("pair B = %v, want DC-MC", ps[1])
	}
	last := ps[23]
	if last.Label != "X" || last.Long != Eigenvalues || last.Short != SortingNetworks {
		t.Fatalf("pair X = %v, want EV-SN", last)
	}
	if ps[0].String() != "A(DC-BS)" {
		t.Fatalf("String = %q", ps[0].String())
	}
}

func TestSpecsGroupsAndRuntimeClasses(t *testing.T) {
	for _, k := range GroupAKinds {
		s := Specs[k]
		if s.Group != GroupA {
			t.Errorf("%v group = %v, want A", k, s.Group)
		}
		if s.SoloRuntime < 10*sim.Second || s.SoloRuntime > 55*sim.Second {
			t.Errorf("%v solo runtime %v outside the paper's 10-55s band", k, s.SoloRuntime)
		}
	}
	for _, k := range GroupBKinds {
		s := Specs[k]
		if s.Group != GroupB {
			t.Errorf("%v group = %v, want B", k, s.Group)
		}
		if s.SoloRuntime >= 10*sim.Second {
			t.Errorf("%v solo runtime %v should be < 10s", k, s.SoloRuntime)
		}
	}
	if DXTC.String() != "DC" || MonteCarlo.String() != "MC" {
		t.Fatal("short codes wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind formatting")
	}
}

func TestProfileDerivationInternallyConsistent(t *testing.T) {
	for _, k := range AllKinds {
		p := ProfileFor(k)
		if p.Iters <= 0 || p.CPUPerIter < 0 || p.KernCompute < 0 {
			t.Fatalf("%v: degenerate profile %+v", k, p)
		}
		if p.KernOcc < minOcc-1e-9 || p.KernOcc > maxOcc+1e-9 {
			t.Fatalf("%v: occupancy %v out of bounds", k, p.KernOcc)
		}
		if p.BufBytes < 1<<20 || p.BufBytes > chunkBytes {
			t.Fatalf("%v: buffer %d out of range", k, p.BufBytes)
		}
		if p.BandwidthDemand() > maxBWDemand+1e-6 {
			t.Fatalf("%v: bandwidth demand %v exceeds cap", k, p.BandwidthDemand())
		}
		// The intended time budget must reassemble into the solo runtime.
		T := float64(p.SoloRuntime)
		g := p.GPUPct / 100
		x := math.Min(p.XferPct/100, maxXferFrac)
		cpu := float64(p.CPUPerIter) * float64(p.Iters)
		xfer := (float64(p.H2DPerIter)/Reference.H2DBandwidth +
			float64(p.D2HPerIter)/Reference.D2HBandwidth) * float64(p.Iters)
		kern := p.kernSoloTime() * float64(p.Iters)
		total := cpu + xfer + kern
		if math.Abs(total-T)/T > 0.02 {
			t.Errorf("%v: budget reassembles to %.2fs, want %.2fs", k, total/1e6, T/1e6)
		}
		if g > 0.05 && math.Abs(xfer/(xfer+kern)-x) > 0.05 {
			t.Errorf("%v: transfer frac %.3f, want %.3f", k, xfer/(xfer+kern), x)
		}
	}
}

func TestMemoryBoundAppsHaveLowOccupancyHighBW(t *testing.T) {
	hi := ProfileFor(Histogram)
	dc := ProfileFor(DXTC)
	if hi.BandwidthDemand() <= dc.BandwidthDemand() {
		t.Fatalf("HI bw demand %.3f should exceed DC %.3f", hi.BandwidthDemand(), dc.BandwidthDemand())
	}
	if hi.KernOcc >= dc.KernOcc {
		t.Fatalf("HI occupancy %.3f should be below DC %.3f (memory-bound kernels stall)", hi.KernOcc, dc.KernOcc)
	}
}

// Run each application solo on the reference device with the bare runtime
// and verify the measured characteristics reproduce Table I's calibration
// targets. This is the substance of the Table I regeneration.
func TestSoloRunsMatchTableI(t *testing.T) {
	for _, k := range AllKinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			prof := ProfileFor(k)
			kern := sim.NewKernel(1)
			dev := gpu.NewDevice(kern, Reference, 0)
			rt := cuda.NewRuntime(kern, []*gpu.Device{dev}, cuda.Config{})
			app := &App{Profile: prof, ID: 1}
			var runErr error
			kern.Go("app", func(p *sim.Proc) {
				c := rt.NewThread(p, app.ID)
				runErr = app.Run(c)
			})
			kern.Run()
			if runErr != nil {
				t.Fatalf("run failed: %v", runErr)
			}
			T := float64(app.Finished - app.Started)
			want := float64(prof.SoloRuntime)
			if math.Abs(T-want)/want > 0.05 {
				t.Errorf("solo runtime %.2fs, want %.2fs", T/1e6, want/1e6)
			}
			gpuTime := float64(dev.AppService(app.ID))
			wantGPU := prof.GPUPct / 100 * math.Min(1, (float64(prof.GPUPct)/prof.GPUPct)) // fraction target
			_ = wantGPU
			gotFrac := gpuTime / T
			// The transfer-fraction clamp shifts heavily transfer-bound
			// apps; allow proportional tolerance.
			wantFrac := prof.GPUPct / 100
			if math.Abs(gotFrac-wantFrac) > 0.08 {
				t.Errorf("GPU fraction %.3f, want %.3f", gotFrac, wantFrac)
			}
			// Memory bandwidth as the paper measures it: kernel traffic
			// over GPU time (MB/s == B/us).
			bw := dev.AppMemTraffic(app.ID) / gpuTime
			wantBW := math.Min(prof.MemBWMB, maxBWDemand*Reference.MemBandwidth*
				(gpuTime-float64(dev.AppTransferTime(app.ID)))/gpuTime)
			if wantBW > 0 && math.Abs(bw-wantBW)/wantBW > 0.35 {
				t.Errorf("measured bw %.1f MB/s, want ≈%.1f", bw, wantBW)
			}
		})
	}
}

func TestExpInterArrivalStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	lambda := sim.Time(1000)
	var sum float64
	for i := 0; i < n; i++ {
		d := ExpInterArrival(rng, lambda)
		if d < 0 {
			t.Fatal("negative inter-arrival")
		}
		sum += float64(d)
	}
	mean := sum / n
	if math.Abs(mean-1000) > 30 {
		t.Fatalf("mean inter-arrival %.1f, want ~1000", mean)
	}
}

func TestStreamSpecArrivalsMonotone(t *testing.T) {
	s := StreamSpec{Kind: MonteCarlo, Count: 50, Lambda: 500}
	rng := rand.New(rand.NewSource(7))
	ts := s.Arrivals(rng)
	if len(ts) != 50 {
		t.Fatalf("arrivals = %d", len(ts))
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] < ts[i-1] {
			t.Fatal("arrivals not monotone")
		}
	}
}

func TestEffectiveLambdaProportionalToRuntime(t *testing.T) {
	s := StreamSpec{Kind: MonteCarlo}
	want := sim.Time(0.6 * float64(ProfileFor(MonteCarlo).SoloRuntime))
	if got := s.EffectiveLambda(); got != want {
		t.Fatalf("EffectiveLambda = %v, want %v", got, want)
	}
	s.Lambda = 123
	if got := s.EffectiveLambda(); got != 123 {
		t.Fatalf("explicit lambda ignored: %v", got)
	}
	s = StreamSpec{Kind: DXTC, LambdaFactor: 1.5}
	want = sim.Time(1.5 * float64(ProfileFor(DXTC).SoloRuntime))
	if got := s.EffectiveLambda(); got != want {
		t.Fatalf("factor lambda = %v, want %v", got, want)
	}
}

func TestDeterministicArrivals(t *testing.T) {
	s := StreamSpec{Kind: Scan, Count: 10, Lambda: 100}
	a := s.Arrivals(rand.New(rand.NewSource(5)))
	b := s.Arrivals(rand.New(rand.NewSource(5)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different arrivals")
		}
	}
}

func TestPipelinedStyleFasterSolo(t *testing.T) {
	run := func(style Style) sim.Time {
		kern := sim.NewKernel(1)
		dev := gpu.NewDevice(kern, Reference, 0)
		rt := cuda.NewRuntime(kern, []*gpu.Device{dev}, cuda.Config{})
		app := &App{Profile: ProfileFor(MonteCarlo), Style: style, ID: 1}
		var runErr error
		kern.Go("app", func(p *sim.Proc) {
			runErr = app.Run(rt.NewThread(p, app.ID))
		})
		kern.Run()
		if runErr != nil {
			t.Fatalf("%v run failed: %v", style, runErr)
		}
		return app.Finished - app.Started
	}
	syncT := run(StyleSync)
	pipeT := run(StylePipelined)
	// Double buffering overlaps CPU, copies and kernels: the pipelined MC
	// must be materially faster than the synchronous one.
	if float64(pipeT) > 0.8*float64(syncT) {
		t.Fatalf("pipelined %v not clearly faster than sync %v", pipeT, syncT)
	}
}

func TestPipelinedMemoryCleanup(t *testing.T) {
	kern := sim.NewKernel(1)
	dev := gpu.NewDevice(kern, Reference, 0)
	rt := cuda.NewRuntime(kern, []*gpu.Device{dev}, cuda.Config{})
	app := &App{Profile: ProfileFor(SortingNetworks), Style: StylePipelined, ID: 1}
	kern.Go("app", func(p *sim.Proc) {
		if err := app.Run(rt.NewThread(p, app.ID)); err != nil {
			t.Errorf("run: %v", err)
		}
	})
	kern.Run()
	if dev.MemUsed() != 0 {
		t.Fatalf("pipelined app leaked %d bytes", dev.MemUsed())
	}
}

func TestStyleString(t *testing.T) {
	if StyleSync.String() != "sync" || StylePipelined.String() != "pipelined" {
		t.Fatal("style names wrong")
	}
}

// Property: derivation stays internally consistent for arbitrary plausible
// Table I rows, not just the ten shipped ones.
func TestQuickDeriveArbitraryRows(t *testing.T) {
	f := func(gpuPct, xferPct, bwRaw uint16, secs, iters uint8) bool {
		s := Spec{
			Kind: DXTC, Name: "X", Short: "XX", Group: GroupA,
			GPUPct:      float64(gpuPct%9900)/100 + 0.5, // 0.5..99.5
			XferPct:     float64(xferPct % 100),
			MemBWMB:     float64(bwRaw % 16000),
			SoloRuntime: sim.Time(int64(secs%50)+1) * sim.Second,
			Iters:       int(iters%40) + 1,
		}
		p := derive(s, Reference)
		if p.CPUPerIter < 0 || p.H2DPerIter < 0 || p.D2HPerIter < 0 {
			return false
		}
		if p.KernOcc < minOcc-1e-9 || p.KernOcc > maxOcc+1e-9 {
			return false
		}
		if p.KernCompute < 0 || p.KernTraffic < 0 {
			return false
		}
		if p.BandwidthDemand() > maxBWDemand+1e-6 {
			return false
		}
		// Reassembled budget within 5% of the target runtime.
		total := float64(p.CPUPerIter)*float64(p.Iters) +
			(float64(p.H2DPerIter)/Reference.H2DBandwidth+
				float64(p.D2HPerIter)/Reference.D2HBandwidth)*float64(p.Iters) +
			p.kernSoloTime()*float64(p.Iters)
		T := float64(s.SoloRuntime)
		return total > 0.9*T && total < 1.1*T
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
