package workload

import (
	"fmt"

	"repro/internal/cuda"
	"repro/internal/sim"
)

// Style selects how an application issues its GPU work.
type Style int

// Application styles.
const (
	// StyleSync is the CUDA SDK default: synchronous memcpys and implicit
	// ordering on the default stream. The Strings runtime recovers the
	// asynchrony via interposition.
	StyleSync Style = iota
	// StylePipelined is a hand-optimized application: double-buffered
	// explicit streams with asynchronous copies, overlapping its own CPU,
	// transfer and kernel phases without any runtime help.
	StylePipelined
	// StyleMultiThread splits the iterations across two host threads of
	// one process, exercising the interposer's per-device buffer
	// synchronization (cross-thread RPC ordering).
	StyleMultiThread
)

// String names the style.
func (s Style) String() string {
	switch s {
	case StylePipelined:
		return "pipelined"
	case StyleMultiThread:
		return "multithread"
	default:
		return "sync"
	}
}

// App is one executable application instance (one end-user request in the
// cloud service model).
type App struct {
	Profile Profile
	Style   Style
	ID      int   // unique application/request id
	Tenant  int64 // owning tenant
	Weight  int   // tenant weight (TFS)

	// PreferredDev is the device the application would program statically
	// (cudaSetDevice target); the CUDA-runtime baseline honours it, Strings
	// overrides it.
	PreferredDev int

	// Timing, filled by Run.
	Submitted sim.Time // arrival at the node
	Started   sim.Time // first instruction
	Finished  sim.Time // completion
}

// CompletionTime returns the request's arrival-to-completion latency.
func (a *App) CompletionTime() sim.Time { return a.Finished - a.Submitted }

// Run executes the application against a CUDA client in its configured
// style.
func (a *App) Run(c cuda.Client) error {
	if a.Style == StylePipelined {
		return a.runPipelined(c)
	}
	return a.runSync(c)
}

// runPipelined is the hand-optimized variant: two streams, two buffers,
// asynchronous copies, with each stream's previous round synchronized just
// before its buffer is reused.
func (a *App) runPipelined(c cuda.Client) error {
	p := c.Proc()
	a.Started = p.Now()
	if err := c.SetDevice(a.PreferredDev); err != nil {
		return fmt.Errorf("app %d: %w", a.ID, err)
	}
	var bufs [2]cuda.Ptr
	var streams [2]cuda.StreamID
	for i := range bufs {
		var err error
		if bufs[i], err = c.Malloc(a.Profile.BufBytes); err != nil {
			return fmt.Errorf("app %d: %w", a.ID, err)
		}
		if streams[i], err = c.StreamCreate(); err != nil {
			return fmt.Errorf("app %d: %w", a.ID, err)
		}
	}
	kern := cuda.Kernel{
		Name:       a.Profile.Name,
		Compute:    a.Profile.KernCompute,
		MemTraffic: a.Profile.KernTraffic,
		Occupancy:  a.Profile.KernOcc,
	}
	for i := 0; i < a.Profile.Iters; i++ {
		lane := i % 2
		if i >= 2 {
			// Reclaim the lane's buffer: its previous round must be done.
			if err := c.StreamSynchronize(streams[lane]); err != nil {
				return fmt.Errorf("app %d sync: %w", a.ID, err)
			}
		}
		if a.Profile.CPUPerIter > 0 {
			p.Sleep(a.Profile.CPUPerIter)
		}
		if err := a.copyChunkedAsync(c, cuda.H2D, bufs[lane], a.Profile.H2DPerIter, streams[lane]); err != nil {
			return fmt.Errorf("app %d h2d: %w", a.ID, err)
		}
		if kern.Compute > 0 || kern.MemTraffic > 0 {
			if err := c.Launch(kern, streams[lane]); err != nil {
				return fmt.Errorf("app %d launch: %w", a.ID, err)
			}
		}
		if err := a.copyChunkedAsync(c, cuda.D2H, bufs[lane], a.Profile.D2HPerIter, streams[lane]); err != nil {
			return fmt.Errorf("app %d d2h: %w", a.ID, err)
		}
	}
	for i := range streams {
		if err := c.StreamSynchronize(streams[i]); err != nil {
			return fmt.Errorf("app %d drain: %w", a.ID, err)
		}
		if err := c.StreamDestroy(streams[i]); err != nil {
			return fmt.Errorf("app %d destroy: %w", a.ID, err)
		}
		if err := c.Free(bufs[i]); err != nil {
			return fmt.Errorf("app %d free: %w", a.ID, err)
		}
	}
	if err := c.ThreadExit(); err != nil {
		return fmt.Errorf("app %d exit: %w", a.ID, err)
	}
	a.Finished = p.Now()
	return nil
}

// copyChunkedAsync moves total bytes through the buffer in bounded
// asynchronous memcpys on the given stream.
func (a *App) copyChunkedAsync(c cuda.Client, dir cuda.Dir, buf cuda.Ptr, total int64, s cuda.StreamID) error {
	for total > 0 {
		n := total
		if n > a.Profile.ChunkBytes {
			n = a.Profile.ChunkBytes
		}
		if n > buf.Size {
			n = buf.Size
		}
		if err := c.MemcpyAsync(dir, buf, n, s); err != nil {
			return err
		}
		total -= n
	}
	return nil
}

// runSync executes the application exactly as the original SDK samples are
// structured: select a device, allocate a staging buffer, then iterate CPU
// phase → synchronous chunked H2D copies → kernel launch → synchronous
// chunked D2H copies, and finally synchronize, free and exit. All GPU work
// goes to the default stream; any asynchrony is the runtime's to discover.
func (a *App) runSync(c cuda.Client) error {
	p := c.Proc()
	a.Started = p.Now()
	if err := c.SetDevice(a.PreferredDev); err != nil {
		return fmt.Errorf("app %d: %w", a.ID, err)
	}
	buf, err := c.Malloc(a.Profile.BufBytes)
	if err != nil {
		return fmt.Errorf("app %d: %w", a.ID, err)
	}
	kern := cuda.Kernel{
		Name:       a.Profile.Name,
		Compute:    a.Profile.KernCompute,
		MemTraffic: a.Profile.KernTraffic,
		Occupancy:  a.Profile.KernOcc,
	}
	for i := 0; i < a.Profile.Iters; i++ {
		if a.Profile.CPUPerIter > 0 {
			p.Sleep(a.Profile.CPUPerIter)
		}
		if err := a.copyChunked(c, cuda.H2D, buf, a.Profile.H2DPerIter); err != nil {
			return fmt.Errorf("app %d h2d: %w", a.ID, err)
		}
		if kern.Compute > 0 || kern.MemTraffic > 0 {
			if err := c.Launch(kern, cuda.DefaultStream); err != nil {
				return fmt.Errorf("app %d launch: %w", a.ID, err)
			}
		}
		if err := a.copyChunked(c, cuda.D2H, buf, a.Profile.D2HPerIter); err != nil {
			return fmt.Errorf("app %d d2h: %w", a.ID, err)
		}
	}
	if err := c.DeviceSynchronize(); err != nil {
		return fmt.Errorf("app %d sync: %w", a.ID, err)
	}
	if err := c.Free(buf); err != nil {
		return fmt.Errorf("app %d free: %w", a.ID, err)
	}
	if err := c.ThreadExit(); err != nil {
		return fmt.Errorf("app %d exit: %w", a.ID, err)
	}
	a.Finished = p.Now()
	return nil
}

// copyChunked moves total bytes through the staging buffer in bounded
// synchronous memcpys.
func (a *App) copyChunked(c cuda.Client, dir cuda.Dir, buf cuda.Ptr, total int64) error {
	for total > 0 {
		n := total
		if n > a.Profile.ChunkBytes {
			n = a.Profile.ChunkBytes
		}
		if n > buf.Size {
			n = buf.Size
		}
		if err := c.Memcpy(dir, buf, n); err != nil {
			return err
		}
		total -= n
	}
	return nil
}
