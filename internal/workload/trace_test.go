package workload

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func TestStreamSeedFormula(t *testing.T) {
	// The formula is load-bearing: it must match the cluster's historical
	// inline derivation or shared traces change every figure.
	if got, want := StreamSeed(1, 0), int64(1*7919+13); got != want {
		t.Fatalf("StreamSeed(1,0) = %d, want %d", got, want)
	}
	if got, want := StreamSeed(3, 2), int64(3*7919+2*104729+13); got != want {
		t.Fatalf("StreamSeed(3,2) = %d, want %d", got, want)
	}
}

func TestTraceBookMatchesDirectDerivation(t *testing.T) {
	spec := StreamSpec{Kind: DXTC, Count: 20, Lambda: 5000}
	b := NewTraceBook()
	for si := 0; si < 3; si++ {
		want := spec.Arrivals(rand.New(rand.NewSource(StreamSeed(7, si))))
		got := b.Arrivals(7, si, spec)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("stream %d: cached trace diverged from direct derivation", si)
		}
	}
}

func TestTraceBookMemoizes(t *testing.T) {
	spec := StreamSpec{Kind: Scan, Count: 10, Lambda: 2000}
	b := NewTraceBook()
	first := b.Arrivals(1, 0, spec)
	second := b.Arrivals(1, 0, spec)
	if len(first) > 0 && &first[0] != &second[0] {
		t.Error("repeated lookup returned a distinct slice, not the shared one")
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d after two identical lookups, want 1", b.Len())
	}
	// Different seed, stream index or spec are distinct entries.
	b.Arrivals(2, 0, spec)
	b.Arrivals(1, 1, spec)
	other := spec
	other.Count = 11
	b.Arrivals(1, 0, other)
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4 distinct traces", b.Len())
	}
}

func TestTraceBookConcurrent(t *testing.T) {
	spec := StreamSpec{Kind: Histogram, Count: 30, Lambda: 3000}
	b := NewTraceBook()
	want := spec.Arrivals(rand.New(rand.NewSource(StreamSeed(5, 1))))
	var wg sync.WaitGroup
	results := make([][]int64, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := b.Arrivals(5, 1, spec)
			vals := make([]int64, len(tr))
			for i, at := range tr {
				vals[i] = int64(at)
			}
			results[w] = vals
		}()
	}
	wg.Wait()
	for w, vals := range results {
		if len(vals) != len(want) {
			t.Fatalf("worker %d: %d arrivals, want %d", w, len(vals), len(want))
		}
		for i := range vals {
			if vals[i] != int64(want[i]) {
				t.Fatalf("worker %d: arrival %d diverged", w, i)
			}
		}
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d after concurrent lookups of one key, want 1", b.Len())
	}
}
