// Package netguard hardens the demo's real-network path: per-operation
// read/write deadlines on accepted connections, and a dial loop that
// retries with exponential backoff while a backend daemon restarts. The
// package deliberately imports neither the simulator nor any facade — it
// lives entirely at the system boundary, where wall-clock time is the only
// clock there is, so the determinism lint does not apply to it.
package netguard

import (
	"fmt"
	"net"
	"time"
)

// Conn wraps a net.Conn so every Read and Write re-arms the corresponding
// deadline. A zero timeout leaves that direction unguarded.
type Conn struct {
	net.Conn
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
}

// WithDeadlines wraps c; with both timeouts zero it returns c unchanged.
func WithDeadlines(c net.Conn, read, write time.Duration) net.Conn {
	if read <= 0 && write <= 0 {
		return c
	}
	return &Conn{Conn: c, ReadTimeout: read, WriteTimeout: write}
}

// Read arms the read deadline, then reads.
func (c *Conn) Read(b []byte) (int, error) {
	if c.ReadTimeout > 0 {
		if err := c.Conn.SetReadDeadline(time.Now().Add(c.ReadTimeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Read(b)
}

// Write arms the write deadline, then writes.
func (c *Conn) Write(b []byte) (int, error) {
	if c.WriteTimeout > 0 {
		if err := c.Conn.SetWriteDeadline(time.Now().Add(c.WriteTimeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Write(b)
}

// DialRetry dials addr up to attempts times, sleeping backoff and doubling
// it (capped at 32× the base) between tries — the frontend's
// connection-retry loop for riding out a backend restart.
func DialRetry(network, addr string, attempts int, backoff time.Duration) (net.Conn, error) {
	if attempts < 1 {
		attempts = 1
	}
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	cap := 32 * backoff
	var lastErr error
	for i := 0; i < attempts; i++ {
		conn, err := net.Dial(network, addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if i < attempts-1 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > cap {
				backoff = cap
			}
		}
	}
	return nil, fmt.Errorf("netguard: dial %s %s: giving up after %d attempts: %w",
		network, addr, attempts, lastErr)
}
