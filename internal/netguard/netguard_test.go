package netguard

import (
	"net"
	"testing"
	"time"
)

func TestWithDeadlinesZeroIsPassThrough(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if got := WithDeadlines(a, 0, 0); got != a {
		t.Fatal("zero deadlines must return the connection unchanged")
	}
	if _, ok := WithDeadlines(a, time.Second, 0).(*Conn); !ok {
		t.Fatal("non-zero deadline must wrap the connection")
	}
}

func TestReadDeadlineFires(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	g := WithDeadlines(a, 20*time.Millisecond, 0)
	buf := make([]byte, 1)
	if _, err := g.Read(buf); err == nil {
		t.Fatal("read with no writer should hit the deadline")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("deadline error = %v, want a net timeout", err)
	}
}

func TestDeadlineReArmsPerRead(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	g := WithDeadlines(a, 80*time.Millisecond, 0)
	// Two sequential slow-ish writes, each within the per-read budget but
	// together beyond it: only a re-armed deadline lets both succeed.
	go func() {
		for i := 0; i < 2; i++ {
			time.Sleep(50 * time.Millisecond)
			b.Write([]byte{byte(i)})
		}
	}()
	buf := make([]byte, 1)
	for i := 0; i < 2; i++ {
		if _, err := g.Read(buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
}

func TestDialRetryEventuallyConnects(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := lis.Addr().String()
	lis.Close() // nothing is listening now

	if _, err := DialRetry("tcp", addr, 2, time.Millisecond); err == nil {
		t.Fatal("dial against a closed port should exhaust its attempts")
	}

	// Bring a listener up after the first attempt would have failed.
	go func() {
		time.Sleep(30 * time.Millisecond)
		l2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the dial loop will fail the test below
		}
		defer l2.Close()
		c, err := l2.Accept()
		if err == nil {
			c.Close()
		}
	}()
	conn, err := DialRetry("tcp", addr, 8, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("DialRetry never connected: %v", err)
	}
	conn.Close()
}
