package analytic

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMG1PSKnownValues(t *testing.T) {
	// ρ = 0.5 doubles the sojourn.
	got, err := MG1PS(1, 0.5)
	if err != nil || !almost(got, 2, 1e-12) {
		t.Fatalf("MG1PS = %v, %v", got, err)
	}
	// Unloaded queue: sojourn = service.
	got, _ = MG1PS(3, 0)
	if got != 3 {
		t.Fatalf("unloaded sojourn = %v", got)
	}
	if _, err := MG1PS(1, 1.0); !errors.Is(err, ErrUnstable) {
		t.Fatalf("instability not detected: %v", err)
	}
}

func TestMG1FCFSKnownValues(t *testing.T) {
	// M/M/1 (scv=1): E[T] = S/(1-ρ).
	got, err := MG1FCFS(2, 1, 0.25) // ρ=0.5 → 4
	if err != nil || !almost(got, 4, 1e-9) {
		t.Fatalf("M/M/1 sojourn = %v, %v", got, err)
	}
	// M/D/1 (scv=0): E[T] = S + ρS/(2(1-ρ)) = 2 + 1 = 3 at ρ=0.5, S=2.
	got, _ = MG1FCFS(2, 0, 0.25)
	if !almost(got, 3, 1e-9) {
		t.Fatalf("M/D/1 sojourn = %v", got)
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// c=1: P(queue) = ρ.
	p, err := ErlangC(1, 0.3)
	if err != nil || !almost(p, 0.3, 1e-12) {
		t.Fatalf("ErlangC(1, .3) = %v, %v", p, err)
	}
	// Textbook value: c=2, a=1 → P(queue) = 1/3.
	p, _ = ErlangC(2, 1)
	if !almost(p, 1.0/3, 1e-12) {
		t.Fatalf("ErlangC(2, 1) = %v, want 1/3", p)
	}
	if _, err := ErlangC(2, 2); !errors.Is(err, ErrUnstable) {
		t.Fatal("instability not detected")
	}
	if _, err := ErlangC(0, 0.5); err == nil {
		t.Fatal("c=0 accepted")
	}
}

func TestMMcReducesToMM1(t *testing.T) {
	a, _ := MMc(1, 2, 0.25)
	b, _ := MG1FCFS(2, 1, 0.25)
	if !almost(a, b, 1e-9) {
		t.Fatalf("M/M/1 via MMc %v != via PK %v", a, b)
	}
}

func TestUtilization(t *testing.T) {
	if u := Utilization(4, 2, 1); !almost(u, 0.5, 1e-12) {
		t.Fatalf("utilization = %v", u)
	}
	if !math.IsInf(Utilization(0, 1, 1), 1) {
		t.Fatal("c=0 should be infinite")
	}
}

// Property: sojourn times are monotone in load and always at least the
// service time, for all stable parameterizations.
func TestQuickSojournMonotone(t *testing.T) {
	f := func(sRaw, l1Raw, l2Raw uint16) bool {
		s := float64(sRaw%100)/10 + 0.1
		l1 := float64(l1Raw%80) / 100 / s // ρ1 < 0.8
		l2 := float64(l2Raw%80) / 100 / s
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		t1, err1 := MG1PS(s, l1)
		t2, err2 := MG1PS(s, l2)
		if err1 != nil || err2 != nil {
			return false
		}
		if t1 < s-1e-9 || t2 < t1-1e-9 {
			return false
		}
		m1, e1 := MMc(2, s, l1)
		m2, e2 := MMc(2, s, l2)
		return e1 == nil && e2 == nil && m1 >= s-1e-9 && m2 >= m1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: more servers never increase the M/M/c sojourn.
func TestQuickMoreServersHelp(t *testing.T) {
	f := func(sRaw, lRaw uint16) bool {
		s := float64(sRaw%100)/10 + 0.1
		lambda := float64(lRaw%70) / 100 / s
		t1, err := MMc(1, s, lambda)
		if err != nil {
			return false
		}
		t2, err := MMc(2, s, lambda)
		if err != nil {
			return false
		}
		t4, err := MMc(4, s, lambda)
		return err == nil && t2 <= t1+1e-9 && t4 <= t2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
