// Package analytic provides closed-form queueing predictions used to
// cross-validate the simulator: a GPU multiplexing contexts with driver
// time-slicing behaves like an M/G/1 processor-sharing queue, and a
// load-balanced pool of c GPUs approximates M/M/c. Tests compare the
// simulator's measured completion times against these predictions — an
// independent check that the discrete-event substrate conserves work and
// queues sanely.
package analytic

import (
	"errors"
	"math"
)

// ErrUnstable reports an offered load at or beyond capacity.
var ErrUnstable = errors.New("analytic: utilization >= 1, queue is unstable")

// MG1PS predicts the mean sojourn time of an M/G/1 processor-sharing
// queue: E[T] = S / (1 - ρ), insensitive to the service distribution.
// S is the mean service demand and lambda the arrival rate (requests per
// unit time).
func MG1PS(s, lambda float64) (float64, error) {
	rho := lambda * s
	if rho >= 1 {
		return 0, ErrUnstable
	}
	return s / (1 - rho), nil
}

// MG1FCFS predicts the mean sojourn time of an M/G/1 FCFS queue via
// Pollaczek–Khinchine: E[T] = S + λ·E[S²] / (2(1-ρ)). scv is the squared
// coefficient of variation of service (0 deterministic, 1 exponential).
func MG1FCFS(s, scv, lambda float64) (float64, error) {
	rho := lambda * s
	if rho >= 1 {
		return 0, ErrUnstable
	}
	es2 := s * s * (1 + scv)
	return s + lambda*es2/(2*(1-rho)), nil
}

// ErlangC returns the probability that an arrival must queue in an M/M/c
// system with offered load a = λ·S erlangs.
func ErlangC(c int, a float64) (float64, error) {
	if c <= 0 {
		return 0, errors.New("analytic: c must be positive")
	}
	if a >= float64(c) {
		return 0, ErrUnstable
	}
	// Stable recursion for the Erlang B blocking probability.
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho + rho*b), nil
}

// MMc predicts the mean sojourn time of an M/M/c queue with mean service
// time s and arrival rate lambda.
func MMc(c int, s, lambda float64) (float64, error) {
	a := lambda * s
	pq, err := ErlangC(c, a)
	if err != nil {
		return 0, err
	}
	return s + pq*s/(float64(c)-a), nil
}

// Utilization returns the offered utilization ρ = λ·S/c.
func Utilization(c int, s, lambda float64) float64 {
	if c <= 0 {
		return math.Inf(1)
	}
	return lambda * s / float64(c)
}
