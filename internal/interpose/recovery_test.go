package interpose

import (
	"errors"
	"testing"

	"repro/internal/balancer"
	"repro/internal/cuda"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// scriptedBackend is one fake backend daemon whose replies can be swallowed
// on demand — the deterministic stand-in for a crashed or wedged node.
type scriptedBackend struct {
	conn     *rpcproto.Conn
	received []*rpcproto.Call

	// swallow, when it returns true, drops the call without a reply (the
	// interposer sees only a timeout).
	swallow func(c *rpcproto.Call) bool

	nextPtr    int64
	nextStream int32
	nextEvent  int32
}

func startScriptedBackend(k *sim.Kernel, name string) *scriptedBackend {
	b := &scriptedBackend{conn: rpcproto.NewConn(k, rpcproto.LinkSpec{})}
	k.Go(name, func(p *sim.Proc) {
		ep := b.conn.B()
		for {
			call := ep.Recv(p).(*rpcproto.Call)
			cp := *call
			b.received = append(b.received, &cp)
			if b.swallow != nil && b.swallow(call) {
				continue
			}
			reply := &rpcproto.Reply{Seq: call.Seq}
			switch call.ID {
			case cuda.CallMalloc:
				b.nextPtr++
				reply.PtrID, reply.PtrSize = 1000+b.nextPtr, call.Bytes
			case cuda.CallStreamCreate:
				b.nextStream++
				reply.Stream = 500 + b.nextStream
			case cuda.CallEventCreate:
				b.nextEvent++
				reply.Event = 700 + b.nextEvent
			case cuda.CallDeviceCount:
				reply.Count = 4
			case cuda.CallThreadExit:
				reply.Feedback = &rpcproto.Feedback{Kind: call.KernelName}
			}
			if !call.NonBlocking {
				ep.Send(p, reply, 0)
			}
			if call.ID == cuda.CallThreadExit {
				return
			}
		}
	})
	return b
}

// failFabric routes the interposer across scripted backends indexed by GID
// and answers failure reports with a scripted health sequence.
type failFabric struct {
	backends []*scriptedBackend
	gids     []balancer.GID // SelectGPU answers, last repeats
	selects  int

	health    func(n int) balancer.Health // nth failure report (1-based)
	failures  int
	recovered int
	released  int
}

func (f *failFabric) SelectGPU(p *sim.Proc, req balancer.Request) balancer.GID {
	i := f.selects
	if i >= len(f.gids) {
		i = len(f.gids) - 1
	}
	f.selects++
	return f.gids[i]
}
func (f *failFabric) ConnectBackend(p *sim.Proc, gid balancer.GID, fromNode int) rpcproto.Endpoint {
	return f.backends[gid].conn.A()
}
func (f *failFabric) ReportFeedback(gid balancer.GID, kind string, fb *rpcproto.Feedback) {
	f.released++
}
func (f *failFabric) ReportFailure(p *sim.Proc, gid balancer.GID) balancer.Health {
	f.failures++
	if f.health == nil {
		return balancer.Suspect
	}
	return f.health(f.failures)
}
func (f *failFabric) ReportRecovered(gid balancer.GID) { f.recovered++ }
func (f *failFabric) PoolSize() int                    { return len(f.backends) }

// driveRecovery runs fn in a kernel against n scripted backends with
// recovery armed.
func driveRecovery(t *testing.T, n int, gids []balancer.GID, fn func(f *failFabric, ip *Interposer)) *failFabric {
	t.Helper()
	k := sim.NewKernel(1)
	f := &failFabric{gids: gids}
	for i := 0; i < n; i++ {
		f.backends = append(f.backends, startScriptedBackend(k, "backend"))
	}
	k.Go("app", func(p *sim.Proc) {
		ip := New(f, p, 9, 3, 2, "MC", 0, true)
		ip.SetRecovery(Recovery{CallTimeout: 10 * sim.Millisecond})
		fn(f, ip)
	})
	k.Run()
	return f
}

func TestRecoveryDisabledIsUntouched(t *testing.T) {
	f := driveRecovery(t, 1, []balancer.GID{0}, func(f *failFabric, ip *Interposer) {
		ip.SetRecovery(Recovery{}) // disarm again
		ip.SetDevice(0)
		if err := ip.DeviceSynchronize(); err != nil {
			t.Errorf("DeviceSynchronize: %v", err)
		}
		if ip.Timeouts() != 0 || ip.Failovers() != 0 || ip.Disrupted() {
			t.Errorf("disabled recovery accumulated state: %d/%d", ip.Timeouts(), ip.Failovers())
		}
	})
	if f.failures != 0 || f.recovered != 0 {
		t.Fatalf("disabled recovery reported health: %d failures", f.failures)
	}
}

func TestTimeoutRetrySucceeds(t *testing.T) {
	f := driveRecovery(t, 1, []balancer.GID{0}, func(f *failFabric, ip *Interposer) {
		swallowed := false
		f.backends[0].swallow = func(c *rpcproto.Call) bool {
			if c.ID == cuda.CallDeviceSync && !swallowed {
				swallowed = true
				return true
			}
			return false
		}
		ip.SetDevice(0)
		if err := ip.DeviceSynchronize(); err != nil {
			t.Errorf("DeviceSynchronize after retry: %v", err)
		}
		if ip.Timeouts() != 1 {
			t.Errorf("Timeouts = %d, want 1", ip.Timeouts())
		}
		if !ip.Disrupted() {
			t.Error("Disrupted = false after a timeout")
		}
	})
	if f.failures != 1 {
		t.Fatalf("failure reports = %d, want 1", f.failures)
	}
	if f.recovered != 1 {
		t.Fatalf("recovery reports = %d, want 1 (the retried call succeeded)", f.recovered)
	}
	// The wire saw the call twice: the swallowed original and the retry.
	counts := 0
	for _, c := range f.backends[0].received {
		if c.ID == cuda.CallDeviceSync {
			counts++
		}
	}
	if counts != 2 {
		t.Fatalf("backend saw %d DeviceSync sends, want 2", counts)
	}
}

func TestNonRetryableTimeoutSurfacesBackendLost(t *testing.T) {
	driveRecovery(t, 1, []balancer.GID{0}, func(f *failFabric, ip *Interposer) {
		f.backends[0].swallow = func(c *rpcproto.Call) bool { return c.ID == cuda.CallMalloc }
		ip.SetDevice(0)
		if _, err := ip.Malloc(100); !errors.Is(err, cuda.ErrBackendLost) {
			t.Errorf("Malloc on a silent backend = %v, want ErrBackendLost", err)
		}
	})
}

func TestRetryBudgetExhaustionSurfacesBackendLost(t *testing.T) {
	f := driveRecovery(t, 1, []balancer.GID{0}, func(f *failFabric, ip *Interposer) {
		ip.SetDevice(0)
		f.backends[0].swallow = func(c *rpcproto.Call) bool { return true }
		if err := ip.DeviceSynchronize(); !errors.Is(err, cuda.ErrBackendLost) {
			t.Errorf("sync against a dead-silent backend = %v, want ErrBackendLost", err)
		}
	})
	// Original + MaxRetries retransmits, each reported to the detector.
	if f.failures != 4 {
		t.Fatalf("failure reports = %d, want 4 (1 + MaxRetries)", f.failures)
	}
}

func TestFailoverReplaysStateOnReplacement(t *testing.T) {
	f := driveRecovery(t, 2, []balancer.GID{0, 1}, func(f *failFabric, ip *Interposer) {
		ip.SetDevice(0)
		ptr, err := ip.Malloc(4096)
		if err != nil {
			t.Fatalf("Malloc: %v", err)
		}
		st, err := ip.StreamCreate()
		if err != nil {
			t.Fatalf("StreamCreate: %v", err)
		}
		ev, err := ip.EventCreate()
		if err != nil {
			t.Fatalf("EventCreate: %v", err)
		}
		// Backend 0 dies: swallow everything; one failure → Dead.
		f.backends[0].swallow = func(c *rpcproto.Call) bool { return true }
		f.health = func(n int) balancer.Health { return balancer.Dead }
		if err := ip.DeviceSynchronize(); err != nil {
			t.Errorf("DeviceSynchronize after failover: %v", err)
		}
		if ip.Failovers() != 1 {
			t.Errorf("Failovers = %d, want 1", ip.Failovers())
		}
		if ip.Device() != 1 {
			t.Errorf("Device after failover = %d, want 1", ip.Device())
		}
		// Client-visible handles survived the failover; the wire calls below
		// must carry backend 1's ids.
		if err := ip.MemcpyAsync(cuda.H2D, ptr, 128, st); err != nil {
			t.Errorf("MemcpyAsync on replayed handles: %v", err)
		}
		if err := ip.EventRecord(ev, st); err != nil {
			t.Errorf("EventRecord on replayed handles: %v", err)
		}
		if err := ip.Free(ptr); err != nil {
			t.Errorf("Free of replayed ptr: %v", err)
		}
	})
	b1 := f.backends[1]
	var ids []cuda.CallID
	for _, c := range b1.received {
		ids = append(ids, c.ID)
	}
	// Rebind: register, replay stream, allocation and event; then the
	// pending DeviceCount, then the post-failover traffic.
	want := []cuda.CallID{cuda.CallSetDevice, cuda.CallStreamCreate, cuda.CallMalloc,
		cuda.CallEventCreate, cuda.CallDeviceSync, cuda.CallMemcpyAsync,
		cuda.CallEventRecord, cuda.CallFree}
	if len(ids) != len(want) {
		t.Fatalf("backend 1 call sequence = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("backend 1 call sequence = %v, want %v", ids, want)
		}
	}
	// The replayed Malloc preserved the size, and later calls use the
	// replacement's handles (backend 1 ids start at 1001/501/701).
	for _, c := range b1.received {
		switch c.ID {
		case cuda.CallMalloc:
			if c.Bytes != 4096 {
				t.Fatalf("replayed Malloc bytes = %d, want 4096", c.Bytes)
			}
		case cuda.CallMemcpyAsync:
			if c.PtrID != 1001 || c.Stream != 501 {
				t.Fatalf("MemcpyAsync used stale ids: ptr=%d stream=%d", c.PtrID, c.Stream)
			}
		case cuda.CallEventRecord:
			if c.Event != 701 {
				t.Fatalf("EventRecord used stale event id %d", c.Event)
			}
		case cuda.CallFree:
			if c.PtrID != 1001 {
				t.Fatalf("Free used stale ptr id %d", c.PtrID)
			}
		}
	}
	if f.released == 0 {
		t.Fatal("failover never released the dead binding")
	}
}
