// Package interpose implements the Strings frontend: the CUDA-runtime
// interposer library that dynamically links with an application (Figure 3 of
// the paper). It intercepts every CUDA runtime call, overrides the
// application's device selection through the GPU Affinity Mapper, marshals
// calls into RPC packets for the backend daemon owning the chosen GPU, and
// applies the paper's asynchrony optimization: calls without output
// parameters (kernel launches, host-to-device copies, frees) are issued as
// non-blocking RPCs so the application's CPU component runs ahead of the
// runtime layer.
package interpose

import (
	"fmt"

	"repro/internal/balancer"
	"repro/internal/cuda"
	"repro/internal/rpcproto"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Fabric is what the interposer needs from the hosting Strings/Rain
// runtime: the affinity-mapper RPC, backend connections, and the feedback
// relay.
type Fabric interface {
	// SelectGPU performs the device-selection RPC with the workload
	// balancer; it blocks the calling process for the control round trip.
	SelectGPU(p *sim.Proc, req balancer.Request) balancer.GID
	// ConnectBackend opens an RPC connection from the application's node to
	// the backend daemon serving gid and returns the frontend endpoint.
	ConnectBackend(p *sim.Proc, gid balancer.GID, fromNode int) rpcproto.Endpoint
	// ReportFeedback relays a Feedback Engine report (piggybacked on the
	// cudaThreadExit reply) to the affinity mapper and releases the
	// binding.
	ReportFeedback(gid balancer.GID, kind string, fb *rpcproto.Feedback)
	// ReportFailure feeds one failed call against gid into the mapper's
	// failure detector and returns the row's resulting health; it blocks
	// the calling process for the control round trip.
	ReportFailure(p *sim.Proc, gid balancer.GID) balancer.Health
	// ReportRecovered records a successful call against a previously
	// suspect device (fire and forget).
	ReportRecovered(gid balancer.GID)
	// PoolSize returns the number of GPUs in the gPool.
	PoolSize() int
}

// MarshalOverhead is the CPU cost of interception, argument marshalling and
// RPC issue, charged per intercepted call.
const MarshalOverhead = 3 * sim.Microsecond

// Interposer implements cuda.Client for one application thread.
type Interposer struct {
	fab    Fabric
	p      *sim.Proc
	appID  int
	tenant int64
	weight int
	kind   string
	node   int

	// async enables the paper's asynchrony optimization (non-blocking RPCs
	// for calls without output parameters). Strings turns it on; the Rain
	// baseline predates it and issues every RPC synchronously.
	async bool

	bound  bool
	gid    balancer.GID
	ep     rpcproto.Endpoint
	seq    uint64
	exited bool

	// LastFeedback is the report returned on ThreadExit (also relayed to
	// the mapper); experiments read it for per-tenant accounting.
	LastFeedback *rpcproto.Feedback

	// rec is the failure-handling state (see recovery.go); disabled by
	// default, armed via SetRecovery.
	rec recState

	// tr is the observability recorder (nil when tracing is off) and
	// reqSpan the enclosing request span every call span parents to.
	tr      *trace.Recorder
	reqSpan trace.SpanID

	calls int

	// pool recycles Call/Reply frames over the backend connection (nil —
	// allocate-and-drop — until bound, and always nil in recovery mode,
	// whose retransmission state retains frames past the round trip).
	// lastCall/lastReply are the previous blocking round trip's frames:
	// by the time the frontend issues the next call the reply has been
	// fully consumed, so newCall recycles them one call late.
	pool      *rpcproto.Pool
	lastCall  *rpcproto.Call
	lastReply *rpcproto.Reply
}

// SetTrace installs the observability recorder and the enclosing request
// span. Call before the first CUDA call; a nil recorder disables tracing.
func (ip *Interposer) SetTrace(tr *trace.Recorder, reqSpan trace.SpanID) {
	ip.tr = tr
	ip.reqSpan = reqSpan
}

// New creates the interposer for an application thread running on process p
// at the given node. kind is the application's class name, carried to the
// scheduler for SFT keying. async enables non-blocking RPCs for calls
// without output parameters (Strings); Rain's frontend passes false.
func New(fab Fabric, p *sim.Proc, appID int, tenant int64, weight int, kind string, node int, async bool) *Interposer {
	return &Interposer{
		fab: fab, p: p, appID: appID, tenant: tenant, weight: weight,
		kind: kind, node: node, async: async,
	}
}

// Proc implements cuda.Client.
func (ip *Interposer) Proc() *sim.Proc { return ip.p }

// Calls returns the number of intercepted calls.
func (ip *Interposer) Calls() int { return ip.calls }

// GID returns the gPool device the application was bound to.
func (ip *Interposer) GID() balancer.GID { return ip.gid }

// newCall stamps a marshalled call with identity and sequence. It also
// recycles the previous blocking round trip's frames: issuing a new call
// proves the application has consumed the old reply.
func (ip *Interposer) newCall(id cuda.CallID) *rpcproto.Call {
	if ip.lastCall != nil {
		ip.pool.FreeCall(ip.lastCall)
		ip.lastCall = nil
	}
	if ip.lastReply != nil {
		ip.pool.FreeReply(ip.lastReply)
		ip.lastReply = nil
	}
	ip.seq++
	ip.calls++
	c := ip.pool.GetCall()
	c.ID = id
	c.Seq = ip.seq
	c.AppID = int64(ip.appID)
	c.TenantID = ip.tenant
	c.Weight = int32(ip.weight)
	return c
}

// ensureBound lazily binds to a GPU: CUDA initializes on first use when the
// application never calls cudaSetDevice.
func (ip *Interposer) ensureBound() error {
	if ip.bound {
		return nil
	}
	return ip.SetDevice(0)
}

// send issues a call; blocking calls wait for and return the matching
// reply, non-blocking calls return immediately (the paper's asynchronous
// RPC optimization; errors surface at the next synchronizing call). With a
// recorder installed, each call gets a span covering its frontend-visible
// latency (non-blocking calls close at issue).
func (ip *Interposer) send(c *rpcproto.Call, blocking bool) (*rpcproto.Reply, error) {
	if !ip.tr.Enabled() {
		return ip.sendRPC(c, blocking)
	}
	sp := ip.tr.Begin(trace.KCall, ip.reqSpan, ip.p.Now(), c.ID.String(),
		ip.appID, int(ip.gid), int64(c.Seq))
	r, err := ip.sendRPC(c, blocking)
	ip.tr.End(sp, ip.p.Now())
	return r, err
}

// sendRPC is send's wire path.
func (ip *Interposer) sendRPC(c *rpcproto.Call, blocking bool) (*rpcproto.Reply, error) {
	ip.p.Sleep(MarshalOverhead)
	if !ip.async {
		blocking = true
	}
	c.NonBlocking = !blocking
	if ip.rec.cfg.Enabled() {
		return ip.sendReliable(c, blocking)
	}
	ip.ep.Send(ip.p, c, c.PayloadBytes())
	if !blocking {
		return nil, nil
	}
	for {
		msg := ip.ep.Recv(ip.p)
		r, ok := msg.(*rpcproto.Reply)
		if !ok {
			return nil, fmt.Errorf("interpose: unexpected message %T", msg)
		}
		// Replies arrive in order; skip any stale reply below our seq
		// (there are none in the current protocol, but be defensive).
		if r.Seq == c.Seq {
			// Both frames are now owned by the frontend; the next newCall
			// recycles them once this reply has been consumed.
			ip.lastCall = c
			ip.lastReply = r
			return r, r.AsError()
		}
		if r.Seq > c.Seq {
			return nil, fmt.Errorf("interpose: reply %d overtook call %d", r.Seq, c.Seq)
		}
	}
}

// SetDevice implements cuda.Client: the call is intercepted and the target
// GPU is chosen by the workload balancer instead of the application.
func (ip *Interposer) SetDevice(dev int) error {
	if ip.exited {
		return cuda.ErrThreadExited
	}
	if ip.bound {
		// Re-selection after binding is ignored: the balancer owns
		// placement for the application's lifetime.
		return nil
	}
	ip.p.Sleep(MarshalOverhead)
	sel := ip.tr.Begin(trace.KSelect, ip.reqSpan, ip.p.Now(), "select-gpu",
		ip.appID, -1, 0)
	gid := ip.fab.SelectGPU(ip.p, balancer.Request{
		AppID: ip.appID, Kind: ip.kind, Node: ip.node, Tenant: ip.tenant,
	})
	ip.tr.SetGID(sel, int(gid))
	ip.tr.End(sel, ip.p.Now())
	ip.gid = gid
	ip.ep = ip.fab.ConnectBackend(ip.p, gid, ip.node)
	ip.bound = true
	if ip.rec.cfg.Enabled() {
		// Retransmission retains frames past their round trip: both sides
		// of the connection must stop recycling.
		ip.ep.Pool().Disable()
	} else {
		ip.pool = ip.ep.Pool()
	}
	reg := ip.newCall(cuda.CallSetDevice)
	reg.Dev = int32(gid)
	reg.KernelName = ip.kind // carries the class for RCB/SFT keying
	_, err := ip.send(reg, true)
	return err
}

// Device implements cuda.Client.
func (ip *Interposer) Device() int { return int(ip.gid) }

// DeviceCount implements cuda.Client: applications see the whole gPool.
func (ip *Interposer) DeviceCount() int {
	ip.calls++
	return ip.fab.PoolSize()
}

// Malloc implements cuda.Client.
func (ip *Interposer) Malloc(bytes int64) (cuda.Ptr, error) {
	if err := ip.ensureBound(); err != nil {
		return cuda.Ptr{}, err
	}
	c := ip.newCall(cuda.CallMalloc)
	c.Bytes = bytes
	r, err := ip.send(c, true)
	if err != nil {
		return cuda.Ptr{}, err
	}
	return ip.internPtr(r), nil
}

// Free implements cuda.Client. Free has no output parameters, so it rides
// the non-blocking path.
func (ip *Interposer) Free(ptr cuda.Ptr) error {
	if err := ip.ensureBound(); err != nil {
		return err
	}
	c := ip.newCall(cuda.CallFree)
	c.PtrID, c.PtrSize, c.PtrDev = ptr.ID, ptr.Size, int32(ptr.Dev)
	_, err := ip.send(c, false)
	ip.forgetPtr(ptr.ID)
	return err
}

// Memcpy implements cuda.Client. Host-to-device copies carry the buffer
// with the request and return immediately (the MOT makes them asynchronous
// at the backend); device-to-host copies must return data, so they block.
func (ip *Interposer) Memcpy(dir cuda.Dir, ptr cuda.Ptr, bytes int64) error {
	if err := ip.ensureBound(); err != nil {
		return err
	}
	c := ip.newCall(cuda.CallMemcpy)
	c.Dir = dir
	c.Bytes = bytes
	c.PtrID, c.PtrSize, c.PtrDev = ptr.ID, ptr.Size, int32(ptr.Dev)
	_, err := ip.send(c, dir == cuda.D2H)
	return err
}

// MemcpyAsync implements cuda.Client.
func (ip *Interposer) MemcpyAsync(dir cuda.Dir, ptr cuda.Ptr, bytes int64, s cuda.StreamID) error {
	if err := ip.ensureBound(); err != nil {
		return err
	}
	c := ip.newCall(cuda.CallMemcpyAsync)
	c.Dir = dir
	c.Bytes = bytes
	c.Stream = int32(s)
	c.PtrID, c.PtrSize, c.PtrDev = ptr.ID, ptr.Size, int32(ptr.Dev)
	_, err := ip.send(c, false)
	return err
}

// Launch implements cuda.Client; launches are asynchronous RPCs.
func (ip *Interposer) Launch(k cuda.Kernel, s cuda.StreamID) error {
	if err := ip.ensureBound(); err != nil {
		return err
	}
	c := ip.newCall(cuda.CallLaunch)
	c.KernelName = k.Name
	c.Compute = k.Compute
	c.MemTraffic = k.MemTraffic
	c.Occupancy = k.Occupancy
	c.Stream = int32(s)
	_, err := ip.send(c, false)
	return err
}

// StreamCreate implements cuda.Client.
func (ip *Interposer) StreamCreate() (cuda.StreamID, error) {
	if err := ip.ensureBound(); err != nil {
		return 0, err
	}
	r, err := ip.send(ip.newCall(cuda.CallStreamCreate), true)
	if err != nil {
		return 0, err
	}
	return ip.internStream(r.Stream), nil
}

// StreamSynchronize implements cuda.Client.
func (ip *Interposer) StreamSynchronize(s cuda.StreamID) error {
	if err := ip.ensureBound(); err != nil {
		return err
	}
	c := ip.newCall(cuda.CallStreamSync)
	c.Stream = int32(s)
	_, err := ip.send(c, true)
	return err
}

// StreamDestroy implements cuda.Client.
func (ip *Interposer) StreamDestroy(s cuda.StreamID) error {
	if err := ip.ensureBound(); err != nil {
		return err
	}
	c := ip.newCall(cuda.CallStreamDestroy)
	c.Stream = int32(s)
	_, err := ip.send(c, true)
	ip.forgetStream(s)
	return err
}

// DeviceSynchronize implements cuda.Client. The backend's SST scopes it to
// the application's own stream.
func (ip *Interposer) DeviceSynchronize() error {
	if err := ip.ensureBound(); err != nil {
		return err
	}
	_, err := ip.send(ip.newCall(cuda.CallDeviceSync), true)
	return err
}

// EventCreate implements cuda.Client.
func (ip *Interposer) EventCreate() (cuda.EventID, error) {
	if err := ip.ensureBound(); err != nil {
		return 0, err
	}
	r, err := ip.send(ip.newCall(cuda.CallEventCreate), true)
	if err != nil {
		return 0, err
	}
	return ip.internEvent(r.Event), nil
}

// EventRecord implements cuda.Client; records ride the non-blocking path
// (no output parameters).
func (ip *Interposer) EventRecord(e cuda.EventID, s cuda.StreamID) error {
	if err := ip.ensureBound(); err != nil {
		return err
	}
	c := ip.newCall(cuda.CallEventRecord)
	c.Event = int32(e)
	c.Stream = int32(s)
	_, err := ip.send(c, false)
	return err
}

// EventSynchronize implements cuda.Client.
func (ip *Interposer) EventSynchronize(e cuda.EventID) error {
	if err := ip.ensureBound(); err != nil {
		return err
	}
	c := ip.newCall(cuda.CallEventSync)
	c.Event = int32(e)
	_, err := ip.send(c, true)
	return err
}

// EventElapsed implements cuda.Client.
func (ip *Interposer) EventElapsed(start, end cuda.EventID) (sim.Time, error) {
	if err := ip.ensureBound(); err != nil {
		return 0, err
	}
	c := ip.newCall(cuda.CallEventElapsed)
	c.Event = int32(start)
	c.Event2 = int32(end)
	r, err := ip.send(c, true)
	if err != nil {
		return 0, err
	}
	return sim.Time(r.Elapsed), nil
}

// EventDestroy implements cuda.Client; no output parameters.
func (ip *Interposer) EventDestroy(e cuda.EventID) error {
	if err := ip.ensureBound(); err != nil {
		return err
	}
	c := ip.newCall(cuda.CallEventDestroy)
	c.Event = int32(e)
	_, err := ip.send(c, false)
	ip.forgetEvent(e)
	return err
}

// ThreadExit implements cuda.Client: the reply piggybacks the Feedback
// Engine's report, which the interposer relays to the affinity mapper.
func (ip *Interposer) ThreadExit() error {
	if ip.exited {
		return cuda.ErrThreadExited
	}
	if err := ip.ensureBound(); err != nil {
		return err
	}
	r, err := ip.send(ip.newCall(cuda.CallThreadExit), true)
	ip.exited = true
	if r != nil && r.Feedback != nil {
		ip.LastFeedback = r.Feedback
	}
	ip.fab.ReportFeedback(ip.gid, ip.kind, ip.LastFeedback)
	return err
}
