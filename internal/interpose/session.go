package interpose

import (
	"repro/internal/cuda"
	"repro/internal/sim"
)

// MTSession shares one interposer binding among several host threads of the
// same application. The paper's asynchrony optimization is only safe for
// single-threaded applications — non-blocking RPCs from separate threads
// could be dispatched out of the application-intended order (e.g. a
// cudaLaunch from one thread depending on a memcpy from another). MTSession
// implements the correction the paper prescribes: per-device buffer
// synchronization logic that serializes the threads' GPU operations into a
// single intended order on the shared connection.
type MTSession struct {
	ip *Interposer
	mu *sim.Mutex
}

// NewMTSession wraps an interposer for multi-threaded use. The interposer's
// creating thread may keep using it directly only via a Thread view.
func NewMTSession(k *sim.Kernel, ip *Interposer) *MTSession {
	return &MTSession{ip: ip, mu: k.NewMutex()}
}

// Thread returns a cuda.Client view for one host thread running on p. All
// views share the session's binding, stream table and device allocations.
func (s *MTSession) Thread(p *sim.Proc) cuda.Client {
	return &mtThread{s: s, p: p}
}

// Interposer exposes the shared underlying interposer (for feedback
// inspection after exit).
func (s *MTSession) Interposer() *Interposer { return s.ip }

// mtThread is one host thread's serialized view of the session.
type mtThread struct {
	s *MTSession
	p *sim.Proc
}

// enter acquires the session's order lock and points the interposer at the
// calling thread; the simulation kernel's one-process-at-a-time execution
// makes the swap safe under the lock.
func (t *mtThread) enter() func() {
	t.s.mu.Lock(t.p)
	prev := t.s.ip.p
	t.s.ip.p = t.p
	return func() {
		t.s.ip.p = prev
		t.s.mu.Unlock()
	}
}

// Proc implements cuda.Client.
func (t *mtThread) Proc() *sim.Proc { return t.p }

// SetDevice implements cuda.Client.
func (t *mtThread) SetDevice(dev int) error {
	defer t.enter()()
	return t.s.ip.SetDevice(dev)
}

// Device implements cuda.Client.
func (t *mtThread) Device() int { return t.s.ip.Device() }

// DeviceCount implements cuda.Client.
func (t *mtThread) DeviceCount() int {
	defer t.enter()()
	return t.s.ip.DeviceCount()
}

// Malloc implements cuda.Client.
func (t *mtThread) Malloc(bytes int64) (cuda.Ptr, error) {
	defer t.enter()()
	return t.s.ip.Malloc(bytes)
}

// Free implements cuda.Client.
func (t *mtThread) Free(p cuda.Ptr) error {
	defer t.enter()()
	return t.s.ip.Free(p)
}

// Memcpy implements cuda.Client.
func (t *mtThread) Memcpy(dir cuda.Dir, p cuda.Ptr, bytes int64) error {
	defer t.enter()()
	return t.s.ip.Memcpy(dir, p, bytes)
}

// MemcpyAsync implements cuda.Client.
func (t *mtThread) MemcpyAsync(dir cuda.Dir, p cuda.Ptr, bytes int64, s cuda.StreamID) error {
	defer t.enter()()
	return t.s.ip.MemcpyAsync(dir, p, bytes, s)
}

// Launch implements cuda.Client.
func (t *mtThread) Launch(k cuda.Kernel, s cuda.StreamID) error {
	defer t.enter()()
	return t.s.ip.Launch(k, s)
}

// StreamCreate implements cuda.Client.
func (t *mtThread) StreamCreate() (cuda.StreamID, error) {
	defer t.enter()()
	return t.s.ip.StreamCreate()
}

// StreamSynchronize implements cuda.Client.
func (t *mtThread) StreamSynchronize(s cuda.StreamID) error {
	defer t.enter()()
	return t.s.ip.StreamSynchronize(s)
}

// StreamDestroy implements cuda.Client.
func (t *mtThread) StreamDestroy(s cuda.StreamID) error {
	defer t.enter()()
	return t.s.ip.StreamDestroy(s)
}

// DeviceSynchronize implements cuda.Client.
func (t *mtThread) DeviceSynchronize() error {
	defer t.enter()()
	return t.s.ip.DeviceSynchronize()
}

// EventCreate implements cuda.Client.
func (t *mtThread) EventCreate() (cuda.EventID, error) {
	defer t.enter()()
	return t.s.ip.EventCreate()
}

// EventRecord implements cuda.Client.
func (t *mtThread) EventRecord(e cuda.EventID, s cuda.StreamID) error {
	defer t.enter()()
	return t.s.ip.EventRecord(e, s)
}

// EventSynchronize implements cuda.Client.
func (t *mtThread) EventSynchronize(e cuda.EventID) error {
	defer t.enter()()
	return t.s.ip.EventSynchronize(e)
}

// EventElapsed implements cuda.Client.
func (t *mtThread) EventElapsed(start, end cuda.EventID) (sim.Time, error) {
	defer t.enter()()
	return t.s.ip.EventElapsed(start, end)
}

// EventDestroy implements cuda.Client.
func (t *mtThread) EventDestroy(e cuda.EventID) error {
	defer t.enter()()
	return t.s.ip.EventDestroy(e)
}

// ThreadExit implements cuda.Client. The session is shared, so only the
// last thread's exit tears the binding down; earlier exits are no-ops by
// convention of the callers (workload joins its threads before exiting).
func (t *mtThread) ThreadExit() error {
	defer t.enter()()
	return t.s.ip.ThreadExit()
}
