package interpose

import (
	"testing"

	"repro/internal/cuda"
	"repro/internal/sim"
)

func TestMTSessionSerializesThreads(t *testing.T) {
	k := sim.NewKernel(1)
	f := newFakeFabric(k)
	ip := New(f, nil, 9, 3, 1, "MC", 0, true)
	sess := NewMTSession(k, ip)
	done := 0
	for i := 0; i < 2; i++ {
		i := i
		k.Go("host-thread", func(p *sim.Proc) {
			c := sess.Thread(p)
			if i == 0 {
				if err := c.SetDevice(0); err != nil {
					t.Errorf("SetDevice: %v", err)
				}
			}
			p.Sleep(sim.Time(i)) // skew the threads
			for j := 0; j < 5; j++ {
				ptr, err := c.Malloc(64)
				if err != nil {
					t.Errorf("thread %d malloc: %v", i, err)
					return
				}
				if err := c.Memcpy(cuda.H2D, ptr, 32); err != nil {
					t.Errorf("thread %d memcpy: %v", i, err)
					return
				}
				if err := c.Launch(cuda.Kernel{Compute: 10}, cuda.DefaultStream); err != nil {
					t.Errorf("thread %d launch: %v", i, err)
					return
				}
				if err := c.DeviceSynchronize(); err != nil {
					t.Errorf("thread %d sync: %v", i, err)
					return
				}
			}
			done++
		})
	}
	k.Run()
	if done != 2 {
		t.Fatalf("threads finished = %d", done)
	}
	// The wire must carry a single, strictly increasing sequence — the
	// application-intended order across both threads.
	var prev uint64
	for _, c := range f.received {
		if c.Seq <= prev {
			t.Fatalf("out-of-order call %v: seq %d after %d", c.ID, c.Seq, prev)
		}
		prev = c.Seq
	}
	if len(f.received) < 40 {
		t.Fatalf("only %d calls received", len(f.received))
	}
}

func TestMTSessionBlockingCallHoldsOrder(t *testing.T) {
	// While one thread waits on a blocking D2H, the other thread's calls
	// must not be interleaved into the reply stream.
	k := sim.NewKernel(1)
	f := newFakeFabric(k)
	ip := New(f, nil, 9, 3, 1, "MC", 0, true)
	sess := NewMTSession(k, ip)
	var errs []error
	k.Go("t1", func(p *sim.Proc) {
		c := sess.Thread(p)
		c.SetDevice(0)
		ptr, _ := c.Malloc(128)
		for i := 0; i < 10; i++ {
			if err := c.Memcpy(cuda.D2H, ptr, 64); err != nil {
				errs = append(errs, err)
			}
		}
	})
	k.Go("t2", func(p *sim.Proc) {
		c := sess.Thread(p)
		for i := 0; i < 10; i++ {
			p.Sleep(1)
			if err := c.Launch(cuda.Kernel{Compute: 10}, cuda.DefaultStream); err != nil {
				errs = append(errs, err)
			}
		}
	})
	k.Run()
	if len(errs) > 0 {
		t.Fatalf("cross-thread interleaving broke the session: %v", errs[0])
	}
}
