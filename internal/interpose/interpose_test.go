package interpose

import (
	"errors"
	"testing"

	"repro/internal/balancer"
	"repro/internal/cuda"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// fakeFabric pairs the interposer with an in-kernel echo backend that
// records the calls it receives and produces scripted replies.
type fakeFabric struct {
	k        *sim.Kernel
	selected []balancer.Request
	gid      balancer.GID
	conn     *rpcproto.Conn
	received []*rpcproto.Call
	feedback []*rpcproto.Feedback
	released []string

	// Failure-detector scripting for the recovery tests.
	health    func(gid balancer.GID) balancer.Health // nil → always Suspect
	failures  int
	recovered int
}

func newFakeFabric(k *sim.Kernel) *fakeFabric {
	f := &fakeFabric{k: k, gid: 1, conn: rpcproto.NewConn(k, rpcproto.LinkSpec{})}
	k.Go("fake-backend", func(p *sim.Proc) {
		ep := f.conn.B()
		for {
			call := ep.Recv(p).(*rpcproto.Call)
			// The frontend recycles blocking-call frames after consuming the
			// reply; a backend that retains calls must copy them.
			cc := *call
			f.received = append(f.received, &cc)
			reply := &rpcproto.Reply{Seq: call.Seq}
			switch call.ID {
			case cuda.CallMalloc:
				reply.PtrID, reply.PtrSize = 77, call.Bytes
			case cuda.CallStreamCreate:
				reply.Stream = 5
			case cuda.CallDeviceCount:
				reply.Count = 4
			case cuda.CallThreadExit:
				reply.Feedback = &rpcproto.Feedback{Kind: call.KernelName, GPUTime: 123}
			}
			if call.ID == cuda.CallThreadExit {
				ep.Send(p, reply, 0)
				return
			}
			if !call.NonBlocking {
				ep.Send(p, reply, 0)
			}
		}
	})
	return f
}

func (f *fakeFabric) SelectGPU(p *sim.Proc, req balancer.Request) balancer.GID {
	f.selected = append(f.selected, req)
	return f.gid
}
func (f *fakeFabric) ConnectBackend(p *sim.Proc, gid balancer.GID, fromNode int) rpcproto.Endpoint {
	return f.conn.A()
}
func (f *fakeFabric) ReportFeedback(gid balancer.GID, kind string, fb *rpcproto.Feedback) {
	f.released = append(f.released, kind)
	f.feedback = append(f.feedback, fb)
}
func (f *fakeFabric) ReportFailure(p *sim.Proc, gid balancer.GID) balancer.Health {
	f.failures++
	if f.health == nil {
		return balancer.Suspect
	}
	return f.health(gid)
}
func (f *fakeFabric) ReportRecovered(gid balancer.GID) { f.recovered++ }
func (f *fakeFabric) PoolSize() int                    { return 4 }

func drive(t *testing.T, fn func(f *fakeFabric, ip *Interposer)) *fakeFabric {
	t.Helper()
	k := sim.NewKernel(1)
	f := newFakeFabric(k)
	k.Go("app", func(p *sim.Proc) {
		ip := New(f, p, 9, 3, 2, "MC", 0, true)
		fn(f, ip)
	})
	k.Run()
	return f
}

func TestSetDeviceOverridesSelection(t *testing.T) {
	f := drive(t, func(f *fakeFabric, ip *Interposer) {
		if err := ip.SetDevice(0); err != nil {
			t.Errorf("SetDevice: %v", err)
		}
		if ip.Device() != 1 {
			t.Errorf("Device = %d, want balancer's GID 1", ip.Device())
		}
		// A second SetDevice is ignored: the balancer owns placement.
		if err := ip.SetDevice(3); err != nil {
			t.Errorf("re-SetDevice: %v", err)
		}
	})
	if len(f.selected) != 1 {
		t.Fatalf("selections = %d, want 1", len(f.selected))
	}
	req := f.selected[0]
	if req.Kind != "MC" || req.AppID != 9 || req.Tenant != 3 {
		t.Fatalf("selection request = %+v", req)
	}
	reg := f.received[0]
	if reg.ID != cuda.CallSetDevice || reg.KernelName != "MC" || reg.Weight != 2 {
		t.Fatalf("registration call = %+v", reg)
	}
}

func TestLazyBindingOnFirstCall(t *testing.T) {
	f := drive(t, func(f *fakeFabric, ip *Interposer) {
		if _, err := ip.Malloc(100); err != nil {
			t.Errorf("Malloc: %v", err)
		}
	})
	if len(f.selected) != 1 {
		t.Fatalf("lazy bind selections = %d", len(f.selected))
	}
	if f.received[0].ID != cuda.CallSetDevice || f.received[1].ID != cuda.CallMalloc {
		t.Fatalf("call order = %v, %v", f.received[0].ID, f.received[1].ID)
	}
}

func TestAsyncCallsAreNonBlocking(t *testing.T) {
	f := drive(t, func(f *fakeFabric, ip *Interposer) {
		ip.SetDevice(0)
		ptr, _ := ip.Malloc(1000)
		t0 := ip.Proc().Now()
		if err := ip.Memcpy(cuda.H2D, ptr, 500); err != nil {
			t.Errorf("H2D: %v", err)
		}
		if err := ip.Launch(cuda.Kernel{Compute: 1}, cuda.DefaultStream); err != nil {
			t.Errorf("Launch: %v", err)
		}
		if err := ip.Free(ptr); err != nil {
			t.Errorf("Free: %v", err)
		}
		if d := ip.Proc().Now() - t0; d > 3*MarshalOverhead {
			t.Errorf("async calls blocked for %v", d)
		}
	})
	var flags []bool
	for _, c := range f.received {
		flags = append(flags, c.NonBlocking)
	}
	// SetDevice and Malloc block; H2D memcpy, launch and free do not.
	want := []bool{false, false, true, true, true}
	for i := range want {
		if flags[i] != want[i] {
			t.Fatalf("NonBlocking flags = %v, want %v", flags, want)
		}
	}
}

func TestSyncModeForcesBlocking(t *testing.T) {
	// async=false (the Rain frontend) turns every RPC synchronous.
	k := sim.NewKernel(1)
	f := newFakeFabric(k)
	k.Go("app", func(p *sim.Proc) {
		ip := New(f, p, 9, 3, 1, "MC", 0, false)
		ip.SetDevice(0)
		ptr, _ := ip.Malloc(100)
		ip.Memcpy(cuda.H2D, ptr, 50)
		ip.Launch(cuda.Kernel{Compute: 1}, cuda.DefaultStream)
	})
	k.Run()
	for _, c := range f.received {
		if c.NonBlocking {
			t.Fatalf("call %v non-blocking under sync frontend", c.ID)
		}
	}
}

func TestD2HBlocksForData(t *testing.T) {
	drive(t, func(f *fakeFabric, ip *Interposer) {
		ip.SetDevice(0)
		ptr, _ := ip.Malloc(100)
		if err := ip.Memcpy(cuda.D2H, ptr, 50); err != nil {
			t.Errorf("D2H: %v", err)
		}
		// The reply consumed above must leave the reply stream aligned.
		if n := ip.DeviceCount(); n != 4 {
			t.Errorf("DeviceCount = %d", n)
		}
	})
}

func TestStreamLifecycleForwarded(t *testing.T) {
	f := drive(t, func(f *fakeFabric, ip *Interposer) {
		ip.SetDevice(0)
		s, err := ip.StreamCreate()
		if err != nil || s != 5 {
			t.Errorf("StreamCreate = %v, %v", s, err)
		}
		if err := ip.MemcpyAsync(cuda.H2D, cuda.Ptr{ID: 1, Size: 10}, 10, s); err != nil {
			t.Errorf("MemcpyAsync: %v", err)
		}
		if err := ip.StreamSynchronize(s); err != nil {
			t.Errorf("StreamSynchronize: %v", err)
		}
		if err := ip.StreamDestroy(s); err != nil {
			t.Errorf("StreamDestroy: %v", err)
		}
		if err := ip.DeviceSynchronize(); err != nil {
			t.Errorf("DeviceSynchronize: %v", err)
		}
	})
	var ids []cuda.CallID
	for _, c := range f.received {
		ids = append(ids, c.ID)
	}
	want := []cuda.CallID{cuda.CallSetDevice, cuda.CallStreamCreate,
		cuda.CallMemcpyAsync, cuda.CallStreamSync, cuda.CallStreamDestroy, cuda.CallDeviceSync}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("call sequence = %v, want %v", ids, want)
		}
	}
}

func TestThreadExitRelaysFeedback(t *testing.T) {
	f := drive(t, func(f *fakeFabric, ip *Interposer) {
		ip.SetDevice(0)
		if err := ip.ThreadExit(); err != nil {
			t.Errorf("ThreadExit: %v", err)
		}
		if ip.LastFeedback == nil || ip.LastFeedback.GPUTime != 123 {
			t.Errorf("LastFeedback = %+v", ip.LastFeedback)
		}
		if err := ip.ThreadExit(); !errors.Is(err, cuda.ErrThreadExited) {
			t.Errorf("second exit = %v", err)
		}
	})
	if len(f.feedback) != 1 || f.feedback[0].GPUTime != 123 {
		t.Fatalf("relayed feedback = %+v", f.feedback)
	}
	if len(f.released) != 1 || f.released[0] != "MC" {
		t.Fatalf("released = %v", f.released)
	}
}

func TestCallCounting(t *testing.T) {
	drive(t, func(f *fakeFabric, ip *Interposer) {
		ip.SetDevice(0)
		ip.DeviceCount()
		ip.Malloc(10)
		if ip.Calls() != 3 {
			t.Errorf("Calls = %d, want 3", ip.Calls())
		}
	})
}
