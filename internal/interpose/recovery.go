package interpose

import (
	"fmt"
	"slices"

	"repro/internal/balancer"
	"repro/internal/cuda"
	"repro/internal/rpcproto"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Recovery configures the interposer's failure handling. The zero value
// disables it entirely: no timeouts are armed, no bookkeeping runs, and the
// interposer behaves bit-identically to the pre-fault-tolerance code. With
// a CallTimeout set, every blocking RPC is guarded by a virtual-time
// timeout; idempotent calls are retransmitted with capped exponential
// backoff, and once the affinity mapper declares the backend Dead the
// interposer fails over to a replacement GPU, re-registers, replays its
// surviving state (allocations, streams, events) and re-issues the pending
// call. Non-retryable calls on a lost backend surface cuda.ErrBackendLost.
type Recovery struct {
	// CallTimeout bounds each blocking call's wait for a reply. 0 disables
	// recovery.
	CallTimeout sim.Time

	// MaxRetries is how many times a timed-out idempotent call is
	// retransmitted on the same connection before giving up (default 3 —
	// enough for one frontend to drive the detector to Dead on its own).
	MaxRetries int

	// BackoffBase and BackoffCap shape the retransmit delay: the first
	// retry waits BackoffBase, doubling per attempt up to BackoffCap
	// (defaults 1ms and 50ms of virtual time).
	BackoffBase sim.Time
	BackoffCap  sim.Time
}

// Enabled reports whether recovery is on.
func (r Recovery) Enabled() bool { return r.CallTimeout > 0 }

func (r Recovery) withDefaults() Recovery {
	if r.MaxRetries <= 0 {
		r.MaxRetries = 3
	}
	if r.BackoffBase <= 0 {
		r.BackoffBase = sim.Millisecond
	}
	if r.BackoffCap <= 0 {
		r.BackoffCap = 50 * sim.Millisecond
	}
	return r
}

// vPtr is one client-visible allocation's mapping onto the current backend.
type vPtr struct {
	bid  int64 // backend pointer id
	size int64
	dev  int32
}

// recState is the interposer's failure-handling state. In recovery mode the
// ids handed to the application are virtual: the interposer owns the
// namespace so that resources re-created on a replacement backend keep
// their client-visible identity.
type recState struct {
	cfg Recovery

	ptrs    map[int64]*vPtr // virtual ptr id → backend mapping
	streams map[int32]int32 // virtual stream id → backend stream id
	events  map[int32]int32 // virtual event id → backend event id
	nextPtr int64
	nextStr int32
	nextEvt int32

	timeouts  int
	failovers int
	disrupted bool // a timeout occurred since the last acknowledged success
}

// SetRecovery arms (or disarms) failure handling. Call before the first
// CUDA call.
func (ip *Interposer) SetRecovery(r Recovery) {
	if !r.Enabled() {
		ip.rec = recState{}
		return
	}
	ip.rec = recState{
		cfg:     r.withDefaults(),
		ptrs:    make(map[int64]*vPtr),
		streams: make(map[int32]int32),
		events:  make(map[int32]int32),
	}
}

// Timeouts returns how many blocking calls timed out.
func (ip *Interposer) Timeouts() int { return ip.rec.timeouts }

// Failovers returns how many times the interposer rebound to a replacement
// GPU.
func (ip *Interposer) Failovers() int { return ip.rec.failovers }

// Disrupted reports whether the application was touched by a backend
// failure at any point (timeout or failover).
func (ip *Interposer) Disrupted() bool {
	return ip.rec.timeouts > 0 || ip.rec.failovers > 0
}

// retryable reports whether a timed-out call may be retransmitted: the set
// of calls whose double execution is harmless (reads, copies, syncs and the
// idempotent registration/exit handshake). Resource-creating calls are
// excluded — a retransmitted Malloc that executed both times would leak the
// first allocation.
func retryable(id cuda.CallID) bool {
	switch id {
	case cuda.CallSetDevice, cuda.CallDeviceCount, cuda.CallMemcpy,
		cuda.CallStreamSync, cuda.CallDeviceSync, cuda.CallEventSync,
		cuda.CallEventElapsed, cuda.CallThreadExit:
		return true
	default:
		return false
	}
}

// internPtr assigns (or refreshes) the virtual id for a backend allocation.
func (ip *Interposer) internPtr(r *rpcproto.Reply) cuda.Ptr {
	if !ip.rec.cfg.Enabled() {
		return cuda.Ptr{Dev: int(r.PtrDev), ID: r.PtrID, Size: r.PtrSize}
	}
	ip.rec.nextPtr++
	vid := ip.rec.nextPtr
	ip.rec.ptrs[vid] = &vPtr{bid: r.PtrID, size: r.PtrSize, dev: r.PtrDev}
	return cuda.Ptr{Dev: int(r.PtrDev), ID: vid, Size: r.PtrSize}
}

// internStream assigns the virtual id for a backend stream.
func (ip *Interposer) internStream(bid int32) cuda.StreamID {
	if !ip.rec.cfg.Enabled() {
		return cuda.StreamID(bid)
	}
	ip.rec.nextStr++
	vid := ip.rec.nextStr
	ip.rec.streams[vid] = bid
	return cuda.StreamID(vid)
}

// internEvent assigns the virtual id for a backend event.
func (ip *Interposer) internEvent(bid int32) cuda.EventID {
	if !ip.rec.cfg.Enabled() {
		return cuda.EventID(bid)
	}
	ip.rec.nextEvt++
	vid := ip.rec.nextEvt
	ip.rec.events[vid] = bid
	return cuda.EventID(vid)
}

// forgetPtr / forgetStream / forgetEvent drop destroyed resources from the
// replay tables.
func (ip *Interposer) forgetPtr(vid int64) {
	if ip.rec.cfg.Enabled() {
		delete(ip.rec.ptrs, vid)
	}
}
func (ip *Interposer) forgetStream(vid cuda.StreamID) {
	if ip.rec.cfg.Enabled() {
		delete(ip.rec.streams, int32(vid))
	}
}
func (ip *Interposer) forgetEvent(vid cuda.EventID) {
	if ip.rec.cfg.Enabled() {
		delete(ip.rec.events, int32(vid))
	}
}

// wireCall rewrites a call's virtual resource ids into the current
// backend's ids. The original call keeps its virtual ids so a later attempt
// (after a failover changed the mappings) re-translates correctly.
func (ip *Interposer) wireCall(c *rpcproto.Call) *rpcproto.Call {
	w := *c
	switch c.ID {
	case cuda.CallFree, cuda.CallMemcpy, cuda.CallMemcpyAsync:
		if m, ok := ip.rec.ptrs[c.PtrID]; ok {
			w.PtrID, w.PtrDev = m.bid, m.dev
		}
	}
	if c.Stream != 0 {
		if bid, ok := ip.rec.streams[c.Stream]; ok {
			w.Stream = bid
		}
	}
	if c.Event != 0 {
		if bid, ok := ip.rec.events[c.Event]; ok {
			w.Event = bid
		}
	}
	if c.Event2 != 0 {
		if bid, ok := ip.rec.events[c.Event2]; ok {
			w.Event2 = bid
		}
	}
	return &w
}

// awaitReply waits for the reply matching seq, bounded by the call timeout.
// ok=false means the timeout expired.
func (ip *Interposer) awaitReply(seq uint64) (*rpcproto.Reply, bool, error) {
	for {
		msg, ok := ip.ep.RecvTimeout(ip.p, ip.rec.cfg.CallTimeout)
		if !ok {
			return nil, false, nil
		}
		r, isReply := msg.(*rpcproto.Reply)
		if !isReply {
			return nil, true, fmt.Errorf("interpose: unexpected message %T", msg)
		}
		if r.Seq == seq {
			return r, true, nil
		}
		if r.Seq > seq {
			return nil, true, fmt.Errorf("interpose: reply %d overtook call %d", r.Seq, seq)
		}
		// Stale reply from a retransmitted earlier call: skip.
	}
}

// sendReliable is the recovery-mode send path: non-blocking calls fire and
// forget; blocking calls are guarded by the call timeout, retransmitted if
// idempotent, and failed over once the mapper declares the backend Dead.
func (ip *Interposer) sendReliable(c *rpcproto.Call, blocking bool) (*rpcproto.Reply, error) {
	backoff := ip.rec.cfg.BackoffBase
	sends := 0
	for {
		w := ip.wireCall(c)
		ip.ep.Send(ip.p, w, w.PayloadBytes())
		sends++
		if !blocking {
			return nil, nil
		}
		r, ok, err := ip.awaitReply(w.Seq)
		if err != nil {
			return nil, err
		}
		if ok {
			if ip.rec.disrupted {
				ip.rec.disrupted = false
				ip.fab.ReportRecovered(ip.gid)
			}
			return r, r.AsError()
		}

		// Timed out: feed the failure detector and decide between a
		// retransmit on the same connection and a failover.
		ip.rec.timeouts++
		ip.rec.disrupted = true
		ip.tr.Event(trace.KRetry, ip.p.Now(), c.ID.String(), ip.appID, int(ip.gid), int64(sends))
		health := ip.fab.ReportFailure(ip.p, ip.gid)
		if health == balancer.Dead {
			reg, err := ip.failover()
			if err != nil {
				return nil, err
			}
			if c.ID == cuda.CallSetDevice {
				// The pending call was the registration itself; the
				// failover's rebind already performed it.
				return reg, reg.AsError()
			}
			// Re-issue on the replacement backend under a fresh sequence
			// number (the new session has its own reply stream).
			ip.seq++
			c.Seq = ip.seq
			sends = 0
			backoff = ip.rec.cfg.BackoffBase
			continue
		}
		if !retryable(c.ID) || sends > ip.rec.cfg.MaxRetries {
			return nil, cuda.ErrBackendLost
		}
		ip.p.Sleep(backoff)
		backoff *= 2
		if backoff > ip.rec.cfg.BackoffCap {
			backoff = ip.rec.cfg.BackoffCap
		}
	}
}

// sendOnce issues one blocking call during rebind/replay, guarded by the
// call timeout but never retried (the failover loop handles failures by
// moving on to the next candidate backend).
func (ip *Interposer) sendOnce(c *rpcproto.Call) (*rpcproto.Reply, error) {
	ip.ep.Send(ip.p, c, c.PayloadBytes())
	r, ok, err := ip.awaitReply(c.Seq)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, cuda.ErrBackendLost
	}
	return r, r.AsError()
}

// failover releases the dead binding, asks the mapper for a replacement
// GPU, re-registers there and replays the application's surviving state —
// streams, allocations and events, in ascending virtual-id order — updating
// the virtual-id tables to the replacement's handles. It returns the
// registration reply. Device-resident data is not re-staged: the simulator
// carries no payloads, and a real implementation would restore it from
// host-side shadow copies at this point.
func (ip *Interposer) failover() (*rpcproto.Reply, error) {
	budget := ip.fab.PoolSize()
	var lastErr error = cuda.ErrBackendLost
	for attempt := 0; attempt < budget; attempt++ {
		// Release the failed binding and select a survivor. The DST row of
		// the dead device is already non-Healthy, so the spillover reroutes
		// us to the healthy pool.
		ip.fab.ReportFeedback(ip.gid, ip.kind, nil)
		ip.gid = ip.fab.SelectGPU(ip.p, balancer.Request{
			AppID: ip.appID, Kind: ip.kind, Node: ip.node, Tenant: ip.tenant,
		})
		ip.ep = ip.fab.ConnectBackend(ip.p, ip.gid, ip.node)

		reg, err := ip.rebind()
		if err == nil {
			ip.rec.failovers++
			ip.rec.disrupted = false
			ip.tr.Event(trace.KFailover, ip.p.Now(), ip.kind, ip.appID, int(ip.gid), int64(attempt+1))
			ip.tr.SetGID(ip.reqSpan, int(ip.gid))
			return reg, nil
		}
		lastErr = err
		_ = ip.fab.ReportFailure(ip.p, ip.gid)
	}
	return nil, lastErr
}

// rebind performs the registration handshake and state replay on the
// current endpoint.
func (ip *Interposer) rebind() (*rpcproto.Reply, error) {
	reg := ip.newCall(cuda.CallSetDevice)
	reg.Dev = int32(ip.gid)
	reg.KernelName = ip.kind
	rep, err := ip.sendOnce(reg)
	if err != nil {
		return nil, err
	}

	for _, vid := range sortedKeys(ip.rec.streams) {
		c := ip.newCall(cuda.CallStreamCreate)
		r, err := ip.sendOnce(c)
		if err != nil {
			return nil, err
		}
		ip.rec.streams[vid] = r.Stream
	}
	ptrVids := make([]int64, 0, len(ip.rec.ptrs))
	for vid := range ip.rec.ptrs {
		ptrVids = append(ptrVids, vid)
	}
	slices.Sort(ptrVids)
	for _, vid := range ptrVids {
		m := ip.rec.ptrs[vid]
		c := ip.newCall(cuda.CallMalloc)
		c.Bytes = m.size
		r, err := ip.sendOnce(c)
		if err != nil {
			return nil, err
		}
		m.bid, m.dev = r.PtrID, r.PtrDev
	}
	for _, vid := range sortedKeys(ip.rec.events) {
		c := ip.newCall(cuda.CallEventCreate)
		r, err := ip.sendOnce(c)
		if err != nil {
			return nil, err
		}
		ip.rec.events[vid] = r.Event
	}
	return rep, nil
}

// sortedKeys returns a virtual-id table's keys in ascending order.
func sortedKeys(m map[int32]int32) []int32 {
	ks := make([]int32, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}
