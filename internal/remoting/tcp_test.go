package remoting

import (
	"net"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/rpcproto"
)

// dialSession starts a backend on a pipe and returns the client side.
func dialSession(t *testing.T) net.Conn {
	t.Helper()
	client, server := net.Pipe()
	b := &TCPBackend{Spec: gpu.TeslaC2050}
	go func() {
		defer server.Close()
		_ = b.ServeConn(server)
	}()
	return client
}

func roundTrip(t *testing.T, conn net.Conn, call *rpcproto.Call) *rpcproto.Reply {
	t.Helper()
	frame, err := rpcproto.EncodeCall(call)
	if err != nil {
		t.Fatal(err)
	}
	if err := rpcproto.WriteFrame(conn, frame); err != nil {
		t.Fatal(err)
	}
	if call.NonBlocking {
		return nil
	}
	body, err := rpcproto.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := rpcproto.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	return msg.(*rpcproto.Reply)
}

func TestTCPBackendSession(t *testing.T) {
	conn := dialSession(t)
	defer conn.Close()

	r := roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallSetDevice, Seq: 1, AppID: 7, KernelName: "MC"})
	if r.Err != "" {
		t.Fatalf("register: %s", r.Err)
	}
	r = roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallDeviceCount, Seq: 2})
	if r.Count != 1 {
		t.Fatalf("count = %d", r.Count)
	}
	r = roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallMalloc, Seq: 3, Bytes: 1 << 20})
	if r.Err != "" || r.PtrID == 0 {
		t.Fatalf("malloc: %+v", r)
	}
	ptr := r.PtrID
	r = roundTrip(t, conn, &rpcproto.Call{
		ID: cuda.CallMemcpy, Seq: 4, Dir: cuda.H2D, Bytes: 1 << 20, PtrID: ptr, PtrSize: 1 << 20,
	})
	if r.Err != "" {
		t.Fatalf("memcpy: %s", r.Err)
	}
	// Non-blocking launch produces no reply.
	roundTrip(t, conn, &rpcproto.Call{
		ID: cuda.CallLaunch, Seq: 5, Compute: 1e6, NonBlocking: true,
	})
	r = roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallDeviceSync, Seq: 6})
	if r.Err != "" {
		t.Fatalf("sync: %s", r.Err)
	}
	r = roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallFree, Seq: 7, PtrID: ptr})
	if r.Err != "" {
		t.Fatalf("free: %s", r.Err)
	}
	r = roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallThreadExit, Seq: 8, AppID: 7, KernelName: "MC"})
	if r.Err != "" || r.Feedback == nil {
		t.Fatalf("exit: %+v", r)
	}
	if r.Feedback.ExecTime <= 0 {
		t.Fatalf("feedback exec time %v", r.Feedback.ExecTime)
	}
}

func TestTCPBackendErrors(t *testing.T) {
	conn := dialSession(t)
	defer conn.Close()
	r := roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallFree, Seq: 1, PtrID: 99})
	if r.Err == "" {
		t.Fatal("free of bogus pointer succeeded")
	}
	r = roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallMalloc, Seq: 2, Bytes: 1 << 40})
	if r.Err == "" {
		t.Fatal("oversized malloc succeeded")
	}
	r = roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallStreamSync, Seq: 3, Stream: 42})
	if r.Err != cuda.ErrInvalidStream.Error() {
		t.Fatalf("sync of unknown stream should fail with ErrInvalidStream, got %q", r.Err)
	}
	r = roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallID(77), Seq: 4})
	if r.Err == "" {
		t.Fatal("unknown call succeeded")
	}
}

func TestTCPBackendOverRealSocket(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	b := &TCPBackend{Spec: gpu.Quadro2000}
	go func() { _ = b.Serve(lis) }()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallDeviceCount, Seq: 1})
	if r.Count != 1 {
		t.Fatalf("count over TCP = %d", r.Count)
	}
	r = roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallThreadExit, Seq: 2})
	if r.Feedback == nil {
		t.Fatal("no feedback on exit")
	}
}
