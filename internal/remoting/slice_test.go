package remoting

import (
	"testing"

	"repro/internal/balancer"
	"repro/internal/gpu"
)

func sliceTestGMap() *GMap {
	return BuildGMap([]NodeInfo{
		{Node: 0, Addr: "n0", Devices: []gpu.Spec{gpu.TeslaC2070.WithMIG()}},
		{Node: 1, Addr: "n1", Devices: []gpu.Spec{gpu.TeslaC2070.WithMIG(), gpu.Quadro2000}},
	})
}

func TestGMapAddSlice(t *testing.T) {
	g := sliceTestGMap()
	spec := gpu.TeslaC2070.WithMIG()
	p, _ := spec.ProfileByName("2g")

	gid, err := g.AddSlice(1, 0, "2g", spec.Slice(p))
	if err != nil {
		t.Fatal(err)
	}
	if gid != 3 {
		t.Fatalf("slice gid = %d, want 3 (next free)", gid)
	}
	e, ok := g.Lookup(gid)
	if !ok || !e.Slice || e.Parent != 1 || e.Node != 1 || e.Addr != "n1" || e.Profile != "2g" {
		t.Fatalf("slice row = %+v", e)
	}
	if g.AliveLen() != 4 {
		t.Fatalf("AliveLen = %d, want 4", g.AliveLen())
	}

	// Slices cannot parent slices, and unknown parents fail.
	if _, err := g.AddSlice(gid, 1, "1g", spec); err == nil {
		t.Fatal("slice-of-slice accepted")
	}
	if _, err := g.AddSlice(99, 1, "1g", spec); err == nil {
		t.Fatal("unknown parent accepted")
	}

	// Retiring the slice keeps the row resolvable and the later rows stable.
	g.RetireSlice(gid)
	if e, ok := g.Lookup(gid); !ok || !e.Dead {
		t.Fatalf("retired slice row = %+v ok=%v", e, ok)
	}
	if g.AliveLen() != 3 {
		t.Fatalf("AliveLen after retire = %d", g.AliveLen())
	}
	if gid2, err := g.AddSlice(0, 0, "1g", spec.Slice(p)); err != nil || gid2 != 4 {
		t.Fatalf("post-retire AddSlice gid = %d err=%v, want 4 (no renumbering)", gid2, err)
	}
}

func TestGMapDSTDerivesCapacity(t *testing.T) {
	g := sliceTestGMap()
	spec := gpu.TeslaC2070.WithMIG()
	p, _ := spec.ProfileByName("3g")
	gid, err := g.AddSlice(0, 0, "3g", spec.Slice(p))
	if err != nil {
		t.Fatal(err)
	}

	dst := g.DST()
	e0 := dst.Entry(0)
	if !e0.Partitionable || e0.TotalFrac != gpu.SliceFractions || e0.FreeFrac != gpu.SliceFractions {
		t.Fatalf("partitionable row: %+v", e0)
	}
	if e0.TotalMem != spec.MemBytes || e0.FreeMem != spec.MemBytes {
		t.Fatalf("capacity: total=%d free=%d", e0.TotalMem, e0.FreeMem)
	}
	if len(e0.Shapes) != len(spec.SliceProfiles) {
		t.Fatalf("shapes = %d, want %d", len(e0.Shapes), len(spec.SliceProfiles))
	}
	if e2 := dst.Entry(2); e2.Partitionable {
		t.Fatal("non-MIG Quadro2000 marked partitionable")
	}
	es := dst.Entry(balancer.GID(gid))
	if es == nil || !es.IsSlice || es.Parent != 0 || es.Profile != "3g" {
		t.Fatalf("slice DST row = %+v", es)
	}
}
