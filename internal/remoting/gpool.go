// Package remoting implements the gPool abstraction: the logical
// aggregation of every GPU in a cluster of nodes into a single pool visible
// to the Strings scheduler. The gPool Creator collects device information
// from each node's backend daemon, assigns global GPU ids (GIDs), builds the
// gMap from GID to (node, local device) and derives the Device Status
// Table's static rows.
package remoting

import (
	"fmt"

	"repro/internal/balancer"
	"repro/internal/gpu"
)

// Entry is one gMap row: the global id and the physical location of a GPU.
type Entry struct {
	GID      balancer.GID
	Node     int
	Addr     string // node address (used by the TCP remoting demo)
	LocalDev int
	Spec     gpu.Spec

	// Dead marks a device whose backend has failed or whose node was
	// removed. Rows are never deleted — GIDs are stable indices — so a
	// dead row stays resolvable while the alive view excludes it.
	Dead bool

	// Slice rows are MIG-style slices carved at runtime from a
	// partitionable device (see gpu.Partition): Parent is the physical
	// row's GID, SliceID the partition-local slice id, Profile the shape.
	// Like every other row they are never renumbered; a destroyed slice's
	// row is marked Dead and stays resolvable.
	Slice   bool
	Parent  balancer.GID
	SliceID int
	Profile string
}

// GMap is the gPool's global device map, broadcast to every node.
type GMap struct {
	entries []Entry

	// alive caches the GIDs of live rows in sorted order; it is rebuilt
	// deterministically on every reconfiguration.
	alive []balancer.GID
}

// NodeInfo is what a node's backend daemon reports to the gPool Creator.
type NodeInfo struct {
	Node    int
	Addr    string
	Devices []gpu.Spec
}

// BuildGMap runs the gPool Creator: it assigns GIDs in node order and
// returns the gMap.
func BuildGMap(nodes []NodeInfo) *GMap {
	g := &GMap{}
	gid := balancer.GID(0)
	for _, n := range nodes {
		for i, spec := range n.Devices {
			g.entries = append(g.entries, Entry{
				GID: gid, Node: n.Node, Addr: n.Addr, LocalDev: i, Spec: spec,
			})
			gid++
		}
	}
	g.rebuild()
	return g
}

// rebuild recomputes the alive view: live GIDs in ascending order. Keeping
// the rebuild a sorted scan (rather than an incremental splice) makes every
// reconfiguration deterministic regardless of the failure order.
func (g *GMap) rebuild() {
	g.alive = g.alive[:0]
	for _, e := range g.entries {
		if !e.Dead {
			g.alive = append(g.alive, e.GID)
		}
	}
}

// MarkDead marks one device's row dead and rebuilds the alive view.
func (g *GMap) MarkDead(gid balancer.GID) {
	if int(gid) < 0 || int(gid) >= len(g.entries) {
		return
	}
	g.entries[gid].Dead = true
	g.rebuild()
}

// RemoveNode marks every device on the node dead and returns their GIDs in
// ascending order (the node-crash reconfiguration).
func (g *GMap) RemoveNode(node int) []balancer.GID {
	var removed []balancer.GID
	for i := range g.entries {
		if g.entries[i].Node == node && !g.entries[i].Dead {
			g.entries[i].Dead = true
			removed = append(removed, g.entries[i].GID)
		}
	}
	g.rebuild()
	return removed
}

// AddSlice appends the gMap row for a slice carved from parent, assigning
// the next free GID. The slice inherits the parent's location (node, addr,
// local device) — it is the same silicon behind a capacity fence.
func (g *GMap) AddSlice(parent balancer.GID, sliceID int, profile string, spec gpu.Spec) (balancer.GID, error) {
	pe, ok := g.Lookup(parent)
	if !ok {
		return 0, fmt.Errorf("remoting: AddSlice: unknown parent gid %d", parent)
	}
	if pe.Slice {
		return 0, fmt.Errorf("remoting: AddSlice: parent gid %d is itself a slice", parent)
	}
	gid := balancer.GID(len(g.entries))
	g.entries = append(g.entries, Entry{
		GID: gid, Node: pe.Node, Addr: pe.Addr, LocalDev: pe.LocalDev,
		Spec: spec, Slice: true, Parent: parent, SliceID: sliceID, Profile: profile,
	})
	g.rebuild()
	return gid, nil
}

// RetireSlice marks a destroyed slice's row dead. The row — like a removed
// node's — stays resolvable forever, so in-flight references to the GID
// fail cleanly instead of aliasing a future row.
func (g *GMap) RetireSlice(gid balancer.GID) { g.MarkDead(gid) }

// Alive returns the live GIDs in ascending order. The slice is the gMap's
// cache; callers must not mutate it.
func (g *GMap) Alive() []balancer.GID { return g.alive }

// AliveLen returns the number of live devices.
func (g *GMap) AliveLen() int { return len(g.alive) }

// Len returns the pool size.
func (g *GMap) Len() int { return len(g.entries) }

// Lookup resolves a GID to its gMap row.
func (g *GMap) Lookup(gid balancer.GID) (Entry, bool) {
	if int(gid) < 0 || int(gid) >= len(g.entries) {
		return Entry{}, false
	}
	return g.entries[gid], true
}

// Entries returns all rows in GID order.
func (g *GMap) Entries() []Entry { return g.entries }

// DST derives the Device Status Table's static rows from the pool: name,
// location, and the gPool Creator's one-time capability weights.
func (g *GMap) DST() *balancer.DST {
	rows := make([]*balancer.DSTEntry, 0, len(g.entries))
	for _, e := range g.entries {
		row := &balancer.DSTEntry{
			GID:          e.GID,
			Node:         e.Node,
			LocalDev:     e.LocalDev,
			Name:         e.Spec.Name,
			Weight:       e.Spec.Weight,
			ComputeRate:  e.Spec.ComputeRate,
			MemBandwidth: e.Spec.MemBandwidth,
		}
		if e.Dead {
			row.Health = balancer.Dead
		}
		if e.Slice {
			row.IsSlice = true
			row.Parent = e.Parent
			row.Profile = e.Profile
		} else if e.Spec.Partitionable() {
			row.Partitionable = true
			row.TotalFrac = gpu.SliceFractions
			row.FreeFrac = gpu.SliceFractions
			row.TotalMem = e.Spec.MemBytes
			row.FreeMem = e.Spec.MemBytes
			for _, p := range e.Spec.SliceProfiles {
				row.Shapes = append(row.Shapes, balancer.SliceShape{
					Name: p.Name, Frac: p.Frac, Mem: p.MemBytes,
				})
			}
		}
		rows = append(rows, row)
	}
	return balancer.NewDST(rows)
}

// String renders the gMap like the paper's Figure 4 table.
func (g *GMap) String() string {
	s := "gid (nid, lid)\n"
	for _, e := range g.entries {
		s += fmt.Sprintf("%3d  (%d, %d)  %s\n", e.GID, e.Node, e.LocalDev, e.Spec.Name)
	}
	return s
}
