// Package remoting implements the gPool abstraction: the logical
// aggregation of every GPU in a cluster of nodes into a single pool visible
// to the Strings scheduler. The gPool Creator collects device information
// from each node's backend daemon, assigns global GPU ids (GIDs), builds the
// gMap from GID to (node, local device) and derives the Device Status
// Table's static rows.
package remoting

import (
	"fmt"

	"repro/internal/balancer"
	"repro/internal/gpu"
)

// Entry is one gMap row: the global id and the physical location of a GPU.
type Entry struct {
	GID      balancer.GID
	Node     int
	Addr     string // node address (used by the TCP remoting demo)
	LocalDev int
	Spec     gpu.Spec
}

// GMap is the gPool's global device map, broadcast to every node.
type GMap struct {
	entries []Entry
}

// NodeInfo is what a node's backend daemon reports to the gPool Creator.
type NodeInfo struct {
	Node    int
	Addr    string
	Devices []gpu.Spec
}

// BuildGMap runs the gPool Creator: it assigns GIDs in node order and
// returns the gMap.
func BuildGMap(nodes []NodeInfo) *GMap {
	g := &GMap{}
	gid := balancer.GID(0)
	for _, n := range nodes {
		for i, spec := range n.Devices {
			g.entries = append(g.entries, Entry{
				GID: gid, Node: n.Node, Addr: n.Addr, LocalDev: i, Spec: spec,
			})
			gid++
		}
	}
	return g
}

// Len returns the pool size.
func (g *GMap) Len() int { return len(g.entries) }

// Lookup resolves a GID to its gMap row.
func (g *GMap) Lookup(gid balancer.GID) (Entry, bool) {
	if int(gid) < 0 || int(gid) >= len(g.entries) {
		return Entry{}, false
	}
	return g.entries[gid], true
}

// Entries returns all rows in GID order.
func (g *GMap) Entries() []Entry { return g.entries }

// DST derives the Device Status Table's static rows from the pool: name,
// location, and the gPool Creator's one-time capability weights.
func (g *GMap) DST() *balancer.DST {
	rows := make([]*balancer.DSTEntry, 0, len(g.entries))
	for _, e := range g.entries {
		rows = append(rows, &balancer.DSTEntry{
			GID:          e.GID,
			Node:         e.Node,
			LocalDev:     e.LocalDev,
			Name:         e.Spec.Name,
			Weight:       e.Spec.Weight,
			ComputeRate:  e.Spec.ComputeRate,
			MemBandwidth: e.Spec.MemBandwidth,
		})
	}
	return balancer.NewDST(rows)
}

// String renders the gMap like the paper's Figure 4 table.
func (g *GMap) String() string {
	s := "gid (nid, lid)\n"
	for _, e := range g.entries {
		s += fmt.Sprintf("%3d  (%d, %d)  %s\n", e.GID, e.Node, e.LocalDev, e.Spec.Name)
	}
	return s
}
