package remoting

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/rpcproto"
)

// TestStreamDestroyThenSync covers the destroyed-handle path: once a stream
// is destroyed, synchronizing or re-destroying it must report
// ErrInvalidStream, and the session must keep serving.
func TestStreamDestroyThenSync(t *testing.T) {
	conn := dialSession(t)
	defer conn.Close()

	r := roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallStreamCreate, Seq: 1})
	if r.Err != "" || r.Stream == 0 {
		t.Fatalf("stream create: %+v", r)
	}
	st := r.Stream
	// Queue async work so destroy has something to drain.
	roundTrip(t, conn, &rpcproto.Call{
		ID: cuda.CallMemcpyAsync, Seq: 2, Dir: cuda.H2D, Bytes: 1 << 16,
		Stream: st, NonBlocking: true,
	})
	r = roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallStreamDestroy, Seq: 3, Stream: st})
	if r.Err != "" {
		t.Fatalf("destroy: %s", r.Err)
	}
	r = roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallStreamSync, Seq: 4, Stream: st})
	if r.Err != cuda.ErrInvalidStream.Error() {
		t.Fatalf("sync of destroyed stream = %q, want ErrInvalidStream", r.Err)
	}
	r = roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallStreamDestroy, Seq: 5, Stream: st})
	if r.Err != cuda.ErrInvalidStream.Error() {
		t.Fatalf("double destroy = %q, want ErrInvalidStream", r.Err)
	}
	// The drained lastOp row must not resurface: a full device sync still
	// works with the stream gone.
	r = roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallDeviceSync, Seq: 6})
	if r.Err != "" {
		t.Fatalf("device sync after destroy: %s", r.Err)
	}
}

// TestEventElapsedReversedPair records two events separated by real work and
// asks for the elapsed time both ways: forward must be positive, reversed
// must fail with ErrInvalidValue instead of returning a negative duration.
func TestEventElapsedReversedPair(t *testing.T) {
	conn := dialSession(t)
	defer conn.Close()

	mkEvent := func(seq uint64) int32 {
		r := roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallEventCreate, Seq: seq})
		if r.Err != "" {
			t.Fatalf("event create: %s", r.Err)
		}
		return r.Event
	}
	evA, evB := mkEvent(1), mkEvent(2)
	roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallEventRecord, Seq: 3, Event: evA, NonBlocking: true})
	// A blocking copy advances the virtual clock between the two records.
	r := roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallMemcpy, Seq: 4, Dir: cuda.H2D, Bytes: 8 << 20})
	if r.Err != "" {
		t.Fatalf("memcpy: %s", r.Err)
	}
	roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallEventRecord, Seq: 5, Event: evB, NonBlocking: true})
	r = roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallEventSync, Seq: 6, Event: evB})
	if r.Err != "" {
		t.Fatalf("event sync: %s", r.Err)
	}
	r = roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallEventElapsed, Seq: 7, Event: evA, Event2: evB})
	if r.Err != "" || r.Elapsed <= 0 {
		t.Fatalf("forward elapsed = %+v, want positive duration", r)
	}
	r = roundTrip(t, conn, &rpcproto.Call{ID: cuda.CallEventElapsed, Seq: 8, Event: evB, Event2: evA})
	if r.Err != cuda.ErrInvalidValue.Error() {
		t.Fatalf("reversed elapsed = %q, want ErrInvalidValue", r.Err)
	}
}

// serveFaulty runs ServeConn over a faulty transport wrapped around the
// server side of a pipe and reports its exit error.
func serveFaulty(t *testing.T, f func(rw io.ReadWriter) io.ReadWriter) (net.Conn, chan error) {
	t.Helper()
	client, server := net.Pipe()
	b := &TCPBackend{Spec: gpu.TeslaC2050}
	done := make(chan error, 1)
	go func() {
		defer server.Close()
		done <- b.ServeConn(f(server))
	}()
	return client, done
}

// TestServeConnSurvivesMidFrameDisconnect injects a truncated reply write:
// the session must exit with a transport error — no panic, no hang.
func TestServeConnSurvivesMidFrameDisconnect(t *testing.T) {
	client, done := serveFaulty(t, func(rw io.ReadWriter) io.ReadWriter {
		return &rpcproto.FaultyRW{RW: rw, Rng: rand.New(rand.NewSource(1)), TruncateProb: 1}
	})
	defer client.Close()
	frame, err := rpcproto.EncodeCall(&rpcproto.Call{ID: cuda.CallDeviceCount, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rpcproto.WriteFrame(client, frame); err != nil {
		t.Fatal(err)
	}
	// The reply frame is cut mid-write; the client sees a short read and the
	// server loop exits with the injected error.
	if _, err := rpcproto.ReadFrame(client); err == nil {
		t.Fatal("read of truncated reply succeeded")
	}
	if err := <-done; !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("ServeConn exit = %v, want ErrClosedPipe", err)
	}
}

// TestServeConnSurvivesDroppedReplies injects silent reply loss: the server
// believes it replied and finishes the session cleanly.
func TestServeConnSurvivesDroppedReplies(t *testing.T) {
	var faulty *rpcproto.FaultyRW
	client, done := serveFaulty(t, func(rw io.ReadWriter) io.ReadWriter {
		faulty = &rpcproto.FaultyRW{RW: rw, Rng: rand.New(rand.NewSource(1)), DropProb: 1}
		return faulty
	})
	defer client.Close()
	frame, err := rpcproto.EncodeCall(&rpcproto.Call{ID: cuda.CallThreadExit, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rpcproto.WriteFrame(client, frame); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("ServeConn exit = %v, want clean shutdown", err)
	}
	if faulty.Drops() != 1 {
		t.Fatalf("dropped %d replies, want 1", faulty.Drops())
	}
}

// TestServeConnSurvivesHardClose cuts the transport after a fixed operation
// budget: the session exits with the injected error.
func TestServeConnSurvivesHardClose(t *testing.T) {
	client, done := serveFaulty(t, func(rw io.ReadWriter) io.ReadWriter {
		return &rpcproto.FaultyRW{RW: rw, Rng: rand.New(rand.NewSource(1)), CloseAfter: 3}
	})
	defer client.Close()
	for seq := uint64(1); ; seq++ {
		frame, err := rpcproto.EncodeCall(&rpcproto.Call{ID: cuda.CallDeviceCount, Seq: seq})
		if err != nil {
			t.Fatal(err)
		}
		if err := rpcproto.WriteFrame(client, frame); err != nil {
			break // transport cut under the client
		}
		if _, err := rpcproto.ReadFrame(client); err != nil {
			break
		}
		if seq > 16 {
			t.Fatal("transport never closed")
		}
	}
	if err := <-done; !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("ServeConn exit = %v, want ErrClosedPipe", err)
	}
}
