package remoting

import (
	"fmt"
	"io"
	"net"
	"slices"
	"time"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/netguard"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// TCPBackend demonstrates GPU remoting over an actual socket: it accepts
// framed rpcproto connections and executes the marshalled CUDA calls
// against a simulated device, returning each call's result together with
// the virtual time it consumed. One simulated device (and one virtual
// clock) exists per connection — the session is a self-contained remote
// GPU.
type TCPBackend struct {
	Spec gpu.Spec

	// ReadTimeout and WriteTimeout, when nonzero, arm per-operation
	// deadlines on every accepted connection so a wedged or vanished
	// client cannot pin a session goroutine forever. These guard the
	// real socket, not the simulated device behind it.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
}

// Serve accepts connections until the listener closes.
func (b *TCPBackend) Serve(lis net.Listener) error {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		go func() { //lint:allow rawgo -- real network concurrency at the system boundary: each connection owns a private kernel and shares no simulator state
			defer conn.Close()
			_ = b.ServeConn(netguard.WithDeadlines(conn, b.ReadTimeout, b.WriteTimeout))
		}()
	}
}

// ServeConn runs one remoting session over rw. The session reuses one
// decode buffer, one call struct and one encode buffer for its entire
// lifetime, so steady-state call handling does not allocate in the framing
// layer.
func (b *TCPBackend) ServeConn(rw io.ReadWriter) error {
	sess := newTCPSession(b.Spec)
	fr := rpcproto.NewFrameReader(rw)
	defer fr.Close()
	fw := rpcproto.NewFrameWriter(rw)
	defer fw.Close()
	var call rpcproto.Call
	for {
		body, err := fr.Next()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if err := rpcproto.DecodeCallInto(&call, body, &fr.Names); err != nil {
			return fmt.Errorf("remoting: %w", err)
		}
		reply := sess.execute(&call)
		if call.NonBlocking {
			continue
		}
		if err := fw.WriteReply(reply); err != nil {
			return err
		}
		if call.ID == cuda.CallThreadExit {
			return nil
		}
	}
}

// tcpSession executes calls on a per-connection simulated device.
type tcpSession struct {
	k       *sim.Kernel
	dev     *gpu.Device
	ctx     *gpu.Context
	streams map[cuda.StreamID]*gpu.Stream
	lastOp  map[cuda.StreamID]*sim.Event
	allocs  map[int64]int64
	events  map[cuda.EventID]*gpu.Op
	nextS   cuda.StreamID
	nextE   cuda.EventID
	nextP   int64
}

func newTCPSession(spec gpu.Spec) *tcpSession {
	k := sim.NewKernel(1)
	dev := gpu.NewDevice(k, spec, 0)
	s := &tcpSession{
		k: k, dev: dev, ctx: dev.NewContext(),
		streams: make(map[cuda.StreamID]*gpu.Stream),
		lastOp:  make(map[cuda.StreamID]*sim.Event),
		allocs:  make(map[int64]int64),
		events:  make(map[cuda.EventID]*gpu.Op),
		nextS:   1,
		nextE:   1,
	}
	s.streams[cuda.DefaultStream] = s.ctx.NewStream()
	return s
}

// stream resolves a stream id.
func (s *tcpSession) stream(id cuda.StreamID) (*gpu.Stream, bool) {
	st, ok := s.streams[id]
	return st, ok
}

// submit queues an op and returns its completion event.
func (s *tcpSession) submit(id cuda.StreamID, op *gpu.Op) (*sim.Event, error) {
	st, ok := s.stream(id)
	if !ok {
		return nil, cuda.ErrInvalidStream
	}
	ev := st.Submit(op)
	s.lastOp[id] = ev
	return ev, nil
}

// runUntil drives the session's virtual clock until ev fires.
func (s *tcpSession) runUntil(ev *sim.Event) {
	s.k.Go("waiter", func(p *sim.Proc) { p.Wait(ev) })
	s.k.Run()
}

// execute performs one call; blocking semantics advance the virtual clock.
func (s *tcpSession) execute(call *rpcproto.Call) *rpcproto.Reply {
	reply := &rpcproto.Reply{Seq: call.Seq}
	switch call.ID {
	case cuda.CallSetDevice:
		// The session is the device; nothing to select.
	case cuda.CallDeviceCount:
		reply.Count = 1
	case cuda.CallMalloc:
		if err := s.dev.Alloc(call.Bytes); err != nil {
			reply.SetError(cuda.ErrMemoryAllocation)
			break
		}
		s.nextP++
		s.allocs[s.nextP] = call.Bytes
		reply.PtrID, reply.PtrSize = s.nextP, call.Bytes
	case cuda.CallFree:
		size, ok := s.allocs[call.PtrID]
		if !ok {
			reply.SetError(cuda.ErrInvalidPtr)
			break
		}
		delete(s.allocs, call.PtrID)
		s.dev.Free(size)
	case cuda.CallMemcpy, cuda.CallMemcpyAsync:
		kind := gpu.OpH2D
		if call.Dir == cuda.D2H {
			kind = gpu.OpD2H
		}
		ev, err := s.submit(cuda.StreamID(call.Stream), &gpu.Op{Kind: kind, Bytes: call.Bytes})
		if err != nil {
			reply.SetError(err)
			break
		}
		if call.ID == cuda.CallMemcpy {
			s.runUntil(ev)
		}
	case cuda.CallLaunch:
		_, err := s.submit(cuda.StreamID(call.Stream), &gpu.Op{
			Kind: gpu.OpKernel, Compute: call.Compute,
			MemTraffic: call.MemTraffic, Occupancy: call.Occupancy,
		})
		reply.SetError(err)
	case cuda.CallStreamCreate:
		id := s.nextS
		s.nextS++
		s.streams[id] = s.ctx.NewStream()
		reply.Stream = int32(id)
	case cuda.CallStreamSync:
		id := cuda.StreamID(call.Stream)
		if _, ok := s.streams[id]; !ok {
			reply.SetError(cuda.ErrInvalidStream)
			break
		}
		if ev, ok := s.lastOp[id]; ok {
			s.runUntil(ev)
		}
	case cuda.CallStreamDestroy:
		id := cuda.StreamID(call.Stream)
		if id == cuda.DefaultStream {
			reply.SetError(cuda.ErrInvalidValue)
			break
		}
		if _, ok := s.streams[id]; !ok {
			reply.SetError(cuda.ErrInvalidStream)
			break
		}
		// cudaStreamDestroy drains the stream's pending work, then the
		// handle — including its lastOp row — must go away, or a later
		// DeviceSync/ThreadExit would re-drain a destroyed stream.
		if ev, ok := s.lastOp[id]; ok {
			if !ev.Fired() {
				s.runUntil(ev)
			}
			delete(s.lastOp, id)
		}
		delete(s.streams, id)
	case cuda.CallEventCreate:
		id := s.nextE
		s.nextE++
		s.events[id] = nil
		reply.Event = int32(id)
	case cuda.CallEventRecord:
		if _, ok := s.events[cuda.EventID(call.Event)]; !ok {
			reply.SetError(cuda.ErrInvalidEvent)
			break
		}
		op := &gpu.Op{Kind: gpu.OpMarker}
		if _, err := s.submit(cuda.StreamID(call.Stream), op); err != nil {
			reply.SetError(err)
			break
		}
		s.events[cuda.EventID(call.Event)] = op
	case cuda.CallEventSync:
		op, ok := s.events[cuda.EventID(call.Event)]
		if !ok || op == nil {
			reply.SetError(cuda.ErrInvalidEvent)
			break
		}
		if !op.Done.Fired() {
			s.runUntil(op.Done)
		}
	case cuda.CallEventElapsed:
		a, okA := s.events[cuda.EventID(call.Event)]
		b, okB := s.events[cuda.EventID(call.Event2)]
		if !okA || !okB || a == nil || b == nil || !a.Done.Fired() || !b.Done.Fired() {
			reply.SetError(cuda.ErrInvalidEvent)
			break
		}
		elapsed := int64(b.Finished - a.Finished)
		if elapsed < 0 {
			// The events were recorded in the opposite order; CUDA reports
			// cudaErrorInvalidValue rather than a negative duration.
			reply.SetError(cuda.ErrInvalidValue)
			break
		}
		reply.Elapsed = elapsed
	case cuda.CallEventDestroy:
		if _, ok := s.events[cuda.EventID(call.Event)]; !ok {
			reply.SetError(cuda.ErrInvalidEvent)
			break
		}
		delete(s.events, cuda.EventID(call.Event))
	case cuda.CallDeviceSync, cuda.CallThreadExit:
		// Drain streams in id order: runUntil advances the virtual clock,
		// so map iteration order here would leak into the event sequence.
		sids := make([]cuda.StreamID, 0, len(s.lastOp))
		for id := range s.lastOp {
			sids = append(sids, id)
		}
		slices.Sort(sids)
		for _, id := range sids {
			if ev := s.lastOp[id]; !ev.Fired() {
				s.runUntil(ev)
			}
		}
		if call.ID == cuda.CallThreadExit {
			ptrs := make([]int64, 0, len(s.allocs))
			for id := range s.allocs {
				ptrs = append(ptrs, id)
			}
			slices.Sort(ptrs)
			for _, id := range ptrs {
				s.dev.Free(s.allocs[id])
				delete(s.allocs, id)
			}
			reply.Feedback = &rpcproto.Feedback{
				AppID:    call.AppID,
				Kind:     call.KernelName,
				ExecTime: s.k.Now(),
				GPUTime:  s.dev.AppService(0),
				XferTime: s.dev.AppTransferTime(0),
			}
		}
	default:
		reply.SetError(cuda.ErrNotImplemented)
	}
	return reply
}
