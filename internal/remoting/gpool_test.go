package remoting

import (
	"strings"
	"testing"

	"repro/internal/balancer"
	"repro/internal/gpu"
)

func twoNodes() []NodeInfo {
	return []NodeInfo{
		{Node: 0, Addr: "10.1.2.6", Devices: []gpu.Spec{gpu.Quadro2000, gpu.TeslaC2050}},
		{Node: 1, Addr: "10.1.4.8", Devices: []gpu.Spec{gpu.Quadro4000, gpu.TeslaC2070}},
	}
}

func TestBuildGMapAssignsGIDsInNodeOrder(t *testing.T) {
	g := BuildGMap(twoNodes())
	if g.Len() != 4 {
		t.Fatalf("len = %d", g.Len())
	}
	e, ok := g.Lookup(2)
	if !ok || e.Node != 1 || e.LocalDev != 0 || e.Spec.Name != "Quadro4000" {
		t.Fatalf("GID 2 = %+v", e)
	}
	if _, ok := g.Lookup(4); ok {
		t.Fatal("out-of-range lookup succeeded")
	}
	if _, ok := g.Lookup(-1); ok {
		t.Fatal("negative lookup succeeded")
	}
}

func TestGMapBijective(t *testing.T) {
	g := BuildGMap(twoNodes())
	seen := map[[2]int]bool{}
	for i, e := range g.Entries() {
		if int(e.GID) != i {
			t.Fatalf("GID %d at index %d", e.GID, i)
		}
		key := [2]int{e.Node, e.LocalDev}
		if seen[key] {
			t.Fatalf("duplicate (node, dev) %v", key)
		}
		seen[key] = true
	}
}

func TestDSTDerivation(t *testing.T) {
	dst := BuildGMap(twoNodes()).DST()
	if dst.Len() != 4 {
		t.Fatalf("DST len = %d", dst.Len())
	}
	e := dst.Entry(1)
	if e.Name != "TeslaC2050" || e.Weight != gpu.TeslaC2050.Weight || e.Node != 0 {
		t.Fatalf("DST row = %+v", e)
	}
	if e.MemBandwidth != gpu.TeslaC2050.MemBandwidth {
		t.Fatal("MemBandwidth not propagated")
	}
}

func TestGMapString(t *testing.T) {
	s := BuildGMap(twoNodes()).String()
	if !strings.Contains(s, "TeslaC2070") || !strings.Contains(s, "(1, 1)") {
		t.Fatalf("String output:\n%s", s)
	}
}

func TestEmptyPool(t *testing.T) {
	g := BuildGMap(nil)
	if g.Len() != 0 || g.DST().Len() != 0 {
		t.Fatal("empty pool not empty")
	}
}

func TestGMapMarkDeadAndAliveView(t *testing.T) {
	g := BuildGMap(twoNodes())
	if g.AliveLen() != 4 {
		t.Fatalf("fresh AliveLen = %d", g.AliveLen())
	}
	g.MarkDead(1)
	if g.AliveLen() != 3 {
		t.Fatalf("AliveLen after one death = %d", g.AliveLen())
	}
	want := []int{0, 2, 3}
	for i, gid := range g.Alive() {
		if int(gid) != want[i] {
			t.Fatalf("Alive = %v, want %v", g.Alive(), want)
		}
	}
	// Rows are never deleted: the dead GID still resolves.
	e, ok := g.Lookup(1)
	if !ok || !e.Dead {
		t.Fatalf("dead row lookup = %+v, %v", e, ok)
	}
	// Idempotent and range-safe.
	g.MarkDead(1)
	g.MarkDead(99)
	g.MarkDead(-1)
	if g.AliveLen() != 3 {
		t.Fatalf("AliveLen after no-op deaths = %d", g.AliveLen())
	}
	// The derived DST carries the health state.
	if h := g.DST().Health(1); h != balancer.Dead {
		t.Fatalf("derived DST health = %v", h)
	}
	if h := g.DST().Health(0); h != balancer.Healthy {
		t.Fatalf("live row derived health = %v", h)
	}
}

func TestGMapRemoveNode(t *testing.T) {
	g := BuildGMap(twoNodes())
	removed := g.RemoveNode(1)
	if len(removed) != 2 || removed[0] != 2 || removed[1] != 3 {
		t.Fatalf("removed = %v, want [2 3]", removed)
	}
	if g.AliveLen() != 2 {
		t.Fatalf("AliveLen = %d", g.AliveLen())
	}
	// Re-removing yields nothing new.
	if again := g.RemoveNode(1); len(again) != 0 {
		t.Fatalf("second removal = %v", again)
	}
	// Removing the other node empties the pool but keeps the rows.
	g.RemoveNode(0)
	if g.AliveLen() != 0 || g.Len() != 4 {
		t.Fatalf("AliveLen = %d, Len = %d", g.AliveLen(), g.Len())
	}
}
