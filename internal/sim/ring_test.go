package sim

import (
	"fmt"
	"testing"
)

func TestRingFIFOAndWrap(t *testing.T) {
	var r Ring[int]
	for round := 0; round < 5; round++ {
		for i := 0; i < 13; i++ {
			r.Push(round*100 + i)
		}
		for i := 0; i < 13; i++ {
			if got := r.Pop(); got != round*100+i {
				t.Fatalf("round %d: Pop = %d, want %d", round, got, round*100+i)
			}
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after drain", r.Len())
	}
}

func TestRingFrontAndAt(t *testing.T) {
	var r Ring[string]
	// Force the head off zero so At exercises wrapping.
	for i := 0; i < 6; i++ {
		r.Push("x")
		r.Pop()
	}
	for _, s := range []string{"a", "b", "c", "d"} {
		r.Push(s)
	}
	if r.Front() != "a" {
		t.Fatalf("Front = %q", r.Front())
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		if got := r.At(i); got != want {
			t.Fatalf("At(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestRingRemoveFirst(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 6; i++ {
		r.Push(i)
	}
	if !r.RemoveFirst(func(v int) bool { return v == 3 }) {
		t.Fatal("RemoveFirst missed an existing item")
	}
	if r.RemoveFirst(func(v int) bool { return v == 3 }) {
		t.Fatal("RemoveFirst found a removed item")
	}
	var got []int
	for r.Len() > 0 {
		got = append(got, r.Pop())
	}
	want := []int{0, 1, 2, 4, 5}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after remove: %v, want %v", got, want)
	}
}

func TestRingPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty Pop")
		}
	}()
	var r Ring[int]
	r.Pop()
}

// TestQueueCapacityBounded is the regression test for the drain-by-reslice
// leak: a long-lived queue cycled N times must keep a small constant backing
// capacity instead of retaining every item that ever passed through (the old
// `items = items[1:]` drain pinned the whole backing array).
func TestQueueCapacityBounded(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[[256]byte](k)
	const cycles = 100000
	k.Go("cycler", func(p *Proc) {
		for i := 0; i < cycles; i++ {
			q.Put([256]byte{})
			q.Get(p)
		}
	})
	k.Run()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after cycles", q.Len())
	}
	if q.Cap() > 16 {
		t.Fatalf("queue capacity grew to %d after %d put/get cycles; want a small constant", q.Cap(), cycles)
	}
}

// A burst grows the ring to the peak depth and no further, regardless of how
// many items flow through afterwards.
func TestQueueCapacityTracksPeakDepth(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	k.Go("burst", func(p *Proc) {
		for i := 0; i < 100; i++ {
			q.Put(i)
		}
		for i := 0; i < 100; i++ {
			q.Get(p)
		}
		for i := 0; i < 100000; i++ {
			q.Put(i)
			q.Get(p)
		}
	})
	k.Run()
	if q.Cap() > 128 {
		t.Fatalf("capacity %d exceeds next power of two above peak depth 100", q.Cap())
	}
}
