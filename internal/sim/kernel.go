package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// Kernel is a deterministic discrete-event executor. Processes created with
// Go run as goroutines, but the kernel enforces that exactly one process
// executes at any instant; every blocking operation hands control back to the
// kernel, which advances the virtual clock to the next scheduled activation.
//
// A Kernel is not safe for use from goroutines other than its own processes.
type Kernel struct {
	now     Time
	seq     uint64
	queue   activationHeap
	yielded chan struct{} // signalled by the running process when it parks
	running *Proc
	procs   map[*Proc]struct{}
	nextID  int
	rng     *rand.Rand
	tracer  func(t Time, proc, msg string)
	stopped bool
	timers  *timers
}

// activation is a pending wakeup of a process at a virtual instant. The epoch
// ties the activation to one park of the process: once the process has been
// woken (by any activation), activations from the same park become stale and
// are discarded when popped.
type activation struct {
	at    Time
	seq   uint64
	proc  *Proc
	epoch uint64
	tag   int
}

type activationHeap []activation

func (h activationHeap) Len() int { return len(h) }
func (h activationHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h activationHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *activationHeap) Push(x interface{}) { *h = append(*h, x.(activation)) }
func (h *activationHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewKernel returns a kernel whose clock starts at zero. The seed fixes the
// kernel's random stream (exposed via Rand) so that runs are reproducible.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		yielded: make(chan struct{}),
		procs:   make(map[*Proc]struct{}),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random stream.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// SetTracer installs a trace callback invoked by Proc.Tracef. A nil tracer
// disables tracing.
func (k *Kernel) SetTracer(fn func(t Time, proc, msg string)) { k.tracer = fn }

// Stop makes Run return after the currently executing process parks. Pending
// activations are retained (a subsequent Run call would resume them).
func (k *Kernel) Stop() { k.stopped = true }

// Go creates a new process named name executing fn and schedules its first
// activation at the current virtual time. It may be called before Run or from
// inside a running process.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	k.nextID++
	p := &Proc{
		k:      k,
		id:     k.nextID,
		name:   name,
		resume: make(chan struct{}),
	}
	k.procs[p] = struct{}{}
	go func() {
		<-p.resume
		p.epoch++
		fn(p)
		p.done = true
		delete(k.procs, p)
		k.yielded <- struct{}{}
	}()
	k.schedule(p, k.now, wakeStart)
	return p
}

// Wake tags distinguishing what woke a parked process.
const (
	wakeStart = iota
	wakeTimer
	wakeEvent
)

// schedule enqueues a wakeup of p at time at (which must be >= now).
func (k *Kernel) schedule(p *Proc, at Time, tag int) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling %q in the past: %v < %v", p.name, at, k.now))
	}
	k.seq++
	heap.Push(&k.queue, activation{at: at, seq: k.seq, proc: p, epoch: p.epoch, tag: tag})
	p.pending++
}

// Run executes activations until none remain or Stop is called. It returns
// the number of activations dispatched.
func (k *Kernel) Run() int {
	return k.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes activations with time <= limit. The clock never advances
// past the last dispatched activation; if the queue's head is beyond limit,
// the clock is set to limit and RunUntil returns. If processes remain blocked
// with no pending activation when the queue drains (a deadlock from the
// model's point of view) they are left parked; Blocked reports them.
func (k *Kernel) RunUntil(limit Time) int {
	k.stopped = false
	n := 0
	for len(k.queue) > 0 && !k.stopped {
		a := k.queue[0]
		if a.at > limit {
			if k.now < limit {
				k.now = limit
			}
			return n
		}
		heap.Pop(&k.queue)
		a.proc.pending--
		if a.proc.done || a.epoch != a.proc.epoch {
			continue // stale wakeup from an earlier park
		}
		k.now = a.at
		a.proc.wakeTag = a.tag
		k.dispatch(a.proc)
		n++
	}
	return n
}

// dispatch resumes p and waits for it to park again.
func (k *Kernel) dispatch(p *Proc) {
	k.running = p
	p.resume <- struct{}{}
	<-k.yielded
	k.running = nil
}

// Blocked returns the names of processes that are alive but have no pending
// activation — i.e. processes waiting on events that can no longer fire.
// Useful in tests to assert clean termination.
func (k *Kernel) Blocked() []string {
	var names []string
	for p := range k.procs {
		if !p.done && p.pending == 0 && p.parked {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// ProcCount returns the number of live processes.
func (k *Kernel) ProcCount() int { return len(k.procs) }
