package sim

import (
	"fmt"
	"iter"
	"math/rand"
	"sort"
)

// maxTime is the largest representable virtual instant; Run executes with it
// as the limit.
const maxTime = Time(1<<62 - 1)

// DefaultFFHorizon is the quiescence horizon used by a fresh kernel: a clock
// jump of at least this size counts as an analytic fast-forward (see
// FastForwards). The horizon only affects the fast-forward accounting, never
// the schedule itself, so changing it cannot change simulation results.
const DefaultFFHorizon = Millisecond

// Kernel is a deterministic discrete-event executor. Processes created with
// Go run as coroutines (iter.Pull); the kernel enforces that exactly one
// process executes at any instant, and every blocking operation hands control
// back to the kernel, which advances the virtual clock to the next scheduled
// activation.
//
// Scheduling state is split in two for speed. Activations at a future instant
// live in a 4-ary min-heap ordered by (time, sequence). Activations at the
// *current* instant go to a plain FIFO ring instead: sequence numbers are
// monotone, so arrival order is (time, sequence) order, and the common case —
// a process yielding, a Put waking a Get, an event firing at now — costs O(1)
// with no heap traffic. When the ring drains, the whole batch of heap entries
// sharing the next timestamp is drained into the ring at once (same-instant
// batch dispatch): schedule routes new same-instant work to the ring, so the
// heap can never again hold entries at the drained instant and the merged
// order stays exactly the old single-heap (time, sequence) order, which keeps
// runs bit-identical.
//
// Control transfer uses coroutine switches rather than goroutine channel
// handoffs: the RunUntil driver resumes the next activation's process with an
// iter.Pull next(), and a parking process yields back. A coroutine switch
// stays out of the goroutine scheduler entirely, which makes a handoff
// several times cheaper than a channel round trip. A process that is its own
// next activation (Yield, Sleep(0), a self-wakeup at now) consumes the
// activation inline and continues with no switch at all.
//
// A Kernel is not safe for use from goroutines other than its own processes
// and the single goroutine driving Run/RunUntil.
type Kernel struct {
	now        Time
	seq        uint64
	limit      Time
	future     heap4[activation]
	nowQ       Ring[activation]
	dispatched uint64
	running    *Proc
	procs      map[*Proc]struct{}
	nextID     int
	rng        *rand.Rand
	tracer     func(t Time, proc, msg string)
	stopped    bool
	timers     *timers

	// Fast-forward accounting: jumps of >= ffHorizon over known-quiet
	// virtual time (see FastForwards).
	ffHorizon Time
	ffJumps   uint64
	ffSkipped Time

	// evFree recycles pooled events (NewPooledEvent); kept across Reset so a
	// reused kernel skips the ramp-up allocations, like the heap and ring
	// backing arrays.
	evFree []*Event
}

// activation is a pending wakeup of a process at a virtual instant. The epoch
// ties the activation to one park of the process: once the process has been
// woken (by any activation), activations from the same park become stale and
// are discarded when popped.
type activation struct {
	at    Time
	seq   uint64
	proc  *Proc
	epoch uint64
	tag   int32
}

// lessThan orders activations by (time, schedule sequence).
func (a activation) lessThan(b activation) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// NewKernel returns a kernel whose clock starts at zero. The seed fixes the
// kernel's random stream (exposed via Rand) so that runs are reproducible.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		limit:     maxTime,
		procs:     make(map[*Proc]struct{}),
		rng:       rand.New(rand.NewSource(seed)),
		ffHorizon: DefaultFFHorizon,
	}
}

// Reset returns the kernel to the state NewKernel(seed) would produce while
// keeping the event heap's, now-queue's and event pool's backing arrays, so a
// worker that runs many simulations back to back stops paying the ramp-up
// allocations of each run. A reset kernel is indistinguishable from a fresh
// one: the clock, sequence counter, dispatch count, random stream and process
// table all start over, and the (time, sequence) dispatch order of the next
// run is bit-exact with what a new kernel would produce (regression-tested).
//
// Reset must only be called between runs — after Run/RunUntil has returned
// and before any new process is created. Processes left parked by a previous
// run (for example by a RunUntil horizon) are abandoned: their activations
// are discarded with the heap and they are never woken again, exactly as if
// the old kernel had been dropped. Any installed tracer is removed, and the
// timer facility restarts lazily on the next After call.
func (k *Kernel) Reset(seed int64) {
	if k.running != nil {
		panic("sim: Reset during an active run")
	}
	k.now = 0
	k.seq = 0
	k.limit = maxTime
	k.future.reset()
	k.nowQ.Reset()
	k.dispatched = 0
	clear(k.procs)
	k.nextID = 0
	k.rng = rand.New(rand.NewSource(seed))
	k.tracer = nil
	k.stopped = false
	k.ffHorizon = DefaultFFHorizon
	k.ffJumps = 0
	k.ffSkipped = 0
	// Dropping the timer state (rather than clearing it) detaches the old
	// timer process, which may still be parked on the old kick signal; a
	// reused kernel lazily starts a new one.
	k.timers = nil
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random stream.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Dispatched returns the total number of activations dispatched over the
// kernel's lifetime (stale wakeups excluded). It is the event count behind
// events/sec throughput reporting.
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

// SetTracer installs a trace callback invoked by Proc.Tracef. A nil tracer
// disables tracing.
func (k *Kernel) SetTracer(fn func(t Time, proc, msg string)) { k.tracer = fn }

// Stop makes Run return after the currently executing process parks. Pending
// activations are retained (a subsequent Run call would resume them).
func (k *Kernel) Stop() { k.stopped = true }

// SetFFHorizon sets the quiescence horizon for fast-forward accounting: a
// clock jump of at least d over known-quiet virtual time counts as one
// fast-forward. Nonpositive horizons count every nonzero jump. The horizon is
// observability only — it cannot change scheduling order or results.
func (k *Kernel) SetFFHorizon(d Time) {
	if d <= 0 {
		d = 1
	}
	k.ffHorizon = d
}

// FastForwards reports the analytic fast-forward counters: how many times the
// clock jumped at least the quiescence horizon in one step, and the total
// virtual time skipped by those jumps. A discrete-event kernel never grinds
// through idle virtual time — when no process is runnable before the next
// scheduled activation (and every device model is parked on its own wakeup),
// the interval in between is provably quiet and the clock moves wholesale.
// These counters make that behaviour measurable so idle-heavy scenarios can
// report a skip ratio and be validated against internal/analytic predictions.
func (k *Kernel) FastForwards() (jumps uint64, skipped Time) {
	return k.ffJumps, k.ffSkipped
}

// Go creates a new process named name executing fn and schedules its first
// activation at the current virtual time. It may be called before Run or from
// inside a running process.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, nil, fn)
}

// GoNamed is Go with a lazily formatted name: nameFn runs at most once, the
// first time the name is actually needed (a Tracef line, Blocked, a
// diagnostic dump). Hot paths that spawn a process per request avoid the
// formatting allocations entirely when nothing observes the name.
func (k *Kernel) GoNamed(nameFn func() string, fn func(p *Proc)) *Proc {
	return k.spawn("", nameFn, fn)
}

// spawn creates the process coroutine. The coroutine body runs on first
// resume; control returns to the resumer whenever the process parks.
func (k *Kernel) spawn(name string, nameFn func() string, fn func(p *Proc)) *Proc {
	k.nextID++
	p := &Proc{
		k:      k,
		id:     k.nextID,
		name:   name,
		nameFn: nameFn,
	}
	k.procs[p] = struct{}{}
	// The stop half of the pull pair is discarded: forcing a suspended
	// process to unwind would run its remaining code against a torn-down
	// kernel. Abandoned processes simply stay suspended, exactly as the
	// channel-parked goroutines they replace did.
	p.resume, _ = iter.Pull(func(yield func(struct{}) bool) {
		p.yield = yield
		p.epoch++
		fn(p)
		p.done = true
		delete(k.procs, p)
	})
	k.schedule(p, k.now, wakeStart)
	return p
}

// Wake tags distinguishing what woke a parked process.
const (
	wakeStart = iota
	wakeTimer
	wakeEvent
)

// schedule enqueues a wakeup of p at time at (which must be >= now).
//
//strings:hotpath
func (k *Kernel) schedule(p *Proc, at Time, tag int32) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling %q in the past: %v < %v", p.Name(), at, k.now))
	}
	k.seq++
	a := activation{at: at, seq: k.seq, proc: p, epoch: p.epoch, tag: tag}
	if at == k.now {
		k.nowQ.Push(a)
	} else {
		k.future.push(a)
	}
	p.pending++
}

// frontDue returns the next activation in (time, sequence) order without
// consuming it, or reports false if none is due at or before the run limit.
// When the now-ring is empty it drains the entire batch of heap entries
// sharing the next timestamp into the ring in one pass (same-instant batch
// dispatch): every same-instant heap entry predates every ring entry, and
// schedule routes new work at the drained instant straight to the ring, so
// consuming ring-first preserves the exact single-heap order.
func (k *Kernel) frontDue() (activation, bool) {
	if k.nowQ.Len() == 0 {
		if k.future.len() == 0 {
			return activation{}, false
		}
		t := k.future.peek().at
		if t > k.limit {
			return activation{}, false
		}
		if gap := t - k.now; gap >= k.ffHorizon {
			// The interval (now, t) holds no activation: a quiescent gap the
			// clock is about to jump over wholesale.
			k.ffJumps++
			k.ffSkipped += gap
		}
		for {
			k.nowQ.Push(k.future.pop())
			if k.future.len() == 0 || k.future.peek().at != t {
				break
			}
		}
		return k.nowQ.Front(), true
	}
	a := k.nowQ.Front()
	if a.at > k.limit {
		return activation{}, false
	}
	return a, true
}

// popNext removes and returns the next activation in (time, sequence) order,
// or reports false if none is due at or before the run limit.
func (k *Kernel) popNext() (activation, bool) {
	a, ok := k.frontDue()
	if ok {
		k.nowQ.Pop()
	}
	return a, ok
}

// Run executes activations until none remain or Stop is called. It returns
// the number of activations dispatched.
func (k *Kernel) Run() int {
	return k.RunUntil(maxTime)
}

// RunUntil executes activations with time <= limit. The clock never advances
// past the last dispatched activation; if the queue's head is beyond limit,
// the clock is set to limit and RunUntil returns. If processes remain blocked
// with no pending activation when the queue drains (a deadlock from the
// model's point of view) they are left parked; Blocked reports them.
//
// RunUntil is the dispatch driver: it pops activations and resumes each
// process's coroutine, which runs until the process parks (yielding control
// back) or exits. A parking process first consumes its own same-instant
// re-activations inline, so only genuine cross-process handoffs reach the
// driver.
//
//strings:hotpath
func (k *Kernel) RunUntil(limit Time) int {
	k.stopped = false
	k.limit = limit
	start := k.dispatched
	for !k.stopped {
		a, ok := k.popNext()
		if !ok {
			break
		}
		a.proc.pending--
		if a.proc.done || a.epoch != a.proc.epoch {
			continue // stale wakeup from an earlier park
		}
		k.now = a.at
		a.proc.wakeTag = a.tag
		k.dispatched++
		k.running = a.proc
		a.proc.resume()
	}
	k.running = nil
	if !k.stopped && (k.future.len() > 0 || k.nowQ.Len() > 0) && k.now < limit {
		// The head activation is beyond the limit: the interval up to the
		// limit is known quiet, so the clock may advance to it wholesale.
		if gap := limit - k.now; gap >= k.ffHorizon {
			k.ffJumps++
			k.ffSkipped += gap
		}
		k.now = limit
	}
	return int(k.dispatched - start)
}

// NextEventTime returns the instant of the earliest pending activation, or
// ok=false when the kernel is quiescent (no activation anywhere — parked
// processes waiting on external input do not count). The value is a
// conservative lower bound: a stale activation (from a park that has since
// been woken another way) reports its scheduled time even though dispatching
// it will be a no-op. That direction of error is safe for the one consumer
// this hook exists for — the shard coordinator's conservative window
// computation — which may only ever *under*-estimate a shard's horizon.
func (k *Kernel) NextEventTime() (Time, bool) {
	if k.nowQ.Len() > 0 {
		return k.nowQ.Front().at, true
	}
	if k.future.len() > 0 {
		return k.future.peek().at, true
	}
	return 0, false
}

// Blocked returns the names of processes that are alive but have no pending
// activation — i.e. processes waiting on events that can no longer fire.
// Useful in tests to assert clean termination. The names are sorted so
// diagnostics never leak map-iteration order (stringscheck maporder parity).
func (k *Kernel) Blocked() []string {
	var names []string
	//lint:allow maporder -- p.Name() is a pure accessor and names are sorted below
	for p := range k.procs {
		if !p.done && p.pending == 0 && p.parked {
			names = append(names, p.Name())
		}
	}
	sort.Strings(names)
	return names
}

// ProcCount returns the number of live processes.
func (k *Kernel) ProcCount() int { return len(k.procs) }
