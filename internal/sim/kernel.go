package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// maxTime is the largest representable virtual instant; Run executes with it
// as the limit.
const maxTime = Time(1<<62 - 1)

// Kernel is a deterministic discrete-event executor. Processes created with
// Go run as goroutines, but the kernel enforces that exactly one process
// executes at any instant; every blocking operation hands control back to the
// kernel, which advances the virtual clock to the next scheduled activation.
//
// Scheduling state is split in two for speed. Activations at a future instant
// live in a 4-ary min-heap ordered by (time, sequence). Activations at the
// *current* instant go to a plain FIFO ring instead: sequence numbers are
// monotone, so arrival order is (time, sequence) order, and the common case —
// a process yielding, a Put waking a Get, an event firing at now — costs O(1)
// with no heap traffic. Because every same-instant entry in the heap predates
// (has a smaller sequence number than) every entry in the ring, the merged
// order of the two structures is exactly the old single-heap order, which
// keeps runs bit-identical.
//
// Control transfer is a baton chain rather than a central loop: the goroutine
// that gives up control (a parking or exiting process) selects the next
// activation itself and resumes its process directly. Handing off therefore
// costs one channel operation instead of two, and a process that is its own
// next activation (Yield, Sleep(0), a self-wakeup at now) continues with no
// channel operation at all. The Run goroutine only participates at the start
// and end of a run.
//
// A Kernel is not safe for use from goroutines other than its own processes.
type Kernel struct {
	now        Time
	seq        uint64
	limit      Time
	future     heap4[activation]
	nowQ       Ring[activation]
	dispatched uint64
	yielded    chan struct{} // signalled by the draining process when a run ends
	running    *Proc
	procs      map[*Proc]struct{}
	nextID     int
	rng        *rand.Rand
	tracer     func(t Time, proc, msg string)
	stopped    bool
	timers     *timers
}

// activation is a pending wakeup of a process at a virtual instant. The epoch
// ties the activation to one park of the process: once the process has been
// woken (by any activation), activations from the same park become stale and
// are discarded when popped.
type activation struct {
	at    Time
	seq   uint64
	proc  *Proc
	epoch uint64
	tag   int32
}

// lessThan orders activations by (time, schedule sequence).
func (a activation) lessThan(b activation) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// NewKernel returns a kernel whose clock starts at zero. The seed fixes the
// kernel's random stream (exposed via Rand) so that runs are reproducible.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		yielded: make(chan struct{}),
		limit:   maxTime,
		procs:   make(map[*Proc]struct{}),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Reset returns the kernel to the state NewKernel(seed) would produce while
// keeping the event heap's and now-queue's backing arrays, so a worker that
// runs many simulations back to back stops paying the ramp-up allocations of
// each run. A reset kernel is indistinguishable from a fresh one: the clock,
// sequence counter, dispatch count, random stream and process table all start
// over, and the (time, sequence) dispatch order of the next run is bit-exact
// with what a new kernel would produce (regression-tested).
//
// Reset must only be called between runs — after Run/RunUntil has returned
// and before any new process is created. Processes left parked by a previous
// run (for example by a RunUntil horizon) are abandoned: their activations
// are discarded with the heap and they are never woken again, exactly as if
// the old kernel had been dropped. Any installed tracer is removed, and the
// timer facility restarts lazily on the next After call.
func (k *Kernel) Reset(seed int64) {
	if k.running != nil {
		panic("sim: Reset during an active run")
	}
	k.now = 0
	k.seq = 0
	k.limit = maxTime
	k.future.reset()
	k.nowQ.Reset()
	k.dispatched = 0
	clear(k.procs)
	k.nextID = 0
	k.rng = rand.New(rand.NewSource(seed))
	k.tracer = nil
	k.stopped = false
	// Dropping the timer state (rather than clearing it) detaches the old
	// timer process, which may still be parked on the old kick signal; a
	// reused kernel lazily starts a new one.
	k.timers = nil
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random stream.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Dispatched returns the total number of activations dispatched over the
// kernel's lifetime (stale wakeups excluded). It is the event count behind
// events/sec throughput reporting.
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

// SetTracer installs a trace callback invoked by Proc.Tracef. A nil tracer
// disables tracing.
func (k *Kernel) SetTracer(fn func(t Time, proc, msg string)) { k.tracer = fn }

// Stop makes Run return after the currently executing process parks. Pending
// activations are retained (a subsequent Run call would resume them).
func (k *Kernel) Stop() { k.stopped = true }

// Go creates a new process named name executing fn and schedules its first
// activation at the current virtual time. It may be called before Run or from
// inside a running process.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	k.nextID++
	p := &Proc{
		k:      k,
		id:     k.nextID,
		name:   name,
		resume: make(chan struct{}),
	}
	k.procs[p] = struct{}{}
	go func() {
		<-p.resume
		p.epoch++
		fn(p)
		p.done = true
		delete(k.procs, p)
		// Pass the baton on; the exiting goroutine is never resumed again.
		if k.step(nil) == stepDrained {
			k.drainToRun()
		}
	}()
	k.schedule(p, k.now, wakeStart)
	return p
}

// Wake tags distinguishing what woke a parked process.
const (
	wakeStart = iota
	wakeTimer
	wakeEvent
)

// schedule enqueues a wakeup of p at time at (which must be >= now).
func (k *Kernel) schedule(p *Proc, at Time, tag int32) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling %q in the past: %v < %v", p.name, at, k.now))
	}
	k.seq++
	a := activation{at: at, seq: k.seq, proc: p, epoch: p.epoch, tag: tag}
	if at == k.now {
		k.nowQ.Push(a)
	} else {
		k.future.push(a)
	}
	p.pending++
}

// popNext removes and returns the next activation in (time, sequence) order,
// or reports false if none is due at or before the run limit. Same-instant
// heap entries always precede the ring (their sequence numbers are smaller),
// so the heap is consulted first whenever its head is at now.
func (k *Kernel) popNext() (activation, bool) {
	if k.future.len() > 0 {
		if h := k.future.peek(); h.at == k.now || k.nowQ.Len() == 0 {
			if h.at > k.limit {
				return activation{}, false
			}
			return k.future.pop(), true
		}
	}
	if k.nowQ.Len() > 0 {
		if k.nowQ.Front().at > k.limit {
			return activation{}, false
		}
		return k.nowQ.Pop(), true
	}
	return activation{}, false
}

// Outcomes of a step: the caller is itself the next activation (continue
// without parking), control was handed to another process, or nothing is
// runnable within the limit and the run ends.
const (
	stepSelf = iota
	stepHanded
	stepDrained
)

// step selects the next activation and transfers control to its process. It
// is executed by whichever goroutine is ceding control: a parking process
// (self != nil), an exiting process, or the Run goroutine entering the chain
// (self == nil). Exactly one goroutine runs simulation code at a time; the
// channel send is the last action before the caller blocks or exits, so the
// handoff's happens-before edge covers every kernel mutation.
func (k *Kernel) step(self *Proc) int {
	for !k.stopped {
		a, ok := k.popNext()
		if !ok {
			break
		}
		a.proc.pending--
		if a.proc.done || a.epoch != a.proc.epoch {
			continue // stale wakeup from an earlier park
		}
		k.now = a.at
		a.proc.wakeTag = a.tag
		k.dispatched++
		k.running = a.proc
		if a.proc == self {
			return stepSelf // same-instant fast path: no channel round-trip
		}
		a.proc.resume <- struct{}{}
		return stepHanded
	}
	k.running = nil
	return stepDrained
}

// drainToRun wakes the Run goroutine at the end of a run; called by the
// process that found the queue drained (the Run goroutine handles its own
// drained case inline).
func (k *Kernel) drainToRun() {
	k.yielded <- struct{}{}
}

// Run executes activations until none remain or Stop is called. It returns
// the number of activations dispatched.
func (k *Kernel) Run() int {
	return k.RunUntil(maxTime)
}

// RunUntil executes activations with time <= limit. The clock never advances
// past the last dispatched activation; if the queue's head is beyond limit,
// the clock is set to limit and RunUntil returns. If processes remain blocked
// with no pending activation when the queue drains (a deadlock from the
// model's point of view) they are left parked; Blocked reports them.
func (k *Kernel) RunUntil(limit Time) int {
	k.stopped = false
	k.limit = limit
	start := k.dispatched
	if k.step(nil) == stepHanded {
		<-k.yielded // a process drained the queue and ended the run
	}
	if !k.stopped && (k.future.len() > 0 || k.nowQ.Len() > 0) && k.now < limit {
		// The head activation is beyond the limit: the interval up to the
		// limit is known quiet, so the clock may advance to it.
		k.now = limit
	}
	return int(k.dispatched - start)
}

// Blocked returns the names of processes that are alive but have no pending
// activation — i.e. processes waiting on events that can no longer fire.
// Useful in tests to assert clean termination.
func (k *Kernel) Blocked() []string {
	var names []string
	for p := range k.procs {
		if !p.done && p.pending == 0 && p.parked {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// ProcCount returns the number of live processes.
func (k *Kernel) ProcCount() int { return len(k.procs) }
