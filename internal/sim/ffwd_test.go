package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// TestFastForwardCountsHorizonJumps: a clock jump of exactly the horizon
// counts as a fast-forward; a jump one tick short of it does not.
func TestFastForwardCountsHorizonJumps(t *testing.T) {
	k := NewKernel(1)
	k.SetFFHorizon(100)
	k.Go("short-then-long", func(p *Proc) {
		p.Sleep(99)  // below horizon: stepped, not counted
		p.Sleep(100) // exactly horizon: counted
		p.Sleep(250) // above horizon: counted
	})
	k.Run()
	jumps, skipped := k.FastForwards()
	if jumps != 2 {
		t.Fatalf("jumps = %d, want 2 (the 100 and 250 tick gaps)", jumps)
	}
	if skipped != 350 {
		t.Fatalf("skipped = %v, want 350", skipped)
	}
	if k.Now() != 449 {
		t.Fatalf("clock = %v, want 449", k.Now())
	}
}

// TestTimerFiresExactlyAtQuiescenceHorizon: a timer scheduled exactly one
// horizon into quiet time fires at the right instant, and the jump that
// reaches it is accounted. Timers run through the kernel's internal timer
// process, so this exercises the fast-forward path with a wakeup that is not
// a plain process activation.
func TestTimerFiresExactlyAtQuiescenceHorizon(t *testing.T) {
	k := NewKernel(1)
	k.SetFFHorizon(500)
	var firedAt Time = -1
	k.After(500, func() { firedAt = k.Now() })
	k.Run()
	if firedAt != 500 {
		t.Fatalf("timer fired at %v, want exactly 500 (the horizon)", firedAt)
	}
	jumps, skipped := k.FastForwards()
	if jumps == 0 {
		t.Fatal("reaching the timer required a horizon-sized jump; none was counted")
	}
	if skipped < 500 {
		t.Fatalf("skipped = %v, want at least the 500-tick quiet gap", skipped)
	}
}

// TestRunUntilLimitSnapCountsAsFastForward: when RunUntil parks the world and
// snaps the clock to the horizon, that jump is fast-forward too.
func TestRunUntilLimitSnapCountsAsFastForward(t *testing.T) {
	k := NewKernel(1)
	k.SetFFHorizon(10)
	k.Go("far-future", func(p *Proc) {
		p.Sleep(5)
		p.Sleep(10_000) // beyond the first RunUntil limit
	})
	k.RunUntil(1000)
	if k.Now() != 1000 {
		t.Fatalf("clock = %v, want snapped to the 1000 limit", k.Now())
	}
	jumps, skipped := k.FastForwards()
	if jumps != 1 || skipped != 995 {
		t.Fatalf("jumps, skipped = %d, %v; want 1, 995 (the 5..1000 snap)", jumps, skipped)
	}
}

// TestResetAfterFastForwardJump: Reset must zero the fast-forward counters
// and reproduce an FF-heavy run bit-exactly, including the counters.
func TestResetAfterFastForwardJump(t *testing.T) {
	type snapshot struct {
		dispatched uint64
		jumps      uint64
		skipped    Time
		end        Time
	}
	run := func(k *Kernel) snapshot {
		k.SetFFHorizon(50)
		for i := 0; i < 3; i++ {
			k.Go(fmt.Sprintf("sleeper-%d", i), func(p *Proc) {
				p.Sleep(Time(100 * (i + 1)))
				p.Sleep(7)
			})
		}
		k.Run()
		j, s := k.FastForwards()
		return snapshot{dispatched: k.Dispatched(), jumps: j, skipped: s, end: k.Now()}
	}
	k := NewKernel(42)
	first := run(k)
	if first.jumps == 0 {
		t.Fatal("scenario produced no fast-forward jumps; the reset check would be vacuous")
	}
	k.Reset(42)
	if j, s := k.FastForwards(); j != 0 || s != 0 {
		t.Fatalf("counters survived Reset: jumps=%d skipped=%v", j, s)
	}
	// Reset also zeroes the dispatch counter, so the snapshots compare raw.
	second := run(k)
	if second != first {
		t.Fatalf("reset kernel diverged:\n first: %+v\nsecond: %+v", first, second)
	}
}

// TestFFHorizonCannotChangeSchedule is the fast-forward contract: the horizon
// is observability only. The same workload runs with a tiny, the default, and
// an enormous horizon; the dispatch traces must be identical event for event,
// with only the counters differing.
func TestFFHorizonCannotChangeSchedule(t *testing.T) {
	run := func(horizon Time) (trace []string, dispatched uint64) {
		k := NewKernel(9)
		if horizon != 0 {
			k.SetFFHorizon(horizon)
		}
		k.SetTracer(func(at Time, proc, msg string) {
			trace = append(trace, fmt.Sprintf("%v %s %s", at, proc, msg))
		})
		q := NewQueue[int](k)
		for i := 0; i < 4; i++ {
			k.Go(fmt.Sprintf("prod-%d", i), func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(Time(1 + k.Rand().Intn(2000)))
					q.Put(i*10 + j)
					p.Tracef("put %d", i*10+j)
				}
			})
		}
		k.Go("consumer", func(p *Proc) {
			for n := 0; n < 20; n++ {
				v := q.Get(p)
				p.Tracef("got %v", v)
			}
		})
		k.Run()
		return trace, k.Dispatched()
	}
	baseTrace, baseN := run(0) // default horizon
	for _, h := range []Time{1, 50 * Second} {
		tr, n := run(h)
		if n != baseN {
			t.Fatalf("horizon %v changed dispatch count: %d != %d", h, n, baseN)
		}
		if !reflect.DeepEqual(tr, baseTrace) {
			t.Fatalf("horizon %v changed the schedule", h)
		}
	}
}

// TestBlockedReturnsSortedNames: Blocked's report is sorted by name, never
// map-iteration order. Registration order is deliberately shuffled relative
// to the alphabetical order the contract promises.
func TestBlockedReturnsSortedNames(t *testing.T) {
	k := NewKernel(1)
	ev := k.NewEvent() // never fired: everyone below deadlocks
	for _, name := range []string{"zeta", "alpha", "mu", "beta", "omega"} {
		k.Go(name, func(p *Proc) { p.Wait(ev) })
	}
	k.Run()
	want := []string{"alpha", "beta", "mu", "omega", "zeta"}
	for i := 0; i < 10; i++ { // map iteration varies per call; sorting must not
		if got := k.Blocked(); !reflect.DeepEqual(got, want) {
			t.Fatalf("Blocked() = %v, want %v", got, want)
		}
	}
}
