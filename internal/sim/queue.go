package sim

// Queue is an unbounded FIFO message queue between simulated processes.
// Put never blocks; Get parks the caller until an item is available. Items
// are delivered in insertion order and, when several processes wait, waiters
// are served in arrival order. The backing store is a ring buffer, so a
// long-lived queue's memory is bounded by its peak depth, not by the total
// number of items that ever flowed through it.
type Queue[T any] struct {
	k     *Kernel
	items Ring[T]
	ready *Signal
}

// NewQueue returns an empty queue bound to k.
func NewQueue[T any](k *Kernel) *Queue[T] {
	return &Queue[T]{k: k, ready: k.NewSignal()}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return q.items.Len() }

// Cap returns the capacity of the queue's backing buffer (it grows with peak
// depth and is the bound regression tests assert on).
func (q *Queue[T]) Cap() int { return q.items.Cap() }

// Reset discards all buffered items and waiting receivers, keeping the ring
// backing arrays for reuse. Like Kernel.Reset it must only be used between
// runs: parked receivers are abandoned, not woken.
func (q *Queue[T]) Reset() {
	q.items.Reset()
	q.ready.Reset()
}

// Put appends v and wakes one waiting receiver, if any.
func (q *Queue[T]) Put(v T) {
	q.items.Push(v)
	q.ready.NotifyOne()
}

// Get removes and returns the oldest item, parking p until one is available.
func (q *Queue[T]) Get(p *Proc) T {
	for q.items.Len() == 0 {
		p.WaitSignal(q.ready)
	}
	v := q.items.Pop()
	// If items remain and other receivers are parked, pass the baton so a
	// burst of Puts wakes every waiter exactly once.
	if q.items.Len() > 0 {
		q.ready.NotifyOne()
	}
	return v
}

// TryGet removes and returns the oldest item without blocking; ok reports
// whether an item was available.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if q.items.Len() == 0 {
		return v, false
	}
	return q.items.Pop(), true
}

// GetTimeout is like Get but gives up after d; ok reports whether an item was
// received.
func (q *Queue[T]) GetTimeout(p *Proc, d Time) (v T, ok bool) {
	deadline := p.Now() + d
	for q.items.Len() == 0 {
		remain := deadline - p.Now()
		if remain <= 0 || !p.WaitSignalTimeout(q.ready, remain) {
			if q.items.Len() > 0 {
				break // an item raced in at the deadline instant
			}
			return v, false
		}
	}
	v = q.items.Pop()
	if q.items.Len() > 0 {
		q.ready.NotifyOne()
	}
	return v, true
}
