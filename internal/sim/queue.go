package sim

// Queue is an unbounded FIFO message queue between simulated processes.
// Put never blocks; Get parks the caller until an item is available. Items
// are delivered in insertion order and, when several processes wait, waiters
// are served in arrival order.
type Queue[T any] struct {
	k     *Kernel
	items []T
	ready *Signal
}

// NewQueue returns an empty queue bound to k.
func NewQueue[T any](k *Kernel) *Queue[T] {
	return &Queue[T]{k: k, ready: k.NewSignal()}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v and wakes one waiting receiver, if any.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	q.ready.NotifyOne()
}

// Get removes and returns the oldest item, parking p until one is available.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		p.WaitSignal(q.ready)
	}
	v := q.items[0]
	q.items = q.items[1:]
	// If items remain and other receivers are parked, pass the baton so a
	// burst of Puts wakes every waiter exactly once.
	if len(q.items) > 0 {
		q.ready.NotifyOne()
	}
	return v
}

// TryGet removes and returns the oldest item without blocking; ok reports
// whether an item was available.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// GetTimeout is like Get but gives up after d; ok reports whether an item was
// received.
func (q *Queue[T]) GetTimeout(p *Proc, d Time) (v T, ok bool) {
	deadline := p.Now() + d
	for len(q.items) == 0 {
		remain := deadline - p.Now()
		if remain <= 0 || !p.WaitSignalTimeout(q.ready, remain) {
			if len(q.items) > 0 {
				break // an item raced in at the deadline instant
			}
			return v, false
		}
	}
	v = q.items[0]
	q.items = q.items[1:]
	if len(q.items) > 0 {
		q.ready.NotifyOne()
	}
	return v, true
}
