package sim

import (
	"reflect"
	"testing"
)

func TestAfterFiresAtTime(t *testing.T) {
	k := NewKernel(1)
	var fired Time = -1
	k.Go("setup", func(p *Proc) {
		k.After(40, func() { fired = k.Now() })
	})
	k.Run()
	if fired != 40 {
		t.Fatalf("callback at %v, want 40us", fired)
	}
}

func TestAfterOrderingSameInstant(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.Go("setup", func(p *Proc) {
		k.After(10, func() { order = append(order, 1) })
		k.After(10, func() { order = append(order, 2) })
		k.After(5, func() { order = append(order, 0) })
	})
	k.Run()
	if !reflect.DeepEqual(order, []int{0, 1, 2}) {
		t.Fatalf("order = %v", order)
	}
}

func TestAfterNegativeDelayRunsNow(t *testing.T) {
	k := NewKernel(1)
	var fired Time = -1
	k.Go("setup", func(p *Proc) {
		p.Sleep(7)
		k.After(-5, func() { fired = k.Now() })
	})
	k.Run()
	if fired != 7 {
		t.Fatalf("callback at %v, want 7us", fired)
	}
}

func TestAfterFromCallback(t *testing.T) {
	k := NewKernel(1)
	var times []Time
	k.Go("setup", func(p *Proc) {
		k.After(10, func() {
			times = append(times, k.Now())
			k.After(10, func() { times = append(times, k.Now()) })
		})
	})
	k.Run()
	if !reflect.DeepEqual(times, []Time{10, 20}) {
		t.Fatalf("times = %v", times)
	}
}

func TestAfterInterleavedWithInsertions(t *testing.T) {
	// A later-inserted earlier timer must still fire first.
	k := NewKernel(1)
	var order []string
	k.Go("setup", func(p *Proc) {
		k.After(100, func() { order = append(order, "late") })
		p.Sleep(1)
		k.After(10, func() { order = append(order, "early") })
	})
	k.Run()
	if !reflect.DeepEqual(order, []string{"early", "late"}) {
		t.Fatalf("order = %v", order)
	}
}

func TestAfterIntoQueueWakesConsumer(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	var got int
	var at Time
	k.Go("cons", func(p *Proc) {
		got = q.Get(p)
		at = p.Now()
	})
	k.Go("prod", func(p *Proc) {
		k.After(33, func() { q.Put(9) })
	})
	k.Run()
	if got != 9 || at != 33 {
		t.Fatalf("got %d at %v, want 9 at 33us", got, at)
	}
}
