package sim

// heapItem constrains heap4 elements to value types carrying their own
// ordering. Using a method rather than a comparison closure lets the compiler
// devirtualize the call per instantiation, and storing T by value (not
// through container/heap's interface{}) removes the per-Push allocation and
// keeps siblings adjacent in memory.
type heapItem[T any] interface{ lessThan(T) bool }

// heap4 is a hand-rolled 4-ary min-heap. Compared to the binary
// container/heap it halves the tree depth (fewer swap chains on push/pop)
// and the four children of a node share cache lines, which is where the
// kernel's dispatch loop spends its comparisons.
type heap4[T heapItem[T]] struct{ a []T }

func (h *heap4[T]) len() int { return len(h.a) }

// reset empties the heap, zeroing entries (for the GC) but keeping the
// backing array so a reused heap does not re-grow from scratch.
func (h *heap4[T]) reset() {
	clear(h.a)
	h.a = h.a[:0]
}

// peek returns the minimum without removing it. Caller checks len.
func (h *heap4[T]) peek() T { return h.a[0] }

// push inserts v.
func (h *heap4[T]) push(v T) {
	h.a = append(h.a, v)
	a := h.a
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !a[i].lessThan(a[p]) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

// pop removes and returns the minimum. Caller checks len.
func (h *heap4[T]) pop() T {
	a := h.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	var zero T
	a[n] = zero
	a = a[:n]
	h.a = a
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		min := c
		for j := c + 1; j < end; j++ {
			if a[j].lessThan(a[min]) {
				min = j
			}
		}
		if !a[min].lessThan(a[i]) {
			break
		}
		a[i], a[min] = a[min], a[i]
		i = min
	}
	return top
}
