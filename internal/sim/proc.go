package sim

import "fmt"

// Proc is a simulated process: a coroutine cooperatively scheduled by a
// Kernel. All Proc methods must be called from the process's own function;
// they are the points at which the process can block and virtual time can
// advance.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	nameFn func() string // lazy name, formatted on first use (GoNamed)

	// resume switches into the process's coroutine (the driver side of
	// iter.Pull); yield switches back out (called by park).
	resume func() (struct{}, bool)
	yield  func(struct{}) bool

	epoch   uint64 // incremented on every wakeup; see activation.epoch
	pending int    // number of queued activations
	parked  bool
	done    bool
	wakeTag int32
}

// Name returns the process name given to Kernel.Go, formatting it on first
// use when the process was created with GoNamed.
func (p *Proc) Name() string {
	if p.name == "" && p.nameFn != nil {
		p.name = p.nameFn()
		p.nameFn = nil
	}
	return p.name
}

// ID returns the process's unique small-integer id (creation order).
func (p *Proc) ID() int { return p.id }

// Kernel returns the kernel running this process.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// park cedes control and blocks until this process's next wakeup. If the
// process is itself the next activation — a Yield, Sleep(0) or self-wakeup
// at the current instant — it consumes the activation inline and continues
// without a coroutine switch; otherwise it yields back to the RunUntil
// driver, which resumes the next process. Stale activations encountered on
// the way are discarded exactly as the driver would.
func (p *Proc) park() {
	p.parked = true
	k := p.k
	for !k.stopped {
		a, ok := k.frontDue()
		if !ok {
			break
		}
		if a.proc.done || a.epoch != a.proc.epoch {
			k.nowQ.Pop()
			a.proc.pending-- // stale wakeup from an earlier park
			continue
		}
		if a.proc != p {
			break // genuine handoff: yield to the driver
		}
		// Same-instant fast path: no coroutine switch.
		k.nowQ.Pop()
		p.pending--
		k.now = a.at
		p.wakeTag = a.tag
		k.dispatched++
		k.running = p
		p.parked = false
		p.epoch++
		return
	}
	p.yield(struct{}{})
	p.parked = false
	p.epoch++
}

// Sleep blocks the process for d units of virtual time. Nonpositive
// durations yield the processor for the current instant (other activations
// at the same time run first).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.k.schedule(p, p.k.now+d, wakeTimer)
	p.park()
}

// Yield reschedules the process at the current instant, letting every other
// activation pending at this time run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Wait blocks until e fires. If e has already fired it returns immediately.
func (p *Proc) Wait(e *Event) {
	if e.fired {
		return
	}
	e.waiters.Push(p)
	p.park()
}

// WaitTimeout blocks until e fires or d elapses, whichever comes first. It
// reports whether the event fired (true) or the timeout won (false). If e has
// already fired it returns true immediately.
func (p *Proc) WaitTimeout(e *Event, d Time) bool {
	if e.fired {
		return true
	}
	e.waiters.Push(p)
	p.k.schedule(p, p.k.now+d, wakeTimer)
	p.park()
	return p.wakeTag == wakeEvent
}

// WaitSignal blocks until s is next notified.
func (p *Proc) WaitSignal(s *Signal) {
	s.waiters.Push(p)
	p.park()
}

// WaitSignalTimeout blocks until s is notified or d elapses; it reports
// whether the signal arrived.
func (p *Proc) WaitSignalTimeout(s *Signal, d Time) bool {
	s.waiters.Push(p)
	p.k.schedule(p, p.k.now+d, wakeTimer)
	p.park()
	if p.wakeTag != wakeEvent {
		s.drop(p)
		return false
	}
	return true
}

// Tracef emits a trace line through the kernel's tracer, if one is installed.
func (p *Proc) Tracef(format string, args ...interface{}) {
	if p.k.tracer != nil {
		p.k.tracer(p.k.now, p.Name(), fmt.Sprintf(format, args...))
	}
}
