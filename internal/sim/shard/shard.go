// Package shard composes several sim.Kernel instances into one simulation
// under a single virtual clock, using classic conservative (Chandy–Misra–
// Bryant-style) synchronization: shards may advance concurrently inside a
// time window [T, T+lookahead) because no cross-shard interaction can take
// effect in under the lookahead — the minimum cross-shard event latency,
// which for the Strings topology is the remoting fabric's RPC propagation
// delay.
//
// The composition is deterministic by construction, at any worker count:
//
//   - Every cross-shard effect travels as a mailbox message carrying an
//     absolute delivery instant at least one lookahead in the sender's
//     future. Messages are collected per (src, dst) in send order.
//   - Shards only exchange messages at window barriers, on the coordinator's
//     goroutine, with the shards stopped. Pending messages are injected into
//     the destination kernel in sorted (time, src shard id, per-src sequence)
//     order, and the kernel's timer facility preserves registration order at
//     equal instants — so the merged event order is a pure function of the
//     virtual state, never of host scheduling.
//   - Inside a window each shard advances only its own kernel and writes
//     only its own state; the window barrier (parallel.Team) provides the
//     happens-before edges between a sender's window and the receiver's
//     next one.
//
// The window loop degenerates gracefully at both extremes. When every shard
// is idle the frontier T jumps straight to the next event anywhere, so
// globally quiescent stretches cost one iteration regardless of length (the
// analytic fast-forward property, preserved across the composition). When
// exactly one shard has work in the frontier window, the coordinator runs
// it solo far beyond one lookahead — up to the other shards' horizon — with
// a stop-on-first-send interrupt: the moment the solo shard emits a
// cross-shard message its run ends at that (event-order-determined, hence
// deterministic) point and the window logic re-evaluates.
package shard

import (
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/sim"
)

// none marks "no pending activation" in frontier computations; it is also
// the Run limit (matching the kernel's own maximum instant).
const none = sim.Time(1<<62 - 1)

// message is one cross-shard effect: fn runs on the destination kernel's
// timer process at instant at. seq is the per-source send sequence that
// breaks same-instant ties deterministically.
type message struct {
	at  sim.Time
	src int
	dst int
	seq uint64
	fn  func()
}

// Shard is one member kernel's handle. Code running on the shard's kernel
// uses Send to schedule effects on other shards; everything else is driven
// by the Coordinator.
type Shard struct {
	// K is the shard's kernel. All simulated state owned by the shard lives
	// on it; the coordinator is the only party that drives it.
	K *sim.Kernel

	id     int
	co     *Coordinator
	seqCtr uint64
	outbox []message

	// soloActive arms the stop-on-first-send interrupt while the shard runs
	// in solo mode; Send clears it and stops the kernel.
	soloActive bool
}

// ID returns the shard's index in the composition.
func (s *Shard) ID() int { return s.id }

// Send schedules fn to run on shard dst's kernel at the sender's now+delay.
// fn executes in the destination kernel's timer context and must not block
// (queue Puts, event Fires, signal Notifies and process spawns are all
// fine). Sends to the shard itself are plain kernel timers with no
// lookahead constraint; cross-shard sends must respect the coordinator's
// lookahead — a shorter delay would let a message land in a past the
// destination has already simulated, and panics immediately instead of
// corrupting the run.
//
// Send must be called from code executing on the shard's own kernel (a
// process, a timer callback) or between runs on the coordinator's
// goroutine; it is not safe from foreign goroutines.
func (s *Shard) Send(dst int, delay sim.Time, fn func()) {
	if dst == s.id {
		s.K.After(delay, fn)
		return
	}
	if dst < 0 || dst >= len(s.co.shards) {
		panic(fmt.Sprintf("shard: send from %d to unknown shard %d", s.id, dst))
	}
	if delay < s.co.look {
		panic(fmt.Sprintf("shard: send from %d to %d with delay %v below the lookahead %v",
			s.id, dst, delay, s.co.look))
	}
	s.seqCtr++
	s.outbox = append(s.outbox, message{
		at: s.K.Now() + delay, src: s.id, dst: dst, seq: s.seqCtr, fn: fn,
	})
	if s.soloActive {
		// First cross-shard send of a solo run: the solo horizon was
		// computed assuming no outbound traffic, so stop here (a point
		// fixed by event order, not wall time) and let the coordinator
		// re-evaluate with the message on the books.
		s.soloActive = false
		s.K.Stop()
	}
}

// Stats are the coordinator's window-protocol counters, for observability
// and benchmark reporting. All values are deterministic: they depend only
// on the virtual schedule, not on worker count or wall-clock interleaving.
type Stats struct {
	// Windows counts barrier windows in which two or more shards advanced
	// concurrently.
	Windows uint64
	// SoloRuns counts solo-mode stretches: exactly one shard had work in
	// the frontier window and ran alone past the window bound.
	SoloRuns uint64
	// SoloStops counts solo runs cut short by their first cross-shard send.
	SoloStops uint64
	// Messages counts cross-shard messages delivered.
	Messages uint64
	// MaxActive is the largest concurrent active set of any window.
	MaxActive int
	// Lookahead echoes the composition's lookahead.
	Lookahead sim.Time
}

// Coordinator drives a set of shard kernels under the conservative window
// protocol. It is not safe for concurrent use; exactly one goroutine may
// call Run/RunUntil.
type Coordinator struct {
	shards  []*Shard
	look    sim.Time
	team    *parallel.Team
	pending [][]message // undelivered messages, per destination
	stats   Stats

	// Scratch buffers reused across windows.
	nexts  []sim.Time
	active []int
}

// NewCoordinator builds a composition over the given kernels (one shard
// each, in order). lookahead is the minimum cross-shard event latency and
// must be at least 1µs — a zero lookahead admits no conservative window.
// workers bounds how many shards advance concurrently inside a window;
// results are bit-identical at every worker count, including 1.
func NewCoordinator(kernels []*sim.Kernel, lookahead sim.Time, workers int) *Coordinator {
	if len(kernels) == 0 {
		panic("shard: no kernels")
	}
	if lookahead < 1 {
		panic(fmt.Sprintf("shard: lookahead %v must be at least 1µs", lookahead))
	}
	if workers > len(kernels) {
		workers = len(kernels)
	}
	c := &Coordinator{
		look:    lookahead,
		team:    parallel.NewTeam(workers),
		pending: make([][]message, len(kernels)),
		nexts:   make([]sim.Time, len(kernels)),
		stats:   Stats{Lookahead: lookahead},
	}
	for i, k := range kernels {
		c.shards = append(c.shards, &Shard{K: k, id: i, co: c})
	}
	return c
}

// Shard returns the i'th shard handle.
func (c *Coordinator) Shard(i int) *Shard { return c.shards[i] }

// Shards returns the number of shards.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Lookahead returns the composition's lookahead.
func (c *Coordinator) Lookahead() sim.Time { return c.look }

// Stats returns the window-protocol counters accumulated so far.
func (c *Coordinator) Stats() Stats { return c.stats }

// Workers returns the barrier team's worker count.
func (c *Coordinator) Workers() int { return c.team.Workers() }

// Close releases the barrier team's workers. The coordinator must not be
// run again afterwards.
func (c *Coordinator) Close() { c.team.Close() }

// Run advances the composition until it is globally quiescent: no shard has
// a pending activation and no cross-shard message is undelivered.
func (c *Coordinator) Run() { c.run(none) }

// RunUntil advances the composition through every event at or before limit,
// then clamps each shard's clock the way sim.Kernel.RunUntil does — a shard
// with work remaining beyond the limit ends with its clock at the limit.
func (c *Coordinator) RunUntil(limit sim.Time) {
	c.run(limit)
	for _, s := range c.shards {
		s.K.RunUntil(limit)
	}
}

// next computes shard i's earliest relevant instant: its kernel's next
// pending activation or the earliest undelivered message addressed to it.
func (c *Coordinator) next(i int) sim.Time {
	t := none
	if et, ok := c.shards[i].K.NextEventTime(); ok {
		t = et
	}
	for _, m := range c.pending[i] {
		if m.at < t {
			t = m.at
		}
	}
	return t
}

// run is the conservative window loop.
func (c *Coordinator) run(limit sim.Time) {
	for {
		// Frontier: the earliest instant anything can happen anywhere.
		minT := none
		for i := range c.shards {
			t := c.next(i)
			c.nexts[i] = t
			if t < minT {
				minT = t
			}
		}
		if minT == none || minT > limit {
			return
		}
		// The conservative window [minT, minT+lookahead): no message sent
		// inside it can be delivered inside it.
		horizon := minT + c.look - 1
		if horizon > limit {
			horizon = limit
		}
		c.active = c.active[:0]
		for i, t := range c.nexts {
			if t <= horizon {
				c.active = append(c.active, i)
			}
		}
		nActive := len(c.active)
		if nActive == 1 {
			c.runSolo(c.active[0], limit)
			continue
		}
		for _, i := range c.active {
			c.inject(i, horizon)
		}
		h := horizon
		c.team.Run(nActive, func(x int) { c.shards[c.active[x]].K.RunUntil(h) })
		// Barrier: collect outboxes in ascending shard id (the active set is
		// built ascending), preserving per-source send order.
		for _, i := range c.active {
			c.drain(c.shards[i])
		}
		c.stats.Windows++
		if nActive > c.stats.MaxActive {
			c.stats.MaxActive = nActive
		}
	}
}

// runSolo advances a single shard far past the window bound: with every
// other shard quiescent until minOther, shard i cannot be affected before
// minOther+lookahead, so it may run alone to that horizon — unless it emits
// a cross-shard message first, which stops the run at the send.
func (c *Coordinator) runSolo(i int, limit sim.Time) {
	minOther := none
	for j := range c.shards {
		if j != i && c.nexts[j] < minOther {
			minOther = c.nexts[j]
		}
	}
	soloH := limit
	if minOther != none && minOther+c.look-1 < soloH {
		soloH = minOther + c.look - 1
	}
	s := c.shards[i]
	c.inject(i, soloH)
	s.soloActive = true
	s.K.RunUntil(soloH)
	if s.soloActive {
		s.soloActive = false
	} else {
		c.stats.SoloStops++
	}
	c.stats.SoloRuns++
	c.drain(s)
}

// inject delivers every pending message for dst due at or before horizon
// into the destination kernel, in (time, src, seq) order; later messages
// stay pending. Kernel timers run same-instant callbacks in registration
// order, so the sort order is the delivery order.
func (c *Coordinator) inject(dst int, horizon sim.Time) {
	pend := c.pending[dst]
	if len(pend) == 0 {
		return
	}
	sort.Slice(pend, func(a, b int) bool {
		if pend[a].at != pend[b].at {
			return pend[a].at < pend[b].at
		}
		if pend[a].src != pend[b].src {
			return pend[a].src < pend[b].src
		}
		return pend[a].seq < pend[b].seq
	})
	k := c.shards[dst].K
	now := k.Now()
	cut := sort.Search(len(pend), func(x int) bool { return pend[x].at > horizon })
	for _, m := range pend[:cut] {
		if m.at < now {
			// The conservative invariant (receiver clock < any in-flight
			// delivery instant) was violated — a coordinator bug, never a
			// runtime condition.
			panic(fmt.Sprintf("shard: delivery to %d at %v is in its past (now %v)",
				dst, m.at, now))
		}
		k.After(m.at-now, m.fn)
	}
	c.stats.Messages += uint64(cut)
	rest := pend[:0]
	rest = append(rest, pend[cut:]...)
	// Drop closure references past the live region so delivered messages
	// can be collected.
	for x := len(rest); x < len(pend); x++ {
		pend[x] = message{}
	}
	c.pending[dst] = rest
}

// drain moves a shard's outbox onto the pending lists.
func (c *Coordinator) drain(s *Shard) {
	for x, m := range s.outbox {
		c.pending[m.dst] = append(c.pending[m.dst], m)
		s.outbox[x] = message{}
	}
	s.outbox = s.outbox[:0]
}
