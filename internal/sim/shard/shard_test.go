package shard

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sim"
)

const look = sim.Time(60) // the RemoteLink-style lookahead used throughout

// record is one observed delivery in the ring scenario.
type record struct {
	Shard int
	At    sim.Time
	Token int
}

// ringRun builds n shard kernels passing tokens around a ring with varied
// (but deterministic) service times and hop delays, runs the composition on
// the given worker count, and returns the per-shard observation logs
// concatenated in shard order plus the coordinator for stats inspection.
func ringRun(t *testing.T, n, workers, tokens, hops int) ([]record, *Coordinator) {
	t.Helper()
	kernels := make([]*sim.Kernel, n)
	queues := make([]*sim.Queue[int], n)
	logs := make([][]record, n)
	for i := range kernels {
		kernels[i] = sim.NewKernel(int64(i + 1))
		queues[i] = sim.NewQueue[int](kernels[i])
	}
	co := NewCoordinator(kernels, look, workers)
	for i := 0; i < n; i++ {
		i := i
		sh := co.Shard(i)
		kernels[i].Go(fmt.Sprintf("ring-%d", i), func(p *sim.Proc) {
			for {
				v := queues[i].Get(p)
				logs[i] = append(logs[i], record{Shard: i, At: p.Now(), Token: v})
				if v >= tokens*hops {
					continue // token retired; keep serving others
				}
				// Service time and next hop vary with the token value so
				// same-instant deliveries and out-of-order hops both occur.
				p.Sleep(sim.Time(v*7%45) + 1)
				dst := (i + 1 + v%maxInt(1, n-1)) % n
				next := v + 1
				sh.Send(dst, look+sim.Time(v%3)*13, func() { queues[dst].Put(next) })
			}
		})
	}
	// Seed the ring from shard 0 with a burst of tokens at distinct times.
	for tok := 0; tok < tokens; tok++ {
		tok := tok
		kernels[0].After(sim.Time(tok*11), func() { queues[0].Put(tok * hops / hops) })
	}
	co.Run()
	defer co.Close()
	var all []record
	for i := 0; i < n; i++ {
		all = append(all, logs[i]...)
	}
	return all, co
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestRingWorkerInvariance(t *testing.T) {
	ref, refCo := ringRun(t, 4, 1, 6, 40)
	if len(ref) == 0 {
		t.Fatal("reference run produced no deliveries")
	}
	refStats := refCo.Stats()
	for _, w := range []int{2, 4, 8} {
		got, co := ringRun(t, 4, w, 6, 40)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: delivery log diverged from single-worker reference", w)
		}
		if s := co.Stats(); !reflect.DeepEqual(s, refStats) {
			t.Fatalf("workers=%d: stats diverged: %+v vs %+v", w, s, refStats)
		}
	}
	if refStats.Windows == 0 {
		t.Fatalf("ring run never exercised a multi-shard window: %+v", refStats)
	}
	if refStats.Messages == 0 {
		t.Fatal("no cross-shard messages delivered")
	}
	if refStats.MaxActive < 2 {
		t.Fatalf("MaxActive = %d, want >= 2", refStats.MaxActive)
	}
}

func TestShardCountCollapse(t *testing.T) {
	// The same ring logic on 2 shards vs 4 shards is a different partition
	// (different topology), but each must still be worker-invariant.
	ref, _ := ringRun(t, 2, 1, 4, 25)
	got, _ := ringRun(t, 2, 2, 4, 25)
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("2-shard ring diverged across worker counts")
	}
}

func TestSoloModeStopOnSend(t *testing.T) {
	run := func(workers int) ([]record, Stats) {
		kA := sim.NewKernel(1)
		kB := sim.NewKernel(2)
		qB := sim.NewQueue[int](kB)
		var logA, logB []record
		co := NewCoordinator([]*sim.Kernel{kA, kB}, look, workers)
		shA := co.Shard(0)
		kA.Go("busy", func(p *sim.Proc) {
			for step := 0; step < 1000; step++ {
				p.Sleep(10)
				logA = append(logA, record{Shard: 0, At: p.Now(), Token: step})
				if step == 500 {
					v := step
					shA.Send(1, look, func() { qB.Put(v) })
				}
			}
		})
		kB.Go("idle-then-listen", func(p *sim.Proc) {
			p.Sleep(200_000) // far beyond shard A's burst
			logB = append(logB, record{Shard: 1, At: p.Now(), Token: -1})
			v := qB.Get(p)
			logB = append(logB, record{Shard: 1, At: p.Now(), Token: v})
		})
		co.Run()
		co.Close()
		return append(logA, logB...), co.Stats()
	}
	ref, stats := run(1)
	if stats.SoloRuns == 0 {
		t.Fatalf("expected solo runs while shard B idles, got %+v", stats)
	}
	if stats.SoloStops == 0 {
		t.Fatalf("the send at step 500 should cut a solo run short: %+v", stats)
	}
	got, gotStats := run(2)
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("solo scenario diverged across worker counts")
	}
	if !reflect.DeepEqual(gotStats, stats) {
		t.Fatalf("solo stats diverged: %+v vs %+v", gotStats, stats)
	}
	// The message was sent at t=5010 and must arrive when B wakes at 200000.
	last := ref[len(ref)-1]
	if last.Token != 500 || last.At != 200_000 {
		t.Fatalf("B received %+v, want token 500 at 200000", last)
	}
}

func TestSingleShardMatchesPlainKernel(t *testing.T) {
	build := func(k *sim.Kernel) *sim.Queue[int] {
		q := sim.NewQueue[int](k)
		k.Go("producer", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				p.Sleep(sim.Time(i%9) + 1)
				q.Put(i)
			}
		})
		k.Go("consumer", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				q.Get(p)
				p.Sleep(3)
			}
		})
		return q
	}
	ref := sim.NewKernel(7)
	build(ref)
	ref.Run()

	k := sim.NewKernel(7)
	build(k)
	co := NewCoordinator([]*sim.Kernel{k}, look, 4)
	defer co.Close()
	co.Run()
	if k.Now() != ref.Now() || k.Dispatched() != ref.Dispatched() {
		t.Fatalf("single-shard composition: now=%v disp=%d, plain kernel: now=%v disp=%d",
			k.Now(), k.Dispatched(), ref.Now(), ref.Dispatched())
	}
	if s := co.Stats(); s.Windows != 0 {
		t.Fatalf("a 1-shard composition should only ever run solo: %+v", s)
	}
}

func TestRunUntilClampsClocks(t *testing.T) {
	kA := sim.NewKernel(1)
	kB := sim.NewKernel(2)
	fired := 0
	kA.After(100, func() { fired++ })
	kA.After(5_000, func() { fired++ })
	kB.After(9_000, func() { fired++ })
	co := NewCoordinator([]*sim.Kernel{kA, kB}, look, 1)
	defer co.Close()
	co.RunUntil(1_000)
	if fired != 1 {
		t.Fatalf("fired %d timers by t=1000, want 1", fired)
	}
	if kA.Now() != 1_000 || kB.Now() != 1_000 {
		t.Fatalf("clocks not clamped: A=%v B=%v, want 1000", kA.Now(), kB.Now())
	}
	co.RunUntil(10_000)
	if fired != 3 {
		t.Fatalf("fired %d timers by t=10000, want 3", fired)
	}
}

func TestSelfSendIsALocalTimer(t *testing.T) {
	k := sim.NewKernel(1)
	co := NewCoordinator([]*sim.Kernel{k, sim.NewKernel(2)}, look, 1)
	defer co.Close()
	hit := sim.Time(0)
	// Below-lookahead delay is legal for a self-send.
	co.Shard(0).Send(0, 5, func() { hit = k.Now() })
	co.Run()
	if hit != 5 {
		t.Fatalf("self-send fired at %v, want 5", hit)
	}
	if s := co.Stats(); s.Messages != 0 {
		t.Fatalf("self-send must not count as a cross-shard message: %+v", s)
	}
}

func TestSendBelowLookaheadPanics(t *testing.T) {
	co := NewCoordinator([]*sim.Kernel{sim.NewKernel(1), sim.NewKernel(2)}, look, 1)
	defer co.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("cross-shard send below the lookahead did not panic")
		}
	}()
	co.Shard(0).Send(1, look-1, func() {})
}

func TestSendToUnknownShardPanics(t *testing.T) {
	co := NewCoordinator([]*sim.Kernel{sim.NewKernel(1)}, look, 1)
	defer co.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("send to out-of-range shard did not panic")
		}
	}()
	co.Shard(0).Send(3, look, func() {})
}

func TestNewCoordinatorValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty kernel set", func() { NewCoordinator(nil, look, 1) })
	mustPanic("zero lookahead", func() { NewCoordinator([]*sim.Kernel{sim.NewKernel(1)}, 0, 1) })
}

func TestAccessors(t *testing.T) {
	ks := []*sim.Kernel{sim.NewKernel(1), sim.NewKernel(2), sim.NewKernel(3)}
	co := NewCoordinator(ks, look, 16)
	defer co.Close()
	if co.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", co.Shards())
	}
	if co.Lookahead() != look {
		t.Fatalf("Lookahead() = %v, want %v", co.Lookahead(), look)
	}
	if co.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3 (capped at shard count)", co.Workers())
	}
	for i := range ks {
		if co.Shard(i).ID() != i || co.Shard(i).K != ks[i] {
			t.Fatalf("shard %d handle mismatch", i)
		}
	}
	if co.Stats().Lookahead != look {
		t.Fatalf("Stats().Lookahead = %v, want %v", co.Stats().Lookahead, look)
	}
}

func TestQuiescentGapsAreCheap(t *testing.T) {
	// Two shards exchanging one message across a vast idle gap: the window
	// loop must not iterate per-lookahead across the gap.
	kA := sim.NewKernel(1)
	kB := sim.NewKernel(2)
	qB := sim.NewQueue[int](kB)
	co := NewCoordinator([]*sim.Kernel{kA, kB}, look, 1)
	defer co.Close()
	shA := co.Shard(0)
	kA.Go("late-sender", func(p *sim.Proc) {
		p.Sleep(10_000_000) // 10 virtual seconds of nothing
		shA.Send(1, look, func() { qB.Put(1) })
	})
	got := sim.Time(0)
	kB.Go("receiver", func(p *sim.Proc) {
		qB.Get(p)
		got = p.Now()
	})
	co.Run()
	if got != 10_000_000+look {
		t.Fatalf("delivery at %v, want %v", got, sim.Time(10_000_000+look))
	}
	s := co.Stats()
	if total := s.Windows + s.SoloRuns; total > 20 {
		t.Fatalf("crossing a 10s idle gap took %d loop iterations: %+v", total, s)
	}
}
