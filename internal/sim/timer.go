package sim

// timerEntry is a deferred action: either a callback (fn) or a direct
// message delivery (q, msg) — the closure-free form behind AfterPut.
type timerEntry struct {
	at  Time
	seq uint64
	fn  func()
	q   *Queue[any]
	msg any
}

// lessThan orders timer entries by (time, registration sequence).
func (a timerEntry) lessThan(b timerEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// timers is the kernel's deferred-callback facility, backed by one lazily
// started process.
type timers struct {
	heap    heap4[timerEntry]
	seq     uint64
	kick    *Signal
	kicked  bool
	started bool
}

// After schedules fn to run at now+d in the context of the kernel's timer
// process. Callbacks must not block (they may Put into queues, fire events,
// notify signals — anything non-parking). Callbacks at the same instant run
// in registration order.
func (k *Kernel) After(d Time, fn func()) {
	k.pushTimer(d, timerEntry{fn: fn})
}

// AfterPut schedules msg to be delivered into q at now+d, in the context of
// the kernel's timer process. It is After(d, func() { q.Put(msg) }) without
// the closure allocation, for hot paths that defer a message per call (the
// RPC transport's latency model). Deliveries and callbacks at the same
// instant run in registration order.
func (k *Kernel) AfterPut(d Time, q *Queue[any], msg any) {
	k.pushTimer(d, timerEntry{q: q, msg: msg})
}

// pushTimer registers the entry at now+d and kicks the timer process.
func (k *Kernel) pushTimer(d Time, e timerEntry) {
	if d < 0 {
		d = 0
	}
	if k.timers == nil {
		k.timers = &timers{kick: k.NewSignal()}
	}
	t := k.timers
	t.seq++
	e.at = k.now + d
	e.seq = t.seq
	t.heap.push(e)
	if !t.started {
		t.started = true
		k.Go("sim-timers", k.runTimers)
		return
	}
	t.kicked = true
	t.kick.Notify()
}

// runTimers delivers deferred callbacks in time order.
func (k *Kernel) runTimers(p *Proc) {
	t := k.timers
	for {
		for t.heap.len() > 0 && t.heap.peek().at <= p.Now() {
			e := t.heap.pop()
			if e.fn != nil {
				e.fn()
			} else {
				e.q.Put(e.msg)
			}
		}
		if t.kicked {
			t.kicked = false
			continue
		}
		if t.heap.len() == 0 {
			p.WaitSignal(t.kick)
			continue
		}
		p.WaitSignalTimeout(t.kick, t.heap.peek().at-p.Now())
	}
}
