package sim

import "container/heap"

// timerEntry is a deferred callback.
type timerEntry struct {
	at  Time
	seq uint64
	fn  func()
}

type timerHeap []timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(timerEntry)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// timers is the kernel's deferred-callback facility, backed by one lazily
// started process.
type timers struct {
	heap    timerHeap
	seq     uint64
	kick    *Signal
	kicked  bool
	started bool
}

// After schedules fn to run at now+d in the context of the kernel's timer
// process. Callbacks must not block (they may Put into queues, fire events,
// notify signals — anything non-parking). Callbacks at the same instant run
// in registration order.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	if k.timers == nil {
		k.timers = &timers{kick: k.NewSignal()}
	}
	t := k.timers
	t.seq++
	heap.Push(&t.heap, timerEntry{at: k.now + d, seq: t.seq, fn: fn})
	if !t.started {
		t.started = true
		k.Go("sim-timers", k.runTimers)
		return
	}
	t.kicked = true
	t.kick.Notify()
}

// runTimers delivers deferred callbacks in time order.
func (k *Kernel) runTimers(p *Proc) {
	t := k.timers
	for {
		for len(t.heap) > 0 && t.heap[0].at <= p.Now() {
			e := heap.Pop(&t.heap).(timerEntry)
			e.fn()
		}
		if t.kicked {
			t.kicked = false
			continue
		}
		if len(t.heap) == 0 {
			p.WaitSignal(t.kick)
			continue
		}
		p.WaitSignalTimeout(t.kick, t.heap[0].at-p.Now())
	}
}
