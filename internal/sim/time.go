// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel runs cooperatively scheduled processes (goroutines that execute
// one at a time, handing a baton back to the kernel whenever they block) over
// a virtual clock. All ordering is deterministic: pending activations are
// ordered by (virtual time, schedule sequence number), so two runs with the
// same seed produce identical event orders and identical results.
//
// The package is the substrate for the simulated GPU devices, the CUDA
// runtime layer, and the Strings/Rain schedulers built on top of it.
package sim

import "fmt"

// Time is a point in virtual time, measured in microseconds since the start
// of the simulation.
type Time int64

// Duration constants expressed in the kernel's microsecond resolution.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time with an adaptive unit, e.g. "1.500ms" or "2.250s".
func (t Time) String() string {
	switch {
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%dus", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to a Time, rounding to the
// nearest microsecond.
func FromSeconds(s float64) Time { return Time(s*float64(Second) + 0.5) }

// FromMillis converts floating-point milliseconds to a Time, rounding to the
// nearest microsecond.
func FromMillis(ms float64) Time { return Time(ms*float64(Millisecond) + 0.5) }
