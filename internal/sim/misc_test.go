package sim

import (
	"fmt"
	"strings"
	"testing"
)

func TestTracerReceivesTracef(t *testing.T) {
	k := NewKernel(1)
	var lines []string
	k.SetTracer(func(at Time, proc, msg string) {
		lines = append(lines, fmt.Sprintf("%v %s %s", at, proc, msg))
	})
	k.Go("worker", func(p *Proc) {
		p.Sleep(5)
		p.Tracef("did %d things", 3)
	})
	k.Run()
	if len(lines) != 1 || !strings.Contains(lines[0], "5us worker did 3 things") {
		t.Fatalf("trace lines = %v", lines)
	}
	// Disabling the tracer must not panic.
	k2 := NewKernel(1)
	k2.Go("quiet", func(p *Proc) { p.Tracef("ignored") })
	k2.Run()
}

func TestProcIdentity(t *testing.T) {
	k := NewKernel(1)
	var ids []int
	var names []string
	for _, n := range []string{"a", "b"} {
		n := n
		k.Go(n, func(p *Proc) {
			ids = append(ids, p.ID())
			names = append(names, p.Name())
			if p.Kernel() != k {
				t.Error("Kernel() mismatch")
			}
		})
	}
	k.Run()
	if ids[0] == ids[1] {
		t.Fatal("process ids collide")
	}
	if names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestRunUntilThenResumeWithTimers(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	k.Go("setup", func(p *Proc) {
		for _, d := range []Time{10, 30, 50} {
			d := d
			k.After(d, func() { fired = append(fired, k.Now()) })
		}
	})
	k.RunUntil(20)
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("after RunUntil(20): fired = %v", fired)
	}
	k.Run()
	if len(fired) != 3 || fired[2] != 50 {
		t.Fatalf("after resume: fired = %v", fired)
	}
}

func TestStopInsideTimerCallbackWorld(t *testing.T) {
	k := NewKernel(1)
	n := 0
	k.Go("setup", func(p *Proc) {
		k.After(5, func() { n++; k.Stop() })
		k.After(10, func() { n++ })
	})
	k.Run()
	if n != 1 {
		t.Fatalf("callbacks run = %d, want 1 (stopped)", n)
	}
	k.Run() // resume delivers the second
	if n != 2 {
		t.Fatalf("after resume = %d, want 2", n)
	}
}

func TestQueueLenAndSignalWaiting(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	s := k.NewSignal()
	k.Go("w", func(p *Proc) {
		q.Put(1)
		q.Put(2)
		if q.Len() != 2 {
			t.Errorf("Len = %d", q.Len())
		}
		if s.Waiting() != 0 {
			t.Errorf("Waiting = %d", s.Waiting())
		}
	})
	k.Run()
}
