package sim

// Ring is a growable FIFO ring buffer. Unlike the `s = s[1:]` drain idiom it
// replaces, popping releases the slot for reuse immediately, so a long-lived
// queue's footprint is bounded by its peak occupancy rather than by the total
// number of items that ever passed through it. The zero value is an empty
// ring ready for use.
//
// The buffer capacity is always a power of two so index wrapping is a mask.
type Ring[T any] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of buffered items.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the current capacity of the backing buffer.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Push appends v at the back.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// Pop removes and returns the front item. It panics on an empty ring.
func (r *Ring[T]) Pop() T {
	if r.n == 0 {
		panic("sim: Pop on empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero // release the reference for the GC
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// Front returns the front item without removing it. It panics on an empty
// ring.
func (r *Ring[T]) Front() T {
	if r.n == 0 {
		panic("sim: Front on empty ring")
	}
	return r.buf[r.head]
}

// At returns the i-th item from the front (0 = front). It panics if i is out
// of range.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("sim: Ring.At out of range")
	}
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

// RemoveFirst deletes the first item matching the predicate, preserving the
// order of the remaining items, and reports whether a match was found.
func (r *Ring[T]) RemoveFirst(match func(T) bool) bool {
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		if !match(r.buf[(r.head+i)&mask]) {
			continue
		}
		for j := i; j < r.n-1; j++ {
			r.buf[(r.head+j)&mask] = r.buf[(r.head+j+1)&mask]
		}
		var zero T
		r.buf[(r.head+r.n-1)&mask] = zero
		r.n--
		return true
	}
	return false
}

// Reset empties the ring, keeping the backing buffer for reuse. Buffered
// items are zeroed so the GC can reclaim anything they referenced; the
// capacity acquired at peak occupancy is retained, which is what makes a
// pooled ring cheap to run again.
func (r *Ring[T]) Reset() {
	clear(r.buf)
	r.head, r.n = 0, 0
}

// grow doubles the buffer, unwrapping the occupied region to the front.
func (r *Ring[T]) grow() {
	newCap := 8
	if len(r.buf) > 0 {
		newCap = len(r.buf) * 2
	}
	buf := make([]T, newCap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = buf, 0
}
