package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// The same-instant fast path must not reorder work: a self-reschedule at now
// runs after every activation already pending at this instant, in sequence
// order, exactly as the single-heap kernel ordered it.
func TestSameInstantOrderingAcrossYields(t *testing.T) {
	k := NewKernel(1)
	var order []string
	for i := 0; i < 3; i++ {
		i := i
		k.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			for round := 0; round < 3; round++ {
				order = append(order, fmt.Sprintf("p%d.%d", i, round))
				p.Yield()
			}
		})
	}
	k.Run()
	want := []string{
		"p0.0", "p1.0", "p2.0",
		"p0.1", "p1.1", "p2.1",
		"p0.2", "p1.2", "p2.2",
	}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// Stale-epoch wakeups interleaved with same-instant self-reschedules: a
// process whose event wait wins against a pending timeout leaves a stale
// timer activation behind; same-instant Yields (the fast path) must neither
// consume nor be disturbed by it, and when the stale instant arrives during
// a later park the activation must be discarded silently.
func TestStaleWakeupInterleavedWithSameInstantReschedule(t *testing.T) {
	k := NewKernel(1)
	e := k.NewEvent()
	var wakes []Time
	k.Go("w", func(p *Proc) {
		if !p.WaitTimeout(e, 30) {
			t.Error("event at t=10 should have beaten the t=30 timeout")
		}
		// The t=30 timer activation is now stale. Interleave same-instant
		// self-reschedules at t=10, then sleep across the stale instant.
		for i := 0; i < 3; i++ {
			p.Yield()
			wakes = append(wakes, p.Now())
		}
		p.Sleep(15) // t=25
		wakes = append(wakes, p.Now())
		p.Yield() // same-instant reschedule right before the stale instant
		wakes = append(wakes, p.Now())
		p.Sleep(10) // parks across t=30: the stale timer must not cut it short
		wakes = append(wakes, p.Now())
	})
	k.Go("f", func(p *Proc) {
		p.Sleep(10)
		e.Fire()
	})
	k.Run()
	want := []Time{10, 10, 10, 25, 25, 35}
	if !reflect.DeepEqual(wakes, want) {
		t.Fatalf("wakes = %v, want %v", wakes, want)
	}
}

// Stop during a same-instant batch halts after the currently executing
// process parks; the rest of the batch stays pending and resumes on the next
// Run call in the original order.
func TestStopDuringSameInstantBatch(t *testing.T) {
	k := NewKernel(1)
	var ran []int
	for i := 0; i < 5; i++ {
		i := i
		k.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(1)
			ran = append(ran, i)
			if i == 1 {
				p.Kernel().Stop()
			}
		})
	}
	k.Run()
	if !reflect.DeepEqual(ran, []int{0, 1}) {
		t.Fatalf("ran before stop = %v, want [0 1]", ran)
	}
	if k.Now() != 1 {
		t.Fatalf("clock = %v, want 1us", k.Now())
	}
	k.Run()
	if !reflect.DeepEqual(ran, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("ran after resume = %v, want [0 1 2 3 4]", ran)
	}
	if k.Now() != 1 {
		t.Fatalf("clock moved to %v resuming a same-instant batch", k.Now())
	}
}

// RunUntil at the limit boundary: activations exactly at the limit run; with
// pending work beyond the limit the clock parks exactly at the limit; with
// nothing pending the clock stays at the last dispatched instant.
func TestRunUntilLimitBoundary(t *testing.T) {
	k := NewKernel(1)
	var wakes []Time
	k.Go("s", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(10)
			wakes = append(wakes, p.Now())
		}
	})
	n := k.RunUntil(20) // activations at 10 and 20 are <= limit and must run
	if n != 3 {         // start activation + two timer wakeups
		t.Fatalf("dispatched %d activations, want 3", n)
	}
	if !reflect.DeepEqual(wakes, []Time{10, 20}) {
		t.Fatalf("wakes = %v, want [10 20]", wakes)
	}
	if k.Now() != 20 {
		t.Fatalf("clock = %v, want 20us (exactly the limit)", k.Now())
	}
	k.RunUntil(25) // head is at 30: nothing runs, clock advances to the limit
	if len(wakes) != 2 || k.Now() != 25 {
		t.Fatalf("after quiet RunUntil: wakes=%v clock=%v, want 2 wakes @25us", wakes, k.Now())
	}
	k.Run() // drain: last activation at 40, clock must stay there (no limit snap)
	if !reflect.DeepEqual(wakes, []Time{10, 20, 30, 40}) {
		t.Fatalf("wakes = %v", wakes)
	}
	if k.Now() != 40 {
		t.Fatalf("clock = %v after drain, want 40us", k.Now())
	}
	// A drained kernel must not move on further RunUntil calls either.
	k.RunUntil(1000)
	if k.Now() != 40 {
		t.Fatalf("clock = %v after empty RunUntil, want 40us", k.Now())
	}
}

// The dispatch counter excludes stale wakeups and accumulates across runs.
func TestDispatchedCounter(t *testing.T) {
	k := NewKernel(1)
	e := k.NewEvent()
	k.Go("w", func(p *Proc) {
		p.WaitTimeout(e, 10) // event wins; timer activation goes stale
		p.Sleep(100)
	})
	k.Go("f", func(p *Proc) {
		p.Sleep(5)
		e.Fire()
	})
	n := k.Run()
	if uint64(n) != k.Dispatched() {
		t.Fatalf("Run returned %d, Dispatched() = %d", n, k.Dispatched())
	}
	// start(w) + start(f) + f's sleep wake + event wake of w + w's final
	// sleep wake: the stale timer at t=10 must not be counted.
	if n != 5 {
		t.Fatalf("dispatched %d activations, want 5 (stale timer excluded)", n)
	}
}

// A deep chain of self-reschedules exercises the no-channel fast path; the
// clock and ordering must match the semantics of the slow path exactly.
func TestSelfRescheduleChain(t *testing.T) {
	k := NewKernel(1)
	count := 0
	k.Go("spinner", func(p *Proc) {
		for i := 0; i < 10000; i++ {
			p.Yield()
			count++
		}
	})
	k.Run()
	if count != 10000 || k.Now() != 0 {
		t.Fatalf("count=%d now=%v, want 10000 yields at t=0", count, k.Now())
	}
}
