package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// resetWorkload is a small but structurally busy scenario: staggered
// sleepers, a queue-fed consumer, an event rendezvous, a timer callback and
// kernel randomness, so a reset kernel has to reproduce heap ordering, ring
// FIFO behaviour, timer delivery and the seeded random stream.
func resetWorkload(k *Kernel) []string {
	var log []string
	k.SetTracer(func(t Time, proc, msg string) {
		log = append(log, fmt.Sprintf("%v %s %s", t, proc, msg))
	})
	q := NewQueue[int](k)
	done := k.NewEvent()
	k.Go("producer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(Time(1 + k.Rand().Intn(5)))
			q.Put(i)
			p.Tracef("put %d", i)
		}
	})
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			v := q.Get(p)
			p.Tracef("got %d", v)
		}
		done.Fire()
	})
	k.Go("waiter", func(p *Proc) {
		p.Wait(done)
		p.Tracef("done at %v", p.Now())
	})
	k.After(3, func() { log = append(log, "timer@3") })
	k.Run()
	log = append(log, fmt.Sprintf("end now=%v dispatched=%d", k.Now(), k.Dispatched()))
	return log
}

// TestKernelResetReproducesFreshRun is the reuse contract: running the same
// scenario on a reset kernel — even one polluted by a different prior run —
// yields exactly the event sequence a brand-new kernel produces.
func TestKernelResetReproducesFreshRun(t *testing.T) {
	fresh := resetWorkload(NewKernel(42))

	reused := NewKernel(7)
	// Pollute: a different workload, different seed, left unfinished by a
	// horizon so parked processes and pending activations survive the run.
	reused.Go("polluter", func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Sleep(Time(10 + reused.Rand().Intn(100)))
		}
	})
	reused.RunUntil(200)
	if reused.Dispatched() == 0 {
		t.Fatal("polluter run dispatched nothing")
	}

	reused.Reset(42)
	if got := resetWorkload(reused); !reflect.DeepEqual(got, fresh) {
		t.Errorf("reset kernel diverged from fresh kernel:\nfresh: %v\nreused: %v", fresh, got)
	}

	// A second reuse of the same kernel must reproduce it again.
	reused.Reset(42)
	if got := resetWorkload(reused); !reflect.DeepEqual(got, fresh) {
		t.Errorf("second reuse diverged from fresh kernel:\nfresh: %v\nreused: %v", fresh, got)
	}
}

// TestKernelResetState pins the observable state a reset must restore.
func TestKernelResetState(t *testing.T) {
	k := NewKernel(1)
	k.Go("a", func(p *Proc) { p.Sleep(10) })
	k.Go("stuck", func(p *Proc) { p.Wait(k.NewEvent()) })
	k.Run()
	if k.Now() == 0 || k.Dispatched() == 0 {
		t.Fatal("setup run did not execute")
	}
	k.Reset(99)
	if k.Now() != 0 {
		t.Errorf("Now after Reset = %v, want 0", k.Now())
	}
	if k.Dispatched() != 0 {
		t.Errorf("Dispatched after Reset = %d, want 0", k.Dispatched())
	}
	if k.ProcCount() != 0 {
		t.Errorf("ProcCount after Reset = %d, want 0", k.ProcCount())
	}
	if got, want := k.Rand().Int63(), NewKernel(99).Rand().Int63(); got != want {
		t.Errorf("random stream after Reset = %d, want fresh seed-99 stream %d", got, want)
	}
}

// TestRingResetKeepsCapacity verifies Reset releases contents but not the
// grown backing array — the property that makes pooled reuse worthwhile.
func TestRingResetKeepsCapacity(t *testing.T) {
	var r Ring[*int]
	for i := 0; i < 100; i++ {
		v := i
		r.Push(&v)
	}
	capBefore := r.Cap()
	r.Reset()
	if r.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", r.Len())
	}
	if r.Cap() != capBefore {
		t.Errorf("Cap after Reset = %d, want %d (backing array retained)", r.Cap(), capBefore)
	}
	// The ring must still be fully usable.
	for i := 0; i < 3; i++ {
		v := i
		r.Push(&v)
	}
	for i := 0; i < 3; i++ {
		if got := *r.Pop(); got != i {
			t.Fatalf("Pop after Reset = %d, want %d", got, i)
		}
	}
}

// TestQueueSignalEventReset covers the reusable-primitive resets.
func TestQueueSignalEventReset(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	for i := 0; i < 20; i++ {
		q.Put(i)
	}
	capBefore := q.Cap()
	q.Reset()
	if q.Len() != 0 || q.Cap() != capBefore {
		t.Errorf("queue after Reset: len=%d cap=%d, want len=0 cap=%d", q.Len(), q.Cap(), capBefore)
	}
	q.Put(7)
	k.Go("get", func(p *Proc) {
		if v := q.Get(p); v != 7 {
			t.Errorf("Get after Reset = %d, want 7", v)
		}
	})
	k.Run()

	e := k.NewEvent()
	e.Fire()
	if !e.Fired() {
		t.Fatal("event did not fire")
	}
	e.Reset()
	if e.Fired() {
		t.Error("event still fired after Reset")
	}

	s := k.NewSignal()
	k.Go("waiter", func(p *Proc) { p.WaitSignal(s) })
	k.Run() // parks the waiter
	if s.Waiting() != 1 {
		t.Fatalf("Waiting = %d, want 1", s.Waiting())
	}
	s.Reset()
	if s.Waiting() != 0 {
		t.Errorf("Waiting after Reset = %d, want 0", s.Waiting())
	}
}

// TestEventResetWithWaitersPanics pins the guard against stranding a parked
// process.
func TestEventResetWithWaitersPanics(t *testing.T) {
	k := NewKernel(1)
	e := k.NewEvent()
	k.Go("waiter", func(p *Proc) { p.Wait(e) })
	k.Run()
	defer func() {
		if recover() == nil {
			t.Error("Reset with parked waiters did not panic")
		}
	}()
	e.Reset()
}

// TestResetDuringRunPanics pins the misuse guard.
func TestResetDuringRunPanics(t *testing.T) {
	k := NewKernel(1)
	k.Go("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Reset during an active run did not panic")
			}
		}()
		k.Reset(2)
	})
	k.Run()
}
