package sim

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	k := NewKernel(1)
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	var at Time
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		at = p.Now()
	})
	k.Run()
	if at != 5*Millisecond {
		t.Fatalf("woke at %v, want 5ms", at)
	}
	if k.Now() != 5*Millisecond {
		t.Fatalf("kernel clock %v, want 5ms", k.Now())
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	k := NewKernel(1)
	order := []string{}
	k.Go("a", func(p *Proc) {
		p.Sleep(-3)
		order = append(order, "a")
	})
	k.Go("b", func(p *Proc) {
		p.Sleep(0)
		order = append(order, "b")
	})
	k.Run()
	if k.Now() != 0 {
		t.Fatalf("clock moved to %v on zero sleeps", k.Now())
	}
	want := []string{"a", "b"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestFIFOOrderAtSameInstant(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(1 * Millisecond)
			order = append(order, i)
		})
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestInterleavedSleeps(t *testing.T) {
	k := NewKernel(1)
	var trace []string
	log := func(p *Proc, s string) { trace = append(trace, fmt.Sprintf("%s@%v", s, p.Now())) }
	k.Go("a", func(p *Proc) {
		p.Sleep(10)
		log(p, "a1")
		p.Sleep(20)
		log(p, "a2")
	})
	k.Go("b", func(p *Proc) {
		p.Sleep(15)
		log(p, "b1")
		p.Sleep(5)
		log(p, "b2")
	})
	k.Run()
	want := []string{"a1@10us", "b1@15us", "b2@20us", "a2@30us"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	k := NewKernel(1)
	ticks := 0
	k.Go("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(1 * Second)
			ticks++
		}
	})
	k.RunUntil(10 * Second)
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if k.Now() != 10*Second {
		t.Fatalf("clock = %v, want 10s", k.Now())
	}
	k.Run()
	if ticks != 100 {
		t.Fatalf("after resume ticks = %d, want 100", ticks)
	}
}

func TestStop(t *testing.T) {
	k := NewKernel(1)
	ticks := 0
	k.Go("ticker", func(p *Proc) {
		for {
			p.Sleep(1 * Second)
			ticks++
			if ticks == 3 {
				p.Kernel().Stop()
			}
		}
	})
	k.Run()
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
}

func TestGoFromInsideProcess(t *testing.T) {
	k := NewKernel(1)
	var childTime Time
	k.Go("parent", func(p *Proc) {
		p.Sleep(7)
		p.Kernel().Go("child", func(c *Proc) {
			c.Sleep(3)
			childTime = c.Now()
		})
		p.Sleep(100)
	})
	k.Run()
	if childTime != 10 {
		t.Fatalf("child woke at %v, want 10us", childTime)
	}
}

func TestEventFireWakesWaiters(t *testing.T) {
	k := NewKernel(1)
	e := k.NewEvent()
	var woke []string
	for _, n := range []string{"w1", "w2", "w3"} {
		n := n
		k.Go(n, func(p *Proc) {
			p.Wait(e)
			woke = append(woke, fmt.Sprintf("%s@%v", n, p.Now()))
		})
	}
	k.Go("firer", func(p *Proc) {
		p.Sleep(42)
		e.Fire()
	})
	k.Run()
	want := []string{"w1@42us", "w2@42us", "w3@42us"}
	if !reflect.DeepEqual(woke, want) {
		t.Fatalf("woke = %v, want %v", woke, want)
	}
}

func TestWaitOnFiredEventReturnsImmediately(t *testing.T) {
	k := NewKernel(1)
	e := k.NewEvent()
	var at Time = -1
	k.Go("firer", func(p *Proc) { e.Fire() })
	k.Go("late", func(p *Proc) {
		p.Sleep(5)
		p.Wait(e)
		at = p.Now()
	})
	k.Run()
	if at != 5 {
		t.Fatalf("late waiter resumed at %v, want 5us", at)
	}
}

func TestDoubleFireIsNoop(t *testing.T) {
	k := NewKernel(1)
	e := k.NewEvent()
	n := 0
	k.Go("w", func(p *Proc) {
		p.Wait(e)
		n++
	})
	k.Go("f", func(p *Proc) {
		e.Fire()
		e.Fire()
	})
	k.Run()
	if n != 1 {
		t.Fatalf("waiter ran %d times, want 1", n)
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	k := NewKernel(1)
	e := k.NewEvent()
	var fired bool
	var at Time
	k.Go("w", func(p *Proc) {
		fired = p.WaitTimeout(e, 30)
		at = p.Now()
	})
	k.Run()
	if fired {
		t.Fatal("WaitTimeout reported fired on a never-fired event")
	}
	if at != 30 {
		t.Fatalf("timeout at %v, want 30us", at)
	}
}

func TestWaitTimeoutEventWins(t *testing.T) {
	k := NewKernel(1)
	e := k.NewEvent()
	var fired bool
	var at Time
	k.Go("w", func(p *Proc) {
		fired = p.WaitTimeout(e, 30)
		at = p.Now()
	})
	k.Go("f", func(p *Proc) {
		p.Sleep(10)
		e.Fire()
	})
	k.Run()
	if !fired {
		t.Fatal("WaitTimeout missed the event")
	}
	if at != 10 {
		t.Fatalf("woke at %v, want 10us", at)
	}
}

func TestStaleTimerDoesNotRewake(t *testing.T) {
	// After an event win, the pending timeout activation must not disturb
	// the process's next park.
	k := NewKernel(1)
	e := k.NewEvent()
	var at Time
	k.Go("w", func(p *Proc) {
		p.WaitTimeout(e, 30)
		p.Sleep(100) // stale timer at t=30 must not cut this short
		at = p.Now()
	})
	k.Go("f", func(p *Proc) {
		p.Sleep(10)
		e.Fire()
	})
	k.Run()
	if at != 110 {
		t.Fatalf("woke at %v, want 110us", at)
	}
}

func TestSignalNotifyAllAndOne(t *testing.T) {
	k := NewKernel(1)
	s := k.NewSignal()
	var woke []string
	for _, n := range []string{"a", "b"} {
		n := n
		k.Go(n, func(p *Proc) {
			p.WaitSignal(s)
			woke = append(woke, n+"-1")
			p.WaitSignal(s)
			woke = append(woke, n+"-2")
		})
	}
	k.Go("n", func(p *Proc) {
		p.Sleep(1)
		s.Notify() // wakes a and b
		p.Sleep(1)
		if s.Waiting() != 2 {
			t.Errorf("Waiting = %d, want 2", s.Waiting())
		}
		s.NotifyOne() // wakes a only
		p.Sleep(1)
		s.NotifyOne() // wakes b
	})
	k.Run()
	want := []string{"a-1", "b-1", "a-2", "b-2"}
	if !reflect.DeepEqual(woke, want) {
		t.Fatalf("woke = %v, want %v", woke, want)
	}
}

func TestSignalTimeoutDropsWaiter(t *testing.T) {
	k := NewKernel(1)
	s := k.NewSignal()
	var got bool
	k.Go("w", func(p *Proc) {
		got = p.WaitSignalTimeout(s, 5)
	})
	k.Go("n", func(p *Proc) {
		p.Sleep(10)
		if s.Waiting() != 0 {
			t.Errorf("timed-out waiter still registered: %d", s.Waiting())
		}
		s.Notify() // must be a no-op, not a crash
	})
	k.Run()
	if got {
		t.Fatal("WaitSignalTimeout reported a signal that never came")
	}
}

func TestBlockedReportsDeadlockedProcs(t *testing.T) {
	k := NewKernel(1)
	e := k.NewEvent()
	k.Go("stuck", func(p *Proc) { p.Wait(e) })
	k.Go("fine", func(p *Proc) { p.Sleep(1) })
	k.Run()
	b := k.Blocked()
	if len(b) != 1 || b[0] != "stuck" {
		t.Fatalf("Blocked() = %v, want [stuck]", b)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative absolute time")
		}
	}()
	k := NewKernel(1)
	p := &Proc{k: k, name: "x"}
	k.now = 100
	k.schedule(p, 50, wakeTimer)
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []string {
		k := NewKernel(seed)
		var log []string
		q := NewQueue[int](k)
		for i := 0; i < 5; i++ {
			i := i
			k.Go(fmt.Sprintf("prod%d", i), func(p *Proc) {
				for j := 0; j < 20; j++ {
					p.Sleep(Time(k.Rand().Intn(100)))
					q.Put(i*100 + j)
				}
			})
		}
		k.Go("cons", func(p *Proc) {
			for n := 0; n < 100; n++ {
				v := q.Get(p)
				log = append(log, fmt.Sprintf("%d@%v", v, p.Now()))
			}
		})
		k.Run()
		return log
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different event orders")
	}
	c := run(8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical random event orders (suspicious)")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0us"},
		{999, "999us"},
		{1500, "1.500ms"},
		{2 * Second, "2.000s"},
		{2500 * Millisecond, "2.500s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if FromMillis(2.5) != 2500 {
		t.Fatalf("FromMillis(2.5) = %v", FromMillis(2.5))
	}
	if got := (3 * Second).Seconds(); got != 3.0 {
		t.Fatalf("Seconds() = %v", got)
	}
	if got := (3 * Millisecond).Millis(); got != 3.0 {
		t.Fatalf("Millis() = %v", got)
	}
}

// Property: FromSeconds and Seconds round-trip within one microsecond for
// non-negative times up to a day.
func TestQuickTimeRoundTrip(t *testing.T) {
	f := func(us uint32) bool {
		tm := Time(us)
		back := FromSeconds(tm.Seconds())
		d := back - tm
		return d >= -1 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with n sleepers of arbitrary durations, the kernel clock ends at
// the maximum duration and every sleeper wakes exactly once at its own time.
func TestQuickSleepersEndAtMax(t *testing.T) {
	f := func(ds []uint16) bool {
		if len(ds) == 0 {
			return true
		}
		k := NewKernel(1)
		var max Time
		woke := make([]Time, len(ds))
		for i, d := range ds {
			i, d := i, Time(d)
			if d > max {
				max = d
			}
			k.Go(fmt.Sprintf("s%d", i), func(p *Proc) {
				p.Sleep(d)
				woke[i] = p.Now()
			})
		}
		k.Run()
		if k.Now() != max {
			return false
		}
		for i, d := range ds {
			if woke[i] != Time(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
