package sim

// Event is a one-shot latch. Processes that Wait on it park until Fire is
// called; once fired, all subsequent waits return immediately. Events are the
// completion tokens of the simulation (an op finished, a request completed).
type Event struct {
	k       *Kernel
	fired   bool
	waiters Ring[*Proc]
}

// NewEvent returns an unfired event bound to k.
func (k *Kernel) NewEvent() *Event { return &Event{k: k} }

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

// Reset unlatches the event for reuse, keeping the waiter ring's backing
// array. It panics if processes are still parked on the event: resetting
// under a waiter would strand it without the activation Fire promised.
func (e *Event) Reset() {
	if e.waiters.Len() > 0 {
		panic("sim: Event.Reset with parked waiters")
	}
	e.fired = false
}

// Fire latches the event and wakes every waiter at the current virtual
// instant (in wait order). Firing an already fired event is a no-op.
func (e *Event) Fire() {
	if e.fired {
		return
	}
	e.fired = true
	for e.waiters.Len() > 0 {
		e.k.schedule(e.waiters.Pop(), e.k.now, wakeEvent)
	}
}

// Signal is a repeatable notification: each Notify wakes the processes
// currently waiting (in wait order) and leaves the signal ready for new
// waiters. It is the building block for condition-variable-style coordination
// such as the Dispatcher waking backend threads.
type Signal struct {
	k       *Kernel
	waiters Ring[*Proc]
}

// NewSignal returns a signal bound to k.
func (k *Kernel) NewSignal() *Signal { return &Signal{k: k} }

// Notify wakes every process currently waiting on s.
func (s *Signal) Notify() {
	for n := s.waiters.Len(); n > 0; n-- {
		s.k.schedule(s.waiters.Pop(), s.k.now, wakeEvent)
	}
}

// NotifyOne wakes the longest-waiting process, if any, and reports whether a
// process was woken.
func (s *Signal) NotifyOne() bool {
	if s.waiters.Len() == 0 {
		return false
	}
	s.k.schedule(s.waiters.Pop(), s.k.now, wakeEvent)
	return true
}

// Waiting returns the number of processes parked on s.
func (s *Signal) Waiting() int { return s.waiters.Len() }

// Reset abandons any parked waiters and keeps the ring's backing array for
// reuse. Like Kernel.Reset it must only run between simulations — dropped
// waiters are never woken.
func (s *Signal) Reset() { s.waiters.Reset() }

// drop removes p from the waiter list (used when a timed wait times out).
func (s *Signal) drop(p *Proc) {
	s.waiters.RemoveFirst(func(w *Proc) bool { return w == p })
}
