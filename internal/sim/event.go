package sim

// Event is a one-shot latch. Processes that Wait on it park until Fire is
// called; once fired, all subsequent waits return immediately. Events are the
// completion tokens of the simulation (an op finished, a request completed).
type Event struct {
	k       *Kernel
	fired   bool
	pooled  bool  // drawn from the kernel free list; recycled via Ref/Unref
	refs    int32 // outstanding references to a pooled event
	waiters Ring[*Proc]
}

// NewEvent returns an unfired event bound to k.
func (k *Kernel) NewEvent() *Event { return &Event{k: k} }

// NewPooledEvent returns an unfired event drawn from the kernel's free list,
// holding one reference for the caller. Holders of additional references take
// them with Ref and release with Unref; the event returns to the free list
// once it has fired, no process waits on it, and every reference is released.
// Use pooled events only for completion tokens with a clear ownership
// discipline (the GPU op path); retaining one past its last Unref aliases a
// recycled event. NewEvent remains the safe default.
func (k *Kernel) NewPooledEvent() *Event {
	if n := len(k.evFree); n > 0 {
		e := k.evFree[n-1]
		k.evFree[n-1] = nil
		k.evFree = k.evFree[:n-1]
		e.fired = false
		e.refs = 1
		return e
	}
	return &Event{k: k, pooled: true, refs: 1} //lint:allow hotalloc -- pool grow-on-miss: amortized to zero once the free list reaches peak occupancy
}

// Ref takes an additional reference on a pooled event. It is a no-op on nil
// and unpooled events, so callers need not distinguish.
func (e *Event) Ref() {
	if e != nil && e.pooled {
		e.refs++
	}
}

// Unref releases one reference on a pooled event, recycling it once it has
// fired with no waiters and no references remain. A no-op on nil and unpooled
// events.
func (e *Event) Unref() {
	if e == nil || !e.pooled {
		return
	}
	e.refs--
	e.maybeRecycle()
}

// maybeRecycle returns a pooled event to the free list when it is fully
// released: fired (so no future Fire touches it), no parked waiters, and no
// outstanding references. Unref and Fire both call it, covering the async
// pipeline where the last reference drops before the op fires.
func (e *Event) maybeRecycle() {
	if e.pooled && e.refs <= 0 && e.fired && e.waiters.Len() == 0 {
		e.refs = 0
		e.k.evFree = append(e.k.evFree, e) //lint:allow hotalloc -- free-list growth is amortized, bounded by peak live pooled events
	}
}

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

// Reset unlatches the event for reuse, keeping the waiter ring's backing
// array. It panics if processes are still parked on the event: resetting
// under a waiter would strand it without the activation Fire promised.
func (e *Event) Reset() {
	if e.waiters.Len() > 0 {
		panic("sim: Event.Reset with parked waiters")
	}
	e.fired = false
}

// Fire latches the event and wakes every waiter at the current virtual
// instant (in wait order). Firing an already fired event is a no-op.
func (e *Event) Fire() {
	if e.fired {
		return
	}
	e.fired = true
	for e.waiters.Len() > 0 {
		e.k.schedule(e.waiters.Pop(), e.k.now, wakeEvent)
	}
	e.maybeRecycle()
}

// Signal is a repeatable notification: each Notify wakes the processes
// currently waiting (in wait order) and leaves the signal ready for new
// waiters. It is the building block for condition-variable-style coordination
// such as the Dispatcher waking backend threads.
type Signal struct {
	k       *Kernel
	waiters Ring[*Proc]
}

// NewSignal returns a signal bound to k.
func (k *Kernel) NewSignal() *Signal { return &Signal{k: k} }

// Notify wakes every process currently waiting on s.
func (s *Signal) Notify() {
	for n := s.waiters.Len(); n > 0; n-- {
		s.k.schedule(s.waiters.Pop(), s.k.now, wakeEvent)
	}
}

// NotifyOne wakes the longest-waiting process, if any, and reports whether a
// process was woken.
func (s *Signal) NotifyOne() bool {
	if s.waiters.Len() == 0 {
		return false
	}
	s.k.schedule(s.waiters.Pop(), s.k.now, wakeEvent)
	return true
}

// Waiting returns the number of processes parked on s.
func (s *Signal) Waiting() int { return s.waiters.Len() }

// Reset abandons any parked waiters and keeps the ring's backing array for
// reuse. Like Kernel.Reset it must only run between simulations — dropped
// waiters are never woken.
func (s *Signal) Reset() { s.waiters.Reset() }

// drop removes p from the waiter list (used when a timed wait times out).
func (s *Signal) drop(p *Proc) {
	s.waiters.RemoveFirst(func(w *Proc) bool { return w == p }) //lint:allow hotalloc -- predicate closure does not outlive RemoveFirst; the compiler keeps it on the stack
}
