package sim

import "testing"

func TestNextEventTimeQuiescent(t *testing.T) {
	k := NewKernel(1)
	if _, ok := k.NextEventTime(); ok {
		t.Fatal("fresh kernel reported a pending event")
	}
	// A parked process waiting on external input is quiescence, not an event.
	q := NewQueue[int](k)
	k.Go("sink", func(p *Proc) { q.Get(p) })
	k.Run()
	if at, ok := k.NextEventTime(); ok {
		t.Fatalf("parked-only kernel reported event at %v", at)
	}
}

func TestNextEventTimeCoversSpawnTimersAndSleeps(t *testing.T) {
	k := NewKernel(1)
	k.Go("worker", func(p *Proc) { p.Sleep(100) })
	if at, ok := k.NextEventTime(); !ok || at != 0 {
		t.Fatalf("spawn activation: got (%v,%v), want (0,true)", at, ok)
	}
	k.RunUntil(50)
	// The worker is asleep until 100; the clock is clamped to the limit.
	if at, ok := k.NextEventTime(); !ok || at != 100 {
		t.Fatalf("sleeping proc: got (%v,%v), want (100,true)", at, ok)
	}
	// A timer materializes as a kernel activation too.
	fired := false
	k.After(25, func() { fired = true })
	if at, ok := k.NextEventTime(); !ok || at > 75 {
		t.Fatalf("timer wakeup: got (%v,%v), want <=75,true", at, ok)
	}
	k.Run()
	if !fired {
		t.Fatal("timer did not fire")
	}
	if _, ok := k.NextEventTime(); ok {
		t.Fatal("drained kernel still reports a pending event")
	}
}

func TestNextEventTimeSeesNowQueue(t *testing.T) {
	k := NewKernel(1)
	k.Go("a", func(p *Proc) {
		// Stop with a same-instant activation still queued for b.
		k.Stop()
	})
	k.Go("b", func(p *Proc) {})
	k.Run()
	if at, ok := k.NextEventTime(); !ok || at != 0 {
		t.Fatalf("stopped kernel with queued activation: got (%v,%v), want (0,true)", at, ok)
	}
	k.Run()
	if _, ok := k.NextEventTime(); ok {
		t.Fatal("kernel still pending after resume")
	}
}
