package sim

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

func TestQueuePutGetFIFO(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	var got []int
	k.Go("prod", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(i)
		}
	})
	k.Go("cons", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p))
		}
	})
	k.Run()
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("got %v", got)
	}
}

func TestQueueGetBlocksUntilPut(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[string](k)
	var at Time
	k.Go("cons", func(p *Proc) {
		q.Get(p)
		at = p.Now()
	})
	k.Go("prod", func(p *Proc) {
		p.Sleep(25)
		q.Put("x")
	})
	k.Run()
	if at != 25 {
		t.Fatalf("consumer resumed at %v, want 25us", at)
	}
}

func TestQueueMultipleConsumersServedInOrder(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	var served []string
	for _, n := range []string{"c1", "c2", "c3"} {
		n := n
		k.Go(n, func(p *Proc) {
			v := q.Get(p)
			served = append(served, fmt.Sprintf("%s:%d", n, v))
		})
	}
	k.Go("prod", func(p *Proc) {
		p.Sleep(1)
		q.Put(10)
		q.Put(20)
		q.Put(30)
	})
	k.Run()
	want := []string{"c1:10", "c2:20", "c3:30"}
	if !reflect.DeepEqual(served, want) {
		t.Fatalf("served = %v, want %v", served, want)
	}
}

func TestQueueTryGet(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue returned ok")
	}
	q.Put(7)
	v, ok := q.TryGet()
	if !ok || v != 7 {
		t.Fatalf("TryGet = %d,%v want 7,true", v, ok)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func TestQueueGetTimeout(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	var ok1, ok2 bool
	var v2 int
	k.Go("cons", func(p *Proc) {
		_, ok1 = q.GetTimeout(p, 10)
		v2, ok2 = q.GetTimeout(p, 100)
	})
	k.Go("prod", func(p *Proc) {
		p.Sleep(50)
		q.Put(9)
	})
	k.Run()
	if ok1 {
		t.Fatal("first GetTimeout should have timed out")
	}
	if !ok2 || v2 != 9 {
		t.Fatalf("second GetTimeout = %d,%v want 9,true", v2, ok2)
	}
}

func TestSemaphoreExclusion(t *testing.T) {
	k := NewKernel(1)
	s := k.NewSemaphore(1)
	var trace []string
	worker := func(n string, start Time) {
		k.Go(n, func(p *Proc) {
			p.Sleep(start)
			s.Acquire(p)
			trace = append(trace, fmt.Sprintf("%s+%v", n, p.Now()))
			p.Sleep(10)
			trace = append(trace, fmt.Sprintf("%s-%v", n, p.Now()))
			s.Release()
		})
	}
	worker("a", 0)
	worker("b", 1)
	worker("c", 2)
	k.Run()
	want := []string{"a+0us", "a-10us", "b+10us", "b-20us", "c+20us", "c-30us"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestSemaphoreCapacityTwo(t *testing.T) {
	k := NewKernel(1)
	s := k.NewSemaphore(2)
	var maxInUse int
	for i := 0; i < 6; i++ {
		k.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			s.Acquire(p)
			if s.InUse() > maxInUse {
				maxInUse = s.InUse()
			}
			p.Sleep(5)
			s.Release()
		})
	}
	k.Run()
	if maxInUse != 2 {
		t.Fatalf("max in use = %d, want 2", maxInUse)
	}
	if s.Free() != 2 {
		t.Fatalf("free = %d at end, want 2", s.Free())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	k := NewKernel(1)
	s := k.NewSemaphore(1)
	if !s.TryAcquire() {
		t.Fatal("TryAcquire on free semaphore failed")
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire on held semaphore succeeded")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestSemaphoreOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on over-release")
		}
	}()
	k := NewKernel(1)
	s := k.NewSemaphore(1)
	s.Release()
}

func TestMutexLockUnlock(t *testing.T) {
	k := NewKernel(1)
	m := k.NewMutex()
	counter := 0
	for i := 0; i < 10; i++ {
		k.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			m.Lock(p)
			c := counter
			p.Sleep(3)
			counter = c + 1
			m.Unlock()
		})
	}
	k.Run()
	if counter != 10 {
		t.Fatalf("counter = %d, want 10 (critical section violated)", counter)
	}
}

// Property: a queue delivers exactly the multiset of puts, in order, for any
// interleaving of producer delays.
func TestQuickQueueDeliversAllInOrder(t *testing.T) {
	f := func(delays []uint8) bool {
		k := NewKernel(3)
		q := NewQueue[int](k)
		var got []int
		k.Go("prod", func(p *Proc) {
			for i, d := range delays {
				p.Sleep(Time(d))
				q.Put(i)
			}
		})
		k.Go("cons", func(p *Proc) {
			for range delays {
				got = append(got, q.Get(p))
			}
		})
		k.Run()
		if len(got) != len(delays) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: semaphore admission never exceeds capacity and all workers
// eventually run, for arbitrary capacities and worker counts.
func TestQuickSemaphoreNeverExceedsCapacity(t *testing.T) {
	f := func(capRaw, nRaw uint8) bool {
		capacity := int(capRaw%4) + 1
		n := int(nRaw%20) + 1
		k := NewKernel(5)
		s := k.NewSemaphore(capacity)
		inUse, maxUse, ran := 0, 0, 0
		for i := 0; i < n; i++ {
			k.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
				s.Acquire(p)
				inUse++
				if inUse > maxUse {
					maxUse = inUse
				}
				p.Sleep(Time(k.Rand().Intn(7)))
				inUse--
				ran++
				s.Release()
			})
		}
		k.Run()
		return maxUse <= capacity && ran == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
