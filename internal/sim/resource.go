package sim

// Semaphore is a counting semaphore with FIFO admission, used to model
// exclusive or capacity-limited hardware resources (a copy engine, a network
// link slot, a CPU core).
type Semaphore struct {
	k       *Kernel
	free    int
	cap     int
	waiters Ring[*Proc]
}

// NewSemaphore returns a semaphore with n units available.
func (k *Kernel) NewSemaphore(n int) *Semaphore {
	return &Semaphore{k: k, free: n, cap: n}
}

// Acquire takes one unit, parking p in FIFO order until one is free.
func (s *Semaphore) Acquire(p *Proc) {
	if s.free > 0 && s.waiters.Len() == 0 {
		s.free--
		return
	}
	s.waiters.Push(p)
	// Release passes the unit directly to the woken waiter (no barging), so
	// a single park suffices.
	p.park()
}

// TryAcquire takes a unit without blocking and reports success.
func (s *Semaphore) TryAcquire() bool {
	if s.free > 0 && s.waiters.Len() == 0 {
		s.free--
		return true
	}
	return false
}

// Release returns one unit, waking the longest-waiting process if any. The
// unit passes directly to the woken process (no barging).
func (s *Semaphore) Release() {
	if s.waiters.Len() > 0 {
		s.k.schedule(s.waiters.Pop(), s.k.now, wakeEvent)
		return
	}
	s.free++
	if s.free > s.cap {
		panic("sim: semaphore released above capacity")
	}
}

// Free returns the number of available units.
func (s *Semaphore) Free() int { return s.free }

// InUse returns the number of held units.
func (s *Semaphore) InUse() int { return s.cap - s.free }

// Mutex is a binary semaphore.
type Mutex struct{ Semaphore }

// NewMutex returns an unlocked mutex.
func (k *Kernel) NewMutex() *Mutex {
	return &Mutex{Semaphore{k: k, free: 1, cap: 1}}
}

// Lock acquires the mutex, parking p until it is free.
func (m *Mutex) Lock(p *Proc) { m.Acquire(p) }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.Release() }
