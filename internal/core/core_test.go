package core

import (
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// twoGPUNode is the paper's small-scale server: one node with a Quadro 2000
// and a Tesla C2050.
func twoGPUNode() []NodeConfig {
	return []NodeConfig{{Devices: []gpu.Spec{gpu.Quadro2000, gpu.TeslaC2050}}}
}

// supernode is the emulated 4-GPU server: two dual-GPU nodes.
func supernode() []NodeConfig {
	return []NodeConfig{
		{Devices: []gpu.Spec{gpu.Quadro2000, gpu.TeslaC2050}},
		{Devices: []gpu.Spec{gpu.Quadro4000, gpu.TeslaC2070}},
	}
}

func mustRun(t *testing.T, cfg Config, streams []workload.StreamSpec) *RunResult {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r, err := c.Run(streams)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(r.Errors) > 0 {
		t.Fatalf("application errors: %v", r.Errors)
	}
	if r.Finished != r.Launched {
		t.Fatalf("finished %d of %d", r.Finished, r.Launched)
	}
	return r
}

func gaStream(n int) []workload.StreamSpec {
	return []workload.StreamSpec{{
		Kind: workload.Gaussian, Count: n, Lambda: sim.Second, Node: 0, Tenant: 1, Weight: 1,
	}}
}

func TestCUDAModeCompletesRequests(t *testing.T) {
	r := mustRun(t, Config{Seed: 1, Nodes: twoGPUNode(), Mode: ModeCUDA}, gaStream(5))
	if got := len(r.Completions[workload.Gaussian]); got != 5 {
		t.Fatalf("completions = %d, want 5", got)
	}
	if r.AvgCompletion(workload.Gaussian) <= 0 {
		t.Fatal("nonpositive completion time")
	}
}

func TestRainModeCompletesRequests(t *testing.T) {
	r := mustRun(t, Config{Seed: 1, Nodes: twoGPUNode(), Mode: ModeRain, Balance: "GRR"}, gaStream(5))
	if got := len(r.Completions[workload.Gaussian]); got != 5 {
		t.Fatalf("completions = %d, want 5", got)
	}
}

func TestStringsModeCompletesRequests(t *testing.T) {
	r := mustRun(t, Config{Seed: 1, Nodes: twoGPUNode(), Mode: ModeStrings, Balance: "GMin"}, gaStream(5))
	if got := len(r.Completions[workload.Gaussian]); got != 5 {
		t.Fatalf("completions = %d, want 5", got)
	}
}

// The headline qualitative result: for a bursty single-class stream on a
// 2-GPU node, Strings beats Rain beats bare CUDA on average completion.
func TestModeOrderingOnCollidingStream(t *testing.T) {
	stream := []workload.StreamSpec{{
		Kind: workload.MonteCarlo, Count: 8, LambdaFactor: 0.5,
		Node: 0, Tenant: 1, Weight: 1,
	}}
	avg := func(mode Mode, bal string) sim.Time {
		cfg := Config{Seed: 3, Nodes: twoGPUNode(), Mode: mode, Balance: bal}
		r := mustRun(t, cfg, stream)
		return r.AvgCompletion(workload.MonteCarlo)
	}
	cudaT := avg(ModeCUDA, "")
	rainT := avg(ModeRain, "GMin")
	strT := avg(ModeStrings, "GMin")
	if !(strT < rainT && rainT < cudaT) {
		t.Fatalf("ordering violated: Strings=%v Rain=%v CUDA=%v", strT, rainT, cudaT)
	}
	// And the gains should be material, not noise.
	if float64(cudaT)/float64(strT) < 1.3 {
		t.Fatalf("Strings speedup over CUDA only %.2fx", float64(cudaT)/float64(strT))
	}
}

func TestStringsAvoidsContextSwitches(t *testing.T) {
	stream := []workload.StreamSpec{{
		Kind: workload.MonteCarlo, Count: 4, LambdaFactor: 0.4,
		Node: 0, Tenant: 1, Weight: 1,
	}}
	cfg := Config{Seed: 5, Nodes: twoGPUNode(), Mode: ModeStrings, Balance: "GMin"}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(stream)
	if err != nil || len(r.Errors) > 0 {
		t.Fatalf("run: %v %v", err, r.Errors)
	}
	for _, d := range c.Devices() {
		if sw := d.Stats().Switches; sw != 0 {
			t.Fatalf("device %d performed %d context switches under Strings", d.ID(), sw)
		}
	}

	// Rain, by contrast, must context switch when requests collide.
	cfg.Mode = ModeRain
	c2, _ := New(cfg)
	if _, err := c2.Run(stream); err != nil {
		t.Fatal(err)
	}
	var total int
	for _, d := range c2.Devices() {
		total += d.Stats().Switches
	}
	if total == 0 {
		t.Fatal("Rain performed no context switches at all")
	}
}

func TestBalancingSpreadsLoadAcrossGPUs(t *testing.T) {
	cfg := Config{Seed: 2, Nodes: twoGPUNode(), Mode: ModeStrings, Balance: "GRR"}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(gaStream(6))
	if err != nil || len(r.Errors) > 0 {
		t.Fatalf("run: %v %v", err, r.Errors)
	}
	for _, d := range c.Devices() {
		if d.Stats().KernelsDone == 0 {
			t.Fatalf("device %d never ran a kernel under GRR", d.ID())
		}
	}
}

func TestCUDAModeCollidesOnDeviceZero(t *testing.T) {
	cfg := Config{Seed: 2, Nodes: twoGPUNode(), Mode: ModeCUDA}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(gaStream(6)); err != nil {
		t.Fatal(err)
	}
	if c.Devices()[1].Stats().KernelsDone != 0 {
		t.Fatal("static provisioning used the second GPU")
	}
	if c.Devices()[0].Stats().KernelsDone == 0 {
		t.Fatal("no kernels ran at all")
	}
}

func TestFeedbackReachesSFT(t *testing.T) {
	cfg := Config{Seed: 2, Nodes: twoGPUNode(), Mode: ModeStrings, Balance: "MBF"}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(gaStream(4))
	if err != nil || len(r.Errors) > 0 {
		t.Fatalf("run: %v %v", err, r.Errors)
	}
	if n := c.Mapper().SFT().Samples("GA"); n != 4 {
		t.Fatalf("SFT samples = %d, want 4", n)
	}
	e, _ := c.Mapper().SFT().Lookup("GA")
	if e.ExecTime <= 0 || e.GPUUtil <= 0 || e.GPUUtil > 0.2 {
		t.Fatalf("GA feedback implausible: %+v", e)
	}
	// All bindings released after exits.
	for _, row := range c.Mapper().DST().Entries() {
		if row.Load != 0 {
			t.Fatalf("GID %d load = %d after drain", row.GID, row.Load)
		}
	}
}

func TestSupernodeUsesRemoteGPUs(t *testing.T) {
	// All requests arrive at node 0; GRR must round-robin them across all
	// four GPUs, including node 1's (remote) pair.
	cfg := Config{Seed: 2, Nodes: supernode(), Mode: ModeStrings, Balance: "GRR"}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(gaStream(8))
	if err != nil || len(r.Errors) > 0 {
		t.Fatalf("run: %v %v", err, r.Errors)
	}
	for gid, d := range c.Devices() {
		if d.Stats().KernelsDone == 0 {
			t.Fatalf("GID %d idle under supernode GRR", gid)
		}
	}
}

func TestRemoteAccessCostsMore(t *testing.T) {
	// One request forced to a remote GPU (arrivals at node 1, pool of
	// node-0 devices only) vs the same request locally.
	run := func(fromNode int) sim.Time {
		cfg := Config{Seed: 4, Mode: ModeStrings, Balance: "GRR",
			Nodes: []NodeConfig{
				{Devices: []gpu.Spec{gpu.TeslaC2050}},
				{Devices: []gpu.Spec{gpu.Quadro2000}}, // unused filler
			}}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Balance GRR starts at GID 0 (node 0's C2050) for the single
		// request regardless of origin.
		r, err := c.Run([]workload.StreamSpec{{
			Kind: workload.SortingNetworks, Count: 1, Lambda: 1,
			Node: fromNode, Tenant: 1, Weight: 1,
		}})
		if err != nil || len(r.Errors) > 0 {
			t.Fatalf("run: %v %v", err, r.Errors)
		}
		return r.AvgCompletion(workload.SortingNetworks)
	}
	local, remote := run(0), run(1)
	if remote <= local {
		t.Fatalf("remote %v not more expensive than local %v", remote, local)
	}
}

func TestTFSFairnessBeatsBareRuntime(t *testing.T) {
	// Two equal-share tenants contending for one GPU: DC's long kernels
	// against MC's short transfer-heavy episodes. Fairness is measured as
	// the Jain index over per-tenant service rates in a fixed contention
	// window, normalized by each tenant's solo rate (equal slowdowns ⇒ 1).
	oneGPU := []NodeConfig{{Devices: []gpu.Spec{gpu.TeslaC2050}}}
	horizon := 40 * sim.Second
	longS := workload.StreamSpec{Kind: workload.DXTC, Count: 8, Lambda: sim.Second, Node: 0, Tenant: 1, Weight: 1}
	shortS := workload.StreamSpec{Kind: workload.MonteCarlo, Count: 40, Lambda: sim.Second / 2, Node: 0, Tenant: 2, Weight: 1}
	svc := func(mode Mode, devPol string, streams []workload.StreamSpec) map[int64]sim.Time {
		cfg := Config{Seed: 6, Nodes: oneGPU, Mode: mode, Balance: "GRR", DevPolicy: devPol}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.RunUntil(streams, horizon)
		if err != nil {
			t.Fatal(err)
		}
		return r.TenantService
	}
	fairness := func(mode Mode, devPol string) float64 {
		soloA := svc(mode, devPol, []workload.StreamSpec{longS})[1]
		soloB := svc(mode, devPol, []workload.StreamSpec{shortS})[2]
		shared := svc(mode, devPol, []workload.StreamSpec{longS, shortS})
		return metrics.JainFairness([]float64{
			float64(shared[1]) / float64(soloA),
			float64(shared[2]) / float64(soloB),
		})
	}
	cudaF := fairness(ModeCUDA, "")
	tfsF := fairness(ModeStrings, "TFS")
	if tfsF < cudaF+0.1 {
		t.Fatalf("TFS fairness %.3f not clearly above bare runtime %.3f", tfsF, cudaF)
	}
	if tfsF < 0.9 {
		t.Fatalf("TFS fairness %.3f too low", tfsF)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() sim.Time {
		cfg := Config{Seed: 11, Nodes: twoGPUNode(), Mode: ModeStrings, Balance: "GMin", DevPolicy: "PS"}
		r := mustRun(t, cfg, gaStream(5))
		return r.AvgCompletion(workload.Gaussian)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical configs diverged: %v vs %v", a, b)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Nodes: []NodeConfig{{}}}); err == nil {
		t.Fatal("node without devices accepted")
	}
	if _, err := New(Config{Nodes: twoGPUNode(), Mode: ModeStrings, Balance: "nope"}); err == nil {
		t.Fatal("bogus balance policy accepted")
	}
	if _, err := New(Config{Nodes: twoGPUNode(), Mode: ModeStrings, DevPolicy: "nope"}); err == nil {
		t.Fatal("bogus device policy accepted")
	}
	if _, err := New(Config{Nodes: twoGPUNode(), Mode: ModeRain, DevPolicy: "PS"}); err == nil {
		t.Fatal("PS under Rain accepted")
	}
	c, err := New(Config{Nodes: twoGPUNode(), Mode: ModeStrings})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run([]workload.StreamSpec{{Kind: workload.Gaussian, Count: 1, Node: 9}}); err == nil {
		t.Fatal("stream at unknown node accepted")
	}
}

func TestModeString(t *testing.T) {
	if ModeCUDA.String() != "CUDA" || ModeRain.String() != "Rain" || ModeStrings.String() != "Strings" {
		t.Fatal("mode names wrong")
	}
	if !strings.Contains(Mode(9).String(), "9") {
		t.Fatal("unknown mode formatting")
	}
}
