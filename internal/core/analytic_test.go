package core

import (
	"testing"

	"repro/internal/analytic"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The bare runtime multiplexing GPU contexts with driver time slices is,
// to first order, an M/G/1 processor-sharing queue on the GPU: mean sojourn
// ≈ CPU_solo + D/(1-ρ) with D the request's solo GPU demand and ρ = D/λ.
// This cross-validates the simulator's queueing behaviour against closed
// form — an independent conservation check on the whole substrate.
func TestSimulatorMatchesMG1PS(t *testing.T) {
	prof := workload.ProfileFor(workload.DXTC)
	soloGPU := prof.SoloGPUTime().Seconds()
	soloCPU := prof.SoloRuntime.Seconds() - soloGPU

	for _, factor := range []float64{2.5, 1.7} {
		lambda := sim.Time(factor * float64(prof.SoloRuntime))
		rate := 1.0 / lambda.Seconds()
		want, err := analytic.MG1PS(soloGPU, rate)
		if err != nil {
			t.Fatal(err)
		}
		want += soloCPU

		cfg := Config{Seed: 21, Nodes: []NodeConfig{{Devices: []gpu.Spec{gpu.TeslaC2050}}}, Mode: ModeCUDA}
		c, errNew := New(cfg)
		if errNew != nil {
			t.Fatal(errNew)
		}
		r, errRun := c.Run([]workload.StreamSpec{{
			Kind: workload.DXTC, Count: 30, Lambda: lambda,
			Node: 0, Tenant: 1, Weight: 1,
		}})
		if errRun != nil || len(r.Errors) > 0 {
			t.Fatalf("run: %v %v", errRun, r.Errors)
		}
		got := r.AvgCompletion(workload.DXTC).Seconds()
		ratio := got / want
		if ratio < 0.75 || ratio > 1.35 {
			t.Fatalf("λ=%v: simulated sojourn %.1fs vs M/G/1-PS %.1fs (ratio %.2f)",
				lambda, got, want, ratio)
		}
	}
}

// With two GPUs behind GMin the system approximates M/M/2 on the faster
// device class; the prediction needs only to bracket the simulation loosely
// (heterogeneous service rates break the model's symmetry).
func TestSimulatorBracketedByMMc(t *testing.T) {
	prof := workload.ProfileFor(workload.DXTC)
	lambda := sim.Time(1.0 * float64(prof.SoloRuntime))
	rate := 1.0 / lambda.Seconds()

	cfg := Config{Seed: 22, Nodes: []NodeConfig{
		{Devices: []gpu.Spec{gpu.TeslaC2050, gpu.TeslaC2050}},
	}, Mode: ModeStrings, Balance: "GMin"}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run([]workload.StreamSpec{{
		Kind: workload.DXTC, Count: 30, Lambda: lambda,
		Node: 0, Tenant: 1, Weight: 1,
	}})
	if err != nil || len(r.Errors) > 0 {
		t.Fatalf("run: %v %v", err, r.Errors)
	}
	got := r.AvgCompletion(workload.DXTC).Seconds()

	soloGPU := prof.SoloGPUTime().Seconds()
	soloCPU := prof.SoloRuntime.Seconds() - soloGPU
	lower := prof.SoloRuntime.Seconds() // cannot beat solo
	upper, errU := analytic.MMc(2, soloGPU, rate)
	if errU != nil {
		t.Fatal(errU)
	}
	upper = 2.5 * (upper + soloCPU) // loose slack for sharing slowdown
	if got < 0.9*lower || got > upper {
		t.Fatalf("simulated %.1fs outside [%.1f, %.1f]", got, lower, upper)
	}
}

// TestFastForwardMatchesAnalyticIdle validates the analytic fast-forward
// against closed form on a sparse stream. With mean inter-arrival at 4x the
// solo runtime the queue is nearly empty (ρ ≈ 0.07 of GPU demand), so
// M/G/1-PS predicts sojourn ≈ solo runtime; meanwhile nearly the whole
// virtual timeline is idle, so the kernel must cover it with clock jumps —
// the skip ratio approaches 1. Both properties have to hold at once: the
// jumps may not distort the latencies they skip past, and the latencies may
// not be obtained by grinding through the idle time the jumps exist to avoid.
func TestFastForwardMatchesAnalyticIdle(t *testing.T) {
	prof := workload.ProfileFor(workload.DXTC)
	soloGPU := prof.SoloGPUTime().Seconds()
	soloCPU := prof.SoloRuntime.Seconds() - soloGPU
	lambda := sim.Time(4.0 * float64(prof.SoloRuntime))
	want, err := analytic.MG1PS(soloGPU, 1.0/lambda.Seconds())
	if err != nil {
		t.Fatal(err)
	}
	want += soloCPU

	run := func(horizon sim.Time) (sojourn, skipRatio float64, jumps uint64) {
		cfg := Config{Seed: 23, Nodes: []NodeConfig{{Devices: []gpu.Spec{gpu.TeslaC2050}}}, Mode: ModeCUDA}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if horizon != 0 {
			c.K.SetFFHorizon(horizon)
		}
		r, err := c.Run([]workload.StreamSpec{{
			Kind: workload.DXTC, Count: 40, Lambda: lambda,
			Node: 0, Tenant: 1, Weight: 1,
		}})
		if err != nil || len(r.Errors) > 0 {
			t.Fatalf("run: %v %v", err, r.Errors)
		}
		j, skipped := c.K.FastForwards()
		return r.AvgCompletion(workload.DXTC).Seconds(), float64(skipped) / float64(r.EndTime), j
	}

	got, ratio, jumps := run(0)
	if r := got / want; r < 0.9 || r > 1.2 {
		t.Errorf("sparse-stream sojourn %.2fs vs analytic %.2fs (ratio %.2f)", got, want, r)
	}
	if jumps == 0 || ratio < 0.8 {
		t.Errorf("idle timeline not fast-forwarded: %d jumps, skip ratio %.3f", jumps, ratio)
	}
	// The horizon is instrumentation only: an absurdly large one must leave
	// the simulated latencies untouched (only the counters move).
	gotHuge, _, _ := run(1000 * sim.Second)
	if gotHuge != got {
		t.Errorf("FF horizon changed results: %.6fs vs %.6fs", gotHuge, got)
	}
}
