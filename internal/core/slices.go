package core

import (
	"fmt"

	"repro/internal/balancer"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// MIG-style slice placement. Streams that set SliceProfile bind their
// tenant to a dedicated slice carved from a partitionable device: the first
// request of the tenant places and carves the slice (a fresh gpu.Device
// with its own scheduler and backend — isolation and private context
// multiplexing by construction), subsequent requests route to it, and the
// slice is destroyed when the tenant's last request releases. Requests that
// fit nowhere park in FIFO order and are retried on every release; the
// admission wait is part of the request's completion latency, which is how
// packing quality surfaces as an SLO.
//
// Every mutation of the placement state happens inside the mapperLoop
// service process, so slice runs are exactly as deterministic as the
// legacy path. Fleets without slice streams never touch any of this.

// sliceState is the placement ledger the mapper service owns. Nil until a
// run declares slice streams.
type sliceState struct {
	parts []*gpu.Partition // per physical GID; nil rows are not partitionable

	tenantProfile map[int64]gpu.SliceProfile
	tenantGID     map[int64]balancer.GID // tenant → live slice row
	tenantExpect  map[int64]int          // total requests the tenant will send
	tenantServed  map[int64]int          // requests released so far
	tenantAsk     map[int64]sim.Time     // first placement attempt (admission wait)

	sliceTenant map[balancer.GID]int64 // live slice row → tenant
	slicePart   map[balancer.GID]int   // live slice row → partition-local id

	parked []mapperMsg // FIFO of selection requests awaiting capacity

	// Time-weighted stranded-capacity integral (see strandedTick).
	strandedAt  sim.Time
	strandedInt float64
	numPart     int
}

// initSlices builds the per-device partition ledgers. Called once from New;
// cheap no-op for fleets with no partitionable specs.
func (c *Cluster) initSlices() {
	for gid, d := range c.devices {
		spec := d.Spec()
		if !spec.Partitionable() {
			c.sl.parts = append(c.sl.parts, nil)
			continue
		}
		pt, err := gpu.NewPartition(spec)
		if err != nil {
			// Specs were validated by NewDevice already; a bad profile
			// table is a configuration bug.
			panic(fmt.Sprintf("core: gid %d: %v", gid, err))
		}
		c.sl.parts = append(c.sl.parts, pt)
		c.sl.numPart++
	}
}

// prepareSlices validates slice streams and builds the tenant ledgers.
func (c *Cluster) prepareSlices(streams []workload.StreamSpec) error {
	for si, s := range streams {
		if s.SliceProfile == "" {
			continue
		}
		if c.cfg.Mode != ModeStrings {
			return fmt.Errorf("core: stream %d: slice profiles need ModeStrings", si)
		}
		prof, ok := c.findProfile(s.SliceProfile)
		if !ok {
			return fmt.Errorf("core: stream %d: no partitionable device offers profile %q",
				si, s.SliceProfile)
		}
		if c.sl.tenantProfile == nil {
			c.sl.tenantProfile = make(map[int64]gpu.SliceProfile)
			c.sl.tenantGID = make(map[int64]balancer.GID)
			c.sl.tenantExpect = make(map[int64]int)
			c.sl.tenantServed = make(map[int64]int)
			c.sl.tenantAsk = make(map[int64]sim.Time)
			c.sl.sliceTenant = make(map[balancer.GID]int64)
			c.sl.slicePart = make(map[balancer.GID]int)
		}
		if prev, ok := c.sl.tenantProfile[s.Tenant]; ok && prev.Name != s.SliceProfile {
			return fmt.Errorf("core: tenant %d asks for profiles %q and %q",
				s.Tenant, prev.Name, s.SliceProfile)
		}
		c.sl.tenantProfile[s.Tenant] = prof
		c.sl.tenantExpect[s.Tenant] += s.Count
	}
	return nil
}

// findProfile resolves a profile name against the fleet's partitionable
// devices (first match in GID order).
func (c *Cluster) findProfile(name string) (gpu.SliceProfile, bool) {
	for _, pt := range c.sl.parts {
		if pt == nil {
			continue
		}
		if p, ok := pt.Spec().ProfileByName(name); ok {
			return p, true
		}
	}
	return gpu.SliceProfile{}, false
}

// sliceDemand enriches a selection request with the tenant's slice demand.
// Identity for tenants without a profile — the legacy path is untouched.
func (c *Cluster) sliceDemand(req balancer.Request) balancer.Request {
	if prof, ok := c.sl.tenantProfile[req.Tenant]; ok {
		req.SliceProfile = prof.Name
		req.SliceFrac = prof.Frac
		req.SliceMem = prof.MemBytes
	}
	return req
}

// handleSliceSelect serves one slice-demanding selection request inside the
// mapper service: route to the tenant's live slice, or place-and-carve, or
// park until a release frees capacity.
func (c *Cluster) handleSliceSelect(p *sim.Proc, m mapperMsg) {
	if gid, ok := c.sl.tenantGID[m.req.Tenant]; ok {
		c.mapper.DST().Bind(gid, m.req.Kind)
		m.out.gid = gid
		m.done.Fire()
		return
	}
	if _, asked := c.sl.tenantAsk[m.req.Tenant]; !asked {
		c.sl.tenantAsk[m.req.Tenant] = p.Now()
	}
	if gid, ok := c.placeSlice(p, m.req); ok {
		m.out.gid = gid
		m.done.Fire()
		return
	}
	c.results.SliceParks++
	c.sl.parked = append(c.sl.parked, m)
}

// placeSlice asks the policy for a parent device and carves the tenant's
// slice from it. ok=false when nothing fits.
func (c *Cluster) placeSlice(p *sim.Proc, req balancer.Request) (balancer.GID, bool) {
	parent, ok := c.mapper.SelectSliceAt(p.Now(), req)
	if !ok {
		return 0, false
	}
	gid := c.carveSlice(p, parent, req)
	c.sl.tenantGID[req.Tenant] = gid
	c.sl.sliceTenant[gid] = req.Tenant
	c.mapper.DST().Bind(gid, req.Kind)
	c.results.SliceCarves++
	c.results.AdmissionWaits = append(c.results.AdmissionWaits,
		p.Now()-c.sl.tenantAsk[req.Tenant])
	return gid, true
}

// carveSlice materializes one slice: partition ledger, gMap row, a fresh
// device with scheduler and backend, and the DST's capacity accounting.
func (c *Cluster) carveSlice(p *sim.Proc, parent balancer.GID, req balancer.Request) balancer.GID {
	c.strandedTick(p.Now())
	pt := c.sl.parts[parent]
	sid, spec, err := pt.Carve(req.SliceProfile)
	if err != nil {
		// The DST said it fits; the partition disagreeing means the two
		// ledgers diverged — a bug, not a runtime condition.
		panic(fmt.Sprintf("core: carve reconciliation failure on gid %d: %v", parent, err))
	}
	gid, err := c.gmap.AddSlice(parent, sid, req.SliceProfile, spec)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	d := gpu.NewDevice(c.K, spec, int(gid))
	if c.cfg.Trace {
		tr := &gpu.UtilTrace{}
		d.SetTracer(tr)
		c.traces = append(c.traces, tr)
	} else {
		c.traces = append(c.traces, nil)
	}
	if c.cfg.Recorder.Enabled() {
		g, rec := int(gid), c.cfg.Recorder
		d.SetOnComplete(func(op *gpu.Op) {
			if op.Kind == gpu.OpMarker {
				return
			}
			rec.Complete(trace.KOp, op.Kind.String(),
				op.AppID, g, op.Bytes, op.Started, op.Finished)
		})
	}
	c.devices = append(c.devices, d)
	c.gpuDown = append(c.gpuDown, false)
	c.stallUntil = append(c.stallUntil, 0)
	c.degrade = append(c.degrade, 0)
	dp, err := c.devPolicy()
	if err != nil {
		panic(fmt.Sprintf("core: %v", err)) // validated at New
	}
	// Slice carving only runs in the single-kernel path (partitionable
	// fleets collapse sharding), so the new device joins the sole
	// environment.
	s := c.newSched(c.envs[0], d, int(gid), dp)
	c.scheds = append(c.scheds, s)
	c.envOfGID = append(c.envOfGID, 0)
	c.backs = append(c.backs, newStringsBackend(c, c.envs[0], int(gid)))

	pe, _ := c.gmap.Lookup(parent)
	c.mapper.DST().AddRow(&balancer.DSTEntry{
		GID: gid, Node: pe.Node, LocalDev: pe.LocalDev, Name: spec.Name,
		Weight: spec.Weight, ComputeRate: spec.ComputeRate,
		MemBandwidth: spec.MemBandwidth,
		IsSlice:      true, Parent: parent, Profile: req.SliceProfile,
	})
	c.mapper.DST().CarveCapacity(parent, req.SliceFrac, req.SliceMem)
	c.sl.slicePart[gid] = sid
	return gid
}

// noteSliceRelease is called from the mapper service on every binding
// release. When the released binding was the tenant's last request, the
// tenant departs: its slice is destroyed, the capacity returns to the
// parent, and parked requests are retried in arrival order.
func (c *Cluster) noteSliceRelease(p *sim.Proc, gid balancer.GID) {
	tenant, ok := c.sl.sliceTenant[gid]
	if !ok {
		return
	}
	c.sl.tenantServed[tenant]++
	if c.sl.tenantServed[tenant] < c.sl.tenantExpect[tenant] {
		return
	}
	c.destroySlice(p, gid, tenant)
	c.admitParked(p)
}

// destroySlice retires the slice row everywhere and returns its capacity.
func (c *Cluster) destroySlice(p *sim.Proc, gid balancer.GID, tenant int64) {
	c.strandedTick(p.Now())
	e := c.mapper.DST().Entry(gid)
	parent := e.Parent
	prof := c.sl.tenantProfile[tenant]
	if err := c.sl.parts[parent].Release(c.sl.slicePart[gid]); err != nil {
		panic(fmt.Sprintf("core: slice release reconciliation failure: %v", err))
	}
	c.mapper.DST().ReturnCapacity(parent, prof.Frac, prof.MemBytes)
	c.mapper.DST().Retire(gid)
	c.gmap.RetireSlice(gid)
	delete(c.sl.tenantGID, tenant)
	delete(c.sl.sliceTenant, gid)
	delete(c.sl.slicePart, gid)
	c.results.SliceReleases++
}

// admitParked retries parked requests in arrival order, granting every one
// that now fits (tenants whose slice appeared meanwhile route to it).
func (c *Cluster) admitParked(p *sim.Proc) {
	kept := c.sl.parked[:0]
	for _, m := range c.sl.parked {
		if gid, ok := c.sl.tenantGID[m.req.Tenant]; ok {
			c.mapper.DST().Bind(gid, m.req.Kind)
			m.out.gid = gid
			m.done.Fire()
			continue
		}
		if gid, ok := c.placeSlice(p, m.req); ok {
			m.out.gid = gid
			m.done.Fire()
			continue
		}
		kept = append(kept, m)
	}
	c.sl.parked = kept
}

// strandedTick integrates the fleet's stranded-capacity fraction over the
// interval since the last capacity change. The fraction is the mean, over
// partitionable devices, of balancer.FragScore — free capacity weighted by
// the share of slice profiles it cannot serve, the exact measure the Frag
// policy descends.
func (c *Cluster) strandedTick(now sim.Time) {
	if c.sl.numPart == 0 || c.mapper == nil {
		return
	}
	if now > c.sl.strandedAt {
		c.sl.strandedInt += c.strandedFrac() * float64(now-c.sl.strandedAt)
		c.sl.strandedAt = now
	}
}

// strandedFrac computes the instantaneous stranded-capacity fraction.
func (c *Cluster) strandedFrac() float64 {
	var f float64
	for _, e := range c.mapper.DST().Entries() {
		if e.Partitionable {
			f += balancer.FragScore(e)
		}
	}
	return f / float64(c.sl.numPart)
}

// closeStranded finalizes the integral at the end of a run.
func (c *Cluster) closeStranded(end sim.Time) {
	if c.sl.numPart == 0 || c.mapper == nil {
		return
	}
	c.strandedTick(end)
	c.results.StrandedIntegral = c.sl.strandedInt
	c.results.StrandedHorizon = end
}
